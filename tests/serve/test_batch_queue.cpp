#include "serve/batch_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/timer.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::serve {
namespace {

using namespace std::chrono_literals;

PendingRequest make_request(std::uint64_t seed) {
  PendingRequest req;
  req.input = testfix::random_input(seed, 4);
  req.key = TensorKey::of(req.input);
  req.enqueued_at = std::chrono::steady_clock::now();
  return req;
}

TEST(BatchQueue, FullBatchFlushesWithoutWaiting) {
  BatchQueue q(/*max_batch=*/4, /*max_wait=*/1h);  // wait "forever" unless full
  for (std::uint64_t i = 0; i < 4; ++i) {
    PendingRequest r = make_request(i);
    ASSERT_TRUE(q.push(r));
  }
  Timer t;
  const auto batch = q.pop_batch();
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_LT(t.seconds(), 1.0);  // did not sit out the 1h max_wait
}

TEST(BatchQueue, OverfullQueueSplitsIntoMaxBatchChunks) {
  BatchQueue q(4, 1h);
  for (std::uint64_t i = 0; i < 10; ++i) {
    PendingRequest r = make_request(i);
    ASSERT_TRUE(q.push(r));
  }
  EXPECT_EQ(q.pop_batch().size(), 4u);
  EXPECT_EQ(q.pop_batch().size(), 4u);
  q.close();  // remaining 2 flush on close instead of max_wait
  EXPECT_EQ(q.pop_batch().size(), 2u);
}

TEST(BatchQueue, MaxWaitFlushesPartialBatch) {
  BatchQueue q(8, 20ms);
  PendingRequest r = make_request(1);
  ASSERT_TRUE(q.push(r));
  Timer t;
  const auto batch = q.pop_batch();
  const double waited = t.seconds();
  EXPECT_EQ(batch.size(), 1u);
  // Flushed by the deadline: waited roughly max_wait, not forever — and did
  // not return instantly with an unfilled batch either.
  EXPECT_LT(waited, 5.0);
}

TEST(BatchQueue, BatchesPreserveFifoOrder) {
  BatchQueue q(3, 1h);
  for (std::uint64_t i = 0; i < 3; ++i) {
    PendingRequest r = make_request(i);
    ASSERT_TRUE(q.push(r));
  }
  const auto batch = q.pop_batch();
  ASSERT_EQ(batch.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batch[i].key, TensorKey::of(testfix::random_input(i, 4)));
  }
}

TEST(BatchQueue, CloseDrainsThenSignalsEmpty) {
  BatchQueue q(4, 1h);
  PendingRequest a = make_request(1), b = make_request(2);
  ASSERT_TRUE(q.push(a));
  ASSERT_TRUE(q.push(b));
  q.close();
  EXPECT_EQ(q.pop_batch().size(), 2u);  // drained despite not being full
  EXPECT_TRUE(q.pop_batch().empty());   // then the shutdown signal
  PendingRequest c = make_request(3);
  EXPECT_FALSE(q.push(c));  // intake refused after close
}

TEST(BatchQueue, PopBlocksUntilPushArrives) {
  BatchQueue q(1, 1h);
  std::vector<PendingRequest> got;
  std::thread consumer([&] { got = q.pop_batch(); });
  std::this_thread::sleep_for(10ms);
  PendingRequest r = make_request(5);
  ASSERT_TRUE(q.push(r));
  consumer.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].key, TensorKey::of(testfix::random_input(5, 4)));
}

TEST(BatchQueue, CloseWakesBlockedConsumer) {
  BatchQueue q(4, 1h);
  std::thread consumer([&] { EXPECT_TRUE(q.pop_batch().empty()); });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
}

TEST(BatchQueue, TwoConsumersSplitTheWorkWithoutLoss) {
  BatchQueue q(2, 5ms);
  constexpr int kRequests = 40;
  std::atomic<int> served{0};
  auto consume = [&] {
    for (;;) {
      const auto batch = q.pop_batch();
      if (batch.empty()) return;
      served += static_cast<int>(batch.size());
    }
  };
  std::thread c1(consume), c2(consume);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    PendingRequest r = make_request(i);
    ASSERT_TRUE(q.push(r));
  }
  while (q.pending() > 0) std::this_thread::sleep_for(1ms);
  q.close();
  c1.join();
  c2.join();
  EXPECT_EQ(served.load(), kRequests);
}

}  // namespace
}  // namespace paintplace::serve
