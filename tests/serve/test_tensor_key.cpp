#include "serve/tensor_key.h"

#include <gtest/gtest.h>

#include "tests/serve/serve_fixtures.h"

namespace paintplace::serve {
namespace {

TEST(TensorKey, IdenticalContentGivesIdenticalKeys) {
  const nn::Tensor a = testfix::random_input(1);
  const nn::Tensor b = a;  // value copy
  EXPECT_EQ(TensorKey::of(a), TensorKey::of(b));
}

TEST(TensorKey, SingleElementChangeChangesKey) {
  const nn::Tensor a = testfix::random_input(1);
  nn::Tensor b = a;
  b[b.numel() / 2] += 1e-6f;
  EXPECT_NE(TensorKey::of(a), TensorKey::of(b));
}

TEST(TensorKey, ShapeIsPartOfTheIdentity) {
  // Same bytes, different shape must not collide.
  const nn::Tensor a(nn::Shape{1, 4, 2, 8}, std::vector<float>(64, 0.5f));
  const nn::Tensor b(nn::Shape{1, 4, 8, 2}, std::vector<float>(64, 0.5f));
  EXPECT_NE(TensorKey::of(a), TensorKey::of(b));
}

TEST(TensorKey, StableAcrossCalls) {
  const nn::Tensor a = testfix::random_input(7);
  const TensorKey k1 = TensorKey::of(a);
  const TensorKey k2 = TensorKey::of(a);
  EXPECT_EQ(k1.h1, k2.h1);
  EXPECT_EQ(k1.h2, k2.h2);
  EXPECT_EQ(k1.numel, a.numel());
}

TEST(TensorKey, HashFunctorDiscriminates) {
  TensorKeyHash hasher;
  const nn::Tensor a = testfix::random_input(1);
  const nn::Tensor b = testfix::random_input(2);
  EXPECT_NE(hasher(TensorKey::of(a)), hasher(TensorKey::of(b)));
}

}  // namespace
}  // namespace paintplace::serve
