#include "serve/forecast_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "nn/tensor_ops.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::serve {
namespace {

using namespace std::chrono_literals;

ServeConfig quick_config() {
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait = 2ms;
  return cfg;
}

TEST(ForecastServer, ResultMatchesDirectPredict) {
  ForecastServer server(quick_config(), testfix::tiny_model());
  const nn::Tensor x = testfix::random_input(1);
  const ForecastResult r = server.submit(x).get();

  // Reference from an identically-seeded standalone model.
  auto reference = testfix::tiny_model();
  reference->set_deterministic_inference(true);
  const nn::Tensor expected = reference->predict(x);
  EXPECT_EQ(r.heatmap.max_abs_diff(expected), 0.0f);
  EXPECT_DOUBLE_EQ(r.congestion_score, reference->congestion_score(expected));
  EXPECT_EQ(r.model_version, 1u);
  EXPECT_FALSE(r.from_cache);
}

TEST(ForecastServer, IdenticalPlacementHitsCacheBitIdentically) {
  ForecastServer server(quick_config(), testfix::tiny_model());
  const nn::Tensor x = testfix::random_input(7);
  const ForecastResult first = server.submit(x).get();
  ASSERT_FALSE(first.from_cache);
  const ForecastResult second = server.submit(x).get();
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.heatmap.max_abs_diff(first.heatmap), 0.0f);
  EXPECT_DOUBLE_EQ(second.congestion_score, first.congestion_score);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.model_samples, 1u);  // the model ran exactly once
}

TEST(ForecastServer, DuplicatesInsideOneBatchRunOnce) {
  ServeConfig cfg = quick_config();
  cfg.max_batch = 8;
  cfg.max_wait = 50ms;  // generous window so all submits land in one batch
  ForecastServer server(cfg, testfix::tiny_model());
  const nn::Tensor x = testfix::random_input(1);
  std::vector<std::future<ForecastResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(x));
  std::vector<ForecastResult> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const ForecastResult& r : results) {
    EXPECT_EQ(r.heatmap.max_abs_diff(results[0].heatmap), 0.0f);
  }
  const ServeStats stats = server.stats();
  // One model sample total: the first batch coalesces its duplicates and any
  // straggler batch serves from the cache.
  EXPECT_EQ(stats.model_samples, 1u);
  EXPECT_EQ(stats.requests, 4u);
}

TEST(ForecastServer, CoalescesConcurrentSubmitsIntoBatches) {
  ServeConfig cfg = quick_config();
  cfg.max_batch = 4;
  cfg.max_wait = 20ms;
  ForecastServer server(cfg, testfix::tiny_model());
  constexpr int kClients = 3, kPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const nn::Tensor x =
            testfix::random_input(static_cast<std::uint64_t>(c * 1000 + i));
        const ForecastResult r = server.submit(x).get();
        if (r.heatmap.shape() == nn::Shape{1, 3, 16, 16}) ok += 1;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.model_samples, stats.requests - stats.cache_hits - stats.coalesced);
  EXPECT_GE(stats.max_batch, 1u);
  EXPECT_LE(stats.max_batch, 4u);
}

TEST(ForecastServer, ShutdownDrainsPendingRequests) {
  ServeConfig cfg = quick_config();
  cfg.max_batch = 64;     // never fills ...
  cfg.max_wait = 10min;   // ... and never times out: only close() can flush
  auto server = std::make_unique<ForecastServer>(cfg, testfix::tiny_model());
  std::vector<std::future<ForecastResult>> futures;
  for (std::uint64_t i = 0; i < 5; ++i) futures.push_back(server->submit(testfix::random_input(i)));
  server->shutdown();  // must serve all 5 queued requests before returning
  for (auto& f : futures) {
    EXPECT_EQ(f.get().heatmap.shape(), (nn::Shape{1, 3, 16, 16}));
  }
}

TEST(ForecastServer, SubmitAfterShutdownThrows) {
  ForecastServer server(quick_config(), testfix::tiny_model());
  server.shutdown();
  EXPECT_THROW(server.submit(testfix::random_input(1)), CheckError);
}

TEST(ForecastServer, ShutdownIsIdempotentAndRunsOnDestruction) {
  auto server = std::make_unique<ForecastServer>(quick_config(), testfix::tiny_model());
  (void)server->submit(testfix::random_input(1)).get();
  server->shutdown();
  server->shutdown();
  server.reset();  // destructor after explicit shutdown must not hang/throw
}

TEST(ForecastServer, ConcurrentSubmitAndShutdownEitherServesOrRefuses) {
  for (int round = 0; round < 5; ++round) {
    ForecastServer server(quick_config(), testfix::tiny_model());
    std::atomic<int> served{0}, refused{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < 6; ++i) {
          try {
            auto f = server.submit(
                testfix::random_input(static_cast<std::uint64_t>(round * 100 + c * 10 + i)));
            f.get();  // accepted submissions must always resolve
            served += 1;
          } catch (const CheckError&) {
            refused += 1;  // raced with shutdown — a clean refusal
          }
        }
      });
    }
    std::this_thread::sleep_for(1ms);
    server.shutdown();
    for (auto& t : clients) t.join();
    EXPECT_EQ(served.load() + refused.load(), 18);
  }
}

TEST(ForecastServer, HotSwapKeepsServingAndBumpsVersion) {
  ServeConfig cfg = quick_config();
  ForecastServer server(cfg, testfix::tiny_model(/*seed=*/9), "base");
  const nn::Tensor x = testfix::random_input(1);
  const ForecastResult before = server.submit(x).get();
  EXPECT_EQ(before.model_version, 1u);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread hammer([&] {
    std::uint64_t i = 100;
    while (!stop) {
      try {
        server.submit(testfix::random_input(i++)).get();
      } catch (...) {
        failures += 1;
      }
    }
  });
  const std::uint64_t v2 = server.publish_model(testfix::tiny_model(/*seed=*/31), "fine-tuned");
  EXPECT_EQ(v2, 2u);
  stop = true;
  hammer.join();
  EXPECT_EQ(failures.load(), 0);  // swap never failed an in-flight request

  // Same input now answered by the new checkpoint (not the stale cache).
  const ForecastResult after = server.submit(x).get();
  EXPECT_EQ(after.model_version, 2u);
  EXPECT_FALSE(after.from_cache);
  EXPECT_GT(after.heatmap.max_abs_diff(before.heatmap), 0.0f);
  const auto hist = server.registry().history();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[1].second, "fine-tuned");
}

TEST(ForecastServer, MultipleWorkersServeCorrectly) {
  ServeConfig cfg = quick_config();
  cfg.workers = 2;
  ForecastServer server(cfg, testfix::tiny_model());
  auto reference = testfix::tiny_model();
  reference->set_deterministic_inference(true);
  std::vector<std::future<ForecastResult>> futures;
  std::vector<nn::Tensor> inputs;
  for (std::uint64_t i = 0; i < 12; ++i) inputs.push_back(testfix::random_input(i));
  for (const nn::Tensor& x : inputs) futures.push_back(server.submit(x));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ForecastResult r = futures[i].get();
    EXPECT_EQ(r.heatmap.max_abs_diff(reference->predict(inputs[i])), 0.0f) << "request " << i;
  }
}

TEST(ForecastServer, RejectsUnsoundConfigurations) {
  ServeConfig stochastic_with_cache = quick_config();
  stochastic_with_cache.deterministic = false;
  EXPECT_THROW(ForecastServer(stochastic_with_cache, testfix::tiny_model()), CheckError);
  stochastic_with_cache.cache_capacity = 0;  // stochastic serving is fine uncached
  EXPECT_NO_THROW(ForecastServer(stochastic_with_cache, testfix::tiny_model()));

  ServeConfig no_workers = quick_config();
  no_workers.workers = 0;
  EXPECT_THROW(ForecastServer(no_workers, testfix::tiny_model()), CheckError);
  EXPECT_THROW(ForecastServer(quick_config(), nullptr), CheckError);
}

TEST(ForecastServer, WrongShapeSubmitFailsFast) {
  ForecastServer server(quick_config(), testfix::tiny_model());
  EXPECT_THROW(server.submit(nn::Tensor(nn::Shape{1, 4, 8, 8})), CheckError);
  EXPECT_THROW(server.submit(nn::Tensor(nn::Shape{2, 4, 16, 16})), CheckError);
  // The failure did not poison the server.
  EXPECT_NO_THROW(server.submit(testfix::random_input(1)).get());
}

}  // namespace
}  // namespace paintplace::serve
