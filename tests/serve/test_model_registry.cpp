#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <thread>

#include "tests/serve/serve_fixtures.h"

namespace paintplace::serve {
namespace {

TEST(ModelRegistry, EmptyUntilFirstPublish) {
  ModelRegistry reg;
  EXPECT_TRUE(reg.empty());
  const ModelSnapshot snap = reg.current();
  EXPECT_FALSE(snap);
  EXPECT_EQ(snap.version, 0u);
}

TEST(ModelRegistry, PublishAssignsMonotonicVersions) {
  ModelRegistry reg;
  EXPECT_EQ(reg.publish(testfix::tiny_model(1), "base"), 1u);
  EXPECT_EQ(reg.publish(testfix::tiny_model(2), "fine-tuned"), 2u);
  const ModelSnapshot snap = reg.current();
  EXPECT_EQ(snap.version, 2u);
  EXPECT_EQ(snap.label, "fine-tuned");
  ASSERT_TRUE(snap);
}

TEST(ModelRegistry, HistoryRecordsEveryPublish) {
  ModelRegistry reg;
  reg.publish(testfix::tiny_model(1), "a");
  reg.publish(testfix::tiny_model(2), "b");
  const auto hist = reg.history();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], (std::pair<std::uint64_t, std::string>{1u, "a"}));
  EXPECT_EQ(hist[1], (std::pair<std::uint64_t, std::string>{2u, "b"}));
}

TEST(ModelRegistry, NullModelThrows) {
  ModelRegistry reg;
  EXPECT_THROW(reg.publish(nullptr, "bad"), CheckError);
}

TEST(ModelRegistry, InFlightSnapshotSurvivesHotSwap) {
  ModelRegistry reg;
  reg.publish(testfix::tiny_model(1), "v1");
  const ModelSnapshot held = reg.current();  // a batch "in flight"
  std::weak_ptr<core::CongestionForecaster> watch = held.model;
  reg.publish(testfix::tiny_model(2), "v2");
  // The swapped-out model is still alive through the held snapshot ...
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(held.version, 1u);
  EXPECT_EQ(reg.current().version, 2u);
  // ... and predictions on it still run fine after the swap.
  EXPECT_NO_THROW(held.model->predict(testfix::random_input(3)));
}

TEST(ModelRegistry, ConcurrentPublishAndSnapshot) {
  ModelRegistry reg;
  reg.publish(testfix::tiny_model(0), "v0");
  std::thread publisher([&] {
    for (std::uint64_t i = 1; i <= 20; ++i) reg.publish(testfix::tiny_model(i), "v");
  });
  std::uint64_t last_seen = 0;
  for (int i = 0; i < 200; ++i) {
    const ModelSnapshot snap = reg.current();
    ASSERT_TRUE(snap);
    EXPECT_GE(snap.version, last_seen);  // versions never go backwards
    last_seen = snap.version;
  }
  publisher.join();
  EXPECT_EQ(reg.current().version, 21u);
}

}  // namespace
}  // namespace paintplace::serve
