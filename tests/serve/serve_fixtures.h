// Shared helpers for the serving-layer tests: a tiny forecaster config and
// deterministic random input tensors shaped for it. No dataset/training —
// the serving machinery only needs a model that can run forward.
#pragma once

#include <memory>

#include "common/rng.h"
#include "core/forecaster.h"

namespace paintplace::serve::testfix {

inline core::Pix2PixConfig tiny_config(Index image_size = 16) {
  core::Pix2PixConfig cfg;
  cfg.generator.in_channels = 4;
  cfg.generator.out_channels = 3;
  cfg.generator.image_size = image_size;
  cfg.generator.base_channels = 4;
  cfg.generator.max_channels = 8;
  cfg.disc_base_channels = 4;
  cfg.seed = 9;
  return cfg;
}

inline std::shared_ptr<core::CongestionForecaster> tiny_model(std::uint64_t seed = 9,
                                                              Index image_size = 16) {
  core::Pix2PixConfig cfg = tiny_config(image_size);
  cfg.seed = seed;
  return std::make_shared<core::CongestionForecaster>(cfg);
}

inline nn::Tensor random_input(std::uint64_t seed, Index image_size = 16, Index channels = 4) {
  Rng rng(seed);
  nn::Tensor t(nn::Shape{1, channels, image_size, image_size});
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform());
  return t;
}

}  // namespace paintplace::serve::testfix
