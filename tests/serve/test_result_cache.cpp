#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <thread>

#include "tests/serve/serve_fixtures.h"

namespace paintplace::serve {
namespace {

TensorKey key_of(std::uint64_t seed) { return TensorKey::of(testfix::random_input(seed)); }

ForecastResult result_with_score(double score) {
  ForecastResult r;
  r.heatmap = nn::Tensor(nn::Shape{1, 3, 2, 2});
  r.heatmap.fill(static_cast<float>(score));
  r.congestion_score = score;
  r.model_version = 1;
  return r;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  const TensorKey k = key_of(1);
  EXPECT_FALSE(cache.get(k).has_value());
  cache.put(k, result_with_score(0.25));
  const auto hit = cache.get(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->congestion_score, 0.25);
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCache, StoredHeatmapIsBitIdentical) {
  ResultCache cache(4);
  const TensorKey k = key_of(3);
  ForecastResult original;
  original.heatmap = testfix::random_input(42, 4, 3).reshaped(nn::Shape{1, 3, 4, 4});
  cache.put(k, original);
  const auto hit = cache.get(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->heatmap.max_abs_diff(original.heatmap), 0.0f);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  const TensorKey a = key_of(1), b = key_of(2), c = key_of(3);
  cache.put(a, result_with_score(1));
  cache.put(b, result_with_score(2));
  cache.put(c, result_with_score(3));  // evicts a (oldest)
  EXPECT_FALSE(cache.get(a).has_value());
  EXPECT_TRUE(cache.get(b).has_value());
  EXPECT_TRUE(cache.get(c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, GetRefreshesRecency) {
  ResultCache cache(2);
  const TensorKey a = key_of(1), b = key_of(2), c = key_of(3);
  cache.put(a, result_with_score(1));
  cache.put(b, result_with_score(2));
  EXPECT_TRUE(cache.get(a).has_value());     // a becomes most recent
  cache.put(c, result_with_score(3));        // evicts b, not a
  EXPECT_TRUE(cache.get(a).has_value());
  EXPECT_FALSE(cache.get(b).has_value());
}

TEST(ResultCache, PutRefreshesExistingEntry) {
  ResultCache cache(2);
  const TensorKey a = key_of(1), b = key_of(2), c = key_of(3);
  cache.put(a, result_with_score(1));
  cache.put(b, result_with_score(2));
  cache.put(a, result_with_score(10));  // refresh, no eviction
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.put(c, result_with_score(3));  // evicts b
  ASSERT_TRUE(cache.get(a).has_value());
  EXPECT_DOUBLE_EQ(cache.get(a)->congestion_score, 10.0);
  EXPECT_FALSE(cache.get(b).has_value());
}

TEST(ResultCache, VersionMismatchIsAMissAndEvicts) {
  // A batch in flight across a hot swap can insert results of the
  // superseded model after the swap cleared the cache; a version-checked
  // get must refuse (and drop) them.
  ResultCache cache(4);
  const TensorKey k = key_of(1);
  ForecastResult stale = result_with_score(0.5);
  stale.model_version = 1;
  cache.put(k, stale);
  EXPECT_FALSE(cache.get(k, /*required_version=*/2).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // Matching version still hits.
  ForecastResult fresh = result_with_score(0.7);
  fresh.model_version = 2;
  cache.put(k, fresh);
  const auto hit = cache.get(k, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->congestion_score, 0.7);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  const TensorKey a = key_of(1);
  cache.put(a, result_with_score(1));
  EXPECT_FALSE(cache.get(a).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ClearEmptiesTheCache) {
  ResultCache cache(4);
  cache.put(key_of(1), result_with_score(1));
  cache.put(key_of(2), result_with_score(2));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(key_of(1)).has_value());
}

TEST(ResultCache, ConcurrentGetPutStaysConsistent) {
  ResultCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const TensorKey k = key_of(static_cast<std::uint64_t>(i % 32));
        if ((i + t) % 2 == 0) {
          cache.put(k, result_with_score(i));
        } else {
          (void)cache.get(k);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), 16u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 400u);
}

}  // namespace
}  // namespace paintplace::serve
