// Batched-inference equivalence: the contract the serving engine relies on.
#include <gtest/gtest.h>

#include "nn/tensor_ops.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::serve {
namespace {

TEST(PredictBatch, MatchesPerSamplePredictExactly) {
  auto model = testfix::tiny_model();
  model->set_deterministic_inference(true);
  std::vector<nn::Tensor> inputs;
  for (std::uint64_t i = 0; i < 6; ++i) inputs.push_back(testfix::random_input(i));

  std::vector<const nn::Tensor*> ptrs;
  for (const nn::Tensor& t : inputs) ptrs.push_back(&t);
  const nn::Tensor batched = model->predict_batch(nn::stack_batch(ptrs));
  ASSERT_EQ(batched.dim(0), 6);
  for (std::uint64_t i = 0; i < 6; ++i) {
    const nn::Tensor single = model->predict(inputs[i]);
    // Acceptance bound is 1e-5; the batched GEMM lowering preserves the
    // per-element accumulation order, so in practice this is bit-exact.
    EXPECT_LE(nn::slice_batch(batched, static_cast<Index>(i)).max_abs_diff(single), 1e-5f)
        << "sample " << i;
  }
}

TEST(PredictBatch, DeterministicInferenceIsAPureFunction) {
  auto model = testfix::tiny_model();
  model->set_deterministic_inference(true);
  const nn::Tensor x = testfix::random_input(1);
  const nn::Tensor a = model->predict(x);
  const nn::Tensor b = model->predict(x);
  EXPECT_EQ(a.max_abs_diff(b), 0.0f);
  EXPECT_TRUE(model->deterministic_inference());
}

TEST(PredictBatch, StochasticInferenceStillDrawsNoise) {
  auto model = testfix::tiny_model();  // default: paper behaviour, z live in eval
  const nn::Tensor x = testfix::random_input(1);
  const nn::Tensor a = model->predict(x);
  const nn::Tensor b = model->predict(x);
  EXPECT_GT(a.max_abs_diff(b), 0.0f);
  EXPECT_FALSE(model->deterministic_inference());
}

TEST(PredictBatch, BatchShapeIsNOutChannelsByImage) {
  auto model = testfix::tiny_model();
  std::vector<nn::Tensor> inputs;
  std::vector<const nn::Tensor*> ptrs;
  for (std::uint64_t i = 0; i < 3; ++i) inputs.push_back(testfix::random_input(i));
  for (const nn::Tensor& t : inputs) ptrs.push_back(&t);
  const nn::Tensor y = model->predict_batch(nn::stack_batch(ptrs));
  EXPECT_EQ(y.shape(), (nn::Shape{3, 3, 16, 16}));
}

TEST(PredictBatch, CongestionScoresMatchPerSampleScore) {
  auto model = testfix::tiny_model();
  model->set_deterministic_inference(true);
  std::vector<nn::Tensor> inputs;
  std::vector<const nn::Tensor*> ptrs;
  for (std::uint64_t i = 0; i < 4; ++i) inputs.push_back(testfix::random_input(i));
  for (const nn::Tensor& t : inputs) ptrs.push_back(&t);
  const nn::Tensor batched = model->predict_batch(nn::stack_batch(ptrs));
  const std::vector<double> scores = model->congestion_scores(batched);
  ASSERT_EQ(scores.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const double single = model->congestion_score(nn::slice_batch(batched, static_cast<Index>(i)));
    EXPECT_DOUBLE_EQ(scores[i], single);
  }
}

TEST(PredictBatch, WrongShapeFailsWithClearMessage) {
  auto model = testfix::tiny_model();
  try {
    model->predict(nn::Tensor(nn::Shape{1, 4, 8, 8}));  // model expects 16x16
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("predict"), std::string::npos);
    EXPECT_NE(what.find("16"), std::string::npos);  // names the expected extent
  }
  // predict() is single-sample; batches must go through predict_batch.
  EXPECT_THROW(model->predict(nn::Tensor(nn::Shape{2, 4, 16, 16})), CheckError);
  EXPECT_NO_THROW(model->predict_batch(nn::Tensor(nn::Shape{2, 4, 16, 16})));
  // Rank and channel mismatches fail up front too.
  EXPECT_THROW(model->predict(nn::Tensor(nn::Shape{4, 16, 16})), CheckError);
  EXPECT_THROW(model->predict_batch(nn::Tensor(nn::Shape{2, 3, 16, 16})), CheckError);
}

}  // namespace
}  // namespace paintplace::serve
