#include "nn/im2col.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace paintplace::nn {
namespace {

TEST(ConvGeom, OutputDims) {
  const ConvGeom g{3, 8, 8, 4, 2, 1};
  EXPECT_EQ(g.out_height(), 4);
  EXPECT_EQ(g.out_width(), 4);
  EXPECT_EQ(g.col_rows(), 3 * 16);
  EXPECT_EQ(g.col_cols(), 16);
}

TEST(ConvGeom, Stride1SamePad) {
  const ConvGeom g{1, 5, 7, 3, 1, 1};
  EXPECT_EQ(g.out_height(), 5);
  EXPECT_EQ(g.out_width(), 7);
}

TEST(ConvGeom, ValidateRejectsEmptyOutput) {
  const ConvGeom g{1, 2, 2, 5, 1, 0};
  EXPECT_THROW(g.validate(), CheckError);
}

TEST(Im2col, IdentityKernelExtractsPixels) {
  // 1x1 kernel, stride 1, no pad: col == image.
  const ConvGeom g{2, 3, 3, 1, 1, 0};
  std::vector<float> image(18);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<float>(i);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, image.data(), col.data());
  for (std::size_t i = 0; i < image.size(); ++i) EXPECT_EQ(col[i], image[i]);
}

TEST(Im2col, PaddingProducesZeros) {
  const ConvGeom g{1, 2, 2, 3, 1, 1};
  std::vector<float> image = {1, 2, 3, 4};
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, image.data(), col.data());
  // First column = window centered at (0,0): top row of kernel hits padding.
  // col layout: row = (kh*3+kw), cols = 4 windows.
  EXPECT_EQ(col[0 * 4 + 0], 0.0f);  // kh=0,kw=0 at window 0 -> pad
  EXPECT_EQ(col[4 * 4 + 0], 1.0f);  // kh=1,kw=1 at window 0 -> pixel (0,0)
  EXPECT_EQ(col[4 * 4 + 3], 4.0f);  // center of window 3 -> pixel (1,1)
}

TEST(Im2col, StridedWindows) {
  const ConvGeom g{1, 4, 4, 2, 2, 0};
  std::vector<float> image(16);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<float>(i);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, image.data(), col.data());
  // Window (0,0) top-left = pixel 0; window (0,1) top-left = pixel 2.
  EXPECT_EQ(col[0 * 4 + 0], 0.0f);
  EXPECT_EQ(col[0 * 4 + 1], 2.0f);
  EXPECT_EQ(col[0 * 4 + 2], 8.0f);
  EXPECT_EQ(col[0 * 4 + 3], 10.0f);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // used by the conv backward pass.
  const ConvGeom g{3, 6, 5, 4, 2, 1};
  Rng rng(42);
  std::vector<float> x(static_cast<std::size_t>(g.channels * g.height * g.width));
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> col(y.size());
  im2col(g, x.data(), col.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    lhs += static_cast<double>(col[i]) * static_cast<double>(y[i]);
  }

  std::vector<float> back(x.size(), 0.0f);
  col2im(g, y.data(), back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(back[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2im, AccumulatesOverlaps) {
  // 2x2 kernel, stride 1: interior pixels belong to several windows.
  const ConvGeom g{1, 3, 3, 2, 1, 0};
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()), 1.0f);
  std::vector<float> image(9, 0.0f);
  col2im(g, col.data(), image.data());
  // Center pixel (1,1) is covered by all four 2x2 windows.
  EXPECT_EQ(image[4], 4.0f);
  // Corner (0,0) by exactly one.
  EXPECT_EQ(image[0], 1.0f);
}

}  // namespace
}  // namespace paintplace::nn
