#include "nn/instancenorm2d.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/gradcheck.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed, double lo = -2.0, double hi = 3.0) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

TEST(InstanceNorm2d, NormalizesEachSampleChannelPlane) {
  InstanceNorm2d in_norm("in", 3);
  const Tensor x = random_tensor(Shape{2, 3, 6, 6}, 1);
  const Tensor y = in_norm.forward(x);
  for (Index n = 0; n < 2; ++n) {
    for (Index c = 0; c < 3; ++c) {
      double sum = 0.0, sq = 0.0;
      for (Index h = 0; h < 6; ++h) {
        for (Index w = 0; w < 6; ++w) {
          sum += static_cast<double>(y.at(n, c, h, w));
          sq += static_cast<double>(y.at(n, c, h, w)) * static_cast<double>(y.at(n, c, h, w));
        }
      }
      const double mean = sum / 36.0;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(sq / 36.0 - mean * mean, 1.0, 2e-2);
    }
  }
}

TEST(InstanceNorm2d, IndependentAcrossBatch) {
  // Unlike batch norm, sample 0's statistics must not leak into sample 1:
  // scaling sample 0 leaves sample 1's output untouched.
  InstanceNorm2d in_norm("in", 1);
  Tensor x = random_tensor(Shape{2, 1, 4, 4}, 2);
  const Tensor y1 = in_norm.forward(x);
  for (Index h = 0; h < 4; ++h) {
    for (Index w = 0; w < 4; ++w) x.at(0, 0, h, w) *= 100.0f;
  }
  const Tensor y2 = in_norm.forward(x);
  for (Index h = 0; h < 4; ++h) {
    for (Index w = 0; w < 4; ++w) {
      EXPECT_NEAR(y1.at(1, 0, h, w), y2.at(1, 0, h, w), 1e-5f);
    }
  }
}

TEST(InstanceNorm2d, TrainEvalBehaveIdentically) {
  // No running statistics: eval mode computes the same normalization.
  InstanceNorm2d in_norm("in", 2);
  const Tensor x = random_tensor(Shape{1, 2, 5, 5}, 3);
  const Tensor y_train = in_norm.forward(x);
  in_norm.set_training(false);
  const Tensor y_eval = in_norm.forward(x);
  EXPECT_EQ(y_train.max_abs_diff(y_eval), 0.0f);
}

TEST(InstanceNorm2d, GammaBetaApplied) {
  InstanceNorm2d in_norm("in", 1);
  std::vector<Parameter*> params;
  in_norm.collect_parameters(params);
  ASSERT_EQ(params.size(), 2u);
  params[0]->value.fill(3.0f);
  params[1]->value.fill(0.5f);
  const Tensor y = in_norm.forward(random_tensor(Shape{1, 1, 8, 8}, 4));
  double sum = 0.0, sq = 0.0;
  for (Index i = 0; i < y.numel(); ++i) {
    sum += static_cast<double>(y[i]);
    sq += static_cast<double>(y[i]) * static_cast<double>(y[i]);
  }
  const double mean = sum / 64.0;
  EXPECT_NEAR(mean, 0.5, 1e-4);
  EXPECT_NEAR(sq / 64.0 - mean * mean, 9.0, 0.2);
}

TEST(InstanceNorm2d, GradCheck) {
  InstanceNorm2d in_norm("in", 2);
  const auto result = grad_check(in_norm, random_tensor(Shape{2, 2, 4, 4}, 5), 6, 1e-2f);
  EXPECT_LT(result.max_input_grad_error, 3e-2f);
  EXPECT_LT(result.max_param_grad_error, 3e-2f);
}

TEST(InstanceNorm2d, NoBuffersToCheckpoint) {
  InstanceNorm2d in_norm("in", 4);
  std::vector<NamedBuffer> buffers;
  in_norm.collect_buffers(buffers);
  EXPECT_TRUE(buffers.empty());
}

TEST(InstanceNorm2d, RejectsWrongChannels) {
  InstanceNorm2d in_norm("in", 3);
  EXPECT_THROW(in_norm.forward(Tensor(Shape{1, 2, 4, 4})), CheckError);
}

TEST(InstanceNorm2d, BackwardBeforeForwardThrows) {
  InstanceNorm2d in_norm("in", 1);
  EXPECT_THROW(in_norm.backward(Tensor(Shape{1, 1, 2, 2})), CheckError);
}

}  // namespace
}  // namespace paintplace::nn
