#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "nn/conv2d.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(Serialize, StreamRoundTrip) {
  TensorMap map;
  map.emplace("alpha", random_tensor(Shape{3, 4}, 1));
  map.emplace("beta", random_tensor(Shape{2, 2, 2, 2}, 2));
  map.emplace("scalarish", Tensor::scalar(4.5f));

  std::stringstream buffer;
  save_tensors(map, buffer);
  const TensorMap loaded = load_tensors(buffer);

  ASSERT_EQ(loaded.size(), 3u);
  for (const auto& [name, tensor] : map) {
    const auto it = loaded.find(name);
    ASSERT_NE(it, loaded.end()) << name;
    EXPECT_EQ(it->second.shape(), tensor.shape());
    EXPECT_EQ(it->second.max_abs_diff(tensor), 0.0f);
  }
}

TEST(Serialize, RejectsGarbageMagic) {
  std::stringstream buffer;
  buffer << "not a checkpoint at all";
  EXPECT_THROW(load_tensors(buffer), CheckError);
}

TEST(Serialize, RejectsTruncatedStream) {
  TensorMap map;
  map.emplace("t", random_tensor(Shape{64}, 3));
  std::stringstream buffer;
  save_tensors(map, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_tensors(cut), CheckError);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pp_ckpt_test.bin";
  TensorMap map;
  map.emplace("weights", random_tensor(Shape{8, 4, 4, 4}, 4));
  save_tensors_file(map, path);
  const TensorMap loaded = load_tensors_file(path);
  EXPECT_EQ(loaded.at("weights").max_abs_diff(map.at("weights")), 0.0f);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_tensors_file("/nonexistent/dir/ckpt.bin"), CheckError);
}

TEST(Serialize, SnapshotRestoreRoundTripsModule) {
  Rng rng(5);
  Conv2d conv_a("layer", 2, 3, 3, 1, 1, rng);
  const TensorMap snapshot = snapshot_parameters(conv_a);

  Rng rng2(99);  // different init
  Conv2d conv_b("layer", 2, 3, 3, 1, 1, rng2);
  std::vector<Parameter*> pa, pb;
  conv_a.collect_parameters(pa);
  conv_b.collect_parameters(pb);
  ASSERT_GT(pa[0]->value.max_abs_diff(pb[0]->value), 0.0f);

  restore_parameters(conv_b, snapshot);
  EXPECT_EQ(pa[0]->value.max_abs_diff(pb[0]->value), 0.0f);
  EXPECT_EQ(pa[1]->value.max_abs_diff(pb[1]->value), 0.0f);
}

TEST(Serialize, RestoreMissingParameterThrows) {
  Rng rng(6);
  Conv2d conv("layer", 1, 1, 3, 1, 1, rng);
  TensorMap empty;
  EXPECT_THROW(restore_parameters(conv, empty), CheckError);
}

TEST(Serialize, RestoreShapeMismatchThrows) {
  Rng rng(7);
  Conv2d conv("layer", 1, 1, 3, 1, 1, rng);
  TensorMap map;
  map.emplace("layer.weight", Tensor(Shape{2, 1, 3, 3}));
  map.emplace("layer.bias", Tensor(Shape{1}));
  EXPECT_THROW(restore_parameters(conv, map), CheckError);
}

TEST(Serialize, ExtraEntriesIgnored) {
  Rng rng(8);
  Conv2d conv("layer", 1, 1, 3, 1, 1, rng);
  TensorMap map = snapshot_parameters(conv);
  map.emplace("unrelated.tensor", Tensor(Shape{5}));
  EXPECT_NO_THROW(restore_parameters(conv, map));
}

}  // namespace
}  // namespace paintplace::nn
