#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace paintplace::nn {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4);
  EXPECT_EQ(s.numel(), 120);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[3], 5);
}

TEST(Shape, ScalarShape) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, EqualityAndString) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_EQ((Shape{1, 2, 3}).str(), "[1,2,3]");
}

TEST(Shape, RejectsNegativeExtent) { EXPECT_THROW(Shape({2, -1}), CheckError); }

TEST(Shape, OutOfRangeDimThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s[2], CheckError);
  EXPECT_THROW(s[-1], CheckError);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (Index i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{4}, 2.5f);
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
  t.fill(-1.0f);
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(t[i], -1.0f);
}

TEST(Tensor, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::scalar(3.25f).item(), 3.25f);
  EXPECT_THROW(Tensor(Shape{2}).item(), CheckError);
}

TEST(Tensor, At4dRoundTrip) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  t.at(0, 0, 0, 0) = -2.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 7.0f);
  EXPECT_EQ(t.at(0, 0, 0, 0), -2.0f);
  // NCHW layout: last axis contiguous.
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, At4dBoundsChecked) {
  Tensor t(Shape{1, 1, 2, 2});
  EXPECT_THROW(t.at(0, 0, 2, 0), CheckError);
  EXPECT_THROW(t.at(0, 1, 0, 0), CheckError);
  EXPECT_THROW(t.at(-1, 0, 0, 0), CheckError);
}

TEST(Tensor, At4dOnWrongRankThrows) {
  Tensor t(Shape{4});
  EXPECT_THROW(t.at(0, 0, 0, 0), CheckError);
}

TEST(Tensor, FlatIndexBoundsChecked) {
  Tensor t(Shape{3});
  EXPECT_THROW(t[3], CheckError);
  EXPECT_THROW(t[-1], CheckError);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{3}, {1.0f, 2.0f}), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  for (Index i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
  EXPECT_THROW(t.reshaped(Shape{4}), CheckError);
}

TEST(Tensor, AddSubScale) {
  Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {10, 20, 30});
  a.add_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a[1], -8.0f);
  a.mul_(2.0f);
  EXPECT_FLOAT_EQ(a[0], -8.0f);
}

TEST(Tensor, AddShapeMismatchThrows) {
  Tensor a(Shape{3});
  EXPECT_THROW(a.add_(Tensor(Shape{4})), CheckError);
}

TEST(Tensor, Reductions) {
  const Tensor t(Shape{4}, {-1.0f, 2.0f, 0.5f, -3.5f});
  EXPECT_DOUBLE_EQ(t.sum(), -2.0);
  EXPECT_DOUBLE_EQ(t.mean(), -0.5);
  EXPECT_FLOAT_EQ(t.min(), -3.5f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
}

TEST(Tensor, MaxAbsDiff) {
  const Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {1.5f, 2, 1});
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 2.0f);
  EXPECT_FLOAT_EQ(a.max_abs_diff(a), 0.0f);
}

}  // namespace
}  // namespace paintplace::nn
