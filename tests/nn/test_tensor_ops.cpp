#include "nn/tensor_ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(ConcatChannels, LayoutIsChannelMajor) {
  Tensor a(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{1, 2, 2, 2}, {5, 6, 7, 8, 9, 10, 11, 12});
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_EQ(c.at(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(c.at(0, 1, 0, 0), 5.0f);
  EXPECT_EQ(c.at(0, 2, 1, 1), 12.0f);
}

TEST(ConcatChannels, BatchDimensionHandled) {
  const Tensor a = random_tensor(Shape{2, 3, 4, 4}, 1);
  const Tensor b = random_tensor(Shape{2, 2, 4, 4}, 2);
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 5, 4, 4}));
  for (Index n = 0; n < 2; ++n) {
    EXPECT_EQ(c.at(n, 0, 1, 2), a.at(n, 0, 1, 2));
    EXPECT_EQ(c.at(n, 3, 1, 2), b.at(n, 0, 1, 2));
    EXPECT_EQ(c.at(n, 4, 3, 3), b.at(n, 1, 3, 3));
  }
}

TEST(ConcatChannels, MismatchedSpatialThrows) {
  EXPECT_THROW(concat_channels(Tensor(Shape{1, 1, 2, 2}), Tensor(Shape{1, 1, 3, 2})), CheckError);
  EXPECT_THROW(concat_channels(Tensor(Shape{1, 1, 2, 2}), Tensor(Shape{2, 1, 2, 2})), CheckError);
}

TEST(SplitChannels, InvertsConcat) {
  const Tensor a = random_tensor(Shape{2, 3, 5, 4}, 3);
  const Tensor b = random_tensor(Shape{2, 4, 5, 4}, 4);
  const auto [a2, b2] = split_channels(concat_channels(a, b), 3);
  EXPECT_EQ(a2.shape(), a.shape());
  EXPECT_EQ(b2.shape(), b.shape());
  EXPECT_EQ(a2.max_abs_diff(a), 0.0f);
  EXPECT_EQ(b2.max_abs_diff(b), 0.0f);
}

TEST(SplitChannels, BoundaryValidation) {
  const Tensor t(Shape{1, 4, 2, 2});
  EXPECT_THROW(split_channels(t, 0), CheckError);
  EXPECT_THROW(split_channels(t, 4), CheckError);
  EXPECT_NO_THROW(split_channels(t, 1));
  EXPECT_NO_THROW(split_channels(t, 3));
}

}  // namespace
}  // namespace paintplace::nn
