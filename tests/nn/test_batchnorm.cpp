#include "nn/batchnorm2d.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/gradcheck.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed, double lo = -1.0, double hi = 1.0) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

TEST(BatchNorm2d, NormalizesPerChannelInTraining) {
  BatchNorm2d bn("bn", 3);
  const Tensor x = random_tensor(Shape{2, 3, 5, 5}, 1, -4.0, 6.0);
  const Tensor y = bn.forward(x);
  for (Index c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    for (Index n = 0; n < 2; ++n) {
      for (Index h = 0; h < 5; ++h) {
        for (Index w = 0; w < 5; ++w) {
          sum += static_cast<double>(y.at(n, c, h, w));
          sq += static_cast<double>(y.at(n, c, h, w)) * static_cast<double>(y.at(n, c, h, w));
        }
      }
    }
    const double mean = sum / 50.0;
    const double var = sq / 50.0 - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, GammaBetaApplied) {
  BatchNorm2d bn("bn", 1);
  std::vector<Parameter*> params;
  bn.collect_parameters(params);
  params[0]->value.fill(2.0f);   // gamma
  params[1]->value.fill(-1.0f);  // beta
  const Tensor x = random_tensor(Shape{1, 1, 8, 8}, 2);
  const Tensor y = bn.forward(x);
  double sum = 0.0, sq = 0.0;
  for (Index i = 0; i < y.numel(); ++i) {
    sum += static_cast<double>(y[i]);
    sq += static_cast<double>(y[i]) * static_cast<double>(y[i]);
  }
  const double mean = sum / static_cast<double>(y.numel());
  EXPECT_NEAR(mean, -1.0, 1e-4);
  EXPECT_NEAR(sq / static_cast<double>(y.numel()) - mean * mean, 4.0, 5e-2);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn("bn", 2);
  // Train on data with known statistics to populate running stats.
  for (int i = 0; i < 200; ++i) {
    bn.forward(random_tensor(Shape{1, 2, 6, 6}, 100 + static_cast<std::uint64_t>(i), 1.0, 3.0));
  }
  bn.set_training(false);
  // A constant input at the running mean should map to ~beta (0).
  Tensor x(Shape{1, 2, 4, 4});
  for (Index c = 0; c < 2; ++c) {
    const float m = bn.running_mean()[c];
    for (Index h = 0; h < 4; ++h) {
      for (Index w = 0; w < 4; ++w) x.at(0, c, h, w) = m;
    }
  }
  const Tensor y = bn.forward(x);
  for (Index i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.0f, 1e-3f);
}

TEST(BatchNorm2d, EvalIsDeterministicAndStateless) {
  BatchNorm2d bn("bn", 2);
  bn.forward(random_tensor(Shape{1, 2, 6, 6}, 3));
  bn.set_training(false);
  const Tensor x = random_tensor(Shape{1, 2, 6, 6}, 4);
  const Tensor y1 = bn.forward(x);
  const Tensor y2 = bn.forward(x);
  EXPECT_EQ(y1.max_abs_diff(y2), 0.0f);
}

TEST(BatchNorm2d, GradCheck) {
  BatchNorm2d bn("bn", 3);
  const auto result = grad_check(bn, random_tensor(Shape{2, 3, 4, 4}, 5), 7, 1e-2f);
  EXPECT_LT(result.max_input_grad_error, 3e-2f);
  EXPECT_LT(result.max_param_grad_error, 3e-2f);
}

TEST(BatchNorm2d, SingleSpatialElementSurvives) {
  // Bottleneck-like input (1x1 spatial, batch 1): variance is zero; the
  // normalized output must stay finite (epsilon guards the division).
  BatchNorm2d bn("bn", 4);
  const Tensor y = bn.forward(random_tensor(Shape{1, 4, 1, 1}, 6));
  for (Index i = 0; i < y.numel(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

TEST(BatchNorm2d, RejectsWrongChannels) {
  BatchNorm2d bn("bn", 3);
  EXPECT_THROW(bn.forward(Tensor(Shape{1, 2, 4, 4})), CheckError);
}

TEST(BatchNorm2d, BackwardInEvalModeThrows) {
  BatchNorm2d bn("bn", 1);
  bn.forward(Tensor(Shape{1, 1, 2, 2}));
  bn.set_training(false);
  bn.forward(Tensor(Shape{1, 1, 2, 2}));
  EXPECT_THROW(bn.backward(Tensor(Shape{1, 1, 2, 2})), CheckError);
}

}  // namespace
}  // namespace paintplace::nn
