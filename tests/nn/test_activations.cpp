#include "nn/activations.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/gradcheck.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  return t;
}

TEST(LeakyReLU, ForwardValues) {
  LeakyReLU act(0.2f);
  const Tensor x(Shape{4}, {-2.0f, -0.5f, 0.0f, 3.0f});
  const Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y[0], -0.4f);
  EXPECT_FLOAT_EQ(y[1], -0.1f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 3.0f);
}

TEST(LeakyReLU, BackwardSlopes) {
  LeakyReLU act(0.2f);
  act.forward(Tensor(Shape{2}, {-1.0f, 1.0f}));
  const Tensor g = act.backward(Tensor(Shape{2}, {1.0f, 1.0f}));
  EXPECT_FLOAT_EQ(g[0], 0.2f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU act;
  const Tensor y = act.forward(Tensor(Shape{3}, {-1.0f, 0.0f, 2.0f}));
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(Tanh, MatchesStdTanh) {
  Tanh act;
  const Tensor x = random_tensor(Shape{16}, 3);
  const Tensor y = act.forward(x);
  for (Index i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], std::tanh(x[i]));
}

TEST(Tanh, OutputInOpenUnitInterval) {
  Tanh act;
  const Tensor y = act.forward(Tensor(Shape{2}, {-50.0f, 50.0f}));
  EXPECT_GE(y[0], -1.0f);
  EXPECT_LE(y[1], 1.0f);
}

TEST(Sigmoid, MatchesClosedForm) {
  Sigmoid act;
  const Tensor x = random_tensor(Shape{16}, 4);
  const Tensor y = act.forward(x);
  for (Index i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y[i], 1.0f / (1.0f + std::exp(-x[i])), 1e-6f);
  }
}

TEST(Sigmoid, SymmetryAroundHalf) {
  Sigmoid act;
  const Tensor y = act.forward(Tensor(Shape{2}, {-1.3f, 1.3f}));
  EXPECT_NEAR(y[0] + y[1], 1.0f, 1e-6f);
}

template <typename Act>
class ActivationGradTest : public ::testing::Test {};

using ActTypes = ::testing::Types<LeakyReLU, ReLU, Tanh, Sigmoid>;
TYPED_TEST_SUITE(ActivationGradTest, ActTypes);

TYPED_TEST(ActivationGradTest, GradCheck) {
  TypeParam act;
  // Offset inputs away from 0 so the ReLU kink does not poison the
  // finite-difference estimate.
  Tensor x = random_tensor(Shape{1, 2, 4, 4}, 7);
  for (Index i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.15f) x[i] = x[i] < 0.0f ? -0.2f : 0.2f;
  }
  const auto result = grad_check(act, x, 8, 1e-3f);
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_EQ(result.max_param_grad_error, 0.0f);  // activations are parameter-free
}

TYPED_TEST(ActivationGradTest, BackwardBeforeForwardThrows) {
  TypeParam act;
  EXPECT_THROW(act.backward(Tensor(Shape{2})), CheckError);
}

TYPED_TEST(ActivationGradTest, ShapePreserved) {
  TypeParam act;
  const Tensor y = act.forward(random_tensor(Shape{2, 3, 5, 7}, 9));
  EXPECT_EQ(y.shape(), (Shape{2, 3, 5, 7}));
}

}  // namespace
}  // namespace paintplace::nn
