#include "nn/adam.h"

#include <gtest/gtest.h>

#include <cmath>

namespace paintplace::nn {
namespace {

/// Minimal quadratic "module": loss = 0.5 * ||w - target||^2.
struct Quadratic {
  Parameter w{"w", Shape{2}};
  Tensor target{Shape{2}, {3.0f, -2.0f}};

  double loss() const {
    double total = 0.0;
    for (Index i = 0; i < 2; ++i) {
      const double d = static_cast<double>(w.value[i]) - static_cast<double>(target[i]);
      total += 0.5 * d * d;
    }
    return total;
  }
  void compute_grad() {
    for (Index i = 0; i < 2; ++i) w.grad[i] = w.value[i] - target[i];
  }
};

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q;
  Adam opt({&q.w}, AdamConfig{0.1f, 0.9f, 0.999f, 1e-8f});
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    q.compute_grad();
    opt.step();
  }
  EXPECT_NEAR(q.w.value[0], 3.0f, 1e-2f);
  EXPECT_NEAR(q.w.value[1], -2.0f, 1e-2f);
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // With bias correction the very first Adam step has magnitude ~lr.
  Parameter p("p", Shape{1});
  Adam opt({&p}, AdamConfig{0.01f, 0.9f, 0.999f, 1e-8f});
  p.grad[0] = 123.0f;  // any nonzero gradient
  opt.step();
  EXPECT_NEAR(std::fabs(p.value[0]), 0.01f, 1e-4f);
}

TEST(Adam, PaperDefaults) {
  const AdamConfig cfg;
  EXPECT_FLOAT_EQ(cfg.lr, 2e-4f);
  EXPECT_FLOAT_EQ(cfg.beta1, 0.5f);
  EXPECT_FLOAT_EQ(cfg.beta2, 0.999f);
  EXPECT_FLOAT_EQ(cfg.eps, 1e-8f);
}

TEST(Adam, ZeroGradClearsGradients) {
  Parameter p("p", Shape{3});
  p.grad.fill(5.0f);
  Adam opt({&p});
  opt.zero_grad();
  for (Index i = 0; i < 3; ++i) EXPECT_EQ(p.grad[i], 0.0f);
}

TEST(Adam, StepCountIncrements) {
  Parameter p("p", Shape{1});
  Adam opt({&p});
  EXPECT_EQ(opt.step_count(), 0);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.step_count(), 2);
}

TEST(Adam, ZeroGradientLeavesParamsUnchanged) {
  Parameter p("p", Shape{2});
  p.value[0] = 1.5f;
  p.value[1] = -0.5f;
  Adam opt({&p});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.5f);
  EXPECT_FLOAT_EQ(p.value[1], -0.5f);
}

TEST(Adam, RejectsBadConfig) {
  Parameter p("p", Shape{1});
  EXPECT_THROW(Adam({&p}, AdamConfig{-1.0f, 0.5f, 0.999f, 1e-8f}), CheckError);
  EXPECT_THROW(Adam({&p}, AdamConfig{1e-3f, 1.0f, 0.999f, 1e-8f}), CheckError);
  EXPECT_THROW(Adam({&p}, AdamConfig{1e-3f, 0.5f, 0.999f, 0.0f}), CheckError);
}

TEST(Adam, StateRoundTripReplaysTrajectoryBitwise) {
  // Interrupt-and-restore at step 5 must replay steps 6..10 exactly: same
  // moments + same step count (bias correction) => identical parameters.
  Quadratic straight, resumed;
  Adam opt_straight({&straight.w}, AdamConfig{0.1f, 0.9f, 0.999f, 1e-8f});
  for (int i = 0; i < 5; ++i) {
    straight.compute_grad();
    opt_straight.step();
  }

  TensorMap state;
  opt_straight.export_state(state, "opt/");
  resumed.w.value = straight.w.value;  // checkpointed weights
  Adam opt_resumed({&resumed.w}, AdamConfig{0.1f, 0.9f, 0.999f, 1e-8f});
  opt_resumed.import_state(state, "opt/");
  EXPECT_EQ(opt_resumed.step_count(), 5);

  for (int i = 0; i < 5; ++i) {
    straight.compute_grad();
    opt_straight.step();
    resumed.compute_grad();
    opt_resumed.step();
  }
  EXPECT_EQ(resumed.w.value[0], straight.w.value[0]);  // bitwise, no tolerance
  EXPECT_EQ(resumed.w.value[1], straight.w.value[1]);
}

TEST(Adam, StepCountSurvivesLimbEncodingPastTwentyBits) {
  // The step count rides in float tensors as 20-bit limbs; counts past 2^20
  // must round-trip exactly.
  Parameter p("p", Shape{1});
  Adam opt({&p});
  for (Index i = 0; i < (Index{1} << 20) + 3; ++i) opt.step();

  TensorMap state;
  opt.export_state(state, "opt/");
  Parameter q("p", Shape{1});
  Adam restored({&q});
  restored.import_state(state, "opt/");
  EXPECT_EQ(restored.step_count(), (Index{1} << 20) + 3);
}

TEST(Adam, HasStateKeysOffThePrefix) {
  Parameter p("p", Shape{1});
  Adam opt({&p});
  TensorMap state;
  EXPECT_FALSE(Adam::has_state(state, "opt_g/"));
  opt.export_state(state, "opt_g/");
  EXPECT_TRUE(Adam::has_state(state, "opt_g/"));
  EXPECT_FALSE(Adam::has_state(state, "opt_d/"));
}

TEST(Adam, ImportRejectsMissingOrMismatchedState) {
  Parameter p("p", Shape{2});
  Adam opt({&p});
  TensorMap state;
  EXPECT_THROW(opt.import_state(state, "opt/"), CheckError);  // no state at all

  opt.export_state(state, "opt/");
  Parameter wrong("p", Shape{3});
  Adam other({&wrong});
  EXPECT_THROW(other.import_state(state, "opt/"), CheckError);  // shape mismatch
}

TEST(Adam, MultipleParametersIndependent) {
  Parameter a("a", Shape{1}), b("b", Shape{1});
  Adam opt({&a, &b}, AdamConfig{0.1f, 0.9f, 0.999f, 1e-8f});
  a.grad[0] = 1.0f;
  b.grad[0] = 0.0f;
  opt.step();
  EXPECT_LT(a.value[0], 0.0f);
  EXPECT_EQ(b.value[0], 0.0f);
}

}  // namespace
}  // namespace paintplace::nn
