#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "nn/gradcheck.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(Conv2d, OutputShapeStride2) {
  Rng rng(1);
  Conv2d conv("c", 3, 8, 4, 2, 1, rng);
  const Tensor out = conv.forward(random_tensor(Shape{2, 3, 16, 16}, 2));
  EXPECT_EQ(out.shape(), (Shape{2, 8, 8, 8}));
}

TEST(Conv2d, OutputShapeStride1) {
  Rng rng(1);
  Conv2d conv("c", 2, 4, 3, 1, 1, rng);
  const Tensor out = conv.forward(random_tensor(Shape{1, 2, 7, 9}, 3));
  EXPECT_EQ(out.shape(), (Shape{1, 4, 7, 9}));
}

TEST(Conv2d, PatchShrinkKernel4Stride1) {
  // The discriminator's 32->31->30 progression (Fig. 5).
  Rng rng(1);
  Conv2d conv("c", 1, 1, 4, 1, 1, rng);
  const Tensor out = conv.forward(random_tensor(Shape{1, 1, 32, 32}, 4));
  EXPECT_EQ(out.dim(2), 31);
  EXPECT_EQ(out.dim(3), 31);
}

TEST(Conv2d, KnownValueIdentityKernel) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 1, 1, 0, rng);
  conv.weight().value.fill(1.0f);
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  ASSERT_EQ(params.size(), 2u);
  params[1]->value.fill(0.5f);  // bias
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor out = conv.forward(x);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 4.5f);
}

TEST(Conv2d, SumKernelComputesWindowSums) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 2, 2, 0, rng, /*bias=*/false);
  conv.weight().value.fill(1.0f);
  Tensor x(Shape{1, 1, 4, 4});
  for (Index i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor out = conv.forward(x);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 0 + 1 + 4 + 5);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 10 + 11 + 14 + 15);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(1);
  Conv2d conv("c", 3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(random_tensor(Shape{1, 2, 8, 8}, 5)), CheckError);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 3, 1, 1, rng);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 1, 4, 4})), CheckError);
}

TEST(Conv2d, GradCheckStride2) {
  Rng rng(11);
  Conv2d conv("c", 2, 3, 4, 2, 1, rng);
  const auto result = grad_check(conv, random_tensor(Shape{1, 2, 8, 8}, 12));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(Conv2d, GradCheckStride1NoBias) {
  Rng rng(13);
  Conv2d conv("c", 3, 2, 3, 1, 1, rng, /*bias=*/false);
  const auto result = grad_check(conv, random_tensor(Shape{1, 3, 5, 5}, 14));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(Conv2d, GradCheckBatch2) {
  Rng rng(15);
  Conv2d conv("c", 1, 2, 2, 2, 0, rng);
  const auto result = grad_check(conv, random_tensor(Shape{2, 1, 4, 4}, 16));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(Conv2d, GradCheckBatch3OddShape) {
  // The batched backward lowering at a shape that is not a tidy power of two:
  // odd spatial extent, non-square, batch that leaves partial GEMM tiles.
  Rng rng(21);
  Conv2d conv("c", 3, 2, 3, 2, 1, rng);
  const auto result = grad_check(conv, random_tensor(Shape{3, 3, 7, 5}, 22));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(Conv2d, BatchedBackwardBitExactVsPerSample) {
  // A batch-B backward must produce bit-identical gradients to B sequential
  // single-sample backwards accumulated in order — the guarantee the
  // gradient-accumulation training path relies on.
  const Index B = 3;
  Rng rng_a(31), rng_b(31);
  Conv2d batched("c", 3, 4, 4, 2, 1, rng_a);
  Conv2d sequential("c", 3, 4, 4, 2, 1, rng_b);
  const Tensor x = random_tensor(Shape{B, 3, 10, 6}, 32);
  const Tensor go = random_tensor(Shape{B, 4, 5, 3}, 33);

  const Tensor out_b = batched.forward(x);
  const Tensor gin_b = batched.backward(go);

  Tensor gin_s(x.shape());
  const Index x_floats = x.numel() / B, go_floats = go.numel() / B, out_floats = out_b.numel() / B;
  for (Index n = 0; n < B; ++n) {
    Tensor xn(Shape{1, 3, 10, 6});
    std::copy_n(x.data() + n * x_floats, x_floats, xn.data());
    Tensor gon(Shape{1, 4, 5, 3});
    std::copy_n(go.data() + n * go_floats, go_floats, gon.data());
    const Tensor outn = sequential.forward(xn);
    for (Index i = 0; i < out_floats; ++i) {
      ASSERT_EQ(outn[i], out_b[n * out_floats + i]) << "forward diverged at sample " << n;
    }
    const Tensor ginn = sequential.backward(gon);
    std::copy_n(ginn.data(), x_floats, gin_s.data() + n * x_floats);
  }
  EXPECT_EQ(gin_b.max_abs_diff(gin_s), 0.0f) << "input gradient not bit-exact";

  const auto params_b = batched.parameters();
  const auto params_s = sequential.parameters();
  ASSERT_EQ(params_b.size(), params_s.size());
  for (std::size_t p = 0; p < params_b.size(); ++p) {
    EXPECT_EQ(params_b[p]->grad.max_abs_diff(params_s[p]->grad), 0.0f)
        << params_b[p]->name << " gradient not bit-exact";
  }
}

TEST(Conv2d, GradsAccumulateAcrossBackwardCalls) {
  Rng rng(17);
  Conv2d conv("c", 1, 1, 3, 1, 1, rng);
  const Tensor x = random_tensor(Shape{1, 1, 4, 4}, 18);
  const Tensor g = random_tensor(Shape{1, 1, 4, 4}, 19);
  conv.zero_grad();
  conv.forward(x);
  conv.backward(g);
  const Tensor grad_once = conv.weight().grad;
  conv.forward(x);
  conv.backward(g);
  for (Index i = 0; i < grad_once.numel(); ++i) {
    EXPECT_NEAR(conv.weight().grad[i], 2.0f * grad_once[i], 1e-4f);
  }
}

TEST(Conv2d, ParameterNamesAndShapes) {
  Rng rng(1);
  Conv2d conv("enc0", 4, 8, 4, 2, 1, rng);
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name, "enc0.weight");
  EXPECT_EQ(params[0]->value.shape(), (Shape{8, 4, 4, 4}));
  EXPECT_EQ(params[1]->name, "enc0.bias");
  EXPECT_EQ(params[1]->value.shape(), (Shape{8}));
}

}  // namespace
}  // namespace paintplace::nn
