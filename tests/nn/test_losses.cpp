#include "nn/losses.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed, double lo = -3.0, double hi = 3.0) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

double ref_bce(const Tensor& logits, const Tensor& target) {
  double total = 0.0;
  for (Index i = 0; i < logits.numel(); ++i) {
    const double p = 1.0 / (1.0 + std::exp(-static_cast<double>(logits[i])));
    const double t = static_cast<double>(target[i]);
    total += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
  }
  return total / static_cast<double>(logits.numel());
}

TEST(BceWithLogits, MatchesNaiveFormula) {
  BceWithLogitsLoss loss;
  const Tensor logits = random_tensor(Shape{1, 1, 4, 4}, 1);
  const Tensor target = random_tensor(Shape{1, 1, 4, 4}, 2, 0.0, 1.0);
  EXPECT_NEAR(loss.forward(logits, target), ref_bce(logits, target), 1e-5);
}

TEST(BceWithLogits, StableForExtremeLogits) {
  BceWithLogitsLoss loss;
  const Tensor logits(Shape{4}, {80.0f, -80.0f, 80.0f, -80.0f});
  const Tensor target(Shape{4}, {1.0f, 0.0f, 0.0f, 1.0f});
  const float v = loss.forward(logits, target);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(v, 40.0f, 1e-3f);  // two confident-wrong terms of |l| each
}

TEST(BceWithLogits, PerfectPredictionNearZero) {
  BceWithLogitsLoss loss;
  const Tensor logits(Shape{2}, {20.0f, -20.0f});
  const Tensor target(Shape{2}, {1.0f, 0.0f});
  EXPECT_LT(loss.forward(logits, target), 1e-6f);
}

TEST(BceWithLogits, ScalarTargetBroadcast) {
  BceWithLogitsLoss loss;
  const Tensor logits = random_tensor(Shape{8}, 3);
  const float via_scalar = loss.forward(logits, 1.0f);
  const float via_tensor = loss.forward(logits, Tensor::full(Shape{8}, 1.0f));
  EXPECT_FLOAT_EQ(via_scalar, via_tensor);
}

TEST(BceWithLogits, GradientMatchesFiniteDifference) {
  BceWithLogitsLoss loss;
  Tensor logits = random_tensor(Shape{6}, 4);
  const Tensor target = random_tensor(Shape{6}, 5, 0.0, 1.0);
  loss.forward(logits, target);
  const Tensor grad = loss.backward();
  const float eps = 1e-3f;
  for (Index i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    BceWithLogitsLoss probe;
    const double numeric = (static_cast<double>(probe.forward(lp, target)) -
                            static_cast<double>(probe.forward(lm, target))) /
                           (2.0 * static_cast<double>(eps));
    EXPECT_NEAR(grad[i], numeric, 1e-3);
  }
}

TEST(BceWithLogits, ShapeMismatchThrows) {
  BceWithLogitsLoss loss;
  EXPECT_THROW(loss.forward(Tensor(Shape{2}), Tensor(Shape{3})), CheckError);
}

TEST(L1Loss, KnownValue) {
  L1Loss loss;
  const Tensor a(Shape{4}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor b(Shape{4}, {2.0f, 2.0f, 1.0f, 8.0f});
  EXPECT_FLOAT_EQ(loss.forward(a, b), (1.0f + 0.0f + 2.0f + 4.0f) / 4.0f);
}

TEST(L1Loss, ZeroOnIdentical) {
  L1Loss loss;
  const Tensor a = random_tensor(Shape{16}, 6);
  EXPECT_FLOAT_EQ(loss.forward(a, a), 0.0f);
}

TEST(L1Loss, GradientIsSignOverN) {
  L1Loss loss;
  const Tensor a(Shape{3}, {2.0f, -1.0f, 0.0f});
  const Tensor b(Shape{3}, {1.0f, 1.0f, 0.0f});
  loss.forward(a, b);
  const Tensor g = loss.backward();
  EXPECT_FLOAT_EQ(g[0], 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(g[1], -1.0f / 3.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(L1Loss, GradientMatchesFiniteDifference) {
  L1Loss loss;
  // Keep |a-b| away from 0 so the kink is not straddled.
  Tensor a = random_tensor(Shape{8}, 7);
  Tensor b = random_tensor(Shape{8}, 8);
  for (Index i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) < 0.05f) a[i] = b[i] + 0.1f;
  }
  loss.forward(a, b);
  const Tensor grad = loss.backward();
  const float eps = 1e-3f;
  for (Index i = 0; i < a.numel(); ++i) {
    Tensor ap = a, am = a;
    ap[i] += eps;
    am[i] -= eps;
    L1Loss probe;
    const double numeric = (static_cast<double>(probe.forward(ap, b)) -
                            static_cast<double>(probe.forward(am, b))) /
                           (2.0 * static_cast<double>(eps));
    EXPECT_NEAR(grad[i], numeric, 1e-4);
  }
}

TEST(L1Loss, BackwardBeforeForwardThrows) {
  L1Loss loss;
  EXPECT_THROW(loss.backward(), CheckError);
}

}  // namespace
}  // namespace paintplace::nn
