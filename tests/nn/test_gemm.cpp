#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace paintplace::nn {
namespace {

/// Reference triple-loop GEMM (no transposition).
std::vector<float> ref_gemm(Index M, Index N, Index K, float alpha, const std::vector<float>& A,
                            const std::vector<float>& B, float beta, std::vector<float> C) {
  for (Index i = 0; i < M; ++i) {
    for (Index j = 0; j < N; ++j) {
      double acc = 0.0;
      for (Index k = 0; k < K; ++k) {
        acc += static_cast<double>(A[static_cast<std::size_t>(i * K + k)]) *
               static_cast<double>(B[static_cast<std::size_t>(k * N + j)]);
      }
      auto& c = C[static_cast<std::size_t>(i * N + j)];
      c = alpha * static_cast<float>(acc) + beta * c;
    }
  }
  return C;
}

std::vector<float> random_vec(Index n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<float> transpose(const std::vector<float>& m, Index rows, Index cols) {
  std::vector<float> t(m.size());
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      t[static_cast<std::size_t>(c * rows + r)] = m[static_cast<std::size_t>(r * cols + c)];
    }
  }
  return t;
}

struct GemmDims {
  Index M, N, K;
};

class GemmParamTest : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmParamTest, MatchesReference) {
  const auto [M, N, K] = GetParam();
  Rng rng(static_cast<std::uint64_t>(M * 1000 + N * 10 + K));
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(K * N, rng);
  auto C = random_vec(M * N, rng);
  const auto expected = ref_gemm(M, N, K, 1.0f, A, B, 0.0f, C);
  sgemm(M, N, K, 1.0f, A.data(), B.data(), 0.0f, C.data());
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], expected[i], 1e-4f) << i;
}

TEST_P(GemmParamTest, TransposedAMatchesReference) {
  const auto [M, N, K] = GetParam();
  Rng rng(static_cast<std::uint64_t>(M * 999 + N * 7 + K));
  const auto A = random_vec(M * K, rng);  // logical MxK
  const auto At = transpose(A, M, K);     // stored KxM
  const auto B = random_vec(K * N, rng);
  std::vector<float> C(static_cast<std::size_t>(M * N), 0.0f);
  const auto expected = ref_gemm(M, N, K, 1.0f, A, B, 0.0f, C);
  sgemm_at(M, N, K, 1.0f, At.data(), B.data(), 0.0f, C.data());
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], expected[i], 1e-4f) << i;
}

TEST_P(GemmParamTest, TransposedBMatchesReference) {
  const auto [M, N, K] = GetParam();
  Rng rng(static_cast<std::uint64_t>(M * 31 + N * 17 + K));
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(K * N, rng);  // logical KxN
  const auto Bt = transpose(B, K, N);     // stored NxK
  std::vector<float> C(static_cast<std::size_t>(M * N), 0.0f);
  const auto expected = ref_gemm(M, N, K, 1.0f, A, B, 0.0f, C);
  sgemm_bt(M, N, K, 1.0f, A.data(), Bt.data(), 0.0f, C.data());
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], expected[i], 1e-4f) << i;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmParamTest,
                         ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                                           GemmDims{16, 16, 16}, GemmDims{65, 33, 129},
                                           GemmDims{128, 1, 64}, GemmDims{1, 128, 300},
                                           GemmDims{70, 70, 4}));

TEST(Gemm, AlphaBetaCombine) {
  // C = 2*A*B + 3*C with A = I.
  const Index n = 4;
  std::vector<float> A(static_cast<std::size_t>(n * n), 0.0f);
  for (Index i = 0; i < n; ++i) A[static_cast<std::size_t>(i * n + i)] = 1.0f;
  std::vector<float> B(static_cast<std::size_t>(n * n), 1.0f);
  std::vector<float> C(static_cast<std::size_t>(n * n), 2.0f);
  sgemm(n, n, n, 2.0f, A.data(), B.data(), 3.0f, C.data());
  for (const float v : C) EXPECT_FLOAT_EQ(v, 2.0f * 1.0f + 3.0f * 2.0f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  const Index M = 2, N = 2, K = 2;
  std::vector<float> A = {1, 2, 3, 4};
  std::vector<float> B = {5, 6, 7, 8};
  std::vector<float> C = {1e30f, -1e30f, 1e30f, -1e30f};
  sgemm(M, N, K, 1.0f, A.data(), B.data(), 0.0f, C.data());
  EXPECT_FLOAT_EQ(C[0], 19.0f);
  EXPECT_FLOAT_EQ(C[1], 22.0f);
  EXPECT_FLOAT_EQ(C[2], 43.0f);
  EXPECT_FLOAT_EQ(C[3], 50.0f);
}

TEST(Gemm, EmptyDimsNoCrash) {
  std::vector<float> A, B, C;
  EXPECT_NO_THROW(sgemm(0, 0, 0, 1.0f, A.data(), B.data(), 0.0f, C.data()));
}

}  // namespace
}  // namespace paintplace::nn
