#include "nn/conv_transpose2d.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/gradcheck.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(ConvTranspose2d, DoublesSpatialExtent) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 8, 4, 4, 2, 1, rng);
  const Tensor out = deconv.forward(random_tensor(Shape{1, 8, 4, 4}, 2));
  EXPECT_EQ(out.shape(), (Shape{1, 4, 8, 8}));
}

TEST(ConvTranspose2d, OneToTwoFromBottleneck) {
  // The decoder's 1x1 -> 2x2 step (Fig. 5).
  Rng rng(1);
  ConvTranspose2d deconv("d", 16, 16, 4, 2, 1, rng);
  const Tensor out = deconv.forward(random_tensor(Shape{1, 16, 1, 1}, 3));
  EXPECT_EQ(out.dim(2), 2);
  EXPECT_EQ(out.dim(3), 2);
}

TEST(ConvTranspose2d, AdjointOfConvolution) {
  // <conv(x), y> == <x, deconv(y)> when deconv shares conv's weights and
  // both are bias-free — transposed convolution IS the adjoint map.
  Rng rng(5);
  const Index cin = 3, cout = 2;
  Conv2d conv("c", cin, cout, 4, 2, 1, rng, /*bias=*/false);
  ConvTranspose2d deconv("d", cout, cin, 4, 2, 1, rng, /*bias=*/false);
  // conv weight (cout, cin, k, k); deconv weight (cout=in_ch, cin=out_ch, k, k)
  // share storage layout directly: deconv's in_channels == conv's out_channels.
  std::vector<Parameter*> cp, dp;
  conv.collect_parameters(cp);
  deconv.collect_parameters(dp);
  ASSERT_EQ(cp[0]->value.numel(), dp[0]->value.numel());
  dp[0]->value = cp[0]->value;

  const Tensor x = random_tensor(Shape{1, cin, 8, 8}, 6);
  const Tensor y = random_tensor(Shape{1, cout, 4, 4}, 7);
  const Tensor cx = conv.forward(x);
  const Tensor dy = deconv.forward(y);
  double lhs = 0.0, rhs = 0.0;
  for (Index i = 0; i < cx.numel(); ++i) {
    lhs += static_cast<double>(cx[i]) * static_cast<double>(y[i]);
  }
  for (Index i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(dy[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ConvTranspose2d, GradCheck) {
  Rng rng(11);
  ConvTranspose2d deconv("d", 3, 2, 4, 2, 1, rng);
  const auto result = grad_check(deconv, random_tensor(Shape{1, 3, 4, 4}, 12));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(ConvTranspose2d, GradCheckNoBiasBatch2) {
  Rng rng(13);
  ConvTranspose2d deconv("d", 2, 3, 4, 2, 1, rng, /*bias=*/false);
  const auto result = grad_check(deconv, random_tensor(Shape{2, 2, 3, 3}, 14));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(ConvTranspose2d, RejectsWrongChannels) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 4, 2, 4, 2, 1, rng);
  EXPECT_THROW(deconv.forward(random_tensor(Shape{1, 3, 4, 4}, 2)), CheckError);
}

TEST(ConvTranspose2d, BackwardBeforeForwardThrows) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 1, 1, 4, 2, 1, rng);
  EXPECT_THROW(deconv.backward(Tensor(Shape{1, 1, 8, 8})), CheckError);
}

TEST(ConvTranspose2d, BiasAddsUniformOffset) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 1, 1, 4, 2, 1, rng);
  std::vector<Parameter*> params;
  deconv.collect_parameters(params);
  params[0]->value.fill(0.0f);
  params[1]->value.fill(0.25f);
  const Tensor out = deconv.forward(Tensor(Shape{1, 1, 2, 2}));
  for (Index i = 0; i < out.numel(); ++i) EXPECT_FLOAT_EQ(out[i], 0.25f);
}

}  // namespace
}  // namespace paintplace::nn
