#include "nn/conv_transpose2d.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/gradcheck.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(ConvTranspose2d, DoublesSpatialExtent) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 8, 4, 4, 2, 1, rng);
  const Tensor out = deconv.forward(random_tensor(Shape{1, 8, 4, 4}, 2));
  EXPECT_EQ(out.shape(), (Shape{1, 4, 8, 8}));
}

TEST(ConvTranspose2d, OneToTwoFromBottleneck) {
  // The decoder's 1x1 -> 2x2 step (Fig. 5).
  Rng rng(1);
  ConvTranspose2d deconv("d", 16, 16, 4, 2, 1, rng);
  const Tensor out = deconv.forward(random_tensor(Shape{1, 16, 1, 1}, 3));
  EXPECT_EQ(out.dim(2), 2);
  EXPECT_EQ(out.dim(3), 2);
}

TEST(ConvTranspose2d, AdjointOfConvolution) {
  // <conv(x), y> == <x, deconv(y)> when deconv shares conv's weights and
  // both are bias-free — transposed convolution IS the adjoint map.
  Rng rng(5);
  const Index cin = 3, cout = 2;
  Conv2d conv("c", cin, cout, 4, 2, 1, rng, /*bias=*/false);
  ConvTranspose2d deconv("d", cout, cin, 4, 2, 1, rng, /*bias=*/false);
  // conv weight (cout, cin, k, k); deconv weight (cout=in_ch, cin=out_ch, k, k)
  // share storage layout directly: deconv's in_channels == conv's out_channels.
  std::vector<Parameter*> cp, dp;
  conv.collect_parameters(cp);
  deconv.collect_parameters(dp);
  ASSERT_EQ(cp[0]->value.numel(), dp[0]->value.numel());
  dp[0]->value = cp[0]->value;

  const Tensor x = random_tensor(Shape{1, cin, 8, 8}, 6);
  const Tensor y = random_tensor(Shape{1, cout, 4, 4}, 7);
  const Tensor cx = conv.forward(x);
  const Tensor dy = deconv.forward(y);
  double lhs = 0.0, rhs = 0.0;
  for (Index i = 0; i < cx.numel(); ++i) {
    lhs += static_cast<double>(cx[i]) * static_cast<double>(y[i]);
  }
  for (Index i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(dy[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ConvTranspose2d, GradCheck) {
  Rng rng(11);
  ConvTranspose2d deconv("d", 3, 2, 4, 2, 1, rng);
  const auto result = grad_check(deconv, random_tensor(Shape{1, 3, 4, 4}, 12));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(ConvTranspose2d, GradCheckNoBiasBatch2) {
  Rng rng(13);
  ConvTranspose2d deconv("d", 2, 3, 4, 2, 1, rng, /*bias=*/false);
  const auto result = grad_check(deconv, random_tensor(Shape{2, 2, 3, 3}, 14));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(ConvTranspose2d, GradCheckBatch3OddShape) {
  // Batched backward lowering at odd, non-square spatial extents.
  Rng rng(21);
  ConvTranspose2d deconv("d", 3, 2, 3, 2, 1, rng);
  const auto result = grad_check(deconv, random_tensor(Shape{3, 3, 5, 3}, 22));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(ConvTranspose2d, BatchedBackwardBitExactVsPerSample) {
  // Mirror of Conv2d.BatchedBackwardBitExactVsPerSample for the decoder path.
  const Index B = 3;
  Rng rng_a(31), rng_b(31);
  ConvTranspose2d batched("d", 4, 3, 4, 2, 1, rng_a);
  ConvTranspose2d sequential("d", 4, 3, 4, 2, 1, rng_b);
  const Tensor x = random_tensor(Shape{B, 4, 5, 3}, 32);
  const Tensor out_b = batched.forward(x);
  const Tensor go = random_tensor(out_b.shape(), 33);
  const Tensor gin_b = batched.backward(go);

  Tensor gin_s(x.shape());
  const Index x_floats = x.numel() / B, go_floats = go.numel() / B, out_floats = out_b.numel() / B;
  for (Index n = 0; n < B; ++n) {
    Tensor xn(Shape{1, 4, 5, 3});
    std::copy_n(x.data() + n * x_floats, x_floats, xn.data());
    Tensor gon(Shape{1, out_b.dim(1), out_b.dim(2), out_b.dim(3)});
    std::copy_n(go.data() + n * go_floats, go_floats, gon.data());
    const Tensor outn = sequential.forward(xn);
    for (Index i = 0; i < out_floats; ++i) {
      ASSERT_EQ(outn[i], out_b[n * out_floats + i]) << "forward diverged at sample " << n;
    }
    const Tensor ginn = sequential.backward(gon);
    std::copy_n(ginn.data(), x_floats, gin_s.data() + n * x_floats);
  }
  EXPECT_EQ(gin_b.max_abs_diff(gin_s), 0.0f) << "input gradient not bit-exact";

  const auto params_b = batched.parameters();
  const auto params_s = sequential.parameters();
  ASSERT_EQ(params_b.size(), params_s.size());
  for (std::size_t p = 0; p < params_b.size(); ++p) {
    EXPECT_EQ(params_b[p]->grad.max_abs_diff(params_s[p]->grad), 0.0f)
        << params_b[p]->name << " gradient not bit-exact";
  }
}

TEST(ConvTranspose2d, RejectsWrongChannels) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 4, 2, 4, 2, 1, rng);
  EXPECT_THROW(deconv.forward(random_tensor(Shape{1, 3, 4, 4}, 2)), CheckError);
}

TEST(ConvTranspose2d, BackwardBeforeForwardThrows) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 1, 1, 4, 2, 1, rng);
  EXPECT_THROW(deconv.backward(Tensor(Shape{1, 1, 8, 8})), CheckError);
}

TEST(ConvTranspose2d, BiasAddsUniformOffset) {
  Rng rng(1);
  ConvTranspose2d deconv("d", 1, 1, 4, 2, 1, rng);
  std::vector<Parameter*> params;
  deconv.collect_parameters(params);
  params[0]->value.fill(0.0f);
  params[1]->value.fill(0.25f);
  const Tensor out = deconv.forward(Tensor(Shape{1, 1, 2, 2}));
  for (Index i = 0; i < out.numel(); ++i) EXPECT_FLOAT_EQ(out[i], 0.25f);
}

}  // namespace
}  // namespace paintplace::nn
