#include "nn/dropout.h"

#include <gtest/gtest.h>

namespace paintplace::nn {
namespace {

TEST(Dropout, ZeroProbabilityIsIdentity) {
  Dropout drop(0.0f, 1);
  Tensor x(Shape{8}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor y = drop.forward(x);
  EXPECT_EQ(y.max_abs_diff(x), 0.0f);
}

TEST(Dropout, DropsRoughlyPFraction) {
  Dropout drop(0.5f, 2);
  Tensor x = Tensor::full(Shape{1, 1, 100, 100}, 1.0f);
  const Tensor y = drop.forward(x);
  Index zeros = 0;
  for (Index i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) zeros += 1;
  }
  const double frac = static_cast<double>(zeros) / static_cast<double>(y.numel());
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(Dropout, InvertedScalingPreservesExpectation) {
  Dropout drop(0.5f, 3);
  Tensor x = Tensor::full(Shape{1, 1, 128, 128}, 1.0f);
  const Tensor y = drop.forward(x);
  EXPECT_NEAR(y.mean(), 1.0, 0.05);  // surviving units scaled by 2
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 4);
  Tensor x = Tensor::full(Shape{64}, 1.0f);
  const Tensor y = drop.forward(x);
  const Tensor g = drop.backward(Tensor::full(Shape{64}, 1.0f));
  for (Index i = 0; i < 64; ++i) {
    EXPECT_EQ(g[i], y[i]);  // both equal the scaled mask
  }
}

TEST(Dropout, ActiveInEvalByDefault) {
  // The paper's noise z: dropout stays live at inference (pix2pix).
  Dropout drop(0.5f, 5);
  drop.set_training(false);
  Tensor x = Tensor::full(Shape{256}, 1.0f);
  const Tensor y = drop.forward(x);
  Index zeros = 0;
  for (Index i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) zeros += 1;
  }
  EXPECT_GT(zeros, 0);
}

TEST(Dropout, ConventionalModeDisablesInEval) {
  Dropout drop(0.5f, 6, /*active_in_eval=*/false);
  drop.set_training(false);
  Tensor x = Tensor::full(Shape{256}, 1.0f);
  const Tensor y = drop.forward(x);
  EXPECT_EQ(y.max_abs_diff(x), 0.0f);
}

TEST(Dropout, ReseedReproducesMask) {
  Dropout drop(0.5f, 7);
  Tensor x = Tensor::full(Shape{128}, 1.0f);
  drop.reseed(42);
  const Tensor y1 = drop.forward(x);
  drop.reseed(42);
  const Tensor y2 = drop.forward(x);
  EXPECT_EQ(y1.max_abs_diff(y2), 0.0f);
}

TEST(Dropout, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(1.0f, 1), CheckError);
  EXPECT_THROW(Dropout(-0.1f, 1), CheckError);
}

TEST(Dropout, BackwardBeforeForwardThrows) {
  Dropout drop(0.3f, 8);
  EXPECT_THROW(drop.backward(Tensor(Shape{4})), CheckError);
}

}  // namespace
}  // namespace paintplace::nn
