#include "core/forecaster.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tests/core/test_fixtures.h"

namespace paintplace::core {
namespace {

using testfix::TinyWorld;
using testfix::tiny_model_config;

TEST(Forecaster, TrainReturnsPerEpochHistory) {
  TinyWorld world;
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 2;
  const TrainHistory history = fc.train(world.sample_ptrs(), cfg);
  ASSERT_EQ(history.size(), 2u);
  for (const GanLosses& l : history) {
    EXPECT_GT(l.d_loss, 0.0);
    EXPECT_GT(l.g_l1, 0.0);
  }
}

TEST(Forecaster, TrainingReducesL1) {
  TinyWorld world("tiny", 6);
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 10;
  const TrainHistory history = fc.train(world.sample_ptrs(), cfg);
  EXPECT_LT(history.back().g_l1, history.front().g_l1);
}

TEST(Forecaster, EpochCallbackInvoked) {
  TinyWorld world("tiny", 4);
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 3;
  Index calls = 0;
  cfg.on_epoch = [&](Index epoch, const GanLosses&) {
    EXPECT_EQ(epoch, calls);
    calls += 1;
  };
  fc.train(world.sample_ptrs(), cfg);
  EXPECT_EQ(calls, 3);
}

TEST(Forecaster, PredictShapeMatchesTargets) {
  TinyWorld world("tiny", 4);
  CongestionForecaster fc(tiny_model_config());
  const nn::Tensor y = fc.predict(world.dataset.samples[0].input);
  EXPECT_EQ(y.shape(), world.dataset.samples[0].target.shape());
}

TEST(Forecaster, EvaluateProducesConsistentVectors) {
  TinyWorld world("tiny", 6);
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 2;
  fc.train(world.sample_ptrs(), cfg);
  const EvalResult r = fc.evaluate(world.sample_ptrs(), 3);
  EXPECT_EQ(r.per_sample_accuracy.size(), 6u);
  EXPECT_EQ(r.predicted_scores.size(), 6u);
  EXPECT_EQ(r.true_scores.size(), 6u);
  EXPECT_GE(r.mean_pixel_accuracy, 0.0);
  EXPECT_LE(r.mean_pixel_accuracy, 1.0);
  EXPECT_GE(r.top10, 0.0);
  EXPECT_LE(r.top10, 1.0);
}

TEST(Forecaster, TrainedModelBeatsUntrainedOnAccuracy) {
  TinyWorld world("tiny", 8);
  CongestionForecaster trained(tiny_model_config());
  CongestionForecaster untrained(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 12;
  trained.train(world.sample_ptrs(), cfg);
  const double acc_trained = trained.evaluate(world.sample_ptrs()).mean_pixel_accuracy;
  const double acc_untrained = untrained.evaluate(world.sample_ptrs()).mean_pixel_accuracy;
  EXPECT_GT(acc_trained, acc_untrained + 0.05);
}

TEST(Forecaster, FineTuneImprovesOnNewDesign) {
  // Strategy 2 (Acc.2): fine-tuning on pairs from the unseen design should
  // not hurt and typically helps accuracy on that design.
  TinyWorld train_world("train_design", 8, 16, 3);
  TinyWorld test_world("test_design", 8, 16, 4);
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 8;
  fc.train(train_world.sample_ptrs(), cfg);
  const double acc1 = fc.evaluate(test_world.sample_ptrs()).mean_pixel_accuracy;

  const std::vector<const data::Sample*> test_ptrs = test_world.sample_ptrs();
  const std::vector<const data::Sample*> ft(test_ptrs.begin(), test_ptrs.begin() + 3);
  TrainConfig ft_cfg;
  ft_cfg.epochs = 6;
  fc.fine_tune(ft, ft_cfg);
  const double acc2 = fc.evaluate(test_world.sample_ptrs()).mean_pixel_accuracy;
  EXPECT_GT(acc2, acc1 - 0.05) << "fine-tuning must not collapse accuracy";
}

TEST(Forecaster, CongestionScoreOrdersSyntheticMaps) {
  CongestionForecaster fc(tiny_model_config());
  // Build two fake heat maps: uniformly low vs uniformly high utilization.
  auto make_map = [](double u) {
    const img::Color c = img::UtilizationColormap::map(u);
    nn::Tensor t(nn::Shape{1, 3, 8, 8});
    for (Index y = 0; y < 8; ++y) {
      for (Index x = 0; x < 8; ++x) {
        t.at(0, 0, y, x) = c.r;
        t.at(0, 1, y, x) = c.g;
        t.at(0, 2, y, x) = c.b;
      }
    }
    return t;
  };
  EXPECT_LT(fc.congestion_score(make_map(0.1)), fc.congestion_score(make_map(0.7)));
}

TEST(Forecaster, SaveLoadPreservesEvaluation) {
  TinyWorld world("tiny", 4);
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 2;
  fc.train(world.sample_ptrs(), cfg);
  const std::string path = ::testing::TempDir() + "/pp_forecaster.ckpt";
  fc.save(path);
  CongestionForecaster restored(tiny_model_config());
  restored.load(path);
  fc.model().generator().reseed_noise(5);
  const nn::Tensor y1 = fc.predict(world.dataset.samples[0].input);
  restored.model().generator().reseed_noise(5);
  const nn::Tensor y2 = restored.predict(world.dataset.samples[0].input);
  EXPECT_LT(y1.max_abs_diff(y2), 1e-6f);
  std::remove(path.c_str());
}

TEST(Forecaster, EmptyTrainingSetThrows) {
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  EXPECT_THROW(fc.train({}, cfg), CheckError);
}

}  // namespace
}  // namespace paintplace::core
