#include "core/live_forecast.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "place/sa_placer.h"
#include "tests/core/test_fixtures.h"

namespace paintplace::core {
namespace {

using testfix::TinyWorld;
using testfix::tiny_model_config;

TEST(LiveForecast, CollectsFramesDuringAnnealing) {
  TinyWorld world("live", 4);
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 2;
  fc.train(world.sample_ptrs(), cfg);

  const img::PixelGeometry geom(world.arch, 256);
  LiveForecast live(fc, geom, 16, 0.1);

  place::PlacerOptions opt;
  opt.seed = 42;
  place::SaPlacer placer(world.arch, world.nl, opt);
  placer.set_snapshot(
      [&](const place::Placement& p, Index moves, double t) { live.on_snapshot(p, moves, t); },
      200);
  placer.place();

  ASSERT_GT(live.frames().size(), 0u);
  for (const LiveFrame& f : live.frames()) {
    EXPECT_GT(f.accepted_moves, 0);
    EXPECT_GE(f.predicted_congestion, 0.0);
    EXPECT_LE(f.predicted_congestion, 1.0);
    EXPECT_GT(f.placement_cost, 0.0);
  }
  // Moves counter is monotone across frames.
  for (std::size_t i = 1; i < live.frames().size(); ++i) {
    EXPECT_GT(live.frames()[i].accepted_moves, live.frames()[i - 1].accepted_moves);
  }
}

TEST(LiveForecast, DumpsFramesToDirectory) {
  TinyWorld world("live2", 4);
  CongestionForecaster fc(tiny_model_config());
  const img::PixelGeometry geom(world.arch, 256);
  LiveForecast live(fc, geom, 16, 0.1);
  const std::string dir = ::testing::TempDir() + "/pp_live_frames";
  std::filesystem::create_directories(dir);
  live.set_dump_dir(dir);

  place::PlacerOptions opt;
  opt.seed = 7;
  place::SaPlacer placer(world.arch, world.nl, opt);
  placer.set_snapshot(
      [&](const place::Placement& p, Index moves, double t) { live.on_snapshot(p, moves, t); },
      400);
  placer.place();

  Index files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ppm") files += 1;
  }
  EXPECT_EQ(files, static_cast<Index>(live.frames().size()));
  std::filesystem::remove_all(dir);
}

TEST(LiveForecast, RejectsTinyWidth) {
  TinyWorld world("live3", 2);
  CongestionForecaster fc(tiny_model_config());
  const img::PixelGeometry geom(world.arch, 256);
  EXPECT_THROW(LiveForecast(fc, geom, 4, 0.1), CheckError);
}

}  // namespace
}  // namespace paintplace::core
