#include "core/unet.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "nn/gradcheck.h"

namespace paintplace::core {
namespace {

using nn::Shape;
using nn::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

GeneratorConfig small_config(SkipMode skips = SkipMode::kAll, bool dropout = false) {
  GeneratorConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 3;
  cfg.image_size = 16;
  cfg.base_channels = 4;
  cfg.max_channels = 16;
  cfg.skips = skips;
  cfg.dropout = dropout;
  cfg.seed = 3;
  return cfg;
}

TEST(GeneratorConfig, DepthIsLog2OfImageSize) {
  GeneratorConfig cfg;
  cfg.image_size = 256;
  EXPECT_EQ(cfg.depth(), 8);
  cfg.image_size = 64;
  EXPECT_EQ(cfg.depth(), 6);
  cfg.image_size = 16;
  EXPECT_EQ(cfg.depth(), 4);
}

TEST(GeneratorConfig, ChannelProgressionMatchesFig5) {
  GeneratorConfig cfg;  // base 64, max 512, like the paper
  EXPECT_EQ(cfg.channels_at(0), 64);
  EXPECT_EQ(cfg.channels_at(1), 128);
  EXPECT_EQ(cfg.channels_at(2), 256);
  EXPECT_EQ(cfg.channels_at(3), 512);
  EXPECT_EQ(cfg.channels_at(7), 512);  // capped
}

TEST(GeneratorConfig, RejectsNonPowerOfTwo) {
  GeneratorConfig cfg;
  cfg.image_size = 48;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(UNet, OutputShapeMatchesInputResolution) {
  UNetGenerator gen(small_config());
  const Tensor y = gen.forward(random_tensor(Shape{1, 4, 16, 16}, 1));
  EXPECT_EQ(y.shape(), (Shape{1, 3, 16, 16}));
}

TEST(UNet, OutputWithinTanhRange) {
  UNetGenerator gen(small_config());
  const Tensor y = gen.forward(random_tensor(Shape{1, 4, 16, 16}, 2));
  EXPECT_GE(y.min(), -1.0f);
  EXPECT_LE(y.max(), 1.0f);
}

TEST(UNet, SkipModeAffectsParameterCount) {
  UNetGenerator all(small_config(SkipMode::kAll));
  UNetGenerator single(small_config(SkipMode::kSingle));
  UNetGenerator none(small_config(SkipMode::kNone));
  // Skips double decoder input channels -> more deconv weights.
  EXPECT_GT(all.parameter_count(), single.parameter_count());
  EXPECT_GT(single.parameter_count(), none.parameter_count());
}

TEST(UNet, SkipPredicatePerMode) {
  UNetGenerator all(small_config(SkipMode::kAll));
  UNetGenerator single(small_config(SkipMode::kSingle));
  UNetGenerator none(small_config(SkipMode::kNone));
  const Index d = all.config().depth();
  for (Index i = 0; i < d - 1; ++i) {
    EXPECT_TRUE(all.skip_at(i));
    EXPECT_EQ(single.skip_at(i), i == 0);
    EXPECT_FALSE(none.skip_at(i));
  }
  EXPECT_FALSE(all.skip_at(d - 1)) << "bottleneck never skips";
}

TEST(UNet, DeterministicWithoutDropout) {
  UNetGenerator gen(small_config());
  const Tensor x = random_tensor(Shape{1, 4, 16, 16}, 4);
  gen.set_training(false);
  const Tensor y1 = gen.forward(x);
  const Tensor y2 = gen.forward(x);
  EXPECT_EQ(y1.max_abs_diff(y2), 0.0f);
}

TEST(UNet, DropoutInjectsNoiseAtInference) {
  // The paper's z: with dropout on, two predictions differ even in eval.
  UNetGenerator gen(small_config(SkipMode::kAll, /*dropout=*/true));
  const Tensor x = random_tensor(Shape{1, 4, 16, 16}, 5);
  gen.set_training(false);
  const Tensor y1 = gen.forward(x);
  const Tensor y2 = gen.forward(x);
  EXPECT_GT(y1.max_abs_diff(y2), 0.0f);
}

TEST(UNet, ReseedNoiseReproducesPrediction) {
  UNetGenerator gen(small_config(SkipMode::kAll, /*dropout=*/true));
  const Tensor x = random_tensor(Shape{1, 4, 16, 16}, 6);
  gen.set_training(false);
  gen.reseed_noise(77);
  const Tensor y1 = gen.forward(x);
  gen.reseed_noise(77);
  const Tensor y2 = gen.forward(x);
  EXPECT_EQ(y1.max_abs_diff(y2), 0.0f);
}

TEST(UNet, RejectsWrongInputShape) {
  UNetGenerator gen(small_config());
  EXPECT_THROW(gen.forward(Tensor(Shape{1, 3, 16, 16})), CheckError);
  EXPECT_THROW(gen.forward(Tensor(Shape{1, 4, 8, 8})), CheckError);
}

TEST(UNet, ParameterNamesUnique) {
  UNetGenerator gen(small_config());
  std::vector<nn::Parameter*> params;
  gen.collect_parameters(params);
  std::set<std::string> names;
  for (const nn::Parameter* p : params) {
    EXPECT_TRUE(names.insert(p->name).second) << "duplicate " << p->name;
  }
  EXPECT_GT(params.size(), 10u);
}

class UNetGradTest : public ::testing::TestWithParam<SkipMode> {};

TEST_P(UNetGradTest, GradCheckTiny) {
  GeneratorConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 1;
  cfg.image_size = 8;
  cfg.base_channels = 2;
  cfg.max_channels = 4;
  cfg.skips = GetParam();
  cfg.dropout = false;
  cfg.seed = 11;
  UNetGenerator gen(cfg);
  // Re-draw parameters at a healthy scale: the paper's N(0, 0.02) init
  // leaves bottleneck activations so small that batch-norm statistics are
  // numerically ill-conditioned for finite differencing.
  Rng rng(110);
  for (nn::Parameter* p : gen.parameters()) {
    for (Index i = 0; i < p->value.numel(); ++i) {
      p->value[i] = static_cast<float>(rng.uniform(-0.3, 0.3));
    }
  }
  const auto result = nn::grad_check(gen, random_tensor(Shape{1, 2, 8, 8}, 12), 13, 1e-3f);
  // L2 metric: a wiring bug (wrong skip routing, missed accumulation) makes
  // these ~1; LeakyReLU kink crossings in the finite difference stay small.
  EXPECT_LT(result.input_l2_error, 0.1f);
  EXPECT_LT(result.max_param_l2_error, 0.1f);
}

INSTANTIATE_TEST_SUITE_P(SkipModes, UNetGradTest,
                         ::testing::Values(SkipMode::kAll, SkipMode::kSingle, SkipMode::kNone));

TEST(UNet, SkipModeNames) {
  EXPECT_STREQ(skip_mode_name(SkipMode::kAll), "all-skips");
  EXPECT_STREQ(skip_mode_name(SkipMode::kSingle), "single-skip");
  EXPECT_STREQ(skip_mode_name(SkipMode::kNone), "no-skips");
}

}  // namespace
}  // namespace paintplace::core
