#include "core/discriminator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/gradcheck.h"

namespace paintplace::core {
namespace {

using nn::Shape;
using nn::Tensor;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(Discriminator, PatchOutputShapeFor256) {
  // Fig. 5: 256x256 input -> ... -> 31x31x512 -> 30x30x1 patch logits.
  DiscriminatorConfig cfg;
  cfg.in_channels = 7;
  cfg.base_channels = 8;  // narrow for test speed; spatial path identical
  cfg.image_size = 256;
  PatchDiscriminator disc(cfg);
  const Tensor y = disc.forward(random_tensor(Shape{1, 7, 256, 256}, 1));
  EXPECT_EQ(y.shape(), (Shape{1, 1, 30, 30}));
}

TEST(Discriminator, PatchOutputShapeFor64) {
  DiscriminatorConfig cfg;
  cfg.in_channels = 7;
  cfg.base_channels = 4;
  cfg.image_size = 64;
  PatchDiscriminator disc(cfg);
  const Tensor y = disc.forward(random_tensor(Shape{1, 7, 64, 64}, 2));
  EXPECT_EQ(y.shape(), (Shape{1, 1, 6, 6}));
}

TEST(Discriminator, AdaptiveDepthForSmallImages) {
  DiscriminatorConfig cfg;
  cfg.image_size = 256;
  EXPECT_EQ(cfg.num_stride2_layers(), 3);
  cfg.image_size = 16;
  EXPECT_EQ(cfg.num_stride2_layers(), 2);
  cfg.image_size = 8;
  EXPECT_EQ(cfg.num_stride2_layers(), 1);
  cfg.image_size = 4;
  EXPECT_THROW(cfg.num_stride2_layers(), CheckError);
}

TEST(Discriminator, SmallImagePatchOutputNonEmpty) {
  DiscriminatorConfig cfg;
  cfg.in_channels = 5;
  cfg.base_channels = 4;
  cfg.image_size = 16;
  PatchDiscriminator disc(cfg);
  const Tensor y = disc.forward(random_tensor(Shape{1, 5, 16, 16}, 8));
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
}

TEST(Discriminator, LogitsAreUnbounded) {
  // No sigmoid inside the module — BCE-with-logits owns it.
  DiscriminatorConfig cfg;
  cfg.in_channels = 2;
  cfg.base_channels = 4;
  PatchDiscriminator disc(cfg);
  Tensor big = random_tensor(Shape{1, 2, 32, 32}, 3);
  big.mul_(50.0f);
  const Tensor y = disc.forward(big);
  bool outside_unit = false;
  for (Index i = 0; i < y.numel(); ++i) {
    if (y[i] < 0.0f || y[i] > 1.0f) outside_unit = true;
  }
  EXPECT_TRUE(outside_unit);
}

TEST(Discriminator, GradCheckTiny) {
  DiscriminatorConfig cfg;
  cfg.in_channels = 2;
  cfg.base_channels = 2;
  cfg.image_size = 16;
  cfg.seed = 4;
  PatchDiscriminator disc(cfg);
  // pix2pix's N(0, 0.02) init leaves activations tiny, which makes the
  // batch-norm statistics numerically ill-conditioned for finite
  // differencing; re-draw parameters at a healthy scale first.
  Rng rng(40);
  for (nn::Parameter* p : disc.parameters()) {
    for (Index i = 0; i < p->value.numel(); ++i) {
      p->value[i] = static_cast<float>(rng.uniform(-0.3, 0.3));
    }
  }
  const auto result = nn::grad_check(disc, random_tensor(Shape{1, 2, 16, 16}, 5), 6, 1e-3f);
  // L2 metric (see UNet grad test): immune to activation-kink noise, still
  // catches any real backward-wiring bug.
  EXPECT_LT(result.input_l2_error, 0.1f);
  EXPECT_LT(result.max_param_l2_error, 0.1f);
}

TEST(Discriminator, RejectsWrongChannels) {
  DiscriminatorConfig cfg;
  cfg.in_channels = 7;
  PatchDiscriminator disc(cfg);
  EXPECT_THROW(disc.forward(Tensor(Shape{1, 6, 64, 64})), CheckError);
}

TEST(Discriminator, TrainEvalTogglesBatchNorm) {
  DiscriminatorConfig cfg;
  cfg.in_channels = 2;
  cfg.base_channels = 4;
  PatchDiscriminator disc(cfg);
  const Tensor x = random_tensor(Shape{1, 2, 32, 32}, 7);
  disc.forward(x);  // training: populates running stats
  disc.set_training(false);
  const Tensor e1 = disc.forward(x);
  const Tensor e2 = disc.forward(x);
  EXPECT_EQ(e1.max_abs_diff(e2), 0.0f);
  disc.set_training(true);
  EXPECT_TRUE(disc.training());
}

TEST(Discriminator, ParameterCountScalesWithBase) {
  DiscriminatorConfig small, big;
  small.in_channels = big.in_channels = 4;
  small.base_channels = 4;
  big.base_channels = 8;
  PatchDiscriminator d_small(small), d_big(big);
  EXPECT_GT(d_big.parameter_count(), 3 * d_small.parameter_count());
}

}  // namespace
}  // namespace paintplace::core
