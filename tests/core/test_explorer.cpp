#include "core/explorer.h"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace paintplace::core {
namespace {

using testfix::TinyWorld;
using testfix::tiny_model_config;

nn::Tensor uniform_heatmap(double u, Index w = 8) {
  const img::Color c = img::UtilizationColormap::map(u);
  nn::Tensor t(nn::Shape{1, 3, w, w});
  for (Index y = 0; y < w; ++y) {
    for (Index x = 0; x < w; ++x) {
      t.at(0, 0, y, x) = c.r;
      t.at(0, 1, y, x) = c.g;
      t.at(0, 2, y, x) = c.b;
    }
  }
  return t;
}

/// Heat map hot only inside a region.
nn::Tensor hotspot_heatmap(const Region& hot, Index w = 8) {
  nn::Tensor t = uniform_heatmap(0.05, w);
  const img::Color c = img::UtilizationColormap::map(0.9);
  for (Index y = 0; y < w; ++y) {
    for (Index x = 0; x < w; ++x) {
      if (hot.contains(x, y, w, w)) {
        t.at(0, 0, y, x) = c.r;
        t.at(0, 1, y, x) = c.g;
        t.at(0, 2, y, x) = c.b;
      }
    }
  }
  return t;
}

TEST(Region, PresetRegionsCoverExpectedPixels) {
  EXPECT_TRUE(Region::upper().contains(4, 1, 8, 8));
  EXPECT_FALSE(Region::upper().contains(4, 6, 8, 8));
  EXPECT_TRUE(Region::lower().contains(4, 6, 8, 8));
  EXPECT_TRUE(Region::right().contains(6, 4, 8, 8));
  EXPECT_FALSE(Region::right().contains(1, 4, 8, 8));
  EXPECT_TRUE(Region::overall().contains(0, 0, 8, 8));
  EXPECT_TRUE(Region::left().contains(1, 4, 8, 8));
}

TEST(Region, RegionCongestionSeesOnlyItsPixels) {
  const nn::Tensor upper_hot = hotspot_heatmap(Region::upper());
  EXPECT_GT(region_congestion(upper_hot, Region::upper()), 0.7);
  EXPECT_LT(region_congestion(upper_hot, Region::lower()), 0.2);
}

TEST(Region, EmptyRegionThrows) {
  const nn::Tensor t = uniform_heatmap(0.5);
  const Region empty{0.4, 0.4, 0.4, 0.4, "empty"};
  EXPECT_THROW(region_congestion(t, empty), CheckError);
}

TEST(Explorer, PickMinAndMaxAgree) {
  TinyWorld world("exp", 6);
  CongestionForecaster fc(tiny_model_config());
  TrainConfig cfg;
  cfg.epochs = 4;
  fc.train(world.sample_ptrs(), cfg);

  PlacementExplorer explorer(fc);
  explorer.load_candidates(world.sample_ptrs());
  const auto ranked = explorer.ranking(Region::overall());
  ASSERT_EQ(ranked.size(), 6u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].predicted_score, ranked[i].predicted_score);
  }
  const ExplorationPick lo = explorer.pick(Region::overall(), Objective::kMinimize);
  const ExplorationPick hi = explorer.pick(Region::overall(), Objective::kMaximize);
  EXPECT_EQ(lo.sample_index, ranked.front().sample_index);
  EXPECT_EQ(hi.sample_index, ranked.back().sample_index);
  EXPECT_LE(lo.predicted_score, hi.predicted_score);
}

TEST(Explorer, TrueScoresComeFromTargets) {
  TinyWorld world("exp2", 5);
  CongestionForecaster fc(tiny_model_config());
  PlacementExplorer explorer(fc);
  explorer.load_candidates(world.sample_ptrs());
  const auto ranked = explorer.ranking(Region::overall());
  for (const ExplorationPick& p : ranked) {
    const double direct =
        region_congestion(world.dataset.samples[static_cast<std::size_t>(p.sample_index)].target,
                          Region::overall());
    EXPECT_DOUBLE_EQ(p.true_score, direct);
  }
}

TEST(Explorer, RankingBeforeLoadThrows) {
  CongestionForecaster fc(tiny_model_config());
  PlacementExplorer explorer(fc);
  EXPECT_THROW(explorer.ranking(Region::overall()), CheckError);
}

TEST(Explorer, PredictionAccessBoundsChecked) {
  TinyWorld world("exp3", 4);
  CongestionForecaster fc(tiny_model_config());
  PlacementExplorer explorer(fc);
  explorer.load_candidates(world.sample_ptrs());
  EXPECT_NO_THROW(explorer.prediction(0));
  EXPECT_THROW(explorer.prediction(4), CheckError);
  EXPECT_THROW(explorer.prediction(-1), CheckError);
}

TEST(Explorer, RegionalRankingDiffersFromOverall) {
  // With synthetic candidates hot in different regions, the upper-min query
  // must avoid the upper-hot candidate.
  TinyWorld world("exp4", 4);
  CongestionForecaster fc(tiny_model_config());
  PlacementExplorer explorer(fc);
  explorer.load_candidates(world.sample_ptrs());
  // Direct check on region_congestion with synthetic maps (explorer's math).
  const nn::Tensor upper_hot = hotspot_heatmap(Region::upper());
  const nn::Tensor lower_hot = hotspot_heatmap(Region::lower());
  EXPECT_LT(region_congestion(lower_hot, Region::upper()),
            region_congestion(upper_hot, Region::upper()));
  EXPECT_LT(region_congestion(upper_hot, Region::lower()),
            region_congestion(lower_hot, Region::lower()));
}

}  // namespace
}  // namespace paintplace::core
