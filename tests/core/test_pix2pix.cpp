#include "core/pix2pix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "nn/serialize.h"
#include "nn/tensor_ops.h"

namespace paintplace::core {
namespace {

using nn::Shape;
using nn::Tensor;

Pix2PixConfig tiny_config(bool use_l1 = true, SkipMode skips = SkipMode::kAll) {
  Pix2PixConfig cfg;
  cfg.generator.in_channels = 2;
  cfg.generator.out_channels = 3;
  cfg.generator.image_size = 16;
  cfg.generator.base_channels = 4;
  cfg.generator.max_channels = 8;
  cfg.generator.skips = skips;
  cfg.generator.dropout = true;
  cfg.disc_base_channels = 4;
  cfg.use_l1 = use_l1;
  cfg.adam.lr = 2e-3f;  // faster convergence at test scale
  cfg.seed = 5;
  return cfg;
}

Tensor random01(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform());
  return t;
}

TEST(Pix2Pix, SignedUnitConversionRoundTrip) {
  const Tensor t01 = random01(Shape{1, 3, 4, 4}, 1);
  const Tensor back = Pix2Pix::to_unit(Pix2Pix::to_signed(t01));
  EXPECT_LT(back.max_abs_diff(t01), 1e-6f);
}

TEST(Pix2Pix, ToUnitClampsOvershoot) {
  Tensor t(Shape{2}, {-1.5f, 1.5f});
  const Tensor u = Pix2Pix::to_unit(t);
  EXPECT_EQ(u[0], 0.0f);
  EXPECT_EQ(u[1], 1.0f);
}

TEST(Pix2Pix, PredictProducesUnitRangeImage) {
  Pix2Pix model(tiny_config());
  const Tensor y = model.predict(random01(Shape{1, 2, 16, 16}, 2));
  EXPECT_EQ(y.shape(), (Shape{1, 3, 16, 16}));
  EXPECT_GE(y.min(), 0.0f);
  EXPECT_LE(y.max(), 1.0f);
}

TEST(Pix2Pix, TrainStepReturnsFiniteLosses) {
  Pix2Pix model(tiny_config());
  const GanLosses losses =
      model.train_step(random01(Shape{1, 2, 16, 16}, 3), random01(Shape{1, 3, 16, 16}, 4));
  EXPECT_TRUE(std::isfinite(losses.d_loss));
  EXPECT_TRUE(std::isfinite(losses.g_gan));
  EXPECT_TRUE(std::isfinite(losses.g_l1));
  EXPECT_GT(losses.d_loss, 0.0);
  EXPECT_GT(losses.g_l1, 0.0);
}

TEST(Pix2Pix, L1DropsWhenOverfittingOnePair) {
  Pix2Pix model(tiny_config());
  const Tensor x = random01(Shape{1, 2, 16, 16}, 5);
  const Tensor t = random01(Shape{1, 3, 16, 16}, 6);
  double first_l1 = 0.0, last_l1 = 0.0;
  for (int step = 0; step < 250; ++step) {
    const GanLosses l = model.train_step(x, t);
    if (step == 0) first_l1 = l.g_l1;
    last_l1 = l.g_l1;
  }
  EXPECT_LT(last_l1, first_l1 * 0.6) << "L1 must shrink when memorizing one pair";
}

TEST(Pix2Pix, WithoutL1FlagSkipsL1Gradient) {
  // Losses still REPORT l1 for logging, but G's update ignores it: after
  // many steps the no-L1 model reconstructs worse than the L1 model.
  const Tensor x = random01(Shape{1, 2, 16, 16}, 7);
  const Tensor t = random01(Shape{1, 3, 16, 16}, 8);
  Pix2Pix with_l1(tiny_config(true));
  Pix2Pix without_l1(tiny_config(false));
  double l1_with = 0.0, l1_without = 0.0;
  for (int step = 0; step < 50; ++step) {
    l1_with = with_l1.train_step(x, t).g_l1;
    l1_without = without_l1.train_step(x, t).g_l1;
  }
  EXPECT_LT(l1_with, l1_without);
}

TEST(Pix2Pix, DeterministicTrainingGivenSeed) {
  Pix2Pix a(tiny_config()), b(tiny_config());
  const Tensor x = random01(Shape{1, 2, 16, 16}, 9);
  const Tensor t = random01(Shape{1, 3, 16, 16}, 10);
  for (int step = 0; step < 3; ++step) {
    const GanLosses la = a.train_step(x, t);
    const GanLosses lb = b.train_step(x, t);
    EXPECT_DOUBLE_EQ(la.d_loss, lb.d_loss);
    EXPECT_DOUBLE_EQ(la.g_gan, lb.g_gan);
    EXPECT_DOUBLE_EQ(la.g_l1, lb.g_l1);
  }
}

TEST(Pix2Pix, TrainStepRejectsMismatchedShapes) {
  Pix2Pix model(tiny_config());
  EXPECT_THROW(model.train_step(random01(Shape{1, 2, 16, 16}, 1), random01(Shape{1, 3, 8, 8}, 2)),
               CheckError);
  EXPECT_THROW(model.train_step(random01(Shape{2, 2, 16, 16}, 1),
                                random01(Shape{1, 3, 16, 16}, 2)),
               CheckError);
  EXPECT_THROW(model.train_step(random01(Shape{1, 3, 16, 16}, 1),
                                random01(Shape{1, 3, 16, 16}, 2)),
               CheckError);
}

TEST(Pix2Pix, BatchedTrainStepReturnsFiniteLosses) {
  Pix2Pix model(tiny_config());
  const GanLosses losses =
      model.train_step(random01(Shape{4, 2, 16, 16}, 3), random01(Shape{4, 3, 16, 16}, 4));
  EXPECT_TRUE(std::isfinite(losses.d_loss));
  EXPECT_TRUE(std::isfinite(losses.g_gan));
  EXPECT_TRUE(std::isfinite(losses.g_l1));
}

TEST(Pix2Pix, BatchStepBitExactVsAccumulatedSteps) {
  // The training pipeline's core equivalence: one batch-B step must produce
  // the exact update of B accumulated single-sample steps. Requires a
  // deterministic generator (no dropout z) and per-sample normalisation
  // (instance norm) — see docs/training.md.
  Pix2PixConfig cfg = tiny_config();
  cfg.generator.norm = NormKind::kInstance;
  cfg.generator.dropout = false;
  const Index B = 4;  // power of two: the 1/B gradient scaling is exact
  Pix2Pix batched(cfg), accumulated(cfg);

  for (int step = 0; step < 3; ++step) {
    const Tensor x = random01(Shape{B, 2, 16, 16}, 100 + static_cast<std::uint64_t>(step));
    const Tensor t = random01(Shape{B, 3, 16, 16}, 200 + static_cast<std::uint64_t>(step));
    std::vector<Tensor> xs, ts;
    std::vector<const Tensor*> xp, tp;
    for (Index n = 0; n < B; ++n) {
      xs.push_back(nn::slice_batch(x, n));
      ts.push_back(nn::slice_batch(t, n));
    }
    for (Index n = 0; n < B; ++n) {
      xp.push_back(&xs[static_cast<std::size_t>(n)]);
      tp.push_back(&ts[static_cast<std::size_t>(n)]);
    }
    const GanLosses lb = batched.train_step(x, t);
    const GanLosses la = accumulated.train_step_accumulated(xp, tp);
    EXPECT_NEAR(lb.d_loss, la.d_loss, 1e-6);
    EXPECT_NEAR(lb.g_gan, la.g_gan, 1e-6);
    EXPECT_NEAR(lb.g_l1, la.g_l1, 1e-6);

    const auto pb_g = batched.generator().parameters();
    const auto pa_g = accumulated.generator().parameters();
    ASSERT_EQ(pb_g.size(), pa_g.size());
    for (std::size_t i = 0; i < pb_g.size(); ++i) {
      ASSERT_EQ(pb_g[i]->value.max_abs_diff(pa_g[i]->value), 0.0f)
          << "step " << step << ": generator " << pb_g[i]->name << " diverged";
    }
    const auto pb_d = batched.discriminator().parameters();
    const auto pa_d = accumulated.discriminator().parameters();
    ASSERT_EQ(pb_d.size(), pa_d.size());
    for (std::size_t i = 0; i < pb_d.size(); ++i) {
      ASSERT_EQ(pb_d[i]->value.max_abs_diff(pa_d[i]->value), 0.0f)
          << "step " << step << ": discriminator " << pb_d[i]->name << " diverged";
    }
  }
}

TEST(Pix2Pix, AccumulatedStepRequiresPowerOfTwoBatch) {
  Pix2Pix model(tiny_config());
  const Tensor x = random01(Shape{1, 2, 16, 16}, 5);
  const Tensor t = random01(Shape{1, 3, 16, 16}, 6);
  std::vector<const Tensor*> xp{&x, &x, &x}, tp{&t, &t, &t};
  EXPECT_THROW(model.train_step_accumulated(xp, tp), CheckError);
}

TEST(Pix2Pix, SaveLoadRoundTripsPrediction) {
  Pix2Pix model(tiny_config());
  const Tensor x = random01(Shape{1, 2, 16, 16}, 11);
  const Tensor t = random01(Shape{1, 3, 16, 16}, 12);
  for (int step = 0; step < 5; ++step) model.train_step(x, t);
  const std::string path = ::testing::TempDir() + "/pp_p2p_test.ckpt";
  model.save(path);

  Pix2Pix restored(tiny_config());
  restored.load(path);
  // Same noise stream -> identical outputs.
  model.generator().reseed_noise(42);
  const Tensor y1 = model.predict(x);
  restored.generator().reseed_noise(42);
  const Tensor y2 = restored.predict(x);
  EXPECT_LT(y1.max_abs_diff(y2), 1e-6f);
  std::remove(path.c_str());
}

TEST(Pix2Pix, LoadIncompatibleConfigThrows) {
  Pix2Pix model(tiny_config());
  const std::string path = ::testing::TempDir() + "/pp_p2p_badcfg.ckpt";
  model.save(path);
  Pix2PixConfig other = tiny_config();
  other.generator.base_channels = 8;  // different widths
  Pix2Pix mismatched(other);
  EXPECT_THROW(mismatched.load(path), CheckError);
  std::remove(path.c_str());
}

TEST(Pix2Pix, ConfigEncodeDecodeRoundTrip) {
  Pix2PixConfig cfg = tiny_config(false, SkipMode::kSingle);
  cfg.lambda_l1 = 25.0f;
  cfg.generator.dropout_p = 0.3f;
  const Pix2PixConfig back = Pix2Pix::decode_config(Pix2Pix::encode_config(cfg));
  EXPECT_EQ(back.generator.in_channels, cfg.generator.in_channels);
  EXPECT_EQ(back.generator.image_size, cfg.generator.image_size);
  EXPECT_EQ(back.generator.skips, cfg.generator.skips);
  EXPECT_EQ(back.use_l1, cfg.use_l1);
  EXPECT_FLOAT_EQ(back.lambda_l1, 25.0f);
  EXPECT_FLOAT_EQ(back.generator.dropout_p, 0.3f);
}

TEST(Pix2Pix, LoadFileReconstructsModelFromCheckpointAlone) {
  Pix2Pix model(tiny_config());
  const Tensor x = random01(Shape{1, 2, 16, 16}, 21);
  const Tensor t = random01(Shape{1, 3, 16, 16}, 22);
  for (int step = 0; step < 3; ++step) model.train_step(x, t);
  const std::string path = ::testing::TempDir() + "/pp_p2p_selfdesc.ckpt";
  model.save(path);

  Pix2Pix restored = Pix2Pix::load_file(path);  // no config passed in
  EXPECT_EQ(restored.config().generator.image_size, 16);
  model.generator().reseed_noise(9);
  const Tensor y1 = model.predict(x);
  restored.generator().reseed_noise(9);
  const Tensor y2 = restored.predict(x);
  EXPECT_LT(y1.max_abs_diff(y2), 1e-6f);
  std::remove(path.c_str());
}

TEST(Pix2Pix, LoadFileWithoutConfigRecordThrows) {
  // A raw tensor bundle without the config record is not loadable blind.
  nn::TensorMap map;
  map.emplace("weights", Tensor(Shape{4}));
  const std::string path = ::testing::TempDir() + "/pp_p2p_nocfg.ckpt";
  nn::save_tensors_file(map, path);
  EXPECT_THROW(Pix2Pix::load_file(path), CheckError);
  std::remove(path.c_str());
}

TEST(Pix2Pix, ResetOptimizersChangesNothingUntilStep) {
  Pix2Pix model(tiny_config());
  const Tensor x = random01(Shape{1, 2, 16, 16}, 13);
  model.generator().reseed_noise(1);
  const Tensor before = model.predict(x);
  model.reset_optimizers(1e-5f);
  model.generator().reseed_noise(1);
  const Tensor after = model.predict(x);
  EXPECT_LT(before.max_abs_diff(after), 1e-6f);
}

TEST(Pix2Pix, GanLossesArithmetic) {
  GanLosses a{1.0, 2.0, 3.0};
  const GanLosses b{1.0, 0.0, 1.0};
  a += b;
  a /= 2.0;
  EXPECT_DOUBLE_EQ(a.d_loss, 1.0);
  EXPECT_DOUBLE_EQ(a.g_gan, 1.0);
  EXPECT_DOUBLE_EQ(a.g_l1, 2.0);
}

}  // namespace
}  // namespace paintplace::core
