// Shared fixtures for the core-level tests: a tiny design, its dataset, and
// a matching tiny model configuration, kept deliberately small so GAN
// training smoke tests run in seconds.
#pragma once

#include "data/dataset.h"
#include "core/pix2pix.h"
#include "fpga/netgen.h"

namespace paintplace::core::testfix {

inline fpga::DesignSpec tiny_spec(const std::string& name = "tiny", Index luts = 30,
                                  std::uint64_t /*seed*/ = 0) {
  fpga::DesignSpec s;
  s.name = name;
  s.num_luts = luts;
  s.num_ffs = luts / 3;
  s.num_nets = luts * 2;
  s.num_inputs = 4;
  s.num_outputs = 4;
  return s;
}

struct TinyWorld {
  fpga::Netlist nl;
  fpga::Arch arch;
  data::Dataset dataset;

  explicit TinyWorld(const std::string& name = "tiny", Index num_placements = 8,
                     Index image_width = 16, std::uint64_t seed = 2)
      : nl(fpga::generate_packed(tiny_spec(name), fpga::NetgenParams{}, seed)),
        arch(fpga::Arch::auto_sized({nl.stats().num_clbs,
                                     nl.stats().num_inputs + nl.stats().num_outputs,
                                     nl.stats().num_mems, nl.stats().num_mults})) {
    data::DatasetConfig cfg;
    cfg.image_width = image_width;
    cfg.sweep.num_placements = num_placements;
    cfg.sweep.base_seed = seed * 100 + 1;
    dataset = data::build_dataset(nl, arch, cfg);
  }

  std::vector<const data::Sample*> sample_ptrs() const {
    std::vector<const data::Sample*> out;
    for (const data::Sample& s : dataset.samples) out.push_back(&s);
    return out;
  }
};

inline Pix2PixConfig tiny_model_config(Index image_size = 16) {
  Pix2PixConfig cfg;
  cfg.generator.in_channels = 4;
  cfg.generator.out_channels = 3;
  cfg.generator.image_size = image_size;
  cfg.generator.base_channels = 4;
  cfg.generator.max_channels = 8;
  cfg.generator.dropout = true;
  cfg.disc_base_channels = 4;
  cfg.adam.lr = 1e-3f;
  cfg.seed = 9;
  return cfg;
}

}  // namespace paintplace::core::testfix
