// End-to-end integration: the full Fig. 1 flow — synthetic design ->
// packing -> placement sweep -> routing -> image pairs -> cGAN training ->
// forecasting and exploration — on a miniature instance.
#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/forecaster.h"
#include "data/splits.h"
#include "fpga/design_suite.h"
#include "fpga/pack.h"
#include "tests/core/test_fixtures.h"

namespace paintplace {
namespace {

TEST(EndToEnd, FlatNetlistThroughPackPlaceRoute) {
  // Full front-to-back flow from primitives (not the packed generator).
  fpga::DesignSpec spec = core::testfix::tiny_spec("e2e_flat", 40);
  const fpga::Netlist flat = fpga::generate_flat(spec, fpga::NetgenParams{}, 1);
  const fpga::PackResult packed = fpga::pack(flat, fpga::PackParams{10});
  const fpga::NetlistStats stats = packed.packed.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});

  place::PlacerOptions opt;
  place::SaPlacer placer(arch, packed.packed, opt);
  const place::Placement placement = placer.place();

  route::ChannelGraph graph(arch);
  route::CongestionMap congestion(graph);
  route::PathFinderRouter router(graph);
  const route::RouteResult rr = router.route(placement, congestion);
  EXPECT_TRUE(rr.success);
  EXPECT_GT(congestion.total_utilization(), 0.0);
}

TEST(EndToEnd, LeaveOneOutTrainingAndTop10) {
  // Two tiny "designs": train on one, test on the other (strategy 1), then
  // fine-tune (strategy 2) and verify the evaluation plumbing end to end.
  core::testfix::TinyWorld design_a("design_a", 6, 16, 10);
  core::testfix::TinyWorld design_b("design_b", 8, 16, 20);

  std::vector<data::Dataset> datasets;
  datasets.push_back(design_a.dataset);
  datasets.push_back(design_b.dataset);
  const data::Split split = data::leave_one_design_out(datasets, "design_b", 2);
  EXPECT_EQ(split.train.size(), 6u);
  EXPECT_EQ(split.fine_tune.size(), 2u);
  EXPECT_EQ(split.test.size(), 6u);

  core::CongestionForecaster fc(core::testfix::tiny_model_config());
  core::TrainConfig cfg;
  cfg.epochs = 20;
  fc.train(split.train, cfg);
  const core::EvalResult acc1 = fc.evaluate(split.test, 3);

  core::TrainConfig ft;
  ft.epochs = 5;
  fc.fine_tune(split.fine_tune, ft);
  const core::EvalResult acc2 = fc.evaluate(split.test, 3);

  // Smoke-level checks: metrics well-formed, scores populated.
  EXPECT_GT(acc1.mean_pixel_accuracy, 0.0);
  EXPECT_GT(acc2.mean_pixel_accuracy, 0.0);
  EXPECT_EQ(acc2.true_scores.size(), split.test.size());

  // Exploration on the test design (Fig. 9 machinery).
  core::PlacementExplorer explorer(fc);
  explorer.load_candidates(split.test);
  const auto pick = explorer.pick(core::Region::overall(), core::Objective::kMinimize);
  EXPECT_GE(pick.sample_index, 0);
  EXPECT_LT(pick.sample_index, static_cast<Index>(split.test.size()));
}

TEST(EndToEnd, GroundTruthScoresVaryAcrossSweep) {
  // The placer-option sweep must produce genuinely different congestion
  // outcomes — otherwise Table 2's Top10 metric would be vacuous.
  core::testfix::TinyWorld world("sweepvar", 8, 16, 30);
  double lo = 1e30, hi = -1e30;
  for (const data::Sample& s : world.dataset.samples) {
    lo = std::min(lo, s.meta.true_total_utilization);
    hi = std::max(hi, s.meta.true_total_utilization);
  }
  EXPECT_GT(hi, lo * 1.02) << "sweep produced near-identical congestion everywhere";
}

TEST(EndToEnd, Table2DesignsBuildDatasetsAtBenchScale) {
  // One design from the suite at the bench scale factor, exercising the
  // exact path the Table 2 harness uses.
  const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name("diffeq2"), 0.05);
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 7);
  const fpga::NetlistStats stats = nl.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});
  data::DatasetConfig cfg;
  cfg.image_width = 16;
  cfg.sweep.num_placements = 4;
  const data::Dataset ds = data::build_dataset(nl, arch, cfg);
  EXPECT_EQ(ds.samples.size(), 4u);
  for (const data::Sample& s : ds.samples) {
    EXPECT_TRUE(s.meta.route_success);
  }
}

}  // namespace
}  // namespace paintplace
