// Backend conformance suite: the gate every compute backend must pass.
//
// A seeded, deterministic fuzz sweep over ~200 odd shapes (1..7, micro-tile
// +/-1, K-panel and task-tile boundaries +/-1), alpha/beta combinations, and
// every epilogue kind, run for every sgemm variant on every registered
// backend. Three contracts are enforced:
//
//   1. Cross-backend accuracy: each backend's sgemm*_ex agrees with the
//      reference oracle (reference sgemm* + apply_epilogue) to 1e-4 relative
//      tolerance. Different blocking regroups the K reduction, so bit
//      equality is not guaranteed across backends — a bound is.
//   2. Fusion bit-exactness: on the SAME backend, sgemm*_ex(..., epilogue)
//      must be bit-identical to the plain sgemm* followed by an
//      apply_epilogue pass. This is the epilogue contract from backend.h —
//      fused epilogues may not change a single bit.
//   3. Cache bit-exactness: with GemmArgs::cache_weights set, results must
//      be bit-identical to the uncached call — first (packing) call and
//      warm (cached) call alike.
//
// A future backend (int8/bf16 with an f32 interface, a SIMD rewrite) gets
// all of this for free by registering itself: the suite iterates
// backend_names().
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/pack_cache.h"
#include "common/rng.h"

namespace paintplace::backend {
namespace {

enum class Variant { kSgemm, kSgemmAt, kSgemmBt };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kSgemm: return "sgemm";
    case Variant::kSgemmAt: return "sgemm_at";
    case Variant::kSgemmBt: return "sgemm_bt";
  }
  return "?";
}

struct FuzzCase {
  Index M, N, K;
  float alpha, beta;
  Epilogue::Act act;
  float slope;
  bool bias;
};

/// Deterministic case list: dimensions straddle every tiling boundary of the
/// cpu_opt kernel (MR=6, NR=16, KC=256, 96x512 task tiles) plus the 1..7
/// degenerates; alpha leans on 1.0 and beta on 0.0 (the conv lowering's hot
/// combination) without excluding the rest.
std::vector<FuzzCase> fuzz_cases() {
  const Index dims[] = {1, 2, 3, 4, 5, 6, 7, 15, 16, 17, 63, 64, 65, 95, 96, 97, 255, 256, 257};
  const float alphas[] = {1.0f, 1.0f, 1.0f, -1.5f, 0.5f, 0.0f};
  const float betas[] = {0.0f, 0.0f, 0.0f, 1.0f, -2.0f, 0.5f};
  const Epilogue::Act acts[] = {Epilogue::Act::kNone, Epilogue::Act::kReLU,
                                Epilogue::Act::kLeakyReLU, Epilogue::Act::kTanh};
  Rng rng(20240807);
  auto pick = [&](auto& pool) { return pool[rng.engine()() % std::size(pool)]; };
  std::vector<FuzzCase> cases;
  cases.reserve(200);
  while (cases.size() < 200) {
    FuzzCase c;
    c.M = pick(dims);
    c.N = pick(dims);
    c.K = pick(dims);
    // Keep the sweep fast: at most one task-tile-scale dimension per case.
    if (c.M * c.N * c.K > (Index{1} << 22)) continue;
    c.alpha = pick(alphas);
    c.beta = pick(betas);
    c.act = pick(acts);
    c.slope = c.act == Epilogue::Act::kLeakyReLU ? 0.2f : 0.0f;
    c.bias = (rng.engine()() % 2) == 0;
    cases.push_back(c);
  }
  return cases;
}

std::vector<float> random_vec(Index n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void dispatch(const ComputeBackend& be, Variant v, const FuzzCase& c, const float* A,
              const float* B, float* C, const GemmArgs* args) {
  switch (v) {
    case Variant::kSgemm:
      if (args != nullptr) {
        be.sgemm_ex(c.M, c.N, c.K, c.alpha, A, B, c.beta, C, *args);
      } else {
        be.sgemm(c.M, c.N, c.K, c.alpha, A, B, c.beta, C);
      }
      return;
    case Variant::kSgemmAt:
      if (args != nullptr) {
        be.sgemm_at_ex(c.M, c.N, c.K, c.alpha, A, B, c.beta, C, *args);
      } else {
        be.sgemm_at(c.M, c.N, c.K, c.alpha, A, B, c.beta, C);
      }
      return;
    case Variant::kSgemmBt:
      if (args != nullptr) {
        be.sgemm_bt_ex(c.M, c.N, c.K, c.alpha, A, B, c.beta, C, *args);
      } else {
        be.sgemm_bt(c.M, c.N, c.K, c.alpha, A, B, c.beta, C);
      }
      return;
  }
}

Index a_count(Variant, const FuzzCase& c) { return c.M * c.K; }
Index b_count(Variant, const FuzzCase& c) { return c.K * c.N; }

std::string case_str(const FuzzCase& c, Variant v) {
  std::ostringstream os;
  os << variant_name(v) << " M=" << c.M << " N=" << c.N << " K=" << c.K << " alpha=" << c.alpha
     << " beta=" << c.beta << " act=" << static_cast<int>(c.act) << " bias=" << c.bias;
  return os.str();
}

/// Process-unique versions for the cache keys the sweep fabricates, far above
/// anything nn::next_weight_version hands out during the test binary's
/// lifetime (top bit set).
std::uint64_t test_version() {
  static std::uint64_t v = (1ull << 63);
  return ++v;
}

class ConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void TearDownTestSuite() { PackedWeightCache::instance().clear(); }
};

TEST_P(ConformanceTest, FuzzSweepMatchesOracleAndFusionIsBitExact) {
  const ComputeBackend& be = *find_backend(GetParam());
  const ComputeBackend& oracle = *find_backend("reference");
  Rng rng(1234);
  for (const FuzzCase& c : fuzz_cases()) {
    for (Variant v : {Variant::kSgemm, Variant::kSgemmAt, Variant::kSgemmBt}) {
      SCOPED_TRACE(GetParam() + ": " + case_str(c, v));
      const auto A = random_vec(a_count(v, c), rng);
      const auto B = random_vec(b_count(v, c), rng);
      const auto bias = random_vec(c.M, rng);
      const auto C0 = random_vec(c.M * c.N, rng);

      GemmArgs args;
      args.epilogue.act = c.act;
      args.epilogue.slope = c.slope;
      args.epilogue.bias = c.bias ? bias.data() : nullptr;

      // Contract 1: tolerance-bounded agreement with the reference oracle.
      auto c_oracle = C0;
      dispatch(oracle, v, c, A.data(), B.data(), c_oracle.data(), nullptr);
      apply_epilogue(c.M, c.N, c_oracle.data(), args.epilogue);

      auto c_fused = C0;
      dispatch(be, v, c, A.data(), B.data(), c_fused.data(), &args);
      for (std::size_t i = 0; i < c_fused.size(); ++i) {
        const float tol = 1e-4f * std::max(1.0f, std::fabs(c_oracle[i]));
        ASSERT_NEAR(c_fused[i], c_oracle[i], tol) << "element " << i;
      }

      // Contract 2: fused epilogue == plain kernel + apply_epilogue, on the
      // same backend, to the bit.
      auto c_unfused = C0;
      dispatch(be, v, c, A.data(), B.data(), c_unfused.data(), nullptr);
      apply_epilogue(c.M, c.N, c_unfused.data(), args.epilogue);
      ASSERT_EQ(0, std::memcmp(c_fused.data(), c_unfused.data(),
                               c_fused.size() * sizeof(float)))
          << "fused epilogue changed bits vs two-pass lowering";

      // Contract 3: cached weight packs change nothing — cold (packing)
      // call and warm (cached) call both bit-match the uncached result.
      GemmArgs cached = args;
      cached.cache_weights = true;
      cached.weight_version = test_version();
      auto c_cold = C0;
      dispatch(be, v, c, A.data(), B.data(), c_cold.data(), &cached);
      auto c_warm = C0;
      dispatch(be, v, c, A.data(), B.data(), c_warm.data(), &cached);
      ASSERT_EQ(0, std::memcmp(c_cold.data(), c_fused.data(), c_cold.size() * sizeof(float)))
          << "cold cached call changed bits vs uncached";
      ASSERT_EQ(0, std::memcmp(c_warm.data(), c_fused.data(), c_warm.size() * sizeof(float)))
          << "warm cached call changed bits vs uncached";
    }
  }
}

TEST_P(ConformanceTest, ExtendedCallsHandleDegenerateDims) {
  const ComputeBackend& be = *find_backend(GetParam());
  GemmArgs args;
  args.epilogue.act = Epilogue::Act::kReLU;
  EXPECT_NO_THROW(be.sgemm_ex(0, 0, 0, 1.0f, nullptr, nullptr, 0.0f, nullptr, args));
  // K=0 with an epilogue still applies the epilogue to the scaled C.
  std::vector<float> C = {-1.0f, 2.0f, -3.0f, 4.0f};
  std::vector<float> bias = {1.0f, -10.0f};
  args.epilogue.bias = bias.data();
  be.sgemm_ex(2, 2, 0, 1.0f, nullptr, nullptr, 1.0f, C.data(), args);
  EXPECT_FLOAT_EQ(C[0], 0.0f);  // relu(-1 + 1)
  EXPECT_FLOAT_EQ(C[1], 3.0f);  // relu(2 + 1)
  EXPECT_FLOAT_EQ(C[2], 0.0f);  // relu(-3 - 10)
  EXPECT_FLOAT_EQ(C[3], 0.0f);  // relu(4 - 10)
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ConformanceTest, ::testing::ValuesIn(backend_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace paintplace::backend
