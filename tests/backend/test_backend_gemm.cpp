// cpu_opt vs reference: the optimised backend must agree with the oracle to
// 1e-4 relative tolerance on every GEMM variant across shapes chosen to hit
// the tiling edge cases (non-multiples of MR/NR/KC and the row/column task
// tiles, degenerate K=1 / N=1 / M=1, channel-fat and spatially-wide extremes
// of the U-Net lowering) and across alpha/beta combinations, and must produce
// bit-identical results at every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "backend/backend.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace paintplace::backend {
namespace {

struct GemmCase {
  Index M, N, K;
  float alpha, beta;
};

std::vector<float> random_vec(Index n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void expect_close(const std::vector<float>& got, const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-4f * std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol) << "element " << i;
  }
}

class BackendGemmTest : public ::testing::TestWithParam<GemmCase> {
 protected:
  const ComputeBackend& ref() { return *find_backend("reference"); }
  const ComputeBackend& opt() { return *find_backend("cpu_opt"); }
};

TEST_P(BackendGemmTest, SgemmMatchesReference) {
  const auto [M, N, K, alpha, beta] = GetParam();
  Rng rng(static_cast<std::uint64_t>(M * 7919 + N * 101 + K));
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(K * N, rng);
  const auto C0 = random_vec(M * N, rng);
  auto c_ref = C0, c_opt = C0;
  ref().sgemm(M, N, K, alpha, A.data(), B.data(), beta, c_ref.data());
  opt().sgemm(M, N, K, alpha, A.data(), B.data(), beta, c_opt.data());
  expect_close(c_opt, c_ref);
}

TEST_P(BackendGemmTest, SgemmAtMatchesReference) {
  const auto [M, N, K, alpha, beta] = GetParam();
  Rng rng(static_cast<std::uint64_t>(M * 131 + N * 17 + K * 3));
  const auto A = random_vec(K * M, rng);  // stored KxM
  const auto B = random_vec(K * N, rng);
  const auto C0 = random_vec(M * N, rng);
  auto c_ref = C0, c_opt = C0;
  ref().sgemm_at(M, N, K, alpha, A.data(), B.data(), beta, c_ref.data());
  opt().sgemm_at(M, N, K, alpha, A.data(), B.data(), beta, c_opt.data());
  expect_close(c_opt, c_ref);
}

TEST_P(BackendGemmTest, SgemmBtMatchesReference) {
  const auto [M, N, K, alpha, beta] = GetParam();
  Rng rng(static_cast<std::uint64_t>(M * 37 + N * 1009 + K * 11));
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(N * K, rng);  // stored NxK
  const auto C0 = random_vec(M * N, rng);
  auto c_ref = C0, c_opt = C0;
  ref().sgemm_bt(M, N, K, alpha, A.data(), B.data(), beta, c_ref.data());
  opt().sgemm_bt(M, N, K, alpha, A.data(), B.data(), beta, c_opt.data());
  expect_close(c_opt, c_ref);
}

// MR=6 / NR=16 / KC=256 / 96x512 task tiles: the shapes straddle each
// boundary by +/-1 as well as the degenerate and U-Net-like extremes.
INSTANTIATE_TEST_SUITE_P(
    OddShapes, BackendGemmTest,
    ::testing::Values(GemmCase{1, 1, 1, 1.0f, 0.0f},        //
                      GemmCase{3, 5, 7, 1.0f, 0.0f},        //
                      GemmCase{6, 16, 4, 1.0f, 0.0f},       // exactly one micro-tile
                      GemmCase{7, 17, 5, 1.0f, 0.0f},       // one past the micro-tile
                      GemmCase{5, 15, 3, 2.0f, 0.5f},       // one short of the micro-tile
                      GemmCase{13, 33, 1, 1.0f, 0.0f},      // K=1
                      GemmCase{64, 1, 300, 1.0f, 0.0f},     // N=1
                      GemmCase{1, 200, 129, 1.0f, 0.0f},    // M=1
                      GemmCase{97, 513, 31, 1.0f, 0.0f},    // one past the task tiles
                      GemmCase{96, 512, 256, 1.0f, 0.0f},   // exactly the task tiles / K panel
                      GemmCase{95, 511, 257, 1.0f, 1.0f},   // straddles tiles AND the K panel
                      GemmCase{256, 4, 517, 1.0f, 0.0f},    // channel-fat inner U-Net level
                      GemmCase{48, 1024, 64, 1.0f, 0.0f},   // batch-lowered wide outer level
                      GemmCase{33, 65, 260, 0.0f, 2.0f},    // alpha=0: pure C scale
                      GemmCase{33, 65, 260, -1.5f, 0.0f},   // negative alpha, overwrite
                      GemmCase{19, 23, 29, 0.5f, -2.0f}));  // fractional alpha, negative beta

TEST(BackendGemmEdge, EmptyDimsNoCrash) {
  const ComputeBackend& opt = *find_backend("cpu_opt");
  EXPECT_NO_THROW(opt.sgemm(0, 0, 0, 1.0f, nullptr, nullptr, 0.0f, nullptr));
  EXPECT_NO_THROW(opt.sgemm_at(0, 5, 0, 1.0f, nullptr, nullptr, 0.0f, nullptr));
  EXPECT_NO_THROW(opt.sgemm_bt(5, 0, 3, 1.0f, nullptr, nullptr, 0.0f, nullptr));
}

TEST(BackendGemmEdge, KZeroScalesC) {
  // K=0 must behave like C := beta * C, including beta=0 erasing garbage.
  const ComputeBackend& opt = *find_backend("cpu_opt");
  std::vector<float> C = {1e30f, -2.0f, 3.0f, -1e30f};
  opt.sgemm(2, 2, 0, 1.0f, nullptr, nullptr, 0.5f, C.data());
  EXPECT_FLOAT_EQ(C[1], -1.0f);
  EXPECT_FLOAT_EQ(C[2], 1.5f);
  opt.sgemm(2, 2, 0, 1.0f, nullptr, nullptr, 0.0f, C.data());
  for (float v : C) EXPECT_FLOAT_EQ(v, 0.0f);
}

class BackendDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_workers(0); }
};

TEST_F(BackendDeterminismTest, SameBitsAcrossThreadCounts) {
  // Shape spanning several task tiles and K panels so the partitioning
  // actually varies with the worker count.
  const Index M = 150, N = 700, K = 300;
  Rng rng(99);
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(K * N, rng);
  for (const char* name : {"reference", "cpu_opt"}) {
    const ComputeBackend& be = *find_backend(name);
    std::vector<std::vector<float>> results;
    for (int workers : {1, 2, 5}) {
      set_parallel_workers(workers);
      std::vector<float> C(static_cast<std::size_t>(M * N), 0.0f);
      be.sgemm(M, N, K, 1.0f, A.data(), B.data(), 0.0f, C.data());
      results.push_back(std::move(C));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(results[0].data(), results[i].data(),
                               results[0].size() * sizeof(float)))
          << name << " differs between 1 and " << (i == 1 ? 2 : 5) << " workers";
    }
  }
}

TEST_F(BackendDeterminismTest, ColumnPositionDoesNotChangeBits) {
  // The batched conv lowering relies on this: a sample's columns land at a
  // different offset inside the wide batched GEMM, and must still come out
  // bit-identical to the per-sample GEMM.
  const Index M = 37, N = 45, K = 123, copies = 3;
  Rng rng(7);
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(K * N, rng);
  std::vector<float> wide_b(static_cast<std::size_t>(K * N * copies));
  for (Index k = 0; k < K; ++k) {
    for (Index rep = 0; rep < copies; ++rep) {
      std::memcpy(wide_b.data() + (k * copies + rep) * N, B.data() + k * N,
                  sizeof(float) * static_cast<std::size_t>(N));
    }
  }
  for (const char* name : {"reference", "cpu_opt"}) {
    const ComputeBackend& be = *find_backend(name);
    std::vector<float> narrow_c(static_cast<std::size_t>(M * N), 0.0f);
    std::vector<float> wide_c(static_cast<std::size_t>(M * N * copies), 0.0f);
    be.sgemm(M, N, K, 1.0f, A.data(), B.data(), 0.0f, narrow_c.data());
    be.sgemm(M, N * copies, K, 1.0f, A.data(), wide_b.data(), 0.0f, wide_c.data());
    for (Index i = 0; i < M; ++i) {
      for (Index rep = 0; rep < copies; ++rep) {
        EXPECT_EQ(0, std::memcmp(narrow_c.data() + i * N,
                                 wide_c.data() + i * N * copies + rep * N,
                                 sizeof(float) * static_cast<std::size_t>(N)))
            << name << " row " << i << " copy " << rep;
      }
    }
  }
}

}  // namespace
}  // namespace paintplace::backend
