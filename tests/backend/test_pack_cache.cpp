// PackedWeightCache lifecycle tests: the cache serves the right panels at
// every point of a model's life, and never silently the wrong ones.
//
//   * miss-then-hit across repeated eval forwards (the serving steady state)
//   * training forwards bypass the cache entirely
//   * Adam::step (the fine-tune path) retires and re-packs the panels
//   * ModelRegistry::publish (hot swap) retires the outgoing model's panels
//   * an in-place weight mutation without a version bump trips the stale
//     fingerprint check and throws — loudly, instead of serving dead weights
//   * LRU capacity eviction drops the coldest entry first
//   * concurrent get_or_pack / invalidate is race-free (all suites here are
//     named PackCache* so CI's TSan job can filter to exactly these)
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "backend/pack_cache.h"
#include "common/check.h"
#include "common/rng.h"
#include "nn/adam.h"
#include "nn/conv2d.h"
#include "nn/tensor.h"
#include "serve/model_registry.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::backend {
namespace {

using Stats = PackedWeightCache::Stats;

nn::Tensor random_activations(std::uint64_t seed, Index c, Index hw) {
  Rng rng(seed);
  nn::Tensor t(nn::Shape{1, c, hw, hw});
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// The cache is process-global and shared with every other suite in this
/// binary, so assertions work on stat deltas, never absolutes. The cpu_opt
/// backend is the only packing backend, so pin it for the module-level tests.
class PackCacheTest : public ::testing::Test {
 protected:
  PackCacheTest() : scoped_backend_("cpu_opt") {}

  static Stats delta(const Stats& before) {
    const Stats now = PackedWeightCache::instance().stats();
    Stats d;
    d.hits = now.hits - before.hits;
    d.misses = now.misses - before.misses;
    d.evictions = now.evictions - before.evictions;
    d.stale_hits = now.stale_hits - before.stale_hits;
    d.bytes = now.bytes;
    d.entries = now.entries;
    return d;
  }

  ScopedBackend scoped_backend_;
};

TEST_F(PackCacheTest, SecondEvalForwardHitsFirstMisses) {
  Rng rng(11);
  nn::Conv2d conv("c", 3, 8, 3, 1, 1, rng);
  conv.set_training(false);
  const nn::Tensor x = random_activations(21, 3, 8);

  const Stats s0 = PackedWeightCache::instance().stats();
  const nn::Tensor cold = conv.forward(x);
  Stats d = delta(s0);
  EXPECT_EQ(d.misses, 1u) << "first eval forward must pack the weight panels";
  EXPECT_EQ(d.hits, 0u);
  EXPECT_GT(d.bytes, 0u);

  const Stats s1 = PackedWeightCache::instance().stats();
  const nn::Tensor warm = conv.forward(x);
  d = delta(s1);
  EXPECT_EQ(d.hits, 1u) << "second eval forward must reuse the cached panels";
  EXPECT_EQ(d.misses, 0u);

  // And reuse changes nothing: warm output bit-matches the cold one.
  ASSERT_EQ(cold.numel(), warm.numel());
  EXPECT_EQ(0, std::memcmp(cold.data(), warm.data(),
                           static_cast<std::size_t>(cold.numel()) * sizeof(float)));
}

TEST_F(PackCacheTest, TrainingForwardBypassesCache) {
  Rng rng(12);
  nn::Conv2d conv("c", 3, 8, 3, 1, 1, rng);
  conv.set_training(true);
  const nn::Tensor x = random_activations(22, 3, 8);

  const Stats s0 = PackedWeightCache::instance().stats();
  conv.forward(x);
  conv.forward(x);
  const Stats d = delta(s0);
  EXPECT_EQ(d.misses, 0u) << "training forwards must not populate the cache";
  EXPECT_EQ(d.hits, 0u);
}

TEST_F(PackCacheTest, AdamStepRetiresPanelsAndNextForwardRepacks) {
  Rng rng(13);
  nn::Conv2d conv("c", 4, 6, 3, 1, 1, rng);
  conv.set_training(false);
  const nn::Tensor x = random_activations(23, 4, 8);
  conv.forward(x);

  // An optimizer step mutates the weights in place — exactly what a serving
  // replica sees after a fine-tune pass. Zero gradients keep the values
  // unchanged numerically, but the version bump + invalidate must fire
  // regardless: identity, not value, drives the cache.
  nn::Adam opt(conv.parameters());
  const Stats s0 = PackedWeightCache::instance().stats();
  opt.step();
  Stats d = delta(s0);
  EXPECT_GE(d.evictions, 1u) << "Adam::step must invalidate the packed weight panels";

  const Stats s1 = PackedWeightCache::instance().stats();
  conv.forward(x);
  d = delta(s1);
  EXPECT_EQ(d.misses, 1u) << "post-step forward must re-pack under the new version";
  EXPECT_EQ(d.hits, 0u);
}

TEST_F(PackCacheTest, HotSwapRetiresOutgoingModelPanels) {
  serve::ModelRegistry registry;
  registry.publish(serve::testfix::tiny_model(1), "v1");
  const serve::ModelSnapshot v1 = registry.current();

  const Stats s0 = PackedWeightCache::instance().stats();
  v1.model->predict(serve::testfix::random_input(31));
  const Stats after_predict = delta(s0);
  EXPECT_GT(after_predict.misses, 0u) << "eval predict must populate the cache";
  const std::uint64_t v1_entries = after_predict.entries - s0.entries;

  const Stats s1 = PackedWeightCache::instance().stats();
  registry.publish(serve::testfix::tiny_model(2), "v2");
  const Stats d = delta(s1);
  EXPECT_GE(d.evictions, v1_entries)
      << "publish must retire every packed panel of the outgoing model";
  EXPECT_EQ(d.entries, s0.entries) << "cache footprint returns to its pre-v1 level";
}

TEST_F(PackCacheTest, UnbumpedMutationTripsStaleCheck) {
  Rng rng(14);
  nn::Conv2d conv("c", 3, 8, 3, 1, 1, rng);
  conv.set_training(false);
  const nn::Tensor x = random_activations(24, 3, 8);
  conv.forward(x);

  // Poke the weights without bump_version(): the (ptr, version) key still
  // matches, so only the fingerprint tripwire stands between the cache and
  // serving panels packed from weights that no longer exist.
  conv.weight().value[0] += 1.0f;
  const Stats s0 = PackedWeightCache::instance().stats();
  EXPECT_THROW(conv.forward(x), CheckError);
  Stats d = delta(s0);
  EXPECT_GE(d.stale_hits, 1u);

  // The documented fix — bump the version — recovers with a fresh pack.
  conv.weight().bump_version();
  const Stats s1 = PackedWeightCache::instance().stats();
  EXPECT_NO_THROW(conv.forward(x));
  d = delta(s1);
  EXPECT_EQ(d.misses, 1u);
}

/// Fabricated direct-API keys for capacity and concurrency tests. Versions
/// live above 1<<62, far outside what nn::next_weight_version hands out.
PackedWeightCache::Key raw_key(const float* buf, Index count, std::uint64_t salt) {
  return PackedWeightCache::Key{buf, (std::uint64_t{1} << 62) + salt, /*variant=*/15, count, 1};
}

std::shared_ptr<const PackedWeights> pack_copy(PackedWeightCache& cache,
                                               const PackedWeightCache::Key& key,
                                               const std::vector<float>& buf) {
  const auto count = static_cast<Index>(buf.size());
  return cache.get_or_pack(key, buf.data(), count, buf.size(), [&](float* dst) {
    std::memcpy(dst, buf.data(), buf.size() * sizeof(float));
  });
}

TEST_F(PackCacheTest, CapacityEvictsLeastRecentlyUsed) {
  auto& cache = PackedWeightCache::instance();
  const std::size_t old_capacity = cache.capacity_bytes();
  // Start from an empty cache: entries left behind by earlier tests would
  // otherwise sit deeper in the LRU than ours and absorb the eviction.
  cache.clear();

  std::vector<float> a(1024), b(1024), c(1024);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 1.0f;
    b[i] = 2.0f;
    c[i] = 3.0f;
  }
  const auto ka = raw_key(a.data(), 1024, 1);
  const auto kb = raw_key(b.data(), 1024, 2);
  const auto kc = raw_key(c.data(), 1024, 3);

  // Room for exactly two 4 KiB entries.
  cache.set_capacity_bytes(2 * 1024 * sizeof(float) + 1024);

  pack_copy(cache, ka, a);             // miss: {a}
  pack_copy(cache, kb, b);             // miss: {b, a}
  pack_copy(cache, ka, a);             // hit, a becomes most recent: {a, b}
  const Stats s0 = cache.stats();
  pack_copy(cache, kc, c);             // miss, evicts the LRU entry b: {c, a}
  Stats d;
  d.evictions = cache.stats().evictions - s0.evictions;
  EXPECT_GE(d.evictions, 1u);

  const Stats s1 = cache.stats();
  EXPECT_FLOAT_EQ(pack_copy(cache, ka, a)->data[0], 1.0f);  // still cached
  EXPECT_EQ(cache.stats().hits, s1.hits + 1);
  const Stats s2 = cache.stats();
  EXPECT_FLOAT_EQ(pack_copy(cache, kb, b)->data[0], 2.0f);  // was evicted
  EXPECT_EQ(cache.stats().misses, s2.misses + 1);

  cache.invalidate(a.data());
  cache.invalidate(b.data());
  cache.invalidate(c.data());
  cache.set_capacity_bytes(old_capacity);
}

TEST(PackCacheThreads, ConcurrentGetOrPackAndInvalidateIsSafe) {
  auto& cache = PackedWeightCache::instance();
  constexpr int kBuffers = 4;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;

  std::vector<std::vector<float>> bufs(kBuffers, std::vector<float>(512));
  for (int i = 0; i < kBuffers; ++i) {
    for (auto& x : bufs[static_cast<std::size_t>(i)]) x = static_cast<float>(i + 1);
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const auto& buf = bufs[static_cast<std::size_t>((t + i) % kBuffers)];
        const auto key = raw_key(buf.data(), 512, 100 + static_cast<std::uint64_t>((t + i) % kBuffers));
        const auto packed = pack_copy(cache, key, buf);
        // The shared_ptr pins the panels across concurrent invalidation.
        if (packed->data[0] != buf[0] || packed->data[511] != buf[511]) failed = true;
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < kIters / 2; ++i) {
      cache.invalidate(bufs[static_cast<std::size_t>(i % kBuffers)].data());
    }
  });
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load()) << "a cached pack returned wrong panel contents";

  for (const auto& buf : bufs) cache.invalidate(buf.data());
}

}  // namespace
}  // namespace paintplace::backend
