#include "backend/backend.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "nn/gemm.h"

namespace paintplace::backend {
namespace {

TEST(BackendRegistry, BuiltinsAreRegistered) {
  const auto names = backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "reference"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cpu_opt"), names.end());
  EXPECT_NE(find_backend("reference"), nullptr);
  EXPECT_NE(find_backend("cpu_opt"), nullptr);
  EXPECT_EQ(find_backend("no_such_backend"), nullptr);
}

TEST(BackendRegistry, SetActiveSwitchesAndThrowsOnUnknown) {
  const std::string before = active_backend().name();
  set_active_backend("reference");
  EXPECT_STREQ(active_backend().name(), "reference");
  set_active_backend("cpu_opt");
  EXPECT_STREQ(active_backend().name(), "cpu_opt");
  EXPECT_THROW(set_active_backend("no_such_backend"), CheckError);
  // A failed switch must not disturb the active backend.
  EXPECT_STREQ(active_backend().name(), "cpu_opt");
  set_active_backend(before);
}

TEST(BackendRegistry, ScopedBackendRestores) {
  const std::string before = active_backend().name();
  {
    ScopedBackend scoped("reference");
    EXPECT_STREQ(active_backend().name(), "reference");
  }
  EXPECT_EQ(active_backend().name(), before);
}

TEST(BackendRegistry, NnGemmDispatchesThroughActiveBackend) {
  // 2x2 identity times B under each backend — confirms the nn entry points
  // follow a backend switch (both backends agree exactly on this input).
  const float A[4] = {1.0f, 0.0f, 0.0f, 1.0f};
  const float B[4] = {1.5f, -2.0f, 0.25f, 4.0f};
  for (const char* name : {"reference", "cpu_opt"}) {
    ScopedBackend scoped(name);
    float C[4] = {9.0f, 9.0f, 9.0f, 9.0f};
    nn::sgemm(2, 2, 2, 1.0f, A, B, 0.0f, C);
    EXPECT_FLOAT_EQ(C[0], 1.5f) << name;
    EXPECT_FLOAT_EQ(C[1], -2.0f) << name;
    EXPECT_FLOAT_EQ(C[2], 0.25f) << name;
    EXPECT_FLOAT_EQ(C[3], 4.0f) << name;
  }
}

TEST(BackendRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(register_backend(make_reference_backend()), CheckError);
  EXPECT_THROW(register_backend(nullptr), CheckError);
}

}  // namespace
}  // namespace paintplace::backend
