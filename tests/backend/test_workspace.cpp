#include "backend/workspace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

namespace paintplace::backend {
namespace {

TEST(Workspace, SlicesAreDisjointAndWritable) {
  Workspace ws;
  WorkspaceScope scope(ws);
  float* a = scope.alloc(100);
  float* b = scope.alloc(50);
  float* c = scope.alloc(1000);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0, 100 * sizeof(float));
  std::memset(b, 0, 50 * sizeof(float));
  std::memset(c, 0, 1000 * sizeof(float));
  a[99] = 1.0f;
  b[49] = 2.0f;
  c[999] = 3.0f;
  EXPECT_FLOAT_EQ(a[99], 1.0f);
  EXPECT_FLOAT_EQ(b[49], 2.0f);
  EXPECT_FLOAT_EQ(c[999], 3.0f);
}

TEST(Workspace, ScopeReleaseReusesMemory) {
  Workspace ws;
  float* first = nullptr;
  {
    WorkspaceScope scope(ws);
    first = scope.alloc(512);
  }
  const std::size_t settled = ws.capacity_floats();
  EXPECT_EQ(ws.in_use_floats(), 0u);
  {
    WorkspaceScope scope(ws);
    // Same-size request right after release lands on the same bytes — the
    // steady-state (serving loop) allocation pattern is heap-free.
    EXPECT_EQ(scope.alloc(512), first);
  }
  EXPECT_EQ(ws.capacity_floats(), settled);
}

TEST(Workspace, NestedScopesRollBackInOrder) {
  Workspace ws;
  WorkspaceScope outer(ws);
  float* outer_buf = outer.alloc(64);
  outer_buf[0] = 42.0f;
  float* inner_buf = nullptr;
  {
    WorkspaceScope inner(ws);
    inner_buf = inner.alloc(64);
    EXPECT_NE(inner_buf, outer_buf);
  }
  // Outer allocation survives the inner scope; inner space is reusable.
  EXPECT_FLOAT_EQ(outer_buf[0], 42.0f);
  WorkspaceScope again(ws);
  EXPECT_EQ(again.alloc(64), inner_buf);
}

TEST(Workspace, GrowsAcrossBlocksWithoutInvalidatingPointers) {
  Workspace ws;
  WorkspaceScope scope(ws);
  // Force several block allocations; earlier slices must stay valid (the
  // arena never reallocates a live block).
  std::vector<float*> slices;
  for (int i = 0; i < 8; ++i) {
    float* p = scope.alloc(std::size_t{1} << 16);
    p[0] = static_cast<float>(i);
    slices.push_back(p);
  }
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(slices[static_cast<std::size_t>(i)][0], i);
  EXPECT_GE(ws.capacity_floats(), 8u << 16);
}

TEST(Workspace, ResetKeepsCapacity) {
  Workspace ws;
  ws.alloc(10000);
  const std::size_t cap = ws.capacity_floats();
  ws.reset();
  EXPECT_EQ(ws.in_use_floats(), 0u);
  EXPECT_EQ(ws.capacity_floats(), cap);
}

TEST(Workspace, ThreadLocalArenasAreIndependent) {
  float* main_slice = nullptr;
  {
    WorkspaceScope scope;  // main thread's TLS arena
    main_slice = scope.alloc(256);
    main_slice[0] = 1.0f;
    std::thread other([&] {
      WorkspaceScope other_scope;  // other thread's TLS arena
      float* p = other_scope.alloc(256);
      EXPECT_NE(p, main_slice);
      p[0] = 2.0f;
    });
    other.join();
    EXPECT_FLOAT_EQ(main_slice[0], 1.0f);
  }
}

}  // namespace
}  // namespace paintplace::backend
