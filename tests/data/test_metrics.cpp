#include "data/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace paintplace::data {
namespace {

using nn::Shape;
using nn::Tensor;

TEST(PixelAccuracy, IdenticalIsOne) {
  Rng rng(1);
  Tensor t(Shape{1, 3, 8, 8});
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform());
  EXPECT_DOUBLE_EQ(per_pixel_accuracy(t, t), 1.0);
}

TEST(PixelAccuracy, CompletelyWrongIsZero) {
  const Tensor a = Tensor::full(Shape{1, 3, 4, 4}, 0.0f);
  const Tensor b = Tensor::full(Shape{1, 3, 4, 4}, 1.0f);
  EXPECT_DOUBLE_EQ(per_pixel_accuracy(a, b), 0.0);
}

TEST(PixelAccuracy, ToleranceBoundaryInclusive) {
  const Tensor a = Tensor::full(Shape{1, 1, 1, 1}, 0.5f);
  Tensor b = a;
  b[0] += kPixelTolerance;  // exactly at the boundary
  EXPECT_DOUBLE_EQ(per_pixel_accuracy(a, b), 1.0);
  b[0] += 0.01f;
  EXPECT_DOUBLE_EQ(per_pixel_accuracy(a, b), 0.0);
}

TEST(PixelAccuracy, MaxChannelRuleCountsWorstChannel) {
  Tensor a(Shape{1, 3, 1, 1}, {0.5f, 0.5f, 0.5f});
  Tensor b(Shape{1, 3, 1, 1}, {0.5f, 0.5f, 0.9f});
  EXPECT_DOUBLE_EQ(per_pixel_accuracy(a, b), 0.0);
}

TEST(PixelAccuracy, HalfRightIsHalf) {
  Tensor a(Shape{1, 1, 1, 2}, {0.0f, 0.0f});
  Tensor b(Shape{1, 1, 1, 2}, {0.0f, 1.0f});
  EXPECT_DOUBLE_EQ(per_pixel_accuracy(a, b), 0.5);
}

TEST(PixelAccuracy, ShapeMismatchThrows) {
  EXPECT_THROW(per_pixel_accuracy(Tensor(Shape{1, 1, 2, 2}), Tensor(Shape{1, 1, 2, 3})),
               paintplace::CheckError);
}

TEST(KSmallest, OrdersByScoreThenIndex) {
  const std::vector<double> scores = {5.0, 1.0, 3.0, 1.0, 4.0};
  const std::vector<Index> idx = k_smallest_indices(scores, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1);  // ties broken by index
  EXPECT_EQ(idx[1], 3);
  EXPECT_EQ(idx[2], 2);
}

TEST(KSmallest, RejectsBadK) {
  const std::vector<double> scores = {1.0, 2.0};
  EXPECT_THROW(k_smallest_indices(scores, 0), paintplace::CheckError);
  EXPECT_THROW(k_smallest_indices(scores, 3), paintplace::CheckError);
}

TEST(TopK, PerfectPredictionScoresOne) {
  std::vector<double> truth;
  for (int i = 0; i < 50; ++i) truth.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(topk_min_overlap(truth, truth, 10), 1.0);
}

TEST(TopK, InvertedPredictionScoresZero) {
  std::vector<double> truth, pred;
  for (int i = 0; i < 50; ++i) {
    truth.push_back(static_cast<double>(i));
    pred.push_back(static_cast<double>(-i));
  }
  EXPECT_DOUBLE_EQ(topk_min_overlap(pred, truth, 10), 0.0);
}

TEST(TopK, PartialOverlapCounted) {
  // Predicted bottom-2 = {0,1}; true bottom-2 = {1,2} -> overlap 1/2.
  const std::vector<double> pred = {0.0, 1.0, 5.0, 6.0};
  const std::vector<double> truth = {9.0, 0.0, 1.0, 8.0};
  EXPECT_DOUBLE_EQ(topk_min_overlap(pred, truth, 2), 0.5);
}

TEST(TopK, RandomScoresNearExpectedOverlap) {
  // For random rankings of n=100, E[overlap of top-10] = 10/100 = 0.1.
  Rng rng(3);
  double total = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 100; ++i) {
      a.push_back(rng.uniform());
      b.push_back(rng.uniform());
    }
    total += topk_min_overlap(a, b, 10);
  }
  EXPECT_NEAR(total / trials, 0.1, 0.03);
}

TEST(Spearman, PerfectCorrelation) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(spearman_rank_correlation(a, b), 1.0, 1e-12);
}

TEST(Spearman, PerfectAntiCorrelation) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(spearman_rank_correlation(a, b), -1.0, 1e-12);
}

TEST(Spearman, MonotoneTransformInvariant) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    const double v = rng.uniform();
    a.push_back(v);
    b.push_back(v * v * 100.0 + 3.0);  // strictly increasing map
  }
  EXPECT_NEAR(spearman_rank_correlation(a, b), 1.0, 1e-12);
}

TEST(Spearman, NearZeroForIndependent) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  EXPECT_NEAR(spearman_rank_correlation(a, b), 0.0, 0.06);
}

}  // namespace
}  // namespace paintplace::data
