#include "data/splits.h"

#include <gtest/gtest.h>

#include <set>

namespace paintplace::data {
namespace {

std::vector<Dataset> fake_datasets() {
  std::vector<Dataset> out;
  for (const char* name : {"a", "b", "c"}) {
    Dataset ds;
    ds.design = name;
    for (int i = 0; i < 20; ++i) {
      Sample s;
      s.meta.design = name;
      s.meta.true_total_utilization = i;
      ds.samples.push_back(std::move(s));
    }
    out.push_back(std::move(ds));
  }
  return out;
}

TEST(Splits, TrainExcludesTestDesign) {
  const auto datasets = fake_datasets();
  const Split split = leave_one_design_out(datasets, "b", 5);
  EXPECT_EQ(split.train.size(), 40u);
  for (const Sample* s : split.train) EXPECT_NE(s->meta.design, "b");
}

TEST(Splits, TestAndFineTunePartitionTestDesign) {
  const auto datasets = fake_datasets();
  const Split split = leave_one_design_out(datasets, "b", 5);
  EXPECT_EQ(split.fine_tune.size(), 5u);
  EXPECT_EQ(split.test.size(), 15u);
  std::set<const Sample*> seen;
  for (const Sample* s : split.fine_tune) {
    EXPECT_EQ(s->meta.design, "b");
    seen.insert(s);
  }
  for (const Sample* s : split.test) {
    EXPECT_EQ(s->meta.design, "b");
    EXPECT_EQ(seen.count(s), 0u) << "test overlaps fine-tune";
  }
}

TEST(Splits, DeterministicPerSeed) {
  const auto datasets = fake_datasets();
  const Split s1 = leave_one_design_out(datasets, "c", 4, 11);
  const Split s2 = leave_one_design_out(datasets, "c", 4, 11);
  EXPECT_EQ(s1.fine_tune, s2.fine_tune);
  EXPECT_EQ(s1.test, s2.test);
}

TEST(Splits, SeedChangesFineTuneSelection) {
  const auto datasets = fake_datasets();
  const Split s1 = leave_one_design_out(datasets, "c", 4, 1);
  const Split s2 = leave_one_design_out(datasets, "c", 4, 2);
  EXPECT_NE(s1.fine_tune, s2.fine_tune);
}

TEST(Splits, ZeroFineTunePairsAllowed) {
  const auto datasets = fake_datasets();
  const Split split = leave_one_design_out(datasets, "a", 0);
  EXPECT_TRUE(split.fine_tune.empty());
  EXPECT_EQ(split.test.size(), 20u);
}

TEST(Splits, UnknownDesignThrows) {
  const auto datasets = fake_datasets();
  EXPECT_THROW(leave_one_design_out(datasets, "zzz", 5), paintplace::CheckError);
}

TEST(Splits, FineTuneCannotSwallowTestSet) {
  const auto datasets = fake_datasets();
  EXPECT_THROW(leave_one_design_out(datasets, "a", 20), paintplace::CheckError);
}

}  // namespace
}  // namespace paintplace::data
