// Parameterized end-of-pipeline properties across the whole Table 2 design
// suite (at miniature scale): every design must produce a well-formed,
// decodable dataset — the contract the bench harnesses rely on.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "fpga/design_suite.h"
#include "img/color.h"

namespace paintplace::data {
namespace {

class PipelineDesignTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name(GetParam()), 0.02);
    nl_ = std::make_unique<fpga::Netlist>(
        fpga::generate_packed(spec, fpga::NetgenParams{}, 31));
    const fpga::NetlistStats s = nl_->stats();
    arch_ = std::make_unique<fpga::Arch>(fpga::Arch::auto_sized(
        {s.num_clbs, s.num_inputs + s.num_outputs, s.num_mems, s.num_mults}));
    DatasetConfig cfg;
    cfg.image_width = 32;
    cfg.sweep.num_placements = 3;
    dataset_ = std::make_unique<Dataset>(build_dataset(*nl_, *arch_, cfg));
  }

  std::unique_ptr<fpga::Netlist> nl_;
  std::unique_ptr<fpga::Arch> arch_;
  std::unique_ptr<Dataset> dataset_;
};

TEST_P(PipelineDesignTest, SamplesWellFormed) {
  ASSERT_EQ(dataset_->samples.size(), 3u);
  for (const Sample& s : dataset_->samples) {
    ASSERT_EQ(s.input.shape(), (nn::Shape{1, 4, 32, 32}));
    ASSERT_EQ(s.target.shape(), (nn::Shape{1, 3, 32, 32}));
    for (Index i = 0; i < s.input.numel(); ++i) {
      ASSERT_GE(s.input[i], 0.0f);
      ASSERT_LE(s.input[i], 1.0f);
    }
    for (Index i = 0; i < s.target.numel(); ++i) {
      ASSERT_GE(s.target[i], 0.0f);
      ASSERT_LE(s.target[i], 1.0f);
    }
  }
}

TEST_P(PipelineDesignTest, ConnectivityChannelNonEmpty) {
  for (const Sample& s : dataset_->samples) {
    float max_connect = 0.0f;
    for (Index y = 0; y < 32; ++y) {
      for (Index x = 0; x < 32; ++x) {
        max_connect = std::max(max_connect, s.input.at(0, 3, y, x));
      }
    }
    EXPECT_GT(max_connect, 0.0f) << GetParam();
  }
}

TEST_P(PipelineDesignTest, GroundTruthCongestionPositive) {
  for (const Sample& s : dataset_->samples) {
    EXPECT_GT(s.meta.true_total_utilization, 0.0) << GetParam();
    EXPECT_GT(s.meta.route_seconds, 0.0);
  }
}

TEST_P(PipelineDesignTest, TargetDecodesToPlausibleUtilization) {
  // Decoding the rendered truth through the colormap inverse must yield a
  // mean utilization in (0, 1] — the quantity congestion_score() ranks by.
  for (const Sample& s : dataset_->samples) {
    double mean = 0.0;
    for (Index y = 0; y < 32; ++y) {
      for (Index x = 0; x < 32; ++x) {
        mean += img::UtilizationColormap::unmap(img::Color{
            s.target.at(0, 0, y, x), s.target.at(0, 1, y, x), s.target.at(0, 2, y, x)});
      }
    }
    mean /= (32.0 * 32.0);
    EXPECT_GT(mean, 0.0);
    EXPECT_LE(mean, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, PipelineDesignTest,
                         ::testing::Values("diffeq1", "diffeq2", "raygentop", "SHA", "OR1200",
                                           "ode", "dcsg", "bfly"));

}  // namespace
}  // namespace paintplace::data
