#include "data/dataset.h"

#include <gtest/gtest.h>

#include "fpga/netgen.h"

namespace paintplace::data {
namespace {

using fpga::Arch;
using fpga::DesignSpec;
using fpga::Netlist;

DesignSpec toy_spec() {
  DesignSpec s;
  s.name = "ds_toy";
  s.num_luts = 30;
  s.num_ffs = 10;
  s.num_nets = 70;
  s.num_inputs = 4;
  s.num_outputs = 4;
  return s;
}

struct Fixture {
  Netlist nl = fpga::generate_packed(toy_spec(), fpga::NetgenParams{}, 2);
  Arch arch = Arch::auto_sized({nl.stats().num_clbs,
                                nl.stats().num_inputs + nl.stats().num_outputs,
                                nl.stats().num_mems, nl.stats().num_mults});

  DatasetConfig config() const {
    DatasetConfig c;
    c.image_width = 32;
    c.sweep.num_placements = 6;
    return c;
  }
};

TEST(SweepConfig, EnumeratesDistinctOptionCombos) {
  SweepConfig sweep;
  // Seeds strictly increase; alpha cycles fastest.
  const auto o0 = sweep.options_at(0);
  const auto o1 = sweep.options_at(1);
  const auto o3 = sweep.options_at(3);
  EXPECT_EQ(o0.seed + 1, o1.seed);
  EXPECT_NE(o0.alpha_t, o1.alpha_t);
  EXPECT_NE(o0.inner_num, o3.inner_num);
  // Algorithm flips after alpha x inner combinations.
  const auto o9 = sweep.options_at(9);
  EXPECT_NE(static_cast<int>(o0.algorithm), static_cast<int>(o9.algorithm));
}

TEST(Dataset, BuildsRequestedNumberOfSamples) {
  Fixture f;
  const Dataset ds = build_dataset(f.nl, f.arch, f.config());
  EXPECT_EQ(ds.samples.size(), 6u);
  EXPECT_EQ(ds.design, "ds_toy");
}

TEST(Dataset, SampleTensorShapes) {
  Fixture f;
  const Dataset ds = build_dataset(f.nl, f.arch, f.config());
  for (const Sample& s : ds.samples) {
    EXPECT_EQ(s.input.shape(), (nn::Shape{1, 4, 32, 32}));
    EXPECT_EQ(s.target.shape(), (nn::Shape{1, 3, 32, 32}));
  }
}

TEST(Dataset, InputChannelsInExpectedRanges) {
  Fixture f;
  DatasetConfig cfg = f.config();
  cfg.lambda_connect = 0.1;
  const Dataset ds = build_dataset(f.nl, f.arch, cfg);
  for (const Sample& s : ds.samples) {
    float max_rgb = 0.0f, max_connect = 0.0f;
    for (Index c = 0; c < 3; ++c) {
      for (Index y = 0; y < 32; ++y) {
        for (Index x = 0; x < 32; ++x) {
          max_rgb = std::max(max_rgb, s.input.at(0, c, y, x));
        }
      }
    }
    for (Index y = 0; y < 32; ++y) {
      for (Index x = 0; x < 32; ++x) max_connect = std::max(max_connect, s.input.at(0, 3, y, x));
    }
    EXPECT_LE(max_rgb, 1.0f);
    EXPECT_GT(max_rgb, 0.5f);
    EXPECT_LE(max_connect, 0.1f + 1e-5f);  // λ-scaled
    EXPECT_GT(max_connect, 0.0f);
  }
}

TEST(Dataset, MetaRecordsSweepOptionsAndRouting) {
  Fixture f;
  const Dataset ds = build_dataset(f.nl, f.arch, f.config());
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    const SampleMeta& m = ds.samples[i].meta;
    EXPECT_EQ(m.design, "ds_toy");
    EXPECT_EQ(m.placer_options.seed, 1 + i);
    EXPECT_GT(m.true_total_utilization, 0.0);
    EXPECT_GT(m.route_seconds, 0.0);
    EXPECT_TRUE(m.route_success);
    EXPECT_GT(m.placement_cost, 0.0);
  }
}

TEST(Dataset, DifferentPlacementsGiveDifferentTargets) {
  Fixture f;
  const Dataset ds = build_dataset(f.nl, f.arch, f.config());
  const nn::Tensor& a = ds.samples[0].target;
  const nn::Tensor& b = ds.samples[1].target;
  EXPECT_GT(a.max_abs_diff(b), 0.01f);
}

TEST(Dataset, DeterministicRebuild) {
  Fixture f;
  const Dataset d1 = build_dataset(f.nl, f.arch, f.config());
  const Dataset d2 = build_dataset(f.nl, f.arch, f.config());
  for (std::size_t i = 0; i < d1.samples.size(); ++i) {
    EXPECT_EQ(d1.samples[i].input.max_abs_diff(d2.samples[i].input), 0.0f);
    EXPECT_EQ(d1.samples[i].target.max_abs_diff(d2.samples[i].target), 0.0f);
    EXPECT_DOUBLE_EQ(d1.samples[i].meta.true_total_utilization,
                     d2.samples[i].meta.true_total_utilization);
  }
}

TEST(Dataset, GrayscaleInputHasTwoChannels) {
  Fixture f;
  place::PlacerOptions opt;
  place::SaPlacer placer(f.arch, f.nl, opt);
  const place::Placement p = placer.place();
  const img::PixelGeometry geom(f.arch, 256);
  const nn::Tensor x = make_input_grayscale(p, geom, 32, 0.1);
  EXPECT_EQ(x.shape(), (nn::Shape{1, 2, 32, 32}));
}

TEST(Dataset, RejectsFlatNetlist) {
  Fixture f;
  Netlist flat("flat");
  flat.add_block(fpga::BlockKind::kLut, "l");
  DatasetConfig cfg = f.config();
  EXPECT_THROW(build_dataset(flat, f.arch, cfg), paintplace::CheckError);
}

}  // namespace
}  // namespace paintplace::data
