#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fpga/netgen.h"

namespace paintplace::data {
namespace {

Dataset small_dataset() {
  fpga::DesignSpec spec;
  spec.name = "cache_toy";
  spec.num_luts = 25;
  spec.num_ffs = 8;
  spec.num_nets = 55;
  spec.num_inputs = 4;
  spec.num_outputs = 3;
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 6);
  const fpga::NetlistStats s = nl.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {s.num_clbs, s.num_inputs + s.num_outputs, s.num_mems, s.num_mults});
  DatasetConfig cfg;
  cfg.image_width = 16;
  cfg.sweep.num_placements = 3;
  return build_dataset(nl, arch, cfg);
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  const Dataset original = small_dataset();
  const std::string path = ::testing::TempDir() + "/pp_dataset.bin";
  save_dataset(original, path);
  const Dataset loaded = load_dataset(path);

  EXPECT_EQ(loaded.design, original.design);
  EXPECT_EQ(loaded.config.image_width, original.config.image_width);
  EXPECT_DOUBLE_EQ(loaded.config.lambda_connect, original.config.lambda_connect);
  ASSERT_EQ(loaded.samples.size(), original.samples.size());
  for (std::size_t i = 0; i < original.samples.size(); ++i) {
    const Sample& a = original.samples[i];
    const Sample& b = loaded.samples[i];
    EXPECT_EQ(a.input.max_abs_diff(b.input), 0.0f);
    EXPECT_EQ(a.target.max_abs_diff(b.target), 0.0f);
    EXPECT_EQ(a.meta.design, b.meta.design);
    EXPECT_EQ(a.meta.placer_options.seed, b.meta.placer_options.seed);
    EXPECT_DOUBLE_EQ(a.meta.placer_options.alpha_t, b.meta.placer_options.alpha_t);
    EXPECT_EQ(a.meta.placer_options.algorithm, b.meta.placer_options.algorithm);
    EXPECT_DOUBLE_EQ(a.meta.true_total_utilization, b.meta.true_total_utilization);
    EXPECT_DOUBLE_EQ(a.meta.route_seconds, b.meta.route_seconds);
    EXPECT_EQ(a.meta.route_success, b.meta.route_success);
    EXPECT_EQ(a.meta.route_iterations, b.meta.route_iterations);
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/pp_dataset_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a dataset";
  }
  EXPECT_THROW(load_dataset(path), paintplace::CheckError);
  std::remove(path.c_str());
}

TEST(DatasetIo, RejectsTruncatedFile) {
  const Dataset original = small_dataset();
  const std::string path = ::testing::TempDir() + "/pp_dataset_cut.bin";
  save_dataset(original, path);
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_dataset(path), paintplace::CheckError);
  std::remove(path.c_str());
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/ds.bin"), paintplace::CheckError);
}

}  // namespace
}  // namespace paintplace::data
