// Parameterized placer properties over the full option grid the dataset
// sweep uses (Sec. 5 "Datasets"): legality, improvement and determinism for
// every (algorithm, alpha_t, inner_num) combination.
#include <gtest/gtest.h>

#include "fpga/netgen.h"
#include "place/sa_placer.h"

namespace paintplace::place {
namespace {

struct PlacerCase {
  PlaceAlgorithm algorithm;
  double alpha_t;
  double inner_num;
};

void PrintTo(const PlacerCase& c, std::ostream* os) {
  *os << place_algorithm_name(c.algorithm) << "_a" << c.alpha_t << "_i" << c.inner_num;
}

class PlacerPropertyTest : public ::testing::TestWithParam<PlacerCase> {
 protected:
  static fpga::Netlist make_netlist() {
    fpga::DesignSpec spec;
    spec.name = "grid";
    spec.num_luts = 80;
    spec.num_ffs = 30;
    spec.num_nets = 200;
    spec.num_inputs = 8;
    spec.num_outputs = 8;
    return fpga::generate_packed(spec, fpga::NetgenParams{}, 13);
  }

  fpga::Netlist nl_ = make_netlist();
  fpga::Arch arch_ = fpga::Arch::auto_sized({nl_.stats().num_clbs,
                                             nl_.stats().num_inputs + nl_.stats().num_outputs,
                                             nl_.stats().num_mems, nl_.stats().num_mults});

  PlacerOptions options() const {
    PlacerOptions opt;
    opt.seed = 17;
    opt.algorithm = GetParam().algorithm;
    opt.alpha_t = GetParam().alpha_t;
    opt.inner_num = GetParam().inner_num;
    return opt;
  }
};

TEST_P(PlacerPropertyTest, ResultIsLegal) {
  SaPlacer placer(arch_, nl_, options());
  const Placement p = placer.place();
  EXPECT_NO_THROW(p.validate());
}

TEST_P(PlacerPropertyTest, CostNeverWorsens) {
  SaPlacer placer(arch_, nl_, options());
  placer.place();
  EXPECT_LE(placer.report().final_cost, placer.report().initial_cost * 1.0001);
}

TEST_P(PlacerPropertyTest, ReportInternallyConsistent) {
  SaPlacer placer(arch_, nl_, options());
  const Placement p = placer.place();
  EXPECT_NEAR(placer.report().final_cost, p.total_cost(), 1e-6);
  EXPECT_GE(placer.report().moves_attempted, placer.report().moves_accepted);
}

TEST_P(PlacerPropertyTest, Deterministic) {
  SaPlacer p1(arch_, nl_, options());
  SaPlacer p2(arch_, nl_, options());
  const Placement a = p1.place();
  const Placement b = p2.place();
  for (fpga::BlockId id = 0; id < nl_.num_blocks(); ++id) {
    ASSERT_EQ(a.loc(id), b.loc(id));
  }
}

INSTANTIATE_TEST_SUITE_P(
    OptionGrid, PlacerPropertyTest,
    ::testing::Values(PlacerCase{PlaceAlgorithm::kAnnealing, 0.8, 0.33},
                      PlacerCase{PlaceAlgorithm::kAnnealing, 0.9, 1.0},
                      PlacerCase{PlaceAlgorithm::kAnnealing, 0.95, 2.0},
                      PlacerCase{PlaceAlgorithm::kAnnealing, 0.5, 1.0},
                      PlacerCase{PlaceAlgorithm::kGreedy, 0.9, 1.0},
                      PlacerCase{PlaceAlgorithm::kGreedy, 0.8, 2.0}));

}  // namespace
}  // namespace paintplace::place
