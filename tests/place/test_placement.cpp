#include "place/placement.h"

#include <gtest/gtest.h>

#include "fpga/netgen.h"

namespace paintplace::place {
namespace {

using fpga::Arch;
using fpga::BlockKind;
using fpga::DesignSpec;
using fpga::Netlist;

DesignSpec toy_spec() {
  DesignSpec s;
  s.name = "toy";
  s.num_luts = 30;
  s.num_ffs = 10;
  s.num_nets = 60;
  s.num_inputs = 4;
  s.num_outputs = 4;
  return s;
}

struct Fixture {
  Netlist nl = fpga::generate_packed(toy_spec(), fpga::NetgenParams{}, 1);
  Arch arch = Arch::auto_sized(
      {nl.stats().num_clbs, nl.stats().num_inputs + nl.stats().num_outputs,
       nl.stats().num_mems, nl.stats().num_mults});
};

TEST(Placement, RandomInitIsLegal) {
  Fixture f;
  Placement p(f.arch, f.nl);
  Rng rng(7);
  p.random_init(rng);
  EXPECT_TRUE(p.is_placed());
  EXPECT_NO_THROW(p.validate());
}

TEST(Placement, RandomInitDeterministicPerSeed) {
  Fixture f;
  Placement a(f.arch, f.nl), b(f.arch, f.nl);
  Rng r1(5), r2(5);
  a.random_init(r1);
  b.random_init(r2);
  for (fpga::BlockId id = 0; id < f.nl.num_blocks(); ++id) {
    EXPECT_EQ(a.loc(id), b.loc(id));
  }
}

TEST(Placement, BlockAtInvertsLoc) {
  Fixture f;
  Placement p(f.arch, f.nl);
  Rng rng(9);
  p.random_init(rng);
  for (const fpga::Block& b : f.nl.blocks()) {
    EXPECT_EQ(p.block_at(p.loc(b.id)), b.id);
  }
}

TEST(Placement, MoveUpdatesOccupancy) {
  Fixture f;
  Placement p(f.arch, f.nl);
  Rng rng(11);
  p.random_init(rng);
  // Find a CLB and a free CLB slot.
  fpga::BlockId clb = -1;
  for (const fpga::Block& b : f.nl.blocks()) {
    if (b.kind == BlockKind::kClb) {
      clb = b.id;
      break;
    }
  }
  ASSERT_GE(clb, 0);
  fpga::GridLoc target{};
  for (const fpga::GridLoc& s : f.arch.slots(fpga::TileType::kClb)) {
    if (p.block_at(s) < 0) {
      target = s;
      break;
    }
  }
  ASSERT_TRUE(target.valid());
  const fpga::GridLoc old = p.loc(clb);
  p.move(clb, target);
  EXPECT_EQ(p.block_at(target), clb);
  EXPECT_EQ(p.block_at(old), -1);
  EXPECT_NO_THROW(p.validate());
}

TEST(Placement, MoveToOccupiedSlotThrows) {
  Fixture f;
  Placement p(f.arch, f.nl);
  Rng rng(13);
  p.random_init(rng);
  fpga::BlockId c0 = -1, c1 = -1;
  for (const fpga::Block& b : f.nl.blocks()) {
    if (b.kind != BlockKind::kClb) continue;
    if (c0 < 0) {
      c0 = b.id;
    } else {
      c1 = b.id;
      break;
    }
  }
  ASSERT_GE(c1, 0);
  EXPECT_THROW(p.move(c0, p.loc(c1)), CheckError);
}

TEST(Placement, SwapExchangesSlots) {
  Fixture f;
  Placement p(f.arch, f.nl);
  Rng rng(15);
  p.random_init(rng);
  fpga::BlockId c0 = -1, c1 = -1;
  for (const fpga::Block& b : f.nl.blocks()) {
    if (b.kind != BlockKind::kClb) continue;
    if (c0 < 0) {
      c0 = b.id;
    } else {
      c1 = b.id;
      break;
    }
  }
  ASSERT_GE(c1, 0);
  const fpga::GridLoc l0 = p.loc(c0), l1 = p.loc(c1);
  p.swap(c0, c1);
  EXPECT_EQ(p.loc(c0), l1);
  EXPECT_EQ(p.loc(c1), l0);
  EXPECT_NO_THROW(p.validate());
}

TEST(Placement, HpwlIsPositiveAndConsistent) {
  Fixture f;
  Placement p(f.arch, f.nl);
  Rng rng(17);
  p.random_init(rng);
  const double total = p.total_cost();
  EXPECT_GT(total, 0.0);
  double manual = 0.0;
  for (const fpga::Net& n : f.nl.nets()) manual += p.net_cost(n.id);
  EXPECT_NEAR(total, manual, 1e-9);
}

TEST(Placement, SingleTileNetHasZeroHpwl) {
  Fixture f;
  Placement p(f.arch, f.nl);
  Rng rng(19);
  p.random_init(rng);
  // Any net whose blocks share one tile contributes 0.
  for (const fpga::Net& n : f.nl.nets()) {
    const BBox bb = p.net_bbox(n.id);
    if (bb.half_perimeter() == 0) {
      EXPECT_EQ(p.net_cost(n.id), 0.0);
    }
  }
}

TEST(Placement, CrossingFactorMatchesVprTable) {
  EXPECT_DOUBLE_EQ(crossing_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(crossing_factor(3), 1.0);
  EXPECT_DOUBLE_EQ(crossing_factor(4), 1.0828);
  EXPECT_DOUBLE_EQ(crossing_factor(50), 2.7933);
  EXPECT_NEAR(crossing_factor(60), 2.7933 + 0.2616, 1e-9);
  EXPECT_THROW(crossing_factor(0), CheckError);
}

TEST(Placement, CrossingFactorMonotone) {
  for (Index t = 1; t < 80; ++t) {
    EXPECT_LE(crossing_factor(t), crossing_factor(t + 1));
  }
}

TEST(Placement, RequiresPackedNetlist) {
  Netlist flat("flat");
  flat.add_block(BlockKind::kLut, "l0");
  const Arch arch(3, 3);
  EXPECT_THROW(Placement(arch, flat), CheckError);
}

TEST(Placement, TooSmallArchThrowsOnInit) {
  Fixture f;
  const Arch tiny(1, 1);  // 1 CLB capacity
  Placement p(tiny, f.nl);
  Rng rng(21);
  EXPECT_THROW(p.random_init(rng), CheckError);
}

}  // namespace
}  // namespace paintplace::place
