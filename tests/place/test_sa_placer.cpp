#include "place/sa_placer.h"

#include <gtest/gtest.h>

#include "fpga/netgen.h"

namespace paintplace::place {
namespace {

using fpga::Arch;
using fpga::DesignSpec;
using fpga::Netlist;

struct Fixture {
  DesignSpec spec;
  Netlist nl;
  Arch arch;

  explicit Fixture(Index luts = 50, Index nets = 120)
      : spec(make_spec(luts, nets)),
        nl(fpga::generate_packed(spec, fpga::NetgenParams{}, 3)),
        arch(Arch::auto_sized({nl.stats().num_clbs,
                               nl.stats().num_inputs + nl.stats().num_outputs,
                               nl.stats().num_mems, nl.stats().num_mults})) {}

  static DesignSpec make_spec(Index luts, Index nets) {
    DesignSpec s;
    s.name = "sa_toy";
    s.num_luts = luts;
    s.num_ffs = luts / 3;
    s.num_nets = nets;
    s.num_inputs = 6;
    s.num_outputs = 5;
    return s;
  }
};

TEST(SaPlacer, ImprovesOverRandomInitial) {
  Fixture f;
  PlacerOptions opt;
  opt.seed = 1;
  SaPlacer placer(f.arch, f.nl, opt);
  const Placement p = placer.place();
  EXPECT_NO_THROW(p.validate());
  EXPECT_LT(placer.report().final_cost, placer.report().initial_cost * 0.9)
      << "annealing should cut HPWL substantially";
}

TEST(SaPlacer, FinalCostMatchesPlacement) {
  Fixture f;
  PlacerOptions opt;
  opt.seed = 2;
  SaPlacer placer(f.arch, f.nl, opt);
  const Placement p = placer.place();
  EXPECT_NEAR(placer.report().final_cost, p.total_cost(), 1e-6);
}

TEST(SaPlacer, DeterministicPerSeed) {
  Fixture f;
  PlacerOptions opt;
  opt.seed = 5;
  SaPlacer p1(f.arch, f.nl, opt);
  SaPlacer p2(f.arch, f.nl, opt);
  const Placement a = p1.place();
  const Placement b = p2.place();
  for (fpga::BlockId id = 0; id < f.nl.num_blocks(); ++id) {
    EXPECT_EQ(a.loc(id), b.loc(id));
  }
}

TEST(SaPlacer, SeedsProduceDifferentPlacements) {
  Fixture f;
  PlacerOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const Placement a = SaPlacer(f.arch, f.nl, o1).place();
  const Placement b = SaPlacer(f.arch, f.nl, o2).place();
  Index moved = 0;
  for (fpga::BlockId id = 0; id < f.nl.num_blocks(); ++id) {
    if (!(a.loc(id) == b.loc(id))) moved += 1;
  }
  EXPECT_GT(moved, f.nl.num_blocks() / 4);
}

TEST(SaPlacer, GreedyAlgorithmTerminatesAtLocalMin) {
  Fixture f;
  PlacerOptions opt;
  opt.algorithm = PlaceAlgorithm::kGreedy;
  opt.seed = 3;
  SaPlacer placer(f.arch, f.nl, opt);
  const Placement p = placer.place();
  EXPECT_NO_THROW(p.validate());
  EXPECT_LE(placer.report().final_cost, placer.report().initial_cost);
}

TEST(SaPlacer, HigherInnerNumAttemptsMoreMoves) {
  Fixture f;
  PlacerOptions lo, hi;
  lo.inner_num = 0.25;
  hi.inner_num = 2.0;
  lo.seed = hi.seed = 4;
  SaPlacer pl(f.arch, f.nl, lo), ph(f.arch, f.nl, hi);
  pl.place();
  ph.place();
  EXPECT_GT(ph.report().moves_attempted, pl.report().moves_attempted);
}

TEST(SaPlacer, FasterCoolingUsesFewerTemperatures) {
  Fixture f;
  PlacerOptions fast, slow;
  fast.alpha_t = 0.5;
  slow.alpha_t = 0.95;
  fast.seed = slow.seed = 6;
  SaPlacer pf(f.arch, f.nl, fast), ps(f.arch, f.nl, slow);
  pf.place();
  ps.place();
  EXPECT_LT(pf.report().temperature_steps, ps.report().temperature_steps);
}

TEST(SaPlacer, SnapshotCallbackFires) {
  Fixture f;
  PlacerOptions opt;
  opt.seed = 8;
  SaPlacer placer(f.arch, f.nl, opt);
  Index calls = 0;
  Index last_moves = 0;
  placer.set_snapshot(
      [&](const Placement& p, Index moves, double) {
        calls += 1;
        EXPECT_TRUE(p.is_placed());
        EXPECT_GT(moves, last_moves);
        last_moves = moves;
      },
      50);
  placer.place();
  EXPECT_GT(calls, 0);
}

TEST(SaPlacer, RejectsBadOptions) {
  Fixture f;
  PlacerOptions bad;
  bad.alpha_t = 1.5;
  EXPECT_THROW(SaPlacer(f.arch, f.nl, bad), CheckError);
  bad = PlacerOptions{};
  bad.inner_num = 0.0;
  EXPECT_THROW(SaPlacer(f.arch, f.nl, bad), CheckError);
}

TEST(SaPlacer, AlgorithmNames) {
  EXPECT_STREQ(place_algorithm_name(PlaceAlgorithm::kAnnealing), "annealing");
  EXPECT_STREQ(place_algorithm_name(PlaceAlgorithm::kGreedy), "greedy");
}

TEST(SaPlacer, ReportCountsAreConsistent) {
  Fixture f;
  PlacerOptions opt;
  opt.seed = 9;
  SaPlacer placer(f.arch, f.nl, opt);
  placer.place();
  const PlacerReport& r = placer.report();
  EXPECT_GE(r.moves_attempted, r.moves_accepted);
  EXPECT_GT(r.moves_accepted, 0);
  EXPECT_GT(r.temperature_steps, 0);
}

}  // namespace
}  // namespace paintplace::place
