#include "place/rudy.h"

#include <gtest/gtest.h>

#include "data/metrics.h"
#include "fpga/netgen.h"
#include "place/sa_placer.h"
#include "route/router.h"

namespace paintplace::place {
namespace {

struct Fixture {
  fpga::Netlist nl;
  fpga::Arch arch;

  Fixture()
      : nl(fpga::generate_packed(make_spec(), fpga::NetgenParams{}, 19)),
        arch(fpga::Arch::auto_sized({nl.stats().num_clbs,
                                     nl.stats().num_inputs + nl.stats().num_outputs,
                                     nl.stats().num_mems, nl.stats().num_mults})) {}

  static fpga::DesignSpec make_spec() {
    fpga::DesignSpec s;
    s.name = "rudy_toy";
    s.num_luts = 60;
    s.num_ffs = 20;
    s.num_nets = 150;
    s.num_inputs = 6;
    s.num_outputs = 5;
    return s;
  }
  Placement place(std::uint64_t seed) const {
    PlacerOptions opt;
    opt.seed = seed;
    SaPlacer placer(arch, nl, opt);
    return placer.place();
  }
};

TEST(Rudy, MapDimensionsMatchFabric) {
  Fixture f;
  const RudyMap rudy(f.place(1));
  EXPECT_EQ(rudy.width(), f.arch.width());
  EXPECT_EQ(rudy.height(), f.arch.height());
}

TEST(Rudy, TotalEqualsSumOfNetWirelengths) {
  // Spreading conserves mass: the map total must equal the sum of
  // crossing-corrected half-perimeters (the placement's weighted HPWL).
  Fixture f;
  const Placement p = f.place(2);
  const RudyMap rudy(p);
  EXPECT_NEAR(rudy.total(), p.total_cost(), p.total_cost() * 1e-9 + 1e-9);
}

TEST(Rudy, DemandConcentratesInsideBoundingBoxes) {
  Fixture f;
  const Placement p = f.place(3);
  const RudyMap rudy(p);
  // Peak demand must exceed mean demand: nets overlap somewhere.
  const double mean = rudy.total() / static_cast<double>(rudy.width() * rudy.height());
  EXPECT_GT(rudy.peak(), mean);
}

TEST(Rudy, TracksActualRoutedCongestionAcrossQualityLevels) {
  // The estimator's purpose: placements of different quality (random /
  // greedy / fully annealed) must be ranked like the routed ground truth.
  // (Between equally-good placements of one anneal, RUDY's ranking is noise
  // — exactly the regime where the paper's learned forecast earns its keep.)
  Fixture f;
  std::vector<double> rudy_scores, routed_scores;
  route::ChannelGraph graph(f.arch);
  auto record = [&](const Placement& p) {
    rudy_scores.push_back(RudyMap(p).total());
    route::CongestionMap cm(graph);
    route::PathFinderRouter router(graph);
    router.route(p, cm);
    routed_scores.push_back(cm.total_utilization());
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Placement random_p(f.arch, f.nl);
    Rng rng(seed);
    random_p.random_init(rng);
    record(random_p);

    PlacerOptions greedy;
    greedy.seed = seed;
    greedy.algorithm = PlaceAlgorithm::kGreedy;
    record(SaPlacer(f.arch, f.nl, greedy).place());

    record(f.place(seed));
  }
  EXPECT_GT(data::spearman_rank_correlation(rudy_scores, routed_scores), 0.5);
}

TEST(Rudy, SingleNetKnownValue) {
  // Hand-built two-block placement on CLB columns 1 and 4 (column 3 is the
  // memory column): one 2-pin net with bbox 4x1 and half-perimeter 3
  // spreads q(2)*3/4 per tile over four tiles.
  fpga::Netlist nl("two");
  const fpga::BlockId a = nl.add_block(fpga::BlockKind::kClb, "a");
  const fpga::BlockId b = nl.add_block(fpga::BlockKind::kClb, "b");
  nl.add_net("n", a, {b});
  const fpga::Arch arch(4, 4);
  ASSERT_EQ(arch.tile_type(1, 2), fpga::TileType::kClb);
  ASSERT_EQ(arch.tile_type(4, 2), fpga::TileType::kClb);
  Placement p(arch, nl);
  p.move(a, fpga::GridLoc{1, 2, 0});
  p.move(b, fpga::GridLoc{4, 2, 0});
  const RudyMap rudy(p);
  const double expected = crossing_factor(2) * 3.0 / 4.0;
  for (Index x = 1; x <= 4; ++x) EXPECT_NEAR(rudy.at(x, 2), expected, 1e-12);
  EXPECT_EQ(rudy.at(0, 2), 0.0);
  EXPECT_EQ(rudy.at(5, 2), 0.0);
  EXPECT_EQ(rudy.at(1, 1), 0.0);
}

}  // namespace
}  // namespace paintplace::place
