#include "route/channel_graph.h"

#include <gtest/gtest.h>

namespace paintplace::route {
namespace {

using fpga::Arch;
using fpga::GridLoc;

TEST(ChannelGraph, LatticeDimensions) {
  const Arch arch(4, 3);  // 6x5 tiles
  const ChannelGraph g(arch);
  EXPECT_EQ(g.lattice_width(), 13);
  EXPECT_EQ(g.lattice_height(), 11);
  EXPECT_EQ(g.num_nodes(), 143);
}

TEST(ChannelGraph, NodeKindsByParity) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  EXPECT_EQ(g.kind(g.node_at(1, 1)), NodeKind::kTile);
  EXPECT_EQ(g.kind(g.node_at(1, 2)), NodeKind::kHChan);
  EXPECT_EQ(g.kind(g.node_at(2, 1)), NodeKind::kVChan);
  EXPECT_EQ(g.kind(g.node_at(2, 2)), NodeKind::kSwitch);
}

TEST(ChannelGraph, BorderIsNotRoutable) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  for (Index lx = 0; lx < g.lattice_width(); ++lx) {
    EXPECT_FALSE(g.is_routable(g.node_at(lx, 0)));
    EXPECT_FALSE(g.is_routable(g.node_at(lx, g.lattice_height() - 1)));
  }
  for (Index ly = 0; ly < g.lattice_height(); ++ly) {
    EXPECT_FALSE(g.is_routable(g.node_at(0, ly)));
    EXPECT_FALSE(g.is_routable(g.node_at(g.lattice_width() - 1, ly)));
  }
}

TEST(ChannelGraph, InteriorChannelsRoutableWithCapacity) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  const NodeId h = g.node_at(1, 2);
  EXPECT_TRUE(g.is_channel(h));
  EXPECT_EQ(g.capacity(h), 34);
}

TEST(ChannelGraph, TilesHaveNoCapacity) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  EXPECT_EQ(g.capacity(g.node_at(1, 1)), 0);
}

TEST(ChannelGraph, SwitchboxHasLargeCapacity) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  EXPECT_EQ(g.capacity(g.node_at(2, 2)), 4 * 34);
}

TEST(ChannelGraph, ChannelNeighborsAreSwitchboxes) {
  const Arch arch(4, 4);
  const ChannelGraph g(arch);
  const NodeId h = g.node_at(3, 4);  // interior H channel
  NodeId nbr[4];
  const int deg = g.neighbors(h, nbr);
  ASSERT_EQ(deg, 2);
  for (int i = 0; i < deg; ++i) EXPECT_EQ(g.kind(nbr[i]), NodeKind::kSwitch);
}

TEST(ChannelGraph, SwitchNeighborsAreChannels) {
  const Arch arch(4, 4);
  const ChannelGraph g(arch);
  const NodeId s = g.node_at(4, 4);
  NodeId nbr[4];
  const int deg = g.neighbors(s, nbr);
  ASSERT_EQ(deg, 4);
  for (int i = 0; i < deg; ++i) EXPECT_TRUE(g.is_channel(nbr[i]));
}

TEST(ChannelGraph, NeighborsExcludeBorder) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  // Channel right inside the border: one of its switch neighbours is on the
  // border and must be dropped.
  const NodeId v = g.node_at(2, 1);  // V channel adjacent to lattice row 0
  NodeId nbr[4];
  const int deg = g.neighbors(v, nbr);
  EXPECT_EQ(deg, 1);
}

TEST(ChannelGraph, TileNeighborsQueryThrows) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  NodeId nbr[4];
  EXPECT_THROW(g.neighbors(g.node_at(1, 1), nbr), CheckError);
}

TEST(ChannelGraph, InteriorTileHasFourPins) {
  const Arch arch(4, 4);
  const ChannelGraph g(arch);
  EXPECT_EQ(g.tile_pins(GridLoc{2, 2, 0}).size(), 4u);
}

TEST(ChannelGraph, EdgeIoTileHasThreePins) {
  const Arch arch(4, 4);
  const ChannelGraph g(arch);
  // IO pad at (0, 2): its west channel is out of plan.
  EXPECT_EQ(g.tile_pins(GridLoc{0, 2, 0}).size(), 3u);
}

TEST(ChannelGraph, TileNodeRoundTrip) {
  const Arch arch(5, 4);
  const ChannelGraph g(arch);
  const NodeId n = g.tile_node(GridLoc{3, 2, 0});
  EXPECT_EQ(g.lx_of(n), 7);
  EXPECT_EQ(g.ly_of(n), 5);
  EXPECT_EQ(g.kind(n), NodeKind::kTile);
}

TEST(ChannelGraph, EveryRoutablePairIsConnected) {
  // BFS from one channel must reach all routable nodes (fabric is connected).
  const Arch arch(5, 5);
  const ChannelGraph g(arch);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<NodeId> stack;
  NodeId start = -1;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_routable(n)) {
      start = n;
      break;
    }
  }
  ASSERT_GE(start, 0);
  stack.push_back(start);
  seen[static_cast<std::size_t>(start)] = true;
  Index visited = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    visited += 1;
    NodeId nbr[4];
    const int deg = g.neighbors(n, nbr);
    for (int i = 0; i < deg; ++i) {
      if (!seen[static_cast<std::size_t>(nbr[i])]) {
        seen[static_cast<std::size_t>(nbr[i])] = true;
        stack.push_back(nbr[i]);
      }
    }
  }
  Index routable = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_routable(n)) routable += 1;
  }
  EXPECT_EQ(visited, routable);
}

}  // namespace
}  // namespace paintplace::route
