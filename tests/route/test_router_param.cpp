// Parameterized router properties: the PathFinder invariants must hold for
// every channel width and design density, not just the default fabric.
#include <gtest/gtest.h>

#include <set>

#include "fpga/design_suite.h"
#include "fpga/netgen.h"
#include "place/sa_placer.h"
#include "route/router.h"

namespace paintplace::route {
namespace {

struct RouterCase {
  Index channel_width;
  const char* design;
  double scale;
};

void PrintTo(const RouterCase& c, std::ostream* os) {
  *os << c.design << "_w" << c.channel_width;
}

class RouterPropertyTest : public ::testing::TestWithParam<RouterCase> {
 protected:
  void SetUp() override {
    const RouterCase& param = GetParam();
    const fpga::DesignSpec spec =
        fpga::scale_spec(fpga::design_by_name(param.design), param.scale);
    nl_ = std::make_unique<fpga::Netlist>(
        fpga::generate_packed(spec, fpga::NetgenParams{}, 77));
    const fpga::NetlistStats s = nl_->stats();
    fpga::ArchParams arch_params;
    arch_params.channel_width = param.channel_width;
    arch_ = std::make_unique<fpga::Arch>(fpga::Arch::auto_sized(
        {s.num_clbs, s.num_inputs + s.num_outputs, s.num_mems, s.num_mults}, arch_params));
    place::PlacerOptions opt;
    opt.seed = 5;
    place::SaPlacer placer(*arch_, *nl_, opt);
    placement_ = std::make_unique<place::Placement>(placer.place());
    graph_ = std::make_unique<ChannelGraph>(*arch_);
    congestion_ = std::make_unique<CongestionMap>(*graph_);
    router_ = std::make_unique<PathFinderRouter>(*graph_);
    result_ = router_->route(*placement_, *congestion_);
  }

  std::unique_ptr<fpga::Netlist> nl_;
  std::unique_ptr<fpga::Arch> arch_;
  std::unique_ptr<place::Placement> placement_;
  std::unique_ptr<ChannelGraph> graph_;
  std::unique_ptr<CongestionMap> congestion_;
  std::unique_ptr<PathFinderRouter> router_;
  RouteResult result_;
};

TEST_P(RouterPropertyTest, SuccessImpliesNoOveruse) {
  if (result_.success) {
    EXPECT_EQ(congestion_->stats().overused_segments, 0);
  } else {
    EXPECT_GT(congestion_->stats().overused_segments, 0);
  }
}

TEST_P(RouterPropertyTest, OccupancyEqualsTreeMembership) {
  std::vector<Index> occ(static_cast<std::size_t>(graph_->num_nodes()), 0);
  for (fpga::NetId n = 0; n < nl_->num_nets(); ++n) {
    for (NodeId node : router_->net_tree(n)) occ[static_cast<std::size_t>(node)] += 1;
  }
  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    ASSERT_EQ(congestion_->occupancy(n), occ[static_cast<std::size_t>(n)]);
  }
}

TEST_P(RouterPropertyTest, UtilizationIsOccupancyOverWidth) {
  const double width = static_cast<double>(GetParam().channel_width);
  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    if (!graph_->is_channel(n)) continue;
    ASSERT_DOUBLE_EQ(congestion_->utilization(n),
                     static_cast<double>(congestion_->occupancy(n)) / width);
  }
}

TEST_P(RouterPropertyTest, MultiTerminalNetsAreRouted) {
  for (const fpga::Net& net : nl_->nets()) {
    std::set<NodeId> tiles{graph_->tile_node(placement_->loc(net.driver))};
    for (fpga::BlockId s : net.sinks) tiles.insert(graph_->tile_node(placement_->loc(s)));
    if (tiles.size() > 1) {
      ASSERT_FALSE(router_->net_tree(net.id).empty()) << "net " << net.name;
    }
  }
}

TEST_P(RouterPropertyTest, WirelengthBoundedBelowByDistance) {
  // Each routed net's tree must contain at least as many channel hops as
  // half the Manhattan distance between its two farthest terminals (each
  // tile step crosses one channel and one switchbox).
  for (const fpga::Net& net : nl_->nets()) {
    const auto& tree = router_->net_tree(net.id);
    if (tree.empty()) continue;
    const fpga::GridLoc d = placement_->loc(net.driver);
    Index max_dist = 0;
    for (fpga::BlockId s : net.sinks) {
      const fpga::GridLoc l = placement_->loc(s);
      max_dist = std::max(max_dist, std::abs(l.x - d.x) + std::abs(l.y - d.y));
    }
    EXPECT_GE(static_cast<Index>(tree.size()), max_dist) << "net " << net.name;
  }
}

INSTANTIATE_TEST_SUITE_P(WidthsAndDesigns, RouterPropertyTest,
                         ::testing::Values(RouterCase{2, "diffeq1", 0.04},
                                           RouterCase{6, "diffeq2", 0.04},
                                           RouterCase{12, "SHA", 0.02},
                                           RouterCase{34, "OR1200", 0.02},
                                           RouterCase{34, "ode", 0.015},
                                           RouterCase{60, "raygentop", 0.03}));

}  // namespace
}  // namespace paintplace::route
