#include "route/congestion.h"

#include <gtest/gtest.h>

namespace paintplace::route {
namespace {

using fpga::Arch;

TEST(CongestionMap, StartsEmpty) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  const CongestionMap cm(g);
  EXPECT_EQ(cm.total_utilization(), 0.0);
  const CongestionStats s = cm.stats();
  EXPECT_EQ(s.max_utilization, 0.0);
  EXPECT_EQ(s.overused_segments, 0);
  EXPECT_GT(s.segments, 0);
}

TEST(CongestionMap, UtilizationIsOccupancyOverCapacity) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  CongestionMap cm(g);
  NodeId chan = -1;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_channel(n)) {
      chan = n;
      break;
    }
  }
  ASSERT_GE(chan, 0);
  cm.set_occupancy(chan, 17);
  EXPECT_DOUBLE_EQ(cm.utilization(chan), 17.0 / 34.0);
  EXPECT_EQ(cm.occupancy(chan), 17);
}

TEST(CongestionMap, OverusedSegmentsCounted) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  CongestionMap cm(g);
  Index set = 0;
  for (NodeId n = 0; n < g.num_nodes() && set < 3; ++n) {
    if (g.is_channel(n)) {
      cm.set_occupancy(n, 40);  // over the 34 capacity
      set += 1;
    }
  }
  EXPECT_EQ(cm.stats().overused_segments, 3);
  EXPECT_GT(cm.stats().max_utilization, 1.0);
}

TEST(CongestionMap, NonChannelNodesContributeZeroUtilization) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  CongestionMap cm(g);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.kind(n) == NodeKind::kSwitch && g.is_routable(n)) {
      cm.set_occupancy(n, 10);
      EXPECT_EQ(cm.utilization(n), 0.0);
      break;
    }
  }
  EXPECT_EQ(cm.total_utilization(), 0.0);
}

TEST(CongestionMap, TotalUtilizationSumsChannels) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  CongestionMap cm(g);
  Index count = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_channel(n)) {
      cm.set_occupancy(n, 17);
      count += 1;
    }
  }
  EXPECT_NEAR(cm.total_utilization(), static_cast<double>(count) * 0.5, 1e-9);
  EXPECT_NEAR(cm.stats().mean_utilization, 0.5, 1e-9);
}

TEST(CongestionMap, NegativeOccupancyRejected) {
  const Arch arch(3, 3);
  const ChannelGraph g(arch);
  CongestionMap cm(g);
  EXPECT_THROW(cm.set_occupancy(0, -1), CheckError);
}

}  // namespace
}  // namespace paintplace::route
