#include "route/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fpga/netgen.h"
#include "place/sa_placer.h"

namespace paintplace::route {
namespace {

using fpga::Arch;
using fpga::DesignSpec;
using fpga::Netlist;

struct Routed {
  Netlist nl;
  Arch arch;
  place::Placement placement;
  ChannelGraph graph;
  CongestionMap congestion;
  PathFinderRouter router;
  RouteResult result;

  explicit Routed(Index luts, Index nets, Index channel_width = 34, std::uint64_t seed = 1)
      : nl(fpga::generate_packed(make_spec(luts, nets), fpga::NetgenParams{}, seed)),
        arch(make_arch(nl, channel_width)),
        placement(make_placement(arch, nl, seed)),
        graph(arch),
        congestion(graph),
        router(graph) {
    result = router.route(placement, congestion);
  }

  static DesignSpec make_spec(Index luts, Index nets) {
    DesignSpec s;
    s.name = "route_toy";
    s.num_luts = luts;
    s.num_ffs = luts / 4;
    s.num_nets = nets;
    s.num_inputs = 5;
    s.num_outputs = 4;
    return s;
  }
  static Arch make_arch(const Netlist& nl, Index channel_width) {
    fpga::ArchParams params;
    params.channel_width = channel_width;
    return Arch::auto_sized({nl.stats().num_clbs,
                             nl.stats().num_inputs + nl.stats().num_outputs,
                             nl.stats().num_mems, nl.stats().num_mults},
                            params);
  }
  static place::Placement make_placement(const Arch& arch, const Netlist& nl,
                                         std::uint64_t seed) {
    place::PlacerOptions opt;
    opt.seed = seed;
    place::SaPlacer placer(arch, nl, opt);
    return placer.place();
  }
};

TEST(Router, SucceedsAtDefaultChannelWidth) {
  Routed r(40, 100);
  EXPECT_TRUE(r.result.success);
  EXPECT_EQ(r.congestion.stats().overused_segments, 0);
}

TEST(Router, OccupancyMatchesTreeSum) {
  Routed r(40, 100);
  std::vector<Index> occ(static_cast<std::size_t>(r.graph.num_nodes()), 0);
  for (fpga::NetId n = 0; n < r.nl.num_nets(); ++n) {
    for (NodeId node : r.router.net_tree(n)) occ[static_cast<std::size_t>(node)] += 1;
  }
  for (NodeId n = 0; n < r.graph.num_nodes(); ++n) {
    EXPECT_EQ(r.congestion.occupancy(n), occ[static_cast<std::size_t>(n)]) << "node " << n;
  }
}

TEST(Router, TreesOnlyUseRoutableNodes) {
  Routed r(30, 80);
  for (fpga::NetId n = 0; n < r.nl.num_nets(); ++n) {
    for (NodeId node : r.router.net_tree(n)) {
      EXPECT_TRUE(r.graph.is_routable(node));
    }
  }
}

TEST(Router, TreesHaveNoDuplicateNodes) {
  Routed r(30, 80);
  for (fpga::NetId n = 0; n < r.nl.num_nets(); ++n) {
    const auto& tree = r.router.net_tree(n);
    const std::set<NodeId> unique(tree.begin(), tree.end());
    EXPECT_EQ(unique.size(), tree.size()) << "net " << n;
  }
}

TEST(Router, EveryTreeTouchesAllItsTerminalTiles) {
  Routed r(30, 80);
  for (const fpga::Net& net : r.nl.nets()) {
    const auto& tree = r.router.net_tree(net.id);
    // Terminal tiles, deduplicated; single-tile nets need no tree.
    std::set<NodeId> tiles;
    tiles.insert(r.graph.tile_node(r.placement.loc(net.driver)));
    for (fpga::BlockId s : net.sinks) tiles.insert(r.graph.tile_node(r.placement.loc(s)));
    if (tiles.size() == 1) {
      EXPECT_TRUE(tree.empty());
      continue;
    }
    ASSERT_FALSE(tree.empty()) << "net " << net.name;
    const std::set<NodeId> tree_set(tree.begin(), tree.end());
    for (NodeId tile : tiles) {
      const Index tx = (r.graph.lx_of(tile) - 1) / 2;
      const Index ty = (r.graph.ly_of(tile) - 1) / 2;
      bool adjacent = false;
      for (NodeId pin : r.graph.tile_pins(fpga::GridLoc{tx, ty, 0})) {
        if (tree_set.count(pin) > 0) {
          adjacent = true;
          break;
        }
      }
      EXPECT_TRUE(adjacent) << "net " << net.name << " misses tile (" << tx << "," << ty << ")";
    }
  }
}

TEST(Router, TreeIsConnected) {
  Routed r(25, 70);
  for (fpga::NetId n = 0; n < r.nl.num_nets(); ++n) {
    const auto& tree = r.router.net_tree(n);
    if (tree.size() <= 1) continue;
    const std::set<NodeId> tree_set(tree.begin(), tree.end());
    // BFS within tree nodes.
    std::set<NodeId> seen{tree[0]};
    std::vector<NodeId> stack{tree[0]};
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      NodeId nbr[4];
      const int deg = r.graph.neighbors(cur, nbr);
      for (int i = 0; i < deg; ++i) {
        if (tree_set.count(nbr[i]) > 0 && seen.insert(nbr[i]).second) {
          stack.push_back(nbr[i]);
        }
      }
    }
    EXPECT_EQ(seen.size(), tree_set.size()) << "net " << n << " tree disconnected";
  }
}

TEST(Router, TightChannelsCauseNegotiationRounds) {
  Routed loose(40, 110, /*channel_width=*/34, /*seed=*/2);
  Routed tight(40, 110, /*channel_width=*/2, /*seed=*/2);
  EXPECT_GE(tight.result.iterations, loose.result.iterations);
  // With width 2 the fabric is genuinely scarce; utilization must be higher.
  EXPECT_GT(tight.congestion.stats().mean_utilization,
            loose.congestion.stats().mean_utilization);
}

TEST(Router, WirelengthPositiveAndConsistent) {
  Routed r(30, 90);
  double total = 0.0;
  for (fpga::NetId n = 0; n < r.nl.num_nets(); ++n) {
    total += static_cast<double>(r.router.net_tree(n).size());
  }
  EXPECT_DOUBLE_EQ(r.result.total_wirelength, total);
  EXPECT_GT(total, 0.0);
}

TEST(Router, RecordsWallTime) {
  Routed r(20, 60);
  EXPECT_GT(r.result.wall_seconds, 0.0);
}

TEST(Router, BetterPlacementRoutesWithLessWirelength) {
  // Compare a placed solution with a deliberately random one.
  Routed placed(40, 100, 34, 5);
  // Random placement: fresh placement without annealing.
  place::Placement random_p(placed.arch, placed.nl);
  Rng rng(99);
  random_p.random_init(rng);
  ChannelGraph graph(placed.arch);
  CongestionMap cm(graph);
  PathFinderRouter router(graph);
  const RouteResult rr = router.route(random_p, cm);
  EXPECT_LT(placed.result.total_wirelength, rr.total_wirelength);
  EXPECT_LT(placed.congestion.total_utilization(), cm.total_utilization());
}

TEST(Router, DeterministicForSamePlacement) {
  Routed a(25, 70, 34, 7);
  ChannelGraph graph(a.arch);
  CongestionMap cm(graph);
  PathFinderRouter router(graph);
  router.route(a.placement, cm);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    EXPECT_EQ(cm.occupancy(n), a.congestion.occupancy(n));
  }
}

}  // namespace
}  // namespace paintplace::route
