#include "common/rng.h"

#include <gtest/gtest.h>

namespace paintplace {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) differing += 1;
  }
  EXPECT_GT(differing, 45);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Index v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), CheckError);
}

TEST(Rng, UniformRealInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, GeometricIntBounds) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const Index v = rng.geometric_int(1, 6, 0.5);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
  }
}

TEST(Rng, GeometricIntDecays) {
  Rng rng(19);
  Index low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    const Index v = rng.geometric_int(1, 10, 0.4);
    if (v <= 2) low += 1;
    if (v >= 6) high += 1;
  }
  EXPECT_GT(low, high * 4);  // strong skew towards small fanouts
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  // The child stream should not replay the parent's output.
  Rng b(23);
  b.fork();
  EXPECT_EQ(child.uniform_int(0, 1 << 30), Rng(23).fork().uniform_int(0, 1 << 30))
      << "fork must be deterministic";
  (void)b;
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace paintplace
