#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace paintplace {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const Index n = 10007;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  parallel_for(n, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i) hits[static_cast<std::size_t>(i)] += 1;
  });
  for (Index i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Parallel, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(0, [&](Index, Index) { calls += 1; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](Index b, Index e) {
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1);
    calls += 1;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, ComputesCorrectSum) {
  const Index n = 100000;
  std::atomic<long long> total{0};
  parallel_for(n, [&](Index b, Index e) {
    long long local = 0;
    for (Index i = b; i < e; ++i) local += i;
    total += local;
  });
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(1000,
                   [](Index b, Index) {
                     if (b == 0) throw std::runtime_error("worker failure");
                   }),
      std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  parallel_for(100, [&](Index b, Index e) { count += static_cast<int>(e - b); });
  EXPECT_EQ(count.load(), 100);
}

TEST(Parallel, NestedCallsRunSerially) {
  std::atomic<int> inner_total{0};
  parallel_for(4, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i) {
      // Nested call must not deadlock; it runs inline.
      parallel_for(10, [&](Index ib, Index ie) { inner_total += static_cast<int>(ie - ib); });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(Parallel, ForEachVisitsAll) {
  const Index n = 5000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  parallel_for_each(n, [&](Index i) { hits[static_cast<std::size_t>(i)] += 1; });
  for (Index i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Parallel, WorkerCountIsPositive) { EXPECT_GE(parallel_workers(), 1); }

}  // namespace
}  // namespace paintplace
