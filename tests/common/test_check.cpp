#include "common/check.h"

#include <gtest/gtest.h>

namespace paintplace {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(PP_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PP_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(PP_CHECK(false), CheckError);
  EXPECT_THROW(PP_CHECK_MSG(false, "context"), CheckError);
}

TEST(Check, MessageContainsConditionAndContext) {
  try {
    PP_CHECK_MSG(2 > 3, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("value was 42"), std::string::npos);
  }
}

TEST(Narrow, PreservingConversionsSucceed) {
  EXPECT_EQ(narrow<int>(Index{42}), 42);
  EXPECT_EQ(narrow<std::uint8_t>(255), 255);
  EXPECT_EQ(narrow<Index>(7), 7);
}

TEST(Narrow, LossyConversionThrows) {
  EXPECT_THROW(narrow<std::uint8_t>(256), CheckError);
  EXPECT_THROW(narrow<std::uint32_t>(-1), CheckError);
  EXPECT_THROW(narrow<std::int8_t>(1000), CheckError);
}

}  // namespace
}  // namespace paintplace
