#include "train/data_loader.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace paintplace::train {
namespace {

using nn::Shape;
using nn::Tensor;

// Synthetic samples whose contents encode their index, so batch assembly can
// be checked element-for-element without running the FPGA pipeline.
std::vector<data::Sample> make_samples(Index n, Index c_in = 2, Index c_out = 3, Index w = 4) {
  std::vector<data::Sample> out(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    data::Sample& s = out[static_cast<std::size_t>(i)];
    s.input = Tensor(Shape{1, c_in, w, w});
    s.target = Tensor(Shape{1, c_out, w, w});
    s.input.fill(static_cast<float>(i));
    s.target.fill(static_cast<float>(-i));
    s.meta.design = "synthetic";
  }
  return out;
}

std::vector<const data::Sample*> ptrs(const std::vector<data::Sample>& samples) {
  std::vector<const data::Sample*> out;
  for (const data::Sample& s : samples) out.push_back(&s);
  return out;
}

TEST(DataLoader, BatchesCoverEverySampleOnce) {
  const auto samples = make_samples(10);
  DataLoaderConfig cfg;
  cfg.batch_size = 4;
  DataLoader loader(ptrs(samples), cfg);
  EXPECT_EQ(loader.batches_per_epoch(), 3);

  loader.start_epoch(0);
  std::multiset<float> seen;
  Batch batch;
  Index batches = 0, total = 0;
  while (loader.next(batch)) {
    batches += 1;
    total += batch.size();
    for (Index i = 0; i < batch.size(); ++i) {
      // Every element of sample i's plane carries its id.
      seen.insert(batch.inputs[i * batch.inputs.numel() / batch.size()]);
      EXPECT_EQ(batch.samples[static_cast<std::size_t>(i)]->input[0],
                batch.inputs[i * batch.inputs.numel() / batch.size()]);
    }
  }
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(total, 10);
  EXPECT_EQ(seen.size(), 10u);  // no duplicates, nothing dropped
}

TEST(DataLoader, AssembledTensorsMatchSamples) {
  const auto samples = make_samples(4);
  DataLoaderConfig cfg;
  cfg.batch_size = 2;
  cfg.shuffle = false;
  DataLoader loader(ptrs(samples), cfg);
  loader.start_epoch(0);
  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  EXPECT_EQ(batch.inputs.shape(), (Shape{2, 2, 4, 4}));
  EXPECT_EQ(batch.targets.shape(), (Shape{2, 3, 4, 4}));
  // Unshuffled: batch row n is sample n, bit for bit.
  for (Index n = 0; n < 2; ++n) {
    for (Index i = 0; i < 2 * 4 * 4; ++i) {
      EXPECT_EQ(batch.inputs[n * 2 * 4 * 4 + i], static_cast<float>(n));
    }
    for (Index i = 0; i < 3 * 4 * 4; ++i) {
      EXPECT_EQ(batch.targets[n * 3 * 4 * 4 + i], static_cast<float>(-n));
    }
  }
}

TEST(DataLoader, DropPartialSkipsShortTail) {
  const auto samples = make_samples(10);
  DataLoaderConfig cfg;
  cfg.batch_size = 4;
  cfg.keep_partial = false;
  DataLoader loader(ptrs(samples), cfg);
  EXPECT_EQ(loader.batches_per_epoch(), 2);
  loader.start_epoch(0);
  Batch batch;
  Index total = 0;
  while (loader.next(batch)) {
    EXPECT_EQ(batch.size(), 4);
    total += batch.size();
  }
  EXPECT_EQ(total, 8);
}

TEST(DataLoader, ShuffleIsDeterministicPerEpochAndDiffersAcrossEpochs) {
  const auto samples = make_samples(16, 1, 1, 2);
  DataLoaderConfig cfg;
  cfg.batch_size = 16;
  cfg.seed = 5;
  DataLoader a(ptrs(samples), cfg), b(ptrs(samples), cfg);

  auto epoch_order = [](DataLoader& loader, Index epoch) {
    loader.start_epoch(epoch);
    Batch batch;
    EXPECT_TRUE(loader.next(batch));
    std::vector<float> ids;
    for (Index i = 0; i < batch.size(); ++i) ids.push_back(batch.inputs[i * 4]);
    return ids;
  };

  const auto a0 = epoch_order(a, 0);
  const auto b0 = epoch_order(b, 0);
  EXPECT_EQ(a0, b0) << "same (seed, epoch) must give the same order";
  const auto a1 = epoch_order(a, 1);
  EXPECT_NE(a0, a1) << "different epochs should reshuffle";
  // Resume semantics: a fresh loader at epoch 1 replays epoch 1's order.
  const auto b1 = epoch_order(b, 1);
  EXPECT_EQ(a1, b1);
}

TEST(DataLoader, ExhaustedUntilStartEpoch) {
  const auto samples = make_samples(4);
  DataLoader loader(ptrs(samples), DataLoaderConfig{});
  Batch batch;
  EXPECT_FALSE(loader.next(batch));  // no epoch started yet
  loader.start_epoch(0);
  EXPECT_TRUE(loader.next(batch));
}

TEST(DataLoader, RejectsEmptyAndMismatchedSamples) {
  EXPECT_THROW(DataLoader({}, DataLoaderConfig{}), CheckError);

  auto samples = make_samples(3);
  samples[2].input = Tensor(Shape{1, 2, 8, 8});  // wrong spatial extent
  DataLoaderConfig cfg;
  cfg.batch_size = 3;
  cfg.shuffle = false;
  DataLoader loader(ptrs(samples), cfg);
  loader.start_epoch(0);
  Batch batch;
  EXPECT_THROW(loader.next(batch), CheckError);
}

}  // namespace
}  // namespace paintplace::train
