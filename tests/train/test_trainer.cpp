#include "train/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "nn/serialize.h"
#include "tests/core/test_fixtures.h"

namespace paintplace::train {
namespace {

namespace fs = std::filesystem;

std::vector<char> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

struct TrainWorld {
  core::testfix::TinyWorld world;
  std::vector<const data::Sample*> train_set, val_set;

  TrainWorld() : world("trainer", /*num_placements=*/12, /*image_width=*/16, /*seed=*/3) {
    const auto all = world.sample_ptrs();
    train_set.assign(all.begin(), all.begin() + 8);
    val_set.assign(all.begin() + 8, all.end());
  }
};

TrainerConfig quick_config(Index epochs, const std::string& dir = {}) {
  TrainerConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 4;
  cfg.seed = 11;
  cfg.checkpoint_dir = dir;
  return cfg;
}

TEST(Trainer, RunsEpochsAndReportsStats) {
  TrainWorld tw;
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(2));
  const auto history = trainer.run(tw.train_set, tw.val_set);
  ASSERT_EQ(history.size(), 2u);
  for (const EpochStats& e : history) {
    EXPECT_EQ(e.steps, 2);  // 8 samples / batch 4
    EXPECT_TRUE(std::isfinite(e.train.d_loss));
    EXPECT_TRUE(std::isfinite(e.train.g_l1));
    EXPECT_TRUE(e.has_validation);
    EXPECT_GT(e.val_l1, 0.0);
    EXPECT_GE(e.val_pixel_accuracy, 0.0);
    EXPECT_LE(e.val_pixel_accuracy, 1.0);
    EXPECT_GE(e.epoch_seconds, 0.0);
  }
  EXPECT_TRUE(history.front().is_best);  // first epoch always sets the mark
  EXPECT_EQ(trainer.total_steps(), 4);
}

TEST(Trainer, TrainingWithoutValidationSkipsMetrics) {
  TrainWorld tw;
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(1));
  const auto history = trainer.run(tw.train_set, {});
  ASSERT_EQ(history.size(), 1u);
  EXPECT_FALSE(history[0].has_validation);
  EXPECT_FALSE(history[0].is_best);
}

TEST(Trainer, WritesCheckpointsAndResumes) {
  TrainWorld tw;
  const std::string dir = ::testing::TempDir() + "/pp_trainer_ckpt";
  fs::remove_all(dir);

  {
    core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
    Trainer trainer(forecaster, quick_config(2, dir));
    trainer.run(tw.train_set, tw.val_set);
  }
  EXPECT_TRUE(fs::exists(fs::path(dir) / Trainer::kLastCheckpoint));
  EXPECT_TRUE(fs::exists(fs::path(dir) / Trainer::kBestCheckpoint));
  EXPECT_TRUE(fs::exists(fs::path(dir) / Trainer::kStateCheckpoint));

  // The per-epoch metrics JSON lands next to the checkpoints, covering the
  // whole run: both epochs, losses, and the per-phase timing breakdown.
  {
    const auto bytes = file_bytes(fs::path(dir) / Trainer::kMetricsJson);
    const std::string json(bytes.begin(), bytes.end());
    EXPECT_NE(json.find("\"total_steps\": 4"), std::string::npos) << json;
    EXPECT_NE(json.find("\"epoch\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"epoch\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"d_loss\":"), std::string::npos);
    EXPECT_NE(json.find("\"g_l1\":"), std::string::npos);
    EXPECT_NE(json.find("\"g_forward_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"val_l1\":"), std::string::npos);
  }

  // Resuming with the same epoch budget: nothing left to do.
  {
    core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
    TrainerConfig cfg = quick_config(2, dir);
    cfg.resume = true;
    Trainer trainer(forecaster, cfg);
    EXPECT_EQ(trainer.start_epoch(), 2);
    EXPECT_GT(trainer.best_val_l1(), 0.0);
    EXPECT_TRUE(trainer.run(tw.train_set, tw.val_set).empty());
  }

  // Raising the budget continues from where the run stopped.
  {
    core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
    TrainerConfig cfg = quick_config(3, dir);
    cfg.resume = true;
    Trainer trainer(forecaster, cfg);
    const auto history = trainer.run(tw.train_set, tw.val_set);
    ASSERT_EQ(history.size(), 1u);
    EXPECT_EQ(history[0].epoch, 2);
  }
  fs::remove_all(dir);
}

TEST(Trainer, ResumedRunIsBitwiseIdenticalToUninterrupted) {
  // The trainer_state checkpoint carries both Adam optimizers' first/second
  // moments and step count, so a resumed run replays the exact optimizer
  // trajectory of an uninterrupted one. Dropout is disabled: its noise
  // stream is a persistent per-process Rng a restart cannot replay.
  TrainWorld tw;
  core::Pix2PixConfig mcfg = core::testfix::tiny_model_config();
  mcfg.generator.dropout = false;

  const std::string dir_a = ::testing::TempDir() + "/pp_trainer_bitwise_a";
  const std::string dir_b = ::testing::TempDir() + "/pp_trainer_bitwise_b";
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);

  {
    core::CongestionForecaster forecaster(mcfg);
    Trainer trainer(forecaster, quick_config(3, dir_a));
    trainer.run(tw.train_set, tw.val_set);
  }
  {
    core::CongestionForecaster forecaster(mcfg);
    Trainer trainer(forecaster, quick_config(2, dir_b));
    trainer.run(tw.train_set, tw.val_set);
  }
  {
    core::CongestionForecaster forecaster(mcfg);
    TrainerConfig cfg = quick_config(3, dir_b);
    cfg.resume = true;
    Trainer trainer(forecaster, cfg);
    ASSERT_EQ(trainer.start_epoch(), 2);
    trainer.run(tw.train_set, tw.val_set);
  }

  EXPECT_EQ(file_bytes(fs::path(dir_a) / Trainer::kLastCheckpoint),
            file_bytes(fs::path(dir_b) / Trainer::kLastCheckpoint));
  EXPECT_EQ(file_bytes(fs::path(dir_a) / Trainer::kStateCheckpoint),
            file_bytes(fs::path(dir_b) / Trainer::kStateCheckpoint));
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

TEST(Trainer, ResumeToleratesPreMomentStateCheckpoints) {
  // Checkpoints written before optimizer moments were persisted still resume
  // (with reset moments) instead of failing.
  TrainWorld tw;
  const std::string dir = ::testing::TempDir() + "/pp_trainer_old_state";
  fs::remove_all(dir);
  {
    core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
    Trainer trainer(forecaster, quick_config(1, dir));
    trainer.run(tw.train_set, tw.val_set);
  }
  // Strip the optimizer entries, leaving only the loop-state tensors.
  const std::string state_path = (fs::path(dir) / Trainer::kStateCheckpoint).string();
  nn::TensorMap state = nn::load_tensors_file(state_path);
  for (auto it = state.begin(); it != state.end();) {
    if (it->first.rfind("opt_g/", 0) == 0 || it->first.rfind("opt_d/", 0) == 0) {
      it = state.erase(it);
    } else {
      ++it;
    }
  }
  nn::save_tensors_file(state, state_path);

  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  TrainerConfig cfg = quick_config(2, dir);
  cfg.resume = true;
  Trainer trainer(forecaster, cfg);
  EXPECT_EQ(trainer.start_epoch(), 1);
  EXPECT_EQ(trainer.run(tw.train_set, tw.val_set).size(), 1u);
  fs::remove_all(dir);
}

TEST(Trainer, BestCheckpointTracksLowestValL1) {
  TrainWorld tw;
  const std::string dir = ::testing::TempDir() + "/pp_trainer_best";
  fs::remove_all(dir);
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(3, dir));
  const auto history = trainer.run(tw.train_set, tw.val_set);
  double best = history[0].val_l1;
  for (const EpochStats& e : history) {
    if (e.is_best) {
      EXPECT_LE(e.val_l1, best);
      best = e.val_l1;
    } else {
      EXPECT_GE(e.val_l1, best);
    }
  }
  EXPECT_DOUBLE_EQ(trainer.best_val_l1(), best);
  fs::remove_all(dir);
}

TEST(Trainer, CheckpointServesThroughForecaster) {
  // The Trainer's checkpoints are self-describing Pix2Pix files: a fresh
  // forecaster reconstructed from one must predict at the trained size.
  TrainWorld tw;
  const std::string dir = ::testing::TempDir() + "/pp_trainer_serve";
  fs::remove_all(dir);
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(1, dir));
  trainer.run(tw.train_set, tw.val_set);

  const std::string best = (fs::path(dir) / Trainer::kBestCheckpoint).string();
  core::CongestionForecaster restored(core::Pix2Pix::peek_config(best));
  restored.load(best);
  const nn::Tensor pred = restored.predict(tw.val_set.front()->input);
  EXPECT_EQ(pred.shape(), (nn::Shape{1, 3, 16, 16}));
  EXPECT_GE(pred.min(), 0.0f);
  EXPECT_LE(pred.max(), 1.0f);
  fs::remove_all(dir);
}

TEST(Trainer, ValidateComputesMetricsWithoutTraining) {
  TrainWorld tw;
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(1));
  const EpochStats stats = trainer.validate(tw.val_set);
  EXPECT_TRUE(stats.has_validation);
  EXPECT_GT(stats.val_l1, 0.0);
  EXPECT_GE(stats.val_topk, 0.0);
  EXPECT_LE(stats.val_topk, 1.0);
  EXPECT_EQ(trainer.total_steps(), 0);
}

TEST(Trainer, RejectsBadConfig) {
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  TrainerConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(Trainer(forecaster, cfg), CheckError);
  cfg.epochs = 1;
  cfg.batch_size = 0;
  EXPECT_THROW(Trainer(forecaster, cfg), CheckError);
  cfg.batch_size = 1;
  cfg.resume = true;  // resume without a checkpoint_dir
  EXPECT_THROW(Trainer(forecaster, cfg), CheckError);
}

}  // namespace
}  // namespace paintplace::train
