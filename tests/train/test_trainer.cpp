#include "train/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "tests/core/test_fixtures.h"

namespace paintplace::train {
namespace {

namespace fs = std::filesystem;

struct TrainWorld {
  core::testfix::TinyWorld world;
  std::vector<const data::Sample*> train_set, val_set;

  TrainWorld() : world("trainer", /*num_placements=*/12, /*image_width=*/16, /*seed=*/3) {
    const auto all = world.sample_ptrs();
    train_set.assign(all.begin(), all.begin() + 8);
    val_set.assign(all.begin() + 8, all.end());
  }
};

TrainerConfig quick_config(Index epochs, const std::string& dir = {}) {
  TrainerConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 4;
  cfg.seed = 11;
  cfg.checkpoint_dir = dir;
  return cfg;
}

TEST(Trainer, RunsEpochsAndReportsStats) {
  TrainWorld tw;
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(2));
  const auto history = trainer.run(tw.train_set, tw.val_set);
  ASSERT_EQ(history.size(), 2u);
  for (const EpochStats& e : history) {
    EXPECT_EQ(e.steps, 2);  // 8 samples / batch 4
    EXPECT_TRUE(std::isfinite(e.train.d_loss));
    EXPECT_TRUE(std::isfinite(e.train.g_l1));
    EXPECT_TRUE(e.has_validation);
    EXPECT_GT(e.val_l1, 0.0);
    EXPECT_GE(e.val_pixel_accuracy, 0.0);
    EXPECT_LE(e.val_pixel_accuracy, 1.0);
    EXPECT_GE(e.epoch_seconds, 0.0);
  }
  EXPECT_TRUE(history.front().is_best);  // first epoch always sets the mark
  EXPECT_EQ(trainer.total_steps(), 4);
}

TEST(Trainer, TrainingWithoutValidationSkipsMetrics) {
  TrainWorld tw;
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(1));
  const auto history = trainer.run(tw.train_set, {});
  ASSERT_EQ(history.size(), 1u);
  EXPECT_FALSE(history[0].has_validation);
  EXPECT_FALSE(history[0].is_best);
}

TEST(Trainer, WritesCheckpointsAndResumes) {
  TrainWorld tw;
  const std::string dir = ::testing::TempDir() + "/pp_trainer_ckpt";
  fs::remove_all(dir);

  {
    core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
    Trainer trainer(forecaster, quick_config(2, dir));
    trainer.run(tw.train_set, tw.val_set);
  }
  EXPECT_TRUE(fs::exists(fs::path(dir) / Trainer::kLastCheckpoint));
  EXPECT_TRUE(fs::exists(fs::path(dir) / Trainer::kBestCheckpoint));
  EXPECT_TRUE(fs::exists(fs::path(dir) / Trainer::kStateCheckpoint));

  // Resuming with the same epoch budget: nothing left to do.
  {
    core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
    TrainerConfig cfg = quick_config(2, dir);
    cfg.resume = true;
    Trainer trainer(forecaster, cfg);
    EXPECT_EQ(trainer.start_epoch(), 2);
    EXPECT_GT(trainer.best_val_l1(), 0.0);
    EXPECT_TRUE(trainer.run(tw.train_set, tw.val_set).empty());
  }

  // Raising the budget continues from where the run stopped.
  {
    core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
    TrainerConfig cfg = quick_config(3, dir);
    cfg.resume = true;
    Trainer trainer(forecaster, cfg);
    const auto history = trainer.run(tw.train_set, tw.val_set);
    ASSERT_EQ(history.size(), 1u);
    EXPECT_EQ(history[0].epoch, 2);
  }
  fs::remove_all(dir);
}

TEST(Trainer, BestCheckpointTracksLowestValL1) {
  TrainWorld tw;
  const std::string dir = ::testing::TempDir() + "/pp_trainer_best";
  fs::remove_all(dir);
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(3, dir));
  const auto history = trainer.run(tw.train_set, tw.val_set);
  double best = history[0].val_l1;
  for (const EpochStats& e : history) {
    if (e.is_best) {
      EXPECT_LE(e.val_l1, best);
      best = e.val_l1;
    } else {
      EXPECT_GE(e.val_l1, best);
    }
  }
  EXPECT_DOUBLE_EQ(trainer.best_val_l1(), best);
  fs::remove_all(dir);
}

TEST(Trainer, CheckpointServesThroughForecaster) {
  // The Trainer's checkpoints are self-describing Pix2Pix files: a fresh
  // forecaster reconstructed from one must predict at the trained size.
  TrainWorld tw;
  const std::string dir = ::testing::TempDir() + "/pp_trainer_serve";
  fs::remove_all(dir);
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(1, dir));
  trainer.run(tw.train_set, tw.val_set);

  const std::string best = (fs::path(dir) / Trainer::kBestCheckpoint).string();
  core::CongestionForecaster restored(core::Pix2Pix::peek_config(best));
  restored.load(best);
  const nn::Tensor pred = restored.predict(tw.val_set.front()->input);
  EXPECT_EQ(pred.shape(), (nn::Shape{1, 3, 16, 16}));
  EXPECT_GE(pred.min(), 0.0f);
  EXPECT_LE(pred.max(), 1.0f);
  fs::remove_all(dir);
}

TEST(Trainer, ValidateComputesMetricsWithoutTraining) {
  TrainWorld tw;
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  Trainer trainer(forecaster, quick_config(1));
  const EpochStats stats = trainer.validate(tw.val_set);
  EXPECT_TRUE(stats.has_validation);
  EXPECT_GT(stats.val_l1, 0.0);
  EXPECT_GE(stats.val_topk, 0.0);
  EXPECT_LE(stats.val_topk, 1.0);
  EXPECT_EQ(trainer.total_steps(), 0);
}

TEST(Trainer, RejectsBadConfig) {
  core::CongestionForecaster forecaster(core::testfix::tiny_model_config());
  TrainerConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(Trainer(forecaster, cfg), CheckError);
  cfg.epochs = 1;
  cfg.batch_size = 0;
  EXPECT_THROW(Trainer(forecaster, cfg), CheckError);
  cfg.batch_size = 1;
  cfg.resume = true;  // resume without a checkpoint_dir
  EXPECT_THROW(Trainer(forecaster, cfg), CheckError);
}

}  // namespace
}  // namespace paintplace::train
