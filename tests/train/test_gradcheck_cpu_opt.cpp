// Training-path gradient checks pinned to the cpu_opt backend.
//
// The nn-layer gradchecks run under the session default backend; these pin
// cpu_opt explicitly so its packed/blocked kernels — including the
// sgemm_bt-specialised B^T packer the weight-gradient GEMM uses — are the
// code under test, at odd shapes that leave partial 6-row / 16-column
// micro-tiles and partial K panels. Also re-proves the batched-vs-
// accumulated dW bit-exactness guarantee on cpu_opt specifically: the
// gradient-accumulation trainer relies on it, and the guarantee is about
// the backend's reduction order, not the layer's.
#include <gtest/gtest.h>

#include <algorithm>

#include "backend/backend.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/gradcheck.h"

namespace paintplace::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(GradCheckCpuOpt, Conv2dOddShapes) {
  backend::ScopedBackend pin("cpu_opt");
  // Cout=7 leaves a 1-row micro-tile remainder; Cin*k*k = 5*9 = 45 leaves a
  // partial K panel; 9x7 input is odd and non-square.
  Rng rng(41);
  Conv2d conv("c", 5, 7, 3, 2, 1, rng);
  const auto result = grad_check(conv, random_tensor(Shape{1, 5, 9, 7}, 42));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(GradCheckCpuOpt, Conv2dBatchedOddShapes) {
  backend::ScopedBackend pin("cpu_opt");
  Rng rng(43);
  Conv2d conv("c", 3, 5, 3, 1, 1, rng);
  const auto result = grad_check(conv, random_tensor(Shape{3, 3, 5, 7}, 44));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(GradCheckCpuOpt, ConvTranspose2dOddShapes) {
  backend::ScopedBackend pin("cpu_opt");
  Rng rng(45);
  ConvTranspose2d deconv("d", 5, 3, 4, 2, 1, rng);
  const auto result = grad_check(deconv, random_tensor(Shape{1, 5, 5, 7}, 46));
  EXPECT_LT(result.max_input_grad_error, 2e-2f);
  EXPECT_LT(result.max_param_grad_error, 2e-2f);
}

TEST(GradCheckCpuOpt, BatchedDwBitExactVsAccumulatedPerSample) {
  backend::ScopedBackend pin("cpu_opt");
  // Odd everything: Cout=5 rows, col rows 3*3*3=27, col cols 3*5=15 per
  // sample — every sgemm_bt in the dW reduction runs with partial tiles.
  const Index B = 3;
  Rng rng_a(51), rng_b(51);
  Conv2d batched("c", 3, 5, 3, 2, 1, rng_a);
  Conv2d sequential("c", 3, 5, 3, 2, 1, rng_b);
  const Tensor x = random_tensor(Shape{B, 3, 7, 9}, 52);

  const Tensor out_b = batched.forward(x);
  const Tensor go = random_tensor(out_b.shape(), 53);
  batched.backward(go);

  const Index x_floats = x.numel() / B;
  const Index go_floats = go.numel() / B;
  const Shape sample_shape{1, x.shape()[1], x.shape()[2], x.shape()[3]};
  const Shape go_shape{1, go.shape()[1], go.shape()[2], go.shape()[3]};
  for (Index n = 0; n < B; ++n) {
    Tensor xn(sample_shape);
    std::copy_n(x.data() + n * x_floats, x_floats, xn.data());
    Tensor gon(go_shape);
    std::copy_n(go.data() + n * go_floats, go_floats, gon.data());
    sequential.forward(xn);
    sequential.backward(gon);
  }

  const auto params_b = batched.parameters();
  const auto params_s = sequential.parameters();
  ASSERT_EQ(params_b.size(), params_s.size());
  for (std::size_t p = 0; p < params_b.size(); ++p) {
    EXPECT_EQ(params_b[p]->grad.max_abs_diff(params_s[p]->grad), 0.0f)
        << params_b[p]->name << " gradient not bit-exact on cpu_opt";
  }
}

}  // namespace
}  // namespace paintplace::nn
