#include "img/image.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace paintplace::img {
namespace {

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  img.at(2, 1, 0) = 0.5f;
  EXPECT_FLOAT_EQ(img.at(2, 1, 0), 0.5f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0f);
}

TEST(Image, BoundsChecked) {
  Image img(2, 2, 1);
  EXPECT_THROW(img.at(2, 0, 0), CheckError);
  EXPECT_THROW(img.at(0, -1, 0), CheckError);
  EXPECT_THROW(img.at(0, 0, 1), CheckError);
}

TEST(Image, OnlyOneOrThreeChannels) {
  EXPECT_THROW(Image(2, 2, 2), CheckError);
  EXPECT_THROW(Image(2, 2, 4), CheckError);
}

TEST(Image, TensorRoundTrip) {
  Image img(3, 2, 3);
  float v = 0.0f;
  for (Index y = 0; y < 2; ++y) {
    for (Index x = 0; x < 3; ++x) {
      for (Index c = 0; c < 3; ++c) img.at(x, y, c) = v += 0.01f;
    }
  }
  const nn::Tensor t = img.to_tensor();
  EXPECT_EQ(t.shape(), (nn::Shape{1, 3, 2, 3}));
  EXPECT_FLOAT_EQ(t.at(0, 1, 1, 2), img.at(2, 1, 1));
  const Image back = Image::from_tensor(t);
  for (Index y = 0; y < 2; ++y) {
    for (Index x = 0; x < 3; ++x) {
      for (Index c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(back.at(x, y, c), img.at(x, y, c));
    }
  }
}

TEST(Image, PpmRoundTrip8Bit) {
  Image img(5, 4, 3);
  for (Index y = 0; y < 4; ++y) {
    for (Index x = 0; x < 5; ++x) {
      img.at(x, y, 0) = static_cast<float>(x) / 4.0f;
      img.at(x, y, 1) = static_cast<float>(y) / 3.0f;
      img.at(x, y, 2) = 1.0f;
    }
  }
  const std::string path = ::testing::TempDir() + "/pp_img_test.ppm";
  write_image(img, path);
  const Image loaded = read_image(path);
  ASSERT_EQ(loaded.width(), 5);
  ASSERT_EQ(loaded.height(), 4);
  ASSERT_EQ(loaded.channels(), 3);
  for (Index y = 0; y < 4; ++y) {
    for (Index x = 0; x < 5; ++x) {
      for (Index c = 0; c < 3; ++c) {
        EXPECT_NEAR(loaded.at(x, y, c), img.at(x, y, c), 1.0f / 255.0f);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Image, PgmRoundTripGray) {
  Image img(3, 3, 1);
  img.at(1, 1, 0) = 0.5f;
  const std::string path = ::testing::TempDir() + "/pp_img_test.pgm";
  write_image(img, path);
  const Image loaded = read_image(path);
  EXPECT_EQ(loaded.channels(), 1);
  EXPECT_NEAR(loaded.at(1, 1, 0), 0.5f, 1.0f / 255.0f);
  EXPECT_NEAR(loaded.at(0, 0, 0), 0.0f, 1.0f / 255.0f);
  std::remove(path.c_str());
}

TEST(Image, WriteClampsOutOfRange) {
  Image img(1, 1, 1);
  img.at(0, 0, 0) = 7.5f;
  const std::string path = ::testing::TempDir() + "/pp_img_clamp.pgm";
  write_image(img, path);
  EXPECT_FLOAT_EQ(read_image(path).at(0, 0, 0), 1.0f);
  std::remove(path.c_str());
}

TEST(Image, ReadMissingFileThrows) {
  EXPECT_THROW(read_image("/nonexistent/img.ppm"), CheckError);
}

TEST(Resize, IdentityWhenSameSize) {
  Image img(4, 4, 3);
  img.at(2, 2, 1) = 0.7f;
  const Image out = resize_bilinear(img, 4, 4);
  EXPECT_FLOAT_EQ(out.at(2, 2, 1), 0.7f);
}

TEST(Resize, ConstantImageStaysConstant) {
  Image img(7, 5, 3);
  img.fill(0.42f);
  const Image out = resize_bilinear(img, 13, 9);
  for (Index y = 0; y < 9; ++y) {
    for (Index x = 0; x < 13; ++x) {
      for (Index c = 0; c < 3; ++c) EXPECT_NEAR(out.at(x, y, c), 0.42f, 1e-6f);
    }
  }
}

TEST(Resize, DownThenUpPreservesMean) {
  Image img(16, 16, 1);
  for (Index y = 0; y < 16; ++y) {
    for (Index x = 0; x < 16; ++x) {
      img.at(x, y, 0) = static_cast<float>((x + y) % 5) / 4.0f;
    }
  }
  const Image small = resize_bilinear(img, 8, 8);
  double mean_orig = 0.0, mean_small = 0.0;
  for (Index i = 0; i < img.num_pixels(); ++i) mean_orig += static_cast<double>(img.data()[i]);
  for (Index i = 0; i < small.num_pixels(); ++i) {
    mean_small += static_cast<double>(small.data()[i]);
  }
  mean_orig /= static_cast<double>(img.num_pixels());
  mean_small /= static_cast<double>(small.num_pixels());
  EXPECT_NEAR(mean_orig, mean_small, 0.05);
}

TEST(Grayscale, UsesLuminanceWeights) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 1.0f;  // pure red
  EXPECT_NEAR(to_grayscale(img).at(0, 0, 0), 0.2989f, 1e-5f);
  img.at(0, 0, 0) = 0.0f;
  img.at(0, 0, 1) = 1.0f;  // pure green
  EXPECT_NEAR(to_grayscale(img).at(0, 0, 0), 0.5870f, 1e-5f);
}

TEST(Grayscale, RejectsNonRgb) {
  EXPECT_THROW(to_grayscale(Image(2, 2, 1)), CheckError);
}

TEST(AbsDiff, ComputesPerPixelDifference) {
  Image a(2, 1, 1), b(2, 1, 1);
  a.at(0, 0, 0) = 0.8f;
  b.at(0, 0, 0) = 0.3f;
  a.at(1, 0, 0) = 0.1f;
  b.at(1, 0, 0) = 0.4f;
  const Image d = abs_diff(a, b);
  EXPECT_NEAR(d.at(0, 0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(d.at(1, 0, 0), 0.3f, 1e-6f);
}

TEST(Image, Clamp01) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = -0.5f;
  img.at(1, 0, 0) = 1.5f;
  img.clamp01();
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_EQ(img.at(1, 0, 0), 1.0f);
}

}  // namespace
}  // namespace paintplace::img
