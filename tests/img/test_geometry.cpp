#include "img/geometry.h"

#include <gtest/gtest.h>

namespace paintplace::img {
namespace {

using fpga::Arch;
using fpga::GridLoc;

TEST(Geometry, CanvasFitsTargetWidth) {
  const Arch arch(8, 8);
  const PixelGeometry geom(arch, 256);
  EXPECT_LE(geom.canvas_width(), 256);
  EXPECT_LE(geom.canvas_height(), 256);
}

TEST(Geometry, ElementsAtLeastTwoPixels) {
  // Sec. 4.2 "Resolution": every placement element >= 2x2 pixels.
  for (Index interior : {2, 4, 8, 16, 30}) {
    const Arch arch(interior, interior);
    const PixelGeometry geom(arch, 256);
    EXPECT_GE(geom.tile_px(), 2) << "interior " << interior;
    for (Index y = 0; y < arch.height(); ++y) {
      for (Index x = 0; x < arch.width(); ++x) {
        const PixelRect r = geom.tile_rect(x, y);
        EXPECT_GE(r.width(), 2);
        EXPECT_GE(r.height(), 2);
      }
    }
  }
}

TEST(Geometry, TooSmallTargetThrows) {
  const Arch arch(30, 30);
  EXPECT_THROW(PixelGeometry(arch, 48), CheckError);
}

TEST(Geometry, LatticeRectsTileTheCanvas) {
  const Arch arch(4, 3);
  const PixelGeometry geom(arch, 128);
  // Sum of column widths must equal the canvas width.
  Index total_w = 0;
  const Index lw = 2 * arch.width() + 1;
  for (Index lx = 0; lx < lw; ++lx) {
    total_w += geom.lattice_rect(lx, 1).width();
  }
  EXPECT_EQ(total_w, geom.canvas_width());
  Index total_h = 0;
  const Index lh = 2 * arch.height() + 1;
  for (Index ly = 0; ly < lh; ++ly) {
    total_h += geom.lattice_rect(1, ly).height();
  }
  EXPECT_EQ(total_h, geom.canvas_height());
}

TEST(Geometry, RectsDoNotOverlap) {
  const Arch arch(3, 3);
  const PixelGeometry geom(arch, 128);
  const PixelRect a = geom.lattice_rect(1, 1);
  const PixelRect b = geom.lattice_rect(2, 1);
  EXPECT_EQ(a.x1, b.x0);
  const PixelRect c = geom.lattice_rect(1, 2);
  EXPECT_EQ(a.y1, c.y0);
}

TEST(Geometry, ChannelsThinnerThanTiles) {
  const Arch arch(6, 6);
  const PixelGeometry geom(arch, 256);
  EXPECT_LT(geom.chan_px(), geom.tile_px() + 1);
  EXPECT_GE(geom.chan_px(), 1);
}

TEST(Geometry, TileRectMatchesLatticeRect) {
  const Arch arch(4, 4);
  const PixelGeometry geom(arch, 200);
  const PixelRect via_tile = geom.tile_rect(2, 3);
  const PixelRect via_lattice = geom.lattice_rect(5, 7);
  EXPECT_EQ(via_tile.x0, via_lattice.x0);
  EXPECT_EQ(via_tile.y1, via_lattice.y1);
}

TEST(Geometry, IoPortRectsPartitionPad) {
  const Arch arch(4, 4);
  const PixelGeometry geom(arch, 256);
  const Index ports = arch.params().io_ports_per_pad;
  // Left-side pad: ports stack vertically.
  const GridLoc pad{0, 2, 0};
  Index covered = 0;
  for (Index sub = 0; sub < ports; ++sub) {
    const PixelRect r = geom.io_port_rect(GridLoc{0, 2, sub}, ports);
    covered += r.height();
    EXPECT_EQ(r.width(), geom.tile_rect(0, 2).width());
  }
  EXPECT_EQ(covered, geom.tile_rect(pad.x, pad.y).height());
  // Top-side pad: ports stack horizontally.
  const PixelRect top = geom.io_port_rect(GridLoc{2, 0, 3}, ports);
  EXPECT_EQ(top.height(), geom.tile_rect(2, 0).height());
}

TEST(Geometry, TileCenterInsideRect) {
  const Arch arch(5, 5);
  const PixelGeometry geom(arch, 256);
  for (Index y = 0; y < arch.height(); ++y) {
    for (Index x = 0; x < arch.width(); ++x) {
      Index px = 0, py = 0;
      geom.tile_center(x, y, px, py);
      EXPECT_TRUE(geom.tile_rect(x, y).contains(px, py));
    }
  }
}

TEST(Geometry, OutOfRangeLatticeThrows) {
  const Arch arch(3, 3);
  const PixelGeometry geom(arch, 128);
  EXPECT_THROW(geom.lattice_rect(-1, 0), CheckError);
  EXPECT_THROW(geom.lattice_rect(11, 0), CheckError);
}

}  // namespace
}  // namespace paintplace::img
