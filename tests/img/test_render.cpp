#include "img/render.h"

#include <gtest/gtest.h>

#include "fpga/netgen.h"
#include "place/sa_placer.h"
#include "route/router.h"

namespace paintplace::img {
namespace {

using fpga::Arch;
using fpga::TileType;

struct Scene {
  fpga::Netlist nl;
  Arch arch;
  place::Placement placement;
  route::ChannelGraph graph;
  route::CongestionMap congestion;
  PixelGeometry geom;

  Scene()
      : nl(fpga::generate_packed(make_spec(), fpga::NetgenParams{}, 5)),
        arch(Arch::auto_sized({nl.stats().num_clbs,
                               nl.stats().num_inputs + nl.stats().num_outputs,
                               nl.stats().num_mems, nl.stats().num_mults})),
        placement(make_placement(arch, nl)),
        graph(arch),
        congestion(graph),
        geom(arch, 256) {
    route::PathFinderRouter router(graph);
    router.route(placement, congestion);
  }

  static fpga::DesignSpec make_spec() {
    fpga::DesignSpec s;
    s.name = "render_toy";
    s.num_luts = 40;
    s.num_ffs = 12;
    s.num_nets = 90;
    s.num_inputs = 5;
    s.num_outputs = 4;
    s.num_mems = 1;
    s.num_mults = 1;
    return s;
  }
  static place::Placement make_placement(const Arch& arch, const fpga::Netlist& nl) {
    place::PlacerOptions opt;
    opt.seed = 9;
    place::SaPlacer placer(arch, nl, opt);
    return placer.place();
  }
};

Color pixel(const Image& img, Index x, Index y) {
  return Color{img.at(x, y, 0), img.at(x, y, 1), img.at(x, y, 2)};
}

bool near_color(const Color& a, const Color& b, float tol = 1e-4f) {
  return a.distance_sq(b) < tol;
}

TEST(RenderFloorplan, ChannelAreasWhite) {
  Scene s;
  const Image img = render_floorplan(s.geom);
  // Channel stripe between tiles (0,0) and (1,0): lattice (2,1).
  const PixelRect r = s.geom.lattice_rect(2, 1);
  EXPECT_TRUE(near_color(pixel(img, r.x0, r.y0), scheme::kWhite));
}

TEST(RenderFloorplan, TileColorsFollowTable1) {
  Scene s;
  const Image img = render_floorplan(s.geom);
  for (Index y = 1; y < s.arch.height() - 1; ++y) {
    for (Index x = 1; x < s.arch.width() - 1; ++x) {
      const PixelRect r = s.geom.tile_rect(x, y);
      const Color c = pixel(img, (r.x0 + r.x1) / 2, (r.y0 + r.y1) / 2);
      switch (s.arch.tile_type(x, y)) {
        case TileType::kClb: EXPECT_TRUE(near_color(c, scheme::kLightBlue)); break;
        case TileType::kMem: EXPECT_TRUE(near_color(c, scheme::kLightYellow)); break;
        case TileType::kMult: EXPECT_TRUE(near_color(c, scheme::kPink)); break;
        case TileType::kIo: break;
      }
    }
  }
}

TEST(RenderFloorplan, CornersStayWhite) {
  Scene s;
  const Image img = render_floorplan(s.geom);
  const PixelRect r = s.geom.tile_rect(0, 0);
  EXPECT_TRUE(near_color(pixel(img, (r.x0 + r.x1) / 2, (r.y0 + r.y1) / 2), scheme::kWhite));
}

TEST(RenderPlacement, UsedClbsAreBlack) {
  Scene s;
  const Image img = render_placement(s.placement, s.geom);
  Index black_clbs = 0;
  for (const fpga::Block& b : s.nl.blocks()) {
    if (b.kind != fpga::BlockKind::kClb) continue;
    const fpga::GridLoc l = s.placement.loc(b.id);
    const PixelRect r = s.geom.tile_rect(l.x, l.y);
    if (near_color(pixel(img, (r.x0 + r.x1) / 2, (r.y0 + r.y1) / 2), scheme::kBlack)) {
      black_clbs += 1;
    }
  }
  EXPECT_EQ(black_clbs, s.nl.stats().num_clbs);
}

TEST(RenderPlacement, UnusedClbSpotsStayLightBlue) {
  Scene s;
  const Image img = render_placement(s.placement, s.geom);
  Index unused_checked = 0;
  for (const fpga::GridLoc& slot : s.arch.slots(TileType::kClb)) {
    if (s.placement.block_at(slot) >= 0) continue;
    const PixelRect r = s.geom.tile_rect(slot.x, slot.y);
    EXPECT_TRUE(near_color(pixel(img, (r.x0 + r.x1) / 2, (r.y0 + r.y1) / 2), scheme::kLightBlue));
    unused_checked += 1;
  }
  EXPECT_GT(unused_checked, 0) << "fixture should leave spare CLB spots";
}

TEST(RenderPlacement, IoPortsPartiallyFilled) {
  // Paper: "I/O pads may not be fully filled with black pixels".
  Scene s;
  const Image img = render_placement(s.placement, s.geom);
  // Find a pad tile hosting at least one but not all ports.
  const Index ports = s.arch.params().io_ports_per_pad;
  bool found_partial = false;
  for (const fpga::Block& b : s.nl.blocks()) {
    if (fpga::tile_type_for(b.kind) != TileType::kIo) continue;
    const fpga::GridLoc l = s.placement.loc(b.id);
    Index used_here = 0;
    for (Index sub = 0; sub < ports; ++sub) {
      if (s.placement.block_at(fpga::GridLoc{l.x, l.y, sub}) >= 0) used_here += 1;
    }
    if (used_here == ports) continue;
    const PixelRect pad = s.geom.tile_rect(l.x, l.y);
    Index black = 0, total = 0;
    for (Index y = pad.y0; y < pad.y1; ++y) {
      for (Index x = pad.x0; x < pad.x1; ++x) {
        total += 1;
        if (near_color(pixel(img, x, y), scheme::kBlack)) black += 1;
      }
    }
    if (black > 0 && black < total) {
      found_partial = true;
      break;
    }
  }
  EXPECT_TRUE(found_partial);
}

TEST(RenderConnectivity, NormalizedSingleChannel) {
  Scene s;
  const Image img = render_connectivity(s.placement, s.geom);
  EXPECT_EQ(img.channels(), 1);
  float maxv = 0.0f;
  for (Index i = 0; i < img.num_pixels(); ++i) maxv = std::max(maxv, img.data()[i]);
  EXPECT_FLOAT_EQ(maxv, 1.0f);
  for (Index i = 0; i < img.num_pixels(); ++i) EXPECT_GE(img.data()[i], 0.0f);
}

TEST(RenderConnectivity, DifferentPlacementsGiveDifferentImages) {
  Scene s;
  const Image a = render_connectivity(s.placement, s.geom);
  place::Placement other(s.arch, s.nl);
  Rng rng(1234);
  other.random_init(rng);
  const Image b = render_connectivity(other, s.geom);
  float diff = 0.0f;
  for (Index i = 0; i < a.num_pixels(); ++i) {
    diff += std::fabs(a.data()[i] - b.data()[i]);
  }
  EXPECT_GT(diff, 1.0f);
}

TEST(RenderHeatmap, ChannelsColoredByUtilization) {
  Scene s;
  const Image img = render_route_heatmap(s.placement, s.congestion, s.geom);
  // Every in-plan channel pixel decodes back to its segment utilization.
  Index checked = 0;
  for (route::NodeId n = 0; n < s.graph.num_nodes(); ++n) {
    if (!s.graph.is_channel(n)) continue;
    const PixelRect r = s.geom.lattice_rect(s.graph.lx_of(n), s.graph.ly_of(n));
    const double u = UtilizationColormap::unmap(pixel(img, r.x0, r.y0));
    EXPECT_NEAR(u, std::min(1.0, s.congestion.utilization(n)), 2e-2);
    checked += 1;
  }
  EXPECT_GT(checked, 10);
}

TEST(RenderHeatmap, DiffersFromPlacementOnlyInChannels) {
  // Fig. 2e: img_route - img_place is nonzero only on routing-area pixels.
  Scene s;
  const Image placed = render_placement(s.placement, s.geom);
  const Image heat = render_route_heatmap(s.placement, s.congestion, s.geom);
  const Image mask = channel_mask(s.geom);
  const Image diff = abs_diff(placed, heat);
  for (Index y = 0; y < diff.height(); ++y) {
    for (Index x = 0; x < diff.width(); ++x) {
      // Tiles (not channels, not switchboxes) must be identical.
      bool in_tile = false;
      for (Index ty = 0; ty < s.arch.height() && !in_tile; ++ty) {
        for (Index tx = 0; tx < s.arch.width() && !in_tile; ++tx) {
          if (s.geom.tile_rect(tx, ty).contains(x, y)) in_tile = true;
        }
      }
      if (in_tile) {
        EXPECT_EQ(diff.at(x, y, 0), 0.0f) << x << "," << y;
      }
    }
  }
  (void)mask;
}

TEST(ChannelMask, MarksExactlyChannelCells) {
  Scene s;
  const Image mask = channel_mask(s.geom);
  for (route::NodeId n = 0; n < s.graph.num_nodes(); ++n) {
    const PixelRect r = s.geom.lattice_rect(s.graph.lx_of(n), s.graph.ly_of(n));
    const float expected = s.graph.is_channel(n) ? 1.0f : 0.0f;
    EXPECT_EQ(mask.at(r.x0, r.y0, 0), expected);
  }
}

TEST(DecodeUtilization, RecoversTotalFromRenderedTruth) {
  Scene s;
  const Image heat = render_route_heatmap(s.placement, s.congestion, s.geom);
  const Image mask = channel_mask(s.geom);
  const double decoded_mean = decode_total_utilization(heat, mask);
  // Compare with the true mean utilization over channels (clamped at 1).
  double true_mean = 0.0;
  Index count = 0;
  for (route::NodeId n = 0; n < s.graph.num_nodes(); ++n) {
    if (!s.graph.is_channel(n)) continue;
    true_mean += std::min(1.0, s.congestion.utilization(n));
    count += 1;
  }
  true_mean /= static_cast<double>(count);
  EXPECT_NEAR(decoded_mean, true_mean, 2e-2);
}

TEST(RenderRoutingResult, DarkensUsedChannels) {
  Scene s;
  const Image img = render_routing_result(s.placement, s.congestion, s.geom);
  Index darkened = 0;
  for (route::NodeId n = 0; n < s.graph.num_nodes(); ++n) {
    if (!s.graph.is_channel(n) || s.congestion.occupancy(n) == 0) continue;
    const PixelRect r = s.geom.lattice_rect(s.graph.lx_of(n), s.graph.ly_of(n));
    const Color c = pixel(img, r.x0, r.y0);
    if (c.r < 0.999f) darkened += 1;
  }
  EXPECT_GT(darkened, 0);
}

}  // namespace
}  // namespace paintplace::img
