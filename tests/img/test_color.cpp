#include "img/color.h"

#include <gtest/gtest.h>

#include <cmath>

namespace paintplace::img {
namespace {

TEST(ColorScheme, AllPairsSeparatedInRgb) {
  // Sec. 4.2: elements must be differentiable by RGB euclidean distance.
  const Color colors[] = {scheme::kWhite, scheme::kLightBlue, scheme::kPink,
                          scheme::kLightYellow, scheme::kBlack, scheme::kIoPad};
  for (std::size_t i = 0; i < std::size(colors); ++i) {
    for (std::size_t j = i + 1; j < std::size(colors); ++j) {
      EXPECT_GT(colors[i].distance_sq(colors[j]), 0.01f) << i << " vs " << j;
    }
  }
}

TEST(Colormap, EndpointsAreYellowAndPurple) {
  const Color lo = UtilizationColormap::map(0.0);
  const Color hi = UtilizationColormap::map(1.0);
  EXPECT_GT(lo.r, 0.9f);
  EXPECT_GT(lo.g, 0.85f);
  EXPECT_LT(lo.b, 0.3f);  // yellow
  EXPECT_LT(hi.g, 0.2f);
  EXPECT_GT(hi.b, 0.4f);  // purple
}

TEST(Colormap, ClampsOutOfRange) {
  EXPECT_EQ(UtilizationColormap::map(-0.5).distance_sq(UtilizationColormap::map(0.0)), 0.0f);
  EXPECT_EQ(UtilizationColormap::map(2.0).distance_sq(UtilizationColormap::map(1.0)), 0.0f);
}

TEST(Colormap, UnmapInvertsMapExactly) {
  for (int i = 0; i <= 100; ++i) {
    const double u = static_cast<double>(i) / 100.0;
    EXPECT_NEAR(UtilizationColormap::unmap(UtilizationColormap::map(u)), u, 1e-4) << u;
  }
}

TEST(Colormap, UnmapIsMonotoneAlongGradient) {
  double prev = -1.0;
  for (int i = 0; i <= 50; ++i) {
    const double u = UtilizationColormap::unmap(
        UtilizationColormap::map(static_cast<double>(i) / 50.0));
    EXPECT_GE(u, prev);
    prev = u;
  }
}

TEST(Colormap, UnmapRobustToPerturbation) {
  // Network outputs drift off the polyline; nearest-point projection must
  // still land close to the original utilization.
  for (int i = 0; i <= 10; ++i) {
    const double u = static_cast<double>(i) / 10.0;
    Color c = UtilizationColormap::map(u);
    c.r = std::min(1.0f, c.r + 0.05f);
    c.g = std::max(0.0f, c.g - 0.05f);
    EXPECT_NEAR(UtilizationColormap::unmap(c), u, 0.12) << u;
  }
}

TEST(Colormap, MidpointBetweenStops) {
  const Color quarter = UtilizationColormap::map(0.25);
  const Color lo = UtilizationColormap::map(0.0);
  const Color mid = UtilizationColormap::map(0.5);
  EXPECT_NEAR(quarter.r, (lo.r + mid.r) / 2.0f, 1e-6f);
  EXPECT_NEAR(quarter.g, (lo.g + mid.g) / 2.0f, 1e-6f);
  EXPECT_NEAR(quarter.b, (lo.b + mid.b) / 2.0f, 1e-6f);
}

TEST(Color, DistanceSq) {
  const Color a{0.0f, 0.0f, 0.0f};
  const Color b{1.0f, 1.0f, 1.0f};
  EXPECT_FLOAT_EQ(a.distance_sq(b), 3.0f);
  EXPECT_FLOAT_EQ(a.distance_sq(a), 0.0f);
}

}  // namespace
}  // namespace paintplace::img
