// net::Metrics tests: histogram recording and quantiles, counter rollups,
// and the text exposition format the metrics endpoint serves.
#include "net/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace paintplace::net {
namespace {

TEST(LatencyHistogram, EmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.total_seconds(), 0.0);
}

TEST(LatencyHistogram, QuantilesBracketRecordedLatencies) {
  LatencyHistogram h;
  // 99 fast samples around 1ms, one slow outlier around 1s.
  for (int i = 0; i < 99; ++i) h.record(1e-3);
  h.record(1.0);
  EXPECT_EQ(h.count(), 100u);

  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.5e-3);
  EXPECT_LE(p50, 2.5e-3);  // within the 1ms sample's log2 bucket

  const double p99 = h.quantile(0.99);
  EXPECT_LE(p99, 2.5e-3);  // the outlier is beyond the 99th

  const double p100 = h.quantile(1.0);
  EXPECT_GE(p100, 0.5);  // the outlier's bucket
}

TEST(LatencyHistogram, QuantileIsMonotoneInQ) {
  LatencyHistogram h;
  for (int i = 1; i <= 64; ++i) h.record(static_cast<double>(i) * 1e-4);
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.record(1e-3);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), 4000u);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(0.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Metrics, ShedTotalSumsBothReasons) {
  Metrics m;
  m.shed_queue_full.fetch_add(3);
  m.shed_client_cap.fetch_add(4);
  EXPECT_EQ(m.shed_total(), 7u);
}

TEST(Metrics, RenderTextExposesEveryField) {
  Metrics m;
  m.connections_opened.store(5);
  m.requests_accepted.store(100);
  m.requests_completed.store(90);
  m.shed_queue_full.store(7);
  m.protocol_errors.store(1);
  m.latency.record(2e-3);

  PoolGauges pool;
  pool.replicas = 2;
  pool.queue_depth = 3;
  pool.cache_hits = 40;
  pool.cache_requests = 100;
  pool.model_version = 2;

  const std::string text = render_text(m, pool);
  // One "name value" pair per line, no blank metric names.
  std::istringstream lines(text);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << "unparseable line: " << line;
    ASSERT_GT(space, 0u);
    ++parsed;
  }
  EXPECT_GE(parsed, 10);

  EXPECT_NE(text.find("net_connections_opened 5\n"), std::string::npos);
  EXPECT_NE(text.find("net_requests_accepted 100\n"), std::string::npos);
  EXPECT_NE(text.find("net_requests_completed 90\n"), std::string::npos);
  EXPECT_NE(text.find("net_shed_queue_full 7\n"), std::string::npos);
  EXPECT_NE(text.find("net_protocol_errors 1\n"), std::string::npos);
  EXPECT_NE(text.find("pool_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("pool_model_version 2\n"), std::string::npos);
  EXPECT_NE(text.find("net_latency_p50_ms"), std::string::npos);
  EXPECT_NE(text.find("net_latency_p99_ms"), std::string::npos);
  EXPECT_NE(text.find("pool_cache_hit_rate"), std::string::npos);
}

TEST(Metrics, RenderLogLineIsOneLine) {
  Metrics m;
  m.requests_completed.store(12);
  PoolGauges pool;
  pool.model_version = 1;
  const std::string line = render_log_line(m, pool);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("[net]"), std::string::npos);
  EXPECT_NE(line.find("done=12"), std::string::npos);
}

}  // namespace
}  // namespace paintplace::net
