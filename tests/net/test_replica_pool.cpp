// ReplicaPool tests: content-hash shard stickiness (cache locality across
// replicas), both admission-control shed paths with slot release, lockstep
// hot-swap, and drain-on-shutdown semantics.
#include "net/replica_pool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/check.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::net {
namespace {

using namespace std::chrono_literals;

ReplicaPoolConfig quick_config(int replicas = 2) {
  ReplicaPoolConfig cfg;
  cfg.replicas = replicas;
  cfg.serve.max_batch = 4;
  cfg.serve.max_wait = 2ms;
  return cfg;
}

ModelFactory tiny_factory() {
  return [] { return serve::testfix::tiny_model(); };
}

TEST(ReplicaPool, ShardingIsStickyAndCachesSurviveScaleOut) {
  ReplicaPool pool(quick_config(3), tiny_factory());
  const nn::Tensor x = serve::testfix::random_input(5);
  const int home = pool.replica_of(serve::TensorKey::of(x));
  EXPECT_EQ(pool.replica_of(serve::TensorKey::of(x)), home);  // stable

  Admission first = pool.submit(/*client_id=*/1, x);
  ASSERT_TRUE(first.admitted());
  EXPECT_EQ(first.replica, home);
  EXPECT_FALSE(first.future.get().from_cache);
  first.slot.reset();

  // Same placement, different client: same replica, and its cache answers.
  Admission second = pool.submit(/*client_id=*/2, x);
  ASSERT_TRUE(second.admitted());
  EXPECT_EQ(second.replica, home);
  EXPECT_TRUE(second.future.get().from_cache);
  second.slot.reset();

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_requests, 2u);
}

TEST(ReplicaPool, DistinctPlacementsSpreadAcrossReplicas) {
  ReplicaPool pool(quick_config(2), tiny_factory());
  std::vector<int> hits(2, 0);
  for (std::uint64_t s = 0; s < 32; ++s) {
    const nn::Tensor x = serve::testfix::random_input(100 + s);
    hits[static_cast<std::size_t>(pool.replica_of(serve::TensorKey::of(x)))] += 1;
  }
  // A content hash will not be perfectly balanced over 32 draws, but both
  // replicas must see real traffic.
  EXPECT_GT(hits[0], 0);
  EXPECT_GT(hits[1], 0);
}

TEST(ReplicaPool, ReplicaDepthBoundShedsAndSlotReleaseReadmits) {
  ReplicaPoolConfig cfg = quick_config(1);
  cfg.max_replica_depth = 1;
  ReplicaPool pool(cfg, tiny_factory());

  Admission held = pool.submit(1, serve::testfix::random_input(1));
  ASSERT_TRUE(held.admitted());

  Admission over = pool.submit(1, serve::testfix::random_input(2));
  EXPECT_FALSE(over.admitted());
  EXPECT_EQ(over.shed, ShedReason::kReplicaQueueFull);
  EXPECT_EQ(pool.stats().queue_depth, 1u);

  held.future.get();
  held.slot.reset();  // response delivered — the slot frees the depth
  EXPECT_EQ(pool.stats().queue_depth, 0u);

  Admission after = pool.submit(1, serve::testfix::random_input(2));
  EXPECT_TRUE(after.admitted());
  after.future.get();
}

TEST(ReplicaPool, ClientCapShedsOnlyTheGreedyClient) {
  ReplicaPoolConfig cfg = quick_config(2);
  cfg.max_client_inflight = 1;
  ReplicaPool pool(cfg, tiny_factory());

  Admission held = pool.submit(/*client_id=*/7, serve::testfix::random_input(1));
  ASSERT_TRUE(held.admitted());

  Admission greedy = pool.submit(/*client_id=*/7, serve::testfix::random_input(2));
  EXPECT_FALSE(greedy.admitted());
  EXPECT_EQ(greedy.shed, ShedReason::kClientCapExceeded);

  // A different client is unaffected by client 7's cap.
  Admission other = pool.submit(/*client_id=*/8, serve::testfix::random_input(2));
  EXPECT_TRUE(other.admitted());

  held.future.get();
  held.slot.reset();
  other.future.get();
  other.slot.reset();

  Admission again = pool.submit(/*client_id=*/7, serve::testfix::random_input(3));
  EXPECT_TRUE(again.admitted());
  again.future.get();
}

TEST(ReplicaPool, HotSwapAdvancesAllReplicasInLockstep) {
  ReplicaPool pool(quick_config(2), tiny_factory());
  const nn::Tensor x = serve::testfix::random_input(9);

  Admission before = pool.submit(1, x);
  ASSERT_TRUE(before.admitted());
  EXPECT_EQ(before.future.get().model_version, 1u);
  before.slot.reset();

  EXPECT_EQ(pool.hot_swap(tiny_factory(), "swap-test"), 2u);
  EXPECT_EQ(pool.stats().model_version, 2u);

  // The old version's cache entry must not serve the new version.
  Admission after = pool.submit(1, x);
  ASSERT_TRUE(after.admitted());
  const serve::ForecastResult r = after.future.get();
  EXPECT_EQ(r.model_version, 2u);
  EXPECT_FALSE(r.from_cache);
  after.slot.reset();
}

TEST(ReplicaPool, ShutdownDrainsAdmittedRequests) {
  ReplicaPool pool(quick_config(2), tiny_factory());
  std::vector<Admission> admitted;
  for (std::uint64_t s = 0; s < 8; ++s) {
    Admission a = pool.submit(s % 3, serve::testfix::random_input(200 + s));
    ASSERT_TRUE(a.admitted());
    admitted.push_back(std::move(a));
  }
  pool.shutdown();
  for (Admission& a : admitted) {
    const serve::ForecastResult r = a.future.get();  // resolves, never dropped
    EXPECT_GT(r.heatmap.numel(), 0);
    a.slot.reset();
  }
  EXPECT_THROW(pool.submit(1, serve::testfix::random_input(1)), CheckError);
}

TEST(ReplicaPool, BadInputShapeIsACallerErrorNotLoad) {
  ReplicaPool pool(quick_config(1), tiny_factory());
  nn::Tensor wrong(nn::Shape{1, 2, 16, 16});  // channel count mismatch
  EXPECT_THROW(pool.submit(1, wrong), CheckError);
  EXPECT_EQ(pool.stats().queue_depth, 0u);  // nothing leaked by the throw
}

}  // namespace
}  // namespace paintplace::net
