// End-to-end NetServer tests over real loopback sockets: request/response
// fidelity vs direct prediction, protocol-error handling, the metrics
// endpoint, hot-swap over the wire, concurrent clients, and drain-on-
// shutdown semantics.
#include "net/server.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "net/client.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::net {
namespace {

using namespace std::chrono_literals;

NetServerConfig quick_config(int replicas = 2) {
  NetServerConfig cfg;
  cfg.pool.replicas = replicas;
  cfg.pool.serve.max_batch = 4;
  cfg.pool.serve.max_wait = 2ms;
  return cfg;
}

ModelFactory tiny_factory() {
  return [] { return serve::testfix::tiny_model(); };
}

TEST(NetServer, ForecastOverTheWireMatchesDirectPredict) {
  NetServer server(quick_config(), tiny_factory());
  ASSERT_GT(server.port(), 0);  // ephemeral port was bound

  Client client("127.0.0.1", server.port());
  const nn::Tensor x = serve::testfix::random_input(3);
  const ForecastResponse resp = client.forecast(x, /*want_heatmap=*/true);

  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.model_version, 1u);
  EXPECT_FALSE(resp.from_cache);

  auto reference = serve::testfix::tiny_model();
  reference->set_deterministic_inference(true);
  const nn::Tensor expected = reference->predict(x);
  ASSERT_EQ(resp.heatmap.shape(), expected.shape());
  EXPECT_EQ(resp.heatmap.max_abs_diff(expected), 0.0f);
  EXPECT_DOUBLE_EQ(resp.congestion_score, reference->congestion_score(expected));

  // The same placement resubmitted is a bit-identical cache hit.
  const ForecastResponse again = client.forecast(x, /*want_heatmap=*/true);
  EXPECT_TRUE(again.from_cache);
  EXPECT_EQ(again.heatmap.max_abs_diff(resp.heatmap), 0.0f);
}

TEST(NetServer, ScoreOnlyResponseOmitsHeatmap) {
  NetServer server(quick_config(1), tiny_factory());
  Client client("127.0.0.1", server.port());
  const nn::Tensor x = serve::testfix::random_input(4);
  const ForecastResponse resp = client.forecast(x);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.heatmap.numel(), 0);  // not requested, not shipped

  // The score still matches a direct deterministic prediction exactly.
  auto reference = serve::testfix::tiny_model();
  reference->set_deterministic_inference(true);
  EXPECT_DOUBLE_EQ(resp.congestion_score,
                   reference->congestion_score(reference->predict(x)));
}

TEST(NetServer, BadInputShapeFailsThatRequestOnly) {
  NetServer server(quick_config(1), tiny_factory());
  Client client("127.0.0.1", server.port());

  const ForecastResponse bad = client.forecast(nn::Tensor(nn::Shape{1, 2, 16, 16}));
  EXPECT_EQ(bad.status, Status::kFailed);
  EXPECT_FALSE(bad.error.empty());

  // The connection survives a failed request; the next one is served.
  const ForecastResponse good = client.forecast(serve::testfix::random_input(5));
  EXPECT_EQ(good.status, Status::kOk);
  EXPECT_EQ(server.metrics().requests_failed.load(), 1u);
}

TEST(NetServer, GarbageBytesGetAnErrorFrameAndClose) {
  NetServer server(quick_config(1), tiny_factory());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const char garbage[] = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);

  // The server answers with one kError frame, then closes the connection.
  FrameReader reader;
  std::uint8_t buf[4096];
  std::optional<Frame> error_frame;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF after the error frame
    reader.feed(buf, static_cast<std::size_t>(n));
    if (auto f = reader.next()) {
      error_frame = std::move(f);
    }
  }
  ::close(fd);
  ASSERT_TRUE(error_frame.has_value());
  EXPECT_EQ(error_frame->type, FrameType::kError);
  EXPECT_NE(decode_text(*error_frame).find("magic"), std::string::npos);
  EXPECT_EQ(server.metrics().protocol_errors.load(), 1u);
}

TEST(NetServer, MetricsEndpointReflectsTraffic) {
  NetServer server(quick_config(1), tiny_factory());
  Client client("127.0.0.1", server.port());
  (void)client.forecast(serve::testfix::random_input(6));
  (void)client.forecast(serve::testfix::random_input(6));  // cache hit

  // The completed counter lands just after the response bytes; wait for it
  // so the scrape below sees both requests.
  while (server.metrics().requests_completed.load() < 2) {
    std::this_thread::sleep_for(1ms);
  }
  const std::string text = client.metrics_text();
  EXPECT_NE(text.find("net_requests_completed 2\n"), std::string::npos);
  EXPECT_NE(text.find("net_requests_accepted 2\n"), std::string::npos);
  EXPECT_NE(text.find("pool_model_version 1\n"), std::string::npos);
  EXPECT_NE(text.find("pool_cache_hit_rate 0.5000\n"), std::string::npos);
  EXPECT_NE(text.find("net_latency_p99_ms"), std::string::npos);
  EXPECT_EQ(server.metrics().metrics_requests.load(), 1u);
}

TEST(NetServer, SwapOverTheWireIsDeniedByDefault) {
  NetServer server(quick_config(1), tiny_factory());
  Client client("127.0.0.1", server.port());
  const SwapResponse resp = client.swap("/does/not/matter.ckpt");
  EXPECT_EQ(resp.status, Status::kFailed);
  EXPECT_NE(resp.error.find("disabled"), std::string::npos);
  EXPECT_EQ(server.metrics().hot_swaps.load(), 0u);
}

TEST(NetServer, SwapOverTheWirePublishesWhenAllowed) {
  const std::filesystem::path ckpt =
      std::filesystem::temp_directory_path() / "paintplace_test_net_swap.ckpt";
  serve::testfix::tiny_model(/*seed=*/21)->save(ckpt.string());

  NetServerConfig cfg = quick_config();
  cfg.allow_swap = true;
  NetServer server(cfg, tiny_factory());
  Client client("127.0.0.1", server.port());

  const SwapResponse resp = client.swap(ckpt.string());
  EXPECT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_EQ(resp.new_version, 2u);

  const ForecastResponse after = client.forecast(serve::testfix::random_input(7));
  EXPECT_EQ(after.model_version, 2u);
  std::filesystem::remove(ckpt);
}

TEST(NetServer, SwapRejectsArchitectureMismatch) {
  const std::filesystem::path ckpt =
      std::filesystem::temp_directory_path() / "paintplace_test_net_mismatch.ckpt";
  serve::testfix::tiny_model(/*seed=*/5, /*image_size=*/32)->save(ckpt.string());

  NetServerConfig cfg = quick_config(1);
  cfg.allow_swap = true;
  NetServer server(cfg, tiny_factory());  // serving a 16px model
  Client client("127.0.0.1", server.port());

  const SwapResponse resp = client.swap(ckpt.string());
  EXPECT_EQ(resp.status, Status::kFailed);
  EXPECT_FALSE(resp.error.empty());
  // The pool still serves the original model at the original version.
  EXPECT_EQ(client.forecast(serve::testfix::random_input(8)).model_version, 1u);
  std::filesystem::remove(ckpt);
}

TEST(NetServer, ConcurrentClientsAllGetAnswers) {
  NetServer server(quick_config(2), tiny_factory());
  constexpr int kClients = 3, kPerClient = 6;
  std::vector<std::thread> threads;
  std::vector<int> ok(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      for (int i = 0; i < kPerClient; ++i) {
        const ForecastResponse r =
            client.forecast(serve::testfix::random_input(300 + c * kPerClient + i));
        if (r.status == Status::kOk) ok[static_cast<std::size_t>(c)] += 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(ok[static_cast<std::size_t>(c)], kPerClient);
  EXPECT_EQ(server.metrics().requests_completed.load(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(server.metrics().shed_total(), 0u);
}

TEST(NetServer, ShutdownDrainsPipelinedRequests) {
  NetServerConfig cfg = quick_config(2);
  cfg.pool.serve.max_wait = 50ms;  // batches stay open: requests are in flight at shutdown
  cfg.pool.serve.max_batch = 64;
  auto server = std::make_unique<NetServer>(cfg, tiny_factory());
  Client client("127.0.0.1", server->port());

  constexpr int kInFlight = 5;
  for (std::uint64_t id = 1; id <= kInFlight; ++id) {
    client.send_forecast(id, serve::testfix::random_input(400 + id));
  }
  // Wait until the reader has admitted all five (sent != accepted: bytes
  // still in the socket buffer at shutdown would simply never be accepted),
  // then shut down with the whole window unresolved.
  while (server->metrics().requests_accepted.load() < kInFlight) {
    std::this_thread::sleep_for(1ms);
  }
  std::thread stopper([&] { server->shutdown(); });
  int answered = 0;
  for (int i = 0; i < kInFlight; ++i) {
    const ForecastResponse r = client.read_forecast_response();
    if (r.status == Status::kOk) ++answered;
  }
  stopper.join();
  EXPECT_EQ(answered, kInFlight);
}

TEST(NetServer, OverloadShedsWithTypedReason) {
  NetServerConfig cfg = quick_config(1);
  cfg.pool.max_replica_depth = 1;
  cfg.pool.serve.max_wait = 20ms;  // hold the batch open so depth stays high
  cfg.pool.serve.max_batch = 64;
  NetServer server(cfg, tiny_factory());
  Client client("127.0.0.1", server.port());

  for (std::uint64_t id = 1; id <= 4; ++id) {
    client.send_forecast(id, serve::testfix::random_input(500 + id));
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < 4; ++i) {
    const ForecastResponse r = client.read_forecast_response();
    if (r.status == Status::kOk) ++ok;
    if (r.status == Status::kShed) {
      ++shed;
      EXPECT_EQ(r.shed_reason, ShedReason::kReplicaQueueFull);
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(server.metrics().shed_queue_full.load(), static_cast<std::uint64_t>(shed));
}

}  // namespace
}  // namespace paintplace::net
