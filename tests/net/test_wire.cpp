// Wire-codec tests: framing round-trips for every frame type, rejection of
// truncated / oversized / garbage frames with clean WireErrors, and
// incremental reassembly from arbitrarily chopped byte streams.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>

#include "tests/serve/serve_fixtures.h"

namespace paintplace::net {
namespace {

nn::Tensor small_input(std::uint64_t seed = 3) {
  return serve::testfix::random_input(seed, /*image_size=*/8);
}

/// Feeds `bytes` in chunks of `chunk` and drains all completed frames.
std::vector<Frame> reassemble(const std::vector<std::uint8_t>& bytes, std::size_t chunk) {
  FrameReader reader;
  std::vector<Frame> frames;
  for (std::size_t at = 0; at < bytes.size(); at += chunk) {
    reader.feed(bytes.data() + at, std::min(chunk, bytes.size() - at));
    while (auto f = reader.next()) frames.push_back(std::move(*f));
  }
  EXPECT_EQ(reader.buffered(), 0u);
  return frames;
}

TEST(Wire, ForecastRequestRoundTrip) {
  ForecastRequest req;
  req.request_id = 42;
  req.want_heatmap = true;
  req.input = small_input();

  const std::vector<Frame> frames = reassemble(encode_forecast_request(req), 1 << 10);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kForecastRequest);

  const ForecastRequest back = decode_forecast_request(frames[0]);
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_TRUE(back.want_heatmap);
  ASSERT_EQ(back.input.shape(), req.input.shape());
  EXPECT_EQ(back.input.max_abs_diff(req.input), 0.0f);
}

TEST(Wire, ForecastResponseRoundTripAllStatuses) {
  ForecastResponse ok;
  ok.request_id = 7;
  ok.status = Status::kOk;
  ok.congestion_score = 0.625;
  ok.model_version = 3;
  ok.from_cache = true;
  ok.heatmap = small_input(11);
  ForecastResponse ok_back = decode_forecast_response(reassemble(
      encode_forecast_response(ok), 64)[0]);
  EXPECT_EQ(ok_back.request_id, 7u);
  EXPECT_EQ(ok_back.status, Status::kOk);
  EXPECT_DOUBLE_EQ(ok_back.congestion_score, 0.625);
  EXPECT_EQ(ok_back.model_version, 3u);
  EXPECT_TRUE(ok_back.from_cache);
  EXPECT_EQ(ok_back.heatmap.max_abs_diff(ok.heatmap), 0.0f);

  ForecastResponse shed;
  shed.request_id = 8;
  shed.status = Status::kShed;
  shed.shed_reason = ShedReason::kClientCapExceeded;
  ForecastResponse shed_back = decode_forecast_response(reassemble(
      encode_forecast_response(shed), 64)[0]);
  EXPECT_EQ(shed_back.status, Status::kShed);
  EXPECT_EQ(shed_back.shed_reason, ShedReason::kClientCapExceeded);
  EXPECT_EQ(shed_back.heatmap.numel(), 0);

  ForecastResponse failed;
  failed.request_id = 9;
  failed.status = Status::kFailed;
  failed.error = "input must be (1,C,H,W)";
  ForecastResponse failed_back = decode_forecast_response(reassemble(
      encode_forecast_response(failed), 64)[0]);
  EXPECT_EQ(failed_back.status, Status::kFailed);
  EXPECT_EQ(failed_back.error, "input must be (1,C,H,W)");
}

TEST(Wire, TextFramesRoundTrip) {
  const Frame metrics = reassemble(encode_metrics_response(5, "net_requests 12\n"), 7)[0];
  EXPECT_EQ(metrics.type, FrameType::kMetricsResponse);
  EXPECT_EQ(decode_text(metrics), "net_requests 12\n");

  const Frame swap = reassemble(encode_swap_request(6, "/ckpt/best.ckpt"), 3)[0];
  EXPECT_EQ(swap.type, FrameType::kSwapRequest);
  EXPECT_EQ(decode_text(swap), "/ckpt/best.ckpt");

  const Frame error = reassemble(encode_error(7, "bad frame"), 2)[0];
  EXPECT_EQ(error.type, FrameType::kError);
  EXPECT_EQ(decode_text(error), "bad frame");

  SwapResponse sresp;
  sresp.request_id = 6;
  sresp.status = Status::kOk;
  sresp.new_version = 4;
  const SwapResponse sback = decode_swap_response(reassemble(encode_swap_response(sresp), 5)[0]);
  EXPECT_EQ(sback.new_version, 4u);
  EXPECT_EQ(sback.status, Status::kOk);
  EXPECT_TRUE(sback.error.empty());

  const Frame mreq = reassemble(encode_metrics_request(9), 1)[0];
  EXPECT_EQ(mreq.type, FrameType::kMetricsRequest);
  EXPECT_TRUE(mreq.payload.empty());
}

TEST(Wire, PartialReadsReassembleAtEveryChunkSize) {
  ForecastRequest req;
  req.request_id = 1;
  req.input = small_input();
  std::vector<std::uint8_t> stream = encode_forecast_request(req);
  const std::vector<std::uint8_t> metrics = encode_metrics_request(2);
  stream.insert(stream.end(), metrics.begin(), metrics.end());
  const std::vector<std::uint8_t> error = encode_error(3, "x");
  stream.insert(stream.end(), error.begin(), error.end());

  // Odd chunk sizes split headers and payloads at every possible boundary.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{19},
                                  std::size_t{257}, stream.size()}) {
    const std::vector<Frame> frames = reassemble(stream, chunk);
    ASSERT_EQ(frames.size(), 3u) << "chunk " << chunk;
    EXPECT_EQ(frames[0].request_id, 1u);
    EXPECT_EQ(frames[1].request_id, 2u);
    EXPECT_EQ(frames[2].request_id, 3u);
    EXPECT_EQ(decode_forecast_request(frames[0]).input.max_abs_diff(req.input), 0.0f);
  }
}

TEST(Wire, GarbageMagicRejectsAfterHeader) {
  FrameReader reader;
  const std::uint8_t garbage[kFrameHeaderBytes] = {'G', 'E', 'T', ' ', '/', ' ', 'H'};
  reader.feed(garbage, sizeof(garbage));
  EXPECT_THROW(reader.next(), WireError);
}

TEST(Wire, UnknownFrameTypeRejects) {
  std::vector<std::uint8_t> bytes = encode_metrics_request(1);
  bytes[4] = 99;  // type byte
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  EXPECT_THROW(reader.next(), WireError);
}

TEST(Wire, OversizedPayloadRejectsBeforeBuffering) {
  ForecastRequest req;
  req.request_id = 1;
  req.input = small_input();
  const std::vector<std::uint8_t> bytes = encode_forecast_request(req);
  // A reader with a max payload below this frame's size must reject at the
  // header, without waiting for the payload bytes.
  FrameReader reader(/*max_payload=*/64);
  reader.feed(bytes.data(), kFrameHeaderBytes);
  EXPECT_THROW(reader.next(), WireError);
}

TEST(Wire, IncompleteFrameIsNotAFrame) {
  ForecastRequest req;
  req.request_id = 1;
  req.input = small_input();
  const std::vector<std::uint8_t> bytes = encode_forecast_request(req);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size() - 1);  // one byte short
  EXPECT_FALSE(reader.next().has_value());
  reader.feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_TRUE(reader.next().has_value());
}

TEST(Wire, TruncatedPayloadRejectsInDecode) {
  ForecastRequest req;
  req.request_id = 1;
  req.input = small_input();
  Frame frame = reassemble(encode_forecast_request(req), 1 << 10)[0];
  frame.payload.pop_back();
  EXPECT_THROW(decode_forecast_request(frame), WireError);
}

TEST(Wire, TrailingPayloadBytesReject) {
  ForecastRequest req;
  req.request_id = 1;
  req.input = small_input();
  Frame frame = reassemble(encode_forecast_request(req), 1 << 10)[0];
  frame.payload.push_back(0);
  EXPECT_THROW(decode_forecast_request(frame), WireError);
}

TEST(Wire, AbsurdTensorDimsReject) {
  ForecastRequest req;
  req.request_id = 1;
  req.input = small_input();
  Frame frame = reassemble(encode_forecast_request(req), 1 << 10)[0];
  const std::uint32_t huge = 1u << 20;  // > kMaxDim but header-size consistent
  std::memcpy(frame.payload.data(), &huge, sizeof(huge));
  EXPECT_THROW(decode_forecast_request(frame), WireError);
}

TEST(Wire, EmptyPlacementTensorRejects) {
  std::vector<std::uint8_t> payload(12, 0);  // dims 0,0,0 = "no tensor"
  Frame frame;
  frame.type = FrameType::kForecastRequest;
  frame.request_id = 1;
  frame.payload = payload;
  EXPECT_THROW(decode_forecast_request(frame), WireError);
}

TEST(Wire, WrongFrameTypeForDecoderRejects) {
  const Frame metrics = reassemble(encode_metrics_request(1), 20)[0];
  EXPECT_THROW(decode_forecast_request(metrics), WireError);
  EXPECT_THROW(decode_forecast_response(metrics), WireError);
  EXPECT_THROW(decode_text(metrics), WireError);  // kMetricsRequest is not a text frame
}

}  // namespace
}  // namespace paintplace::net
