// Client reconnect/backoff and server idle-timeout tests over real loopback
// sockets: typed ConnectError after bounded retries, riding over a server
// kill/restart with reconnect(), retry during a delayed restart, and the
// server-side idle reaper (net_idle_closed).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>

#include "common/check.h"
#include "net/client.h"
#include "net/server.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::net {
namespace {

using namespace std::chrono_literals;

NetServerConfig quick_config(int replicas = 1) {
  NetServerConfig cfg;
  cfg.pool.replicas = replicas;
  cfg.pool.serve.max_batch = 4;
  cfg.pool.serve.max_wait = 2ms;
  return cfg;
}

ModelFactory tiny_factory() {
  return [] { return serve::testfix::tiny_model(); };
}

/// A TCP port with nothing listening on it: bind an ephemeral listener,
/// read the port back, close it. (Racy in principle, dependable on a
/// loopback test host.)
std::uint16_t unused_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PP_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  PP_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
  socklen_t len = sizeof(addr);
  PP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

RetryPolicy fast_retry(int max_retries) {
  RetryPolicy retry;
  retry.max_retries = max_retries;
  retry.initial_backoff = 5ms;
  retry.max_backoff = 40ms;
  return retry;
}

TEST(ClientReconnect, ConnectErrorCarriesTheAttemptCount) {
  const std::uint16_t port = unused_port();
  try {
    Client client("127.0.0.1", port, kDefaultMaxPayload, fast_retry(/*max_retries=*/2));
    FAIL() << "connect to a dead port unexpectedly succeeded";
  } catch (const ConnectError& e) {
    EXPECT_EQ(e.attempts(), 3);  // max_retries + 1
    EXPECT_NE(std::string(e.what()).find("after 3 attempts"), std::string::npos) << e.what();
  }
}

TEST(ClientReconnect, SingleAttemptByDefault) {
  const std::uint16_t port = unused_port();
  try {
    Client client("127.0.0.1", port);
    FAIL() << "connect to a dead port unexpectedly succeeded";
  } catch (const ConnectError& e) {
    EXPECT_EQ(e.attempts(), 1);
  }
}

TEST(ClientReconnect, RejectsANonsensePolicy) {
  RetryPolicy bad;
  bad.max_retries = -1;
  EXPECT_THROW(Client("127.0.0.1", 1, kDefaultMaxPayload, bad), CheckError);
}

TEST(ClientReconnect, RidesOverAServerKillAndRestart) {
  auto server = std::make_unique<NetServer>(quick_config(), tiny_factory());
  const std::uint16_t port = server->port();

  Client client("127.0.0.1", port, kDefaultMaxPayload, fast_retry(/*max_retries=*/5));
  EXPECT_EQ(client.forecast(serve::testfix::random_input(3)).status, Status::kOk);

  // Kill the server; the established connection is now dead.
  server.reset();

  // Restart on the same port (SO_REUSEADDR) and reconnect the same client.
  NetServerConfig cfg = quick_config();
  cfg.port = port;
  NetServer restarted(cfg, tiny_factory());
  client.reconnect();
  const ForecastResponse resp = client.forecast(serve::testfix::random_input(4));
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.model_version, 1u);  // a fresh server instance
}

TEST(ClientReconnect, RetriesWhileTheServerIsStillComingBack) {
  auto server = std::make_unique<NetServer>(quick_config(), tiny_factory());
  const std::uint16_t port = server->port();
  Client client("127.0.0.1", port, kDefaultMaxPayload, fast_retry(/*max_retries=*/40));
  server.reset();

  // Bring the server back only after the client has started its retry loop;
  // the backoff (up to 40 * 40ms) must bridge the gap.
  std::unique_ptr<NetServer> revived;
  std::thread restarter([port, &revived] {
    std::this_thread::sleep_for(60ms);
    NetServerConfig cfg = quick_config();
    cfg.port = port;
    revived = std::make_unique<NetServer>(cfg, tiny_factory());
  });
  client.reconnect();  // blocks in the retry loop until the listener is back
  EXPECT_EQ(client.forecast(serve::testfix::random_input(5)).status, Status::kOk);
  restarter.join();
}

TEST(NetServerIdle, SilentConnectionsAreClosedAndCounted) {
  NetServerConfig cfg = quick_config();
  cfg.idle_timeout = 50ms;
  NetServer server(cfg, tiny_factory());

  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.forecast(serve::testfix::random_input(6)).status, Status::kOk);

  // Go silent past the timeout; the server reaps the connection.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (server.metrics().idle_closed.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.metrics().idle_closed.load(), 1u);
  // Using the dead connection fails with a typed error (at send or at the
  // EOF-detecting read), never garbage data.
  EXPECT_THROW(
      {
        client.send_metrics_request(99);
        (void)client.read_frame();
      },
      CheckError);
}

TEST(NetServerIdle, ActiveConnectionsStayOpen) {
  NetServerConfig cfg = quick_config();
  cfg.idle_timeout = 120ms;
  NetServer server(cfg, tiny_factory());

  Client client("127.0.0.1", server.port());
  // Keep traffic flowing at well under the timeout; the connection must
  // survive several timeout windows' worth of wall time.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(client.forecast(serve::testfix::random_input(7)).status, Status::kOk);
    std::this_thread::sleep_for(40ms);
  }
  EXPECT_EQ(server.metrics().idle_closed.load(), 0u);
}

}  // namespace
}  // namespace paintplace::net
