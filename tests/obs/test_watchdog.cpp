// Stall-watchdog tests: deterministic tick() detection (report exactly once
// per stuck request, oldest-age gauge tracking, disabled = free), the
// force-retain hook that commits a stalled request's buffered spans through
// the sampler's tail path, and the live loopback case the incident story is
// built on — a wedged replica (long coalesce wait) pushes a request past
// --stall-ms and the stall count rides the PPN1 health frame to the client.
#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace {
namespace {

using obs::Log;
using obs::LogConfig;
using obs::LogFormat;
using obs::LogLevel;
using obs::MetricsRegistry;
using obs::Watchdog;
using obs::WatchdogConfig;

/// Captures every structured line and silences rate limiting so the stall
/// report is always observable; restores the process logger afterwards.
class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = Log::instance().config();
    LogConfig cfg = saved_;
    cfg.min_level = LogLevel::kDebug;
    cfg.format = LogFormat::kKeyValue;
    cfg.rate_limit_per_key = 0;
    Log::instance().configure(cfg);
    Log::instance().reset_rate_limits();
    // The sink runs on whatever thread emits (watchdog monitor, net log
    // loop, this test) — the capture buffer needs its own lock.
    Log::instance().set_sink([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(lines_mu_);
      lines_.push_back(line);
    });
  }
  void TearDown() override {
    Log::instance().set_sink(nullptr);
    Log::instance().configure(saved_);
  }

  bool logged(const std::string& needle) const {
    std::lock_guard<std::mutex> lock(lines_mu_);
    for (const std::string& line : lines_) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  static WatchdogConfig stall_config(double stall_ms) {
    WatchdogConfig cfg;
    cfg.stall_ms = stall_ms;
    return cfg;
  }

  LogConfig saved_;
  mutable std::mutex lines_mu_;
  std::vector<std::string> lines_;
};

TEST_F(WatchdogTest, ReportsAStalledRequestExactlyOnce) {
  Watchdog wd(MetricsRegistry::global());
  wd.configure(stall_config(50.0));
  wd.set_depths_fn([] { return std::vector<std::int64_t>{2, 0}; });

  wd.track(42, /*replica=*/1);
  ASSERT_EQ(wd.tracked(), 1u);
  const double t0 = wd.now_s();

  wd.tick(t0 + 0.010);  // 10ms old: under threshold
  EXPECT_EQ(wd.stalls(), 0u);

  wd.tick(t0 + 0.200);  // 200ms old: stalled
  EXPECT_EQ(wd.stalls(), 1u);
  EXPECT_GE(wd.oldest_request_ms(), 200.0);
  EXPECT_TRUE(logged("watchdog.stall"));
  EXPECT_TRUE(logged("trace=42"));
  EXPECT_TRUE(logged("replica=1"));

  wd.tick(t0 + 0.400);  // still stuck: no duplicate report
  EXPECT_EQ(wd.stalls(), 1u);
  EXPECT_GE(MetricsRegistry::global().gauge("obs_watchdog_stalls").value(), 1.0);

  wd.complete(42);
  EXPECT_EQ(wd.tracked(), 0u);
  wd.tick(t0 + 0.500);
  EXPECT_EQ(wd.oldest_request_ms(), 0.0);  // nothing in flight
}

TEST_F(WatchdogTest, DisabledWatchdogTracksAndReportsNothing) {
  Watchdog wd(MetricsRegistry::global());  // stall_ms defaults to 0
  wd.track(7, 0);
  EXPECT_EQ(wd.tracked(), 0u);  // track is a no-op while disabled
  wd.tick(wd.now_s() + 10.0);
  EXPECT_EQ(wd.stalls(), 0u);
  wd.complete(7);  // unknown id: harmless
}

TEST_F(WatchdogTest, UntracedRequestsAreIgnored) {
  Watchdog wd(MetricsRegistry::global());
  wd.configure(stall_config(50.0));
  wd.track(0, 0);  // trace id 0 = untraced; nothing to force-retain or name
  EXPECT_EQ(wd.tracked(), 0u);
}

TEST_F(WatchdogTest, StallForceRetainsTheBufferedTrace) {
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::Sampler& sampler = tracer.sampler();
  tracer.disable();
  tracer.clear();
  tracer.enable();
  obs::SamplerConfig scfg;
  scfg.sample_every = 1U << 30;  // head-sample ~never: spans buffer provisionally
  scfg.slow_threshold_s = 10.0;
  sampler.configure(scfg);
  obs::Counter& retained_stall =
      MetricsRegistry::global().counter("obs_trace_retained_stall_total");
  const std::uint64_t base_retained = retained_stall.load();

  sampler.begin(99);
  {
    obs::ScopedTraceId scope(99);
    obs::Span span("watchdog.test.span", "test");
  }
  EXPECT_EQ(tracer.recorded(), 0u);  // buffered, not committed

  Watchdog wd(MetricsRegistry::global());
  wd.configure(stall_config(50.0));
  wd.track(99, 0);
  wd.tick(wd.now_s() + 0.200);
  EXPECT_EQ(wd.stalls(), 1u);

  // force_retain committed the buffered span through the tail path …
  EXPECT_EQ(tracer.recorded(), 1u);
  EXPECT_EQ(retained_stall.load() - base_retained, 1u);
  EXPECT_NE(tracer.dump_json().find("watchdog.test.span"), std::string::npos);
  // … and the eventual finish() sees an already-retained trace (kept).
  EXPECT_TRUE(sampler.finish(99, 0.001, obs::RequestOutcome::kOk));

  sampler.disable();
  tracer.disable();
  tracer.clear();
}

TEST_F(WatchdogTest, WedgedReplicaStallReachesTheHealthFrame) {
  net::NetServerConfig cfg;
  cfg.pool.replicas = 1;
  cfg.pool.serve.max_batch = 64;  // a lone request never fills the batch …
  cfg.pool.serve.max_wait = std::chrono::milliseconds(300);  // … and waits 300ms
  cfg.watchdog.stall_ms = 50.0;
  cfg.watchdog.tick_period_s = 0.020;
  net::NetServer server(cfg, [] { return serve::testfix::tiny_model(); });
  ASSERT_GT(server.port(), 0);

  net::Client client("127.0.0.1", server.port());
  // Blocks ~300ms in the coalescing queue: wedged long past stall-ms, while
  // the watchdog thread ticks every 20ms.
  EXPECT_EQ(client.forecast(serve::testfix::random_input(1)).status, net::Status::kOk);

  EXPECT_GE(server.watchdog().stalls(), 1u);
  const net::HealthInfo health = client.health();
  EXPECT_GE(health.watchdog_stalls, 1u);
  EXPECT_EQ(health.watchdog_stalls, server.watchdog().stalls());
  EXPECT_TRUE(logged("watchdog.stall"));
}

}  // namespace
}  // namespace paintplace
