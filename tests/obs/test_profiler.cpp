// Span-stack profiler tests: deterministic folded-stack aggregation driven
// by sample_once(), multi-threaded stack attribution, collapsed-stack export
// format, and the disabled-by-default contract (spans never touch the
// profiler while the profile bit is clear).
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace paintplace::obs {
namespace {

/// Sets the profile bit without start()'s background sampler thread, so
/// tests control exactly how many samples are taken via sample_once().
class ProfileBitScope {
 public:
  ProfileBitScope() {
    detail::g_span_mask.fetch_or(detail::kSpanMaskProfile, std::memory_order_relaxed);
  }
  ~ProfileBitScope() {
    detail::g_span_mask.fetch_and(
        static_cast<std::uint8_t>(~detail::kSpanMaskProfile), std::memory_order_relaxed);
  }
};

std::uint64_t count_of(const Profiler& prof, const std::string& stack) {
  for (const auto& [key, count] : prof.top_k(64)) {
    if (key == stack) return count;
  }
  return 0;
}

TEST(Profiler, FoldsNestedSpansDeterministically) {
  Profiler& prof = Profiler::instance();
  prof.clear();
  ProfileBitScope bit;

  Span outer("prof.outer", "test");
  {
    Span inner("prof.inner", "test");
    for (int i = 0; i < 5; ++i) prof.sample_once();
  }
  prof.sample_once();  // inner popped: only the outer frame remains

  EXPECT_EQ(count_of(prof, "prof.outer;prof.inner"), 5u);
  EXPECT_EQ(count_of(prof, "prof.outer"), 1u);
  EXPECT_EQ(prof.samples(), 6u);
  prof.clear();
}

TEST(Profiler, AttributesStacksPerThread) {
  Profiler& prof = Profiler::instance();
  prof.clear();
  ProfileBitScope bit;

  // Two workers park with distinct nested stacks; the main thread samples a
  // fixed number of times while both are provably inside their spans.
  std::mutex mu;
  std::condition_variable cv;
  int parked = 0;
  bool release = false;
  auto worker = [&](const char* leaf) {
    Span outer("prof.worker", "test");
    Span inner(leaf, "test");
    std::unique_lock<std::mutex> lock(mu);
    parked += 1;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  std::thread a(worker, "prof.leaf_a");
  std::thread b(worker, "prof.leaf_b");
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked == 2; });
  }
  constexpr int kSamples = 7;
  for (int i = 0; i < kSamples; ++i) prof.sample_once();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  a.join();
  b.join();

  EXPECT_EQ(count_of(prof, "prof.worker;prof.leaf_a"), kSamples);
  EXPECT_EQ(count_of(prof, "prof.worker;prof.leaf_b"), kSamples);
  prof.clear();
}

TEST(Profiler, CollapsedExportIsOneStackPerLine) {
  Profiler& prof = Profiler::instance();
  prof.clear();
  ProfileBitScope bit;

  Span outer("prof.export", "test");
  prof.sample_once();
  prof.sample_once();

  const std::string collapsed = prof.collapsed();
  std::istringstream lines(collapsed);
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    ASSERT_NE(line.find(' '), std::string::npos) << "line without count: " << line;
    if (line == "prof.export 2") found = true;
  }
  EXPECT_TRUE(found) << collapsed;
  prof.clear();
}

TEST(Profiler, DisabledSpansNeverReachTheAggregate) {
  Profiler& prof = Profiler::instance();
  prof.clear();
  ASSERT_FALSE(prof.enabled());

  Span span("prof.should_not_appear", "test");
  prof.sample_once();
  EXPECT_EQ(prof.samples(), 0u);
  prof.clear();
}

}  // namespace
}  // namespace paintplace::obs
