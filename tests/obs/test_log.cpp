// Structured-log tests: key=value and JSON-lines rendering, level gating
// (inert builders), per-key rate limiting with suppression accounting
// (suppressed=N on the next window, obs_log_{emitted,suppressed}_total in
// the registry), and key independence — event A saturating its budget must
// not silence event B.
#include "obs/log.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"

namespace paintplace::obs {
namespace {

/// The Log is process-wide; each test captures lines into a local vector
/// and restores the config + default sink afterwards so test_health (which
/// runs a live server in this binary) keeps its normal output.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = Log::instance().config();
    Log::instance().reset_rate_limits();
    Log::instance().set_sink([this](const std::string& line) { lines_.push_back(line); });
  }
  void TearDown() override {
    Log::instance().set_sink(nullptr);
    Log::instance().configure(saved_);
    Log::instance().reset_rate_limits();
  }

  static void configure(LogLevel min_level, LogFormat format, std::uint32_t limit = 0,
                        double window_s = 1.0) {
    LogConfig cfg;
    cfg.min_level = min_level;
    cfg.format = format;
    cfg.rate_limit_per_key = limit;
    cfg.rate_window_s = window_s;
    Log::instance().configure(cfg);
  }

  LogConfig saved_;
  std::vector<std::string> lines_;
};

TEST_F(LogTest, KeyValueRenderingQuotesOnlyWhenNeeded) {
  configure(LogLevel::kDebug, LogFormat::kKeyValue);
  Log::instance()
      .info("net", "listening")
      .kv("port", 7433)
      .kv("bind", "127.0.0.1")
      .kv("note", "has spaces")
      .kv("ratio", 0.5)
      .kv("swap", true);
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_NE(line.find("info net.listening"), std::string::npos);
  EXPECT_NE(line.find("port=7433"), std::string::npos);
  EXPECT_NE(line.find("bind=127.0.0.1"), std::string::npos);
  EXPECT_NE(line.find("note=\"has spaces\""), std::string::npos);  // quoted: embedded space
  EXPECT_NE(line.find("ratio=0.5"), std::string::npos);
  EXPECT_NE(line.find("swap=true"), std::string::npos);
}

TEST_F(LogTest, JsonLinesCarryTheSchemaKeys) {
  configure(LogLevel::kDebug, LogFormat::kJson);
  Log::instance()
      .warn("pool", "shed")
      .kv("reason", "queue \"deep\"")  // embedded quotes must be escaped
      .kv("depth", 64);
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"subsystem\":\"pool\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"shed\""), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"queue \\\"deep\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"depth\":64"), std::string::npos);
}

TEST_F(LogTest, BelowMinimumLevelTheBuilderIsInert) {
  configure(LogLevel::kWarn, LogFormat::kKeyValue);
  const std::uint64_t before = Log::instance().emitted();
  {
    LogLine line = Log::instance().info("net", "stats");
    EXPECT_FALSE(line.live());
    line.kv("ignored", 1);  // must not format anything
  }
  EXPECT_TRUE(lines_.empty());
  EXPECT_EQ(Log::instance().emitted(), before);
  EXPECT_FALSE(Log::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::instance().enabled(LogLevel::kError));
}

TEST_F(LogTest, RateLimiterSuppressesAndReportsOnTheNextWindow) {
  // 2 lines per 50ms window for this (level, subsystem, event) key.
  configure(LogLevel::kDebug, LogFormat::kKeyValue, /*limit=*/2, /*window_s=*/0.05);
  Counter& emitted_total = MetricsRegistry::global().counter("obs_log_emitted_total");
  Counter& suppressed_total = MetricsRegistry::global().counter("obs_log_suppressed_total");
  const std::uint64_t base_emitted = emitted_total.load();
  const std::uint64_t base_suppressed = suppressed_total.load();

  for (int i = 0; i < 5; ++i) {
    Log::instance().info("test", "burst").kv("i", i);
  }
  EXPECT_EQ(lines_.size(), 2u);  // budget of 2, three dropped
  EXPECT_EQ(emitted_total.load() - base_emitted, 2u);
  EXPECT_EQ(suppressed_total.load() - base_suppressed, 3u);

  // The first line of the NEXT window confesses what the limiter dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Log::instance().info("test", "burst").kv("i", 5);
  ASSERT_EQ(lines_.size(), 3u);
  EXPECT_NE(lines_.back().find("suppressed=3"), std::string::npos);
}

TEST_F(LogTest, DistinctEventsRateLimitIndependently) {
  configure(LogLevel::kDebug, LogFormat::kKeyValue, /*limit=*/1, /*window_s=*/60.0);
  Log::instance().info("test", "chatty");
  Log::instance().info("test", "chatty");  // over budget for its key
  Log::instance().info("test", "quiet");   // different key: fresh budget
  Log::instance().error("test", "chatty");  // different level: fresh budget
  ASSERT_EQ(lines_.size(), 3u);
  EXPECT_NE(lines_[1].find("quiet"), std::string::npos);
  EXPECT_NE(lines_[2].find("error"), std::string::npos);
}

}  // namespace
}  // namespace paintplace::obs
