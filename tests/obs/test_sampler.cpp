// Tail-based trace sampler tests: deterministic head decisions (same seed,
// same sequence), retain-on-slow and retain-on-shed/error commits, the
// discard path, head-sampled finish semantics (committed live, no
// retained_error bump), bypass for ids begin() never saw, and the trace-size
// reduction the swarm relies on.
#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace paintplace::obs {
namespace {

/// Counter snapshots around a test body; all four decision counters live in
/// the global registry and the test binary shares them across TESTs.
struct CounterDeltas {
  CounterDeltas()
      : sampled(MetricsRegistry::global().counter("obs_trace_sampled_total")),
        retained_slow(MetricsRegistry::global().counter("obs_trace_retained_slow_total")),
        retained_error(MetricsRegistry::global().counter("obs_trace_retained_error_total")),
        discarded(MetricsRegistry::global().counter("obs_trace_discarded_total")) {
    base_sampled = sampled.load();
    base_slow = retained_slow.load();
    base_error = retained_error.load();
    base_discarded = discarded.load();
  }
  std::uint64_t d_sampled() const { return sampled.load() - base_sampled; }
  std::uint64_t d_slow() const { return retained_slow.load() - base_slow; }
  std::uint64_t d_error() const { return retained_error.load() - base_error; }
  std::uint64_t d_discarded() const { return discarded.load() - base_discarded; }

  Counter& sampled;
  Counter& retained_slow;
  Counter& retained_error;
  Counter& discarded;
  std::uint64_t base_sampled, base_slow, base_error, base_discarded;
};

/// Every test drives the process tracer's sampler; this fixture restores
/// the record-everything default afterwards so test_trace keeps passing in
/// the same binary.
class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().disable();
    tracer().clear();
    sampler().disable();
  }
  void TearDown() override {
    sampler().disable();
    tracer().disable();
    tracer().clear();
  }

  static Tracer& tracer() { return Tracer::instance(); }
  static Sampler& sampler() { return Tracer::instance().sampler(); }

  /// Runs one request: begin, record `spans` spans under its trace id, then
  /// finish with the given latency/outcome.
  static void run_request(std::uint64_t id, double latency_s, RequestOutcome outcome,
                          int spans = 1) {
    sampler().begin(id);
    {
      ScopedTraceId scope(id);
      for (int i = 0; i < spans; ++i) {
        Span span("sampler.test.span", "test");
      }
    }
    sampler().finish(id, latency_s, outcome);
  }

  static SamplerConfig config(std::uint64_t every, double slow_s = 10.0) {
    SamplerConfig cfg;
    cfg.sample_every = every;
    cfg.slow_threshold_s = slow_s;
    cfg.seed = 7;
    return cfg;
  }
};

/// The head decision is observable through offer(): false = head-sampled
/// (record live), true = buffered provisionally.
std::vector<bool> head_decisions(Sampler& s, int n, std::uint64_t first_id) {
  std::vector<bool> heads;
  SpanEvent event{};
  std::strncpy(event.name, "probe", sizeof(event.name) - 1);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t id = first_id + static_cast<std::uint64_t>(i);
    s.begin(id);
    event.trace_id = id;
    heads.push_back(!s.offer(event, nullptr));
    s.finish(id, 0.0, RequestOutcome::kOk);  // fast + ok: buffered ones discard
  }
  return heads;
}

TEST_F(SamplerTest, HeadDecisionsAreDeterministicAcrossReset) {
  sampler().configure(config(4));
  const std::vector<bool> first = head_decisions(sampler(), 64, 1000);
  sampler().reset();
  const std::vector<bool> second = head_decisions(sampler(), 64, 5000);
  EXPECT_EQ(first, second);  // same seed + sequence position, ids irrelevant

  int heads = 0;
  for (bool h : first) heads += h ? 1 : 0;
  // 1-in-4 sampling over 64 requests: the deterministic hash keeps the rate
  // near the target (exact shape depends on the hash, not on luck).
  EXPECT_GE(heads, 8);
  EXPECT_LE(heads, 32);
}

TEST_F(SamplerTest, SlowRequestIsAlwaysCommitted) {
  CounterDeltas deltas;
  tracer().enable();
  sampler().configure(config(1U << 30, /*slow_s=*/0.5));  // head-sample ~never

  run_request(1, /*latency_s=*/2.0, RequestOutcome::kOk, /*spans=*/3);
  EXPECT_EQ(deltas.d_slow(), 1u);
  EXPECT_EQ(deltas.d_discarded(), 0u);
  EXPECT_EQ(tracer().recorded(), 3u);  // all three spans committed
  EXPECT_NE(tracer().dump_json().find("sampler.test.span"), std::string::npos);
}

TEST_F(SamplerTest, ShedAndErrorOutcomesAreRetained) {
  CounterDeltas deltas;
  tracer().enable();
  sampler().configure(config(1U << 30));

  run_request(2, 0.001, RequestOutcome::kShed);
  run_request(3, 0.001, RequestOutcome::kError);
  EXPECT_EQ(deltas.d_error(), 2u);
  EXPECT_EQ(tracer().recorded(), 2u);
}

TEST_F(SamplerTest, FastHealthyRequestIsDiscarded) {
  CounterDeltas deltas;
  tracer().enable();
  sampler().configure(config(1U << 30));

  run_request(4, 0.001, RequestOutcome::kOk, /*spans=*/5);
  EXPECT_EQ(deltas.d_discarded(), 1u);
  EXPECT_EQ(tracer().recorded(), 0u);  // nothing committed
  EXPECT_EQ(sampler().pending(), 0u);  // and nothing left buffered
}

TEST_F(SamplerTest, HeadSampledRequestsCommitLiveEvenWhenShed) {
  CounterDeltas deltas;
  tracer().enable();
  sampler().configure(config(1));  // sample_every=1: everything head-sampled

  run_request(5, 0.001, RequestOutcome::kShed);
  // Counted at begin() as head-sampled; finish() must not double-count it
  // as a tail retention — the coverage invariant the swarm bench asserts is
  // retained_error + head_sampled >= sheds.
  EXPECT_EQ(deltas.d_sampled(), 1u);
  EXPECT_EQ(deltas.d_error(), 0u);
  EXPECT_EQ(tracer().recorded(), 1u);  // recorded live, not via commit
}

TEST_F(SamplerTest, UnknownTraceIdsBypassTheSampler) {
  tracer().enable();
  sampler().configure(config(1U << 30));

  // Id 0 (non-request instrumentation) and an id begin() never saw both
  // record directly even while sampling is active.
  { Span span("sampler.test.free", "test"); }
  {
    ScopedTraceId scope(777777);
    Span span("sampler.test.foreign", "test");
  }
  EXPECT_EQ(tracer().recorded(), 2u);
}

TEST_F(SamplerTest, SamplingShrinksTheTraceAtLeastTenfold) {
  tracer().enable();

  // Full tracing: every request's spans land in the rings.
  for (int i = 0; i < 400; ++i) {
    ScopedTraceId scope(static_cast<std::uint64_t>(10000 + i));
    Span a("sampler.test.outer", "test");
    Span b("sampler.test.inner", "test");
  }
  const std::size_t full_events = tracer().recorded();
  const std::size_t full_bytes = tracer().dump_json().size();
  tracer().clear();

  sampler().configure(config(100));
  for (int i = 0; i < 400; ++i) {
    run_request(static_cast<std::uint64_t>(20000 + i), 0.001, RequestOutcome::kOk,
                /*spans=*/2);
  }
  const std::size_t sampled_events = tracer().recorded();
  const std::size_t sampled_bytes = tracer().dump_json().size();

  EXPECT_EQ(full_events, 800u);
  EXPECT_GT(sampled_events, 0u);  // the head-sampled steady state survives
  EXPECT_GE(full_events, 10 * sampled_events);
  EXPECT_GE(full_bytes, 10 * sampled_bytes);
}

}  // namespace
}  // namespace paintplace::obs
