// SloMonitor tests, driven entirely through the public tick(double) with
// synthetic timestamps and a private MetricsRegistry: windowed rate and p99
// computation, healthy -> warning -> breached transitions on the error burn
// rate, the window-edge eviction rule (the delta base is the youngest
// snapshot at or past the edge), and the exported slo_* gauges.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace paintplace::obs {
namespace {

class SloMonitorTest : public ::testing::Test {
 protected:
  SloMonitorTest()
      : latency_(registry_.histogram("t_latency_seconds")),
        completed_(registry_.counter("t_completed")),
        failed_(registry_.counter("t_failed")),
        shed_a_(registry_.counter("t_shed_a")),
        shed_b_(registry_.counter("t_shed_b")) {}

  SloConfig config() const {
    SloConfig cfg;
    cfg.window_s = 60.0;
    cfg.latency_objective_s = 0.100;
    cfg.error_rate_objective = 0.10;
    cfg.warning_burn = 0.5;
    cfg.latency_histogram = "t_latency_seconds";
    cfg.completed_counter = "t_completed";
    cfg.failed_counter = "t_failed";
    cfg.shed_counters[0] = "t_shed_a";
    cfg.shed_counters[1] = "t_shed_b";
    return cfg;
  }

  MetricsRegistry registry_;
  Histogram& latency_;
  Counter& completed_;
  Counter& failed_;
  Counter& shed_a_;
  Counter& shed_b_;
};

TEST_F(SloMonitorTest, WindowedRatesAndStateTransitions) {
  SloMonitor monitor(config(), registry_);

  monitor.tick(0.0);
  EXPECT_EQ(monitor.status().window_requests, 0u);
  EXPECT_EQ(monitor.status().state, SloState::kHealthy);

  // t=10: 100 clean requests at ~10ms. The 10ms samples land in the
  // [8.192ms, 16.384ms) histogram bucket, so the interpolated windowed p99
  // must come back inside it.
  for (int i = 0; i < 100; ++i) latency_.record(0.010);
  completed_.fetch_add(100);
  monitor.tick(10.0);
  {
    const SloMonitor::Status s = monitor.status();
    EXPECT_EQ(s.window_requests, 100u);
    EXPECT_DOUBLE_EQ(s.window_error_rate, 0.0);
    EXPECT_GE(s.window_p99_s, 0.008);
    EXPECT_LE(s.window_p99_s, 0.017);
    EXPECT_NEAR(s.latency_burn_rate, s.window_p99_s / 0.100, 1e-12);
    EXPECT_EQ(s.state, SloState::kHealthy);
  }

  // t=20: 7 failures over 200 completed -> error burn 0.35, still healthy.
  completed_.fetch_add(100);
  failed_.fetch_add(7);
  monitor.tick(20.0);
  EXPECT_EQ(monitor.status().state, SloState::kHealthy);
  EXPECT_NEAR(monitor.status().error_burn_rate, 0.35, 1e-9);

  // t=30: 20 more failures -> 27/200 = 13.5% error rate, burn 1.35 > 1.
  failed_.fetch_add(20);
  monitor.tick(30.0);
  EXPECT_EQ(monitor.status().state, SloState::kBreached);
  EXPECT_NEAR(monitor.status().window_error_rate, 0.135, 1e-9);
  EXPECT_EQ(registry_.gauge("slo_state").value(), 2.0);

  // t=40: traffic recovers (200 more clean) -> 27/400, burn 0.675: warning.
  completed_.fetch_add(200);
  monitor.tick(40.0);
  EXPECT_EQ(monitor.status().state, SloState::kWarning);
  EXPECT_EQ(registry_.gauge("slo_state").value(), 1.0);

  // t=75: the t=0 snapshot is evicted; the delta base becomes t=10 — the
  // youngest snapshot at or past the window edge (75 - 60 = 15). Against
  // that base: 300 completed, 27 failed -> 9% error rate, burn 0.9. All the
  // latency samples predate t=10, so the windowed p99 collapses to 0.
  monitor.tick(75.0);
  {
    const SloMonitor::Status s = monitor.status();
    EXPECT_EQ(s.window_requests, 300u);
    EXPECT_NEAR(s.window_error_rate, 27.0 / 300.0, 1e-9);
    EXPECT_EQ(s.state, SloState::kWarning);
    EXPECT_DOUBLE_EQ(s.window_p99_s, 0.0);
  }

  // t=130: everything before t=70 ages out and no new traffic arrived —
  // rates return to zero and the state recovers.
  monitor.tick(130.0);
  {
    const SloMonitor::Status s = monitor.status();
    EXPECT_EQ(s.window_requests, 0u);
    EXPECT_DOUBLE_EQ(s.window_error_rate, 0.0);
    EXPECT_DOUBLE_EQ(s.window_p99_s, 0.0);
    EXPECT_EQ(s.state, SloState::kHealthy);
    EXPECT_EQ(registry_.gauge("slo_state").value(), 0.0);
  }
}

TEST_F(SloMonitorTest, ShedRequestsCountTowardErrorRate) {
  SloMonitor monitor(config(), registry_);
  monitor.tick(0.0);

  // 90 completed + 10 shed across both shed counters: the window saw 100
  // requests, 10 of them errors by the SLO's definition.
  completed_.fetch_add(90);
  shed_a_.fetch_add(6);
  shed_b_.fetch_add(4);
  monitor.tick(5.0);

  const SloMonitor::Status s = monitor.status();
  EXPECT_EQ(s.window_requests, 100u);
  EXPECT_NEAR(s.window_error_rate, 0.10, 1e-9);
  EXPECT_NEAR(s.error_burn_rate, 1.0, 1e-9);  // exactly at objective
  EXPECT_EQ(s.state, SloState::kWarning);     // breach requires burn > 1
}

TEST_F(SloMonitorTest, MissingInstrumentsReadAsZero) {
  SloConfig cfg = config();
  cfg.latency_histogram = "never_registered";
  cfg.completed_counter = "also_never_registered";
  SloMonitor monitor(cfg, registry_);
  monitor.tick(0.0);
  monitor.tick(1.0);
  EXPECT_EQ(monitor.status().window_requests, 0u);
  EXPECT_EQ(monitor.status().state, SloState::kHealthy);
}

}  // namespace
}  // namespace paintplace::obs
