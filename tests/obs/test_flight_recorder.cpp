// Flight-recorder tests: ring wraparound keeps exactly the newest
// kEventsPerThread events, the programmatic dump carries the post-mortem
// schema (build identity, per-thread span stacks, events, metrics snapshot)
// and parses back by substring, record-time sanitization keeps the dump
// JSON-clean, and the forensic span hooks mirror live obs::Span nesting.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace paintplace::obs {
namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// enable() is sticky by design (a black box does not turn off mid-flight);
/// each test just clears the rings so earlier tests' events don't leak in.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::instance().enable();
    FlightRecorder::instance().clear();
  }
  void TearDown() override { FlightRecorder::instance().clear(); }

  static std::string dump_to_temp(const char* name) {
    const std::string path = ::testing::TempDir() + name;
    EXPECT_TRUE(FlightRecorder::instance().dump(path, /*signal_number=*/11));
    return slurp(path);
  }
};

TEST_F(FlightRecorderTest, RingKeepsOnlyTheNewestEventsAfterWraparound) {
  const std::size_t total = FlightRecorder::kEventsPerThread + 40;
  for (std::size_t i = 0; i < total; ++i) {
    const std::string msg = "mark-" + std::to_string(i);
    FlightRecorder::record(EventKind::kMark, /*trace_id=*/i, msg.c_str(),
                           static_cast<std::int64_t>(i), 0);
  }
  // recorded() saturates at ring capacity per thread.
  EXPECT_EQ(FlightRecorder::instance().recorded(), FlightRecorder::kEventsPerThread);

  const std::string dump = dump_to_temp("fr_wrap.json");
  // The oldest 40 events were overwritten; the newest survive in order.
  EXPECT_EQ(dump.find("\"msg\":\"mark-39\""), std::string::npos);
  EXPECT_NE(dump.find("\"msg\":\"mark-40\""), std::string::npos);
  EXPECT_NE(dump.find("\"msg\":\"mark-" + std::to_string(total - 1) + "\""), std::string::npos);
  const std::size_t first_kept = dump.find("\"msg\":\"mark-40\"");
  const std::size_t last_kept = dump.find("\"msg\":\"mark-" + std::to_string(total - 1) + "\"");
  EXPECT_LT(first_kept, last_kept);  // oldest-to-newest within the thread
}

TEST_F(FlightRecorderTest, DumpCarriesSchemaBuildSpansEventsAndMetrics) {
  FlightRecorder::record(EventKind::kRequest, 42, "admitted", /*a=*/1, /*b=*/3);
  FlightRecorder::record(EventKind::kStall, 42, "stall", /*a=*/250, /*b=*/1);
  FlightRecorder::push_span("net.request");
  FlightRecorder::push_span("serve.run_batch");
  MetricsRegistry::global().counter("obs_fr_test_marker", "flight recorder test").fetch_add(1);
  FlightRecorder::instance().refresh_metrics_snapshot();

  const std::string dump = dump_to_temp("fr_schema.json");
  FlightRecorder::pop_span();
  FlightRecorder::pop_span();

  EXPECT_EQ(dump.rfind("{\"schema\":\"paintplace-postmortem-v1\",\"signal\":11", 0), 0u);
  EXPECT_NE(dump.find("\"pid\":"), std::string::npos);
  EXPECT_NE(dump.find("\"build\":{\"git_sha\":\""), std::string::npos);
  EXPECT_NE(dump.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(dump.find("\"native_kernel\":"), std::string::npos);
  // This thread's span stack, bottom to top.
  EXPECT_NE(dump.find("\"span_stack\":[\"net.request\",\"serve.run_batch\"]"),
            std::string::npos);
  // Events carry kind names and both payload integers.
  EXPECT_NE(dump.find("\"kind\":\"request\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"stall\""), std::string::npos);
  EXPECT_NE(dump.find("\"trace\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"a\":250"), std::string::npos);
  // The metrics snapshot embeds the escaped registry exposition.
  EXPECT_NE(dump.find("\"metrics\":\""), std::string::npos);
  EXPECT_NE(dump.find("obs_fr_test_marker"), std::string::npos);
  // Balanced object, newline-terminated (the CI checker json.loads()es it).
  EXPECT_EQ(dump.back(), '\n');
  EXPECT_EQ(dump[dump.size() - 2], '}');
}

TEST_F(FlightRecorderTest, MessagesAreSanitizedAtRecordTime) {
  FlightRecorder::record(EventKind::kMark, 0, "quote\" slash\\ newline\n tab\t");
  const std::string dump = dump_to_temp("fr_sanitize.json");
  // The JSON-breaking bytes became underscores; no raw quote/backslash from
  // the message survives into the events array.
  EXPECT_NE(dump.find("\"msg\":\"quote_ slash_ newline_ tab_\""), std::string::npos);
}

TEST_F(FlightRecorderTest, LiveSpansMaintainTheForensicStack) {
  // enable() flips kSpanMaskForensics, so a plain obs::Span pushes its name.
  std::string dump;
  {
    Span outer("fr.test.outer", "test");
    Span inner("fr.test.inner", "test");
    dump = dump_to_temp("fr_spans.json");
  }
  EXPECT_NE(dump.find("\"span_stack\":[\"fr.test.outer\",\"fr.test.inner\"]"),
            std::string::npos);
  // Both spans popped on scope exit: a fresh dump shows an empty stack.
  const std::string after = dump_to_temp("fr_spans_after.json");
  EXPECT_NE(after.find("\"span_stack\":[]"), std::string::npos);
}

}  // namespace
}  // namespace paintplace::obs
