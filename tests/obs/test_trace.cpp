// obs tracing tests: disabled-span inertness, span nesting by time
// containment, trace-id propagation across threads, ring-buffer wraparound,
// and chrome-trace JSON validity (the dump is parsed back with a small
// stand-alone JSON parser rather than substring checks alone).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "nn/gemm.h"

namespace paintplace::obs {
namespace {

// ---- Minimal JSON parser (validity + event extraction) ----------------------
//
// Just enough of RFC 8259 to verify the dump is well-formed JSON: objects,
// arrays, strings with escapes, numbers, true/false/null. Parse failure
// means chrome://tracing would reject the file.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}

  bool parse_document() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool parse_value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        if (esc == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          pos_ += 6;
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' && esc != 'n' &&
            esc != 'r' && esc != 't') {
          return false;
        }
        pos_ += 2;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      ++pos_;
    }
    return false;
  }

  bool parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > begin;
  }

  bool parse_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool valid_json(const std::string& text) { return JsonCursor(text).parse_document(); }

/// ts/dur of the first event whose name matches, pulled from the dump (the
/// tracer emits one event per line, so line-scanning is reliable).
bool find_event(const std::string& dump, const std::string& name, std::uint64_t* ts,
                std::uint64_t* dur) {
  const std::string needle = "{\"name\":\"" + name + "\"";
  const std::size_t at = dump.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t ts_at = dump.find("\"ts\":", at);
  if (ts_at == std::string::npos) return false;
  unsigned long long ts_v = 0, dur_v = 0;
  if (std::sscanf(dump.c_str() + ts_at, "\"ts\":%llu,\"dur\":%llu", &ts_v, &dur_v) != 2) {
    return false;
  }
  *ts = ts_v;
  *dur = dur_v;
  return true;
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

/// The tracer is a process singleton; every test runs inside this guard so
/// enabled state and recorded events never leak between tests.
struct TracerGuard {
  TracerGuard() {
    Tracer::instance().clear();
    Tracer::instance().enable();
  }
  ~TracerGuard() {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

void spin_for_us(std::uint64_t us) {
  const std::uint64_t start = Tracer::instance().now_us();
  while (Tracer::instance().now_us() - start < us) {
  }
}

// ---- Tests ------------------------------------------------------------------

TEST(Trace, DisabledSpanIsInertAndRecordsNothing) {
  Tracer::instance().disable();
  Tracer::instance().clear();
  {
    Span span("should.not.exist", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", std::int64_t{1});  // no-op, must not crash
  }
  EXPECT_EQ(Tracer::instance().recorded(), 0u);
}

TEST(Trace, SpanRecordsNameCategoryAndArgs) {
  TracerGuard guard;
  {
    Span span("unit.example", "test");
    EXPECT_TRUE(span.active());
    span.arg("count", std::int64_t{42});
    span.arg("ratio", 0.5);
    span.arg("mode", "fast");
  }
  EXPECT_EQ(Tracer::instance().recorded(), 1u);
  const std::string dump = Tracer::instance().dump_json();
  EXPECT_TRUE(valid_json(dump)) << dump;
  EXPECT_NE(dump.find("\"name\":\"unit.example\""), std::string::npos);
  EXPECT_NE(dump.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(dump.find("\"mode\":\"fast\""), std::string::npos);
}

TEST(Trace, NestedSpansAreContainedInTime) {
  TracerGuard guard;
  {
    Span outer("unit.outer", "test");
    spin_for_us(200);
    {
      Span inner("unit.inner", "test");
      spin_for_us(200);
    }
    spin_for_us(200);
  }
  const std::string dump = Tracer::instance().dump_json();
  ASSERT_TRUE(valid_json(dump)) << dump;
  std::uint64_t outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  ASSERT_TRUE(find_event(dump, "unit.outer", &outer_ts, &outer_dur)) << dump;
  ASSERT_TRUE(find_event(dump, "unit.inner", &inner_ts, &inner_dur)) << dump;
  // chrome://tracing nests by time containment: the inner interval must sit
  // strictly inside the outer one.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
  EXPECT_GE(inner_dur, 150u);
  EXPECT_GE(outer_dur, inner_dur);
}

TEST(Trace, TraceIdPropagatesAcrossThreads) {
  TracerGuard guard;
  const std::uint64_t id = TraceContext::next_id();
  {
    const ScopedTraceId scope(id);
    Span span("unit.reader", "test");
  }
  std::thread worker([id] {
    // A worker thread (batch worker, writer) adopts the request's id.
    const ScopedTraceId scope(id);
    Span span("unit.worker", "test");
  });
  worker.join();
  {
    Span span("unit.untraced", "test");  // no ScopedTraceId: no trace arg
  }
  const std::string dump = Tracer::instance().dump_json();
  ASSERT_TRUE(valid_json(dump)) << dump;
  const std::string tag = "\"trace\":" + std::to_string(id);
  EXPECT_EQ(count_occurrences(dump, tag), 2u) << dump;
  const std::size_t untraced = dump.find("\"name\":\"unit.untraced\"");
  ASSERT_NE(untraced, std::string::npos);
  const std::size_t line_end = dump.find('\n', untraced);
  EXPECT_EQ(dump.substr(untraced, line_end - untraced).find("\"trace\":"), std::string::npos);
}

TEST(Trace, ScopedTraceIdRestoresThePreviousId) {
  const std::uint64_t outer_id = TraceContext::next_id();
  const std::uint64_t inner_id = TraceContext::next_id();
  const std::uint64_t before = TraceContext::current();
  {
    const ScopedTraceId outer(outer_id);
    EXPECT_EQ(TraceContext::current(), outer_id);
    {
      const ScopedTraceId inner(inner_id);
      EXPECT_EQ(TraceContext::current(), inner_id);
    }
    EXPECT_EQ(TraceContext::current(), outer_id);
  }
  EXPECT_EQ(TraceContext::current(), before);
}

TEST(Trace, NextIdIsUniqueAndNeverZero) {
  std::uint64_t prev = TraceContext::next_id();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = TraceContext::next_id();
    EXPECT_NE(id, 0u);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Trace, RingWrapsAroundKeepingTheNewestEvents) {
  TracerGuard guard;
  constexpr std::size_t kOverflow = 123;
  // One dedicated thread so every event lands in a single ring.
  std::thread writer([] {
    for (std::size_t i = 0; i < Tracer::kRingCapacity + kOverflow; ++i) {
      Span span("unit.wrap", "test");
    }
  });
  writer.join();
  EXPECT_EQ(Tracer::instance().recorded(), Tracer::kRingCapacity);
  EXPECT_EQ(Tracer::instance().dropped(), kOverflow);
  // The dump must still be valid JSON at full-ring size.
  const std::string dump = Tracer::instance().dump_json();
  EXPECT_TRUE(valid_json(dump));
  EXPECT_EQ(count_occurrences(dump, "\"name\":\"unit.wrap\""), Tracer::kRingCapacity);
}

TEST(Trace, ClearDropsEverything) {
  TracerGuard guard;
  { Span span("unit.cleared", "test"); }
  ASSERT_GE(Tracer::instance().recorded(), 1u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().recorded(), 0u);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);
  const std::string dump = Tracer::instance().dump_json();
  EXPECT_TRUE(valid_json(dump)) << dump;
  EXPECT_EQ(dump.find("\"name\""), std::string::npos);
}

TEST(Trace, EmptyDumpIsValidJson) {
  Tracer::instance().disable();
  Tracer::instance().clear();
  EXPECT_TRUE(valid_json(Tracer::instance().dump_json()));
}

TEST(Trace, StringArgsAreJsonEscaped) {
  TracerGuard guard;
  {
    Span span("unit.escape", "test");
    span.arg("tricky", "a\"b\\c\nd\te");
  }
  const std::string dump = Tracer::instance().dump_json();
  EXPECT_TRUE(valid_json(dump)) << dump;
  EXPECT_NE(dump.find("a\\\"b\\\\c\\nd\\te"), std::string::npos) << dump;
}

TEST(Trace, FlopsDeriveAGflopPerSecondArg) {
  TracerGuard guard;
  {
    Span span("unit.flops", "test");
    span.flops(1e6);
    spin_for_us(100);
  }
  const std::string dump = Tracer::instance().dump_json();
  ASSERT_TRUE(valid_json(dump)) << dump;
  EXPECT_NE(dump.find("\"gflop_per_s\":"), std::string::npos) << dump;
}

TEST(Trace, GemmCallEmitsShapeAnnotatedSpan) {
  TracerGuard guard;
  const Index M = 8, N = 8, K = 8;
  std::vector<float> A(static_cast<std::size_t>(M * K), 0.5f);
  std::vector<float> B(static_cast<std::size_t>(K * N), 0.25f);
  std::vector<float> C(static_cast<std::size_t>(M * N), 0.0f);
  nn::sgemm(M, N, K, 1.0f, A.data(), B.data(), 0.0f, C.data());
  const std::string dump = Tracer::instance().dump_json();
  ASSERT_TRUE(valid_json(dump)) << dump;
  const std::size_t at = dump.find("\"name\":\"gemm.sgemm\"");
  ASSERT_NE(at, std::string::npos) << dump;
  const std::string line = dump.substr(at, dump.find('\n', at) - at);
  EXPECT_NE(line.find("\"M\":8"), std::string::npos) << line;
  EXPECT_NE(line.find("\"N\":8"), std::string::npos) << line;
  EXPECT_NE(line.find("\"K\":8"), std::string::npos) << line;
  EXPECT_NE(line.find("\"backend\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"gflop_per_s\":"), std::string::npos) << line;
}

TEST(Trace, LongNamesAreTruncatedNotOverflowed) {
  TracerGuard guard;
  const std::string long_name(200, 'x');
  { Span span(long_name, "test"); }
  const std::string dump = Tracer::instance().dump_json();
  EXPECT_TRUE(valid_json(dump)) << dump;
  EXPECT_NE(dump.find(std::string(47, 'x')), std::string::npos);
  EXPECT_EQ(dump.find(std::string(48, 'x')), std::string::npos);
}

}  // namespace
}  // namespace paintplace::obs
