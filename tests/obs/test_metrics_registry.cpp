// obs::MetricsRegistry tests: get-or-create identity, kind safety, histogram
// bucket math against exact percentiles, concurrent registration, and the
// Prometheus text exposition invariants (cumulative monotone buckets,
// le="+Inf" == count).
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.h"

namespace paintplace::obs {
namespace {

TEST(MetricsRegistry, GetOrCreateBindsTheSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("requests_total", "help text");
  Counter& b = reg.counter("requests_total");
  EXPECT_EQ(&a, &b);
  a.fetch_add(3);
  EXPECT_EQ(b.load(), 3u);

  Histogram& h1 = reg.histogram("latency_seconds");
  Histogram& h2 = reg.histogram("latency_seconds");
  EXPECT_EQ(&h1, &h2);

  Gauge& g1 = reg.gauge("depth");
  Gauge& g2 = reg.gauge("depth");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("a_metric");
  EXPECT_THROW(reg.gauge("a_metric"), CheckError);
  EXPECT_THROW(reg.histogram("a_metric"), CheckError);
  reg.histogram("h_metric");
  EXPECT_THROW(reg.counter("h_metric"), CheckError);
}

TEST(MetricsRegistry, NamesAreSorted) {
  MetricsRegistry reg;
  reg.counter("zebra");
  reg.gauge("aardvark");
  reg.histogram("middle");
  const std::vector<std::string> names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(MetricsRegistry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(Gauge, SetAndRead) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("speed");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(Histogram, SumIsExactToAMillionth) {
  Histogram h;
  h.record(0.5);
  h.record(0.25);
  h.record(1e-6);
  EXPECT_NEAR(h.sum(), 0.750001, 1e-9);
  EXPECT_EQ(h.count(), 3u);
}

// Every log2 bucket spans a factor of two, so an interpolated quantile can
// sit at most a factor ~2 from the exact percentile of the recorded set.
TEST(Histogram, QuantilesTrackExactPercentilesWithinBucketResolution) {
  Histogram h;
  std::vector<double> values;
  // Geometric sweep across many buckets plus a dense cluster in one bucket.
  for (int i = 0; i < 200; ++i) {
    const double v = 1e-5 * std::pow(1.06, i);  // ~1e-5 .. ~1.1
    values.push_back(v);
    h.record(v);
  }
  for (int i = 0; i < 100; ++i) {
    values.push_back(3e-3);
    h.record(3e-3);
  }
  std::sort(values.begin(), values.end());

  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    const double exact = values[rank];
    const double approx = h.quantile(q);
    EXPECT_GE(approx, exact / 2.2) << "q=" << q;
    EXPECT_LE(approx, exact * 2.2) << "q=" << q;
  }
}

TEST(Histogram, QuantileIsMonotone) {
  Histogram h;
  for (int i = 1; i <= 500; ++i) h.record(static_cast<double>(i) * 1e-4);
  double prev = 0.0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(MetricsRegistry, ConcurrentGetOrCreateAndIncrement) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        // Re-lookup on purpose: the get-or-create path itself is under test.
        reg.counter("shared_total").fetch_add(1);
        reg.histogram("shared_seconds").record(1e-3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared_total").load(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("shared_seconds").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, PrometheusExpositionFormat) {
  MetricsRegistry reg;
  reg.counter("requests_total", "requests served").fetch_add(7);
  reg.gauge("queue_depth").set(3.0);
  Histogram& h = reg.histogram("latency_seconds", "request latency");
  h.record(1e-3);
  h.record(2e-3);
  h.record(1.0);

  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP requests_total requests served\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3\n"), std::string::npos);

  // Cumulative buckets: counts never decrease with growing le, and the +Inf
  // bucket equals _count.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t prev = 0, inf_count = 0;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.rfind("latency_seconds_bucket{le=", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t cum = std::stoull(line.substr(space + 1));
    EXPECT_GE(cum, prev) << line;
    prev = cum;
    if (line.find("le=\"+Inf\"") != std::string::npos) {
      saw_inf = true;
      inf_count = cum;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_count, 3u);
}

TEST(MetricsRegistry, RenderFilterDropsExcludedNames) {
  MetricsRegistry reg;
  reg.counter("net_requests_total").fetch_add(1);
  reg.counter("gemm_calls_total").fetch_add(1);
  const std::string text = reg.render_prometheus(
      [](const std::string& name) { return name.rfind("net_", 0) != 0; });
  EXPECT_EQ(text.find("net_requests_total"), std::string::npos);
  EXPECT_NE(text.find("gemm_calls_total 1\n"), std::string::npos);
}

TEST(MetricsRegistry, InfoMetricRendersLabelsAndIsReplaceable) {
  MetricsRegistry reg;
  reg.set_info("build_info", "git_sha=\"abc\",backend=\"cpu\"", "process identity");
  EXPECT_NE(reg.render_prometheus().find("build_info{git_sha=\"abc\",backend=\"cpu\"} 1\n"),
            std::string::npos);

  // Re-registering replaces the labels (identity, not a time series).
  reg.set_info("build_info", "git_sha=\"abc\",backend=\"cpu_opt\"");
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("backend=\"cpu_opt\"} 1\n"), std::string::npos);
  EXPECT_EQ(text.find("backend=\"cpu\"}"), std::string::npos);
}

TEST(MetricsRegistry, CallbackGaugeEvaluatesAtExposition) {
  MetricsRegistry reg;
  double value = 1.5;
  reg.gauge_callback("uptime_seconds", [&value] { return value; });
  EXPECT_NE(reg.render_prometheus().find("uptime_seconds 1.5\n"), std::string::npos);
  value = 2.5;  // no re-registration needed: the callback is live
  EXPECT_NE(reg.render_prometheus().find("uptime_seconds 2.5\n"), std::string::npos);
}

TEST(MetricsRegistry, FindReturnsOnlyMatchingKinds) {
  MetricsRegistry reg;
  reg.counter("c").fetch_add(3);
  reg.histogram("h").record(0.5);

  ASSERT_NE(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_counter("c")->load(), 3u);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);

  // Absent names and kind mismatches both come back null — find never
  // creates (the SloMonitor polls by name before the instruments exist).
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_counter("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("c"), nullptr);
}

TEST(Histogram, QuantileOfRawBucketsMatchesALiveHistogram) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);  // 1ms .. 1s

  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    buckets[static_cast<std::size_t>(b)] = h.bucket_count(b);
  }
  for (double q : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(Histogram::quantile_of(buckets, q), h.quantile(q)) << "q=" << q;
  }
  // Empty bucket arrays quantile to zero (a windowed delta with no traffic).
  EXPECT_DOUBLE_EQ(Histogram::quantile_of({}, 0.99), 0.0);
}

}  // namespace
}  // namespace paintplace::obs
