// Health-frame tests: PPN1 kHealthRequest/kHealthResponse wire round-trip
// (including chopped-stream reassembly), and the end-to-end probe against a
// live loopback NetServer — identity fields from build_info, SLO status from
// the monitor, and per-replica admission depths.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/build_info.h"
#include "tests/serve/serve_fixtures.h"

namespace paintplace::net {
namespace {

/// Feeds `bytes` in chunks of `chunk` and drains all completed frames.
std::vector<Frame> reassemble(const std::vector<std::uint8_t>& bytes, std::size_t chunk) {
  FrameReader reader;
  std::vector<Frame> frames;
  for (std::size_t at = 0; at < bytes.size(); at += chunk) {
    reader.feed(bytes.data() + at, std::min(chunk, bytes.size() - at));
    while (auto f = reader.next()) frames.push_back(std::move(*f));
  }
  EXPECT_EQ(reader.buffered(), 0u);
  return frames;
}

TEST(HealthWire, RequestRoundTrip) {
  const std::vector<Frame> frames = reassemble(encode_health_request(41), 3);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kHealthRequest);
  EXPECT_EQ(frames[0].request_id, 41u);
}

TEST(HealthWire, ResponseRoundTripPreservesEveryField) {
  HealthInfo info;
  info.request_id = 77;
  info.uptime_seconds = 123.5;
  info.model_version = 9;
  info.slo_state = 2;
  info.native_kernel = true;
  info.window_p99_s = 0.042;
  info.window_error_rate = 0.015;
  info.latency_burn_rate = 0.168;
  info.error_burn_rate = 1.5;
  info.window_requests = 4096;
  info.watchdog_stalls = 5;
  info.oldest_request_ms = 321.5;
  info.replica_depths = {3, 0, 7};
  info.git_sha = "abc123def456";
  info.compiler = "gcc 12.2.0";
  info.backend = "cpu_opt";

  // Chop the stream into single bytes: reassembly must not care.
  const std::vector<Frame> frames = reassemble(encode_health_response(info), 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kHealthResponse);

  const HealthInfo back = decode_health_response(frames[0]);
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_DOUBLE_EQ(back.uptime_seconds, 123.5);
  EXPECT_EQ(back.model_version, 9u);
  EXPECT_EQ(back.slo_state, 2);
  EXPECT_TRUE(back.native_kernel);
  EXPECT_DOUBLE_EQ(back.window_p99_s, 0.042);
  EXPECT_DOUBLE_EQ(back.window_error_rate, 0.015);
  EXPECT_DOUBLE_EQ(back.latency_burn_rate, 0.168);
  EXPECT_DOUBLE_EQ(back.error_burn_rate, 1.5);
  EXPECT_EQ(back.window_requests, 4096u);
  EXPECT_EQ(back.watchdog_stalls, 5u);
  EXPECT_DOUBLE_EQ(back.oldest_request_ms, 321.5);
  EXPECT_EQ(back.replica_depths, (std::vector<std::uint32_t>{3, 0, 7}));
  EXPECT_EQ(back.git_sha, "abc123def456");
  EXPECT_EQ(back.compiler, "gcc 12.2.0");
  EXPECT_EQ(back.backend, "cpu_opt");
}

TEST(HealthWire, TruncatedResponseRejects) {
  HealthInfo info;
  info.request_id = 1;
  info.replica_depths = {1, 2};
  info.git_sha = "deadbeef";
  const std::vector<Frame> frames = reassemble(encode_health_response(info), 8);
  ASSERT_EQ(frames.size(), 1u);
  Frame cut = frames[0];
  cut.payload.resize(cut.payload.size() - 4);
  EXPECT_THROW(decode_health_response(cut), WireError);
}

TEST(NetServerHealth, LiveProbeReportsIdentityAndSlo) {
  NetServerConfig cfg;
  cfg.pool.replicas = 2;
  cfg.pool.serve.max_batch = 4;
  cfg.pool.serve.max_wait = std::chrono::milliseconds(2);
  NetServer server(cfg, [] { return serve::testfix::tiny_model(); });
  ASSERT_GT(server.port(), 0);

  Client client("127.0.0.1", server.port());
  // A little traffic first, so the probe reflects a serving process.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(client.forecast(serve::testfix::random_input(i)).status, Status::kOk);
  }

  const HealthInfo health = client.health();
  EXPECT_EQ(health.model_version, 1u);
  EXPECT_GE(health.uptime_seconds, 0.0);
  EXPECT_LE(health.slo_state, 2);
  EXPECT_EQ(health.replica_depths.size(), 2u);  // one depth per replica
  for (std::uint32_t depth : health.replica_depths) EXPECT_EQ(depth, 0u);  // idle now

  // Identity fields come from obs::build_info() and the active backend.
  const obs::BuildInfo& build = obs::build_info();
  EXPECT_EQ(health.git_sha, build.git_sha);
  EXPECT_EQ(health.compiler, build.compiler);
  EXPECT_FALSE(health.backend.empty());
  EXPECT_EQ(health.native_kernel, build.native_kernel);
}

}  // namespace
}  // namespace paintplace::net
