#include "fpga/design_suite.h"

#include <gtest/gtest.h>

namespace paintplace::fpga {
namespace {

TEST(DesignSuite, HasEightDesignsInTableOrder) {
  const auto& designs = table2_designs();
  ASSERT_EQ(designs.size(), 8u);
  EXPECT_EQ(designs[0].name, "diffeq1");
  EXPECT_EQ(designs[7].name, "bfly");
}

TEST(DesignSuite, Table2CountsExact) {
  // Spot-check the rows against the paper's Table 2.
  const DesignSpec& diffeq1 = design_by_name("diffeq1");
  EXPECT_EQ(diffeq1.num_luts, 563);
  EXPECT_EQ(diffeq1.num_ffs, 193);
  EXPECT_EQ(diffeq1.num_nets, 2059);

  const DesignSpec& or1200 = design_by_name("OR1200");
  EXPECT_EQ(or1200.num_luts, 2823);
  EXPECT_EQ(or1200.num_ffs, 670);
  EXPECT_EQ(or1200.num_nets, 12336);

  const DesignSpec& bfly = design_by_name("bfly");
  EXPECT_EQ(bfly.num_luts, 9503);
  EXPECT_EQ(bfly.num_ffs, 1748);
  EXPECT_EQ(bfly.num_nets, 38582);
}

TEST(DesignSuite, SizesMonotoneByLuts) {
  const auto& designs = table2_designs();
  // Table 2 is not strictly sorted, but the extremes must hold.
  Index min_luts = designs[0].num_luts, max_luts = designs[0].num_luts;
  for (const DesignSpec& d : designs) {
    min_luts = std::min(min_luts, d.num_luts);
    max_luts = std::max(max_luts, d.num_luts);
  }
  EXPECT_EQ(min_luts, design_by_name("diffeq2").num_luts);
  EXPECT_EQ(max_luts, design_by_name("bfly").num_luts);
}

TEST(DesignSuite, EveryDesignGeneratesAtSmallScale) {
  for (const DesignSpec& d : table2_designs()) {
    const DesignSpec scaled = scale_spec(d, 0.02);
    const Netlist nl = generate_packed(scaled, NetgenParams{}, 42);
    EXPECT_NO_THROW(nl.validate()) << d.name;
    EXPECT_GT(nl.num_nets(), 0) << d.name;
  }
}

TEST(DesignSuite, UnknownNameThrows) {
  EXPECT_THROW(design_by_name("not_a_design"), paintplace::CheckError);
}

TEST(DesignSuite, AllHaveIo) {
  for (const DesignSpec& d : table2_designs()) {
    EXPECT_GE(d.num_inputs, 1) << d.name;
    EXPECT_GE(d.num_outputs, 1) << d.name;
  }
}

}  // namespace
}  // namespace paintplace::fpga
