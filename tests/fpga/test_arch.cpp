#include "fpga/arch.h"

#include <gtest/gtest.h>

namespace paintplace::fpga {
namespace {

TEST(Arch, GridDimensionsIncludeIoRing) {
  const Arch arch(8, 6);
  EXPECT_EQ(arch.width(), 10);
  EXPECT_EQ(arch.height(), 8);
}

TEST(Arch, PerimeterIsIo) {
  const Arch arch(8, 8);
  for (Index x = 0; x < arch.width(); ++x) {
    EXPECT_EQ(arch.tile_type(x, 0), TileType::kIo);
    EXPECT_EQ(arch.tile_type(x, arch.height() - 1), TileType::kIo);
  }
  for (Index y = 0; y < arch.height(); ++y) {
    EXPECT_EQ(arch.tile_type(0, y), TileType::kIo);
    EXPECT_EQ(arch.tile_type(arch.width() - 1, y), TileType::kIo);
  }
}

TEST(Arch, MemAndMultColumnsAtPaperPositions) {
  // Fig. 2a: memory in interior column 3, multipliers in interior column 7.
  const Arch arch(8, 8);
  for (Index y = 1; y < arch.height() - 1; ++y) {
    EXPECT_EQ(arch.tile_type(3, y), TileType::kMem);
    EXPECT_EQ(arch.tile_type(7, y), TileType::kMult);
    EXPECT_EQ(arch.tile_type(1, y), TileType::kClb);
    EXPECT_EQ(arch.tile_type(4, y), TileType::kClb);
  }
}

TEST(Arch, SmallFabricHasNoHardColumns) {
  const Arch arch(2, 2);
  for (Index y = 1; y < arch.height() - 1; ++y) {
    for (Index x = 1; x < arch.width() - 1; ++x) {
      EXPECT_EQ(arch.tile_type(x, y), TileType::kClb);
    }
  }
}

TEST(Arch, CornersExcludedFromSlots) {
  const Arch arch(4, 4);
  for (const GridLoc& s : arch.slots(TileType::kIo)) {
    EXPECT_FALSE(arch.is_corner(s.x, s.y)) << "(" << s.x << "," << s.y << ")";
  }
}

TEST(Arch, IoCapacityCountsPorts) {
  const Arch arch(4, 4);
  // 4 sides x 4 pads (corners excluded) x 8 ports.
  EXPECT_EQ(arch.capacity(TileType::kIo), 4 * 4 * 8);
}

TEST(Arch, ClbCapacityMatchesColumnLayout) {
  const Arch arch(8, 8);
  // Interior 8x8 = 64 tiles, minus mem column (8) minus mult column (8).
  EXPECT_EQ(arch.capacity(TileType::kClb), 64 - 16);
  EXPECT_EQ(arch.capacity(TileType::kMem), 8);
  EXPECT_EQ(arch.capacity(TileType::kMult), 8);
}

TEST(Arch, SlotsMatchTileTypes) {
  const Arch arch(9, 7);
  for (const TileType t : {TileType::kIo, TileType::kClb, TileType::kMem, TileType::kMult}) {
    for (const GridLoc& s : arch.slots(t)) {
      EXPECT_EQ(arch.tile_type(s.x, s.y), t);
    }
  }
}

TEST(Arch, OutOfGridAccessThrows) {
  const Arch arch(3, 3);
  EXPECT_THROW(arch.tile_type(-1, 0), CheckError);
  EXPECT_THROW(arch.tile_type(0, 5), CheckError);
}

TEST(Arch, RejectsEmptyInterior) {
  EXPECT_THROW(Arch(0, 3), CheckError);
  EXPECT_THROW(Arch(3, 0), CheckError);
}

TEST(Arch, AutoSizedFitsDemand) {
  const BlockDemand demand{100, 40, 4, 4};
  const Arch arch = Arch::auto_sized(demand);
  EXPECT_GE(arch.capacity(TileType::kClb) * 6 / 10, demand.clbs);
  EXPECT_GE(arch.capacity(TileType::kIo), demand.ios);
  EXPECT_GE(arch.capacity(TileType::kMem), demand.mems);
  EXPECT_GE(arch.capacity(TileType::kMult), demand.mults);
}

TEST(Arch, AutoSizedIsMinimal) {
  const BlockDemand demand{10, 8, 0, 0};
  const Arch arch = Arch::auto_sized(demand);
  // One size smaller must NOT fit.
  const Index interior = arch.width() - 2;
  if (interior > 2) {
    const Arch smaller(interior - 1, interior - 1);
    const bool clb_fits =
        demand.clbs <= smaller.capacity(TileType::kClb) * 6 / 10;
    const bool io_fits = demand.ios <= smaller.capacity(TileType::kIo);
    EXPECT_FALSE(clb_fits && io_fits);
  }
}

TEST(Arch, CustomChannelWidthPropagates) {
  ArchParams params;
  params.channel_width = 20;
  const Arch arch(4, 4, params);
  EXPECT_EQ(arch.params().channel_width, 20);
}

TEST(Arch, SummaryMentionsDimensions) {
  const Arch arch(4, 4);
  const std::string s = arch.summary();
  EXPECT_NE(s.find("6x6"), std::string::npos);
  EXPECT_NE(s.find("channel width 34"), std::string::npos);
}

TEST(Arch, TileTypeNames) {
  EXPECT_STREQ(tile_type_name(TileType::kIo), "IO");
  EXPECT_STREQ(tile_type_name(TileType::kClb), "CLB");
  EXPECT_STREQ(tile_type_name(TileType::kMem), "MEM");
  EXPECT_STREQ(tile_type_name(TileType::kMult), "MULT");
}

}  // namespace
}  // namespace paintplace::fpga
