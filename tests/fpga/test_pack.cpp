#include "fpga/pack.h"

#include <gtest/gtest.h>

#include "fpga/netgen.h"

namespace paintplace::fpga {
namespace {

DesignSpec flat_spec() {
  DesignSpec s;
  s.name = "packme";
  s.num_luts = 40;
  s.num_ffs = 20;
  s.num_inputs = 6;
  s.num_outputs = 4;
  return s;
}

TEST(Pack, ProducesPackedNetlist) {
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 1);
  const PackResult r = pack(flat, PackParams{10});
  EXPECT_TRUE(r.packed.is_packed());
  EXPECT_NO_THROW(r.packed.validate());
}

TEST(Pack, PreservesLutAndFfTotals) {
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 2);
  const PackResult r = pack(flat, PackParams{10});
  const NetlistStats fs = flat.stats(), ps = r.packed.stats();
  EXPECT_EQ(fs.num_luts, ps.num_luts);
  EXPECT_EQ(fs.num_ffs, ps.num_ffs);
  EXPECT_EQ(fs.num_inputs, ps.num_inputs);
  EXPECT_EQ(fs.num_outputs, ps.num_outputs);
}

TEST(Pack, RespectsClbCapacity) {
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 3);
  const PackParams params{8};
  const PackResult r = pack(flat, params);
  for (const Block& b : r.packed.blocks()) {
    if (b.kind != BlockKind::kClb) continue;
    EXPECT_LE(std::max(b.num_luts, b.num_ffs), params.clb_capacity) << b.name;
  }
}

TEST(Pack, ClusterCountAtLeastBlesOverCapacity) {
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 4);
  const PackResult r = pack(flat, PackParams{10});
  const Index clbs = r.packed.stats().num_clbs;
  EXPECT_GE(clbs, (r.num_bles + 9) / 10);
}

TEST(Pack, MapsEveryFlatBlock) {
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 5);
  const PackResult r = pack(flat, PackParams{10});
  ASSERT_EQ(static_cast<Index>(r.flat_to_packed.size()), flat.num_blocks());
  for (const Block& b : flat.blocks()) {
    const BlockId p = r.flat_to_packed[static_cast<std::size_t>(b.id)];
    ASSERT_GE(p, 0) << b.name;
    ASSERT_LT(p, r.packed.num_blocks());
    if (b.kind == BlockKind::kLut || b.kind == BlockKind::kFf) {
      EXPECT_EQ(r.packed.block(p).kind, BlockKind::kClb);
    } else {
      EXPECT_EQ(r.packed.block(p).kind, b.kind);
    }
  }
}

TEST(Pack, AbsorbsIntraClusterNets) {
  // Packing must strictly reduce (or keep) the external net count.
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 6);
  const PackResult r = pack(flat, PackParams{10});
  EXPECT_LE(r.packed.num_nets(), flat.num_nets() + r.packed.num_blocks() / 4);
  EXPECT_LT(r.packed.num_blocks(), flat.num_blocks());
}

TEST(Pack, CapacityOneKeepsBlesSeparate) {
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 7);
  const PackResult r = pack(flat, PackParams{1});
  EXPECT_EQ(r.packed.stats().num_clbs, r.num_bles);
}

TEST(Pack, BleFusionReducesClusterInputCount) {
  // With LUT->FF pairs fused, BLE count must be <= LUTs + FFs and >= max.
  const Netlist flat = generate_flat(flat_spec(), NetgenParams{}, 8);
  const PackResult r = pack(flat, PackParams{10});
  const NetlistStats s = flat.stats();
  EXPECT_LE(r.num_bles, s.num_luts + s.num_ffs);
  EXPECT_GE(r.num_bles, std::max(s.num_luts, s.num_ffs));
}

}  // namespace
}  // namespace paintplace::fpga
