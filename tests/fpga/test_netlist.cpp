#include "fpga/netlist.h"

#include <gtest/gtest.h>

namespace paintplace::fpga {
namespace {

Netlist tiny_netlist() {
  Netlist nl("tiny");
  const BlockId in = nl.add_block(BlockKind::kInputPad, "in0");
  const BlockId c0 = nl.add_block(BlockKind::kClb, "c0", 4, 2);
  const BlockId c1 = nl.add_block(BlockKind::kClb, "c1", 3, 3);
  const BlockId out = nl.add_block(BlockKind::kOutputPad, "out0");
  nl.add_net("n0", in, {c0, c1});
  nl.add_net("n1", c0, {c1});
  nl.add_net("n2", c1, {out});
  return nl;
}

TEST(Netlist, BlockAndNetCounts) {
  const Netlist nl = tiny_netlist();
  EXPECT_EQ(nl.num_blocks(), 4);
  EXPECT_EQ(nl.num_nets(), 3);
}

TEST(Netlist, NetsOfBlockTracksBothRoles) {
  const Netlist nl = tiny_netlist();
  EXPECT_EQ(nl.nets_of(0).size(), 1u);  // in0 drives n0
  EXPECT_EQ(nl.nets_of(1).size(), 2u);  // c0: sink of n0, driver of n1
  EXPECT_EQ(nl.nets_of(2).size(), 3u);  // c1: sink n0, sink n1, driver n2
}

TEST(Netlist, DuplicateSinksMerged) {
  Netlist nl("d");
  const BlockId a = nl.add_block(BlockKind::kClb, "a");
  const BlockId b = nl.add_block(BlockKind::kClb, "b");
  const NetId n = nl.add_net("n", a, {b, b, b});
  EXPECT_EQ(nl.net(n).sinks.size(), 1u);
}

TEST(Netlist, DriverRemovedFromSinks) {
  Netlist nl("d");
  const BlockId a = nl.add_block(BlockKind::kClb, "a");
  const BlockId b = nl.add_block(BlockKind::kClb, "b");
  const NetId n = nl.add_net("n", a, {a, b});
  EXPECT_EQ(nl.net(n).sinks.size(), 1u);
  EXPECT_EQ(nl.net(n).sinks[0], b);
}

TEST(Netlist, SelfLoopOnlyNetRejected) {
  Netlist nl("d");
  const BlockId a = nl.add_block(BlockKind::kClb, "a");
  EXPECT_THROW(nl.add_net("n", a, {a}), CheckError);
}

TEST(Netlist, InvalidIdsRejected) {
  Netlist nl("d");
  const BlockId a = nl.add_block(BlockKind::kClb, "a");
  EXPECT_THROW(nl.add_net("n", 99, {a}), CheckError);
  EXPECT_THROW(nl.add_net("n", a, {99}), CheckError);
  EXPECT_THROW(nl.block(99), CheckError);
  EXPECT_THROW(nl.net(0), CheckError);
}

TEST(Netlist, PinCount) {
  const Netlist nl = tiny_netlist();
  EXPECT_EQ(nl.net(0).pin_count(), 3);
  EXPECT_EQ(nl.net(1).pin_count(), 2);
}

TEST(Netlist, StatsAggregateClbContents) {
  const Netlist nl = tiny_netlist();
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.num_luts, 7);
  EXPECT_EQ(s.num_ffs, 5);
  EXPECT_EQ(s.num_clbs, 2);
  EXPECT_EQ(s.num_inputs, 1);
  EXPECT_EQ(s.num_outputs, 1);
  EXPECT_EQ(s.num_nets, 3);
}

TEST(Netlist, ValidatePassesOnConnected) { EXPECT_NO_THROW(tiny_netlist().validate()); }

TEST(Netlist, ValidateCatchesDisconnectedBlock) {
  Netlist nl("d");
  nl.add_block(BlockKind::kClb, "orphan");
  const BlockId a = nl.add_block(BlockKind::kClb, "a");
  const BlockId b = nl.add_block(BlockKind::kClb, "b");
  nl.add_net("n", a, {b});
  EXPECT_THROW(nl.validate(), CheckError);
}

TEST(Netlist, IsPackedDetectsPrimitives) {
  EXPECT_TRUE(tiny_netlist().is_packed());
  Netlist flat("f");
  flat.add_block(BlockKind::kLut, "l");
  EXPECT_FALSE(flat.is_packed());
}

TEST(Netlist, TileTypeForPlaceableKinds) {
  EXPECT_EQ(tile_type_for(BlockKind::kClb), TileType::kClb);
  EXPECT_EQ(tile_type_for(BlockKind::kInputPad), TileType::kIo);
  EXPECT_EQ(tile_type_for(BlockKind::kOutputPad), TileType::kIo);
  EXPECT_EQ(tile_type_for(BlockKind::kMem), TileType::kMem);
  EXPECT_EQ(tile_type_for(BlockKind::kMult), TileType::kMult);
  EXPECT_THROW(tile_type_for(BlockKind::kLut), CheckError);
  EXPECT_THROW(tile_type_for(BlockKind::kFf), CheckError);
}

}  // namespace
}  // namespace paintplace::fpga
