#include "fpga/netgen.h"

#include <gtest/gtest.h>

#include "fpga/design_suite.h"

namespace paintplace::fpga {
namespace {

DesignSpec small_spec() {
  DesignSpec s;
  s.name = "toy";
  s.num_luts = 60;
  s.num_ffs = 25;
  s.num_nets = 150;
  s.num_inputs = 8;
  s.num_outputs = 6;
  s.num_mems = 2;
  s.num_mults = 1;
  return s;
}

TEST(NetgenPacked, HitsNetTargetWithinMopUpSlack) {
  const Netlist nl = generate_packed(small_spec(), NetgenParams{}, 1);
  // The mop-up pass may add a handful of connectivity nets beyond target.
  EXPECT_GE(nl.num_nets(), 150);
  EXPECT_LE(nl.num_nets(), 150 + nl.num_blocks() / 4 + 4);
}

TEST(NetgenPacked, BlockInventoryMatchesSpec) {
  const DesignSpec spec = small_spec();
  const Netlist nl = generate_packed(spec, NetgenParams{}, 2);
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.num_luts, spec.num_luts);
  EXPECT_EQ(s.num_ffs, spec.num_ffs);
  EXPECT_EQ(s.num_inputs, spec.num_inputs);
  EXPECT_EQ(s.num_outputs, spec.num_outputs);
  EXPECT_EQ(s.num_mems, spec.num_mems);
  EXPECT_EQ(s.num_mults, spec.num_mults);
  EXPECT_EQ(s.num_clbs, (60 + 9) / 10);  // ceil(max(60,25)/10)
}

TEST(NetgenPacked, IsValidatedAndPacked) {
  const Netlist nl = generate_packed(small_spec(), NetgenParams{}, 3);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_TRUE(nl.is_packed());
}

TEST(NetgenPacked, InputPadsNeverSink) {
  const Netlist nl = generate_packed(small_spec(), NetgenParams{}, 4);
  for (const Net& n : nl.nets()) {
    for (BlockId s : n.sinks) {
      EXPECT_NE(nl.block(s).kind, BlockKind::kInputPad) << "net " << n.name;
    }
  }
}

TEST(NetgenPacked, OutputPadsNeverDrive) {
  const Netlist nl = generate_packed(small_spec(), NetgenParams{}, 5);
  for (const Net& n : nl.nets()) {
    EXPECT_NE(nl.block(n.driver).kind, BlockKind::kOutputPad) << "net " << n.name;
  }
}

TEST(NetgenPacked, DeterministicPerSeed) {
  const Netlist a = generate_packed(small_spec(), NetgenParams{}, 7);
  const Netlist b = generate_packed(small_spec(), NetgenParams{}, 7);
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (NetId i = 0; i < a.num_nets(); ++i) {
    EXPECT_EQ(a.net(i).driver, b.net(i).driver);
    EXPECT_EQ(a.net(i).sinks, b.net(i).sinks);
  }
}

TEST(NetgenPacked, DifferentSeedsDiffer) {
  const Netlist a = generate_packed(small_spec(), NetgenParams{}, 1);
  const Netlist b = generate_packed(small_spec(), NetgenParams{}, 2);
  bool any_diff = a.num_nets() != b.num_nets();
  for (NetId i = 0; !any_diff && i < std::min(a.num_nets(), b.num_nets()); ++i) {
    any_diff = a.net(i).driver != b.net(i).driver || a.net(i).sinks != b.net(i).sinks;
  }
  EXPECT_TRUE(any_diff);
}

TEST(NetgenPacked, LocalityBiasesSinkDistance) {
  // High locality nets should connect blocks with nearby ids far more often
  // than uniform selection would.
  NetgenParams local;
  local.locality = 0.95;
  local.locality_window = 5;
  NetgenParams global;
  global.locality = 0.0;
  // A larger logic pool than small_spec(), so a 5-wide window is genuinely
  // narrow compared to uniform selection.
  DesignSpec spec = small_spec();
  spec.num_luts = 600;
  spec.num_ffs = 200;
  spec.num_nets = 1500;
  auto mean_distance = [](const Netlist& nl) {
    double total = 0.0;
    Index count = 0;
    for (const Net& n : nl.nets()) {
      for (BlockId s : n.sinks) {
        total += std::abs(static_cast<double>(s) - static_cast<double>(n.driver));
        count += 1;
      }
    }
    return total / static_cast<double>(count);
  };
  const double d_local = mean_distance(generate_packed(spec, local, 11));
  const double d_global = mean_distance(generate_packed(spec, global, 11));
  EXPECT_LT(d_local, d_global * 0.7);
}

TEST(NetgenFlat, EveryLogicBlockDrivesOneNet) {
  const Netlist nl = generate_flat(small_spec(), NetgenParams{}, 8);
  const NetlistStats s = nl.stats();
  // nets = inputs + logic drivers + output nets
  EXPECT_EQ(nl.num_nets(),
            s.num_inputs + s.num_luts + s.num_ffs + s.num_mems + s.num_mults + s.num_outputs);
}

TEST(NetgenFlat, IsFlatAndValid) {
  const Netlist nl = generate_flat(small_spec(), NetgenParams{}, 9);
  EXPECT_FALSE(nl.is_packed());
  EXPECT_NO_THROW(nl.validate());
}

TEST(NetgenFlat, PrimitiveCountsMatchSpec) {
  const Netlist nl = generate_flat(small_spec(), NetgenParams{}, 10);
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.num_luts, 60);
  EXPECT_EQ(s.num_ffs, 25);
  EXPECT_EQ(s.num_inputs, 8);
  EXPECT_EQ(s.num_outputs, 6);
}

TEST(ScaleSpec, ScalesAllCountsAndKeepsMinimums) {
  const DesignSpec full = design_by_name("ode");
  const DesignSpec tenth = scale_spec(full, 0.1);
  EXPECT_EQ(tenth.num_luts, 549);
  EXPECT_EQ(tenth.num_ffs, 132);
  EXPECT_EQ(tenth.num_nets, 2098);
  EXPECT_GE(tenth.num_mems, 1);
  const DesignSpec tiny = scale_spec(full, 1e-9);
  EXPECT_GE(tiny.num_luts, 1);
  EXPECT_GE(tiny.num_nets, 2);
}

TEST(ScaleSpec, FactorOneIsIdentityOnCounts) {
  const DesignSpec full = design_by_name("SHA");
  const DesignSpec same = scale_spec(full, 1.0);
  EXPECT_EQ(same.num_luts, full.num_luts);
  EXPECT_EQ(same.num_ffs, full.num_ffs);
  EXPECT_EQ(same.num_nets, full.num_nets);
}

TEST(ScaleSpec, RejectsNonPositiveFactor) {
  EXPECT_THROW(scale_spec(design_by_name("ode"), 0.0), paintplace::CheckError);
}

}  // namespace
}  // namespace paintplace::fpga
