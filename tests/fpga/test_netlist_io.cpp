#include "fpga/netlist_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "fpga/netgen.h"

namespace paintplace::fpga {
namespace {

Netlist sample_netlist() {
  DesignSpec spec;
  spec.name = "io_test";
  spec.num_luts = 25;
  spec.num_ffs = 10;
  spec.num_nets = 60;
  spec.num_inputs = 4;
  spec.num_outputs = 3;
  spec.num_mults = 1;
  return generate_packed(spec, NetgenParams{}, 9);
}

TEST(NetlistIo, StreamRoundTripPreservesStructure) {
  const Netlist original = sample_netlist();
  std::stringstream buffer;
  write_netlist(original, buffer);
  const Netlist loaded = read_netlist(buffer);

  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.num_blocks(), original.num_blocks());
  ASSERT_EQ(loaded.num_nets(), original.num_nets());
  for (BlockId b = 0; b < original.num_blocks(); ++b) {
    EXPECT_EQ(loaded.block(b).name, original.block(b).name);
    EXPECT_EQ(loaded.block(b).kind, original.block(b).kind);
    EXPECT_EQ(loaded.block(b).num_luts, original.block(b).num_luts);
    EXPECT_EQ(loaded.block(b).num_ffs, original.block(b).num_ffs);
  }
  for (NetId n = 0; n < original.num_nets(); ++n) {
    EXPECT_EQ(loaded.net(n).driver, original.net(n).driver);
    EXPECT_EQ(loaded.net(n).sinks, original.net(n).sinks);
  }
}

TEST(NetlistIo, FlatNetlistRoundTrips) {
  DesignSpec spec;
  spec.name = "flat_io";
  spec.num_luts = 12;
  spec.num_ffs = 4;
  spec.num_inputs = 3;
  spec.num_outputs = 2;
  const Netlist original = generate_flat(spec, NetgenParams{}, 3);
  std::stringstream buffer;
  write_netlist(original, buffer);
  const Netlist loaded = read_netlist(buffer);
  EXPECT_EQ(loaded.num_blocks(), original.num_blocks());
  EXPECT_FALSE(loaded.is_packed());
}

TEST(NetlistIo, FileRoundTrip) {
  const Netlist original = sample_netlist();
  const std::string path = ::testing::TempDir() + "/pp_netlist.txt";
  write_netlist_file(original, path);
  const Netlist loaded = read_netlist_file(path);
  EXPECT_EQ(loaded.num_nets(), original.num_nets());
  std::remove(path.c_str());
}

TEST(NetlistIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "design tiny\n"
      "\n"
      "block a CLB 3 1\n"
      "block b CLB 2 2\n"
      "# another comment\n"
      "net n1 a b\n");
  const Netlist nl = read_netlist(in);
  EXPECT_EQ(nl.num_blocks(), 2);
  EXPECT_EQ(nl.num_nets(), 1);
  EXPECT_EQ(nl.block(0).num_luts, 3);
}

TEST(NetlistIo, RejectsUnknownKeyword) {
  std::stringstream in("design d\nwire x y\n");
  EXPECT_THROW(read_netlist(in), CheckError);
}

TEST(NetlistIo, RejectsUnknownBlockKind) {
  std::stringstream in("design d\nblock a GIZMO\n");
  EXPECT_THROW(read_netlist(in), CheckError);
}

TEST(NetlistIo, RejectsNetWithUnknownEndpoint) {
  std::stringstream in("design d\nblock a CLB 1 1\nnet n a ghost\n");
  EXPECT_THROW(read_netlist(in), CheckError);
}

TEST(NetlistIo, RejectsDuplicateBlockName) {
  std::stringstream in("design d\nblock a CLB 1 1\nblock a CLB 1 1\n");
  EXPECT_THROW(read_netlist(in), CheckError);
}

TEST(NetlistIo, RejectsMissingDesignLine) {
  std::stringstream in("block a CLB 1 1\n");
  EXPECT_THROW(read_netlist(in), CheckError);
}

TEST(NetlistIo, MissingFileThrows) {
  EXPECT_THROW(read_netlist_file("/nonexistent/netlist.txt"), CheckError);
}

}  // namespace
}  // namespace paintplace::fpga
