#!/usr/bin/env python3
"""Validate a structured-log stream (forecast_serve --log-format json).

Every line that looks like a JSON object (starts with '{') must parse as
one and carry the schema keys the Log emitter guarantees: ts_ms (int),
level (debug|info|warn|error), subsystem (str), event (str). Non-JSON
lines (the "LISTENING <port>" contract, blank lines) pass through
untouched — the checker validates the log grammar, not the whole stream.

Usage:
    check_log_schema.py LOGFILE [--min-lines N]

Exits 0 when every JSON line validates and at least --min-lines of them
were seen (default 1 — an empty "log" should fail loudly in CI).
"""

import argparse
import json
import sys

LEVELS = {"debug", "info", "warn", "error"}
REQUIRED = {"ts_ms": int, "level": str, "subsystem": str, "event": str}


def check_line(lineno: int, line: str) -> list:
    errors = []
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        return [f"line {lineno}: not valid JSON ({exc})"]
    if not isinstance(obj, dict):
        return [f"line {lineno}: JSON but not an object"]
    for key, want in REQUIRED.items():
        if key not in obj:
            errors.append(f"line {lineno}: missing key {key!r}")
        elif not isinstance(obj[key], want):
            errors.append(
                f"line {lineno}: {key!r} is {type(obj[key]).__name__}, want {want.__name__}"
            )
    if "level" in obj and obj["level"] not in LEVELS:
        errors.append(f"line {lineno}: unknown level {obj['level']!r}")
    if "suppressed" in obj and (
        not isinstance(obj["suppressed"], int) or obj["suppressed"] < 1
    ):
        errors.append(f"line {lineno}: suppressed must be a positive int")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("logfile", help="log stream to validate")
    parser.add_argument(
        "--min-lines",
        type=int,
        default=1,
        help="fail unless at least this many JSON log lines were seen",
    )
    args = parser.parse_args()

    checked = 0
    errors = []
    with open(args.logfile, "r", encoding="utf-8", errors="replace") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line.startswith("{"):
                continue
            checked += 1
            errors.extend(check_line(lineno, line))

    for err in errors:
        print(f"check_log_schema: {err}", file=sys.stderr)
    if checked < args.min_lines:
        print(
            f"check_log_schema: saw {checked} JSON log line(s), need {args.min_lines}",
            file=sys.stderr,
        )
        return 1
    if errors:
        return 1
    print(f"check_log_schema: OK ({checked} JSON log lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
