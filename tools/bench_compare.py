#!/usr/bin/env python3
"""Bench-regression observatory: diff fresh BENCH_*.json reports against the
committed baselines in bench/baselines/ and fail on regression.

Every bench harness (bench_gemm, bench_serve, bench_net, bench_micro, the
figure/table harnesses) writes a BENCH_<name>.json with a flat list of
samples (see bench/bench_json.h). This tool pairs fresh samples with their
baseline counterparts and checks every *directional* metric — a numeric
field whose name says which way is better (req_per_s, p99_ms, speedup,
ns_per_disabled_span, ...) — against a multiplicative tolerance band.
Fields with no obvious direction (counts, sizes, seeds) are ignored.

Matching is structural: samples pair up by the report name, the sample's
string/bool fields (section, backend, design, ...), and the ordinal among
samples sharing those fields. Bench harnesses emit samples in a
deterministic order, so this survives int parameters changing names.

Exit status: 0 when every paired metric is inside the band, 1 on any
regression or a baseline report with no fresh counterpart.

Usage:
  bench_compare.py --baseline bench/baselines --fresh . [--tolerance 0.5]
  bench_compare.py --self-test
"""

import argparse
import glob
import json
import os
import sys

# Direction heuristics, keyed on metric-name shape. First match wins.
HIGHER_BETTER_SUFFIXES = ("_per_s", "_per_sec", "_gflop_s", "_gflops")
HIGHER_BETTER_EXACT = {
    "gflops", "speedup", "throughput", "hit_rate", "size_reduction",
    "items_per_s", "acc1", "acc2", "top10", "rank_corr", "mean_speedup",
    "threaded_speedup", "single_thread_speedup", "speedup_batch4",
}
HIGHER_BETTER_SUBSTR = ("speedup", "accuracy")
LOWER_BETTER_SUFFIXES = ("_ms", "_seconds", "_ns", "_noise")
LOWER_BETTER_PREFIXES = ("ns_per_", "ms_per_", "us_per_")
LOWER_BETTER_EXACT = {"overhead_fraction"}


def metric_direction(key):
    """Return +1 (higher is better), -1 (lower is better) or 0 (ignore)."""
    if key in HIGHER_BETTER_EXACT:
        return 1
    if key in LOWER_BETTER_EXACT:
        return -1
    if key.endswith(HIGHER_BETTER_SUFFIXES):
        return 1
    if key.startswith(LOWER_BETTER_PREFIXES):
        return -1
    if key.endswith(LOWER_BETTER_SUFFIXES):
        return -1
    if any(s in key for s in HIGHER_BETTER_SUBSTR):
        return 1
    return 0


def sample_identity(sample):
    """Stable identity for pairing: the sample's string/bool fields."""
    return tuple(sorted(
        (k, v) for k, v in sample.items() if isinstance(v, (str, bool))))


def identity_label(identity):
    parts = [str(v) for _, v in identity if not isinstance(v, bool)]
    return "/".join(parts) if parts else "-"


def index_samples(report):
    """Map (identity, ordinal) -> sample for one report."""
    indexed = {}
    counts = {}
    for sample in report.get("samples", []):
        ident = sample_identity(sample)
        ordinal = counts.get(ident, 0)
        counts[ident] = ordinal + 1
        indexed[(ident, ordinal)] = sample
    return indexed


def load_reports(directory):
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable {path}: {err}")
            continue
        name = data.get("bench") or os.path.basename(path)
        reports[name] = data
    return reports


def compare_reports(baseline, fresh, tolerance):
    """Compare two report dicts. Returns (rows, regressions, warnings)."""
    factor = 1.0 / (1.0 - tolerance)
    rows, regressions, warnings = [], [], []
    fresh_index = index_samples(fresh)
    for key, base_sample in index_samples(baseline).items():
        ident, ordinal = key
        fresh_sample = fresh_index.get(key)
        label = identity_label(ident)
        if ordinal:
            label += f"#{ordinal}"
        if fresh_sample is None:
            warnings.append(f"sample '{label}' missing from fresh report")
            continue
        for metric, base_value in base_sample.items():
            direction = metric_direction(metric)
            if direction == 0 or isinstance(base_value, bool):
                continue
            if not isinstance(base_value, (int, float)):
                continue
            new_value = fresh_sample.get(metric)
            if not isinstance(new_value, (int, float)) or isinstance(new_value, bool):
                warnings.append(f"metric '{label}.{metric}' missing from fresh report")
                continue
            if base_value == 0:
                continue  # no meaningful ratio
            ratio = new_value / base_value
            if direction > 0:
                regressed = new_value < base_value / factor
            else:
                regressed = new_value > base_value * factor
            rows.append((label, metric, base_value, new_value, ratio,
                         "REGRESSED" if regressed else "ok"))
            if regressed:
                regressions.append(f"{label}.{metric}: {base_value:g} -> {new_value:g}")
    return rows, regressions, warnings


def run_compare(baseline_dir, fresh_dir, tolerance):
    baselines = load_reports(baseline_dir)
    fresh = load_reports(fresh_dir)
    if not baselines:
        print(f"error: no BENCH_*.json baselines under {baseline_dir}")
        return 1
    failed = False
    for name, base_report in sorted(baselines.items()):
        fresh_report = fresh.get(name)
        print(f"== {name} ==")
        if fresh_report is None:
            print(f"  REGRESSED: no fresh BENCH_{name}.json in {fresh_dir}")
            failed = True
            continue
        rows, regressions, warnings = compare_reports(
            base_report, fresh_report, tolerance)
        for label, metric, base, new, ratio, status in rows:
            print(f"  {status:>9}  {label:<28} {metric:<24} "
                  f"{base:>12.4g} -> {new:>12.4g}  ({ratio:5.2f}x)")
        for warning in warnings:
            print(f"   warning:  {warning}")
        if not rows:
            print("   (no directional metrics in common)")
        if regressions:
            failed = True
    allowed = 1.0 / (1.0 - tolerance)
    print(f"\ntolerance {tolerance:.2f} (allowed worsening {allowed:.1f}x): "
          + ("REGRESSIONS FOUND" if failed else "all metrics within band"))
    return 1 if failed else 0


def self_test():
    """Verify the comparator flags an injected regression and passes noise."""
    base = {
        "bench": "selftest",
        "samples": [
            {"section": "serve", "batch": 8, "req_per_s": 1000.0, "p99_ms": 10.0},
            {"section": "trace", "size_reduction": 16.0, "full_bytes": 150000},
        ],
    }
    within = {
        "bench": "selftest",
        "samples": [
            {"section": "serve", "batch": 8, "req_per_s": 900.0, "p99_ms": 11.5},
            {"section": "trace", "size_reduction": 14.0, "full_bytes": 170000},
        ],
    }
    regressed = {
        "bench": "selftest",
        "samples": [
            {"section": "serve", "batch": 8, "req_per_s": 1000.0, "p99_ms": 40.0},
            {"section": "trace", "size_reduction": 16.0, "full_bytes": 150000},
        ],
    }
    _, ok_regressions, _ = compare_reports(base, within, tolerance=0.5)
    _, bad_regressions, _ = compare_reports(base, regressed, tolerance=0.5)
    problems = []
    if ok_regressions:
        problems.append(f"within-band run flagged: {ok_regressions}")
    if not any("p99_ms" in r for r in bad_regressions):
        problems.append("injected p99 regression (10ms -> 40ms @ tol 0.5) not flagged")
    if metric_direction("req_per_s") != 1 or metric_direction("p99_ms") != -1:
        problems.append("direction heuristics broken for req_per_s/p99_ms")
    if metric_direction("full_bytes") != 0:
        problems.append("directionless field full_bytes was classified")
    if problems:
        for p in problems:
            print(f"self-test FAILED: {p}")
        return 1
    print("self-test passed: injected regression flagged, within-band run clean")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory of committed baseline BENCH_*.json")
    parser.add_argument("--fresh", default=".",
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional worsening in [0,1); the band is "
                             "base*1/(1-t) for lower-better metrics (default 0.5 "
                             "= up to 2x worse)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in comparator check and exit")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.self_test:
        return self_test()
    return run_compare(args.baseline, args.fresh, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
