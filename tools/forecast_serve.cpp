// forecast_serve — the networked congestion-forecast server.
//
// Puts a NetServer (TCP, PPN1 wire protocol — see docs/serving.md) in front
// of a replica pool of ForecastServers. Serves either a train_cgan
// checkpoint (--checkpoint) or a seeded stand-in model (--width/--channels)
// whose forecasts are untrained but whose serving mechanics — sharding,
// batching, caching, admission control, hot swap — are fully real; the
// stand-in is what the CI smoke and local protocol experiments use.
//
//   forecast_serve --port 7433 --replicas 2 --checkpoint run1/best.ckpt
//   forecast_serve --port 0 --replicas 2 --snapshot /tmp/serving.ckpt --allow-swap
//
// Prints "LISTENING <port>" once accepting (machine-readable for harnesses)
// and runs until SIGINT/SIGTERM, then drains: accepted requests are
// answered before exit.
#include <semaphore.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "backend/backend.h"
#include "common/parallel.h"
#include "core/forecaster.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace {

using paintplace::Index;
namespace core = paintplace::core;
namespace net = paintplace::net;

struct Options {
  std::string bind = "127.0.0.1";
  int port = 7433;
  int replicas = 2;
  std::string checkpoint;        ///< serve this train_cgan checkpoint
  Index width = 32;              ///< stand-in model resolution (no --checkpoint)
  Index in_channels = 4;
  Index base_channels = 8;
  Index max_batch = 8;
  Index max_wait_us = 2000;
  std::size_t cache_capacity = 1024;
  Index max_replica_depth = 64;
  Index max_client_inflight = 16;
  bool allow_swap = false;
  std::string snapshot;          ///< save the serving model here at startup
  Index log_period_ms = 2000;
  Index idle_ms = 0;             ///< close idle connections after this (0 = never)
  std::string backend;
  std::string trace;             ///< chrome-trace dump path (also PAINTPLACE_TRACE)
  std::uint64_t trace_sample = 0;  ///< tail-based sampling: head 1-in-N (0 = all)
  double trace_slow_ms = 100.0;  ///< always retain requests slower than this
  std::string profile;           ///< collapsed-stack dump path (enables the profiler)
  std::string metrics_dump;      ///< write final metrics exposition here on drain
  std::string postmortem;        ///< dir for crash-forensics dumps (enables recorder)
  double stall_ms = 0.0;         ///< watchdog stall threshold; 0 disables
  std::string log_format;        ///< kv | json | legacy ("" = kv / env default)
  double slo_p99_ms = 250.0;     ///< windowed p99 objective
  double slo_error_rate = 0.01;  ///< windowed (failed+shed)/total objective
  double slo_window_s = 60.0;    ///< SLO rolling window
  std::uint64_t seed = 1;
};

void usage() {
  std::printf(
      "forecast_serve — TCP front-end for the congestion forecaster\n\n"
      "usage: forecast_serve [options]\n"
      "  --bind A               address to bind (default 127.0.0.1)\n"
      "  --port N               TCP port; 0 picks an ephemeral one (default 7433)\n"
      "  --replicas N           ForecastServer replicas, content-hash sharded (default 2)\n"
      "  --checkpoint PATH      serve a train_cgan checkpoint (else a stand-in model)\n"
      "  --width N              stand-in model resolution (default 32)\n"
      "  --channels N           stand-in model input channels (default 4)\n"
      "  --base-channels N      stand-in model first encoder width (default 8)\n"
      "  --max-batch N          micro-batch flush size per replica (default 8)\n"
      "  --max-wait-us N        micro-batch wait bound per replica (default 2000)\n"
      "  --cache N              result-cache entries per replica; 0 disables (default 1024)\n"
      "  --max-depth N          per-replica admitted-request bound; 0 = unbounded (default 64)\n"
      "  --max-inflight N       per-client in-flight fairness cap; 0 = none (default 16)\n"
      "  --allow-swap           accept in-band checkpoint hot-swap requests\n"
      "  --snapshot PATH        save the serving model to PATH at startup\n"
      "  --log-ms N             metrics log-line period; 0 silences it (default 2000)\n"
      "  --idle-ms N            close connections idle this long; 0 keeps them (default 0)\n"
      "  --backend NAME         compute backend (reference|cpu_opt)\n"
      "  --trace PATH           enable tracing, dump chrome://tracing JSON to PATH on drain\n"
      "                         (PAINTPLACE_TRACE=PATH does the same)\n"
      "  --trace-sample N       tail-based sampling: head-sample 1-in-N requests, always\n"
      "                         keep slow/shed/error ones (default 0 = record everything)\n"
      "  --trace-slow-ms X      slow-request retention threshold (default 100)\n"
      "  --profile PATH         sample span stacks while serving, write collapsed-stack\n"
      "                         text to PATH on drain and print the top-10 table\n"
      "  --metrics-dump PATH    write the final metrics exposition to PATH on drain\n"
      "  --postmortem DIR       crash forensics: record flight events and dump\n"
      "                         DIR/postmortem.<pid>.json on SIGSEGV/SIGABRT/SIGBUS\n"
      "  --stall-ms X           watchdog: report any request in flight longer than X ms\n"
      "                         and force-retain its trace (default 0 = disabled)\n"
      "  --log-format F         kv (default) | json (JSON lines) | legacy (pre-9 text\n"
      "                         for the periodic stats line)\n"
      "  --slo-p99-ms X         SLO: windowed p99 latency objective (default 250)\n"
      "  --slo-error-rate X     SLO: windowed error-rate objective (default 0.01)\n"
      "  --slo-window-s X       SLO rolling window in seconds (default 60)\n"
      "  --seed N               stand-in model seed (default 1)\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
      usage();
      std::exit(0);
    } else if (!std::strcmp(a, "--bind")) {
      if (!(v = need_value(i))) return false;
      opt.bind = v;
    } else if (!std::strcmp(a, "--port")) {
      if (!(v = need_value(i))) return false;
      opt.port = std::atoi(v);
    } else if (!std::strcmp(a, "--replicas")) {
      if (!(v = need_value(i))) return false;
      opt.replicas = std::atoi(v);
    } else if (!std::strcmp(a, "--checkpoint")) {
      if (!(v = need_value(i))) return false;
      opt.checkpoint = v;
    } else if (!std::strcmp(a, "--width")) {
      if (!(v = need_value(i))) return false;
      opt.width = std::atoll(v);
    } else if (!std::strcmp(a, "--channels")) {
      if (!(v = need_value(i))) return false;
      opt.in_channels = std::atoll(v);
    } else if (!std::strcmp(a, "--base-channels")) {
      if (!(v = need_value(i))) return false;
      opt.base_channels = std::atoll(v);
    } else if (!std::strcmp(a, "--max-batch")) {
      if (!(v = need_value(i))) return false;
      opt.max_batch = std::atoll(v);
    } else if (!std::strcmp(a, "--max-wait-us")) {
      if (!(v = need_value(i))) return false;
      opt.max_wait_us = std::atoll(v);
    } else if (!std::strcmp(a, "--cache")) {
      if (!(v = need_value(i))) return false;
      opt.cache_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (!std::strcmp(a, "--max-depth")) {
      if (!(v = need_value(i))) return false;
      opt.max_replica_depth = std::atoll(v);
    } else if (!std::strcmp(a, "--max-inflight")) {
      if (!(v = need_value(i))) return false;
      opt.max_client_inflight = std::atoll(v);
    } else if (!std::strcmp(a, "--allow-swap")) {
      opt.allow_swap = true;
    } else if (!std::strcmp(a, "--snapshot")) {
      if (!(v = need_value(i))) return false;
      opt.snapshot = v;
    } else if (!std::strcmp(a, "--log-ms")) {
      if (!(v = need_value(i))) return false;
      opt.log_period_ms = std::atoll(v);
    } else if (!std::strcmp(a, "--idle-ms")) {
      if (!(v = need_value(i))) return false;
      opt.idle_ms = std::atoll(v);
    } else if (!std::strcmp(a, "--backend")) {
      if (!(v = need_value(i))) return false;
      opt.backend = v;
    } else if (!std::strcmp(a, "--trace")) {
      if (!(v = need_value(i))) return false;
      opt.trace = v;
    } else if (!std::strcmp(a, "--trace-sample")) {
      if (!(v = need_value(i))) return false;
      opt.trace_sample = static_cast<std::uint64_t>(std::atoll(v));
    } else if (!std::strcmp(a, "--trace-slow-ms")) {
      if (!(v = need_value(i))) return false;
      opt.trace_slow_ms = std::atof(v);
    } else if (!std::strcmp(a, "--profile")) {
      if (!(v = need_value(i))) return false;
      opt.profile = v;
    } else if (!std::strcmp(a, "--slo-p99-ms")) {
      if (!(v = need_value(i))) return false;
      opt.slo_p99_ms = std::atof(v);
    } else if (!std::strcmp(a, "--slo-error-rate")) {
      if (!(v = need_value(i))) return false;
      opt.slo_error_rate = std::atof(v);
    } else if (!std::strcmp(a, "--slo-window-s")) {
      if (!(v = need_value(i))) return false;
      opt.slo_window_s = std::atof(v);
    } else if (!std::strcmp(a, "--metrics-dump")) {
      if (!(v = need_value(i))) return false;
      opt.metrics_dump = v;
    } else if (!std::strcmp(a, "--postmortem")) {
      if (!(v = need_value(i))) return false;
      opt.postmortem = v;
    } else if (!std::strcmp(a, "--stall-ms")) {
      if (!(v = need_value(i))) return false;
      opt.stall_ms = std::atof(v);
    } else if (!std::strcmp(a, "--log-format")) {
      if (!(v = need_value(i))) return false;
      opt.log_format = v;
      if (opt.log_format != "kv" && opt.log_format != "json" && opt.log_format != "legacy") {
        std::fprintf(stderr, "--log-format must be kv, json, or legacy (got %s)\n", v);
        return false;
      }
    } else if (!std::strcmp(a, "--seed")) {
      if (!(v = need_value(i))) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
      return false;
    }
  }
  return true;
}

// Signal handling: a semaphore is one of the few things a handler may
// legally poke; main blocks on it and runs the orderly drain.
sem_t g_stop_sem;

void handle_stop(int) { sem_post(&g_stop_sem); }

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  namespace obs = paintplace::obs;
  // --log-format picks the structured-log rendering; "legacy" keeps the
  // structured default (kv) but routes the periodic stats line through the
  // pre-forensics printf renderer.
  if (opt.log_format == "json" || opt.log_format == "kv") {
    obs::LogConfig lcfg = obs::Log::instance().config();
    lcfg.format =
        opt.log_format == "json" ? obs::LogFormat::kJson : obs::LogFormat::kKeyValue;
    obs::Log::instance().configure(lcfg);
  }
  // Install the crash handlers before any model/server work so a fault
  // anywhere past argument parsing produces a post-mortem.
  if (!opt.postmortem.empty()) obs::FlightRecorder::instance().install(opt.postmortem);

  core::Pix2PixConfig mcfg;
  if (!opt.checkpoint.empty()) {
    try {
      mcfg = core::Pix2Pix::peek_config(opt.checkpoint);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot read checkpoint %s: %s\n", opt.checkpoint.c_str(), e.what());
      return 1;
    }
    obs::Log::instance()
        .info("serve_cli", "model")
        .kv("checkpoint", opt.checkpoint)
        .kv("image_size", mcfg.generator.image_size)
        .kv("in_channels", mcfg.generator.in_channels)
        .kv("out_channels", mcfg.generator.out_channels);
  } else {
    mcfg.generator.image_size = opt.width;
    mcfg.generator.in_channels = opt.in_channels;
    mcfg.generator.base_channels = opt.base_channels;
    mcfg.generator.max_channels = opt.base_channels * 8;
    mcfg.disc_base_channels = opt.base_channels;
    mcfg.seed = opt.seed;
    obs::Log::instance()
        .info("serve_cli", "model")
        .kv("stand_in", true)
        .kv("image_size", opt.width)
        .kv("in_channels", opt.in_channels)
        .kv("seed", opt.seed)
        .kv("note", "forecasts are untrained");
  }

  net::ModelFactory make_model = [&]() {
    auto model = std::make_shared<core::CongestionForecaster>(mcfg);
    if (!opt.checkpoint.empty()) model->load(opt.checkpoint);
    return model;
  };

  if (!opt.snapshot.empty()) {
    make_model()->save(opt.snapshot);
    obs::Log::instance().info("serve_cli", "snapshot_saved").kv("path", opt.snapshot);
  }

  net::NetServerConfig cfg;
  cfg.bind_address = opt.bind;
  cfg.port = static_cast<std::uint16_t>(opt.port);
  cfg.allow_swap = opt.allow_swap;
  cfg.metrics_log_period = std::chrono::milliseconds(opt.log_period_ms);
  cfg.idle_timeout = std::chrono::milliseconds(opt.idle_ms);
  cfg.pool.replicas = opt.replicas;
  cfg.pool.max_replica_depth = opt.max_replica_depth;
  cfg.pool.max_client_inflight = opt.max_client_inflight;
  cfg.pool.serve.max_batch = opt.max_batch;
  cfg.pool.serve.max_wait = std::chrono::microseconds(opt.max_wait_us);
  cfg.pool.serve.cache_capacity = opt.cache_capacity;
  cfg.pool.serve.backend = opt.backend;
  cfg.pool.serve.trace_sample = opt.trace_sample;
  cfg.pool.serve.trace_slow_ms = opt.trace_slow_ms;
  cfg.slo.window_s = opt.slo_window_s;
  cfg.slo.latency_objective_s = opt.slo_p99_ms * 1e-3;
  cfg.slo.error_rate_objective = opt.slo_error_rate;
  cfg.watchdog.stall_ms = opt.stall_ms;
  cfg.legacy_log = opt.log_format == "legacy";
  // --trace takes precedence over an inherited PAINTPLACE_TRACE; either way
  // the tracer is enabled now and the JSON is written on drain.
  if (!opt.trace.empty()) paintplace::obs::Tracer::instance().configure(opt.trace);
  if (!opt.profile.empty()) paintplace::obs::Profiler::instance().start();

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    net::NetServer server(cfg, make_model);
    obs::Log::instance()
        .info("serve_cli", "pool")
        .kv("replicas", opt.replicas)
        .kv("max_depth", opt.max_replica_depth)
        .kv("client_cap", opt.max_client_inflight)
        .kv("backend", paintplace::backend::active_backend().name())
        .kv("workers", paintplace::parallel_workers());
    // Harnesses poll for this line; flush so it is visible even when stdout
    // is a pipe or file (block-buffered) rather than a tty.
    std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    while (sem_wait(&g_stop_sem) != 0 && errno == EINTR) {
    }
    obs::Log::instance().info("serve_cli", "draining");
    // Snapshot gauges before shutdown (the pool is gone afterwards), write
    // the exposition after it so every counter includes the drained tail.
    const net::PoolGauges gauges = server.pool_gauges();
    server.shutdown();
    if (!opt.metrics_dump.empty()) {
      std::string exposition = net::render_text(server.metrics(), gauges);
      exposition += paintplace::obs::MetricsRegistry::global().render_prometheus(
          [](const std::string& name) { return name.rfind("net_", 0) != 0; });
      if (std::FILE* f = std::fopen(opt.metrics_dump.c_str(), "w")) {
        std::fwrite(exposition.data(), 1, exposition.size(), f);
        std::fclose(f);
        obs::Log::instance().info("serve_cli", "metrics_written").kv("path", opt.metrics_dump);
      } else {
        obs::Log::instance().error("serve_cli", "metrics_write_failed").kv("path", opt.metrics_dump);
      }
    }
    if (obs::Tracer::instance().dump_configured()) {
      obs::Log::instance()
          .info("serve_cli", "trace_written")
          .kv("path", obs::Tracer::instance().configured_path())
          .kv("spans", static_cast<std::uint64_t>(obs::Tracer::instance().recorded()))
          .kv("dropped", obs::Tracer::instance().dropped());
    }
    if (!opt.profile.empty()) {
      obs::Profiler& prof = obs::Profiler::instance();
      prof.stop();
      if (prof.write_collapsed(opt.profile)) {
        obs::Log::instance()
            .info("serve_cli", "profile_written")
            .kv("path", opt.profile)
            .kv("samples", prof.samples());
      }
      std::printf("hottest span stacks:\n");
      for (const auto& [stack, count] : prof.top_k(10)) {
        std::printf("  %8llu  %s\n", static_cast<unsigned long long>(count), stack.c_str());
      }
    }
    const net::Metrics& m = server.metrics();
    obs::Log::instance()
        .info("serve_cli", "served")
        .kv("completed", m.requests_completed.load())
        .kv("shed", m.shed_total())
        .kv("protocol_errors", m.protocol_errors.load())
        .kv("watchdog_stalls", server.watchdog().stalls());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "forecast_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
