// forecast_client — multi-process swarm client for forecast_serve.
//
// The process-level big sibling of examples/forecast_server_demo's threaded
// clients: forks --procs worker processes, each opening --conns pipelined
// connections that submit random placement tensors (drawn from a shared
// --pool of distinct placements, so repeats exercise the server's result
// cache and shard stickiness) for --duration-ms. Children report their
// counts over a pipe; the parent aggregates and exits non-zero when the
// swarm saw a protocol error or completed nothing — which is exactly the
// CI smoke assertion.
//
// Optionally sends one in-band hot-swap (--swap PATH) halfway through the
// run, from the first worker: a correct server answers every request
// accepted across the swap boundary (the parent's zero-error check covers
// this, and the summary reports how many responses came from each model
// version).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "net/client.h"
#include "obs/metrics_registry.h"

namespace {

using paintplace::Index;
using paintplace::Rng;
using paintplace::Timer;
namespace net = paintplace::net;
namespace nn = paintplace::nn;
namespace obs = paintplace::obs;

struct Options {
  std::string host = "127.0.0.1";
  int port = 7433;
  int procs = 2;
  int conns = 2;        ///< connections (threads) per process
  Index duration_ms = 3000;
  Index width = 32;
  Index channels = 4;
  Index pool = 32;      ///< distinct placements shared by the whole swarm
  Index pipeline = 4;   ///< in-flight requests per connection
  bool want_heatmap = false;
  std::string swap;     ///< checkpoint to hot-swap mid-run
  bool health = false;  ///< probe the server's health frame and exit
  /// Fail the swarm when the client-observed p99 exceeds this factor times
  /// the server-side p99 (0 disables). Generous by design: the client p99
  /// includes pipeline queueing the server never sees.
  double check_p99_factor = 0.0;
  std::uint64_t seed = 42;
};

/// One worker's counts, accumulated across its connections. Stays a POD —
/// children ship it to the parent as raw bytes over a pipe — so the
/// client-side latency distribution rides along as bucket counts (same
/// bucket layout as obs::Histogram; the parent re-derives quantiles with
/// Histogram::quantile_of).
struct Tally {
  std::uint64_t completed = 0;      ///< kOk responses
  std::uint64_t shed = 0;           ///< kShed responses (not errors)
  std::uint64_t failed = 0;         ///< kFailed responses
  std::uint64_t wire_errors = 0;    ///< protocol violations / dead connections
  std::uint64_t cache_hits = 0;
  std::uint64_t pre_swap = 0;       ///< responses from the initial model version
  std::uint64_t post_swap = 0;      ///< responses from a later version
  std::uint64_t reconnects = 0;     ///< mid-run reconnects that kept the run alive
  std::uint64_t latency_count = 0;  ///< send-to-response samples recorded
  std::uint64_t latency_buckets[paintplace::obs::Histogram::kBuckets] = {};
  bool swap_ok = false;

  void operator+=(const Tally& o) {
    completed += o.completed;
    shed += o.shed;
    failed += o.failed;
    wire_errors += o.wire_errors;
    cache_hits += o.cache_hits;
    pre_swap += o.pre_swap;
    post_swap += o.post_swap;
    reconnects += o.reconnects;
    latency_count += o.latency_count;
    for (int b = 0; b < paintplace::obs::Histogram::kBuckets; ++b) {
      latency_buckets[b] += o.latency_buckets[b];
    }
    swap_ok = swap_ok || o.swap_ok;
  }
};

void usage() {
  std::printf(
      "forecast_client — multi-process swarm client for forecast_serve\n\n"
      "usage: forecast_client [options]\n"
      "  --host A          server address (default 127.0.0.1)\n"
      "  --port N          server port (default 7433)\n"
      "  --procs N         worker processes to fork (default 2)\n"
      "  --conns N         connections per process (default 2)\n"
      "  --duration-ms N   how long each connection submits (default 3000)\n"
      "  --width N         placement tensor resolution (default 32)\n"
      "  --channels N      placement tensor channels (default 4)\n"
      "  --pool N          distinct placements shared by the swarm (default 32)\n"
      "  --pipeline N      in-flight requests per connection (default 4)\n"
      "  --heatmap         request full heat maps (default score-only)\n"
      "  --swap PATH       hot-swap this checkpoint mid-run (needs --allow-swap)\n"
      "  --health          print the server's health frame (build, uptime, SLO,\n"
      "                    replica depths) and exit; non-zero only when unreachable\n"
      "  --check-p99-factor F  fail unless client p99 <= F x server p99 (0 = off)\n"
      "  --seed N          placement-pool seed (default 42)\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
      usage();
      std::exit(0);
    } else if (!std::strcmp(a, "--host")) {
      if (!(v = need_value(i))) return false;
      opt.host = v;
    } else if (!std::strcmp(a, "--port")) {
      if (!(v = need_value(i))) return false;
      opt.port = std::atoi(v);
    } else if (!std::strcmp(a, "--procs")) {
      if (!(v = need_value(i))) return false;
      opt.procs = std::atoi(v);
    } else if (!std::strcmp(a, "--conns")) {
      if (!(v = need_value(i))) return false;
      opt.conns = std::atoi(v);
    } else if (!std::strcmp(a, "--duration-ms")) {
      if (!(v = need_value(i))) return false;
      opt.duration_ms = std::atoll(v);
    } else if (!std::strcmp(a, "--width")) {
      if (!(v = need_value(i))) return false;
      opt.width = std::atoll(v);
    } else if (!std::strcmp(a, "--channels")) {
      if (!(v = need_value(i))) return false;
      opt.channels = std::atoll(v);
    } else if (!std::strcmp(a, "--pool")) {
      if (!(v = need_value(i))) return false;
      opt.pool = std::atoll(v);
    } else if (!std::strcmp(a, "--pipeline")) {
      if (!(v = need_value(i))) return false;
      opt.pipeline = std::atoll(v);
    } else if (!std::strcmp(a, "--heatmap")) {
      opt.want_heatmap = true;
    } else if (!std::strcmp(a, "--swap")) {
      if (!(v = need_value(i))) return false;
      opt.swap = v;
    } else if (!std::strcmp(a, "--health")) {
      opt.health = true;
    } else if (!std::strcmp(a, "--check-p99-factor")) {
      if (!(v = need_value(i))) return false;
      opt.check_p99_factor = std::atof(v);
    } else if (!std::strcmp(a, "--seed")) {
      if (!(v = need_value(i))) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", a);
      return false;
    }
  }
  return true;
}

/// The shared placement pool: every worker regenerates the same tensors from
/// (seed, index), so distinct processes submit overlapping content — cache
/// hits and stable shard assignment without any IPC.
nn::Tensor pool_tensor(const Options& opt, Index index) {
  Rng rng(opt.seed * 1000003 + static_cast<std::uint64_t>(index));
  nn::Tensor t(nn::Shape{1, opt.channels, opt.width, opt.width});
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform());
  return t;
}

/// One pipelined connection: keep `pipeline` requests in flight, read
/// responses as they come, stop submitting at the deadline, drain. Every
/// send-to-response round trip lands in the worker's
/// client_request_latency_seconds histogram; a connection dropped mid-run
/// reconnects (bounded) and keeps going instead of failing the swarm —
/// that is what lets a swarm ride over a server restart.
void run_connection(const Options& opt, std::uint64_t conn_seed, std::uint64_t initial_version,
                    Tally& tally) {
  obs::Histogram& latency = obs::MetricsRegistry::global().histogram(
      "client_request_latency_seconds", "client-observed send to response per request");
  obs::Counter& reconnects = obs::MetricsRegistry::global().counter(
      "client_reconnects_total", "mid-run reconnects after a dropped connection");
  constexpr int kMaxReconnects = 5;
  try {
    net::RetryPolicy retry;
    retry.max_retries = 3;
    net::Client client(opt.host, static_cast<std::uint16_t>(opt.port), net::kDefaultMaxPayload,
                       retry);
    Rng pick(conn_seed);
    Timer clock;
    std::uint64_t next_id = 1;
    Index in_flight = 0;
    // Responses come back in request order per connection, so a FIFO of
    // send times pairs each response with its request without an id map.
    std::deque<double> sent_at;
    int drops = 0;
    const double deadline_s = static_cast<double>(opt.duration_ms) / 1e3;
    while (true) {
      const bool time_left = clock.seconds() < deadline_s;
      if (!time_left && in_flight == 0) break;
      try {
        if (time_left && in_flight < opt.pipeline) {
          client.send_forecast(next_id++, pool_tensor(opt, pick.uniform_int(0, opt.pool - 1)),
                               opt.want_heatmap);
          sent_at.push_back(clock.seconds());
          in_flight += 1;
          continue;
        }
        const net::ForecastResponse resp = client.read_forecast_response();
        in_flight -= 1;
        if (!sent_at.empty()) {
          latency.record(clock.seconds() - sent_at.front());
          sent_at.pop_front();
        }
        switch (resp.status) {
          case net::Status::kOk:
            tally.completed += 1;
            if (resp.from_cache) tally.cache_hits += 1;
            if (resp.model_version > initial_version) {
              tally.post_swap += 1;
            } else {
              tally.pre_swap += 1;
            }
            break;
          case net::Status::kShed:
            tally.shed += 1;
            break;
          case net::Status::kFailed:
            tally.failed += 1;
            break;
        }
      } catch (const std::exception& e) {
        // The connection died mid-run. In-flight requests are lost (their
        // responses were never read); reconnect and keep submitting unless
        // the drop budget is spent or only the drain remained.
        if (++drops > kMaxReconnects) throw;
        if (!time_left) break;
        std::fprintf(stderr, "[conn %llu] reconnecting after: %s\n",
                     static_cast<unsigned long long>(conn_seed), e.what());
        client.reconnect();
        reconnects.fetch_add(1);
        tally.reconnects += 1;
        in_flight = 0;
        sent_at.clear();
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[conn %llu] %s\n", static_cast<unsigned long long>(conn_seed),
                 e.what());
    tally.wire_errors += 1;
  }
}

/// Worker process body: `conns` connection threads, plus (worker 0 with
/// --swap) a mid-run hot-swap on a dedicated connection.
Tally run_worker(const Options& opt, int worker_index) {
  // The initial model version is whatever the server reports before we
  // start — responses above it came from a hot-swapped model.
  std::uint64_t initial_version = 0;
  try {
    net::Client probe(opt.host, static_cast<std::uint16_t>(opt.port));
    const std::string text = probe.metrics_text();
    const std::size_t at = text.find("pool_model_version ");
    if (at != std::string::npos) {
      initial_version = std::strtoull(text.c_str() + at + std::strlen("pool_model_version "),
                                      nullptr, 10);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[worker %d] cannot reach server: %s\n", worker_index, e.what());
    Tally t;
    t.wire_errors += 1;
    return t;
  }

  std::vector<Tally> tallies(static_cast<std::size_t>(opt.conns));
  std::vector<std::thread> threads;
  for (int c = 0; c < opt.conns; ++c) {
    const std::uint64_t conn_seed =
        opt.seed + 7919 * static_cast<std::uint64_t>(worker_index * opt.conns + c + 1);
    threads.emplace_back([&opt, conn_seed, initial_version, &tallies, c] {
      run_connection(opt, conn_seed, initial_version, tallies[static_cast<std::size_t>(c)]);
    });
  }

  Tally total;
  if (!opt.swap.empty() && worker_index == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.duration_ms / 2));
    try {
      net::Client admin(opt.host, static_cast<std::uint16_t>(opt.port));
      const net::SwapResponse resp = admin.swap(opt.swap);
      if (resp.status == net::Status::kOk) {
        total.swap_ok = true;
        std::printf("[worker 0] hot-swapped %s -> v%llu mid-swarm\n", opt.swap.c_str(),
                    static_cast<unsigned long long>(resp.new_version));
      } else {
        std::fprintf(stderr, "[worker 0] hot swap failed: %s\n", resp.error.c_str());
        total.wire_errors += 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[worker 0] hot swap failed: %s\n", e.what());
      total.wire_errors += 1;
    }
  }

  for (auto& t : threads) t.join();
  for (const Tally& t : tallies) total += t;
  // Every connection thread recorded into this process's registry; ship the
  // bucket counts to the parent, which re-aggregates across workers.
  const obs::Histogram& latency =
      obs::MetricsRegistry::global().histogram("client_request_latency_seconds");
  total.latency_count = latency.count();
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    total.latency_buckets[b] = latency.bucket_count(b);
  }
  return total;
}

/// --health: one probe, human-readable dump of the kHealthResponse frame.
int run_health_probe(const Options& opt) {
  try {
    net::Client client(opt.host, static_cast<std::uint16_t>(opt.port));
    const net::HealthInfo h = client.health();
    const char* state = h.slo_state == 0 ? "healthy" : h.slo_state == 1 ? "warning" : "breached";
    std::printf("server %s:%d up %.1fs, model v%llu\n", opt.host.c_str(), opt.port,
                h.uptime_seconds, static_cast<unsigned long long>(h.model_version));
    std::printf("build: sha %s, %s, native kernel %s, backend %s\n", h.git_sha.c_str(),
                h.compiler.c_str(), h.native_kernel ? "yes" : "no", h.backend.c_str());
    std::printf("slo: %s; window p99 %.2f ms (burn %.2f), error rate %.4f (burn %.2f), "
                "%llu requests in window\n",
                state, h.window_p99_s * 1e3, h.latency_burn_rate, h.window_error_rate,
                h.error_burn_rate, static_cast<unsigned long long>(h.window_requests));
    std::printf("watchdog: %llu stalls, oldest in-flight %.1f ms\n",
                static_cast<unsigned long long>(h.watchdog_stalls), h.oldest_request_ms);
    std::printf("replicas:");
    for (std::size_t r = 0; r < h.replica_depths.size(); ++r) {
      std::printf(" [%zu] depth %u", r, h.replica_depths[r]);
    }
    std::printf("\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "health probe failed: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  if (opt.health) return run_health_probe(opt);
  if (opt.procs < 1 || opt.conns < 1 || opt.pool < 1 || opt.pipeline < 1) {
    std::fprintf(stderr, "procs, conns, pool and pipeline must all be >= 1\n");
    return 2;
  }

  // Fork the swarm. Each child writes one binary Tally over its pipe; the
  // parent aggregates. No shared memory, no partial-line interleaving.
  std::vector<pid_t> children;
  std::vector<int> pipes;
  for (int w = 0; w < opt.procs; ++w) {
    int fds[2];
    if (pipe(fds) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      close(fds[0]);
      const Tally tally = run_worker(opt, w);
      const ssize_t n = write(fds[1], &tally, sizeof(tally));
      close(fds[1]);
      _exit(n == sizeof(tally) ? 0 : 1);
    }
    close(fds[1]);
    children.push_back(pid);
    pipes.push_back(fds[0]);
  }

  Timer wall;
  Tally total;
  bool child_failure = false;
  for (int w = 0; w < opt.procs; ++w) {
    Tally tally;
    std::size_t got = 0;
    while (got < sizeof(tally)) {
      const ssize_t n = read(pipes[static_cast<std::size_t>(w)],
                             reinterpret_cast<char*>(&tally) + got, sizeof(tally) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    close(pipes[static_cast<std::size_t>(w)]);
    int status = 0;
    waitpid(children[static_cast<std::size_t>(w)], &status, 0);
    if (got != sizeof(tally) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "worker %d died (status %d)\n", w, status);
      child_failure = true;
      continue;
    }
    total += tally;
  }
  const double elapsed = wall.seconds();

  std::printf("\nswarm: %d procs x %d conns, pipeline %lld, %lldms; %llu answered\n", opt.procs,
              opt.conns, static_cast<long long>(opt.pipeline),
              static_cast<long long>(opt.duration_ms),
              static_cast<unsigned long long>(total.completed + total.shed + total.failed));
  std::printf("completed %llu (%.1f req/s), shed %llu, failed %llu, wire errors %llu\n",
              static_cast<unsigned long long>(total.completed),
              static_cast<double>(total.completed) / std::max(elapsed, 1e-9),
              static_cast<unsigned long long>(total.shed),
              static_cast<unsigned long long>(total.failed),
              static_cast<unsigned long long>(total.wire_errors));
  std::printf("cache hits %llu; versions: %llu initial, %llu post-swap\n",
              static_cast<unsigned long long>(total.cache_hits),
              static_cast<unsigned long long>(total.pre_swap),
              static_cast<unsigned long long>(total.post_swap));

  // Cross-worker client latency: the bucket counts shipped over the pipes
  // form one distribution the parent can take honest quantiles of.
  std::array<std::uint64_t, obs::Histogram::kBuckets> agg{};
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) agg[static_cast<std::size_t>(b)] =
      total.latency_buckets[b];
  const double client_p50_ms = obs::Histogram::quantile_of(agg, 0.50) * 1e3;
  const double client_p99_ms = obs::Histogram::quantile_of(agg, 0.99) * 1e3;
  std::printf("client latency p50 %.2f ms, p99 %.2f ms (%llu samples); reconnects %llu\n",
              client_p50_ms, client_p99_ms,
              static_cast<unsigned long long>(total.latency_count),
              static_cast<unsigned long long>(total.reconnects));

  // The smoke contract: real traffic flowed, nothing broke, and — when a
  // swap was requested — it succeeded and post-swap answers exist.
  bool ok = !child_failure && total.completed > 0 && total.wire_errors == 0 &&
            total.failed == 0;
  if (!opt.swap.empty()) ok = ok && total.swap_ok && total.post_swap > 0;

  // Client-vs-server p99 sanity: the two views of the same traffic must
  // agree within a (generous) factor — pipelined requests queue client-side
  // before the server's accept clock starts, so the client p99 is naturally
  // the larger one.
  if (opt.check_p99_factor > 0.0 && total.latency_count > 0) {
    try {
      net::Client probe(opt.host, static_cast<std::uint16_t>(opt.port));
      const std::string text = probe.metrics_text();
      double server_p99_ms = 0.0;
      const std::size_t at = text.find("net_latency_p99_ms ");
      if (at != std::string::npos) {
        server_p99_ms = std::atof(text.c_str() + at + std::strlen("net_latency_p99_ms "));
      }
      if (server_p99_ms <= 0.0) {
        std::fprintf(stderr, "p99 check: server reported no latency samples\n");
        ok = false;
      } else if (client_p99_ms > opt.check_p99_factor * server_p99_ms) {
        std::fprintf(stderr,
                     "p99 check FAILED: client %.2f ms > %.1f x server %.2f ms\n",
                     client_p99_ms, opt.check_p99_factor, server_p99_ms);
        ok = false;
      } else {
        std::printf("p99 check: client %.2f ms within %.1fx of server %.2f ms\n",
                    client_p99_ms, opt.check_p99_factor, server_p99_ms);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "p99 check failed to scrape the server: %s\n", e.what());
      ok = false;
    }
  }
  std::printf("%s\n", ok ? "SWARM OK" : "SWARM FAILED");
  return ok ? 0 : 1;
}
