#!/usr/bin/env python3
"""Checks that markdown cross-references in README.md and docs/ resolve.

For every relative link [text](target) in the scanned files:
  * the target file must exist (resolved against the linking file), and
  * if the link carries a #fragment, the target file must contain a heading
    whose GitHub-style slug matches it.
External links (http/https/mailto) are not fetched. Exits non-zero with one
line per broken link, so CI can gate on it.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(path.read_text(encoding="utf-8"))}


def check_file(md: Path, repo_root: Path) -> list:
    errors = []
    for match in LINK_RE.finditer(md.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        ref, _, fragment = target.partition("#")
        resolved = (md.parent / ref).resolve() if ref else md.resolve()
        if not resolved.exists():
            errors.append(f"{md.relative_to(repo_root)}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md" and slugify(fragment) not in anchors_of(resolved):
            errors.append(f"{md.relative_to(repo_root)}: missing anchor -> {target}")
    return errors


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    files = sorted([repo_root / "README.md", *(repo_root / "docs").glob("*.md")])
    errors = []
    for md in files:
        if md.exists():
            errors.extend(check_file(md, repo_root))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files: {'FAIL' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
