// train_cgan — the training pipeline as a command line tool.
//
// Generates (or loads from a cache) a routed design suite with the synthetic
// FPGA toolchain, trains the cGAN with the mini-batched Trainer, and leaves
// last/best checkpoints that ForecastServer hot-swaps directly. See
// docs/training.md for the full flag reference and recipes.
//
// --smoke is the CI entry point: a seconds-scale end-to-end run that asserts
// the train L1 actually decreased and that the produced checkpoint loads
// into a ForecastServer and serves a prediction.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "common/timer.h"
#include "data/dataset_io.h"
#include "data/splits.h"
#include "fpga/design_suite.h"
#include "serve/forecast_server.h"
#include "train/trainer.h"

namespace {

using paintplace::Index;
namespace nn = paintplace::nn;
namespace core = paintplace::core;
namespace data = paintplace::data;
namespace fpga = paintplace::fpga;
namespace serve = paintplace::serve;
namespace train = paintplace::train;

struct Options {
  std::vector<std::string> designs = {"diffeq1", "diffeq2"};
  double scale = 0.04;
  Index width = 64;
  Index placements = 20;
  Index epochs = 10;
  Index batch = 4;
  float lr = 1e-3f;
  Index base_channels = 8;
  Index max_channels = 64;
  core::NormKind norm = core::NormKind::kBatch;
  bool dropout = true;
  float lambda_l1 = 50.0f;
  double val_fraction = 0.15;
  std::uint64_t seed = 1;
  std::string out = "train_out";
  bool resume = false;
  std::string cache;
  std::string backend;
  std::string fine_tune;
  float fine_tune_lr_scale = 0.5f;
  bool smoke = false;

  bool lambda_set = false;  ///< --lambda given explicitly (applies under --fine-tune)
  std::string arch_flag;    ///< first architecture flag seen (conflicts with --fine-tune)
};

void usage() {
  std::printf(
      "train_cgan — mini-batched cGAN training over a synthetic design suite\n\n"
      "usage: train_cgan [options]\n"
      "  --designs a,b,..       Table 2 design names (default diffeq1,diffeq2)\n"
      "  --scale F              design size factor (default 0.04)\n"
      "  --width N              image/model resolution, power of two (default 64)\n"
      "  --placements N         placements per design (default 20)\n"
      "  --epochs N             training epochs (default 10)\n"
      "  --batch N              mini-batch size (default 4)\n"
      "  --lr F                 Adam learning rate (default 1e-3)\n"
      "  --base-channels N      first encoder width (default 8)\n"
      "  --max-channels N       channel cap (default 64)\n"
      "  --norm batch|instance  normalisation family (default batch)\n"
      "  --no-dropout           disable the noise z (deterministic generator)\n"
      "  --lambda F             L1 weight of Eq. 2 (default 50)\n"
      "  --val-fraction F       held-out fraction for validation (default 0.15)\n"
      "  --seed N               master seed (default 1)\n"
      "  --out DIR              checkpoint directory (default train_out)\n"
      "  --resume               continue from DIR's last.ckpt\n"
      "  --cache DIR            dataset cache: reuse routed suites across runs\n"
      "  --backend NAME         compute backend (reference|cpu_opt)\n"
      "  --fine-tune CKPT       strategy 2: start from CKPT, optimizers reset\n"
      "                         (architecture flags are rejected: the width/\n"
      "                         channel/norm/dropout setup comes from CKPT)\n"
      "  --fine-tune-lr-scale F learning-rate scale for --fine-tune (default 0.5)\n"
      "  --smoke                tiny CI preset + end-to-end self-checks\n");
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
      usage();
      std::exit(0);
    } else if (!std::strcmp(a, "--designs")) {
      if (!(v = need_value(i))) return false;
      opt.designs = split_csv(v);
    } else if (!std::strcmp(a, "--scale")) {
      if (!(v = need_value(i))) return false;
      opt.scale = std::atof(v);
    } else if (!std::strcmp(a, "--width")) {
      if (!(v = need_value(i))) return false;
      opt.width = std::atoll(v);
      if (opt.arch_flag.empty()) opt.arch_flag = "--width";
    } else if (!std::strcmp(a, "--placements")) {
      if (!(v = need_value(i))) return false;
      opt.placements = std::atoll(v);
    } else if (!std::strcmp(a, "--epochs")) {
      if (!(v = need_value(i))) return false;
      opt.epochs = std::atoll(v);
    } else if (!std::strcmp(a, "--batch")) {
      if (!(v = need_value(i))) return false;
      opt.batch = std::atoll(v);
    } else if (!std::strcmp(a, "--lr")) {
      if (!(v = need_value(i))) return false;
      opt.lr = static_cast<float>(std::atof(v));
    } else if (!std::strcmp(a, "--base-channels")) {
      if (!(v = need_value(i))) return false;
      opt.base_channels = std::atoll(v);
      if (opt.arch_flag.empty()) opt.arch_flag = "--base-channels";
    } else if (!std::strcmp(a, "--max-channels")) {
      if (!(v = need_value(i))) return false;
      opt.max_channels = std::atoll(v);
      if (opt.arch_flag.empty()) opt.arch_flag = "--max-channels";
    } else if (!std::strcmp(a, "--norm")) {
      if (!(v = need_value(i))) return false;
      if (!std::strcmp(v, "batch")) {
        opt.norm = core::NormKind::kBatch;
      } else if (!std::strcmp(v, "instance")) {
        opt.norm = core::NormKind::kInstance;
      } else {
        std::fprintf(stderr, "unknown norm '%s' (batch|instance)\n", v);
        return false;
      }
      if (opt.arch_flag.empty()) opt.arch_flag = "--norm";
    } else if (!std::strcmp(a, "--no-dropout")) {
      opt.dropout = false;
      if (opt.arch_flag.empty()) opt.arch_flag = "--no-dropout";
    } else if (!std::strcmp(a, "--lambda")) {
      if (!(v = need_value(i))) return false;
      opt.lambda_l1 = static_cast<float>(std::atof(v));
      opt.lambda_set = true;
    } else if (!std::strcmp(a, "--val-fraction")) {
      if (!(v = need_value(i))) return false;
      opt.val_fraction = std::atof(v);
    } else if (!std::strcmp(a, "--seed")) {
      if (!(v = need_value(i))) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (!std::strcmp(a, "--out")) {
      if (!(v = need_value(i))) return false;
      opt.out = v;
    } else if (!std::strcmp(a, "--resume")) {
      opt.resume = true;
    } else if (!std::strcmp(a, "--cache")) {
      if (!(v = need_value(i))) return false;
      opt.cache = v;
    } else if (!std::strcmp(a, "--backend")) {
      if (!(v = need_value(i))) return false;
      opt.backend = v;
    } else if (!std::strcmp(a, "--fine-tune")) {
      if (!(v = need_value(i))) return false;
      opt.fine_tune = v;
    } else if (!std::strcmp(a, "--fine-tune-lr-scale")) {
      if (!(v = need_value(i))) return false;
      opt.fine_tune_lr_scale = static_cast<float>(std::atof(v));
    } else if (!std::strcmp(a, "--smoke")) {
      opt.smoke = true;
    } else {
      std::fprintf(stderr, "unknown option '%s' (see --help)\n", a);
      return false;
    }
  }
  return true;
}

void apply_smoke_preset(Options& opt) {
  opt.designs = {"diffeq1"};
  opt.scale = 0.02;
  opt.width = 16;
  opt.placements = 16;
  opt.epochs = 2;
  opt.batch = 2;
  opt.lr = 2e-3f;
  opt.base_channels = 4;
  opt.max_channels = 8;
  opt.val_fraction = 0.25;
  if (opt.out == "train_out") opt.out = "train_out_smoke";
}

/// One routed dataset per design, from the cache when possible.
std::vector<data::Dataset> build_suite(const Options& opt) {
  std::vector<data::Dataset> suite;
  for (std::size_t d = 0; d < opt.designs.size(); ++d) {
    const std::string& name = opt.designs[d];
    // The generation seed depends on the design's position in --designs, so
    // it must be part of the cache key — otherwise a cached suite could
    // silently differ from what the same flags would generate fresh.
    const std::uint64_t design_seed = opt.seed + static_cast<std::uint64_t>(d);
    std::string cache_path;
    if (!opt.cache.empty()) {
      std::ostringstream key;
      key << name << "_s" << opt.scale << "_w" << opt.width << "_p" << opt.placements << "_r"
          << design_seed << ".ppds";
      cache_path = (std::filesystem::path(opt.cache) / key.str()).string();
      if (std::filesystem::exists(cache_path)) {
        std::printf("[data] %s: cached (%s)\n", name.c_str(), cache_path.c_str());
        suite.push_back(data::load_dataset(cache_path));
        continue;
      }
    }
    paintplace::Timer t;
    const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name(name), opt.scale);
    fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, design_seed);
    const fpga::NetlistStats stats = nl.stats();
    fpga::Arch arch = fpga::Arch::auto_sized(
        {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});
    data::DatasetConfig cfg;
    cfg.image_width = opt.width;
    cfg.sweep.num_placements = opt.placements;
    cfg.sweep.base_seed = design_seed * 1000 + 1;
    suite.push_back(data::build_dataset(nl, arch, cfg));
    std::printf("[data] %s: placed+routed %zu samples in %.1fs\n", name.c_str(),
                suite.back().samples.size(), t.seconds());
    if (!cache_path.empty()) {
      std::filesystem::create_directories(opt.cache);
      data::save_dataset(suite.back(), cache_path);
      std::printf("[data] %s: cached to %s\n", name.c_str(), cache_path.c_str());
    }
  }
  return suite;
}

/// Loads a checkpoint into a fresh ForecastServer and serves one request —
/// the "the checkpoint actually deploys" half of the smoke check.
serve::ForecastResult serve_round_trip(const std::string& ckpt, const nn::Tensor& input) {
  auto model = std::make_shared<core::CongestionForecaster>(core::Pix2Pix::peek_config(ckpt));
  model->load(ckpt);
  serve::ServeConfig cfg;
  serve::ForecastServer server(cfg, std::move(model), ckpt);
  return server.submit(input).get();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  if (!opt.fine_tune.empty() && !opt.arch_flag.empty()) {
    std::fprintf(stderr,
                 "%s cannot be combined with --fine-tune: the architecture comes from the "
                 "checkpoint\n",
                 opt.arch_flag.c_str());
    return 2;
  }
  if (opt.smoke) apply_smoke_preset(opt);
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);

  try {
    if (!opt.backend.empty()) paintplace::backend::set_active_backend(opt.backend);
    std::printf("== train_cgan ==\nbackend: %s, designs:",
                paintplace::backend::active_backend().name());
    for (const std::string& d : opt.designs) std::printf(" %s", d.c_str());
    std::printf(", width %lld, %lld placements/design, %lld epochs, batch %lld\n\n",
                static_cast<long long>(opt.width), static_cast<long long>(opt.placements),
                static_cast<long long>(opt.epochs), static_cast<long long>(opt.batch));

    // ---- Data: synthetic designs -> SA placements -> routed ground truth.
    const std::vector<data::Dataset> suite = build_suite(opt);
    std::vector<const data::Sample*> all;
    for (const data::Dataset& ds : suite) {
      for (const data::Sample& s : ds.samples) all.push_back(&s);
    }
    auto [train_samples, val_samples] =
        data::train_val_split(all, opt.val_fraction, opt.seed * 7919 + 13);
    std::printf("[data] %zu train / %zu val samples\n\n", train_samples.size(),
                val_samples.size());

    // ---- Model: fresh, or a checkpoint to fine-tune (strategy 2).
    core::Pix2PixConfig model_cfg;
    if (!opt.fine_tune.empty()) {
      model_cfg = core::Pix2Pix::peek_config(opt.fine_tune);
      model_cfg.adam.lr = opt.lr;
      // Tunable hyperparameters still apply; only the architecture is pinned
      // to the checkpoint (explicit architecture flags were rejected above).
      if (opt.lambda_set) model_cfg.lambda_l1 = opt.lambda_l1;
    } else {
      model_cfg.generator.in_channels = 4;
      model_cfg.generator.out_channels = 3;
      model_cfg.generator.image_size = opt.width;
      model_cfg.generator.base_channels = opt.base_channels;
      model_cfg.generator.max_channels = opt.max_channels;
      model_cfg.generator.norm = opt.norm;
      model_cfg.generator.dropout = opt.dropout;
      model_cfg.lambda_l1 = opt.lambda_l1;
      model_cfg.disc_base_channels = opt.base_channels;
      model_cfg.adam.lr = opt.lr;
      model_cfg.seed = opt.seed;
    }
    core::CongestionForecaster forecaster(model_cfg);
    if (!opt.fine_tune.empty()) {
      forecaster.load(opt.fine_tune);
      forecaster.model().reset_optimizers(opt.lr * opt.fine_tune_lr_scale);
      std::printf("[model] fine-tuning %s at lr %.2g\n", opt.fine_tune.c_str(),
                  static_cast<double>(opt.lr * opt.fine_tune_lr_scale));
    }

    // ---- Train.
    train::TrainerConfig tc;
    tc.epochs = opt.epochs;
    tc.batch_size = opt.batch;
    tc.seed = opt.seed * 31 + 7;
    tc.checkpoint_dir = opt.out;
    tc.resume = opt.resume;
    tc.on_epoch = [](const train::EpochStats& e) {
      std::printf("[epoch %3lld] %4lld steps  d %.4f  g_gan %.4f  g_l1 %.4f",
                  static_cast<long long>(e.epoch), static_cast<long long>(e.steps),
                  e.train.d_loss, e.train.g_gan, e.train.g_l1);
      if (e.has_validation) {
        std::printf("  | val l1 %.4f acc %.3f rank %.3f%s", e.val_l1, e.val_pixel_accuracy,
                    e.val_rank_correlation, e.is_best ? "  *best*" : "");
      }
      std::printf("  (%.1fs: data %.2f, G-fwd %.2f, D %.2f, G-bwd %.2f)\n", e.epoch_seconds,
                  e.data_seconds, e.phases.g_forward_s, e.phases.d_step_s, e.phases.g_step_s);
    };
    train::Trainer trainer(forecaster, tc);
    if (opt.resume && trainer.start_epoch() > 0) {
      std::printf("[resume] continuing at epoch %lld (best val l1 %.4f)\n",
                  static_cast<long long>(trainer.start_epoch()), trainer.best_val_l1());
    }
    const std::vector<train::EpochStats> history = trainer.run(train_samples, val_samples);
    if (history.empty()) {
      std::printf("nothing to do (already trained to epoch %lld)\n",
                  static_cast<long long>(trainer.start_epoch()));
      return 0;
    }

    const std::string best_path =
        (std::filesystem::path(opt.out) / train::Trainer::kBestCheckpoint).string();
    const std::string last_path =
        (std::filesystem::path(opt.out) / train::Trainer::kLastCheckpoint).string();
    const std::string deploy = std::filesystem::exists(best_path) ? best_path : last_path;
    std::printf("\ncheckpoints in %s (deployable: %s)\n", opt.out.c_str(), deploy.c_str());

    // ---- Deploy check: the checkpoint must serve through a ForecastServer.
    const nn::Tensor& probe = val_samples.empty() ? train_samples.front()->input
                                                  : val_samples.front()->input;
    const serve::ForecastResult result = serve_round_trip(deploy, probe);
    std::printf("[serve] round trip ok: heat map %s, score %.4f, model v%llu\n",
                result.heatmap.shape().str().c_str(), result.congestion_score,
                static_cast<unsigned long long>(result.model_version));

    if (opt.smoke) {
      const double first = history.front().train.g_l1;
      const double last = history.back().train.g_l1;
      std::printf("[smoke] train L1 %.4f -> %.4f\n", first, last);
      if (!(last < first)) {
        std::fprintf(stderr, "[smoke] FAIL: train L1 did not decrease (%.4f -> %.4f)\n", first,
                     last);
        return 1;
      }
      if (result.heatmap.rank() != 4 || result.heatmap.dim(1) != 3 ||
          !std::isfinite(result.congestion_score)) {
        std::fprintf(stderr, "[smoke] FAIL: served prediction malformed\n");
        return 1;
      }
      std::printf("[smoke] PASS\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "train_cgan: %s\n", e.what());
    return 1;
  }
  return 0;
}
