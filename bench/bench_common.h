// Shared infrastructure for the paper-reproduction benches: the scale
// configuration (CPU-friendly defaults, paper-scale via PAINT_FULL=1), and
// the design -> dataset -> trained-forecaster pipeline every table/figure
// harness uses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/forecaster.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "fpga/design_suite.h"

namespace paintplace::bench {

/// Experiment scale. Defaults run the whole bench suite on a laptop-class
/// CPU; PAINT_FULL=1 switches to the paper's parameters (256x256, 200
/// placements/design, 250 epochs — hours to days on CPU). Individual knobs:
/// PAINT_SCALE, PAINT_WIDTH, PAINT_PLACEMENTS, PAINT_EPOCHS, PAINT_BASE.
struct Scale {
  double design_scale = 0.04;  ///< fraction of Table 2 design sizes
  Index image_width = 64;      ///< paper: 256
  Index base_channels = 8;     ///< paper: 64
  Index max_channels = 64;     ///< paper: 512
  Index placements = 20;       ///< #P per design; paper: 200
  Index epochs = 12;           ///< paper: 250
  Index fine_tune_pairs = 10;  ///< paper: 10 (strategy 2)
  Index fine_tune_epochs = 6;
  Index max_train_samples = 72;  ///< cap on leave-one-out training sets
  float lr = 1e-3f;            ///< paper: 2e-4 (restored under PAINT_FULL)
  bool full = false;

  static Scale from_env() {
    Scale s;
    if (const char* v = std::getenv("PAINT_FULL"); v != nullptr && v[0] == '1') {
      s = Scale{1.0, 256, 64, 512, 200, 250, 10, 25, 1400, 2e-4f, true};
    }
    auto env_ll = [](const char* name, Index& out) {
      if (const char* v = std::getenv(name)) out = std::atoll(v);
    };
    auto env_d = [](const char* name, double& out) {
      if (const char* v = std::getenv(name)) out = std::atof(v);
    };
    env_d("PAINT_SCALE", s.design_scale);
    env_ll("PAINT_WIDTH", s.image_width);
    env_ll("PAINT_PLACEMENTS", s.placements);
    env_ll("PAINT_EPOCHS", s.epochs);
    env_ll("PAINT_BASE", s.base_channels);
    return s;
  }

  void print(const char* bench_name) const {
    // Progress must reach pipes/tee promptly: these harnesses run minutes.
    std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
    std::printf("== %s ==\n", bench_name);
    std::printf(
        "scale: designs x%.3g, images %lldx%lld, %lld placements/design, %lld epochs%s\n\n",
        design_scale, static_cast<long long>(image_width), static_cast<long long>(image_width),
        static_cast<long long>(placements), static_cast<long long>(epochs),
        full ? " [PAINT_FULL]" : " (paper scale via PAINT_FULL=1)");
  }
};

/// A Table 2 design instantiated at the current scale, with its fabric and
/// routed dataset.
struct DesignWorld {
  std::string name;
  fpga::Netlist netlist;
  fpga::Arch arch;
  data::Dataset dataset;
  double mean_route_seconds = 0.0;
};

inline DesignWorld build_world(const std::string& design_name, const Scale& scale,
                               std::uint64_t seed = 1) {
  const fpga::DesignSpec spec =
      fpga::scale_spec(fpga::design_by_name(design_name), scale.design_scale);
  fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, seed);
  const fpga::NetlistStats stats = nl.stats();
  fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});
  data::DatasetConfig cfg;
  cfg.image_width = scale.image_width;
  cfg.sweep.num_placements = scale.placements;
  cfg.sweep.base_seed = seed * 1000 + 1;
  data::Dataset ds = data::build_dataset(nl, arch, cfg);
  double route_total = 0.0;
  for (const data::Sample& s : ds.samples) route_total += s.meta.route_seconds;
  DesignWorld world{design_name, std::move(nl), std::move(arch), std::move(ds), 0.0};
  world.mean_route_seconds = route_total / static_cast<double>(world.dataset.samples.size());
  return world;
}

inline core::Pix2PixConfig model_config(const Scale& scale,
                                        core::SkipMode skips = core::SkipMode::kAll,
                                        bool use_l1 = true, Index in_channels = 4) {
  core::Pix2PixConfig cfg;
  cfg.generator.in_channels = in_channels;
  cfg.generator.image_size = scale.image_width;
  cfg.generator.base_channels = scale.base_channels;
  cfg.generator.max_channels = scale.max_channels;
  cfg.generator.skips = skips;
  cfg.disc_base_channels = scale.base_channels;
  cfg.use_l1 = use_l1;
  cfg.adam.lr = scale.lr;
  return cfg;
}

inline std::vector<const data::Sample*> all_samples(const data::Dataset& ds) {
  std::vector<const data::Sample*> out;
  out.reserve(ds.samples.size());
  for (const data::Sample& s : ds.samples) out.push_back(&s);
  return out;
}

}  // namespace paintplace::bench
