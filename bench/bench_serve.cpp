// Serving-engine benchmark: batched inference throughput vs the sequential
// single-request baseline, end-to-end server throughput under concurrent
// clients, and the effect of the result cache on repeat-heavy workloads.
//
// The serving model is channel-fat at moderate resolution (the regime where
// per-sample GEMMs degenerate to a handful of columns and batching recovers
// SIMD width and instruction-level parallelism — see Conv2d::forward).
// Override with PAINT_SERVE_WIDTH / PAINT_SERVE_BASE / PAINT_SERVE_REQS.
// Emits BENCH_serve.json (see bench_json.h) alongside the stdout report.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "bench/bench_json.h"
#include "bench/gemm_shapes.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "nn/tensor_ops.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "serve/forecast_server.h"

using namespace paintplace;

namespace {

Index env_index(const char* name, Index fallback) {
  if (const char* v = std::getenv(name)) return std::atoll(v);
  return fallback;
}

nn::Tensor random_input(Index width, std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t(nn::Shape{1, 4, width, width});
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform());
  return t;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  const Index width = env_index("PAINT_SERVE_WIDTH", 32);
  const Index base = env_index("PAINT_SERVE_BASE", 32);
  // At least 16 so every batch size and client count below gets real work.
  const Index reps = std::max<Index>(16, env_index("PAINT_SERVE_REQS", 48));

  std::printf("== paintplace::serve throughput ==\n");
  std::printf("model: %lldx%lld inputs, base %lld, max %lld channels; %lld requests/run\n",
              static_cast<long long>(width), static_cast<long long>(width),
              static_cast<long long>(base), static_cast<long long>(base * 8),
              static_cast<long long>(reps));
  // Numbers below are attributable: they depend on which GEMM backend the
  // forward passes dispatch to and how many pool workers it fans out over.
  std::printf("compute backend: %s; pool workers: %d\n\n", backend::active_backend().name(),
              parallel_workers());

  bench::BenchReport report("serve");
  report.meta(bench::jint("width", width));
  report.meta(bench::jint("base_channels", base));
  report.meta(bench::jint("requests", reps));
  report.meta(bench::jstr("backend", backend::active_backend().name()));
  report.meta(bench::jint("pool_workers", parallel_workers()));

  // GEMM context for the serving numbers — same U-Net shape sweep as
  // bench_gemm, batch 4, aggregated per backend.
  {
    core::GeneratorConfig gen;
    gen.in_channels = 4;
    gen.image_size = width;
    gen.base_channels = base;
    gen.max_channels = base * 8;
    std::printf("GEMM backends on this model's layer shapes (batch 4):\n");
    for (const std::string& name : backend::backend_names()) {
      const backend::ComputeBackend* be = backend::find_backend(name);
      double flops = 0.0, secs = 0.0;
      for (const bench::GemmShape& s : bench::unet_gemm_shapes(gen, 4)) {
        std::vector<float> A(static_cast<std::size_t>(s.M * s.K), 0.5f);
        std::vector<float> B(static_cast<std::size_t>(s.K * s.N), 0.25f);
        std::vector<float> C(static_cast<std::size_t>(s.M * s.N), 0.0f);
        const double gfs = bench::time_gemm(*be, s, A.data(), B.data(), C.data(), 0.02);
        flops += s.flops();
        secs += s.flops() / (gfs * 1e9);
      }
      std::printf("  %-12s %8.2f GFLOP/s aggregate%s\n", name.c_str(), flops / secs / 1e9,
                  name == backend::active_backend().name() ? "   (active)" : "");
    }
    std::printf("\n");
  }

  core::Pix2PixConfig cfg;
  cfg.generator.in_channels = 4;
  cfg.generator.image_size = width;
  cfg.generator.base_channels = base;
  cfg.generator.max_channels = base * 8;
  cfg.disc_base_channels = base;
  auto model = std::make_shared<core::CongestionForecaster>(cfg);
  model->set_deterministic_inference(true);

  std::vector<nn::Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(reps));
  for (Index i = 0; i < reps; ++i) inputs.push_back(random_input(width, 1000 + i));

  // ---- 1. Batched forward pass vs sequential predict() ---------------------
  (void)model->predict(inputs[0]);  // warm up allocators/pool
  Timer t_seq;
  for (Index i = 0; i < reps; ++i) (void)model->predict(inputs[i]);
  const double seq_s = t_seq.seconds();
  const double seq_rps = static_cast<double>(reps) / seq_s;
  std::printf("%-28s %10.1f ms/req %10.2f req/s   (baseline)\n", "sequential predict()",
              1e3 * seq_s / static_cast<double>(reps), seq_rps);
  report.sample({bench::jstr("section", "sequential"), bench::jnum("req_per_s", seq_rps),
                 bench::jnum("ms_per_req", 1e3 * seq_s / static_cast<double>(reps))});

  double speedup_at_4 = 0.0;
  for (Index b : {2, 4, 8, 16}) {
    Timer t_bat;
    for (Index i = 0; i < reps; i += b) {
      std::vector<const nn::Tensor*> ptrs;
      for (Index j = i; j < i + b; ++j) ptrs.push_back(&inputs[j % reps]);
      (void)model->predict_batch(nn::stack_batch(ptrs));
    }
    const double bat_s = t_bat.seconds();
    const double speedup = seq_s / bat_s;
    if (b == 4) speedup_at_4 = speedup;
    std::printf("predict_batch(%-2lld)           %10.1f ms/req %10.2f req/s   (%.2fx)\n",
                static_cast<long long>(b), 1e3 * bat_s / static_cast<double>(reps),
                static_cast<double>(reps) / bat_s, speedup);
    report.sample({bench::jstr("section", "batched"), bench::jint("batch", b),
                   bench::jnum("req_per_s", static_cast<double>(reps) / bat_s),
                   bench::jnum("speedup", speedup)});
  }
  std::printf("\nbatched speedup at batch 4: %.2fx (acceptance floor: 2x)\n\n", speedup_at_4);

  // ---- 2. End-to-end server under concurrent closed-loop clients -----------
  std::printf("%-12s %-12s %-12s %-12s %-12s\n", "clients", "req/s", "mean batch", "max batch",
              "speedup");
  double one_client_rps = 0.0;
  for (int clients : {1, 2, 4, 8}) {
    serve::ServeConfig scfg;
    scfg.max_batch = 8;
    scfg.max_wait = std::chrono::microseconds(2000);
    scfg.cache_capacity = 0;  // distinct inputs; isolate the batching effect
    scfg.deterministic = true;
    auto serve_model = std::make_shared<core::CongestionForecaster>(cfg);
    serve::ForecastServer server(scfg, std::move(serve_model));
    Timer t_srv;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (Index i = 0; i < reps / clients; ++i) {
          const Index idx = (c * (reps / clients) + i) % reps;
          server.submit(inputs[static_cast<std::size_t>(idx)]).get();
        }
      });
    }
    for (auto& th : threads) th.join();
    const double rps = static_cast<double>((reps / clients) * clients) / t_srv.seconds();
    if (clients == 1) one_client_rps = rps;
    const serve::ServeStats stats = server.stats();
    std::printf("%-12d %-12.2f %-12.2f %-12llu %-12.2f\n", clients, rps, stats.mean_batch(),
                static_cast<unsigned long long>(stats.max_batch), rps / one_client_rps);
    report.sample({bench::jstr("section", "server"), bench::jint("clients", clients),
                   bench::jnum("req_per_s", rps), bench::jnum("mean_batch", stats.mean_batch()),
                   bench::jnum("speedup", rps / one_client_rps)});
  }

  // ---- 3. Repeat-heavy workload: the result cache ---------------------------
  const Index pool_size = std::max<Index>(1, reps / 8);
  std::printf("\ncache (4 clients resubmitting %lld distinct placements):\n",
              static_cast<long long>(pool_size));
  {
    serve::ServeConfig scfg;
    scfg.max_batch = 8;
    scfg.max_wait = std::chrono::microseconds(2000);
    scfg.cache_capacity = 1024;
    auto serve_model = std::make_shared<core::CongestionForecaster>(cfg);
    serve::ForecastServer server(scfg, std::move(serve_model));
    const Index pool = pool_size;
    Timer t_cache;
    std::vector<std::thread> threads;
    for (int c = 0; c < 4; ++c) {
      threads.emplace_back([&, c] {
        Rng pick(static_cast<std::uint64_t>(c) + 77);
        for (Index i = 0; i < reps; ++i) {
          const Index idx = pick.uniform_int(0, pool - 1);
          server.submit(inputs[static_cast<std::size_t>(idx)]).get();
        }
      });
    }
    for (auto& th : threads) th.join();
    const double rps = static_cast<double>(4 * reps) / t_cache.seconds();
    const serve::ServeStats stats = server.stats();
    std::printf("  %.2f req/s — %.0f%% cache hits, %llu coalesced, %llu model samples "
                "(%.1fx over uncached single-client)\n",
                rps,
                100.0 * static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.requests),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.model_samples), rps / one_client_rps);
    report.sample(
        {bench::jstr("section", "cache"), bench::jnum("req_per_s", rps),
         bench::jnum("hit_rate", static_cast<double>(stats.cache_hits) /
                                     static_cast<double>(stats.requests)),
         bench::jnum("speedup", rps / one_client_rps)});
  }
  // ---- 4. Tracing + profiling overhead guard --------------------------------
  // The request path is instrumented with obs::Span at every layer (net,
  // pool, serve, core, per-layer, per-GEMM). With the tracer, the tail
  // sampler AND the profiler all disabled — the production default — a Span
  // must cost one relaxed atomic load (tracing and profiling share one
  // combined flags word; the sampler only runs behind an enabled tracer).
  // Measure that cost directly and bound the implied fraction of a request's
  // budget: even at a generous 64 spans/request, it must stay under 2% of
  // the single-client request time measured above.
  {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().sampler().disable();
    obs::Profiler::instance().stop();
    constexpr int kSpanReps = 2'000'000;
    Timer t_span;
    for (int i = 0; i < kSpanReps; ++i) {
      obs::Span span("bench.disabled", "bench");
    }
    const double ns_per_span = t_span.seconds() * 1e9 / kSpanReps;
    const double spans_per_req = 64.0;
    const double req_ns = 1e9 / one_client_rps;
    const double overhead = spans_per_req * ns_per_span / req_ns;
    std::printf("\ndisabled-tracing span cost: %.1f ns/span — %.4f%% of a request at %.0f "
                "spans/req (budget: 2%%)\n",
                ns_per_span, 100.0 * overhead, spans_per_req);
    report.sample({bench::jstr("section", "trace_overhead"),
                   bench::jnum("ns_per_disabled_span", ns_per_span),
                   bench::jnum("overhead_fraction", overhead)});
    if (overhead >= 0.02) {
      std::printf("FAIL: disabled tracing costs %.2f%% of request time (>= 2%%)\n",
                  100.0 * overhead);
      report.write();
      return 1;
    }
  }

  // ---- 5. Span-stack profiler on the serving path ---------------------------
  // Run a short single-client server workload with the sampling profiler on
  // and show where the samples land. The folded stacks should put the bulk
  // of the time under serve.run_batch's forward pass — if they don't, the
  // pipeline is spending its budget outside the model.
  {
    obs::Profiler& prof = obs::Profiler::instance();
    prof.clear();
    prof.start(std::chrono::microseconds(200));
    serve::ServeConfig scfg;
    scfg.max_batch = 8;
    scfg.max_wait = std::chrono::microseconds(2000);
    scfg.cache_capacity = 0;
    auto serve_model = std::make_shared<core::CongestionForecaster>(cfg);
    serve::ForecastServer server(scfg, std::move(serve_model));
    for (Index i = 0; i < reps; ++i) {
      server.submit(inputs[static_cast<std::size_t>(i % reps)]).get();
    }
    server.shutdown();
    prof.stop();
    std::printf("\nprofiler: %llu folded-stack samples over %lld requests; hottest stacks:\n",
                static_cast<unsigned long long>(prof.samples()),
                static_cast<long long>(reps));
    for (const auto& [stack, count] : prof.top_k(5)) {
      std::printf("  %8llu  %s\n", static_cast<unsigned long long>(count), stack.c_str());
    }
    report.sample({bench::jstr("section", "profiler"),
                   bench::jint("samples", static_cast<Index>(prof.samples()))});
    prof.clear();
  }

  report.write();
  return 0;
}
