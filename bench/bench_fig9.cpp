// Figure 9: constrained placement exploration by inference on the ode
// design. Five objectives over the candidate sweep — overall max/min
// congestion and min congestion in the upper / lower / right floor-plan
// regions — each answered from forecast heat maps only, then validated
// against the routed ground truth.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "core/explorer.h"
#include "img/image.h"

using namespace paintplace;
using namespace paintplace::bench;

int main() {
  Scale scale = Scale::from_env();
  if (!scale.full) {
    // Exploration quality needs a somewhat deeper single-design model than
    // the cross-design defaults: more candidates, more epochs.
    if (scale.placements < 28) scale.placements = 28;
    if (scale.epochs < 20) scale.epochs = 20;
  }
  scale.print("Figure 9: constrained placement exploration (ode)");

  const DesignWorld world = build_world("ode", scale, 8);
  std::vector<const data::Sample*> train_set, candidates;
  const std::size_t candidate_count = 8;
  for (std::size_t i = 0; i < world.dataset.samples.size(); ++i) {
    (i + candidate_count < world.dataset.samples.size() ? train_set : candidates)
        .push_back(&world.dataset.samples[i]);
  }

  core::CongestionForecaster forecaster(model_config(scale));
  core::TrainConfig tcfg;
  tcfg.epochs = scale.epochs;
  forecaster.train(train_set, tcfg);

  core::PlacementExplorer explorer(forecaster);
  explorer.load_candidates(candidates);

  struct Query {
    const char* label;
    core::Region region;
    core::Objective objective;
  };
  const Query queries[] = {
      {"overall-max", core::Region::overall(), core::Objective::kMaximize},
      {"overall-min", core::Region::overall(), core::Objective::kMinimize},
      {"upper-min", core::Region::upper(), core::Objective::kMinimize},
      {"lower-min", core::Region::lower(), core::Objective::kMinimize},
      {"right-min", core::Region::right(), core::Objective::kMinimize},
  };

  BenchReport report("fig9");
  report.meta(jstr("design", "ode"));
  report.meta(jint("candidates", static_cast<long long>(candidates.size())));

  std::printf("%-13s %-7s %-20s %-18s %-12s\n", "objective", "pick", "predicted (region)",
              "truth (region)", "truth-rank");
  int correct_rank = 0;
  for (const Query& q : queries) {
    const core::ExplorationPick pick = explorer.pick(q.region, q.objective);
    // Where does the picked candidate rank under the TRUE region congestion?
    std::vector<double> truths;
    for (const data::Sample* s : candidates) {
      truths.push_back(core::region_congestion(s->target, q.region));
    }
    Index better = 0;
    for (double t : truths) {
      const double mine = truths[static_cast<std::size_t>(pick.sample_index)];
      if (q.objective == core::Objective::kMinimize ? t < mine : t > mine) better += 1;
    }
    if (better == 0) correct_rank += 1;
    report.sample({jstr("section", "objective"), jstr("label", q.label),
                   jnum("predicted", pick.predicted_score), jnum("truth", pick.true_score),
                   jint("truth_rank", static_cast<long long>(better + 1))});
    std::printf("%-13s #%-6lld %-20.4f %-18.4f best-%lld\n", q.label,
                static_cast<long long>(pick.sample_index), pick.predicted_score, pick.true_score,
                static_cast<long long>(better + 1));
    img::write_image(img::Image::from_tensor(explorer.prediction(pick.sample_index)),
                     std::string("fig9_") + q.label + "_output.ppm");
    img::write_image(img::Image::from_tensor(
                         candidates[static_cast<std::size_t>(pick.sample_index)]->target),
                     std::string("fig9_") + q.label + "_truth.ppm");
  }
  std::printf("\n%d / 5 objectives picked the truly best candidate (ties with near-best are\n"
              "expected at reduced scale); wrote fig9_<objective>_{output,truth}.ppm\n",
              correct_rank);
  report.sample({jstr("section", "summary"), jint("correct_rank", correct_rank)});
  report.write();
  return 0;
}
