// Figure 7 (Sec 5.3): ablation of the L1 loss term and the skip
// connections on the OR1200 design. Trains three models —
//   (b) L1 + all skip connections (the paper's model),
//   (c) no L1 + all skips,
//   (d) L1 + a single skip connection (RouteNet-style)
// — forecasts one held-out placement with each, writes the images next to
// the ground truth, and reports per-pixel accuracy. Expected shape:
// L1+all-skips best; single-skip worst (noisy, mispredicted regions).
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "img/image.h"

using namespace paintplace;
using namespace paintplace::bench;

int main() {
  Scale scale = Scale::from_env();
  scale.print("Figure 7: effect of L1 and skip connections (OR1200)");

  const DesignWorld world = build_world("OR1200", scale, 6);
  std::vector<const data::Sample*> train_set, test_set;
  for (std::size_t i = 0; i < world.dataset.samples.size(); ++i) {
    (i + 4 < world.dataset.samples.size() ? train_set : test_set)
        .push_back(&world.dataset.samples[i]);
  }

  struct Config {
    const char* label;
    const char* file_tag;
    core::SkipMode skips;
    bool use_l1;
  };
  const Config configs[] = {
      {"L1 + all skips (paper)", "b_l1_allskip", core::SkipMode::kAll, true},
      {"w/o L1 + all skips", "c_no_l1", core::SkipMode::kAll, false},
      {"L1 + single skip", "d_single_skip", core::SkipMode::kSingle, true},
  };

  const data::Sample& probe = *test_set.front();
  img::write_image(img::Image::from_tensor(probe.target), "fig7a_truth.ppm");

  BenchReport report("fig7");
  report.meta(jstr("design", "OR1200"));
  report.meta(jint("epochs", static_cast<long long>(scale.epochs)));

  std::printf("%-26s %12s %14s %12s\n", "model", "probe acc", "test-set acc", "final L1");
  for (const Config& cfg : configs) {
    core::CongestionForecaster forecaster(model_config(scale, cfg.skips, cfg.use_l1));
    core::TrainConfig tcfg;
    tcfg.epochs = scale.epochs;
    const core::TrainHistory history = forecaster.train(train_set, tcfg);

    const nn::Tensor pred = forecaster.predict(probe.input);
    img::write_image(img::Image::from_tensor(pred), std::string("fig7") + cfg.file_tag + ".ppm");
    const double probe_acc = data::per_pixel_accuracy(pred, probe.target);
    const core::EvalResult eval = forecaster.evaluate(test_set);
    std::printf("%-26s %11.1f%% %13.1f%% %12.3f\n", cfg.label, 100.0 * probe_acc,
                100.0 * eval.mean_pixel_accuracy, history.back().g_l1);
    report.sample({jstr("section", "ablation"), jstr("model", cfg.file_tag),
                   jnum("probe_accuracy", probe_acc),
                   jnum("test_accuracy", eval.mean_pixel_accuracy),
                   jnum("final_l1", history.back().g_l1)});
  }
  report.write();
  std::printf("\nwrote fig7a_truth.ppm, fig7b_l1_allskip.ppm, fig7c_no_l1.ppm, "
              "fig7d_single_skip.ppm\n");
  return 0;
}
