// Machine-readable bench output: the BENCH_*.json perf trajectory files.
//
// Every bench that wants a trackable record builds a BenchReport — a flat
// meta block (model shape, backend, thread count) plus one object per
// measured sample — and writes it next to the working directory as
// BENCH_<name>.json. CI archives these; successive PRs diff them. The
// format is deliberately dumb: no nesting beyond meta/samples, numbers and
// strings only, so any plotting script can consume it with ten lines.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace paintplace::bench {

/// One key plus an already-JSON-encoded value literal.
struct JsonField {
  std::string key;
  std::string literal;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline JsonField jnum(const std::string& key, double value) {
  if (!std::isfinite(value)) return {key, "null"};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return {key, buf};
}

inline JsonField jint(const std::string& key, long long value) {
  return {key, std::to_string(value)};
}

inline JsonField jstr(const std::string& key, const std::string& value) {
  std::string literal = "\"";
  literal += json_escape(value);
  literal += '"';
  return {key, literal};
}

inline JsonField jbool(const std::string& key, bool value) {
  return {key, value ? "true" : "false"};
}

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

  void meta(JsonField field) { meta_.push_back(std::move(field)); }
  void sample(std::vector<JsonField> fields) { samples_.push_back(std::move(fields)); }
  std::size_t samples() const { return samples_.size(); }

  std::string str() const {
    std::string out = "{\n  \"bench\": \"" + json_escape(name_) + "\",\n  \"meta\": {";
    out += join(meta_, "\n    ", ",");
    out += meta_.empty() ? "},\n" : "\n  },\n";
    out += "  \"samples\": [";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      out += i == 0 ? "\n    {" : ",\n    {";
      out += join(samples_[i], "", ", ");
      out += "}";
    }
    out += samples_.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
  }

  /// Writes BENCH_<name>.json into `dir` (default: current directory) and
  /// prints the path. Returns false (with a warning) when unwritable.
  bool write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = str();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s (%zu samples)\n", path.c_str(), samples_.size());
    return ok;
  }

 private:
  static std::string join(const std::vector<JsonField>& fields, const std::string& indent,
                          const std::string& sep) {
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += sep;
      out += indent + "\"" + json_escape(fields[i].key) + "\": " + fields[i].literal;
    }
    return out;
  }

  std::string name_;
  std::vector<JsonField> meta_;
  std::vector<std::vector<JsonField>> samples_;
};

}  // namespace paintplace::bench
