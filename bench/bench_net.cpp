// Networked-serving benchmark: the PPN1 TCP front-end on loopback.
//
// Three experiments against an in-process NetServer (real sockets, real
// framing, real admission control — only the network distance is fake):
//   1. sustained closed-loop throughput vs connection count, with server-side
//      p50/p99 accept-to-written latency;
//   2. deliberate overload against a tiny replica bound — the acceptance
//      property is shed responses, not hangs or crashes;
//   3. a checkpoint hot-swap in the middle of a live swarm — zero accepted
//      requests may fail and post-swap traffic must flow.
// Results go to stdout and BENCH_net.json; the exit status asserts the
// acceptance properties, so CI can run this directly.
// Override the model/load shape with PAINT_NET_WIDTH / PAINT_NET_BASE /
// PAINT_NET_REQS.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "bench/bench_json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/forecaster.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics_registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"

using namespace paintplace;

namespace {

Index env_index(const char* name, Index fallback) {
  if (const char* v = std::getenv(name)) return std::atoll(v);
  return fallback;
}

nn::Tensor random_input(Index channels, Index width, std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t(nn::Shape{1, channels, width, width});
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform());
  return t;
}

/// Closed-loop pipelined worker: keeps `depth` requests in flight on one
/// connection until `total` responses have been read. Returns tallies the
/// caller aggregates.
struct WorkerTally {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t post_swap = 0;  ///< responses with model_version > 1
};

WorkerTally run_worker(std::uint16_t port, const std::vector<nn::Tensor>& inputs, Index total,
                       Index depth, std::atomic<std::uint64_t>* progress) {
  WorkerTally tally;
  net::Client client("127.0.0.1", port);
  Index sent = 0, received = 0;
  std::uint64_t id = 1;
  while (received < total) {
    while (sent < total && sent - received < depth) {
      client.send_forecast(id++, inputs[static_cast<std::size_t>(sent) % inputs.size()]);
      ++sent;
    }
    const net::ForecastResponse resp = client.read_forecast_response();
    ++received;
    if (progress != nullptr) progress->fetch_add(1, std::memory_order_relaxed);
    switch (resp.status) {
      case net::Status::kOk:
        ++tally.ok;
        if (resp.model_version > 1) ++tally.post_swap;
        break;
      case net::Status::kShed: ++tally.shed; break;
      case net::Status::kFailed: ++tally.failed; break;
    }
  }
  return tally;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  const Index width = env_index("PAINT_NET_WIDTH", 32);
  const Index base = env_index("PAINT_NET_BASE", 8);
  const Index reps = std::max<Index>(32, env_index("PAINT_NET_REQS", 96));
  const Index channels = 4;

  std::printf("== paintplace::net loopback throughput ==\n");
  std::printf("model: %lldx%lld inputs, base %lld channels; backend %s; pool workers %d\n\n",
              static_cast<long long>(width), static_cast<long long>(width),
              static_cast<long long>(base), backend::active_backend().name(),
              parallel_workers());

  core::Pix2PixConfig cfg;
  cfg.generator.in_channels = channels;
  cfg.generator.image_size = width;
  cfg.generator.base_channels = base;
  cfg.generator.max_channels = base * 8;
  cfg.disc_base_channels = base;
  net::ModelFactory make_model = [&] { return std::make_shared<core::CongestionForecaster>(cfg); };

  std::vector<nn::Tensor> inputs;
  for (Index i = 0; i < 32; ++i) inputs.push_back(random_input(channels, width, 4000 + i));

  bench::BenchReport report("net");
  report.meta(bench::jint("width", width));
  report.meta(bench::jint("base_channels", base));
  report.meta(bench::jint("requests", reps));
  report.meta(bench::jstr("backend", backend::active_backend().name()));
  report.meta(bench::jint("pool_workers", parallel_workers()));

  bool ok = true;

  // ---- 1. Throughput and latency vs connection count ------------------------
  // Fresh server per point so the latency histogram is per-run. Generous
  // admission bounds: this section measures transport + batching, not sheds.
  std::printf("%-8s %-12s %-10s %-10s %-10s\n", "conns", "req/s", "p50 ms", "p99 ms", "shed");
  for (int conns : {1, 2, 4}) {
    net::NetServerConfig scfg;
    scfg.pool.replicas = 2;
    scfg.pool.max_replica_depth = 0;
    scfg.pool.max_client_inflight = 0;
    scfg.pool.serve.max_batch = 8;
    scfg.pool.serve.max_wait = std::chrono::microseconds(2000);
    scfg.pool.serve.cache_capacity = 0;  // distinct inputs; measure real forwards
    net::NetServer server(scfg, make_model);

    Timer timer;
    std::vector<std::thread> threads;
    std::vector<WorkerTally> tallies(static_cast<std::size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        // Offset the input cycle per connection so replicas see mixed shards.
        std::vector<nn::Tensor> view(inputs.begin(), inputs.end());
        std::rotate(view.begin(), view.begin() + c * 7 % static_cast<int>(view.size()),
                    view.end());
        tallies[static_cast<std::size_t>(c)] = run_worker(server.port(), view, reps / conns,
                                                          /*depth=*/4, nullptr);
      });
    }
    for (auto& th : threads) th.join();
    const double secs = timer.seconds();
    const double rps = static_cast<double>((reps / conns) * conns) / secs;
    const double p50_ms = 1e3 * server.metrics().latency.quantile(0.5);
    const double p99_ms = 1e3 * server.metrics().latency.quantile(0.99);
    std::uint64_t done = 0, shed = 0, failed = 0;
    for (const WorkerTally& t : tallies) done += t.ok, shed += t.shed, failed += t.failed;
    server.shutdown();
    std::printf("%-8d %-12.2f %-10.2f %-10.2f %-10llu\n", conns, rps, p50_ms, p99_ms,
                static_cast<unsigned long long>(shed));
    report.sample({bench::jstr("section", "throughput"), bench::jint("connections", conns),
                   bench::jnum("req_per_s", rps), bench::jnum("p50_ms", p50_ms),
                   bench::jnum("p99_ms", p99_ms), bench::jint("completed", done),
                   bench::jint("shed", shed)});
    if (done == 0 || failed != 0 || p99_ms <= 0.0) {
      std::printf("FAIL: throughput run completed=%llu failed=%llu\n",
                  static_cast<unsigned long long>(done), static_cast<unsigned long long>(failed));
      ok = false;
    }
  }

  // ---- 2. Deliberate overload: shed, don't hang ------------------------------
  // One replica, a depth bound of 2, no cache, and two aggressive pipelined
  // clients. Most requests must come back as explicit kShed responses and
  // none may fail; the metrics endpoint must stay responsive throughout.
  std::printf("\noverload (1 replica, depth bound 2, pipeline 16):\n");
  {
    net::NetServerConfig scfg;
    scfg.pool.replicas = 1;
    scfg.pool.max_replica_depth = 2;
    scfg.pool.max_client_inflight = 0;
    scfg.pool.serve.max_batch = 4;
    scfg.pool.serve.max_wait = std::chrono::microseconds(500);
    scfg.pool.serve.cache_capacity = 0;
    net::NetServer server(scfg, make_model);

    Timer timer;
    std::vector<std::thread> threads;
    std::vector<WorkerTally> tallies(2);
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&, c] {
        tallies[static_cast<std::size_t>(c)] =
            run_worker(server.port(), inputs, 2 * reps, /*depth=*/16, nullptr);
      });
    }
    // A control connection scraping metrics proves the server stays
    // responsive while shedding.
    net::Client control("127.0.0.1", server.port());
    (void)control.metrics_text();
    for (auto& th : threads) th.join();
    const std::string metrics = control.metrics_text();
    const double secs = timer.seconds();
    std::uint64_t done = 0, shed = 0, failed = 0;
    for (const WorkerTally& t : tallies) done += t.ok, shed += t.shed, failed += t.failed;
    server.shutdown();
    std::printf("  %.2f answered/s — %llu ok, %llu shed, %llu failed; metrics endpoint live "
                "(%zu bytes)\n",
                static_cast<double>(done + shed) / secs, static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(shed), static_cast<unsigned long long>(failed),
                metrics.size());
    report.sample({bench::jstr("section", "overload"), bench::jint("completed", done),
                   bench::jint("shed", shed), bench::jint("failed", failed),
                   bench::jnum("answered_per_s", static_cast<double>(done + shed) / secs)});
    if (done == 0 || shed == 0 || failed != 0 || metrics.empty()) {
      std::printf("FAIL: overload must shed (got shed=%llu) without failures (failed=%llu)\n",
                  static_cast<unsigned long long>(shed), static_cast<unsigned long long>(failed));
      ok = false;
    }
  }

  // ---- 3. Hot-swap under a live swarm ----------------------------------------
  // Swap a checkpoint in once half the traffic has completed. Acceptance:
  // zero failures across the swap and post-swap responses carry the new
  // model version.
  std::printf("\nhot-swap mid-swarm (2 replicas, 2 connections):\n");
  {
    const std::filesystem::path ckpt =
        std::filesystem::temp_directory_path() / "paintplace_bench_net_swap.ckpt";
    core::CongestionForecaster(cfg).save(ckpt.string());

    net::NetServerConfig scfg;
    scfg.pool.replicas = 2;
    scfg.pool.max_replica_depth = 0;
    scfg.pool.max_client_inflight = 0;
    scfg.pool.serve.max_batch = 8;
    scfg.pool.serve.max_wait = std::chrono::microseconds(2000);
    scfg.pool.serve.cache_capacity = 64;
    net::NetServer server(scfg, make_model);

    // Workers drive a closed loop until they have both carried real pre-swap
    // load and observed responses from the new model; a generous request cap
    // bounds the run if the swap were never to land (that trips the FAIL
    // below instead of hanging the bench).
    std::atomic<std::uint64_t> progress{0};
    const Index cap = 64 * reps;
    std::vector<std::thread> threads;
    std::vector<WorkerTally> tallies(2);
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&, c] {
        WorkerTally tally;
        net::Client client("127.0.0.1", server.port());
        Index sent = 0, received = 0;
        std::uint64_t id = 1;
        auto satisfied = [&] { return tally.post_swap >= 4 && received >= reps; };
        while (received < sent || (!satisfied() && received < cap)) {
          while (!satisfied() && sent < cap && sent - received < 4) {
            client.send_forecast(id++, inputs[static_cast<std::size_t>(sent + c) % inputs.size()]);
            ++sent;
          }
          if (received == sent) break;  // satisfied and drained
          const net::ForecastResponse resp = client.read_forecast_response();
          ++received;
          progress.fetch_add(1, std::memory_order_relaxed);
          if (resp.status == net::Status::kOk) {
            ++tally.ok;
            if (resp.model_version > 1) ++tally.post_swap;
          } else if (resp.status == net::Status::kFailed) {
            ++tally.failed;
          } else {
            ++tally.shed;
          }
        }
        tallies[static_cast<std::size_t>(c)] = tally;
      });
    }
    // Let the swarm establish real load, then swap under it.
    while (progress.load(std::memory_order_relaxed) < static_cast<std::uint64_t>(reps / 2)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::uint64_t new_version = server.swap_checkpoint(ckpt.string());
    for (auto& th : threads) th.join();
    std::uint64_t done = 0, failed = 0, post_swap = 0, shed = 0;
    for (const WorkerTally& t : tallies) {
      done += t.ok;
      failed += t.failed;
      post_swap += t.post_swap;
      shed += t.shed;
    }
    server.shutdown();
    std::filesystem::remove(ckpt);
    std::printf("  swapped to v%llu under load: %llu completed, %llu failed, %llu on the new "
                "model\n",
                static_cast<unsigned long long>(new_version),
                static_cast<unsigned long long>(done), static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(post_swap));
    report.sample({bench::jstr("section", "hot_swap"), bench::jint("new_version", new_version),
                   bench::jint("completed", done), bench::jint("failed", failed),
                   bench::jint("post_swap", post_swap)});
    if (failed != 0 || shed != 0 || post_swap == 0 || done == 0) {
      std::printf("FAIL: hot swap dropped or failed accepted requests\n");
      ok = false;
    }
  }

  // ---- 4. Tail-based trace sampling ------------------------------------------
  // The same no-shed swarm twice: once recording every span, once with
  // 1-in-100 head sampling and a slow threshold nothing reaches. The sampled
  // trace must be at least 10x smaller — that is the whole point of tail
  // sampling. Then a deliberately overloaded run with sampling still on:
  // every shed request must be tail-retained (obs_trace_retained_error) and
  // its spans must be present in the dump even though head sampling would
  // have dropped essentially everything.
  std::printf("\ntail-based trace sampling (1-in-100 vs full):\n");
  {
    obs::Tracer& tracer = obs::Tracer::instance();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::Counter& sampled_ctr = reg.counter("obs_trace_sampled_total");
    obs::Counter& retained_err_ctr = reg.counter("obs_trace_retained_error_total");
    obs::Counter& discarded_ctr = reg.counter("obs_trace_discarded_total");

    // One traced swarm: `conns` pipelined connections, `per_conn` requests
    // each, against a fresh server. Returns (ok, shed) totals.
    auto run_traced = [&](bool overload, Index per_conn,
                          Index depth) -> std::pair<std::uint64_t, std::uint64_t> {
      net::NetServerConfig scfg;
      scfg.pool.replicas = overload ? 1 : 2;
      scfg.pool.max_replica_depth = overload ? 2 : 0;
      scfg.pool.max_client_inflight = 0;
      scfg.pool.serve.max_batch = overload ? 4 : 8;
      scfg.pool.serve.max_wait = std::chrono::microseconds(overload ? 500 : 2000);
      scfg.pool.serve.cache_capacity = 0;
      net::NetServer server(scfg, make_model);
      std::vector<std::thread> threads;
      std::vector<WorkerTally> tallies(2);
      for (int c = 0; c < 2; ++c) {
        threads.emplace_back([&, c] {
          tallies[static_cast<std::size_t>(c)] =
              run_worker(server.port(), inputs, per_conn, depth, nullptr);
        });
      }
      for (auto& th : threads) th.join();
      server.shutdown();
      std::uint64_t done = 0, shed = 0;
      for (const WorkerTally& t : tallies) done += t.ok, shed += t.shed;
      return {done, shed};
    };

    // Full tracing baseline.
    tracer.clear();
    tracer.enable();
    run_traced(false, reps, 4);
    const std::string full_json = tracer.dump_json();
    tracer.clear();

    // Head-sample 1-in-100; the slow threshold is far beyond any loopback
    // request, so only the head decision keeps anything.
    obs::SamplerConfig sc;
    sc.sample_every = 100;
    sc.slow_threshold_s = 30.0;
    tracer.sampler().configure(sc);
    const std::uint64_t sampled0 = sampled_ctr.load();
    const std::uint64_t discarded0 = discarded_ctr.load();
    run_traced(false, reps, 4);
    const std::string sampled_json = tracer.dump_json();
    const std::uint64_t sampled_delta = sampled_ctr.load() - sampled0;
    const std::uint64_t discarded_delta = discarded_ctr.load() - discarded0;
    tracer.clear();

    const double ratio = static_cast<double>(full_json.size()) /
                         static_cast<double>(std::max<std::size_t>(1, sampled_json.size()));
    std::printf("  full trace %zu bytes; sampled %zu bytes (%.1fx smaller); "
                "%llu head-sampled, %llu discarded\n",
                full_json.size(), sampled_json.size(), ratio,
                static_cast<unsigned long long>(sampled_delta),
                static_cast<unsigned long long>(discarded_delta));
    report.sample({bench::jstr("section", "trace_sampling"),
                   bench::jnum("size_reduction", ratio),
                   bench::jint("full_bytes", static_cast<Index>(full_json.size())),
                   bench::jint("sampled_bytes", static_cast<Index>(sampled_json.size()))});
    if (ratio < 10.0 || discarded_delta == 0) {
      std::printf("FAIL: 1-in-100 sampling must shrink the trace >= 10x (got %.1fx)\n", ratio);
      ok = false;
    }

    // Overload with sampling on: sheds must be tail-retained regardless of
    // the head decision. A head-sampled shed commits live instead (counted
    // at begin), so the coverage invariant is retained + head-sampled >=
    // sheds: every shed is in the trace one way or the other.
    const std::uint64_t err0 = retained_err_ctr.load();
    const std::uint64_t head0 = sampled_ctr.load();
    const auto [over_ok, over_shed] = run_traced(true, 2 * reps, 16);
    const std::uint64_t err_delta = retained_err_ctr.load() - err0;
    const std::uint64_t head_delta = sampled_ctr.load() - head0;
    const std::string shed_json = tracer.dump_json();
    const bool shed_spans_present = shed_json.find("net.handle_forecast") != std::string::npos;
    tracer.sampler().disable();
    tracer.disable();
    tracer.clear();
    std::printf("  overload under sampling: %llu ok, %llu shed; %llu tail-retained + "
                "%llu head-sampled, shed spans %s\n",
                static_cast<unsigned long long>(over_ok),
                static_cast<unsigned long long>(over_shed),
                static_cast<unsigned long long>(err_delta),
                static_cast<unsigned long long>(head_delta),
                shed_spans_present ? "present in dump" : "MISSING from dump");
    report.sample({bench::jstr("section", "shed_retention"),
                   bench::jint("shed", static_cast<Index>(over_shed)),
                   bench::jint("tail_retained", static_cast<Index>(err_delta))});
    if (over_shed == 0 || err_delta == 0 || err_delta + head_delta < over_shed ||
        !shed_spans_present) {
      std::printf("FAIL: every shed request must appear in the trace "
                  "(shed=%llu retained=%llu head-sampled=%llu)\n",
                  static_cast<unsigned long long>(over_shed),
                  static_cast<unsigned long long>(err_delta),
                  static_cast<unsigned long long>(head_delta));
      ok = false;
    }
  }

  report.write();
  std::printf("\n%s\n", ok ? "BENCH_NET OK" : "BENCH_NET FAILED");
  return ok ? 0 : 1;
}
