// Per-backend GEMM sweep over the U-Net's real layer shapes.
//
// For every generator-layer GEMM (encoder convs and decoder deconvs, batch 1
// and 4) this times each registered compute backend, reports GFLOP/s, checks
// cpu_opt against reference at 1e-4 relative tolerance on the same operands,
// and prints the aggregate speedup — first single-threaded (the acceptance
// number: cpu_opt >= 3x reference), then on the full pool when the host has
// more than one core.
//
// Model scale defaults to the serving-scale config bench_serve uses; override
// with PAINT_GEMM_WIDTH / PAINT_GEMM_BASE (PAINT_FULL=1 gives the paper's
// 256x256/base-64 model — minutes, not seconds, on the reference backend).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "backend/pack_cache.h"
#include "bench/bench_json.h"
#include "bench/gemm_shapes.h"
#include "common/parallel.h"
#include "common/rng.h"

using namespace paintplace;
using bench::GemmShape;

namespace {

Index env_index(const char* name, Index fallback) {
  if (const char* v = std::getenv(name)) return std::atoll(v);
  return fallback;
}

std::vector<float> random_vec(Index n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Largest |a-b| / max(1, |b|) over the two buffers.
float max_rel_diff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float rel = std::fabs(a[i] - b[i]) / std::max(1.0f, std::fabs(b[i]));
    worst = std::max(worst, rel);
  }
  return worst;
}

struct SweepTotals {
  double ref_flops = 0.0, ref_secs = 0.0;
  double opt_flops = 0.0, opt_secs = 0.0;
  double warm_secs = 0.0;
  bool cache_bits_mismatch = false;

  float worst_rel = 0.0f;

  double speedup() const { return (ref_secs / ref_flops) * (opt_flops / opt_secs); }
  /// Steady-state gain of the packed-weight cache over the plain kernel.
  double warm_speedup() const { return opt_secs / warm_secs; }
};

void run_sweep(const core::GeneratorConfig& gen, Index batch, SweepTotals& totals,
               bench::BenchReport* report, int workers) {
  const backend::ComputeBackend* ref = backend::find_backend("reference");
  const backend::ComputeBackend* opt = backend::find_backend("cpu_opt");
  std::printf("batch %lld:\n", static_cast<long long>(batch));
  std::printf("  %-12s %6s %8s %7s   %10s %10s %10s %10s %9s %10s\n", "layer", "M", "N", "K",
              "ref GF/s", "opt GF/s", "cold GF/s", "warm GF/s", "speedup", "rel diff");
  for (const GemmShape& s : bench::unet_gemm_shapes(gen, batch)) {
    // sgemm reads A as MxK; sgemm_at reads A stored KxM — same element count.
    const auto A = random_vec(s.M * s.K, 11 + s.M);
    const auto B = random_vec(s.K * s.N, 23 + s.N);
    std::vector<float> c_ref(static_cast<std::size_t>(s.M * s.N), 0.0f);
    std::vector<float> c_opt(c_ref.size(), 0.0f);
    std::vector<float> c_cold(c_ref.size(), 0.0f);
    std::vector<float> c_warm(c_ref.size(), 0.0f);

    const double ref_gfs = bench::time_gemm(*ref, s, A.data(), B.data(), c_ref.data());
    const double opt_gfs = bench::time_gemm(*opt, s, A.data(), B.data(), c_opt.data());
    // Cold pays the weight-panel pack on every call (first forward after
    // load/swap); warm runs against the populated cache (serving steady
    // state). Both must reproduce the uncached result bit-for-bit.
    const double cold_gfs =
        bench::time_gemm_cached(*opt, s, A.data(), B.data(), c_cold.data(), /*cold=*/true);
    const double warm_gfs =
        bench::time_gemm_cached(*opt, s, A.data(), B.data(), c_warm.data(), /*cold=*/false);
    backend::PackedWeightCache::instance().invalidate(A.data());
    const float rel = max_rel_diff(c_opt, c_ref);
    const std::size_t c_bytes = c_ref.size() * sizeof(float);
    const bool cache_ok = std::memcmp(c_cold.data(), c_opt.data(), c_bytes) == 0 &&
                          std::memcmp(c_warm.data(), c_opt.data(), c_bytes) == 0;

    totals.ref_flops += s.flops();
    totals.ref_secs += s.flops() / (ref_gfs * 1e9);
    totals.opt_flops += s.flops();
    totals.opt_secs += s.flops() / (opt_gfs * 1e9);
    totals.warm_secs += s.flops() / (warm_gfs * 1e9);
    totals.worst_rel = std::max(totals.worst_rel, rel);
    totals.cache_bits_mismatch |= !cache_ok;

    std::printf("  %-12s %6lld %8lld %7lld   %10.2f %10.2f %10.2f %10.2f %8.2fx %10.2e%s%s\n",
                s.label.c_str(), static_cast<long long>(s.M), static_cast<long long>(s.N),
                static_cast<long long>(s.K), ref_gfs, opt_gfs, cold_gfs, warm_gfs,
                opt_gfs / ref_gfs, rel, rel > 1e-4f ? "  MISMATCH" : "",
                cache_ok ? "" : "  CACHE-BITS");
    if (report != nullptr) {
      report->sample({bench::jstr("layer", s.label), bench::jint("batch", batch),
                      bench::jint("workers", workers), bench::jint("M", s.M),
                      bench::jint("N", s.N), bench::jint("K", s.K),
                      bench::jnum("ref_gflop_s", ref_gfs), bench::jnum("opt_gflop_s", opt_gfs),
                      bench::jnum("opt_cold_gflop_s", cold_gfs),
                      bench::jnum("opt_warm_gflop_s", warm_gfs),
                      bench::jnum("speedup", opt_gfs / ref_gfs), bench::jnum("rel_diff", rel)});
    }
  }
}

SweepTotals sweep_over(const core::GeneratorConfig& gen, const char* heading,
                       bench::BenchReport* report, int workers) {
  std::printf("%s\n", heading);
  SweepTotals totals;
  for (Index batch : {Index{1}, Index{4}}) run_sweep(gen, batch, totals, report, workers);
  std::printf(
      "  aggregate: reference %.2f GF/s, cpu_opt %.2f GF/s — %.2fx; warm cache %.2f GF/s "
      "(%.2fx over plain opt); worst rel diff %.2e\n\n",
      totals.ref_flops / totals.ref_secs / 1e9, totals.opt_flops / totals.opt_secs / 1e9,
      totals.speedup(), totals.opt_flops / totals.warm_secs / 1e9, totals.warm_speedup(),
      totals.worst_rel);
  return totals;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);

  core::GeneratorConfig gen;
  gen.in_channels = 4;
  if (const char* v = std::getenv("PAINT_FULL"); v != nullptr && v[0] == '1') {
    gen.image_size = 256;
    gen.base_channels = 64;
    gen.max_channels = 512;
  } else {
    gen.image_size = 32;
    gen.base_channels = 32;
    gen.max_channels = 256;
  }
  gen.image_size = env_index("PAINT_GEMM_WIDTH", gen.image_size);
  gen.base_channels = env_index("PAINT_GEMM_BASE", gen.base_channels);
  gen.max_channels = std::max(gen.max_channels, gen.base_channels);

  std::printf("== paintplace::backend GEMM sweep (U-Net layer shapes) ==\n");
  std::printf("model: image %lldx%lld, channels %lld..%lld; hardware workers %d\n\n",
              static_cast<long long>(gen.image_size), static_cast<long long>(gen.image_size),
              static_cast<long long>(gen.base_channels), static_cast<long long>(gen.max_channels),
              parallel_workers());

  bench::BenchReport report("gemm");
  report.meta(bench::jint("image_size", gen.image_size));
  report.meta(bench::jint("base_channels", gen.base_channels));
  report.meta(bench::jint("max_channels", gen.max_channels));
  report.meta(bench::jint("hardware_workers", parallel_workers()));

  const int hw_workers = parallel_workers();
  set_parallel_workers(1);
  const SweepTotals st = sweep_over(
      gen, "-- single-threaded (acceptance: cpu_opt >= 3x reference) --", &report, 1);

  SweepTotals mt = st;
  if (hw_workers > 1) {
    set_parallel_workers(0);  // restore the hardware default
    char heading[64];
    std::snprintf(heading, sizeof(heading), "-- %d workers --", hw_workers);
    mt = sweep_over(gen, heading, &report, hw_workers);
  }
  set_parallel_workers(0);

  // Exit non-zero on a correctness mismatch or a speedup collapse so the CI
  // sweep step actually gates kernel regressions instead of just logging
  // them. The hard perf floor sits below the 3x acceptance number to keep
  // noisy shared runners from flaking; override with PAINT_GEMM_FLOOR.
  double hard_floor = 2.0;
  if (const char* v = std::getenv("PAINT_GEMM_FLOOR")) hard_floor = std::atof(v);
  const float worst_rel = std::max(st.worst_rel, mt.worst_rel);

  report.meta(bench::jnum("single_thread_speedup", st.speedup()));
  report.meta(bench::jnum("threaded_speedup", mt.speedup()));
  report.meta(bench::jnum("warm_cache_speedup", mt.warm_speedup()));
  report.write();

  std::printf("single-thread aggregate speedup: %.2fx (acceptance: 3x, hard floor: %.1fx)%s\n",
              st.speedup(), hard_floor, st.speedup() >= 3.0 ? "" : "  BELOW ACCEPTANCE");
  if (hw_workers > 1) std::printf("threaded aggregate speedup: %.2fx\n", mt.speedup());
  if (worst_rel > 1e-4f) {
    std::printf("FAIL: cpu_opt diverges from reference (worst rel diff %.2e > 1e-4)\n", worst_rel);
    return 1;
  }
  if (st.cache_bits_mismatch || mt.cache_bits_mismatch) {
    std::printf("FAIL: cached weight packs changed result bits vs the uncached kernel\n");
    return 1;
  }
  if (st.speedup() < hard_floor) {
    std::printf("FAIL: single-thread speedup %.2fx below hard floor %.1fx\n", st.speedup(),
                hard_floor);
    return 1;
  }
  return 0;
}
