// Performance microbenchmarks (google-benchmark) for the substrate hot
// paths: GEMM, convolution forward/backward, U-Net inference, PathFinder
// routing, rendering and colormap decoding. These back the speedup
// discussion of Sec 5.1 and catch performance regressions.
#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "common/rng.h"
#include "core/unet.h"
#include "data/dataset.h"
#include "fpga/design_suite.h"
#include "img/render.h"
#include "nn/conv2d.h"
#include "nn/gemm.h"
#include "place/sa_placer.h"
#include "route/router.h"

using namespace paintplace;

namespace {

nn::Tensor random_tensor(nn::Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const Index n = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(n * n)), b(a), c(a);
  Rng rng(1);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    nn::sgemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv("c", 64, 128, 4, 2, 1, rng);
  const nn::Tensor x = random_tensor(nn::Shape{1, 64, 32, 32}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv2d conv("c", 64, 128, 4, 2, 1, rng);
  const nn::Tensor x = random_tensor(nn::Shape{1, 64, 32, 32}, 5);
  const nn::Tensor g = random_tensor(nn::Shape{1, 128, 16, 16}, 6);
  conv.forward(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_ConvBackward);

void BM_UNetInference(benchmark::State& state) {
  core::GeneratorConfig cfg;
  cfg.image_size = state.range(0);
  cfg.base_channels = 8;
  cfg.max_channels = 64;
  core::UNetGenerator gen(cfg);
  gen.set_training(false);
  const nn::Tensor x = random_tensor(nn::Shape{1, 4, cfg.image_size, cfg.image_size}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.forward(x));
  }
}
BENCHMARK(BM_UNetInference)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

struct RouteFixture {
  fpga::Netlist nl;
  fpga::Arch arch;
  place::Placement placement;

  RouteFixture()
      : nl(fpga::generate_packed(fpga::scale_spec(fpga::design_by_name("ode"), 0.04),
                                 fpga::NetgenParams{}, 8)),
        arch(make_arch(nl)),
        placement(make_placement(arch, nl)) {}

  static fpga::Arch make_arch(const fpga::Netlist& nl) {
    const fpga::NetlistStats s = nl.stats();
    return fpga::Arch::auto_sized(
        {s.num_clbs, s.num_inputs + s.num_outputs, s.num_mems, s.num_mults});
  }
  static place::Placement make_placement(const fpga::Arch& arch, const fpga::Netlist& nl) {
    place::SaPlacer placer(arch, nl, place::PlacerOptions{});
    return placer.place();
  }
};

void BM_PathFinderRoute(benchmark::State& state) {
  RouteFixture f;
  route::ChannelGraph graph(f.arch);
  for (auto _ : state) {
    route::CongestionMap congestion(graph);
    route::PathFinderRouter router(graph);
    benchmark::DoNotOptimize(router.route(f.placement, congestion));
  }
  state.SetLabel(std::to_string(f.nl.num_nets()) + " nets");
}
BENCHMARK(BM_PathFinderRoute)->Unit(benchmark::kMillisecond);

void BM_SaPlace(benchmark::State& state) {
  RouteFixture f;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    place::PlacerOptions opt;
    opt.seed = seed++;
    place::SaPlacer placer(f.arch, f.nl, opt);
    benchmark::DoNotOptimize(placer.place());
  }
  state.SetLabel(std::to_string(f.nl.num_blocks()) + " blocks");
}
BENCHMARK(BM_SaPlace)->Unit(benchmark::kMillisecond);

void BM_RenderHeatmap(benchmark::State& state) {
  RouteFixture f;
  route::ChannelGraph graph(f.arch);
  route::CongestionMap congestion(graph);
  route::PathFinderRouter router(graph);
  router.route(f.placement, congestion);
  const img::PixelGeometry geom(f.arch, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::render_route_heatmap(f.placement, congestion, geom));
  }
}
BENCHMARK(BM_RenderHeatmap);

void BM_RenderConnectivity(benchmark::State& state) {
  RouteFixture f;
  const img::PixelGeometry geom(f.arch, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::render_connectivity(f.placement, geom));
  }
}
BENCHMARK(BM_RenderConnectivity);

void BM_ColormapDecode(benchmark::State& state) {
  RouteFixture f;
  route::ChannelGraph graph(f.arch);
  route::CongestionMap congestion(graph);
  route::PathFinderRouter router(graph);
  router.route(f.placement, congestion);
  const img::PixelGeometry geom(f.arch, 256);
  const img::Image heat = img::render_route_heatmap(f.placement, congestion, geom);
  const img::Image mask = img::channel_mask(geom);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::decode_total_utilization(heat, mask));
  }
}
BENCHMARK(BM_ColormapDecode);

// Console reporter that also accumulates each run into a BenchReport so the
// harness emits BENCH_micro.json alongside the usual console table.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      const double iters = static_cast<double>(run.iterations);
      std::vector<bench::JsonField> fields;
      fields.push_back(bench::jstr("name", run.benchmark_name()));
      fields.push_back(bench::jint("iterations", static_cast<long long>(run.iterations)));
      fields.push_back(bench::jnum("real_time_ms", run.real_accumulated_time / iters * 1e3));
      fields.push_back(bench::jnum("cpu_time_ms", run.cpu_accumulated_time / iters * 1e3));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        fields.push_back(bench::jnum("items_per_s", items->second.value));
      }
      report_.sample(fields);
    }
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("micro");
  JsonTeeReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
