// Section 5.1 speedup: "The speedup is measured using the magnitude of
// routing runtime divided by inference time". For every Table 2 design this
// harness reports the mean detailed-routing wall time of the sweep, the
// generator inference latency, and the resulting speedup magnitude.
// (The paper reports ~0.09 s inference on a 1080Ti at 256x256.)
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"

using namespace paintplace;
using namespace paintplace::bench;

int main() {
  Scale scale = Scale::from_env();
  scale.print("Sec 5.1: routing-vs-inference speedup");

  core::CongestionForecaster forecaster(model_config(scale));
  BenchReport report("speedup");

  std::printf("%-10s %14s %14s %10s %10s\n", "Design", "route (s)", "infer (s)", "speedup",
              "magnitude");
  double total_speedup = 0.0;
  int rows = 0;
  for (const fpga::DesignSpec& spec : fpga::table2_designs()) {
    const DesignWorld world = build_world(spec.name, scale, 7 + rows);

    // Inference latency, averaged over the sweep's inputs (includes the
    // same dropout-z sampling the paper's generator runs with).
    Timer t;
    Index predictions = 0;
    for (const data::Sample& s : world.dataset.samples) {
      forecaster.predict(s.input);
      predictions += 1;
    }
    const double infer_s = t.seconds() / static_cast<double>(predictions);

    const double speedup = world.mean_route_seconds / infer_s;
    std::printf("%-10s %14.4f %14.4f %9.1fx %9.0fx\n", spec.name.c_str(),
                world.mean_route_seconds, infer_s, speedup,
                std::pow(10.0, std::round(std::log10(std::max(1.0, speedup)))));
    report.sample({jstr("section", "design"), jstr("design", spec.name),
                   jnum("route_seconds", world.mean_route_seconds),
                   jnum("infer_seconds", infer_s), jnum("speedup", speedup)});
    total_speedup += speedup;
    rows += 1;
  }
  std::printf("\nmean speedup %.1fx — at paper scale the router works on fabrics ~25x larger\n",
              total_speedup / rows);
  std::printf("while inference grows ~16x (256^2/64^2), widening the gap further.\n");
  report.sample({jstr("section", "summary"), jnum("mean_speedup", total_speedup / rows)});
  report.write();
  return 0;
}
