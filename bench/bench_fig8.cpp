// Figure 8 (Sec 5.3): generator and discriminator training-loss curves for
// the three ablation configurations on OR1200. Prints the per-epoch series
// the paper plots: with L1+skips the losses optimize smoothly; without L1
// or with a single skip they are noisier / more aggressive.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"

using namespace paintplace;
using namespace paintplace::bench;

namespace {

/// Mean absolute epoch-to-epoch change — the "training noise" the paper
/// reads off the curves.
double series_noise(const std::vector<double>& series) {
  double total = 0.0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    total += std::fabs(series[i] - series[i - 1]);
  }
  return series.size() > 1 ? total / static_cast<double>(series.size() - 1) : 0.0;
}

}  // namespace

int main() {
  Scale scale = Scale::from_env();
  if (!scale.full && scale.epochs < 10) scale.epochs = 10;  // curves need some length
  scale.print("Figure 8: training-loss trajectories of the ablations (OR1200)");

  const DesignWorld world = build_world("OR1200", scale, 6);
  const std::vector<const data::Sample*> train_set = all_samples(world.dataset);

  struct Config {
    const char* label;
    core::SkipMode skips;
    bool use_l1;
  };
  const Config configs[] = {
      {"L1+skip", core::SkipMode::kAll, true},
      {"w/o L1", core::SkipMode::kAll, false},
      {"w/o skip", core::SkipMode::kNone, true},
  };

  std::vector<core::TrainHistory> histories;
  for (const Config& cfg : configs) {
    core::CongestionForecaster forecaster(model_config(scale, cfg.skips, cfg.use_l1));
    core::TrainConfig tcfg;
    tcfg.epochs = scale.epochs;
    histories.push_back(forecaster.train(train_set, tcfg));
  }

  std::printf("(a) generator loss per epoch (GAN term + 50*L1 when enabled):\n");
  std::printf("%-7s %12s %12s %12s\n", "epoch", configs[0].label, configs[1].label,
              configs[2].label);
  const float lambda_l1 = 50.0f;
  auto gen_loss = [&](const core::GanLosses& l, bool use_l1) {
    return l.g_gan + (use_l1 ? static_cast<double>(lambda_l1) * l.g_l1 : 0.0);
  };
  std::vector<std::vector<double>> g_series(3), d_series(3);
  for (Index e = 0; e < scale.epochs; ++e) {
    std::printf("%-7lld", static_cast<long long>(e));
    for (int c = 0; c < 3; ++c) {
      const double g = gen_loss(histories[static_cast<std::size_t>(c)][static_cast<std::size_t>(e)],
                                configs[c].use_l1);
      g_series[static_cast<std::size_t>(c)].push_back(g);
      d_series[static_cast<std::size_t>(c)].push_back(
          histories[static_cast<std::size_t>(c)][static_cast<std::size_t>(e)].d_loss);
      std::printf(" %12.4f", g);
    }
    std::printf("\n");
  }
  std::printf("\n(b) discriminator loss per epoch:\n");
  std::printf("%-7s %12s %12s %12s\n", "epoch", configs[0].label, configs[1].label,
              configs[2].label);
  for (Index e = 0; e < scale.epochs; ++e) {
    std::printf("%-7lld", static_cast<long long>(e));
    for (int c = 0; c < 3; ++c) {
      std::printf(" %12.4f", d_series[static_cast<std::size_t>(c)][static_cast<std::size_t>(e)]);
    }
    std::printf("\n");
  }

  BenchReport report("fig8");
  report.meta(jstr("design", "OR1200"));
  report.meta(jint("epochs", static_cast<long long>(scale.epochs)));
  std::printf("\ntraining noise (mean |epoch-to-epoch change|, G loss normalized by mean):\n");
  for (int c = 0; c < 3; ++c) {
    const auto& s = g_series[static_cast<std::size_t>(c)];
    double mean = 0.0;
    for (double v : s) mean += v;
    mean /= static_cast<double>(s.size());
    const double g_noise = series_noise(s) / mean;
    const double d_noise = series_noise(d_series[static_cast<std::size_t>(c)]);
    std::printf("  %-10s G %.4f  D %.4f\n", configs[c].label, g_noise, d_noise);
    report.sample({jstr("section", "noise"), jstr("model", configs[c].label),
                   jnum("g_noise", g_noise), jnum("d_noise", d_noise),
                   jnum("g_final", s.back()),
                   jnum("d_final", d_series[static_cast<std::size_t>(c)].back())});
  }
  report.write();
  std::printf("\npaper's read: L1+skip optimizes smoothly; the other two are noisier,\n"
              "which shows up above as larger normalized epoch-to-epoch movement.\n");
  return 0;
}
