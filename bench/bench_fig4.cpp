// Figure 4: connectivity images (img_connect) of two different placements
// of the same netlist — the 1-channel net-drawing input feature.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "fpga/netgen.h"
#include "img/render.h"
#include "place/sa_placer.h"

using namespace paintplace;

int main() {
  std::printf("== Figure 4: connectivity images of two placements ==\n\n");

  const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name("raygentop"), 0.05);
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 4);
  const fpga::NetlistStats stats = nl.stats();
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults});
  const img::PixelGeometry geom(arch, 256);

  double mean[2] = {0.0, 0.0};
  double hpwl[2] = {0.0, 0.0};
  img::Image images[2] = {img::Image(1, 1, 1), img::Image(1, 1, 1)};
  for (int i = 0; i < 2; ++i) {
    place::PlacerOptions opt;
    opt.seed = 100 + static_cast<std::uint64_t>(i);
    // Different anneal qualities produce visibly different wiring density.
    opt.alpha_t = i == 0 ? 0.95 : 0.6;
    place::SaPlacer placer(arch, nl, opt);
    const place::Placement placement = placer.place();
    images[i] = img::render_connectivity(placement, geom);
    for (Index p = 0; p < images[i].num_pixels(); ++p) {
      mean[i] += static_cast<double>(images[i].data()[p]);
    }
    mean[i] /= static_cast<double>(images[i].num_pixels());
    img::write_image(images[i], "fig4_connectivity_" + std::to_string(i) + ".pgm");
    hpwl[i] = placer.report().final_cost;
    std::printf("placement %d (alpha_t %.2f): HPWL %.0f, mean connectivity intensity %.4f\n", i,
                opt.alpha_t, hpwl[i], mean[i]);
  }
  const img::Image delta = img::abs_diff(images[0], images[1]);
  double mean_delta = 0.0;
  for (Index p = 0; p < delta.num_pixels(); ++p) {
    mean_delta += static_cast<double>(delta.data()[p]);
  }
  mean_delta /= static_cast<double>(delta.num_pixels());
  std::printf("mean |difference| between the two connectivity images: %.4f\n", mean_delta);
  std::printf("\nwrote fig4_connectivity_{0,1}.pgm\n");

  bench::BenchReport report("fig4");
  report.meta(bench::jstr("design", "raygentop@0.05"));
  for (int i = 0; i < 2; ++i) {
    report.sample({bench::jstr("section", "placement"), bench::jint("index", i),
                   bench::jnum("hpwl", hpwl[i]),
                   bench::jnum("mean_intensity", mean[i])});
  }
  report.sample(
      {bench::jstr("section", "delta"), bench::jnum("mean_abs_delta", mean_delta)});
  report.write();
  return 0;
}
