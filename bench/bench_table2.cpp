// Table 2 — the paper's headline experiment. For each of the eight designs:
//   * strategy 1: train on the other seven designs only, evaluate per-pixel
//     accuracy on the held-out design (Acc.1);
//   * strategy 2: additionally fine-tune on a few image pairs from the test
//     design (transfer learning) and re-evaluate (Acc.2);
//   * Top10: retrieval accuracy for the min-congestion placements of the
//     test sweep, ranked by forecast congestion.
// Absolute numbers differ from the paper (synthetic designs, reduced CPU
// scale — see DESIGN.md); the shape to check is Acc.2 >= Acc.1, Top10 well
// above chance, and weaker accuracy on the smallest designs.
#include <cstdio>

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "bench/bench_json.h"

using namespace paintplace;
using namespace paintplace::bench;

namespace {

struct PaperRow {
  const char* design;
  double acc1, acc2, top10;
};
constexpr PaperRow kPaper[] = {
    {"diffeq1", 67.2, 68.9, 50.0}, {"diffeq2", 65.3, 65.9, 40.0},
    {"raygentop", 68.1, 77.1, 70.0}, {"SHA", 43.3, 61.0, 40.0},
    {"OR1200", 64.6, 67.6, 90.0}, {"ode", 74.9, 75.9, 80.0},
    {"dcsg", 71.4, 85.4, 80.0}, {"bfly", 71.5, 76.5, 70.0},
};

}  // namespace

int main() {
  Scale scale = Scale::from_env();
  // Keep enough held-out placements that Top10 is meaningful: with 36 test
  // placements, random selection would land at 10/36 = 28%.
  if (!scale.full && scale.placements < 40) scale.placements = 40;
  if (!scale.full && scale.epochs < 14) scale.epochs = 14;
  const Index fine_tune_pairs = scale.full ? 10 : 4;
  scale.print("Table 2: routing forecast quality on eight designs");

  // Phase 1: datasets for every design (the paper's 8 x #P image pairs).
  std::vector<data::Dataset> datasets;
  std::vector<DesignWorld> worlds;
  for (std::size_t d = 0; d < std::size(kPaper); ++d) {
    Timer t;
    worlds.push_back(build_world(kPaper[d].design, scale, d + 1));
    const fpga::NetlistStats s = worlds.back().netlist.stats();
    std::printf("built %-10s %6lld LUTs %5lld FFs %6lld nets  #P=%lld  (%.1fs)\n",
                kPaper[d].design, static_cast<long long>(s.num_luts),
                static_cast<long long>(s.num_ffs), static_cast<long long>(s.num_nets),
                static_cast<long long>(worlds.back().dataset.samples.size()), t.seconds());
  }
  for (const DesignWorld& w : worlds) datasets.push_back(w.dataset);

  // Phase 2: leave-one-design-out training + transfer fine-tuning.
  // Designs evaluate concurrently: every model's tensor work shares the
  // process worker pool (top-level parallel_for calls serialize), so the
  // threads overlap one model's single-threaded segments with another's
  // GEMMs.
  struct DesignResult {
    std::size_t test_size = 0;
    double acc1 = 0.0, acc2 = 0.0, top10 = 0.0, rank_corr = 0.0, seconds = 0.0;
    double rudy_top10 = 0.0, rudy_corr = 0.0;  // classical non-learned baseline
  };
  std::vector<DesignResult> results(std::size(kPaper));
  std::atomic<std::size_t> next_design{0};
  const unsigned eval_threads = scale.full ? 1 : 3;
  auto evaluate_design = [&](std::size_t d) {
    Timer t;
    data::Split split =
        data::leave_one_design_out(datasets, kPaper[d].design, fine_tune_pairs, 99);
    if (static_cast<Index>(split.train.size()) > scale.max_train_samples) {
      // Deterministic subsample keeps every design's runtime bounded; the
      // shuffle preserves the mix of source designs.
      Rng rng(424242);
      std::shuffle(split.train.begin(), split.train.end(), rng.engine());
      split.train.resize(static_cast<std::size_t>(scale.max_train_samples));
    }

    core::CongestionForecaster forecaster(model_config(scale));
    core::TrainConfig tcfg;
    tcfg.epochs = scale.epochs;
    forecaster.train(split.train, tcfg);
    const core::EvalResult acc1 = forecaster.evaluate(split.test);

    core::TrainConfig ftcfg;
    ftcfg.epochs = scale.fine_tune_epochs;
    forecaster.fine_tune(split.fine_tune, ftcfg);
    const core::EvalResult acc2 = forecaster.evaluate(split.test);

    // RUDY baseline: rank the same test placements by the closed-form
    // estimate computed at placement time (no learning, no routing).
    std::vector<double> rudy_scores, true_scores;
    for (const data::Sample* s : split.test) {
      rudy_scores.push_back(s->meta.rudy_total);
      true_scores.push_back(s->meta.true_total_utilization);
    }
    const Index k = std::min<Index>(10, static_cast<Index>(split.test.size()));
    DesignResult r;
    r.test_size = split.test.size();
    r.acc1 = acc1.mean_pixel_accuracy;
    r.acc2 = acc2.mean_pixel_accuracy;
    r.top10 = acc2.top10;
    r.rank_corr = acc2.rank_correlation;
    r.seconds = t.seconds();
    r.rudy_top10 = data::topk_min_overlap(rudy_scores, true_scores, k);
    r.rudy_corr = data::spearman_rank_correlation(rudy_scores, true_scores);
    results[d] = r;
  };
  {
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < eval_threads; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t d = next_design.fetch_add(1);
          if (d >= std::size(kPaper)) return;
          evaluate_design(d);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  BenchReport report("table2");
  report.meta(jint("epochs", static_cast<long long>(scale.epochs)));
  report.meta(jint("placements", static_cast<long long>(scale.placements)));

  std::printf("\n%-10s %4s | %7s %7s %6s | %7s %7s %6s (paper)\n", "Design", "#P", "Acc.1",
              "Acc.2", "Top10", "Acc.1", "Acc.2", "Top10");
  double sum_acc1 = 0.0, sum_acc2 = 0.0, sum_top10 = 0.0, sum_rank_corr = 0.0;
  double sum_rudy_top10 = 0.0, sum_rudy_corr = 0.0;
  for (std::size_t d = 0; d < std::size(kPaper); ++d) {
    const DesignResult& r = results[d];
    std::printf("%-10s %4zu | %6.1f%% %6.1f%% %5.0f%% | %6.1f%% %6.1f%% %5.0f%%   [%.0fs]\n",
                kPaper[d].design, r.test_size, 100.0 * r.acc1, 100.0 * r.acc2, 100.0 * r.top10,
                kPaper[d].acc1, kPaper[d].acc2, kPaper[d].top10, r.seconds);
    report.sample({jstr("section", "design"), jstr("design", kPaper[d].design),
                   jnum("acc1", r.acc1), jnum("acc2", r.acc2), jnum("top10", r.top10),
                   jnum("train_seconds", r.seconds)});
    sum_acc1 += r.acc1;
    sum_acc2 += r.acc2;
    sum_top10 += r.top10;
    sum_rank_corr += r.rank_corr;
    sum_rudy_top10 += r.rudy_top10;
    sum_rudy_corr += r.rudy_corr;
  }

  const double n = static_cast<double>(std::size(kPaper));
  std::printf("\nmeans: Acc.1 %.1f%%  Acc.2 %.1f%%  Top10 %.0f%%  rank-corr %.2f\n",
              100.0 * sum_acc1 / n, 100.0 * sum_acc2 / n, 100.0 * sum_top10 / n,
              sum_rank_corr / n);
  std::printf("shape checks: transfer fine-tuning gain %.1f pts (paper: +5.3 pts avg); ",
              100.0 * (sum_acc2 - sum_acc1) / n);
  std::printf("Top10 chance level would be %.0f%%\n",
              100.0 * 10.0 / static_cast<double>(scale.placements - fine_tune_pairs));
  std::printf("RUDY baseline (closed-form, non-learned): Top10 %.0f%%  rank-corr %.2f\n",
              100.0 * sum_rudy_top10 / n, sum_rudy_corr / n);
  report.sample({jstr("section", "means"), jnum("acc1", sum_acc1 / n), jnum("acc2", sum_acc2 / n),
                 jnum("top10", sum_top10 / n), jnum("rank_corr", sum_rank_corr / n),
                 jnum("rudy_top10", sum_rudy_top10 / n), jnum("rudy_corr", sum_rudy_corr / n)});
  report.write();
  return 0;
}
