// The GEMM shapes a U-Net forward pass actually runs, derived from a
// GeneratorConfig exactly the way the layers lower themselves:
//
//   * Conv2d (encoder):           sgemm   M=Cout, N=batch*Ho*Wo, K=Cin*k*k
//   * ConvTranspose2d (decoder):  sgemm_at M=Cout*k*k, N=batch*H*W, K=Cin
//
// Shared by bench_gemm (the per-backend sweep) and bench_serve (the compact
// backend summary), so both report on the same workload.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/pack_cache.h"
#include "common/timer.h"
#include "core/unet.h"

namespace paintplace::bench {

struct GemmShape {
  std::string label;  ///< e.g. "enc3 conv" / "dec2 deconv"
  enum class Kind { kGemm, kGemmAT } kind = Kind::kGemm;
  Index M = 0, N = 0, K = 0;

  double flops() const { return 2.0 * static_cast<double>(M) * static_cast<double>(N) * K; }
};

/// Every generator-layer GEMM of one forward pass at the given batch size,
/// encoder first, in execution order.
inline std::vector<GemmShape> unet_gemm_shapes(const core::GeneratorConfig& g, Index batch) {
  g.validate();
  const Index d = g.depth();
  const Index kk = 4 * 4;  // the U-Net's fixed 4x4 kernels
  std::vector<GemmShape> shapes;
  for (Index i = 0; i < d; ++i) {
    const Index cin = i == 0 ? g.in_channels : g.channels_at(i - 1);
    const Index cout = g.channels_at(i);
    const Index out_sp = g.image_size >> (i + 1);
    shapes.push_back({"enc" + std::to_string(i) + " conv", GemmShape::Kind::kGemm, cout,
                      batch * out_sp * out_sp, cin * kk});
  }
  for (Index i = d - 1; i >= 0; --i) {
    // Mirrors UNetGenerator's decoder wiring with the paper's all-skip mode.
    const Index cin = i == d - 1 ? g.channels_at(d - 1) : g.channels_at(i) * 2;
    const Index cout = i == 0 ? g.out_channels : g.channels_at(i - 1);
    const Index in_sp = g.image_size >> (i + 1);
    shapes.push_back({"dec" + std::to_string(i) + " deconv", GemmShape::Kind::kGemmAT, cout * kk,
                      batch * in_sp * in_sp, cin});
  }
  return shapes;
}

/// One timed run of `shape` on `be`: repeats until ~min_seconds of wall time
/// and returns GFLOP/s. Operands are caller-provided so backends time the
/// same bits.
inline double time_gemm(const backend::ComputeBackend& be, const GemmShape& shape, const float* A,
                        const float* B, float* C, double min_seconds = 0.15) {
  Index reps = 0;
  Timer t;
  do {
    if (shape.kind == GemmShape::Kind::kGemm) {
      be.sgemm(shape.M, shape.N, shape.K, 1.0f, A, B, 0.0f, C);
    } else {
      be.sgemm_at(shape.M, shape.N, shape.K, 1.0f, A, B, 0.0f, C);
    }
    reps += 1;
  } while (t.seconds() < min_seconds);
  return shape.flops() * static_cast<double>(reps) / t.seconds() / 1e9;
}

/// Times the extended call with GemmArgs::cache_weights set, the path a
/// serving forward takes. `cold` invalidates and re-keys before every rep so
/// each call pays the panel pack (a model's first forward after load /
/// hot-swap / fine-tune); warm primes the cache once and then times pure
/// hits (the steady state). Versions are fabricated locally — the bench
/// fakes the nn layer's weight identity.
inline double time_gemm_cached(const backend::ComputeBackend& be, const GemmShape& shape,
                               const float* A, const float* B, float* C, bool cold,
                               double min_seconds = 0.15) {
  static std::uint64_t version = std::uint64_t{1} << 62;
  backend::GemmArgs args;
  args.cache_weights = true;
  args.weight_version = ++version;
  const auto call = [&] {
    if (shape.kind == GemmShape::Kind::kGemm) {
      be.sgemm_ex(shape.M, shape.N, shape.K, 1.0f, A, B, 0.0f, C, args);
    } else {
      be.sgemm_at_ex(shape.M, shape.N, shape.K, 1.0f, A, B, 0.0f, C, args);
    }
  };
  if (!cold) call();  // prime: every timed rep below is a cache hit
  Index reps = 0;
  Timer t;
  do {
    if (cold) {
      backend::PackedWeightCache::instance().invalidate(A);
      args.weight_version = ++version;
    }
    call();
    reps += 1;
  } while (t.seconds() < min_seconds);
  return shape.flops() * static_cast<double>(reps) / t.seconds() / 1e9;
}

}  // namespace paintplace::bench
