// Section 5.2: color scheme vs grayscale input. Trains two identical cGANs
// on the same placement sweep — one on the RGB img_place (paper's choice),
// one on its tf.rgb_to_grayscale-equivalent — and compares accuracy,
// training time and inference time. Paper: grayscale loses 3-5% accuracy
// while saving ~20% training and ~50% inference time.
#include <cstdio>

#include "bench/bench_common.h"

using namespace paintplace;
using namespace paintplace::bench;

namespace {

/// Converts a stored 4-channel sample input (RGB img_place + λ·img_connect)
/// into the 2-channel grayscale variant (luminance + λ·img_connect).
nn::Tensor to_grayscale_input(const nn::Tensor& rgb_input) {
  const Index H = rgb_input.dim(2), W = rgb_input.dim(3);
  nn::Tensor gray(nn::Shape{1, 2, H, W});
  for (Index y = 0; y < H; ++y) {
    for (Index x = 0; x < W; ++x) {
      gray.at(0, 0, y, x) = 0.2989f * rgb_input.at(0, 0, y, x) +
                            0.5870f * rgb_input.at(0, 1, y, x) +
                            0.1140f * rgb_input.at(0, 2, y, x);
      gray.at(0, 1, y, x) = rgb_input.at(0, 3, y, x);
    }
  }
  return gray;
}

}  // namespace

int main() {
  Scale scale = Scale::from_env();
  scale.print("Sec 5.2: color scheme vs grayscale input");

  const DesignWorld world = build_world("raygentop", scale, 5);
  data::Dataset gray_ds = world.dataset;
  for (data::Sample& s : gray_ds.samples) s.input = to_grayscale_input(s.input);

  struct Variant {
    const char* label;
    const data::Dataset* dataset;
    Index in_channels;
    double train_seconds = 0.0;
    double infer_seconds = 0.0;
    double accuracy = 0.0;
  };
  Variant variants[] = {
      {"RGB (paper)", &world.dataset, 4},
      {"grayscale", &gray_ds, 2},
  };

  const std::size_t train_count = world.dataset.samples.size() * 3 / 4;
  for (Variant& v : variants) {
    core::CongestionForecaster forecaster(
        model_config(scale, core::SkipMode::kAll, true, v.in_channels));
    std::vector<const data::Sample*> train_set, test_set;
    for (std::size_t i = 0; i < v.dataset->samples.size(); ++i) {
      (i < train_count ? train_set : test_set).push_back(&v.dataset->samples[i]);
    }
    core::TrainConfig tcfg;
    tcfg.epochs = scale.epochs;
    Timer train_timer;
    forecaster.train(train_set, tcfg);
    v.train_seconds = train_timer.seconds();

    Timer infer_timer;
    const core::EvalResult eval = forecaster.evaluate(test_set);
    v.infer_seconds = infer_timer.seconds() / static_cast<double>(test_set.size());
    v.accuracy = eval.mean_pixel_accuracy;
  }

  std::printf("%-14s %10s %12s %12s\n", "input", "accuracy", "train (s)", "infer (s)");
  for (const Variant& v : variants) {
    std::printf("%-14s %9.1f%% %12.1f %12.4f\n", v.label, 100.0 * v.accuracy, v.train_seconds,
                v.infer_seconds);
  }
  const double acc_drop = 100.0 * (variants[0].accuracy - variants[1].accuracy);
  const double train_save = 100.0 * (1.0 - variants[1].train_seconds / variants[0].train_seconds);
  const double infer_save = 100.0 * (1.0 - variants[1].infer_seconds / variants[0].infer_seconds);
  std::printf(
      "\ngrayscale vs RGB: accuracy %+.1f pts (paper: -3 to -5), training time %+.0f%% "
      "(paper: ~-20%%), inference time %+.0f%% (paper: ~-50%%)\n",
      -acc_drop, -train_save, -infer_save);
  std::printf("conclusion (paper Sec 5.2): keep the colored placement image as input.\n");
  return 0;
}
