// Figure 2 (and Table 1): the motivating example — img_floor, img_place,
// the routing result, the ground-truth heat map img_route, and the
// pixel-to-pixel difference img_route - img_place, for one small design on
// the fixed FPGA fabric with channel width 34.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "fpga/netgen.h"
#include "img/render.h"
#include "place/sa_placer.h"
#include "route/router.h"

using namespace paintplace;

int main() {
  std::printf("== Figure 2: forecasting routing heat map as image colorization ==\n\n");

  // A diffeq1-like small design (Fig. 2 uses a small VTR circuit).
  const fpga::DesignSpec spec = fpga::scale_spec(fpga::design_by_name("diffeq1"), 0.12);
  const fpga::Netlist nl = fpga::generate_packed(spec, fpga::NetgenParams{}, 2);
  const fpga::NetlistStats stats = nl.stats();
  // Fig. 2's example routes cleanly at width 34; give the fabric the same
  // headroom VPR's auto-sizing gives real diffeq1 (synthetic nets are a bit
  // denser per CLB than the original).
  fpga::ArchParams params;
  params.target_utilization = 0.35;
  const fpga::Arch arch = fpga::Arch::auto_sized(
      {stats.num_clbs, stats.num_inputs + stats.num_outputs, stats.num_mems, stats.num_mults},
      params);
  std::printf("fabric: %s\n", arch.summary().c_str());

  place::PlacerOptions opt;
  opt.seed = 3;
  place::SaPlacer placer(arch, nl, opt);
  const place::Placement placement = placer.place();

  route::ChannelGraph graph(arch);
  route::CongestionMap congestion(graph);
  route::PathFinderRouter router(graph);
  const route::RouteResult rr = router.route(placement, congestion);
  if (rr.success) {
    // The Fig. 2d caption line.
    std::printf("Routing succeeded with a channel width factor of %lld.\n",
                static_cast<long long>(arch.params().channel_width));
  } else {
    std::printf("Routing left overuse after %lld iterations.\n",
                static_cast<long long>(rr.iterations));
  }

  const img::PixelGeometry geom(arch, 256);
  const img::Image img_floor = img::render_floorplan(geom);
  const img::Image img_place = img::render_placement(placement, geom);
  const img::Image routing_result = img::render_routing_result(placement, congestion, geom);
  const img::Image img_route = img::render_route_heatmap(placement, congestion, geom);
  const img::Image diff = img::abs_diff(img_route, img_place);

  img::write_image(img_floor, "fig2a_img_floor.ppm");
  img::write_image(img_place, "fig2b_img_place.ppm");
  img::write_image(routing_result, "fig2c_routing_result.ppm");
  img::write_image(img_route, "fig2d_img_route.ppm");
  img::write_image(diff, "fig2e_route_minus_place.ppm");

  // Table 1 color scheme, as rendered.
  std::printf("\nTable 1 color scheme (RGB):\n");
  const struct {
    const char* color;
    img::Color value;
    const char* meaning;
  } rows[] = {
      {"White", img::scheme::kWhite, "routing channels / out of floor plan"},
      {"Lightblue", img::scheme::kLightBlue, "CLB spots"},
      {"Pink", img::scheme::kPink, "multiplier columns"},
      {"Lightyellow", img::scheme::kLightYellow, "memory columns"},
      {"Black", img::scheme::kBlack, "used CLB and IO spots"},
  };
  for (const auto& row : rows) {
    std::printf("  %-12s (%.2f, %.2f, %.2f)  %s\n", row.color, row.value.r, row.value.g,
                row.value.b, row.meaning);
  }
  std::printf("  %-12s yellow(0) -> purple(1)   routing utilization gradient\n", "Yellow2purple");

  // Fig. 2e property: the difference is confined to the routing area
  // (channel stripes + the switchbox crossings between them); every block
  // pixel is bit-identical between img_place and img_route.
  const img::Image mask = img::channel_mask(geom);
  double diff_routing_area = 0.0, diff_tiles = 0.0;
  Index routing_px = 0, tile_px = 0;
  for (Index y = 0; y < diff.height(); ++y) {
    for (Index x = 0; x < diff.width(); ++x) {
      const double d = static_cast<double>(diff.at(x, y, 0)) + diff.at(x, y, 1) + diff.at(x, y, 2);
      bool in_tile = false;
      for (Index ty = 0; ty < arch.height() && !in_tile; ++ty) {
        for (Index tx = 0; tx < arch.width() && !in_tile; ++tx) {
          if (geom.tile_rect(tx, ty).contains(x, y)) in_tile = true;
        }
      }
      if (in_tile) {
        diff_tiles += d;
        tile_px += 1;
      } else {
        diff_routing_area += d;
        routing_px += 1;
      }
    }
  }
  (void)mask;
  std::printf("\nimg_route - img_place: mean |diff| %.4f on routing-area pixels, %.6f on "
              "block pixels\n",
              diff_routing_area / static_cast<double>(routing_px),
              diff_tiles / static_cast<double>(tile_px));
  const route::CongestionStats cs = congestion.stats();
  std::printf("congestion: mean %.3f, max %.3f over %lld channel segments\n",
              cs.mean_utilization, cs.max_utilization, static_cast<long long>(cs.segments));
  std::printf("\nwrote fig2a..fig2e PPM images\n");

  bench::BenchReport report("fig2");
  report.meta(bench::jstr("design", "diffeq1@0.12"));
  report.meta(bench::jint("channel_width", static_cast<long long>(arch.params().channel_width)));
  report.sample({bench::jstr("section", "routing"),
                 bench::jbool("success", rr.success),
                 bench::jint("iterations", static_cast<long long>(rr.iterations))});
  report.sample({bench::jstr("section", "diff"),
                 bench::jnum("routing_area_mean", diff_routing_area / static_cast<double>(routing_px)),
                 bench::jnum("block_mean", diff_tiles / static_cast<double>(tile_px))});
  report.sample({bench::jstr("section", "congestion"),
                 bench::jnum("mean_utilization", cs.mean_utilization),
                 bench::jnum("max_utilization", cs.max_utilization),
                 bench::jint("segments", static_cast<long long>(cs.segments))});
  report.write();
  return 0;
}
