// Training-pipeline benchmark: optimizer steps/sec of the mini-batched cGAN
// train_step at batch 1/4/8, per-phase breakdown (data assembly, generator
// forward, discriminator step, generator backward+step), under every
// registered compute backend.
//
// The model is the serving-scale configuration (channel-fat at moderate
// resolution) — the regime where the batched backward lowering and the
// cpu_opt GEMM kernels pay off. Override with PAINT_TRAIN_WIDTH /
// PAINT_TRAIN_BASE / PAINT_TRAIN_STEPS.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "bench/bench_json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/pix2pix.h"
#include "data/sample.h"
#include "train/data_loader.h"

using namespace paintplace;

namespace {

Index env_index(const char* name, Index fallback) {
  if (const char* v = std::getenv(name)) return std::atoll(v);
  return fallback;
}

std::vector<data::Sample> random_samples(Index n, Index width, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Sample> out(static_cast<std::size_t>(n));
  for (data::Sample& s : out) {
    s.input = nn::Tensor(nn::Shape{1, 4, width, width});
    s.target = nn::Tensor(nn::Shape{1, 3, width, width});
    for (Index i = 0; i < s.input.numel(); ++i) {
      s.input[i] = static_cast<float>(rng.uniform());
    }
    for (Index i = 0; i < s.target.numel(); ++i) {
      s.target[i] = static_cast<float>(rng.uniform());
    }
  }
  return out;
}

struct RunResult {
  double steps_per_sec = 0.0;
  double samples_per_sec = 0.0;
  core::StepTimings phases;
  double data_s = 0.0;
};

RunResult run_training(const std::string& backend_name, Index batch, Index steps, Index width,
                       Index base) {
  backend::ScopedBackend scoped(backend_name);

  core::Pix2PixConfig cfg;
  cfg.generator.in_channels = 4;
  cfg.generator.out_channels = 3;
  cfg.generator.image_size = width;
  cfg.generator.base_channels = base;
  cfg.generator.max_channels = base * 8;
  cfg.disc_base_channels = base;
  cfg.seed = 17;
  core::Pix2Pix model(cfg);

  const std::vector<data::Sample> samples = random_samples(batch * 4, width, 23);
  std::vector<const data::Sample*> ptrs;
  for (const data::Sample& s : samples) ptrs.push_back(&s);
  train::DataLoaderConfig loader_cfg;
  loader_cfg.batch_size = batch;
  loader_cfg.seed = 29;
  train::DataLoader loader(ptrs, loader_cfg);

  RunResult result;
  Index done = 0, epoch = 0;
  // One warmup step per configuration: first-touch workspace growth and
  // lazy pool spin-up would otherwise pollute the smallest runs.
  Index warmup = 1;
  Timer total;
  while (done < steps) {
    loader.start_epoch(epoch++);
    train::Batch b;
    Timer data_timer;
    // Count-first so the timed window ends with the last measured step
    // instead of one extra (unmeasured) batch assembly.
    while (done < steps && loader.next(b)) {
      if (warmup > 0) {
        core::StepTimings ignored;
        model.train_step(b.inputs, b.targets, &ignored);
        warmup -= 1;
        total.reset();
        data_timer.reset();
        continue;
      }
      result.data_s += data_timer.seconds();
      core::StepTimings step;
      model.train_step(b.inputs, b.targets, &step);
      result.phases += step;
      done += 1;
      data_timer.reset();
    }
  }
  const double elapsed = total.seconds();
  result.steps_per_sec = static_cast<double>(steps) / elapsed;
  result.samples_per_sec = static_cast<double>(steps * batch) / elapsed;
  return result;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  const Index width = env_index("PAINT_TRAIN_WIDTH", 32);
  const Index base = env_index("PAINT_TRAIN_BASE", 32);
  const Index steps = std::max<Index>(2, env_index("PAINT_TRAIN_STEPS", 12));

  std::printf("== paintplace::train step throughput ==\n");
  std::printf("model: %lldx%lld inputs, base %lld, max %lld channels; %lld steps/run\n",
              static_cast<long long>(width), static_cast<long long>(width),
              static_cast<long long>(base), static_cast<long long>(base * 8),
              static_cast<long long>(steps));
  std::printf("pool workers: %d\n\n", parallel_workers());

  bench::BenchReport report("train");
  report.meta(bench::jint("image_size", width));
  report.meta(bench::jint("base_channels", base));
  report.meta(bench::jint("steps_per_run", steps));
  report.meta(bench::jint("workers", parallel_workers()));

  std::printf("%-10s %6s %10s %12s | %8s %8s %8s %8s\n", "backend", "batch", "steps/s",
              "samples/s", "data", "G-fwd", "D-step", "G-bwd");
  double ref_b4 = 0.0, opt_b4 = 0.0;
  for (const std::string& name : backend::backend_names()) {
    for (const Index batch : {Index{1}, Index{4}, Index{8}}) {
      const RunResult r = run_training(name, batch, steps, width, base);
      std::printf("%-10s %6lld %10.2f %12.2f | %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", name.c_str(),
                  static_cast<long long>(batch), r.steps_per_sec, r.samples_per_sec,
                  100.0 * r.data_s * r.steps_per_sec / static_cast<double>(steps),
                  100.0 * r.phases.g_forward_s * r.steps_per_sec / static_cast<double>(steps),
                  100.0 * r.phases.d_step_s * r.steps_per_sec / static_cast<double>(steps),
                  100.0 * r.phases.g_step_s * r.steps_per_sec / static_cast<double>(steps));
      report.sample({bench::jstr("backend", name), bench::jint("batch", batch),
                     bench::jnum("steps_per_sec", r.steps_per_sec),
                     bench::jnum("samples_per_sec", r.samples_per_sec),
                     bench::jnum("data_seconds", r.data_s),
                     bench::jnum("g_forward_seconds", r.phases.g_forward_s),
                     bench::jnum("d_step_seconds", r.phases.d_step_s),
                     bench::jnum("g_step_seconds", r.phases.g_step_s)});
      if (batch == 4 && name == "reference") ref_b4 = r.steps_per_sec;
      if (batch == 4 && name == "cpu_opt") opt_b4 = r.steps_per_sec;
    }
  }
  if (ref_b4 > 0.0 && opt_b4 > 0.0) {
    std::printf("\ncpu_opt vs reference at batch 4: %.2fx steps/sec\n", opt_b4 / ref_b4);
    report.meta(bench::jnum("speedup_batch4", opt_b4 / ref_b4));
  }
  report.write();
  return 0;
}
