#include "train/trainer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "data/metrics.h"
#include "nn/serialize.h"
#include "nn/tensor_ops.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace paintplace::train {

namespace {

// Training-side registry instruments: per-step phase timings (where a step's
// wall time goes) and loss gauges holding the latest epoch's mean losses
// (the full curve lives in train_metrics.json). They share the registry
// with the serving metrics, so one scrape shows both sides.
struct TrainInstruments {
  obs::Histogram& data_phase = obs::MetricsRegistry::global().histogram(
      "train_data_seconds", "per-step batch assembly (the data phase)");
  obs::Histogram& g_forward = obs::MetricsRegistry::global().histogram(
      "train_g_forward_seconds", "per-step generator forward");
  obs::Histogram& d_step = obs::MetricsRegistry::global().histogram(
      "train_d_step_seconds", "per-step discriminator forward/backward + Adam");
  obs::Histogram& g_step = obs::MetricsRegistry::global().histogram(
      "train_g_step_seconds", "per-step generator backward + Adam");
  obs::Counter& steps = obs::MetricsRegistry::global().counter(
      "train_steps_total", "optimizer steps run");
  obs::Counter& epochs = obs::MetricsRegistry::global().counter(
      "train_epochs_total", "epochs completed");
  obs::Gauge& loss_d = obs::MetricsRegistry::global().gauge(
      "train_loss_d", "latest epoch-mean discriminator loss");
  obs::Gauge& loss_g_gan = obs::MetricsRegistry::global().gauge(
      "train_loss_g_gan", "latest epoch-mean generator adversarial loss");
  obs::Gauge& loss_g_l1 = obs::MetricsRegistry::global().gauge(
      "train_loss_g_l1", "latest epoch-mean generator L1 loss");
};

TrainInstruments& instruments() {
  static TrainInstruments inst;
  return inst;
}

constexpr const char* kStateKey = "__trainer_state__";

std::string join(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

// The state tensor stores floats, which hold integers exactly only up to
// 2^24 and would round best_val_l1 to ~7 digits — enough to misrank a
// post-resume "new best". Split counters into 20-bit limbs (exact to 2^40)
// and doubles into a float + float-residual pair (~48 mantissa bits).
constexpr Index kLimb = Index{1} << 20;

std::pair<float, float> split_index(Index v) {
  return {static_cast<float>(v / kLimb), static_cast<float>(v % kLimb)};
}

Index join_index(float hi, float lo) {
  return static_cast<Index>(hi) * kLimb + static_cast<Index>(lo);
}

std::pair<float, float> split_double(double v) {
  const float hi = static_cast<float>(v);
  return {hi, static_cast<float>(v - static_cast<double>(hi))};
}

double join_double(float hi, float lo) {
  return static_cast<double>(hi) + static_cast<double>(lo);
}

}  // namespace

Trainer::Trainer(core::CongestionForecaster& forecaster, const TrainerConfig& config)
    : forecaster_(forecaster), config_(config) {
  PP_CHECK_MSG(config_.epochs >= 1, "Trainer needs epochs >= 1");
  PP_CHECK_MSG(config_.batch_size >= 1, "Trainer needs batch_size >= 1");
  if (config_.resume) {
    PP_CHECK_MSG(!config_.checkpoint_dir.empty(), "Trainer resume needs a checkpoint_dir");
    try_resume();
  }
}

void Trainer::try_resume() {
  const std::string last = join(config_.checkpoint_dir, kLastCheckpoint);
  const std::string state = join(config_.checkpoint_dir, kStateCheckpoint);
  if (!std::filesystem::exists(last) || !std::filesystem::exists(state)) return;
  forecaster_.load(last);
  const nn::TensorMap map = nn::load_tensors_file(state);
  const auto it = map.find(kStateKey);
  PP_CHECK_MSG(it != map.end() && it->second.shape() == nn::Shape{7},
               "malformed trainer state in " << state);
  const nn::Tensor& t = it->second;
  start_epoch_ = join_index(t[0], t[1]);
  has_best_ = t[2] != 0.0f;
  best_val_l1_ = join_double(t[3], t[4]);
  total_steps_ = join_index(t[5], t[6]);
  // Adam moments ride in the same state file; restoring them makes the
  // resumed run bitwise-identical to an uninterrupted one. State files from
  // before moments were persisted simply restart the estimates (the old,
  // documented behaviour).
  forecaster_.model().load_optimizer_state(map);
}

void Trainer::save_checkpoints(bool is_best) {
  if (config_.checkpoint_dir.empty()) return;
  std::filesystem::create_directories(config_.checkpoint_dir);
  forecaster_.save(join(config_.checkpoint_dir, kLastCheckpoint));
  if (is_best) forecaster_.save(join(config_.checkpoint_dir, kBestCheckpoint));
  const auto [epoch_hi, epoch_lo] = split_index(start_epoch_);
  const auto [best_hi, best_lo] = split_double(best_val_l1_);
  const auto [steps_hi, steps_lo] = split_index(total_steps_);
  nn::TensorMap state;
  state.emplace(kStateKey,
                nn::Tensor(nn::Shape{7}, {epoch_hi, epoch_lo, has_best_ ? 1.0f : 0.0f, best_hi,
                                          best_lo, steps_hi, steps_lo}));
  forecaster_.model().save_optimizer_state(state);
  nn::save_tensors_file(state, join(config_.checkpoint_dir, kStateCheckpoint));
  write_metrics_json();
}

EpochStats Trainer::validate(const std::vector<const data::Sample*>& val_samples, Index epoch) {
  EpochStats stats;
  stats.epoch = epoch;
  fill_validation(stats, val_samples);
  return stats;
}

void Trainer::fill_validation(EpochStats& stats,
                              const std::vector<const data::Sample*>& val_samples) {
  if (val_samples.empty()) return;
  stats.has_validation = true;

  // Deterministic inference for a stable metric (and to match what the
  // serving layer will see); the previous noise setting is restored.
  const bool was_deterministic = forecaster_.deterministic_inference();
  forecaster_.set_deterministic_inference(true);

  const Index n = static_cast<Index>(val_samples.size());
  const Index chunk = std::max<Index>(1, config_.batch_size);
  double l1_sum = 0.0, acc_sum = 0.0;
  std::vector<double> predicted, truth;
  predicted.reserve(static_cast<std::size_t>(n));
  truth.reserve(static_cast<std::size_t>(n));
  for (Index at = 0; at < n; at += chunk) {
    const Index b = std::min(chunk, n - at);
    std::vector<const nn::Tensor*> inputs(static_cast<std::size_t>(b));
    for (Index i = 0; i < b; ++i) inputs[static_cast<std::size_t>(i)] =
        &val_samples[static_cast<std::size_t>(at + i)]->input;
    const nn::Tensor batch = nn::stack_batch(inputs);
    const nn::Tensor pred = forecaster_.predict_batch(batch);
    const std::vector<double> scores = forecaster_.congestion_scores(pred);
    for (Index i = 0; i < b; ++i) {
      const data::Sample& s = *val_samples[static_cast<std::size_t>(at + i)];
      const nn::Tensor pred_i = nn::slice_batch(pred, i);
      l1_sum += static_cast<double>(pred_i.mean_abs_diff(s.target));
      acc_sum += data::per_pixel_accuracy(pred_i, s.target);
      predicted.push_back(scores[static_cast<std::size_t>(i)]);
      truth.push_back(s.meta.true_total_utilization);
    }
  }
  forecaster_.set_deterministic_inference(was_deterministic);

  stats.val_l1 = l1_sum / static_cast<double>(n);
  stats.val_pixel_accuracy = acc_sum / static_cast<double>(n);
  stats.val_rank_correlation = data::spearman_rank_correlation(predicted, truth);
  stats.val_topk = data::topk_min_overlap(predicted, truth, std::min<Index>(10, n));
}

std::vector<EpochStats> Trainer::run(const std::vector<const data::Sample*>& train_samples,
                                     const std::vector<const data::Sample*>& val_samples) {
  DataLoaderConfig loader_cfg;
  loader_cfg.batch_size = config_.batch_size;
  loader_cfg.shuffle = config_.shuffle;
  loader_cfg.seed = config_.seed;
  DataLoader loader(train_samples, loader_cfg);

  std::vector<EpochStats> history;
  for (Index epoch = start_epoch_; epoch < config_.epochs; ++epoch) {
    Timer epoch_timer;
    obs::Span epoch_span("train.epoch", "train");
    if (epoch_span.active()) epoch_span.arg("epoch", epoch);
    EpochStats stats;
    stats.epoch = epoch;
    loader.start_epoch(epoch);
    Batch batch;
    Timer data_timer;
    while (loader.next(batch)) {
      const double data_s = data_timer.seconds();
      stats.data_seconds += data_s;
      instruments().data_phase.record(data_s);
      core::StepTimings step;
      {
        obs::Span step_span("train.step", "train");
        if (step_span.active()) step_span.arg("step", total_steps_);
        // Weight updates inside train_step flow through Adam::step, which
        // bumps each parameter's version and invalidates its packed panels —
        // a fine-tune on a serving model can never leave stale weight packs
        // behind in the PackedWeightCache.
        stats.train += forecaster_.model().train_step(batch.inputs, batch.targets, &step);
      }
      instruments().g_forward.record(step.g_forward_s);
      instruments().d_step.record(step.d_step_s);
      instruments().g_step.record(step.g_step_s);
      instruments().steps.fetch_add(1);
      stats.phases += step;
      stats.steps += 1;
      total_steps_ += 1;
      data_timer.reset();
    }
    PP_CHECK_MSG(stats.steps > 0, "epoch produced no batches (batch_size "
                                      << config_.batch_size << " over "
                                      << train_samples.size() << " samples)");
    stats.train /= static_cast<double>(stats.steps);

    fill_validation(stats, val_samples);
    if (stats.has_validation) {
      if (!has_best_ || stats.val_l1 < best_val_l1_) {
        has_best_ = true;
        best_val_l1_ = stats.val_l1;
        stats.is_best = true;
      }
    }

    instruments().epochs.fetch_add(1);
    instruments().loss_d.set(stats.train.d_loss);
    instruments().loss_g_gan.set(stats.train.g_gan);
    instruments().loss_g_l1.set(stats.train.g_l1);

    start_epoch_ = epoch + 1;  // state records the NEXT epoch to run
    stats.epoch_seconds = epoch_timer.seconds();
    {
      obs::LogLine line = obs::Log::instance().info("train", "epoch");
      line.kv("epoch", epoch)
          .kv("steps", stats.steps)
          .kv("loss_d", stats.train.d_loss)
          .kv("loss_g_gan", stats.train.g_gan)
          .kv("loss_g_l1", stats.train.g_l1)
          .kv("seconds", stats.epoch_seconds);
      if (stats.has_validation) line.kv("val_l1", stats.val_l1).kv("best", stats.is_best);
    }
    metrics_history_.push_back(stats);
    save_checkpoints(stats.is_best);
    history.push_back(stats);
    if (config_.on_epoch) config_.on_epoch(stats);
  }
  return history;
}

void Trainer::write_metrics_json() const {
  if (config_.checkpoint_dir.empty()) return;
  std::FILE* f = std::fopen(join(config_.checkpoint_dir, kMetricsJson).c_str(), "w");
  if (f == nullptr) return;  // metrics are best-effort; checkpoints already saved
  std::fprintf(f, "{\n  \"total_steps\": %lld,\n  \"epochs\": [\n",
               static_cast<long long>(total_steps_));
  for (std::size_t i = 0; i < metrics_history_.size(); ++i) {
    const EpochStats& s = metrics_history_[i];
    std::fprintf(f,
                 "    {\"epoch\": %lld, \"steps\": %lld, "
                 "\"d_loss\": %.6f, \"g_gan\": %.6f, \"g_l1\": %.6f, "
                 "\"data_seconds\": %.6f, \"g_forward_seconds\": %.6f, "
                 "\"d_step_seconds\": %.6f, \"g_step_seconds\": %.6f, "
                 "\"epoch_seconds\": %.6f",
                 static_cast<long long>(s.epoch), static_cast<long long>(s.steps),
                 s.train.d_loss, s.train.g_gan, s.train.g_l1, s.data_seconds,
                 s.phases.g_forward_s, s.phases.d_step_s, s.phases.g_step_s, s.epoch_seconds);
    if (s.has_validation) {
      std::fprintf(f,
                   ", \"val_l1\": %.6f, \"val_pixel_accuracy\": %.6f, "
                   "\"val_rank_correlation\": %.6f, \"val_topk\": %.6f, \"is_best\": %s",
                   s.val_l1, s.val_pixel_accuracy, s.val_rank_correlation, s.val_topk,
                   s.is_best ? "true" : "false");
    }
    std::fprintf(f, "}%s\n", i + 1 < metrics_history_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace paintplace::train
