// DataLoader — shuffled mini-batch iteration over a sample set.
//
// The training pipeline's data stage: takes the (x, truth) pairs a
// data::Dataset produced, reshuffles them deterministically per epoch, and
// assembles contiguous (B,C,H,W) batch tensors on the worker pool so the
// copy bandwidth scales with cores instead of serialising in front of the
// GEMMs. Samples are referenced, never copied, until batch assembly.
#pragma once

#include <vector>

#include "data/sample.h"

namespace paintplace::train {

using paintplace::Index;

struct DataLoaderConfig {
  Index batch_size = 4;
  bool shuffle = true;        ///< reshuffle each epoch from (seed, epoch)
  std::uint64_t seed = 7;
  /// Emit the trailing short batch (true) or drop it (false). Dropping keeps
  /// every step's batch-norm statistics at full batch width.
  bool keep_partial = true;
};

/// One assembled mini-batch: stacked input/target tensors plus the sample
/// provenance (for metrics that need routed ground-truth scalars).
struct Batch {
  nn::Tensor inputs;   ///< (B, Cin, w, w) in [0,1]
  nn::Tensor targets;  ///< (B, Cout, w, w) in [0,1]
  std::vector<const data::Sample*> samples;

  Index size() const { return inputs.rank() == 4 ? inputs.dim(0) : 0; }
};

class DataLoader {
 public:
  /// All samples must share the first sample's input/target shapes
  /// (checked at assembly). The list must be non-empty.
  DataLoader(std::vector<const data::Sample*> samples, const DataLoaderConfig& config);

  /// Begins epoch `epoch`: rewinds the cursor and, with shuffle on, applies
  /// the deterministic permutation derived from (seed, epoch) — resuming a
  /// run at epoch k replays exactly the batches the original run saw.
  void start_epoch(Index epoch);

  /// Assembles the next mini-batch (worker-pool parallel copy). Returns
  /// false when the epoch is exhausted (then also clears `out`).
  bool next(Batch& out);

  Index size() const { return static_cast<Index>(samples_.size()); }
  Index batches_per_epoch() const;
  const DataLoaderConfig& config() const { return config_; }

 private:
  std::vector<const data::Sample*> samples_;
  std::vector<Index> order_;
  DataLoaderConfig config_;
  Index cursor_ = 0;
};

}  // namespace paintplace::train
