#include "train/data_loader.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/parallel.h"
#include "common/rng.h"

namespace paintplace::train {

DataLoader::DataLoader(std::vector<const data::Sample*> samples, const DataLoaderConfig& config)
    : samples_(std::move(samples)), config_(config) {
  PP_CHECK_MSG(!samples_.empty(), "DataLoader needs at least one sample");
  PP_CHECK_MSG(config_.batch_size >= 1, "DataLoader batch_size must be >= 1");
  for (const data::Sample* s : samples_) {
    PP_CHECK_MSG(s != nullptr && s->input.rank() == 4 && s->input.dim(0) == 1 &&
                     s->target.rank() == 4 && s->target.dim(0) == 1,
                 "DataLoader samples must be single (1,C,H,W) input/target pairs");
  }
  order_.resize(samples_.size());
  std::iota(order_.begin(), order_.end(), Index{0});
  cursor_ = static_cast<Index>(samples_.size());  // exhausted until start_epoch
}

void DataLoader::start_epoch(Index epoch) {
  PP_CHECK(epoch >= 0);
  cursor_ = 0;
  std::iota(order_.begin(), order_.end(), Index{0});
  if (config_.shuffle) {
    // Mix epoch into the seed so every epoch gets its own permutation and
    // epoch k's batches are reproducible without replaying epochs 0..k-1.
    Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(epoch) + 1);
    std::shuffle(order_.begin(), order_.end(), rng.engine());
  }
}

Index DataLoader::batches_per_epoch() const {
  const Index n = size();
  if (config_.keep_partial) return (n + config_.batch_size - 1) / config_.batch_size;
  return n / config_.batch_size;
}

bool DataLoader::next(Batch& out) {
  const Index n = size();
  Index b = std::min(config_.batch_size, n - cursor_);
  if (b < config_.batch_size && !config_.keep_partial) b = 0;
  if (b <= 0) {
    out = Batch{};
    return false;
  }

  const data::Sample& first = *samples_[0];
  const Index in_c = first.input.dim(1), out_c = first.target.dim(1);
  const Index h = first.input.dim(2), w = first.input.dim(3);
  out.inputs = nn::Tensor(nn::Shape{b, in_c, h, w});
  out.targets = nn::Tensor(nn::Shape{b, out_c, h, w});
  out.samples.resize(static_cast<std::size_t>(b));

  const Index start = cursor_;
  const std::size_t in_floats = static_cast<std::size_t>(in_c * h * w);
  const std::size_t out_floats = static_cast<std::size_t>(out_c * h * w);
  // Batch assembly fans out over the pool: each worker memcpys whole
  // samples, so the stacking keeps up with training-step consumption.
  parallel_for_each(b, [&](Index i) {
    const data::Sample& s =
        *samples_[static_cast<std::size_t>(order_[static_cast<std::size_t>(start + i)])];
    PP_CHECK_MSG(s.input.dim(1) == in_c && s.input.dim(2) == h && s.input.dim(3) == w &&
                     s.target.dim(1) == out_c && s.target.dim(2) == h && s.target.dim(3) == w,
                 "DataLoader sample " << (start + i) << " shape " << s.input.shape().str()
                                      << " differs from the first sample's "
                                      << first.input.shape().str());
    std::memcpy(out.inputs.data() + i * static_cast<Index>(in_floats), s.input.data(),
                sizeof(float) * in_floats);
    std::memcpy(out.targets.data() + i * static_cast<Index>(out_floats), s.target.data(),
                sizeof(float) * out_floats);
    out.samples[static_cast<std::size_t>(i)] = &s;
  });
  cursor_ += b;
  return true;
}

}  // namespace paintplace::train
