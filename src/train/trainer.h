// Trainer — drives mini-batched cGAN training end to end.
//
// Wraps a CongestionForecaster with the full training loop the paper only
// sketches: shuffled mini-batches from a DataLoader, the adversarial + L1
// update of Eq. 2 per batch (one batched forward/backward through the wide
// GEMM lowering), per-epoch validation with the Section-5.1 metrics, and
// best/last checkpointing with resume. The produced checkpoints are
// ordinary Pix2Pix files: ForecastServer hot-swaps them directly (see
// docs/serving.md).
//
// Checkpoint layout under TrainerConfig::checkpoint_dir:
//   last.ckpt           — model after the most recent epoch
//   best.ckpt           — model with the lowest validation L1 so far
//   trainer_state.ckpt  — loop state (next epoch, best metric, step count)
//                         plus both Adam optimizers' moments and step count
//   train_metrics.json  — per-epoch loss curves, phase timing breakdown
//                         (data/G-fwd/D/G-bwd) and validation metrics,
//                         rewritten after every epoch
// With the moments restored, resuming replays exactly the run that was
// interrupted: under a deterministic model configuration (no dropout) the
// checkpoints of a resumed run are bitwise-identical to an uninterrupted
// one (see docs/training.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/forecaster.h"
#include "train/data_loader.h"

namespace paintplace::train {

struct TrainerConfig {
  Index epochs = 10;
  Index batch_size = 4;
  bool shuffle = true;
  std::uint64_t seed = 7;
  /// Directory for last/best/state checkpoints; empty disables writing.
  std::string checkpoint_dir;
  /// Continue from checkpoint_dir's last.ckpt + trainer_state.ckpt when they
  /// exist (no-op on a fresh directory).
  bool resume = false;
  /// Called after every epoch (validation included) — progress logging.
  std::function<void(const struct EpochStats&)> on_epoch;
};

/// One epoch's training record: losses, phase timing, validation metrics.
struct EpochStats {
  Index epoch = 0;
  Index steps = 0;             ///< optimizer steps this epoch
  core::GanLosses train;       ///< epoch-mean train losses
  core::StepTimings phases;    ///< summed model-phase seconds (G-fwd/D/G-bwd)
  double data_seconds = 0.0;   ///< batch-assembly time (the "data" phase)
  double epoch_seconds = 0.0;  ///< wall time of the whole epoch

  bool has_validation = false;
  double val_l1 = 0.0;               ///< mean |G(x) - truth| in [0,1] space
  double val_pixel_accuracy = 0.0;   ///< mean data::per_pixel_accuracy
  double val_rank_correlation = 0.0; ///< Spearman, predicted vs routed scores
  double val_topk = 0.0;             ///< Top-k retrieval overlap (k <= 10)
  bool is_best = false;              ///< lowest val_l1 so far (saved as best)
};

class Trainer {
 public:
  static constexpr const char* kLastCheckpoint = "last.ckpt";
  static constexpr const char* kBestCheckpoint = "best.ckpt";
  static constexpr const char* kStateCheckpoint = "trainer_state.ckpt";
  static constexpr const char* kMetricsJson = "train_metrics.json";

  /// The forecaster is borrowed; it must outlive the Trainer. With
  /// config.resume, the model weights and loop state are restored here.
  Trainer(core::CongestionForecaster& forecaster, const TrainerConfig& config);

  /// Runs the remaining epochs (all of them on a fresh run, the tail after a
  /// resume). Validation (and best-checkpoint tracking) is skipped when
  /// `val_samples` is empty. Returns one EpochStats per epoch run.
  std::vector<EpochStats> run(const std::vector<const data::Sample*>& train_samples,
                              const std::vector<const data::Sample*>& val_samples);

  /// Validation only: metrics of the current model over `val_samples`
  /// (deterministic inference, batched forward).
  EpochStats validate(const std::vector<const data::Sample*>& val_samples, Index epoch = 0);

  Index start_epoch() const { return start_epoch_; }
  double best_val_l1() const { return best_val_l1_; }
  Index total_steps() const { return total_steps_; }

  /// Epochs recorded by run() so far this process (what kMetricsJson holds).
  const std::vector<EpochStats>& metrics_history() const { return metrics_history_; }

 private:
  void save_checkpoints(bool is_best);
  void write_metrics_json() const;
  void try_resume();
  /// Runs validation and writes the val_* fields (and has_validation) into
  /// `stats`; no-op on an empty sample list.
  void fill_validation(EpochStats& stats, const std::vector<const data::Sample*>& val_samples);

  core::CongestionForecaster& forecaster_;
  TrainerConfig config_;
  Index start_epoch_ = 0;
  Index total_steps_ = 0;
  double best_val_l1_ = 0.0;
  bool has_best_ = false;
  std::vector<EpochStats> metrics_history_;
};

}  // namespace paintplace::train
