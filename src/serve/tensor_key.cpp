#include "serve/tensor_key.h"

#include <cstring>

namespace paintplace::serve {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kFnvBasis1 = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvBasis2 = 0x6c62272e07bb0142ULL;  // distinct stream

inline void mix(std::uint64_t& h1, std::uint64_t& h2, const unsigned char* bytes, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h1 = (h1 ^ bytes[i]) * kFnvPrime;
    h2 = (h2 ^ static_cast<unsigned char>(bytes[i] + 0x5bU)) * kFnvPrime;
  }
}

}  // namespace

TensorKey TensorKey::of(const nn::Tensor& t) {
  TensorKey key;
  key.h1 = kFnvBasis1;
  key.h2 = kFnvBasis2;
  key.numel = t.numel();
  for (Index d : t.shape().dims()) {
    const auto v = static_cast<std::uint64_t>(d);
    unsigned char bytes[sizeof(v)];
    std::memcpy(bytes, &v, sizeof(v));
    mix(key.h1, key.h2, bytes, sizeof(v));
  }
  mix(key.h1, key.h2, reinterpret_cast<const unsigned char*>(t.data()),
      sizeof(float) * static_cast<std::size_t>(t.numel()));
  return key;
}

}  // namespace paintplace::serve
