#include "serve/batch_queue.h"

namespace paintplace::serve {

bool BatchQueue::push(PendingRequest& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return true;
}

std::vector<PendingRequest> BatchQueue::pop_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (closed_) return {};
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      continue;
    }
    if (static_cast<Index>(queue_.size()) >= max_batch_ || closed_) break;
    // Wait for the batch to fill, but no longer than the oldest request's
    // deadline — latency is bounded by max_wait regardless of traffic.
    const auto deadline = queue_.front().enqueued_at + max_wait_;
    cv_.wait_until(lock, deadline, [this] {
      return closed_ || static_cast<Index>(queue_.size()) >= max_batch_;
    });
    // Another consumer may have drained the queue while we slept — loop back
    // and re-evaluate from the top (which also handles close/drain).
    if (queue_.empty()) continue;
    if (closed_ || static_cast<Index>(queue_.size()) >= max_batch_ ||
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }
  const std::size_t take = std::min<std::size_t>(queue_.size(), static_cast<std::size_t>(max_batch_));
  std::vector<PendingRequest> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void BatchQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool BatchQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t BatchQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace paintplace::serve
