// Versioned registry of forecaster checkpoints with hot swap.
//
// publish() atomically replaces the serving model; current() hands out a
// shared_ptr snapshot. In-flight batches keep the snapshot they started
// with, so a swap never drains or interrupts them — the old model is
// destroyed when its last batch finishes. Versions are monotonically
// increasing so clients can tell which checkpoint produced a result.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/forecaster.h"

namespace paintplace::serve {

struct ModelSnapshot {
  std::uint64_t version = 0;
  std::string label;
  std::shared_ptr<core::CongestionForecaster> model;

  explicit operator bool() const { return model != nullptr; }
};

class ModelRegistry {
 public:
  /// Registers `model` as the new serving model; returns its version (1, 2,
  /// ...). The previous model stays alive while any batch still holds it.
  std::uint64_t publish(std::shared_ptr<core::CongestionForecaster> model, std::string label);

  /// Snapshot of the current serving model. Empty (version 0, null model)
  /// before the first publish.
  ModelSnapshot current() const;

  bool empty() const;

  /// (version, label) of every publish, oldest first.
  std::vector<std::pair<std::uint64_t, std::string>> history() const;

 private:
  mutable std::mutex mu_;
  ModelSnapshot current_;
  std::uint64_t next_version_ = 1;
  std::vector<std::pair<std::uint64_t, std::string>> history_;
};

}  // namespace paintplace::serve
