#include "serve/forecast_server.h"

#include <algorithm>

#include "backend/backend.h"
#include "nn/tensor_ops.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace paintplace::serve {

namespace {

// Serving-side registry instruments, shared across replicas. The coalesce
// wait histogram meters enqueue -> batch-start: the latency cost a request
// pays to ride a bigger (cheaper per-sample) batch.
struct ServeInstruments {
  obs::Histogram& batch_wait = obs::MetricsRegistry::global().histogram(
      "serve_batch_wait_seconds", "request enqueue to batch execution start");
  obs::Histogram& batch_exec = obs::MetricsRegistry::global().histogram(
      "serve_batch_exec_seconds", "batched forward + scoring wall time");
  obs::Counter& batches = obs::MetricsRegistry::global().counter(
      "serve_batches_total", "micro-batches executed");
  obs::Counter& coalesced = obs::MetricsRegistry::global().counter(
      "serve_coalesced_total", "duplicate requests folded into one forward");
};

ServeInstruments& instruments() {
  static ServeInstruments inst;
  return inst;
}

}  // namespace

ForecastServer::ForecastServer(const ServeConfig& config,
                               std::shared_ptr<core::CongestionForecaster> model,
                               std::string label)
    : config_(config),
      cache_(config.cache_capacity),
      queue_(config.max_batch, config.max_wait) {
  PP_CHECK_MSG(config.workers >= 1, "ForecastServer needs at least one worker");
  PP_CHECK_MSG(model != nullptr, "ForecastServer needs an initial model");
  PP_CHECK_MSG(config.deterministic || config.cache_capacity == 0,
               "stochastic inference with a result cache would serve stale noise draws; "
               "set deterministic=true or cache_capacity=0");
  if (config_.deterministic) model->set_deterministic_inference(true);
  // Throws on unknown names before any worker starts, so a typo in a config
  // fails the server construction instead of silently serving on the default.
  if (!config_.backend.empty()) backend::set_active_backend(config_.backend);
  if (!config_.trace.empty()) obs::Tracer::instance().configure(config_.trace);
  if (config_.trace_sample > 0) {
    obs::SamplerConfig sampler_cfg;
    sampler_cfg.sample_every = config_.trace_sample;
    sampler_cfg.slow_threshold_s = config_.trace_slow_ms * 1e-3;
    obs::Tracer::instance().sampler().configure(sampler_cfg);
  }
  registry_.publish(std::move(model), std::move(label));
  workers_.reserve(static_cast<std::size_t>(config.workers));
  for (int w = 0; w < config.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ForecastServer::~ForecastServer() { shutdown(); }

std::future<ForecastResult> ForecastServer::submit(const nn::Tensor& input01) {
  obs::Span span("serve.submit", "serve");
  PP_CHECK_MSG(!queue_.closed(), "ForecastServer::submit after shutdown");
  // Validate against the current model configuration up front — the same
  // check predict() would run, but failing in the caller's thread instead
  // of inside a worker.
  const ModelSnapshot snapshot = registry_.current();
  snapshot.model->validate_input(input01, /*batched=*/false);

  PendingRequest req;
  req.key = TensorKey::of(input01);
  if (auto hit = cache_.get(req.key, snapshot.version)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests += 1;
    stats_.cache_hits += 1;
    std::promise<ForecastResult> ready;
    ready.set_value(std::move(*hit));
    return ready.get_future();
  }

  req.input = input01;
  req.enqueued_at = std::chrono::steady_clock::now();
  req.trace_id = obs::TraceContext::current();
  std::future<ForecastResult> future = req.promise.get_future();
  PP_CHECK_MSG(queue_.push(req), "ForecastServer::submit after shutdown");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests += 1;
  }
  return future;
}

std::uint64_t ForecastServer::publish_model(std::shared_ptr<core::CongestionForecaster> model,
                                            std::string label) {
  PP_CHECK_MSG(model != nullptr, "ForecastServer::publish_model: null model");
  if (config_.deterministic) model->set_deterministic_inference(true);
  const std::uint64_t version = registry_.publish(std::move(model), std::move(label));
  // Cached results were produced by an older version; a hit must mean "the
  // serving model would paint exactly this", so drop them.
  cache_.clear();
  // debug level: the pool publishes once per replica, and the net layer
  // already logs the swap once at info.
  obs::Log::instance()
      .debug("serve", "publish_model")
      .kv("version", version);
  obs::FlightRecorder::record(obs::EventKind::kSwap, 0, "publish_model",
                              static_cast<std::int64_t>(version), 0);
  return version;
}

void ForecastServer::shutdown() {
  if (shut_down_.exchange(true)) return;
  obs::FlightRecorder::record(obs::EventKind::kDrain, 0, "forecast server drain", 0, 0);
  queue_.close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // After the drain every span this server will ever record exists, so this
  // is the safe dump point. Only the server that configured the trace dumps
  // (idempotent across replicas sharing one path).
  if (!config_.trace.empty()) obs::Tracer::instance().dump_configured();
}

ServeStats ForecastServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ForecastServer::worker_loop() {
  for (;;) {
    std::vector<PendingRequest> batch = queue_.pop_batch();
    if (batch.empty()) return;  // closed and drained
    run_batch(std::move(batch));
  }
}

void ForecastServer::run_batch(std::vector<PendingRequest> batch) {
  // The batch executes once for many requests; adopt the first traced
  // request's id so the batch span stitches to at least one request chain
  // (the others are reachable through the shared span's time range).
  std::uint64_t batch_trace = 0;
  const auto batch_start = std::chrono::steady_clock::now();
  for (const PendingRequest& req : batch) {
    if (batch_trace == 0) batch_trace = req.trace_id;
    instruments().batch_wait.record(
        std::chrono::duration<double>(batch_start - req.enqueued_at).count());
  }
  const obs::ScopedTraceId trace_scope(batch_trace);
  obs::Span span("serve.run_batch", "serve");
  if (span.active()) span.arg("batch", static_cast<std::int64_t>(batch.size()));
  try {
    const ModelSnapshot snapshot = registry_.current();

    // Late cache check (another worker may have just computed a duplicate)
    // plus within-batch coalescing: every distinct input runs exactly once.
    std::vector<Index> unique_of_request(batch.size(), -1);  // request -> unique slot
    std::vector<const nn::Tensor*> unique_inputs;
    std::vector<TensorKey> unique_keys;
    std::uint64_t coalesced = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (auto hit = cache_.get(batch[i].key, snapshot.version)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.cache_hits += 1;
        batch[i].promise.set_value(std::move(*hit));
        continue;
      }
      bool found = false;
      for (std::size_t u = 0; u < unique_keys.size(); ++u) {
        if (unique_keys[u] == batch[i].key) {
          unique_of_request[i] = static_cast<Index>(u);
          coalesced += 1;
          found = true;
          break;
        }
      }
      if (!found) {
        unique_of_request[i] = static_cast<Index>(unique_inputs.size());
        unique_inputs.push_back(&batch[i].input);
        unique_keys.push_back(batch[i].key);
      }
    }
    if (unique_inputs.empty()) return;  // everything was already cached
    if (span.active()) {
      span.arg("unique", static_cast<std::int64_t>(unique_inputs.size()));
      span.arg("coalesced", static_cast<std::int64_t>(coalesced));
    }

    nn::Tensor heatmaps;
    {
      std::lock_guard<std::mutex> lock(model_mu_);
      heatmaps = snapshot.model->predict_batch(nn::stack_batch(unique_inputs));
    }
    // Scoring is pure per-pixel decoding — no layer state — so it runs
    // outside the lock and overlaps with the next batch's forward pass.
    const std::vector<double> scores = snapshot.model->congestion_scores(heatmaps);
    instruments().batch_exec.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - batch_start).count());
    instruments().batches.fetch_add(1);
    instruments().coalesced.fetch_add(coalesced);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.batches += 1;
      stats_.model_samples += unique_inputs.size();
      stats_.coalesced += coalesced;
      stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, unique_inputs.size());
    }

    std::vector<ForecastResult> results(unique_inputs.size());
    for (std::size_t u = 0; u < unique_inputs.size(); ++u) {
      results[u].heatmap = nn::slice_batch(heatmaps, static_cast<Index>(u));
      results[u].congestion_score = scores[u];
      results[u].model_version = snapshot.version;
      results[u].from_cache = false;
      cache_.put(unique_keys[u], results[u]);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (unique_of_request[i] < 0) continue;  // already served from cache
      batch[i].promise.set_value(results[static_cast<std::size_t>(unique_of_request[i])]);
    }
  } catch (...) {
    // A failed batch (e.g. a hot-swapped model with an incompatible input
    // size) fails its requests, not the server.
    const std::exception_ptr err = std::current_exception();
    for (PendingRequest& req : batch) {
      try {
        req.promise.set_exception(err);
      } catch (const std::future_error&) {
        // promise already satisfied (cache hit before the failure) — fine.
      }
    }
  }
}

}  // namespace paintplace::serve
