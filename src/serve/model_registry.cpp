#include "serve/model_registry.h"

#include "backend/pack_cache.h"

namespace paintplace::serve {

std::uint64_t ModelRegistry::publish(std::shared_ptr<core::CongestionForecaster> model,
                                     std::string label) {
  PP_CHECK_MSG(model != nullptr, "ModelRegistry::publish: null model");
  std::lock_guard<std::mutex> lock(mu_);
  // Hot swap: retire the outgoing model's packed weight panels so the cache
  // bytes come back now instead of waiting for LRU pressure. Entries are
  // shared_ptr-pinned by in-flight forwards, so batches that still hold the
  // old model finish on its (correct) packs; correctness does not depend on
  // this call — the (pointer, version) keying already can never alias a new
  // model's weights onto old panels.
  if (current_.model != nullptr) {
    auto& cache = backend::PackedWeightCache::instance();
    for (nn::Parameter* p : current_.model->model().generator().parameters()) {
      cache.invalidate(p->value.data());
    }
  }
  const std::uint64_t version = next_version_++;
  current_ = ModelSnapshot{version, label, std::move(model)};
  history_.emplace_back(version, std::move(label));
  return version;
}

ModelSnapshot ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

bool ModelRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.model == nullptr;
}

std::vector<std::pair<std::uint64_t, std::string>> ModelRegistry::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace paintplace::serve
