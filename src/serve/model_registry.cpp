#include "serve/model_registry.h"

namespace paintplace::serve {

std::uint64_t ModelRegistry::publish(std::shared_ptr<core::CongestionForecaster> model,
                                     std::string label) {
  PP_CHECK_MSG(model != nullptr, "ModelRegistry::publish: null model");
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t version = next_version_++;
  current_ = ModelSnapshot{version, label, std::move(model)};
  history_.emplace_back(version, std::move(label));
  return version;
}

ModelSnapshot ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

bool ModelRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.model == nullptr;
}

std::vector<std::pair<std::uint64_t, std::string>> ModelRegistry::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace paintplace::serve
