// Thread-safe LRU cache from input-tensor content hash to forecast result.
//
// Identical placements are common in serving (placement explorers re-score
// candidate sets; SA clients snapshot plateaued placements repeatedly), and
// a cGAN forward pass is ~ms while a lookup is ~µs. Entries are keyed by
// TensorKey (128-bit content hash), so hits never touch the model and return
// the stored heat map bit-identically.
#pragma once

#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "serve/forecast_types.h"
#include "serve/tensor_key.h"

namespace paintplace::serve {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  /// capacity = maximum resident entries; 0 disables the cache entirely.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the stored result (marked from_cache) and refreshes its
  /// recency, or nullopt on miss.
  std::optional<ForecastResult> get(const TensorKey& key);

  /// As get(), but an entry whose model_version differs from
  /// `required_version` counts as a miss and is evicted — a batch that was
  /// in flight across a hot swap may insert results of the superseded model
  /// after the swap's clear(), and those must never be served.
  std::optional<ForecastResult> get(const TensorKey& key, std::uint64_t required_version);

  /// Inserts or refreshes; evicts the least-recently-used entry when full.
  void put(const TensorKey& key, const ForecastResult& result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  Stats stats() const;
  void clear();

 private:
  using Entry = std::pair<TensorKey, ForecastResult>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<TensorKey, std::list<Entry>::iterator, TensorKeyHash> index_;
  Stats stats_;
};

}  // namespace paintplace::serve
