#include "serve/result_cache.h"

namespace paintplace::serve {

std::optional<ForecastResult> ResultCache::get(const TensorKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses += 1;
    return std::nullopt;
  }
  stats_.hits += 1;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ForecastResult result = it->second->second;
  result.from_cache = true;
  return result;
}

std::optional<ForecastResult> ResultCache::get(const TensorKey& key,
                                               std::uint64_t required_version) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses += 1;
    return std::nullopt;
  }
  if (it->second->second.model_version != required_version) {
    lru_.erase(it->second);
    index_.erase(it);
    stats_.misses += 1;
    stats_.evictions += 1;
    return std::nullopt;
  }
  stats_.hits += 1;
  lru_.splice(lru_.begin(), lru_, it->second);
  ForecastResult result = it->second->second;
  result.from_cache = true;
  return result;
}

void ResultCache::put(const TensorKey& key, const ForecastResult& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  index_.emplace(key, lru_.begin());
  stats_.insertions += 1;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    stats_.evictions += 1;
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace paintplace::serve
