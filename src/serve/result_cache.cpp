#include "serve/result_cache.h"

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace paintplace::serve {

namespace {

// Process-wide cache counters: every ResultCache instance (one per replica)
// feeds the same registry instruments, so the exposition shows fleet totals.
struct CacheMetrics {
  obs::Counter& hits = obs::MetricsRegistry::global().counter(
      "serve_cache_hits_total", "result-cache lookups served without the model");
  obs::Counter& misses = obs::MetricsRegistry::global().counter(
      "serve_cache_misses_total", "result-cache lookups that fell through to a batch");
  obs::Counter& evictions = obs::MetricsRegistry::global().counter(
      "serve_cache_evictions_total", "entries evicted (LRU pressure or stale version)");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

void trace_lookup(obs::Span& span, bool hit) {
  if (span.active()) span.arg("hit", static_cast<std::int64_t>(hit ? 1 : 0));
}

}  // namespace

std::optional<ForecastResult> ResultCache::get(const TensorKey& key) {
  obs::Span span("cache.get", "serve");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses += 1;
    cache_metrics().misses.fetch_add(1);
    trace_lookup(span, false);
    return std::nullopt;
  }
  stats_.hits += 1;
  cache_metrics().hits.fetch_add(1);
  trace_lookup(span, true);
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ForecastResult result = it->second->second;
  result.from_cache = true;
  return result;
}

std::optional<ForecastResult> ResultCache::get(const TensorKey& key,
                                               std::uint64_t required_version) {
  obs::Span span("cache.get", "serve");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses += 1;
    cache_metrics().misses.fetch_add(1);
    trace_lookup(span, false);
    return std::nullopt;
  }
  if (it->second->second.model_version != required_version) {
    lru_.erase(it->second);
    index_.erase(it);
    stats_.misses += 1;
    stats_.evictions += 1;
    cache_metrics().misses.fetch_add(1);
    cache_metrics().evictions.fetch_add(1);
    trace_lookup(span, false);
    return std::nullopt;
  }
  stats_.hits += 1;
  cache_metrics().hits.fetch_add(1);
  trace_lookup(span, true);
  lru_.splice(lru_.begin(), lru_, it->second);
  ForecastResult result = it->second->second;
  result.from_cache = true;
  return result;
}

void ResultCache::put(const TensorKey& key, const ForecastResult& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, result);
  index_.emplace(key, lru_.begin());
  stats_.insertions += 1;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    stats_.evictions += 1;
    cache_metrics().evictions.fetch_add(1);
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace paintplace::serve
