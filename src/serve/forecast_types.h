// Value types shared across the serving subsystem.
#pragma once

#include <cstdint>

#include "nn/tensor.h"

namespace paintplace::serve {

using paintplace::Index;

/// What a client gets back for one submitted placement render.
struct ForecastResult {
  nn::Tensor heatmap;             ///< (1,3,w,w) predicted routing heat map in [0,1]
  double congestion_score = 0.0;  ///< mean decoded utilization (ranking proxy)
  std::uint64_t model_version = 0;  ///< registry version that produced the map
  bool from_cache = false;        ///< true when served without a model pass
};

/// Monotonic counters describing server behaviour since construction.
struct ServeStats {
  std::uint64_t requests = 0;       ///< total submits accepted
  std::uint64_t cache_hits = 0;     ///< resolved from the result cache
  std::uint64_t coalesced = 0;      ///< deduplicated against an identical batch-mate
  std::uint64_t batches = 0;        ///< generator forward passes
  std::uint64_t model_samples = 0;  ///< samples that actually went through the model
  std::uint64_t max_batch = 0;      ///< largest batch coalesced so far
  double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(model_samples) / static_cast<double>(batches);
  }
};

}  // namespace paintplace::serve
