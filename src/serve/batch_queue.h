// Micro-batch request queue: the heart of the serving engine's coalescing.
//
// Producers push single requests; consumers pop whole batches. A batch is
// released when either (a) max_batch requests are pending, or (b) max_wait
// has elapsed since the *oldest* pending request arrived — so a lone request
// pays at most max_wait of latency while bursts fill batches immediately.
// close() stops intake but lets consumers drain what is queued; pop_batch
// returns an empty vector once the queue is closed and empty.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/forecast_types.h"
#include "serve/tensor_key.h"

namespace paintplace::serve {

/// One queued forecast request: the rendered placement, its content hash,
/// and the promise the client's future is waiting on.
struct PendingRequest {
  nn::Tensor input;  ///< (1,C,w,w) in [0,1]
  TensorKey key;
  std::promise<ForecastResult> promise;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Trace id captured at submit (0 = untraced): the batch worker adopts it
  /// so the spans of a cross-thread request stitch together in the trace.
  std::uint64_t trace_id = 0;
};

class BatchQueue {
 public:
  BatchQueue(Index max_batch, std::chrono::microseconds max_wait)
      : max_batch_(max_batch), max_wait_(max_wait) {
    PP_CHECK_MSG(max_batch >= 1, "BatchQueue max_batch must be >= 1");
    PP_CHECK_MSG(max_wait.count() >= 0, "BatchQueue max_wait must be >= 0");
  }

  /// Enqueues a request. Returns false (leaving `req` untouched) after close().
  bool push(PendingRequest& req);

  /// Blocks until a batch is ready per the flush policy, then returns up to
  /// max_batch requests (oldest first). Empty vector = closed and drained.
  std::vector<PendingRequest> pop_batch();

  /// Stops intake; queued requests remain poppable. Idempotent.
  void close();

  bool closed() const;
  std::size_t pending() const;

 private:
  const Index max_batch_;
  const std::chrono::microseconds max_wait_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool closed_ = false;
};

}  // namespace paintplace::serve
