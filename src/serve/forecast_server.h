// ForecastServer — micro-batched congestion-forecast serving engine.
//
// Placement clients (SA placers, explorers, interactive tools) submit
// rendered placements and get a future for the predicted heat map plus its
// congestion score. Submissions are coalesced on a BatchQueue into
// micro-batches that run as ONE batched generator forward pass (see
// CongestionForecaster::predict_batch), amortizing the per-sample GEMM
// inefficiency of the channel-fat inner U-Net levels. Identical placements
// are served from a content-hash LRU cache without touching the model, and
// duplicates inside one batch run only once. Checkpoints hot-swap through a
// ModelRegistry: in-flight batches finish on the model they started with.
//
// Threading contract: the server owns the model(s) handed to the registry —
// forward passes are stateful (layer caches), so the server serializes them
// behind a mutex. Don't call predict() on a published model from outside
// while the server is running.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/batch_queue.h"
#include "serve/forecast_types.h"
#include "serve/model_registry.h"
#include "serve/result_cache.h"

namespace paintplace::serve {

struct ServeConfig {
  Index max_batch = 8;  ///< flush a batch at this many pending requests
  std::chrono::microseconds max_wait{2000};  ///< ... or this long after the oldest arrival
  int workers = 1;      ///< batch-consumer threads (forward passes still serialize)
  std::size_t cache_capacity = 1024;  ///< LRU entries; 0 disables caching
  /// Freeze the generator's inference noise z so predictions are a pure
  /// function of the input. Required for the cache to be sound; disable only
  /// if you want stochastic maps AND an empty cache_capacity.
  bool deterministic = true;
  /// Compute backend to activate when the server starts ("reference",
  /// "cpu_opt", ...). Empty keeps the process default (PAINTPLACE_BACKEND
  /// env var, else cpu_opt). Note the active backend is process-wide, not
  /// per-server — both built-in backends agree to ~1e-4, but a swap mid-run
  /// invalidates bit-exact cache guarantees, so pick one at startup.
  std::string backend;
  /// Chrome-trace dump path. Non-empty enables the process-wide tracer (the
  /// programmatic twin of PAINTPLACE_TRACE) and writes the trace JSON there
  /// on shutdown. Like the backend, the tracer is process-wide.
  std::string trace;
  /// Tail-based trace sampling: head-sample 1-in-this-many requests, always
  /// retain slow/shed/error requests (see obs/sampler.h). 0 keeps the
  /// record-everything behavior. The sampler — like the tracer — is
  /// process-wide; the request lifecycle (begin/finish) is driven by the
  /// net front-end, so this knob only matters behind a NetServer.
  std::uint64_t trace_sample = 0;
  /// Requests slower than this always commit their trace when sampling.
  double trace_slow_ms = 100.0;
};

class ForecastServer {
 public:
  /// Takes ownership of the initial model (published as version 1).
  ForecastServer(const ServeConfig& config, std::shared_ptr<core::CongestionForecaster> model,
                 std::string label = "initial");
  ~ForecastServer();

  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  /// Submits one rendered placement (1,C,w,w in [0,1]). The future resolves
  /// with the heat map + score — immediately on a cache hit, after the next
  /// micro-batch otherwise. Throws CheckError on bad shape or after shutdown.
  std::future<ForecastResult> submit(const nn::Tensor& input01);

  /// Hot-swaps the serving model (e.g. a fine-tuned checkpoint). In-flight
  /// batches finish on their old model; the cache is cleared because cached
  /// results no longer reflect the serving model. Returns the new version.
  std::uint64_t publish_model(std::shared_ptr<core::CongestionForecaster> model,
                              std::string label);

  /// Stops intake, serves every queued request, joins workers. Idempotent;
  /// also runs on destruction.
  void shutdown();

  ServeStats stats() const;
  ResultCache& cache() { return cache_; }
  ModelRegistry& registry() { return registry_; }

 private:
  void worker_loop();
  void run_batch(std::vector<PendingRequest> batch);

  ServeConfig config_;
  ModelRegistry registry_;
  ResultCache cache_;
  BatchQueue queue_;
  std::mutex model_mu_;  // forward passes are stateful — one at a time
  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};

  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

}  // namespace paintplace::serve
