// Content hash of an input tensor — the identity of a forecast request.
//
// Two independent 64-bit FNV-1a streams over the shape and the raw float
// bytes. A single 64-bit hash would make silent cache collisions merely
// improbable; 128 bits makes them unrealistic for any serving lifetime, so
// the cache can skip storing (and comparing) full tensor copies per entry.
#pragma once

#include <cstddef>
#include <cstdint>

#include "nn/tensor.h"

namespace paintplace::serve {

using paintplace::Index;

struct TensorKey {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  Index numel = 0;

  static TensorKey of(const nn::Tensor& t);

  bool operator==(const TensorKey& o) const {
    return h1 == o.h1 && h2 == o.h2 && numel == o.numel;
  }
  bool operator!=(const TensorKey& o) const { return !(*this == o); }
};

struct TensorKeyHash {
  std::size_t operator()(const TensorKey& k) const {
    // FNV-1a's low bit is the XOR of the basis's low bit and every input
    // byte's low bit — and h1/h2 digest the same bytes, so any pure
    // XOR/multiply combine leaves bit 0 constant across all keys. Anything
    // taking this hash modulo a power of two (the replica shard function,
    // hash-table buckets) needs the splitmix64 finalizer to fold the
    // high-entropy bits back down.
    std::uint64_t x = k.h1 + 0x9e3779b97f4a7c15ULL * k.h2;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace paintplace::serve
