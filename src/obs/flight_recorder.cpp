#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "obs/build_info.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace paintplace::obs {
namespace {

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Copies `src` into dst[cap], truncating, replacing anything that would
/// need JSON escaping (quotes, backslashes, control/non-ASCII bytes) with
/// '_'. Done at record time so the signal handler emits bytes verbatim.
void sanitize_into(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  if (src != nullptr) {
    for (; src[i] != '\0' && i + 1 < cap; ++i) {
      const unsigned char c = static_cast<unsigned char>(src[i]);
      dst[i] = (c >= 0x20 && c <= 0x7e && c != '"' && c != '\\')
                   ? static_cast<char>(c)
                   : '_';
    }
  }
  dst[i] = '\0';
}

// ---------------------------------------------------------------------------
// Async-signal-safe append helpers. All formatting in the handler path goes
// through these: bounds-checked byte copies and hand-rolled integer
// conversion, nothing else.

struct Appender {
  char* buf;
  std::size_t cap;
  std::size_t len = 0;

  void raw(const char* s, std::size_t n) {
    if (len + n > cap) n = cap - len;
    std::memcpy(buf + len, s, n);
    len += n;
  }
  void str(const char* s) { raw(s, std::strlen(s)); }
  void ch(char c) {
    if (len < cap) buf[len++] = c;
  }
  void u64(std::uint64_t v) {
    char tmp[24];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) ch(tmp[--n]);
  }
  void i64(std::int64_t v) {
    if (v < 0) {
      ch('-');
      // Negate via uint64 so INT64_MIN does not overflow.
      u64(~static_cast<std::uint64_t>(v) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
};

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kLog: return "log";
    case EventKind::kRequest: return "request";
    case EventKind::kShed: return "shed";
    case EventKind::kSwap: return "swap";
    case EventKind::kDrain: return "drain";
    case EventKind::kStall: return "stall";
    case EventKind::kSignal: return "signal";
    case EventKind::kMark: return "mark";
  }
  return "mark";
}

// ---------------------------------------------------------------------------
// Fixed per-thread storage. Slots are heap-allocated once per thread and
// published into a fixed pointer table; they are never freed (a thread's
// last events stay dumpable after it exits), so the handler can walk the
// table with plain loads. Each slot has a single writer (its thread); the
// handler is the only concurrent reader, synchronized by the head/depth
// release stores.

struct FlightRecorder::ThreadSlot {
  std::uint64_t os_tid = 0;

  // Event ring: head counts events ever recorded; slot = head % capacity.
  std::atomic<std::uint64_t> head{0};
  FlightEvent events[kEventsPerThread];

  // Active span stack: names are copied in at push time (no pointers into
  // stack frames), depth published with release so the handler sees a
  // consistent prefix.
  std::atomic<std::uint32_t> span_depth{0};
  char span_names[kMaxSpanDepth][kSpanNameLen];
};

namespace {

std::atomic<FlightRecorder::ThreadSlot*> g_slots[FlightRecorder::kMaxThreads];
std::atomic<std::uint32_t> g_slot_count{0};

// Metrics snapshot the handler embeds verbatim: pre-escaped as JSON string
// content at refresh time (off the signal path).
constexpr std::size_t kMetricsSnapshotCap = 256 * 1024;
char g_metrics_snapshot[kMetricsSnapshotCap];
std::atomic<std::size_t> g_metrics_snapshot_len{0};

// The dump is rendered into static storage: the handler cannot malloc, and
// untouched BSS pages cost nothing until a crash actually happens.
constexpr std::size_t kDumpBufCap = 8 * 1024 * 1024;
char g_dump_buf[kDumpBufCap];

thread_local FlightRecorder::ThreadSlot* t_slot = nullptr;
thread_local bool t_slot_overflow = false;

struct sigaction g_prev_actions[32];

}  // namespace

void flight_recorder_signal_handler(int signo) {
  FlightRecorder& rec = FlightRecorder::instance();
  FlightRecorder::record(EventKind::kSignal, 0, "fatal signal", signo, 0);
  const std::size_t n = rec.render_dump(g_dump_buf, kDumpBufCap, signo);
  const int fd = ::open(rec.dump_path(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, g_dump_buf + off, n - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(fd);
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (exit status / core dump preserved).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* rec = new FlightRecorder();
  return *rec;
}

FlightRecorder::FlightRecorder() : epoch_us_(steady_us()) {}

void FlightRecorder::enable() {
  enabled_.store(true, std::memory_order_relaxed);
  // Spans now also maintain the per-thread forensic stack (one extra copy
  // per span while enabled; still a single relaxed load when not).
  detail::set_forensics_spans(true);
}

void FlightRecorder::install(const std::string& dir) {
  enable();
  refresh_metrics_snapshot();

  char pid_buf[16];
  Appender path{dump_path_, sizeof(dump_path_) - 1};
  path.str(dir.c_str());
  if (!dir.empty() && dir.back() != '/') path.ch('/');
  path.str("postmortem.");
  Appender pid{pid_buf, sizeof(pid_buf) - 1};
  pid.u64(static_cast<std::uint64_t>(::getpid()));
  pid_buf[pid.len] = '\0';
  path.str(pid_buf);
  path.str(".json");
  dump_path_[path.len] = '\0';

  bool expected = false;
  if (!installed_.compare_exchange_strong(expected, true)) return;

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = flight_recorder_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (int signo : {SIGSEGV, SIGABRT, SIGBUS}) {
    ::sigaction(signo, &action, &g_prev_actions[signo]);
  }
}

FlightRecorder::ThreadSlot* FlightRecorder::slot_for_this_thread() {
  if (t_slot != nullptr) return t_slot;
  if (t_slot_overflow) return nullptr;
  const std::uint32_t idx = g_slot_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxThreads) {
    t_slot_overflow = true;  // beyond the fixed table: this thread records nothing
    return nullptr;
  }
  auto* slot = new ThreadSlot();
  slot->os_tid = static_cast<std::uint64_t>(::syscall(SYS_gettid));
  g_slots[idx].store(slot, std::memory_order_release);
  t_slot = slot;
  return slot;
}

void FlightRecorder::record(EventKind kind, std::uint64_t trace_id, const char* msg,
                            std::int64_t a, std::int64_t b) {
  FlightRecorder& rec = instance();
  if (!rec.enabled_.load(std::memory_order_relaxed)) return;
  ThreadSlot* slot = rec.slot_for_this_thread();
  if (slot == nullptr) return;
  const std::uint64_t head = slot->head.load(std::memory_order_relaxed);
  FlightEvent& e = slot->events[head % kEventsPerThread];
  e.t_us = steady_us() - rec.epoch_us_;
  e.trace_id = trace_id;
  e.kind = kind;
  sanitize_into(e.msg, sizeof(e.msg), msg);
  e.a = a;
  e.b = b;
  slot->head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::push_span(const char* name) {
  FlightRecorder& rec = instance();
  if (!rec.enabled_.load(std::memory_order_relaxed)) return;
  ThreadSlot* slot = rec.slot_for_this_thread();
  if (slot == nullptr) return;
  const std::uint32_t depth = slot->span_depth.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) {
    sanitize_into(slot->span_names[depth], kSpanNameLen, name);
  }
  // Depth grows past the table when spans nest absurdly deep; pops below
  // shrink it back and the overflow frames are simply not named.
  slot->span_depth.store(depth + 1, std::memory_order_release);
}

void FlightRecorder::pop_span() {
  FlightRecorder& rec = instance();
  if (!rec.enabled_.load(std::memory_order_relaxed)) return;
  ThreadSlot* slot = t_slot;  // a pop always follows this thread's push
  if (slot == nullptr) return;
  const std::uint32_t depth = slot->span_depth.load(std::memory_order_relaxed);
  if (depth > 0) slot->span_depth.store(depth - 1, std::memory_order_release);
}

void FlightRecorder::refresh_metrics_snapshot() {
  const std::string text = MetricsRegistry::global().render_prometheus();
  std::size_t n = 0;
  for (char raw : text) {
    if (n + 8 >= kMetricsSnapshotCap) break;  // worst-case escape is 6 bytes
    const unsigned char c = static_cast<unsigned char>(raw);
    if (c == '"' || c == '\\') {
      g_metrics_snapshot[n++] = '\\';
      g_metrics_snapshot[n++] = static_cast<char>(c);
    } else if (c == '\n') {
      g_metrics_snapshot[n++] = '\\';
      g_metrics_snapshot[n++] = 'n';
    } else if (c < 0x20 || c > 0x7e) {
      g_metrics_snapshot[n++] = '_';
    } else {
      g_metrics_snapshot[n++] = static_cast<char>(c);
    }
  }
  g_metrics_snapshot_len.store(n, std::memory_order_release);
}

std::size_t FlightRecorder::render_dump(char* buf, std::size_t cap,
                                        int signal_number) const {
  Appender out{buf, cap};
  out.str("{\"schema\":\"paintplace-postmortem-v1\",\"signal\":");
  out.i64(signal_number);
  out.str(",\"pid\":");
  out.u64(static_cast<std::uint64_t>(::getpid()));

  const BuildInfo& build = build_info();
  out.str(",\"build\":{\"git_sha\":\"");
  out.str(build.git_sha);  // configure-time constants: already plain ASCII
  out.str("\",\"compiler\":\"");
  // __VERSION__ can contain anything; escape the two JSON-breaking bytes.
  for (const char* p = build.compiler; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\' || c < 0x20 || c > 0x7e) {
      out.ch('_');
    } else {
      out.ch(static_cast<char>(c));
    }
  }
  out.str("\",\"native_kernel\":");
  out.str(build.native_kernel ? "true" : "false");
  out.str("},\"threads\":[");

  const std::uint32_t slot_count = g_slot_count.load(std::memory_order_acquire);
  bool first_thread = true;
  for (std::uint32_t s = 0; s < slot_count && s < kMaxThreads; ++s) {
    const ThreadSlot* slot = g_slots[s].load(std::memory_order_acquire);
    if (slot == nullptr) continue;
    if (!first_thread) out.ch(',');
    first_thread = false;

    out.str("{\"tid\":");
    out.u64(slot->os_tid);

    out.str(",\"span_stack\":[");
    std::uint32_t depth = slot->span_depth.load(std::memory_order_acquire);
    if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
    for (std::uint32_t d = 0; d < depth; ++d) {
      if (d > 0) out.ch(',');
      out.ch('"');
      out.str(slot->span_names[d]);
      out.ch('"');
    }
    out.str("],\"events\":[");

    const std::uint64_t head = slot->head.load(std::memory_order_acquire);
    const std::uint64_t start = head > kEventsPerThread ? head - kEventsPerThread : 0;
    for (std::uint64_t i = start; i < head; ++i) {
      const FlightEvent& e = slot->events[i % kEventsPerThread];
      if (i != start) out.ch(',');
      out.str("{\"t_us\":");
      out.u64(e.t_us);
      out.str(",\"kind\":\"");
      out.str(to_string(e.kind));
      out.str("\",\"trace\":");
      out.u64(e.trace_id);
      out.str(",\"msg\":\"");
      out.str(e.msg);  // sanitized at record time
      out.str("\",\"a\":");
      out.i64(e.a);
      out.str(",\"b\":");
      out.i64(e.b);
      out.ch('}');
    }
    out.str("]}");
  }

  out.str("],\"metrics\":\"");
  out.raw(g_metrics_snapshot, g_metrics_snapshot_len.load(std::memory_order_acquire));
  out.str("\"}\n");
  return out.len;
}

bool FlightRecorder::dump(const std::string& path, int signal_number) {
  const std::size_t n = render_dump(g_dump_buf, kDumpBufCap, signal_number);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, g_dump_buf + off, n - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
  return off == n;
}

std::size_t FlightRecorder::recorded() const {
  std::size_t total = 0;
  const std::uint32_t slot_count = g_slot_count.load(std::memory_order_acquire);
  for (std::uint32_t s = 0; s < slot_count && s < kMaxThreads; ++s) {
    const ThreadSlot* slot = g_slots[s].load(std::memory_order_acquire);
    if (slot == nullptr) continue;
    const std::uint64_t head = slot->head.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(head < kEventsPerThread ? head : kEventsPerThread);
  }
  return total;
}

void FlightRecorder::clear() {
  const std::uint32_t slot_count = g_slot_count.load(std::memory_order_acquire);
  for (std::uint32_t s = 0; s < slot_count && s < kMaxThreads; ++s) {
    ThreadSlot* slot = g_slots[s].load(std::memory_order_acquire);
    if (slot == nullptr) continue;
    slot->head.store(0, std::memory_order_release);
    slot->span_depth.store(0, std::memory_order_release);
  }
}

}  // namespace paintplace::obs
