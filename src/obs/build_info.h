// paintplace::obs — process identity for metrics and health reporting.
//
// Answers "exactly what is running?": the git sha the binary was configured
// from, the compiler that built it, whether the cpu_opt micro-kernel got
// -march=native, plus process uptime. Exposed two ways:
//   * register_process_metrics() publishes a `build_info{...} 1` info
//     metric and an `uptime_seconds` callback gauge into a MetricsRegistry
//     (every serving/bench entry point calls it at startup);
//   * the PPN1 health frame (net/wire.h HealthInfo) carries the same fields
//     to remote probes (`forecast_client --health`).
#pragma once

#include <string>

#include "obs/metrics_registry.h"

namespace paintplace::obs {

struct BuildInfo {
  const char* git_sha;    ///< short sha at configure time ("unknown" outside git)
  const char* compiler;   ///< __VERSION__ of the building compiler
  bool native_kernel;     ///< cpu_opt kernel compiled with -march=native
};

const BuildInfo& build_info();

/// Seconds since the process first touched this module (register it early
/// in main for an honest number).
double process_uptime_seconds();

/// Publishes `build_info` (git sha, compiler, native-kernel flag, plus the
/// currently active compute backend) and `uptime_seconds` into `registry`.
/// Idempotent; call again after a backend change to refresh the label.
void register_process_metrics(const std::string& backend,
                              MetricsRegistry& registry = MetricsRegistry::global());

}  // namespace paintplace::obs
