#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace paintplace::obs {
namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Renders a JSON string literal (with quotes) into `out`.
void append_json_string(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

/// key=value text needs quoting only when the value has spaces/quotes/empties.
bool needs_quotes(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

LogLevel log_level_from_string(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

// ---------------------------------------------------------------------------
// LogLine

LogLine::LogLine(Log* log, LogLevel level, const char* subsystem, const char* event)
    : log_(log), level_(level), subsystem_(subsystem), event_(event) {
  live_ = log_ != nullptr && log_->enabled(level);
}

LogLine::LogLine(LogLine&& other) noexcept
    : log_(other.log_),
      live_(other.live_),
      level_(other.level_),
      subsystem_(other.subsystem_),
      event_(other.event_),
      fields_(std::move(other.fields_)) {
  other.live_ = false;
  other.log_ = nullptr;
}

LogLine::~LogLine() {
  if (live_ && log_ != nullptr) log_->emit(*this);
}

LogLine& LogLine::kv(const char* key, std::int64_t value) {
  if (!live_) return *this;
  const std::string text = std::to_string(value);
  fields_.push_back({key, text, text});
  return *this;
}

LogLine& LogLine::kv(const char* key, std::uint64_t value) {
  if (!live_) return *this;
  const std::string text = std::to_string(value);
  fields_.push_back({key, text, text});
  return *this;
}

LogLine& LogLine::kv(const char* key, double value) {
  if (!live_) return *this;
  const std::string text = format_double(value);
  fields_.push_back({key, text, text});
  return *this;
}

LogLine& LogLine::kv(const char* key, bool value) {
  if (!live_) return *this;
  const char* text = value ? "true" : "false";
  fields_.push_back({key, text, text});
  return *this;
}

LogLine& LogLine::kv(const char* key, const char* value) {
  if (!live_) return *this;
  std::string json;
  append_json_string(json, value != nullptr ? value : "");
  fields_.push_back({key, value != nullptr ? value : "", std::move(json)});
  return *this;
}

LogLine& LogLine::kv(const char* key, const std::string& value) {
  return kv(key, value.c_str());
}

// ---------------------------------------------------------------------------
// Log

Log& Log::instance() {
  static Log* log = [] {
    auto* l = new Log();
    LogConfig config;
    if (const char* level = std::getenv("PAINTPLACE_LOG_LEVEL")) {
      config.min_level = log_level_from_string(level);
    }
    if (const char* format = std::getenv("PAINTPLACE_LOG_FORMAT")) {
      if (std::strcmp(format, "json") == 0) config.format = LogFormat::kJson;
    }
    l->configure(config);
    return l;
  }();
  return *log;
}

Log::Log() {
  auto& registry = MetricsRegistry::global();
  emitted_counter_ = &registry.counter(
      "obs_log_emitted_total", "Structured log lines written to the sink");
  suppressed_counter_ = &registry.counter(
      "obs_log_suppressed_total", "Structured log lines dropped by the rate limiter");
}

void Log::configure(const LogConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  min_level_.store(static_cast<std::uint8_t>(config.min_level), std::memory_order_relaxed);
}

LogConfig Log::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

void Log::set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

std::uint64_t Log::emitted() const { return emitted_.load(std::memory_order_relaxed); }
std::uint64_t Log::suppressed() const { return suppressed_.load(std::memory_order_relaxed); }

void Log::reset_rate_limits() {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.clear();
}

void Log::emit(const LogLine& line) {
  std::string rendered;
  std::uint64_t drained_suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);

    if (config_.rate_limit_per_key > 0) {
      std::string key(to_string(line.level_));
      key.push_back(':');
      key += line.subsystem_;
      key.push_back(':');
      key += line.event_;
      KeyWindow& window = windows_[key];
      const double now = now_s();
      if (now - window.window_start_s >= config_.rate_window_s) {
        window.window_start_s = now;
        window.in_window = 0;
        drained_suppressed = window.suppressed;
        window.suppressed = 0;
      }
      if (window.in_window >= config_.rate_limit_per_key) {
        ++window.suppressed;
        suppressed_.fetch_add(1, std::memory_order_relaxed);
        suppressed_counter_->fetch_add(1);
        return;
      }
      ++window.in_window;
    }

    rendered.reserve(128);
    if (config_.format == LogFormat::kJson) {
      rendered += "{\"ts_ms\":";
      rendered += std::to_string(wall_ms());
      rendered += ",\"level\":\"";
      rendered += to_string(line.level_);
      rendered += "\",\"subsystem\":";
      append_json_string(rendered, line.subsystem_);
      rendered += ",\"event\":";
      append_json_string(rendered, line.event_);
      for (const LogLine::Field& f : line.fields_) {
        rendered.push_back(',');
        append_json_string(rendered, f.key.c_str());
        rendered.push_back(':');
        rendered += f.json_value;
      }
      if (drained_suppressed > 0) {
        rendered += ",\"suppressed\":";
        rendered += std::to_string(drained_suppressed);
      }
      rendered.push_back('}');
    } else {
      char ts[32];
      std::snprintf(ts, sizeof(ts), "%.3f", now_s());
      rendered += ts;
      rendered.push_back(' ');
      rendered += to_string(line.level_);
      rendered.push_back(' ');
      rendered += line.subsystem_;
      rendered.push_back('.');
      rendered += line.event_;
      for (const LogLine::Field& f : line.fields_) {
        rendered.push_back(' ');
        rendered += f.key;
        rendered.push_back('=');
        if (needs_quotes(f.text_value)) {
          rendered += f.json_value;  // JSON literal doubles as a quoted form
        } else {
          rendered += f.text_value;
        }
      }
      if (drained_suppressed > 0) {
        rendered += " suppressed=";
        rendered += std::to_string(drained_suppressed);
      }
    }

    emitted_.fetch_add(1, std::memory_order_relaxed);
    emitted_counter_->fetch_add(1);

    // Mirror the line into the flight recorder so a post-mortem shows the
    // last log activity per thread. msg carries "subsystem.event"; `a` the
    // level. (Recorded inside the lock so ring order matches sink order on
    // one thread; the ring write itself is lock-free.)
    FlightRecorder::record(EventKind::kLog, 0,
                           (std::string(line.subsystem_) + "." + line.event_).c_str(),
                           static_cast<std::int64_t>(line.level_), 0);

    if (sink_) {
      sink_(rendered);
      return;
    }
  }
  rendered.push_back('\n');
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace paintplace::obs
