#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/sampler.h"

namespace paintplace::obs {

namespace detail {
std::atomic<std::uint8_t> g_span_mask{0};

void set_forensics_spans(bool on) {
  if (on) {
    g_span_mask.fetch_or(kSpanMaskForensics, std::memory_order_relaxed);
  } else {
    g_span_mask.fetch_and(static_cast<std::uint8_t>(~kSpanMaskForensics),
                          std::memory_order_relaxed);
  }
}
}  // namespace detail

namespace {

void copy_str(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  for (; i + 1 < cap && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

thread_local std::uint64_t t_current_trace_id = 0;

}  // namespace

// ---- Ring buffers -----------------------------------------------------------

/// One thread's fixed-capacity event ring. The mutex is per-ring and only
/// ever contended by dump/clear (the owning thread is the sole writer), so
/// record() is effectively an uncontended lock plus a struct copy. Rings of
/// exited threads return to a freelist and are re-issued to new threads —
/// thread-per-connection servers churn threads, and tracing must not grow
/// memory per connection. A reused ring keeps its chrome tid, so one tid
/// row can show several (non-overlapping-in-time) OS threads.
struct Tracer::ThreadRing {
  explicit ThreadRing(int tid_) : tid(tid_) { events.resize(Tracer::kRingCapacity); }

  int tid;
  std::mutex mu;
  std::vector<SpanEvent> events;
  std::size_t size = 0;   ///< valid events (<= capacity)
  std::size_t head = 0;   ///< next write slot
  std::uint64_t overwritten = 0;

  void record(const SpanEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    events[head] = event;
    head = (head + 1) % events.size();
    if (size < events.size()) {
      size += 1;
    } else {
      overwritten += 1;
    }
  }
};

namespace {

/// Thread-local handle: claims a ring on first use, returns it to the
/// tracer's freelist when the thread exits.
struct ThreadRingHandleImpl {
  Tracer* tracer = nullptr;
  std::shared_ptr<Tracer::ThreadRing> ring;
  ~ThreadRingHandleImpl();
};

}  // namespace

struct ThreadRingHandle {
  static std::shared_ptr<Tracer::ThreadRing> claim(Tracer& tracer) {
    std::lock_guard<std::mutex> lock(tracer.rings_mu_);
    if (!tracer.free_rings_.empty()) {
      auto ring = tracer.free_rings_.back();
      tracer.free_rings_.pop_back();
      return ring;
    }
    auto ring = std::make_shared<Tracer::ThreadRing>(static_cast<int>(tracer.rings_.size()) + 1);
    tracer.rings_.push_back(ring);
    return ring;
  }

  static void release(Tracer& tracer, std::shared_ptr<Tracer::ThreadRing> ring) {
    std::lock_guard<std::mutex> lock(tracer.rings_mu_);
    tracer.free_rings_.push_back(std::move(ring));
  }
};

namespace {

ThreadRingHandleImpl::~ThreadRingHandleImpl() {
  if (tracer != nullptr && ring != nullptr) {
    ThreadRingHandle::release(*tracer, std::move(ring));
  }
}

}  // namespace

Tracer::ThreadRing& Tracer::ring_for_this_thread() {
  return *ring_ptr_for_this_thread();
}

std::shared_ptr<Tracer::ThreadRing> Tracer::ring_ptr_for_this_thread() {
  thread_local ThreadRingHandleImpl handle;
  if (handle.ring == nullptr) {
    handle.tracer = this;
    handle.ring = ThreadRingHandle::claim(*this);
  }
  return handle.ring;
}

// ---- Tracer -----------------------------------------------------------------

Tracer::Tracer()
    : sampler_(std::make_unique<Sampler>(
          [](const Sampler::Ring& ring, const SpanEvent& event) { ring->record(event); })),
      epoch_(std::chrono::steady_clock::now()) {
  if (const char* path = std::getenv("PAINTPLACE_TRACE"); path != nullptr && path[0] != '\0') {
    dump_path_ = path;
    enable();
  }
  if (const char* every = std::getenv("PAINTPLACE_TRACE_SAMPLE");
      every != nullptr && every[0] != '\0') {
    SamplerConfig cfg;
    cfg.sample_every = std::strtoull(every, nullptr, 10);
    if (cfg.sample_every == 0) cfg.sample_every = 1;
    if (const char* slow = std::getenv("PAINTPLACE_TRACE_SLOW_MS");
        slow != nullptr && slow[0] != '\0') {
      cfg.slow_threshold_s = std::atof(slow) * 1e-3;
    }
    sampler_->configure(cfg);
  }
}

Tracer::~Tracer() = default;

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::configure(const std::string& dump_path) {
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    dump_path_ = dump_path;
  }
  enable();
}

bool Tracer::dump_configured() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    path = dump_path_;
  }
  if (path.empty()) return false;
  return dump_json(path);
}

void Tracer::record(const SpanEvent& event) {
  const std::shared_ptr<ThreadRing> ring = ring_ptr_for_this_thread();
  // Request-tied spans route through the tail sampler while it is active:
  // buffered provisionally, committed to this same ring (or dropped) when
  // the request finishes. Untied spans and head-sampled requests record
  // directly, so non-request instrumentation is never lost.
  if (event.trace_id != 0 && sampler_->active() && sampler_->offer(event, ring)) {
    return;
  }
  ring->record(event);
}

std::string Tracer::dump_json() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[128];
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    // Oldest-first: with a full ring, `head` is also the oldest slot.
    const std::size_t capacity = ring->events.size();
    const std::size_t start = ring->size < capacity ? 0 : ring->head;
    for (std::size_t i = 0; i < ring->size; ++i) {
      const SpanEvent& ev = ring->events[(start + i) % capacity];
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\":\"";
      json_escape_into(out, ev.name);
      out += "\",\"cat\":\"";
      json_escape_into(out, ev.category);
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%llu,\"dur\":%llu,\"args\":{",
                    ring->tid, static_cast<unsigned long long>(ev.start_us),
                    static_cast<unsigned long long>(ev.dur_us));
      out += buf;
      bool first_arg = true;
      if (ev.trace_id != 0) {
        std::snprintf(buf, sizeof(buf), "\"trace\":%llu",
                      static_cast<unsigned long long>(ev.trace_id));
        out += buf;
        first_arg = false;
      }
      for (int a = 0; a < ev.num_args; ++a) {
        const TraceArg& arg = ev.args[a];
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        json_escape_into(out, arg.key);
        out += "\":";
        switch (arg.kind) {
          case TraceArg::Kind::kInt:
            out += std::to_string(arg.i);
            break;
          case TraceArg::Kind::kDouble:
            std::snprintf(buf, sizeof(buf), "%.6g", arg.d);
            out += std::isfinite(arg.d) ? buf : "null";
            break;
          case TraceArg::Kind::kString:
            out += "\"";
            json_escape_into(out, arg.s);
            out += "\"";
            break;
        }
      }
      out += "}}";
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

bool Tracer::dump_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    Log::instance().error("obs", "trace_write_failed").kv("path", path);
    return false;
  }
  const std::string body = dump_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->size = 0;
    ring->head = 0;
    ring->overwritten = 0;
  }
}

std::uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->overwritten;
  }
  return total;
}

std::size_t Tracer::recorded() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::size_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->size;
  }
  return total;
}

// ---- TraceContext -----------------------------------------------------------

std::uint64_t TraceContext::current() { return t_current_trace_id; }

void TraceContext::set_current(std::uint64_t id) { t_current_trace_id = id; }

std::uint64_t TraceContext::next_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceId::ScopedTraceId(std::uint64_t id) : prev_(t_current_trace_id) {
  t_current_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { t_current_trace_id = prev_; }

// ---- Span -------------------------------------------------------------------

void Span::start(const char* name, const char* category, std::uint8_t mask) {
  // The name is copied into the inline buffer for *either* mode: the
  // profiler's live stack points at event_.name, which must outlive the
  // caller's (possibly temporary) string.
  copy_str(event_.name, sizeof(event_.name), name);
  if ((mask & detail::kSpanMaskTrace) != 0) {
    active_ = true;
    copy_str(event_.category, sizeof(event_.category), category);
    event_.trace_id = t_current_trace_id;
    start_us_ = Tracer::instance().now_us();
  }
  if ((mask & detail::kSpanMaskProfile) != 0) {
    profiled_ = true;
    Profiler::instance().push(event_.name);
  }
  if ((mask & detail::kSpanMaskForensics) != 0) {
    forensic_ = true;
    FlightRecorder::push_span(event_.name);
  }
}

Span::Span(const char* name, const char* category) {
  const std::uint8_t mask = detail::g_span_mask.load(std::memory_order_relaxed);
  if (mask == 0) return;
  start(name, category, mask);
}

Span::Span(const std::string& name, const char* category) {
  const std::uint8_t mask = detail::g_span_mask.load(std::memory_order_relaxed);
  if (mask == 0) return;
  start(name.c_str(), category, mask);
}

Span::~Span() {
  if (forensic_) FlightRecorder::pop_span();
  if (profiled_) Profiler::instance().pop();
  if (!active_) return;
  Tracer& tracer = Tracer::instance();
  event_.start_us = start_us_;
  event_.dur_us = tracer.now_us() - start_us_;
  if (flops_ > 0.0) {
    const double seconds = static_cast<double>(event_.dur_us) * 1e-6;
    arg("gflop_per_s", seconds > 0.0 ? flops_ / seconds * 1e-9
                                     : 0.0);
  }
  tracer.record(event_);
}

void Span::arg(const char* key, std::int64_t value) {
  if (!active_ || event_.num_args >= SpanEvent::kMaxArgs) return;
  TraceArg& a = event_.args[event_.num_args++];
  a.key = key;
  a.kind = TraceArg::Kind::kInt;
  a.i = value;
}

void Span::arg(const char* key, double value) {
  if (!active_ || event_.num_args >= SpanEvent::kMaxArgs) return;
  TraceArg& a = event_.args[event_.num_args++];
  a.key = key;
  a.kind = TraceArg::Kind::kDouble;
  a.d = value;
}

void Span::arg(const char* key, const char* value) {
  if (!active_ || event_.num_args >= SpanEvent::kMaxArgs) return;
  TraceArg& a = event_.args[event_.num_args++];
  a.key = key;
  a.kind = TraceArg::Kind::kString;
  copy_str(a.s, sizeof(a.s), value);
}

}  // namespace paintplace::obs
