#include "obs/watchdog.h"

#include <algorithm>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace paintplace::obs {

Watchdog::Watchdog(MetricsRegistry& registry)
    : epoch_(std::chrono::steady_clock::now()) {
  // Gauges exist from construction so the health frame and scrapes always
  // have them, reading 0 until a stall actually happens.
  stalls_gauge_ = &registry.gauge(
      "obs_watchdog_stalls", "Stall reports filed by the request watchdog");
  oldest_gauge_ = &registry.gauge(
      "obs_watchdog_oldest_request_ms",
      "Age of the oldest in-flight request at the last watchdog tick");
}

Watchdog::~Watchdog() { stop(); }

double Watchdog::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Watchdog::configure(const WatchdogConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  enabled_.store(config.stall_ms > 0.0, std::memory_order_relaxed);
}

void Watchdog::set_depths_fn(DepthsFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  depths_fn_ = std::move(fn);
}

void Watchdog::start() {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { run(); });
}

void Watchdog::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::run() {
  while (running_.load(std::memory_order_relaxed)) {
    tick(now_s());
    std::unique_lock<std::mutex> lock(stop_mu_);
    const double period = [this] {
      std::lock_guard<std::mutex> cfg_lock(mu_);
      return config_.tick_period_s;
    }();
    stop_cv_.wait_for(lock, std::chrono::duration<double>(period), [this] {
      return !running_.load(std::memory_order_relaxed);
    });
  }
}

void Watchdog::track(std::uint64_t trace_id, int replica) {
  if (!enabled_.load(std::memory_order_relaxed) || trace_id == 0) return;
  const double now = now_s();
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_[trace_id] = InFlight{now, replica, false};
}

void Watchdog::complete(std::uint64_t trace_id) {
  if (!enabled_.load(std::memory_order_relaxed) || trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(trace_id);
}

double Watchdog::oldest_request_ms() const { return oldest_gauge_->value(); }

std::size_t Watchdog::tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.size();
}

void Watchdog::tick(double now) {
  struct Stall {
    std::uint64_t trace_id;
    double age_ms;
    int replica;
  };
  std::vector<Stall> stalls;
  std::vector<std::int64_t> depths;
  double oldest_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) return;
    for (auto& [trace_id, req] : in_flight_) {
      const double age_ms = (now - req.admitted_s) * 1e3;
      oldest_ms = std::max(oldest_ms, age_ms);
      if (age_ms > config_.stall_ms && !req.reported) {
        req.reported = true;
        stalls.push_back({trace_id, age_ms, req.replica});
      }
    }
    if (depths_fn_) depths = depths_fn_();
  }
  oldest_gauge_->set(oldest_ms);

  for (const Stall& s : stalls) {
    const std::uint64_t total =
        stalls_.fetch_add(1, std::memory_order_relaxed) + 1;
    stalls_gauge_->set(static_cast<double>(total));

    std::string depth_list;
    for (std::size_t i = 0; i < depths.size(); ++i) {
      if (i > 0) depth_list.push_back(',');
      depth_list += std::to_string(depths[i]);
    }
    Log::instance()
        .warn("watchdog", "stall")
        .kv("trace", s.trace_id)
        .kv("age_ms", s.age_ms)
        .kv("stall_ms", [this] {
          std::lock_guard<std::mutex> lock(mu_);
          return config_.stall_ms;
        }())
        .kv("replica", s.replica)
        .kv("in_flight", static_cast<std::int64_t>(tracked()))
        .kv("queue_depths", depth_list);

    FlightRecorder::record(EventKind::kStall, s.trace_id, "request stalled",
                           static_cast<std::int64_t>(s.age_ms), s.replica);

    // Whatever the head-sampling decision was, the stuck request's spans
    // must reach the trace: commit-on-arrival through the tail path.
    Tracer::instance().sampler().force_retain(s.trace_id);
  }

  // A crash dump embeds the last snapshot taken here — at most one tick
  // stale.
  if (FlightRecorder::instance().enabled()) {
    FlightRecorder::instance().refresh_metrics_snapshot();
  }
}

}  // namespace paintplace::obs
