// paintplace::obs — span-stack sampling profiler.
//
// A statistical profiler that reuses the tracing instrumentation instead of
// signals or frame pointers: while profiling is on, every live Span pushes
// its name onto a per-thread stack at construction and pops it at
// destruction, and a sampler thread periodically walks each thread's stack
// and folds it into `root;child;grandchild -> count` aggregates. Because the
// spans are the semantic units of the serving path (frame decode, pool
// dispatch, batch run, per-layer forwards, per-GEMM kernels), the folded
// stacks read like a flame graph of the *request pipeline*, not of libc
// internals — and the whole thing works on any platform the tracer does.
//
// Cost model matches Span tracing: when the profiler is off (the default) a
// Span construction still costs exactly one relaxed atomic load — the same
// load tracing uses, one combined flags word (see obs::detail::g_span_mask
// in trace.h) — and bench_serve's overhead guard covers both. When on, a
// push/pop is an uncontended per-thread mutex plus a pointer store.
//
// Export: collapsed() emits standard collapsed-stack text, one
// "a;b;c count" per line — feed it to inferno/flamegraph.pl or paste into
// speedscope.app — and top_k() powers the plain-text table that
// `forecast_serve --profile` and bench_serve print.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace paintplace::obs {

class Profiler {
 public:
  /// Frames kept per thread stack; deeper nesting still balances push/pop
  /// but the excess frames are not recorded.
  static constexpr int kMaxDepth = 64;

  static Profiler& instance();

  bool enabled() const;

  /// Starts the background sampler at the given period and turns on the
  /// span push/pop hook. Idempotent while running.
  void start(std::chrono::microseconds period = std::chrono::milliseconds(2));
  /// Turns the hook off and joins the sampler thread. Aggregates survive
  /// until clear() so they can be exported after the run.
  void stop();

  /// One sweep over every thread's live stack (the sampler thread's body;
  /// public so tests and benches can sample deterministically).
  void sample_once();

  void clear();

  /// Folded-stack samples collected (sum over aggregate counts).
  std::uint64_t samples() const;

  /// Collapsed-stack text: "root;child;leaf count\n" per distinct stack.
  std::string collapsed() const;
  bool write_collapsed(const std::string& path) const;

  /// The k hottest folded stacks, by sample count descending.
  std::vector<std::pair<std::string, std::uint64_t>> top_k(std::size_t k) const;

  /// Span hooks — called from Span's constructor/destructor when the
  /// profile bit of the span mask is set. `name` must stay valid until the
  /// matching pop (Span passes its inline event buffer).
  void push(const char* name);
  void pop();

  struct ThreadStack;  ///< per-thread live-span stack (defined in profiler.cpp)

 private:
  Profiler() = default;
  ThreadStack& stack_for_this_thread();

  mutable std::mutex stacks_mu_;
  std::vector<std::shared_ptr<ThreadStack>> stacks_;
  std::vector<std::shared_ptr<ThreadStack>> free_stacks_;  ///< from exited threads

  mutable std::mutex agg_mu_;
  std::map<std::string, std::uint64_t> aggregate_;
  std::uint64_t samples_ = 0;

  std::atomic<bool> running_{false};
  std::thread sampler_;

  friend struct ThreadStackHandle;
};

}  // namespace paintplace::obs
