#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>

#include "obs/log.h"
#include "obs/trace.h"

namespace paintplace::obs {

// ---- Per-thread stacks ------------------------------------------------------

/// One thread's live-span stack. The mutex is per-stack and only contended
/// by the sampler sweep (the owning thread is the sole pusher/popper), so a
/// push is effectively an uncontended lock plus a pointer store. The frame
/// pointers reference Span-owned inline name buffers: a Span pops (under
/// this mutex) before its buffer dies, so the sampler — which reads under
/// the same mutex — can never see a dangling frame. Stacks of exited
/// threads return to a freelist, mirroring the tracer's ring reuse.
struct Profiler::ThreadStack {
  std::mutex mu;
  const char* frames[Profiler::kMaxDepth] = {nullptr};
  int depth = 0;  ///< may exceed kMaxDepth; only the first kMaxDepth record
};

namespace {

struct ThreadStackHandleImpl {
  Profiler* profiler = nullptr;
  std::shared_ptr<Profiler::ThreadStack> stack;
  ~ThreadStackHandleImpl();
};

}  // namespace

struct ThreadStackHandle {
  static std::shared_ptr<Profiler::ThreadStack> claim(Profiler& p) {
    std::lock_guard<std::mutex> lock(p.stacks_mu_);
    if (!p.free_stacks_.empty()) {
      auto stack = p.free_stacks_.back();
      p.free_stacks_.pop_back();
      return stack;
    }
    auto stack = std::make_shared<Profiler::ThreadStack>();
    p.stacks_.push_back(stack);
    return stack;
  }

  static void release(Profiler& p, std::shared_ptr<Profiler::ThreadStack> stack) {
    std::lock_guard<std::mutex> lock(p.stacks_mu_);
    p.free_stacks_.push_back(std::move(stack));
  }
};

namespace {

ThreadStackHandleImpl::~ThreadStackHandleImpl() {
  if (profiler != nullptr && stack != nullptr) {
    ThreadStackHandle::release(*profiler, std::move(stack));
  }
}

}  // namespace

Profiler::ThreadStack& Profiler::stack_for_this_thread() {
  thread_local ThreadStackHandleImpl handle;
  if (handle.stack == nullptr) {
    handle.profiler = this;
    handle.stack = ThreadStackHandle::claim(*this);
  }
  return *handle.stack;
}

// ---- Profiler ---------------------------------------------------------------

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

bool Profiler::enabled() const {
  return (detail::g_span_mask.load(std::memory_order_relaxed) & detail::kSpanMaskProfile) != 0;
}

void Profiler::push(const char* name) {
  ThreadStack& stack = stack_for_this_thread();
  std::lock_guard<std::mutex> lock(stack.mu);
  if (stack.depth < kMaxDepth) stack.frames[stack.depth] = name;
  stack.depth += 1;
}

void Profiler::pop() {
  ThreadStack& stack = stack_for_this_thread();
  std::lock_guard<std::mutex> lock(stack.mu);
  if (stack.depth > 0) stack.depth -= 1;
}

void Profiler::start(std::chrono::microseconds period) {
  if (running_.exchange(true)) return;
  detail::g_span_mask.fetch_or(detail::kSpanMaskProfile, std::memory_order_relaxed);
  sampler_ = std::thread([this, period] {
    while (running_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(period);
      sample_once();
    }
  });
}

void Profiler::stop() {
  detail::g_span_mask.fetch_and(
      static_cast<std::uint8_t>(~detail::kSpanMaskProfile), std::memory_order_relaxed);
  if (!running_.exchange(false)) return;
  if (sampler_.joinable()) sampler_.join();
}

void Profiler::sample_once() {
  std::vector<std::shared_ptr<ThreadStack>> stacks;
  {
    std::lock_guard<std::mutex> lock(stacks_mu_);
    stacks = stacks_;
  }
  // Fold each non-idle stack outside the aggregate lock, then merge.
  std::vector<std::string> folded;
  for (const auto& stack : stacks) {
    std::lock_guard<std::mutex> lock(stack->mu);
    const int depth = std::min(stack->depth, kMaxDepth);
    if (depth == 0) continue;
    std::string key;
    for (int i = 0; i < depth; ++i) {
      if (i > 0) key += ';';
      key += stack->frames[i];
    }
    folded.push_back(std::move(key));
  }
  if (folded.empty()) return;
  std::lock_guard<std::mutex> lock(agg_mu_);
  for (auto& key : folded) {
    aggregate_[std::move(key)] += 1;
    samples_ += 1;
  }
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(agg_mu_);
  aggregate_.clear();
  samples_ = 0;
}

std::uint64_t Profiler::samples() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  return samples_;
}

std::string Profiler::collapsed() const {
  std::lock_guard<std::mutex> lock(agg_mu_);
  std::string out;
  for (const auto& [stack, count] : aggregate_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

bool Profiler::write_collapsed(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    Log::instance().error("obs", "profile_write_failed").kv("path", path);
    return false;
  }
  const std::string body = collapsed();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::vector<std::pair<std::string, std::uint64_t>> Profiler::top_k(std::size_t k) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
    out.assign(aggregate_.begin(), aggregate_.end());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace paintplace::obs
