// paintplace::obs — unified metrics registry.
//
// One process-wide home for every counter, gauge, and histogram the stack
// emits, replacing the per-subsystem silos (net::Metrics used to own its
// atomics privately; it is now a typed view over this registry — see
// net/metrics.h). Metrics are get-or-create by name: the first caller
// creates the instrument, later callers bind the same one, so the serving
// path, the training loop, and the GEMM wrappers all land in a single
// exposition.
//
// Everything is cheap enough for hot paths: Counter::fetch_add is one
// relaxed atomic increment, Histogram::record is two. Name lookup takes a
// mutex, so call sites cache the returned reference (instrument addresses
// are stable for the registry's lifetime) instead of re-looking-up per
// event.
//
// Exposition is Prometheus text format: `# TYPE` headers, `name value`
// samples, histograms as cumulative `_bucket{le="..."}` series plus `_sum`
// and `_count`. A flat `grep '^name '` keeps working — samples are still
// one `name value` per line.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.h"

namespace paintplace::obs {

/// Monotonic counter. The atomic-compatible method names (fetch_add, load,
/// store) keep call sites that used to hold a raw std::atomic unchanged.
class Counter {
 public:
  void fetch_add(std::uint64_t n = 1,
                 std::memory_order order = std::memory_order_relaxed) {
    value_.fetch_add(n, order);
  }
  std::uint64_t load(std::memory_order order = std::memory_order_relaxed) const {
    return value_.load(order);
  }
  void store(std::uint64_t v,
             std::memory_order order = std::memory_order_relaxed) {
    value_.store(v, order);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, versions, rates).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced histogram over positive values, factored out of the former
/// net::LatencyHistogram and kept bit-compatible with it: bucket b covers
/// [2^b, 2^(b+1)) millionths of a unit — for latencies in seconds that is
/// 1µs up to ~33.5s, with bucket 0 absorbing anything smaller and the last
/// bucket absorbing overflow. record() never blocks; quantiles interpolate
/// linearly inside the winning bucket at read time.
class Histogram {
 public:
  static constexpr int kBuckets = 26;

  void record(double value);
  /// Records `value` and attaches `trace_id` as the bucket's exemplar — the
  /// most recent retained trace that landed in that latency band. 0 leaves
  /// the exemplar untouched. Exposition renders exemplars as `# EXEMPLAR`
  /// comment lines so an operator can jump from a histogram bucket straight
  /// to a concrete trace (OpenMetrics-style, comment-encoded to stay plain
  /// Prometheus-text compatible).
  void record(double value, std::uint64_t trace_id);
  /// Exemplar trace id last attached to bucket b (0 = none).
  std::uint64_t exemplar_trace(int b) const {
    return exemplar_trace_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }
  /// The value that carried that exemplar, in recorded units.
  double exemplar_value(int b) const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of recorded values (exact to one millionth of a unit per sample).
  double sum() const;
  /// Kept for latency-histogram call sites that read `total_seconds()`.
  double total_seconds() const { return sum(); }

  /// Value below which fraction `q` (0..1] of samples fall, interpolated
  /// inside the winning bucket. 0 with no samples.
  double quantile(double q) const;

  /// The same interpolation over a raw bucket-count array — for quantiles
  /// of *derived* distributions that were never a live Histogram: windowed
  /// deltas (SloMonitor) and cross-process aggregation (forecast_client
  /// ships bucket counts over a pipe).
  static double quantile_of(const std::array<std::uint64_t, kBuckets>& buckets, double q);

  void reset();

  std::uint64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket b in recorded units (2^(b+1) millionths).
  static double bucket_upper(int b);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplar_trace_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplar_millionths_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_millionths_{0};
};

/// Get-or-create registry of named instruments. Names follow Prometheus
/// conventions (snake_case, `_total` for counters, `_seconds` for latency
/// histograms). Registering one name as two different instrument kinds
/// throws CheckError.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem defaults to.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  /// Prometheus-style info metric: rendered as `name{labels} 1`. `labels`
  /// is the pre-formatted label body (`key="value",key2="value2"`).
  /// Re-registering the same name replaces the labels — idempotent process
  /// identity (build_info) rather than a time series.
  void set_info(const std::string& name, const std::string& labels,
                const std::string& help = "");

  /// Gauge whose value is computed at exposition time (uptime, derived
  /// rates). The callback must be thread-safe, non-throwing, and must not
  /// touch the registry (it runs under the registry lock).
  void gauge_callback(const std::string& name, std::function<double()> fn,
                      const std::string& help = "");

  /// Reads an instrument if it exists (SloMonitor polls by name without
  /// creating). nullptr / empty when the name is absent or a different kind.
  const Counter* find_counter(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Prometheus text exposition of every instrument, in name order. `keep`
  /// (when set) filters by name — the net front-end uses it to exclude the
  /// counters its legacy flat block already lists.
  std::string render_prometheus(
      const std::function<bool(const std::string&)>& keep = nullptr) const;

  /// Registered instrument names, in name order (tests, debugging).
  std::vector<std::string> names() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kInfo, kCallbackGauge };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::string info_labels;        ///< kInfo
    std::function<double()> callback;  ///< kCallbackGauge
  };

  Entry& entry_of(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // ordered — exposition is sorted
};

}  // namespace paintplace::obs
