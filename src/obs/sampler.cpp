#include "obs/sampler.h"

#include "common/check.h"
#include "obs/metrics_registry.h"

namespace paintplace::obs {

namespace {

/// splitmix64 — a cheap, well-mixed hash of (seed, request index) so head
/// sampling is deterministic per seed but uncorrelated with request order
/// (a plain modulo would strobe against periodic workloads).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Sampler::Sampler(CommitFn commit) : commit_(std::move(commit)) {
  auto& reg = MetricsRegistry::global();
  sampled_ = &reg.counter("obs_trace_sampled_total",
                          "requests head-sampled into the trace (1-in-N)");
  retained_slow_ = &reg.counter("obs_trace_retained_slow_total",
                                "requests tail-retained: latency over threshold");
  retained_error_ = &reg.counter("obs_trace_retained_error_total",
                                 "requests tail-retained: shed or error outcome");
  retained_stall_ = &reg.counter("obs_trace_retained_stall_total",
                                 "requests tail-retained: watchdog stall report");
  discarded_ = &reg.counter("obs_trace_discarded_total",
                            "requests whose buffered spans were discarded");
}

void Sampler::configure(const SamplerConfig& config) {
  PP_CHECK_MSG(config.sample_every >= 1, "trace sample_every must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  decisions_ = 0;
  pending_.clear();
  active_.store(true, std::memory_order_relaxed);
}

void Sampler::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_relaxed);
  pending_.clear();
}

SamplerConfig Sampler::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

void Sampler::begin(std::uint64_t trace_id) {
  if (!active() || trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  PendingRequest& req = pending_[trace_id];
  req.head_sampled =
      splitmix64(config_.seed ^ decisions_++) % config_.sample_every == 0;
  if (req.head_sampled) sampled_->fetch_add(1);
}

bool Sampler::offer(const SpanEvent& event, const Ring& ring) {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(event.trace_id);
  if (it == pending_.end() || it->second.head_sampled) return false;
  if (it->second.spans.size() < config_.max_buffered_spans) {
    it->second.spans.emplace_back(ring, event);
  }
  return true;
}

bool Sampler::finish(std::uint64_t trace_id, double latency_s, RequestOutcome outcome) {
  if (!active() || trace_id == 0) return true;  // recording live: id is in the trace
  PendingRequest req;
  bool retain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(trace_id);
    if (it == pending_.end()) return true;
    req = std::move(it->second);
    pending_.erase(it);
    if (req.head_sampled) return true;  // committed live; counted at begin()
    if (outcome != RequestOutcome::kOk) {
      retained_error_->fetch_add(1);
      retain = true;
    } else if (latency_s >= config_.slow_threshold_s) {
      retained_slow_->fetch_add(1);
      retain = true;
    } else {
      discarded_->fetch_add(1);
    }
  }
  // Commit outside the sampler lock: ring->record takes the ring's own
  // mutex, and holding both across many spans would stall the hot offer().
  if (retain) {
    for (const auto& [ring, event] : req.spans) commit_(ring, event);
  }
  return retain;
}

void Sampler::force_retain(std::uint64_t trace_id) {
  if (!active() || trace_id == 0) return;
  std::vector<std::pair<Ring, SpanEvent>> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(trace_id);
    if (it == pending_.end() || it->second.head_sampled) return;
    // Flip to head_sampled: spans still to come record live, and finish()
    // sees the request as already committed.
    it->second.head_sampled = true;
    spans = std::move(it->second.spans);
    it->second.spans.clear();
    retained_stall_->fetch_add(1);
  }
  for (const auto& [ring, event] : spans) commit_(ring, event);
}

void Sampler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  decisions_ = 0;
}

std::size_t Sampler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace paintplace::obs
