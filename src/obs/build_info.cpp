#include "obs/build_info.h"

#include <chrono>

#ifndef PAINTPLACE_GIT_SHA
#define PAINTPLACE_GIT_SHA "unknown"
#endif
#ifndef PAINTPLACE_NATIVE_KERNEL_ENABLED
#define PAINTPLACE_NATIVE_KERNEL_ENABLED 0
#endif

namespace paintplace::obs {

namespace {

std::chrono::steady_clock::time_point process_start() {
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return start;
}

std::string escape_label(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    if (*s == '\n') {
      out += "\\n";
      continue;
    }
    out += *s;
  }
  return out;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{PAINTPLACE_GIT_SHA, __VERSION__,
                              PAINTPLACE_NATIVE_KERNEL_ENABLED != 0};
  return info;
}

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - process_start())
      .count();
}

void register_process_metrics(const std::string& backend, MetricsRegistry& registry) {
  process_start();  // pin the uptime epoch no later than this call
  const BuildInfo& info = build_info();
  std::string labels = "git_sha=\"" + escape_label(info.git_sha) + "\",compiler=\"" +
                       escape_label(info.compiler) + "\",native_kernel=\"" +
                       (info.native_kernel ? "1" : "0") + "\",backend=\"" +
                       escape_label(backend.c_str()) + "\"";
  registry.set_info("build_info", labels, "what is running: sha, compiler, kernel, backend");
  registry.gauge_callback(
      "uptime_seconds", [] { return process_uptime_seconds(); },
      "seconds since process start");
}

}  // namespace paintplace::obs
