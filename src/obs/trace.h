// paintplace::obs — structured tracing with chrome://tracing export.
//
// The request path is instrumented with RAII Spans (frame decode, pool
// dispatch, batch coalescing, the model forward, every backend GEMM call).
// Tracing is compiled in but sampling-gated: when the tracer is disabled —
// the default — a Span construction is one relaxed atomic load and nothing
// else, cheap enough to leave in the hottest loops (bench_serve asserts the
// disabled-path cost stays under its overhead budget).
//
// When enabled, completed spans land in fixed-size per-thread ring buffers
// (no allocation, no shared lock on the record path beyond the ring's own
// uncontended mutex; the oldest events are overwritten on wraparound).
// Tracer::dump_json() walks every ring and writes a Chrome Trace Event
// Format file — load it at chrome://tracing or https://ui.perfetto.dev.
// Spans nest per thread by time containment; a request that hops threads
// (reader -> batch worker -> writer) is stitched by its trace id, which
// propagates through the thread-local TraceContext and is recorded as the
// "trace" arg on every span it touches.
//
// Enable via the PAINTPLACE_TRACE=path.json environment variable (dump on
// Tracer::dump_configured(), which forecast_serve and ForecastServer call
// on drain), ServeConfig::trace, or Tracer::instance().enable() in code.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace paintplace::obs {

namespace detail {
/// The one word every Span construction reads: bit 0 = tracing enabled
/// (Tracer), bit 1 = profiling enabled (Profiler), bit 2 = flight-recorder
/// span stacks (FlightRecorder — crash forensics). Folding every feature
/// into a single relaxed atomic load keeps the disabled-path cost of a Span
/// identical to the tracing-only design — bench_serve guards it.
inline constexpr std::uint8_t kSpanMaskTrace = 0x1;
inline constexpr std::uint8_t kSpanMaskProfile = 0x2;
inline constexpr std::uint8_t kSpanMaskForensics = 0x4;
extern std::atomic<std::uint8_t> g_span_mask;
/// Turns the forensics bit on (FlightRecorder::enable / install call this).
void set_forensics_spans(bool on);
}  // namespace detail

class Sampler;

/// One key/value annotation on a span. Keys are static strings (the call
/// sites own them); string values are truncated to fit the inline buffer.
struct TraceArg {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };
  const char* key = "";
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  char s[24] = {0};
};

/// A completed span, as stored in the ring buffer. Fixed-size so recording
/// is a memcpy-scale operation.
struct SpanEvent {
  static constexpr int kMaxArgs = 6;
  char name[48] = {0};
  char category[16] = {0};
  std::uint64_t start_us = 0;  ///< microseconds since tracer epoch
  std::uint64_t dur_us = 0;
  std::uint64_t trace_id = 0;  ///< 0 = not tied to a request
  int num_args = 0;
  TraceArg args[kMaxArgs];
};

class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 8192;  ///< events per thread

  /// Process-wide tracer. First call reads PAINTPLACE_TRACE: when set, the
  /// tracer starts enabled and remembers the value as the dump path — and
  /// PAINTPLACE_TRACE_SAMPLE / PAINTPLACE_TRACE_SLOW_MS, which configure
  /// the tail sampler (see sampler.h).
  static Tracer& instance();

  bool enabled() const {
    return (detail::g_span_mask.load(std::memory_order_relaxed) &
            detail::kSpanMaskTrace) != 0;
  }
  void enable() {
    detail::g_span_mask.fetch_or(detail::kSpanMaskTrace, std::memory_order_relaxed);
  }
  void disable() {
    detail::g_span_mask.fetch_and(
        static_cast<std::uint8_t>(~detail::kSpanMaskTrace), std::memory_order_relaxed);
  }

  /// The tail-based sampling policy (inactive by default: every recorded
  /// span lands in its ring). See sampler.h for the begin/offer/finish
  /// protocol the request front-end drives.
  Sampler& sampler() { return *sampler_; }

  /// Sets (and overrides) the dump path and enables tracing — the
  /// programmatic twin of PAINTPLACE_TRACE.
  void configure(const std::string& dump_path);
  const std::string& configured_path() const { return dump_path_; }
  /// Writes dump_json() to the configured path, if any. Returns true when a
  /// file was written. Idempotent — safe to call from several drain paths.
  bool dump_configured();

  /// Appends one completed event to the calling thread's ring.
  void record(const SpanEvent& event);

  /// Chrome Trace Event Format JSON of every ring's events.
  std::string dump_json() const;
  bool dump_json(const std::string& path) const;

  /// Drops all recorded events (tests).
  void clear();

  /// Events overwritten by ring wraparound since the last clear().
  std::uint64_t dropped() const;
  /// Events currently held across all rings.
  std::size_t recorded() const;

  struct ThreadRing;  ///< opaque per-thread ring (defined in trace.cpp)

 private:
  Tracer();
  ~Tracer();  // defined in trace.cpp (Sampler is incomplete here)
  ThreadRing& ring_for_this_thread();
  std::shared_ptr<ThreadRing> ring_ptr_for_this_thread();

  std::unique_ptr<Sampler> sampler_;
  std::string dump_path_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::vector<std::shared_ptr<ThreadRing>> free_rings_;  ///< from exited threads

  friend struct ThreadRingHandle;

 public:
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
};

/// Thread-local request correlation. The net reader assigns an id per
/// request frame; the batch worker adopts it around each request's share of
/// a batch; every Span snapshots the current id at construction.
class TraceContext {
 public:
  static std::uint64_t current();
  static std::uint64_t next_id();  ///< process-unique, never 0

 private:
  friend class ScopedTraceId;
  static void set_current(std::uint64_t id);
};

/// RAII adoption of a trace id (restores the previous one on destruction).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::uint64_t id);
  ~ScopedTraceId();

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span: times from construction to destruction and records into the
/// tracer's ring. When both tracing and profiling are disabled at
/// construction the span is inert — one relaxed atomic load, then no clock
/// reads, no string copies, no recording. With the profiler on, the span
/// additionally sits on its thread's live-span stack for the lifetime of
/// the scope (see profiler.h).
class Span {
 public:
  explicit Span(const char* name, const char* category = "app");
  /// Dynamic span names (per-layer instrumentation). The string is copied
  /// (truncated to the inline buffer) only when tracing is enabled.
  Span(const std::string& name, const char* category);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, std::int64_t value);
  void arg(const char* key, double value);
  void arg(const char* key, const char* value);

  /// Declares the span's floating-point work; on close a "gflop_per_s" arg
  /// is derived from it and the measured duration (the kernel roofline).
  void flops(double total_flops) { flops_ = total_flops; }

  bool active() const { return active_; }

 private:
  void start(const char* name, const char* category, std::uint8_t mask);

  bool active_ = false;    ///< tracing: record into the ring on destruction
  bool profiled_ = false;  ///< profiling: pushed onto the live-span stack
  bool forensic_ = false;  ///< forensics: pushed onto the flight-recorder stack
  double flops_ = 0.0;
  std::uint64_t start_us_ = 0;
  SpanEvent event_;
};

}  // namespace paintplace::obs
