// paintplace::obs — leveled, per-subsystem, rate-limited structured logging.
//
// Every operational message the stack emits goes through one process-wide
// Log: a line has a level, a subsystem ("net", "pool", "serve", "train",
// "watchdog", ...), an event name, and typed key/value fields. The sink
// renders either key=value text (the default — grep-friendly) or JSON
// lines (one object per line; `tools/check_log_schema.py` validates the
// schema in CI). This replaces the ad-hoc printf/cerr lines the servers
// and CLIs used to scatter: an operator tails ONE stream with ONE grammar,
// and an incident review can filter by subsystem/event instead of regexing
// prose.
//
// Rate limiting is per (level, subsystem, event) key: each key may emit at
// most `rate_limit_per_key` lines per `rate_window_s` window; excess lines
// are counted, not printed, and the first line of the next window reports
// how many were dropped (`suppressed=N`). Decisions are visible in
// MetricsRegistry::global():
//   obs_log_emitted_total      lines written to the sink
//   obs_log_suppressed_total   lines dropped by the rate limiter
//
// Cost model: a line below the minimum level is one relaxed atomic load at
// the `line()` call — field formatting happens only on live lines. Emission
// takes a mutex (logging is not a per-request hot path; the request path
// logs only on anomalies, which the rate limiter bounds anyway). Every
// emitted line is also recorded into the FlightRecorder's per-thread ring,
// so a post-mortem dump carries the last log lines per thread.
//
// Usage:
//   obs::Log::instance()
//       .line(obs::LogLevel::kInfo, "net", "listening")
//       .kv("port", port).kv("bind", addr);
// The line emits when the builder goes out of scope (end of statement).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace paintplace::obs {

class Counter;

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* to_string(LogLevel level);
/// Parses "debug"/"info"/"warn"/"error"; defaults to kInfo on junk.
LogLevel log_level_from_string(const std::string& name);

enum class LogFormat : std::uint8_t {
  kKeyValue = 0,  ///< ts level subsystem event k=v k="v" ...
  kJson = 1,      ///< {"ts_ms":...,"level":"...","subsystem":"...","event":"...",...}
};

struct LogConfig {
  LogLevel min_level = LogLevel::kInfo;
  LogFormat format = LogFormat::kKeyValue;
  /// Lines allowed per (level, subsystem, event) key per window; 0 disables
  /// rate limiting entirely.
  std::uint32_t rate_limit_per_key = 10;
  double rate_window_s = 1.0;
};

class Log;

/// One in-flight line. Fields append with kv(); the completed line emits on
/// destruction (or never, when the level was below the configured minimum —
/// then kv() is a no-op and nothing was formatted).
class LogLine {
 public:
  ~LogLine();

  LogLine(LogLine&& other) noexcept;
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine& operator=(LogLine&&) = delete;

  LogLine& kv(const char* key, std::int64_t value);
  LogLine& kv(const char* key, std::uint64_t value);
  LogLine& kv(const char* key, int value) { return kv(key, static_cast<std::int64_t>(value)); }
  LogLine& kv(const char* key, double value);
  LogLine& kv(const char* key, bool value);
  LogLine& kv(const char* key, const char* value);
  LogLine& kv(const char* key, const std::string& value);

  bool live() const { return live_; }

 private:
  friend class Log;
  LogLine(Log* log, LogLevel level, const char* subsystem, const char* event);

  struct Field {
    std::string key;
    std::string text_value;  ///< rendered for key=value output
    std::string json_value;  ///< rendered JSON literal
  };

  Log* log_ = nullptr;
  bool live_ = false;
  LogLevel level_ = LogLevel::kInfo;
  const char* subsystem_ = "";
  const char* event_ = "";
  std::vector<Field> fields_;
};

class Log {
 public:
  /// The process-wide logger. Starts at the built-in defaults, overridden
  /// by PAINTPLACE_LOG_LEVEL / PAINTPLACE_LOG_FORMAT ("kv"|"json") when set.
  static Log& instance();

  void configure(const LogConfig& config);
  LogConfig config() const;

  bool enabled(LogLevel level) const {
    return static_cast<std::uint8_t>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  /// Starts a structured line. `subsystem` and `event` must be static
  /// strings (call sites own them). Below the minimum level the returned
  /// builder is inert.
  LogLine line(LogLevel level, const char* subsystem, const char* event) {
    return LogLine(this, level, subsystem, event);
  }
  LogLine debug(const char* subsystem, const char* event) {
    return line(LogLevel::kDebug, subsystem, event);
  }
  LogLine info(const char* subsystem, const char* event) {
    return line(LogLevel::kInfo, subsystem, event);
  }
  LogLine warn(const char* subsystem, const char* event) {
    return line(LogLevel::kWarn, subsystem, event);
  }
  LogLine error(const char* subsystem, const char* event) {
    return line(LogLevel::kError, subsystem, event);
  }

  /// Replaces the output sink (default: one fwrite+flush to stdout per
  /// line). Tests capture lines here; pass nullptr to restore the default.
  void set_sink(std::function<void(const std::string&)> sink);

  /// Lines written / dropped since process start (mirrors the registry
  /// counters; here so tests need not scrape).
  std::uint64_t emitted() const;
  std::uint64_t suppressed() const;

  /// Drops rate-limiter state (tests — a fresh window for every case).
  void reset_rate_limits();

 private:
  friend class LogLine;
  Log();

  void emit(const LogLine& line);

  /// Sliding-window budget for one (level, subsystem, event) key.
  struct KeyWindow {
    double window_start_s = 0.0;
    std::uint32_t in_window = 0;
    std::uint64_t suppressed = 0;  ///< dropped since the window opened
  };

  std::atomic<std::uint8_t> min_level_{static_cast<std::uint8_t>(LogLevel::kInfo)};

  mutable std::mutex mu_;
  LogConfig config_;
  std::function<void(const std::string&)> sink_;
  std::unordered_map<std::string, KeyWindow> windows_;

  Counter* emitted_counter_ = nullptr;
  Counter* suppressed_counter_ = nullptr;
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace paintplace::obs
