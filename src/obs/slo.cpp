#include "obs/slo.h"

#include <algorithm>

namespace paintplace::obs {

namespace {

std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

const char* to_string(SloState state) {
  switch (state) {
    case SloState::kHealthy: return "healthy";
    case SloState::kWarning: return "warning";
    case SloState::kBreached: return "breached";
  }
  return "unknown";
}

SloMonitor::SloMonitor(const SloConfig& config, MetricsRegistry& registry)
    : config_(config),
      registry_(registry),
      epoch_(std::chrono::steady_clock::now()),
      window_p99_gauge_(registry.gauge("slo_window_p99_seconds",
                                       "windowed p99 request latency")),
      window_error_rate_gauge_(registry.gauge("slo_window_error_rate",
                                              "windowed (failed+shed)/total rate")),
      latency_burn_gauge_(registry.gauge("slo_latency_burn_rate",
                                         "windowed p99 / latency objective")),
      error_burn_gauge_(registry.gauge("slo_error_burn_rate",
                                       "windowed error rate / error objective")),
      state_gauge_(registry.gauge("slo_state",
                                  "0 healthy, 1 warning, 2 breached")) {}

SloMonitor::~SloMonitor() { stop(); }

void SloMonitor::start() {
  if (running_.exchange(true)) return;
  ticker_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(config_.tick_period);
      if (!running_.load(std::memory_order_relaxed)) break;
      tick();
    }
  });
}

void SloMonitor::stop() {
  if (!running_.exchange(false)) return;
  if (ticker_.joinable()) ticker_.join();
}

void SloMonitor::tick() {
  tick(std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count());
}

SloMonitor::Snapshot SloMonitor::read_instruments(double now_s) const {
  Snapshot snap;
  snap.t = now_s;
  if (const Histogram* h = registry_.find_histogram(config_.latency_histogram)) {
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      snap.buckets[static_cast<std::size_t>(b)] = h->bucket_count(b);
    }
  }
  if (const Counter* c = registry_.find_counter(config_.completed_counter)) {
    snap.completed = c->load();
  }
  if (const Counter* c = registry_.find_counter(config_.failed_counter)) {
    snap.failed = c->load();
  }
  for (const std::string& name : config_.shed_counters) {
    if (const Counter* c = registry_.find_counter(name)) snap.shed += c->load();
  }
  return snap;
}

void SloMonitor::tick(double now_s) {
  Snapshot snap = read_instruments(now_s);
  std::lock_guard<std::mutex> lock(mu_);
  snaps_.push_back(std::move(snap));
  // Keep the youngest snapshot at or past the window edge as the delta
  // base (so the window always spans its full width once history allows),
  // and drop everything older than it.
  const double cutoff = now_s - config_.window_s;
  while (snaps_.size() >= 2 && snaps_[1].t <= cutoff) snaps_.pop_front();
  recompute_locked();
}

void SloMonitor::recompute_locked() {
  const Snapshot& base = snaps_.front();
  const Snapshot& cur = snaps_.back();

  Status s;
  const std::uint64_t completed = saturating_sub(cur.completed, base.completed);
  const std::uint64_t failed = saturating_sub(cur.failed, base.failed);
  const std::uint64_t shed = saturating_sub(cur.shed, base.shed);
  s.window_requests = completed + shed;
  if (s.window_requests > 0) {
    std::array<std::uint64_t, Histogram::kBuckets> delta{};
    for (std::size_t b = 0; b < delta.size(); ++b) {
      delta[b] = saturating_sub(cur.buckets[b], base.buckets[b]);
    }
    s.window_p99_s = Histogram::quantile_of(delta, 0.99);
    s.window_error_rate =
        static_cast<double>(failed + shed) / static_cast<double>(s.window_requests);
  }
  if (config_.latency_objective_s > 0.0) {
    s.latency_burn_rate = s.window_p99_s / config_.latency_objective_s;
  }
  if (config_.error_rate_objective > 0.0) {
    s.error_burn_rate = s.window_error_rate / config_.error_rate_objective;
  }
  const double worst_burn = std::max(s.latency_burn_rate, s.error_burn_rate);
  s.state = worst_burn > 1.0              ? SloState::kBreached
            : worst_burn > config_.warning_burn ? SloState::kWarning
                                                : SloState::kHealthy;
  status_ = s;

  window_p99_gauge_.set(s.window_p99_s);
  window_error_rate_gauge_.set(s.window_error_rate);
  latency_burn_gauge_.set(s.latency_burn_rate);
  error_burn_gauge_.set(s.error_burn_rate);
  state_gauge_.set(static_cast<double>(static_cast<int>(s.state)));
}

SloMonitor::Status SloMonitor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace paintplace::obs
