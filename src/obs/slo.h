// paintplace::obs — rolling-window SLO monitor.
//
// Watches the serving objectives — p99 latency and error rate — over a
// sliding window, computed from instruments already in the MetricsRegistry
// (no second recording path on the request flow: the monitor only *reads*,
// on its own cadence). Each tick snapshots the latency histogram's bucket
// counts and the completed/failed/shed counters; the windowed view is the
// delta between the newest snapshot and the one just outside the window, so
// the p99 is a true windowed quantile, not a since-boot cumulative one.
//
// Burn rate is observed/objective: 1.0 means the window is exactly at the
// objective, 2.0 means twice over it. Both rates are exported as gauges —
// slo_latency_burn_rate, slo_error_burn_rate, plus slo_window_p99_seconds,
// slo_window_error_rate and slo_state (0 healthy / 1 warning / 2 breached)
// — and reported in the PPN1 health frame (net/wire.h kHealthResponse).
//
// tick() is public and takes an explicit timestamp so tests can drive the
// window edge deterministically; start() runs it on a background thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics_registry.h"

namespace paintplace::obs {

struct SloConfig {
  double window_s = 60.0;
  double latency_objective_s = 0.250;  ///< windowed p99 budget
  double error_rate_objective = 0.01;  ///< (failed+shed)/total budget
  /// Burn rate above which the state degrades to kWarning (kBreached at 1).
  double warning_burn = 0.5;
  std::chrono::milliseconds tick_period{1000};
  /// Instrument names polled from the registry. Defaults match the net
  /// front-end; point them elsewhere to watch a different request surface.
  std::string latency_histogram = "net_request_latency_seconds";
  std::string completed_counter = "net_requests_completed";
  std::string failed_counter = "net_requests_failed";
  std::string shed_counters[2] = {"net_shed_queue_full", "net_shed_client_cap"};
};

enum class SloState : std::uint8_t { kHealthy = 0, kWarning = 1, kBreached = 2 };

const char* to_string(SloState state);

class SloMonitor {
 public:
  explicit SloMonitor(const SloConfig& config,
                      MetricsRegistry& registry = MetricsRegistry::global());
  ~SloMonitor();

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Starts the background ticker. Idempotent.
  void start();
  /// Stops and joins it. Also runs on destruction.
  void stop();

  /// One snapshot + recompute at an explicit time (seconds on the
  /// monitor's own axis; tests pass synthetic times, ticks pass a steady
  /// clock). Times must be non-decreasing.
  void tick(double now_s);
  /// tick() at the wall (steady) clock.
  void tick();

  struct Status {
    double window_p99_s = 0.0;
    double window_error_rate = 0.0;
    double latency_burn_rate = 0.0;
    double error_burn_rate = 0.0;
    std::uint64_t window_requests = 0;  ///< completed + shed inside the window
    SloState state = SloState::kHealthy;
  };
  Status status() const;

  const SloConfig& config() const { return config_; }

 private:
  struct Snapshot {
    double t = 0.0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;
  };

  Snapshot read_instruments(double now_s) const;
  void recompute_locked();

  SloConfig config_;
  MetricsRegistry& registry_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::deque<Snapshot> snaps_;
  Status status_;

  Gauge& window_p99_gauge_;
  Gauge& window_error_rate_gauge_;
  Gauge& latency_burn_gauge_;
  Gauge& error_burn_gauge_;
  Gauge& state_gauge_;

  std::atomic<bool> running_{false};
  std::thread ticker_;
};

}  // namespace paintplace::obs
