// paintplace::obs — stall watchdog: finds the request that is stuck.
//
// The SLO monitor (slo.h) says *that* p99 is breached; the watchdog says
// *which* request is responsible. The net front-end registers every
// admitted request (track) and deregisters it at completion (complete); a
// monitor thread wakes every tick and checks the oldest in-flight request's
// admission-to-completion age against the stall threshold. Past it, the
// watchdog files a structured stall report exactly once per request:
//
//   * an obs::Log line (subsystem "watchdog", event "stall") naming the
//     trace id, age, owning replica, and current per-replica queue depths,
//   * a FlightRecorder kStall event (so a later crash dump shows the stall
//     history),
//   * Sampler::force_retain(trace_id) — the stuck request's spans are
//     committed through the tail path no matter what head sampling decided,
//     so the trace evidence survives,
//   * gauge updates: obs_watchdog_stalls (total reports) and
//     obs_watchdog_oldest_request_ms (age of the oldest in-flight request,
//     refreshed every tick) — both carried in the PPN1 health frame.
//
// Each tick also refreshes the FlightRecorder metrics snapshot, so a crash
// dump's registry view is at most one tick stale.
//
// track/complete cost one mutex-protected map op per request — noise next
// to a forecast — and collapse to a relaxed load + branch when no stall
// threshold is configured. tick(now_s) is public and deterministic for
// tests (SloMonitor style); start()/stop() run it on a background thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace paintplace::obs {

class Counter;
class Gauge;
class MetricsRegistry;

struct WatchdogConfig {
  /// A request in flight longer than this is reported as stalled.
  /// 0 disables stall detection (track/complete become cheap no-ops).
  double stall_ms = 0.0;
  /// Monitor thread wake period.
  double tick_period_s = 0.200;
};

class Watchdog {
 public:
  /// Snapshot of per-replica queue depths, polled at each tick for the
  /// stall report. Optional; return {} when there is no pool.
  using DepthsFn = std::function<std::vector<std::int64_t>()>;

  explicit Watchdog(MetricsRegistry& registry);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void configure(const WatchdogConfig& config);
  void set_depths_fn(DepthsFn fn);

  /// Starts the monitor thread (no-op when stall_ms is 0). stop() joins it;
  /// the destructor stops implicitly.
  void start();
  void stop();

  /// Registers an admitted request. `replica` is the shard it was queued
  /// on (-1 when unknown). No-op while disabled.
  void track(std::uint64_t trace_id, int replica);
  /// Deregisters a completed (or failed, or shed-after-track) request.
  void complete(std::uint64_t trace_id);

  /// One monitor pass at time `now_s` (seconds on the watchdog's own
  /// monotonic clock — tests pass synthetic times). Public for determinism.
  void tick(double now_s);

  /// Total stall reports filed (mirrors the obs_watchdog_stalls gauge).
  std::uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  /// Age of the oldest currently in-flight request at the last tick, ms.
  double oldest_request_ms() const;
  /// In-flight requests currently tracked (tests).
  std::size_t tracked() const;

  /// Seconds since this watchdog was constructed — the clock track() stamps
  /// admissions with; tests mixing real track() calls with synthetic tick
  /// times read it to stay on one timeline.
  double now_s() const;

 private:
  void run();

  std::atomic<bool> enabled_{false};  ///< stall_ms > 0
  std::atomic<bool> running_{false};

  struct InFlight {
    double admitted_s = 0.0;
    int replica = -1;
    bool reported = false;
  };

  mutable std::mutex mu_;
  WatchdogConfig config_;
  DepthsFn depths_fn_;
  std::unordered_map<std::uint64_t, InFlight> in_flight_;

  std::atomic<std::uint64_t> stalls_{0};
  Gauge* stalls_gauge_ = nullptr;
  Gauge* oldest_gauge_ = nullptr;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace paintplace::obs
