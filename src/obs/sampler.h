// paintplace::obs — tail-based trace sampling.
//
// Full tracing records every span of every request; under a production
// swarm that is unaffordable (and mostly uninteresting — the healthy
// requests all look alike). The Sampler keeps the traces that matter:
//
//   * head sampling — a deterministic 1-in-N of requests is committed in
//     full, so the steady state stays visible at a bounded cost;
//   * tail retention — a request whose end-to-end latency exceeds the slow
//     threshold, or that ends in a shed/error, is *always* committed, even
//     when head sampling would have dropped it.
//
// Mechanically: the request front-end calls begin(trace_id) when it mints a
// trace id. While the request runs, every span carrying that id is offered
// to the sampler instead of being recorded — head-sampled requests pass
// straight through to the per-thread rings, everything else buffers
// provisionally (tagged with the ring it would have landed in, so a commit
// preserves thread attribution). At completion, finish(trace_id, latency,
// outcome) either commits the buffered spans to their rings or discards
// them. Spans with trace id 0 (or an id the sampler was never told about —
// e.g. in-process ForecastServer traffic) bypass the sampler entirely, so
// enabling it never loses non-request instrumentation.
//
// Decisions are counted in MetricsRegistry::global():
//   obs_trace_sampled_total        head-sampled requests (committed live)
//   obs_trace_retained_slow_total  tail-retained: latency over threshold
//   obs_trace_retained_error_total tail-retained: shed or error outcome
//   obs_trace_retained_stall_total tail-retained: watchdog force_retain
//   obs_trace_discarded_total      requests whose spans were dropped
//
// Knobs: ServeConfig::{trace_sample,trace_slow_ms}, forecast_serve
// --trace-sample/--trace-slow-ms, or PAINTPLACE_TRACE_SAMPLE /
// PAINTPLACE_TRACE_SLOW_MS in the environment.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace paintplace::obs {

class Counter;

struct SamplerConfig {
  /// Head-sample 1 in this many requests. 1 keeps everything (tail logic
  /// still runs, but every request is head-sampled); must be >= 1.
  std::uint64_t sample_every = 100;
  /// Requests at least this slow commit regardless of the head decision.
  double slow_threshold_s = 0.100;
  /// Seed for the deterministic head-sampling hash — the same seed and
  /// request sequence reproduce the same decisions (tests rely on it).
  std::uint64_t seed = 0;
  /// Per-request cap on provisionally buffered spans; beyond it the newest
  /// spans are dropped (a runaway request cannot balloon memory).
  std::size_t max_buffered_spans = 512;
};

/// How a request ended, from the layer that owns its lifecycle (the net
/// front-end: writer resolution, shed decision, or decode/forward failure).
enum class RequestOutcome : std::uint8_t { kOk = 0, kShed = 1, kError = 2 };

class Sampler {
 public:
  using Ring = std::shared_ptr<Tracer::ThreadRing>;
  /// Writes one committed event into the ring it was provisionally tagged
  /// with. Bound by the Tracer (the ring type is private to trace.cpp).
  using CommitFn = std::function<void(const Ring&, const SpanEvent&)>;

  explicit Sampler(CommitFn commit);

  /// Enables sampling with the given policy and resets decision state.
  void configure(const SamplerConfig& config);
  /// Back to record-everything (PR 7 behavior). Buffered spans are dropped.
  void disable();
  bool active() const { return active_.load(std::memory_order_relaxed); }
  SamplerConfig config() const;

  /// Registers a request at the point its trace id is minted and takes the
  /// head-sampling decision for it. No-op while inactive.
  void begin(std::uint64_t trace_id);

  /// Offers a completed span. Returns true when the sampler consumed it
  /// (buffered provisionally); false when the caller should record it
  /// directly (head-sampled request, or an id begin() never saw).
  bool offer(const SpanEvent& event, const Ring& ring);

  /// Commits (slow / shed / error) or discards the request's buffered
  /// spans and bumps the decision counters. Unknown ids are ignored.
  /// Returns false only when the request's spans were discarded — i.e.
  /// true means the trace id is (conceptually) present in the trace, which
  /// is what exemplar attachment wants to know.
  bool finish(std::uint64_t trace_id, double latency_s, RequestOutcome outcome);

  /// Commits a request's buffered spans immediately and marks it retained,
  /// regardless of the head decision — the watchdog calls this for a
  /// stalled request so its evidence survives even if the process never
  /// reaches finish(). Later spans for the id record live; a later
  /// finish() treats it as already committed. No-op for unknown ids.
  void force_retain(std::uint64_t trace_id);

  /// Drops every in-flight request's buffer and restarts the deterministic
  /// decision sequence (tests, shutdown).
  void reset();

  /// Requests currently buffered (tests).
  std::size_t pending() const;

 private:
  struct PendingRequest {
    bool head_sampled = false;
    std::vector<std::pair<Ring, SpanEvent>> spans;
  };

  CommitFn commit_;
  std::atomic<bool> active_{false};

  mutable std::mutex mu_;
  SamplerConfig config_;
  std::uint64_t decisions_ = 0;  ///< requests seen since configure()/reset()
  std::unordered_map<std::uint64_t, PendingRequest> pending_;

  Counter* sampled_ = nullptr;
  Counter* retained_slow_ = nullptr;
  Counter* retained_error_ = nullptr;
  Counter* retained_stall_ = nullptr;
  Counter* discarded_ = nullptr;
};

}  // namespace paintplace::obs
