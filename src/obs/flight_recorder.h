// paintplace::obs — flight recorder: post-mortem forensics for crashes.
//
// A black box for the serving process. Every thread that touches a request
// appends fixed-size structured events (request admitted, shed decision,
// model swap, drain, stall, last log lines) into its own lock-free ring;
// when the process dies on SIGSEGV/SIGABRT/SIGBUS, an async-signal-safe
// handler walks every ring and writes a JSON post-mortem file containing:
//
//   - the fatal signal number,
//   - build identity (git sha, compiler, kernel flavour — obs/build_info.h),
//   - per-thread active span stacks (what each thread was *inside* when the
//     process died — span names are copied into recorder-owned buffers at
//     push time, so the handler never chases pointers into dead stack
//     frames),
//   - per-thread event rings, oldest to newest,
//   - the most recent metrics-registry snapshot (refreshed off the signal
//     path by the watchdog tick — the handler only copies bytes).
//
// Async-signal-safety contract for the handler path: no malloc, no locks,
// no stdio — only open/write/close on a pre-computed path, formatting into
// a preallocated buffer with hand-rolled integer conversion. Everything the
// dump needs (thread table, rings, span stacks, metrics snapshot, build
// strings) lives in fixed storage written before the signal, readable with
// plain loads.
//
// Recording cost when disabled: one relaxed atomic load per record() call
// (and span-stack maintenance is additionally gated behind the
// kSpanMaskForensics bit in obs::detail::g_span_mask, so an inert Span
// still costs exactly one load — bench_serve guards this).
//
// enable() turns on recording only (tests, programmatic use); install(dir)
// additionally registers the signal handlers and fixes the dump path to
// `<dir>/postmortem.<pid>.json` — wired to `forecast_serve --postmortem`.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace paintplace::obs {

enum class EventKind : std::uint8_t {
  kLog = 0,      ///< a structured log line was emitted (msg = subsystem.event)
  kRequest = 1,  ///< request admitted to a replica (a = replica, b = queue depth)
  kShed = 2,     ///< request shed (msg = reason)
  kSwap = 3,     ///< model hot-swap (a = new version)
  kDrain = 4,    ///< server drain started
  kStall = 5,    ///< watchdog stall report (a = age ms, b = replica)
  kSignal = 6,   ///< fatal signal entered the handler (a = signo)
  kMark = 7,     ///< free-form marker (tests, tools)
};

const char* to_string(EventKind kind);

/// One ring slot. Fixed-size POD: recording is bounded-time and the signal
/// handler can read it with plain loads. msg is sanitized (printable ASCII,
/// no quotes/backslashes) at record time so dumping needs no escaping.
struct FlightEvent {
  std::uint64_t t_us = 0;      ///< microseconds since recorder start
  std::uint64_t trace_id = 0;  ///< 0 = not tied to a request
  EventKind kind = EventKind::kMark;
  char msg[55] = {0};
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kEventsPerThread = 128;
  static constexpr std::size_t kMaxThreads = 256;
  static constexpr std::size_t kMaxSpanDepth = 32;
  static constexpr std::size_t kSpanNameLen = 48;

  static FlightRecorder& instance();

  /// Starts recording (rings fill; no signal handlers). Idempotent.
  void enable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// enable() + install SIGSEGV/SIGABRT/SIGBUS handlers that dump to
  /// `<dir>/postmortem.<pid>.json` and re-raise. Call once, from main,
  /// before serving traffic.
  void install(const std::string& dir);
  const char* dump_path() const { return dump_path_; }

  /// Appends one event to the calling thread's ring. No-op (one relaxed
  /// load) when disabled. `msg` is truncated and sanitized into the slot.
  static void record(EventKind kind, std::uint64_t trace_id, const char* msg,
                     std::int64_t a = 0, std::int64_t b = 0);

  /// Span-stack hooks, driven by obs::Span when kSpanMaskForensics is set.
  /// The name is copied into recorder-owned storage at push time.
  static void push_span(const char* name);
  static void pop_span();

  /// Copies the global metrics registry's Prometheus text into the
  /// preallocated snapshot buffer the signal handler embeds in the dump.
  /// Called off the signal path (watchdog tick, install time).
  void refresh_metrics_snapshot();

  /// Writes the post-mortem JSON to `path` programmatically (tests, drain
  /// diagnostics). Uses the same formatting core as the signal handler.
  /// Returns false when the file could not be opened.
  bool dump(const std::string& path, int signal_number = 0);

  /// Events currently recorded across all thread rings (tests).
  std::size_t recorded() const;
  /// Drops all ring contents and span stacks (tests). Not thread-safe
  /// against concurrent recording.
  void clear();

  struct ThreadSlot;  ///< fixed per-thread storage (defined in .cpp)

 private:
  FlightRecorder();
  ThreadSlot* slot_for_this_thread();

  /// Builds the dump into buf (AS-safe: no allocation, no locks) and
  /// returns the byte length.
  std::size_t render_dump(char* buf, std::size_t cap, int signal_number) const;

  friend void flight_recorder_signal_handler(int);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> installed_{false};
  char dump_path_[512] = {0};

  std::uint64_t epoch_us_ = 0;
};

}  // namespace paintplace::obs
