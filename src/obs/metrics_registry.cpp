#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace paintplace::obs {

namespace {

/// Bucket b covers [2^b, 2^(b+1)) millionths; bucket 0 also absorbs smaller
/// samples, the last bucket absorbs overflow.
int bucket_of(double value) {
  const double millionths = value * 1e6;
  if (millionths < 1.0) return 0;
  const int b = static_cast<int>(std::log2(millionths));
  return std::min(b, Histogram::kBuckets - 1);
}

double bucket_lower(int b) { return b == 0 ? 0.0 : std::exp2(b) * 1e-6; }

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void Histogram::record(double value) {
  if (value < 0.0) value = 0.0;
  buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_millionths_.fetch_add(static_cast<std::uint64_t>(value * 1e6),
                            std::memory_order_relaxed);
}

void Histogram::record(double value, std::uint64_t trace_id) {
  record(value);
  if (trace_id == 0) return;
  if (value < 0.0) value = 0.0;
  // Last-write-wins per bucket; the two stores are independently atomic, so
  // a torn pair can at worst pair a trace with a neighbouring sample's
  // value from the same bucket — fine for a debugging breadcrumb.
  const auto b = static_cast<std::size_t>(bucket_of(value));
  exemplar_trace_[b].store(trace_id, std::memory_order_relaxed);
  exemplar_millionths_[b].store(static_cast<std::uint64_t>(value * 1e6),
                                std::memory_order_relaxed);
}

double Histogram::exemplar_value(int b) const {
  return static_cast<double>(
             exemplar_millionths_[static_cast<std::size_t>(b)].load(
                 std::memory_order_relaxed)) *
         1e-6;
}

double Histogram::sum() const {
  return static_cast<double>(sum_millionths_.load(std::memory_order_relaxed)) * 1e-6;
}

double Histogram::bucket_upper(int b) { return std::exp2(b + 1) * 1e-6; }

double Histogram::quantile_of(const std::array<std::uint64_t, kBuckets>& buckets, double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t n = 0;
  for (const std::uint64_t b : buckets) n += b;
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double in_bucket = static_cast<double>(buckets[static_cast<std::size_t>(b)]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      const double frac = (target - seen) / in_bucket;
      const double lo = bucket_lower(b), hi = bucket_upper(b);
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return bucket_upper(kBuckets - 1);
}

double Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> snapshot;
  for (int b = 0; b < kBuckets; ++b) snapshot[static_cast<std::size_t>(b)] = bucket_count(b);
  return quantile_of(snapshot, q);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_millionths_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry_of(const std::string& name, Kind kind,
                                                  const std::string& help) {
  PP_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.help = help;
    switch (kind) {
      case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: entry.histogram = std::make_unique<Histogram>(); break;
      case Kind::kInfo: break;           // labels set by the caller
      case Kind::kCallbackGauge: break;  // callback set by the caller
    }
    it = entries_.emplace(name, std::move(entry)).first;
  } else {
    PP_CHECK_MSG(it->second.kind == kind,
                 "metric " << name << " already registered as a different kind");
    if (it->second.help.empty() && !help.empty()) it->second.help = help;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  return *entry_of(name, Kind::kCounter, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  return *entry_of(name, Kind::kGauge, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help) {
  return *entry_of(name, Kind::kHistogram, help).histogram;
}

void MetricsRegistry::set_info(const std::string& name, const std::string& labels,
                               const std::string& help) {
  Entry& entry = entry_of(name, Kind::kInfo, help);
  std::lock_guard<std::mutex> lock(mu_);
  entry.info_labels = labels;
}

void MetricsRegistry::gauge_callback(const std::string& name, std::function<double()> fn,
                                     const std::string& help) {
  Entry& entry = entry_of(name, Kind::kCallbackGauge, help);
  std::lock_guard<std::mutex> lock(mu_);
  entry.callback = std::move(fn);
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kCounter ? it->second.counter.get()
                                                                   : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

std::string MetricsRegistry::render_prometheus(
    const std::function<bool(const std::string&)>& keep) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (keep && !keep(name)) continue;
    if (!entry.help.empty()) out += "# HELP " + name + " " + entry.help + "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.counter->load()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_value(entry.gauge->value()) + "\n";
        break;
      case Kind::kInfo:
        out += "# TYPE " + name + " gauge\n";
        out += name + "{" + entry.info_labels + "} 1\n";
        break;
      case Kind::kCallbackGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_value(entry.callback ? entry.callback() : 0.0) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t in_bucket = h.bucket_count(b);
          if (in_bucket == 0 && b != Histogram::kBuckets - 1) continue;  // keep it short
          cumulative += in_bucket;
          const bool last = b == Histogram::kBuckets - 1;
          const std::string le =
              last ? std::string("+Inf") : format_value(Histogram::bucket_upper(b));
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(last ? h.count() : cumulative) + "\n";
          // Exemplar: the most recent retained trace that landed in this
          // band, as a comment so plain Prometheus-text parsers pass over
          // it (OpenMetrics exemplars need the openmetrics content type).
          const std::uint64_t exemplar = h.exemplar_trace(b);
          if (exemplar != 0) {
            out += "# EXEMPLAR " + name + "_bucket{le=\"" + le + "\"} trace_id=" +
                   std::to_string(exemplar) + " value=" +
                   format_value(h.exemplar_value(b)) + "\n";
          }
        }
        out += name + "_sum " + format_value(h.sum()) + "\n";
        out += name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace paintplace::obs
