#include "net/wire.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace paintplace::net {

namespace {

// Little-endian scalar put/get over a byte vector. memcpy keeps it
// alignment-safe; the host is assumed little-endian (see nn/serialize.h).
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

void put_bytes(std::vector<std::uint8_t>& out, const void* data, std::size_t size) {
  const std::size_t at = out.size();
  out.resize(at + size);
  if (size > 0) std::memcpy(out.data() + at, data, size);
}

/// Sequential payload reader that throws WireError past the end — every
/// decode failure funnels through here with a frame-type context string.
class PayloadReader {
 public:
  PayloadReader(const std::vector<std::uint8_t>& payload, const char* context)
      : payload_(payload), context_(context) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (at_ + sizeof(T) > payload_.size()) {
      throw WireError(std::string(context_) + ": payload truncated");
    }
    T value;
    std::memcpy(&value, payload_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return value;
  }

  std::vector<float> get_floats(std::size_t count) {
    if (at_ + count * sizeof(float) > payload_.size()) {
      throw WireError(std::string(context_) + ": payload truncated");
    }
    std::vector<float> out(count);
    if (count > 0) std::memcpy(out.data(), payload_.data() + at_, count * sizeof(float));
    at_ += count * sizeof(float);
    return out;
  }

  std::string rest() {
    std::string out(reinterpret_cast<const char*>(payload_.data()) + at_,
                    payload_.size() - at_);
    at_ = payload_.size();
    return out;
  }

  void expect_end() const {
    if (at_ != payload_.size()) {
      throw WireError(std::string(context_) + ": " +
                      std::to_string(payload_.size() - at_) + " trailing payload bytes");
    }
  }

 private:
  const std::vector<std::uint8_t>& payload_;
  const char* context_;
  std::size_t at_ = 0;
};

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint8_t flags, std::uint16_t detail,
                                       std::uint64_t request_id,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put<std::uint32_t>(out, kWireMagic);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  put<std::uint8_t>(out, flags);
  put<std::uint16_t>(out, detail);
  put<std::uint64_t>(out, request_id);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  put_bytes(out, payload.data(), payload.size());
  return out;
}

void require_type(const Frame& frame, FrameType expected, const char* context) {
  if (frame.type != expected) {
    throw WireError(std::string(context) + ": unexpected frame type " +
                    std::to_string(static_cast<int>(frame.type)));
  }
}

/// Shared by request and response: u32 C | u32 H | u32 W | f32 data. All-zero
/// dims encode "no tensor" (score-only responses).
void put_tensor(std::vector<std::uint8_t>& payload, const nn::Tensor& t) {
  if (t.numel() == 0) {
    put<std::uint32_t>(payload, 0);
    put<std::uint32_t>(payload, 0);
    put<std::uint32_t>(payload, 0);
    return;
  }
  PP_CHECK_MSG(t.rank() == 4 && t.dim(0) == 1,
               "wire tensors are single-sample (1,C,H,W); got " << t.shape().str());
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(t.dim(1)));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(t.dim(2)));
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(t.dim(3)));
  put_bytes(payload, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

nn::Tensor get_tensor(PayloadReader& in, const char* context) {
  const std::uint32_t c = in.get<std::uint32_t>();
  const std::uint32_t h = in.get<std::uint32_t>();
  const std::uint32_t w = in.get<std::uint32_t>();
  if (c == 0 && h == 0 && w == 0) return nn::Tensor();
  if (c == 0 || h == 0 || w == 0) {
    throw WireError(std::string(context) + ": degenerate tensor dims");
  }
  // The per-dimension bound keeps c*h*w far from u64 overflow; the total is
  // already bounded by the frame reader's max_payload.
  constexpr std::uint32_t kMaxDim = 1u << 16;
  if (c > kMaxDim || h > kMaxDim || w > kMaxDim) {
    throw WireError(std::string(context) + ": tensor dim exceeds " + std::to_string(kMaxDim));
  }
  const std::size_t numel = std::size_t{c} * h * w;
  std::vector<float> data = in.get_floats(numel);
  return nn::Tensor(nn::Shape{1, static_cast<Index>(c), static_cast<Index>(h),
                              static_cast<Index>(w)},
                    std::move(data));
}

}  // namespace

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kReplicaQueueFull: return "replica_queue_full";
    case ShedReason::kClientCapExceeded: return "client_cap_exceeded";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_forecast_request(const ForecastRequest& req) {
  PP_CHECK_MSG(req.input.numel() > 0, "forecast request needs a placement tensor");
  std::vector<std::uint8_t> payload;
  put_tensor(payload, req.input);
  return encode_frame(FrameType::kForecastRequest, req.want_heatmap ? kFlagWantHeatmap : 0, 0,
                      req.request_id, payload);
}

std::vector<std::uint8_t> encode_forecast_response(const ForecastResponse& resp) {
  std::vector<std::uint8_t> payload;
  put<double>(payload, resp.congestion_score);
  put<std::uint64_t>(payload, resp.model_version);
  put<std::uint8_t>(payload, resp.from_cache ? 1 : 0);
  put<std::uint8_t>(payload, 0);
  put<std::uint8_t>(payload, 0);
  put<std::uint8_t>(payload, 0);
  if (resp.status == Status::kFailed) {
    put<std::uint32_t>(payload, 0);
    put<std::uint32_t>(payload, 0);
    put<std::uint32_t>(payload, 0);
    put_bytes(payload, resp.error.data(), resp.error.size());
  } else {
    put_tensor(payload, resp.status == Status::kOk ? resp.heatmap : nn::Tensor());
  }
  return encode_frame(FrameType::kForecastResponse, static_cast<std::uint8_t>(resp.status),
                      static_cast<std::uint16_t>(resp.shed_reason), resp.request_id, payload);
}

std::vector<std::uint8_t> encode_metrics_request(std::uint64_t request_id) {
  return encode_frame(FrameType::kMetricsRequest, 0, 0, request_id, {});
}

std::vector<std::uint8_t> encode_metrics_response(std::uint64_t request_id,
                                                  const std::string& text) {
  std::vector<std::uint8_t> payload;
  put_bytes(payload, text.data(), text.size());
  return encode_frame(FrameType::kMetricsResponse, 0, 0, request_id, payload);
}

std::vector<std::uint8_t> encode_swap_request(std::uint64_t request_id,
                                              const std::string& checkpoint_path) {
  std::vector<std::uint8_t> payload;
  put_bytes(payload, checkpoint_path.data(), checkpoint_path.size());
  return encode_frame(FrameType::kSwapRequest, 0, 0, request_id, payload);
}

std::vector<std::uint8_t> encode_swap_response(const SwapResponse& resp) {
  std::vector<std::uint8_t> payload;
  put<std::uint64_t>(payload, resp.new_version);
  put_bytes(payload, resp.error.data(), resp.error.size());
  return encode_frame(FrameType::kSwapResponse, static_cast<std::uint8_t>(resp.status), 0,
                      resp.request_id, payload);
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id, const std::string& message) {
  std::vector<std::uint8_t> payload;
  put_bytes(payload, message.data(), message.size());
  return encode_frame(FrameType::kError, 0, 0, request_id, payload);
}

namespace {

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(n));
  put_bytes(out, s.data(), n);
}

std::string get_str(PayloadReader& in) {
  const std::uint16_t n = in.get<std::uint16_t>();
  std::string out;
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    out += static_cast<char>(in.get<std::uint8_t>());
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_health_request(std::uint64_t request_id) {
  return encode_frame(FrameType::kHealthRequest, 0, 0, request_id, {});
}

std::vector<std::uint8_t> encode_health_response(const HealthInfo& info) {
  std::vector<std::uint8_t> payload;
  put<double>(payload, info.uptime_seconds);
  put<std::uint64_t>(payload, info.model_version);
  put<std::uint8_t>(payload, info.slo_state);
  put<std::uint8_t>(payload, info.native_kernel ? 1 : 0);
  put<std::uint16_t>(payload, 0);
  put<double>(payload, info.window_p99_s);
  put<double>(payload, info.window_error_rate);
  put<double>(payload, info.latency_burn_rate);
  put<double>(payload, info.error_burn_rate);
  put<std::uint64_t>(payload, info.window_requests);
  put<std::uint64_t>(payload, info.watchdog_stalls);
  put<double>(payload, info.oldest_request_ms);
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(info.replica_depths.size()));
  for (const std::uint32_t depth : info.replica_depths) put<std::uint32_t>(payload, depth);
  put_str(payload, info.git_sha);
  put_str(payload, info.compiler);
  put_str(payload, info.backend);
  return encode_frame(FrameType::kHealthResponse, 0, 0, info.request_id, payload);
}

HealthInfo decode_health_response(const Frame& frame) {
  require_type(frame, FrameType::kHealthResponse, "health response");
  PayloadReader in(frame.payload, "health response");
  HealthInfo info;
  info.request_id = frame.request_id;
  info.uptime_seconds = in.get<double>();
  info.model_version = in.get<std::uint64_t>();
  info.slo_state = in.get<std::uint8_t>();
  info.native_kernel = in.get<std::uint8_t>() != 0;
  in.get<std::uint16_t>();
  info.window_p99_s = in.get<double>();
  info.window_error_rate = in.get<double>();
  info.latency_burn_rate = in.get<double>();
  info.error_burn_rate = in.get<double>();
  info.window_requests = in.get<std::uint64_t>();
  info.watchdog_stalls = in.get<std::uint64_t>();
  info.oldest_request_ms = in.get<double>();
  const std::uint32_t replicas = in.get<std::uint32_t>();
  constexpr std::uint32_t kMaxReplicas = 1u << 16;
  if (replicas > kMaxReplicas) {
    throw WireError("health response: implausible replica count " + std::to_string(replicas));
  }
  info.replica_depths.reserve(replicas);
  for (std::uint32_t i = 0; i < replicas; ++i) {
    info.replica_depths.push_back(in.get<std::uint32_t>());
  }
  info.git_sha = get_str(in);
  info.compiler = get_str(in);
  info.backend = get_str(in);
  in.expect_end();
  return info;
}

ForecastRequest decode_forecast_request(const Frame& frame) {
  require_type(frame, FrameType::kForecastRequest, "forecast request");
  PayloadReader in(frame.payload, "forecast request");
  ForecastRequest req;
  req.request_id = frame.request_id;
  req.want_heatmap = (frame.flags & kFlagWantHeatmap) != 0;
  req.input = get_tensor(in, "forecast request");
  if (req.input.numel() == 0) throw WireError("forecast request: empty placement tensor");
  in.expect_end();
  return req;
}

ForecastResponse decode_forecast_response(const Frame& frame) {
  require_type(frame, FrameType::kForecastResponse, "forecast response");
  if (frame.flags > static_cast<std::uint8_t>(Status::kFailed)) {
    throw WireError("forecast response: unknown status " + std::to_string(frame.flags));
  }
  PayloadReader in(frame.payload, "forecast response");
  ForecastResponse resp;
  resp.request_id = frame.request_id;
  resp.status = static_cast<Status>(frame.flags);
  resp.shed_reason = static_cast<ShedReason>(frame.detail);
  resp.congestion_score = in.get<double>();
  resp.model_version = in.get<std::uint64_t>();
  resp.from_cache = in.get<std::uint8_t>() != 0;
  in.get<std::uint8_t>();
  in.get<std::uint8_t>();
  in.get<std::uint8_t>();
  if (resp.status == Status::kFailed) {
    in.get<std::uint32_t>();
    in.get<std::uint32_t>();
    in.get<std::uint32_t>();
    resp.error = in.rest();
  } else {
    resp.heatmap = get_tensor(in, "forecast response");
    in.expect_end();
  }
  return resp;
}

SwapResponse decode_swap_response(const Frame& frame) {
  require_type(frame, FrameType::kSwapResponse, "swap response");
  if (frame.flags > static_cast<std::uint8_t>(Status::kFailed)) {
    throw WireError("swap response: unknown status " + std::to_string(frame.flags));
  }
  PayloadReader in(frame.payload, "swap response");
  SwapResponse resp;
  resp.request_id = frame.request_id;
  resp.status = static_cast<Status>(frame.flags);
  resp.new_version = in.get<std::uint64_t>();
  resp.error = in.rest();
  return resp;
}

std::string decode_text(const Frame& frame) {
  if (frame.type != FrameType::kSwapRequest && frame.type != FrameType::kMetricsResponse &&
      frame.type != FrameType::kError) {
    throw WireError("text payload requested from non-text frame type " +
                    std::to_string(static_cast<int>(frame.type)));
  }
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  // Drop the consumed prefix before growing, so a long-lived connection's
  // buffer stays at ~one frame instead of the whole session history.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (std::size_t{1} << 16)) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameReader::next() {
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  std::uint32_t magic, payload_len;
  std::memcpy(&magic, head, sizeof(magic));
  if (magic != kWireMagic) throw WireError("bad frame magic — stream is not PPN1 framed");
  const std::uint8_t raw_type = head[4];
  if (raw_type < static_cast<std::uint8_t>(FrameType::kForecastRequest) ||
      raw_type > kMaxFrameType) {
    throw WireError("unknown frame type " + std::to_string(raw_type));
  }
  std::memcpy(&payload_len, head + 16, sizeof(payload_len));
  if (payload_len > max_payload_) {
    throw WireError("frame payload " + std::to_string(payload_len) + " exceeds limit " +
                    std::to_string(max_payload_));
  }
  if (buffered() < kFrameHeaderBytes + payload_len) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.flags = head[5];
  std::memcpy(&frame.detail, head + 6, sizeof(frame.detail));
  std::memcpy(&frame.request_id, head + 8, sizeof(frame.request_id));
  frame.payload.assign(head + kFrameHeaderBytes, head + kFrameHeaderBytes + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return frame;
}

}  // namespace paintplace::net
