#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>

#include "backend/backend.h"
#include "core/pix2pix.h"
#include "obs/build_info.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace paintplace::net {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// send() the whole buffer, tolerating partial writes. False = peer gone.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// One accepted socket: a reader thread that decodes and dispatches frames,
// and a writer thread that delivers responses in request order. The writer
// is what keeps slow forwards from blocking frame intake — the reader can
// keep admitting (up to the admission caps) while earlier requests compute.
struct NetServer::Connection {
  // One queued response. Immediate entries carry pre-encoded bytes; forecast
  // entries carry the admission whose future the writer resolves.
  struct Outgoing {
    std::vector<std::uint8_t> encoded;  ///< used when !pending
    bool pending = false;
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;  ///< stitches the writer's span to the request
    bool want_heatmap = false;
    Admission admission;
    std::chrono::steady_clock::time_point accepted_at;
  };

  NetServer& server;
  int fd;
  std::uint64_t client_id;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Outgoing> outbox;
  bool intake_closed = false;
  std::atomic<bool> dead{false};  ///< peer unreachable; drain without writing

  std::thread reader;
  std::thread writer;
  std::atomic<bool> finished{false};  ///< both threads have returned

  Connection(NetServer& srv, int sock, std::uint64_t id)
      : server(srv), fd(sock), client_id(id) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (server.config_.idle_timeout.count() > 0) {
      // SO_RCVTIMEO turns a silent peer into a recv() timeout in read_loop;
      // no separate reaper thread needed for thread-per-connection.
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          server.config_.idle_timeout);
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(us.count() / 1000000);
      tv.tv_usec = static_cast<suseconds_t>(us.count() % 1000000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    reader = std::thread([this] {
      read_loop();
      // Reader is done (EOF, error, or protocol violation): no more entries
      // will arrive; let the writer drain and exit.
      close_intake();
      writer.join();
      ::shutdown(fd, SHUT_RDWR);
      server.metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      finished.store(true, std::memory_order_release);
    });
    writer = std::thread([this] { write_loop(); });
  }

  ~Connection() {
    if (reader.joinable()) reader.join();
    close_fd(fd);
  }

  /// Half-close from the server side: the reader unblocks with EOF and winds
  /// the connection down through the normal drain path.
  void stop() { ::shutdown(fd, SHUT_RD); }

  void close_intake() {
    std::lock_guard<std::mutex> lock(mu);
    intake_closed = true;
    cv.notify_all();
  }

  void enqueue(Outgoing entry) {
    std::lock_guard<std::mutex> lock(mu);
    outbox.push_back(std::move(entry));
    cv.notify_all();
  }

  void enqueue_encoded(std::vector<std::uint8_t> bytes) {
    Outgoing out;
    out.encoded = std::move(bytes);
    enqueue(std::move(out));
  }

  void read_loop() {
    FrameReader frames(server.config_.max_payload);
    std::vector<std::uint8_t> buf(std::size_t{64} << 10);
    for (;;) {
      const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // The idle deadline (SO_RCVTIMEO) elapsed with nothing to read.
        server.metrics_.idle_closed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (n <= 0) return;  // EOF or error — peer is done sending
      try {
        obs::Span span("net.frame_decode", "net");
        if (span.active()) span.arg("bytes", static_cast<std::int64_t>(n));
        frames.feed(buf.data(), static_cast<std::size_t>(n));
        while (std::optional<Frame> frame = frames.next()) {
          if (!handle_frame(*frame)) return;
        }
      } catch (const WireError& e) {
        // Framing is unrecoverable: answer with the reason and stop reading.
        server.metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        obs::Log::instance()
            .warn("net", "protocol_error")
            .kv("client", client_id)
            .kv("error", e.what());
        enqueue_encoded(encode_error(0, e.what()));
        return;
      }
    }
  }

  /// Dispatches one well-framed message. False = stop reading (the frame
  /// was a semantic protocol violation).
  bool handle_frame(const Frame& frame) {
    switch (frame.type) {
      case FrameType::kForecastRequest:
        handle_forecast(frame);
        return true;
      case FrameType::kMetricsRequest:
        server.metrics_.metrics_requests.fetch_add(1, std::memory_order_relaxed);
        enqueue_encoded(encode_metrics_response(frame.request_id, server.metrics_text()));
        return true;
      case FrameType::kSwapRequest:
        handle_swap(frame);
        return true;
      case FrameType::kHealthRequest:
        handle_health(frame);
        return true;
      default:
        // Clients must not send server-to-client frame types.
        server.metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        enqueue_encoded(encode_error(
            frame.request_id,
            "unexpected client frame type " + std::to_string(static_cast<int>(frame.type))));
        return false;
    }
  }

  void handle_forecast(const Frame& frame) {
    // Every forecast request gets a process-unique trace id here, at the
    // first point where it exists as a request. The id rides the
    // thread-local TraceContext through submit (pool dispatch, cache
    // lookup), is carried by PendingRequest into the batch worker, and by
    // Outgoing into the writer — every span along the way records it.
    const std::uint64_t trace_id = obs::TraceContext::next_id();
    const obs::ScopedTraceId trace_scope(trace_id);
    // The sampler tracks the request for its whole wire lifetime: begin at
    // id mint, finish either right here (decode error / unservable / shed)
    // or in write_loop once the response is on the wire.
    obs::Sampler& sampler = obs::Tracer::instance().sampler();
    sampler.begin(trace_id);
    const auto started_at = std::chrono::steady_clock::now();

    bool admitted = false;
    obs::RequestOutcome outcome = obs::RequestOutcome::kOk;
    {
      // Inner scope: the request span must close (and reach the sampler's
      // provisional buffer) before finish() decides the request's fate.
      obs::Span span("net.handle_forecast", "net");
      admitted = dispatch_forecast(frame, span, outcome);
    }
    if (!admitted) {
      sampler.finish(
          trace_id,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at).count(),
          outcome);
    }
  }

  /// Decode + admission for one forecast frame. Returns true when the
  /// request was admitted (a pending Outgoing is queued and write_loop owns
  /// its completion); false means an immediate response was enqueued and
  /// `outcome` says how it ended.
  bool dispatch_forecast(const Frame& frame, obs::Span& span, obs::RequestOutcome& outcome) {
    ForecastRequest req;
    try {
      req = decode_forecast_request(frame);
    } catch (const WireError& e) {
      server.metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      enqueue_encoded(encode_error(frame.request_id, e.what()));
      outcome = obs::RequestOutcome::kError;
      return false;
    }

    Outgoing out;
    out.request_id = req.request_id;
    out.trace_id = obs::TraceContext::current();
    out.want_heatmap = req.want_heatmap;
    out.accepted_at = std::chrono::steady_clock::now();
    try {
      out.admission = server.pool_->submit(client_id, req.input);
    } catch (const std::exception& e) {
      // Well-framed but unservable (wrong tensor shape for the model, or
      // intake already closed): a failed response, not a dropped connection.
      ForecastResponse resp;
      resp.request_id = req.request_id;
      resp.status = Status::kFailed;
      resp.error = e.what();
      server.metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
      enqueue_encoded(encode_forecast_response(resp));
      outcome = obs::RequestOutcome::kError;
      return false;
    }

    if (!out.admission.admitted()) {
      if (out.admission.shed == ShedReason::kReplicaQueueFull) {
        server.metrics_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      } else {
        server.metrics_.shed_client_cap.fetch_add(1, std::memory_order_relaxed);
      }
      if (span.active()) span.arg("shed", to_string(out.admission.shed));
      obs::FlightRecorder::record(obs::EventKind::kShed, out.trace_id,
                                  to_string(out.admission.shed),
                                  static_cast<std::int64_t>(client_id), 0);
      ForecastResponse resp;
      resp.request_id = req.request_id;
      resp.status = Status::kShed;
      resp.shed_reason = out.admission.shed;
      enqueue_encoded(encode_forecast_response(resp));
      outcome = obs::RequestOutcome::kShed;
      return false;
    }

    server.metrics_.requests_accepted.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::record(obs::EventKind::kRequest, out.trace_id, "admitted",
                                out.admission.replica,
                                static_cast<std::int64_t>(client_id));
    server.watchdog_->track(out.trace_id, out.admission.replica);
    out.pending = true;
    enqueue(std::move(out));
    return true;
  }

  void handle_health(const Frame& frame) {
    HealthInfo info;
    info.request_id = frame.request_id;
    info.uptime_seconds = obs::process_uptime_seconds();
    info.model_version = server.pool_->stats().model_version;
    const obs::SloMonitor::Status slo = server.slo_monitor_->status();
    info.slo_state = static_cast<std::uint8_t>(slo.state);
    info.window_p99_s = slo.window_p99_s;
    info.window_error_rate = slo.window_error_rate;
    info.latency_burn_rate = slo.latency_burn_rate;
    info.error_burn_rate = slo.error_burn_rate;
    info.window_requests = slo.window_requests;
    info.watchdog_stalls = server.watchdog_->stalls();
    info.oldest_request_ms = server.watchdog_->oldest_request_ms();
    const std::vector<Index> depths = server.pool_->replica_depths();
    info.replica_depths.reserve(depths.size());
    for (Index d : depths) info.replica_depths.push_back(static_cast<std::uint32_t>(d));
    const obs::BuildInfo& build = obs::build_info();
    info.git_sha = build.git_sha;
    info.compiler = build.compiler;
    info.native_kernel = build.native_kernel;
    info.backend = backend::active_backend().name();
    enqueue_encoded(encode_health_response(info));
  }

  void handle_swap(const Frame& frame) {
    SwapResponse resp;
    resp.request_id = frame.request_id;
    if (!server.config_.allow_swap) {
      resp.status = Status::kFailed;
      resp.error = "hot swap over the wire is disabled (start the server with allow_swap)";
    } else {
      try {
        resp.new_version = server.swap_checkpoint(decode_text(frame));
      } catch (const std::exception& e) {
        resp.status = Status::kFailed;
        resp.error = e.what();
      }
    }
    enqueue_encoded(encode_swap_response(resp));
  }

  void write_loop() {
    for (;;) {
      Outgoing out;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return !outbox.empty() || intake_closed; });
        if (outbox.empty()) return;  // intake closed and drained
        out = std::move(outbox.front());
        outbox.pop_front();
      }
      if (!out.pending) {
        if (!dead.load(std::memory_order_relaxed) &&
            !send_all(fd, out.encoded.data(), out.encoded.size())) {
          dead.store(true, std::memory_order_relaxed);
        }
        continue;
      }

      // An admitted forecast: resolve, respond, then release the admission
      // slot — the release point is what admission depth meters.
      bool failed = false;
      bool completed = false;
      {
        // Inner scope so the writer's span reaches the sampler before
        // finish() commits or discards the request's trace.
        const obs::ScopedTraceId trace_scope(out.trace_id);
        obs::Span span("net.write_response", "net");
        ForecastResponse resp;
        resp.request_id = out.request_id;
        try {
          const serve::ForecastResult result = out.admission.future.get();
          resp.congestion_score = result.congestion_score;
          resp.model_version = result.model_version;
          resp.from_cache = result.from_cache;
          if (out.want_heatmap) resp.heatmap = result.heatmap;
        } catch (const std::exception& e) {
          resp.status = Status::kFailed;
          resp.error = e.what();
          failed = true;
          server.metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
        }
        if (!dead.load(std::memory_order_relaxed)) {
          const std::vector<std::uint8_t> encoded = encode_forecast_response(resp);
          if (send_all(fd, encoded.data(), encoded.size())) {
            server.metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
            completed = true;
          } else {
            dead.store(true, std::memory_order_relaxed);
          }
        }
      }
      const double latency_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - out.accepted_at)
              .count();
      // The sampler decides first so the latency histogram can carry the
      // trace id as a bucket exemplar only when that trace actually exists
      // in the dump (head-sampled or tail-retained).
      const bool retained = obs::Tracer::instance().sampler().finish(
          out.trace_id, latency_s,
          failed ? obs::RequestOutcome::kError : obs::RequestOutcome::kOk);
      if (completed) {
        server.metrics_.latency.record(latency_s, retained ? out.trace_id : 0);
      }
      server.watchdog_->complete(out.trace_id);
      out.admission.slot.reset();
    }
  }
};

NetServer::NetServer(const NetServerConfig& config, const ModelFactory& make_model)
    : config_(config), pool_(std::make_unique<ReplicaPool>(config.pool, make_model)) {
  // The pool's replicas have applied ServeConfig::backend by now, so the
  // build_info label reflects what will actually serve.
  obs::register_process_metrics(backend::active_backend().name());
  slo_monitor_ = std::make_unique<obs::SloMonitor>(config_.slo);
  slo_monitor_->start();
  // Constructed unconditionally so the obs_watchdog_* gauges always exist
  // (the health frame reads them); the monitor thread only runs when a
  // stall threshold is configured.
  watchdog_ = std::make_unique<obs::Watchdog>(obs::MetricsRegistry::global());
  watchdog_->configure(config_.watchdog);
  watchdog_->set_depths_fn([this] {
    const std::vector<Index> depths = pool_->replica_depths();
    return std::vector<std::int64_t>(depths.begin(), depths.end());
  });
  watchdog_->start();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PP_CHECK_MSG(listen_fd_ >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  PP_CHECK_MSG(::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) == 1,
               "bad bind address " << config.bind_address);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close_fd(listen_fd_);
    PP_CHECK_MSG(false, "bind(" << config.bind_address << ":" << config.port
                                << ") failed: " << err);
  }
  PP_CHECK_MSG(::listen(listen_fd_, config.backlog) == 0,
               "listen() failed: " << std::strerror(errno));

  socklen_t len = sizeof(addr);
  PP_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port_ = ntohs(addr.sin_port);

  obs::Log::instance()
      .info("net", "listening")
      .kv("bind", config_.bind_address)
      .kv("port", static_cast<std::int64_t>(port_))
      .kv("replicas", pool_->replicas())
      .kv("stall_ms", config_.watchdog.stall_ms);

  acceptor_ = std::thread([this] { accept_loop(); });
  if (config_.metrics_log_period.count() > 0) {
    logger_ = std::thread([this] { log_loop(); });
  }
}

NetServer::~NetServer() { shutdown(); }

void NetServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed — shutting down
    }
    if (shut_down_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    metrics_.connections_opened.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connections_mu_);
    reap_finished_connections();
    connections_.push_back(std::make_unique<Connection>(*this, fd, next_client_id_++));
  }
}

void NetServer::reap_finished_connections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      it = connections_.erase(it);  // ~Connection joins the reader
    } else {
      ++it;
    }
  }
}

void NetServer::log_loop() {
  std::unique_lock<std::mutex> lock(log_mu_);
  while (!shut_down_.load(std::memory_order_relaxed)) {
    if (log_cv_.wait_for(lock, config_.metrics_log_period) == std::cv_status::no_timeout) {
      continue;  // woken for shutdown — loop re-checks the flag
    }
    if (config_.legacy_log) {
      // Pre-PR-9 one-line text format, kept for one release behind
      // `forecast_serve --log-format legacy`.
      std::printf("%s\n", render_log_line(metrics_, pool_gauges()).c_str());
      std::fflush(stdout);
      continue;
    }
    const PoolGauges pool = pool_gauges();
    obs::Log::instance()
        .info("net", "stats")
        .kv("conns",
            metrics_.connections_opened.load() - metrics_.connections_closed.load())
        .kv("accepted", metrics_.requests_accepted.load())
        .kv("completed", metrics_.requests_completed.load())
        .kv("failed", metrics_.requests_failed.load())
        .kv("shed", metrics_.shed_total())
        .kv("p50_ms", metrics_.latency.quantile(0.50) * 1e3)
        .kv("p99_ms", metrics_.latency.quantile(0.99) * 1e3)
        .kv("queue", pool.queue_depth)
        .kv("cache_hits", pool.cache_hits)
        .kv("version", pool.model_version)
        .kv("stalls", watchdog_->stalls());
  }
}

PoolGauges NetServer::pool_gauges() const {
  const PoolStats stats = pool_->stats();
  PoolGauges g;
  g.replicas = pool_->replicas();
  g.queue_depth = stats.queue_depth;
  g.max_queue_depth = stats.max_replica_depth;
  g.cache_hits = stats.cache_hits;
  g.cache_requests = stats.cache_requests;
  g.batches = stats.serve.batches;
  g.model_samples = stats.serve.model_samples;
  g.model_version = stats.model_version;
  return g;
}

std::string NetServer::metrics_text() {
  // Legacy flat listing first (the stable scrape surface clients grep), then
  // the registry's Prometheus exposition for everything the rest of the
  // process recorded (gemm_*, serve_*, train_*). The net_* instruments are
  // filtered out of the second block — they already appear above.
  std::string text = render_text(metrics_, pool_gauges());
  text += obs::MetricsRegistry::global().render_prometheus(
      [](const std::string& name) { return name.rfind("net_", 0) != 0; });
  return text;
}

std::uint64_t NetServer::swap_checkpoint(const std::string& path) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  const core::Pix2PixConfig incoming = core::Pix2Pix::peek_config(path);
  const core::Pix2PixConfig& serving =
      pool_->replica(0).registry().current().model->config();
  PP_CHECK_MSG(incoming.generator.image_size == serving.generator.image_size &&
                   incoming.generator.in_channels == serving.generator.in_channels &&
                   incoming.generator.out_channels == serving.generator.out_channels,
               "checkpoint " << path << " architecture does not match the serving model ("
                             << incoming.generator.image_size << "px "
                             << incoming.generator.in_channels << "->"
                             << incoming.generator.out_channels << " vs "
                             << serving.generator.image_size << "px "
                             << serving.generator.in_channels << "->"
                             << serving.generator.out_channels << ")");
  const std::uint64_t version = pool_->hot_swap(
      [&] {
        auto model = std::make_shared<core::CongestionForecaster>(incoming);
        model->load(path);
        return model;
      },
      path);
  metrics_.hot_swaps.fetch_add(1, std::memory_order_relaxed);
  obs::Log::instance()
      .info("net", "hot_swap")
      .kv("checkpoint", path)
      .kv("version", version);
  obs::FlightRecorder::record(obs::EventKind::kSwap, 0, path.c_str(),
                              static_cast<std::int64_t>(version), 0);
  return version;
}

void NetServer::shutdown() {
  if (shut_down_.exchange(true)) return;

  obs::Log::instance()
      .info("net", "drain")
      .kv("accepted", metrics_.requests_accepted.load())
      .kv("completed", metrics_.requests_completed.load());
  obs::FlightRecorder::record(obs::EventKind::kDrain, 0, "net server drain",
                              static_cast<std::int64_t>(metrics_.requests_accepted.load()),
                              0);

  // 1. Stop intake: close the listener (unblocks accept) and wake the logger.
  ::shutdown(listen_fd_, SHUT_RDWR);
  close_fd(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_cv_.notify_all();
  }
  if (logger_.joinable()) logger_.join();

  // 2. Half-close every connection: readers see EOF, writers drain what was
  // accepted. Destroying the Connection joins its threads.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& conn : connections_) conn->stop();
    connections_.clear();
  }

  // 3. Drain the replicas (everything admitted has already resolved — the
  // writers waited on their futures — so this mostly joins workers).
  pool_->shutdown();

  // 4. One last tick so the final window reflects the drained traffic, then
  // stop the SLO ticker and the watchdog.
  if (slo_monitor_) {
    slo_monitor_->tick();
    slo_monitor_->stop();
  }
  if (watchdog_) watchdog_->stop();
}

}  // namespace paintplace::net
