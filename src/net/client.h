// Blocking client for the PPN1 forecast wire protocol.
//
// One TCP connection with a send side and a framed receive side. Two usage
// styles:
//   * synchronous — forecast()/metrics_text()/swap() send one request and
//     wait for its response (simple callers, tests);
//   * pipelined — send_* to queue many requests on the socket, then
//     read_frame()/read_forecast_response() to collect responses in order
//     (swarm clients, benches; this is what fills server micro-batches).
// The client is not thread-safe; give each swarm worker its own connection —
// that is also what the server's per-client fairness cap meters.
#pragma once

#include <cstdint>
#include <string>

#include "net/wire.h"

namespace paintplace::net {

class Client {
 public:
  /// Connects (IPv4 dotted quad or "localhost"). Throws CheckError on
  /// connection failure.
  Client(const std::string& host, std::uint16_t port,
         std::size_t max_payload = kDefaultMaxPayload);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- Pipelined API --------------------------------------------------------
  void send_forecast(std::uint64_t request_id, const nn::Tensor& input01,
                     bool want_heatmap = false);
  void send_metrics_request(std::uint64_t request_id);
  void send_swap_request(std::uint64_t request_id, const std::string& checkpoint_path);

  /// Next frame from the server. Throws WireError on a malformed stream and
  /// CheckError when the connection closed mid-frame.
  Frame read_frame();
  /// read_frame() + decode, rejecting non-forecast frames.
  ForecastResponse read_forecast_response();

  // ---- Synchronous conveniences ---------------------------------------------
  ForecastResponse forecast(const nn::Tensor& input01, bool want_heatmap = false);
  std::string metrics_text();
  SwapResponse swap(const std::string& checkpoint_path);

  void close();
  bool closed() const { return fd_ < 0; }

 private:
  void send_bytes(const std::vector<std::uint8_t>& bytes);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  FrameReader reader_;
};

}  // namespace paintplace::net
