// Blocking client for the PPN1 forecast wire protocol.
//
// One TCP connection with a send side and a framed receive side. Two usage
// styles:
//   * synchronous — forecast()/metrics_text()/swap() send one request and
//     wait for its response (simple callers, tests);
//   * pipelined — send_* to queue many requests on the socket, then
//     read_frame()/read_forecast_response() to collect responses in order
//     (swarm clients, benches; this is what fills server micro-batches).
// The client is not thread-safe; give each swarm worker its own connection —
// that is also what the server's per-client fairness cap meters.
//
// Connection establishment retries with bounded exponential backoff (see
// RetryPolicy) — placement tools outlive server restarts, so the client
// rides over a brief kill/restart instead of failing its run. reconnect()
// re-runs the same loop on an established client whose peer went away.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/wire.h"

namespace paintplace::net {

/// Bounded exponential backoff for connect()/reconnect(). Attempt k sleeps
/// initial_backoff * multiplier^k, capped at max_backoff, each delay
/// uniformly jittered by ±jitter so a swarm restarting against one server
/// does not reconnect in lockstep. max_retries = 0 means a single attempt.
struct RetryPolicy {
  int max_retries = 0;
  std::chrono::milliseconds initial_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  double multiplier = 2.0;
  double jitter = 0.2;  ///< fraction of the delay, in [0,1]
};

/// Connection establishment failed after every allowed attempt.
class ConnectError : public std::runtime_error {
 public:
  ConnectError(const std::string& what, int attempts)
      : std::runtime_error(what), attempts_(attempts) {}

  /// Connect attempts made (retries + 1).
  int attempts() const { return attempts_; }

 private:
  int attempts_;
};

class Client {
 public:
  /// Connects (IPv4 dotted quad or "localhost"), retrying per `retry`.
  /// Throws ConnectError when every attempt fails.
  Client(const std::string& host, std::uint16_t port,
         std::size_t max_payload = kDefaultMaxPayload, RetryPolicy retry = RetryPolicy{});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Drops the current socket (if any) and re-runs the connect loop with the
  /// construction-time policy. Pending pipelined responses are lost; the
  /// frame reassembly buffer is reset. Throws ConnectError on failure.
  void reconnect();

  // ---- Pipelined API --------------------------------------------------------
  void send_forecast(std::uint64_t request_id, const nn::Tensor& input01,
                     bool want_heatmap = false);
  void send_metrics_request(std::uint64_t request_id);
  void send_swap_request(std::uint64_t request_id, const std::string& checkpoint_path);
  void send_health_request(std::uint64_t request_id);

  /// Next frame from the server. Throws WireError on a malformed stream and
  /// CheckError when the connection closed mid-frame.
  Frame read_frame();
  /// read_frame() + decode, rejecting non-forecast frames.
  ForecastResponse read_forecast_response();

  // ---- Synchronous conveniences ---------------------------------------------
  ForecastResponse forecast(const nn::Tensor& input01, bool want_heatmap = false);
  std::string metrics_text();
  SwapResponse swap(const std::string& checkpoint_path);
  /// Health probe: build identity, uptime, per-replica depths, SLO state.
  HealthInfo health();

  void close();
  bool closed() const { return fd_ < 0; }

 private:
  void connect_with_retry();
  void send_bytes(const std::vector<std::uint8_t>& bytes);

  std::string host_;
  std::uint16_t port_ = 0;
  std::size_t max_payload_ = kDefaultMaxPayload;
  RetryPolicy retry_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  FrameReader reader_;
};

}  // namespace paintplace::net
