#include "net/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace paintplace::net {

namespace {

/// Bucket b covers [2^b, 2^(b+1)) microseconds; bucket 0 also absorbs
/// sub-microsecond samples, the last bucket absorbs overflow.
int bucket_of(double seconds) {
  const double micros = seconds * 1e6;
  if (micros < 1.0) return 0;
  const int b = static_cast<int>(std::log2(micros));
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

double bucket_lower_micros(int b) { return b == 0 ? 0.0 : std::exp2(b); }
double bucket_upper_micros(int b) { return std::exp2(b + 1); }

}  // namespace

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  buckets_[static_cast<std::size_t>(bucket_of(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(static_cast<std::uint64_t>(seconds * 1e6),
                          std::memory_order_relaxed);
}

double LatencyHistogram::total_seconds() const {
  return static_cast<double>(total_micros_.load(std::memory_order_relaxed)) * 1e-6;
}

double LatencyHistogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double in_bucket =
        static_cast<double>(buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      const double frac = in_bucket == 0.0 ? 0.0 : (target - seen) / in_bucket;
      const double lo = bucket_lower_micros(b), hi = bucket_upper_micros(b);
      return (lo + frac * (hi - lo)) * 1e-6;
    }
    seen += in_bucket;
  }
  return bucket_upper_micros(kBuckets - 1) * 1e-6;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_micros_.store(0, std::memory_order_relaxed);
}

std::string render_text(const Metrics& m, const PoolGauges& pool) {
  const std::uint64_t n = m.latency.count();
  const double mean_ms = n == 0 ? 0.0 : m.latency.total_seconds() / static_cast<double>(n) * 1e3;
  const double hit_rate = pool.cache_requests == 0
                              ? 0.0
                              : static_cast<double>(pool.cache_hits) /
                                    static_cast<double>(pool.cache_requests);
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "net_connections_opened %llu\n"
      "net_connections_closed %llu\n"
      "net_requests_accepted %llu\n"
      "net_requests_completed %llu\n"
      "net_requests_failed %llu\n"
      "net_shed_queue_full %llu\n"
      "net_shed_client_cap %llu\n"
      "net_protocol_errors %llu\n"
      "net_metrics_requests %llu\n"
      "net_hot_swaps %llu\n"
      "net_latency_count %llu\n"
      "net_latency_mean_ms %.3f\n"
      "net_latency_p50_ms %.3f\n"
      "net_latency_p99_ms %.3f\n"
      "pool_replicas %d\n"
      "pool_queue_depth %llu\n"
      "pool_max_replica_depth %llu\n"
      "pool_cache_hit_rate %.4f\n"
      "pool_cache_hits %llu\n"
      "pool_batches %llu\n"
      "pool_model_samples %llu\n"
      "pool_model_version %llu\n",
      static_cast<unsigned long long>(m.connections_opened.load()),
      static_cast<unsigned long long>(m.connections_closed.load()),
      static_cast<unsigned long long>(m.requests_accepted.load()),
      static_cast<unsigned long long>(m.requests_completed.load()),
      static_cast<unsigned long long>(m.requests_failed.load()),
      static_cast<unsigned long long>(m.shed_queue_full.load()),
      static_cast<unsigned long long>(m.shed_client_cap.load()),
      static_cast<unsigned long long>(m.protocol_errors.load()),
      static_cast<unsigned long long>(m.metrics_requests.load()),
      static_cast<unsigned long long>(m.hot_swaps.load()),
      static_cast<unsigned long long>(n), mean_ms, m.latency.quantile(0.50) * 1e3,
      m.latency.quantile(0.99) * 1e3, pool.replicas,
      static_cast<unsigned long long>(pool.queue_depth),
      static_cast<unsigned long long>(pool.max_queue_depth), hit_rate,
      static_cast<unsigned long long>(pool.cache_hits),
      static_cast<unsigned long long>(pool.batches),
      static_cast<unsigned long long>(pool.model_samples),
      static_cast<unsigned long long>(pool.model_version));
  return buf;
}

std::string render_log_line(const Metrics& m, const PoolGauges& pool) {
  const double hit_rate = pool.cache_requests == 0
                              ? 0.0
                              : static_cast<double>(pool.cache_hits) /
                                    static_cast<double>(pool.cache_requests);
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "[net] v%llu conns=%llu done=%llu shed=%llu perr=%llu depth=%llu "
                "p50=%.2fms p99=%.2fms hit=%.0f%%",
                static_cast<unsigned long long>(pool.model_version),
                static_cast<unsigned long long>(m.connections_opened.load() -
                                                m.connections_closed.load()),
                static_cast<unsigned long long>(m.requests_completed.load()),
                static_cast<unsigned long long>(m.shed_total()),
                static_cast<unsigned long long>(m.protocol_errors.load()),
                static_cast<unsigned long long>(pool.queue_depth),
                m.latency.quantile(0.50) * 1e3, m.latency.quantile(0.99) * 1e3,
                100.0 * hit_rate);
  return buf;
}

}  // namespace paintplace::net
