#include "net/metrics.h"

#include <cstdio>

namespace paintplace::net {

Metrics::Metrics(obs::MetricsRegistry& registry)
    : connections_opened(registry.counter("net_connections_opened",
                                          "TCP connections accepted")),
      connections_closed(registry.counter("net_connections_closed",
                                          "TCP connections torn down")),
      idle_closed(registry.counter("net_idle_closed",
                                   "connections closed by the idle deadline")),
      requests_accepted(registry.counter("net_requests_accepted",
                                         "forecast requests admitted to a replica")),
      requests_completed(registry.counter("net_requests_completed",
                                          "responses written, any status")),
      requests_failed(registry.counter("net_requests_failed",
                                       "responses written with kFailed")),
      shed_queue_full(registry.counter("net_shed_queue_full",
                                       "requests shed: replica in-flight bound")),
      shed_client_cap(registry.counter("net_shed_client_cap",
                                       "requests shed: per-client fairness cap")),
      protocol_errors(registry.counter("net_protocol_errors",
                                       "malformed or out-of-place frames")),
      metrics_requests(registry.counter("net_metrics_requests",
                                        "kMetricsRequest frames served")),
      hot_swaps(registry.counter("net_hot_swaps", "checkpoint hot swaps published")),
      latency(registry.histogram("net_request_latency_seconds",
                                 "admission to response-written")) {
  reset();
}

void Metrics::reset() {
  connections_opened.store(0);
  connections_closed.store(0);
  idle_closed.store(0);
  requests_accepted.store(0);
  requests_completed.store(0);
  requests_failed.store(0);
  shed_queue_full.store(0);
  shed_client_cap.store(0);
  protocol_errors.store(0);
  metrics_requests.store(0);
  hot_swaps.store(0);
  latency.reset();
}

std::string render_text(const Metrics& m, const PoolGauges& pool) {
  const std::uint64_t n = m.latency.count();
  const double mean_ms = n == 0 ? 0.0 : m.latency.sum() / static_cast<double>(n) * 1e3;
  const double hit_rate = pool.cache_requests == 0
                              ? 0.0
                              : static_cast<double>(pool.cache_hits) /
                                    static_cast<double>(pool.cache_requests);
  char buf[1600];
  std::snprintf(
      buf, sizeof(buf),
      "net_connections_opened %llu\n"
      "net_connections_closed %llu\n"
      "net_idle_closed %llu\n"
      "net_requests_accepted %llu\n"
      "net_requests_completed %llu\n"
      "net_requests_failed %llu\n"
      "net_shed_queue_full %llu\n"
      "net_shed_client_cap %llu\n"
      "net_protocol_errors %llu\n"
      "net_metrics_requests %llu\n"
      "net_hot_swaps %llu\n"
      "net_latency_count %llu\n"
      "net_latency_mean_ms %.3f\n"
      "net_latency_p50_ms %.3f\n"
      "net_latency_p99_ms %.3f\n"
      "pool_replicas %d\n"
      "pool_queue_depth %llu\n"
      "pool_max_replica_depth %llu\n"
      "pool_cache_hit_rate %.4f\n"
      "pool_cache_hits %llu\n"
      "pool_batches %llu\n"
      "pool_model_samples %llu\n"
      "pool_model_version %llu\n",
      static_cast<unsigned long long>(m.connections_opened.load()),
      static_cast<unsigned long long>(m.connections_closed.load()),
      static_cast<unsigned long long>(m.idle_closed.load()),
      static_cast<unsigned long long>(m.requests_accepted.load()),
      static_cast<unsigned long long>(m.requests_completed.load()),
      static_cast<unsigned long long>(m.requests_failed.load()),
      static_cast<unsigned long long>(m.shed_queue_full.load()),
      static_cast<unsigned long long>(m.shed_client_cap.load()),
      static_cast<unsigned long long>(m.protocol_errors.load()),
      static_cast<unsigned long long>(m.metrics_requests.load()),
      static_cast<unsigned long long>(m.hot_swaps.load()),
      static_cast<unsigned long long>(n), mean_ms, m.latency.quantile(0.50) * 1e3,
      m.latency.quantile(0.99) * 1e3, pool.replicas,
      static_cast<unsigned long long>(pool.queue_depth),
      static_cast<unsigned long long>(pool.max_queue_depth), hit_rate,
      static_cast<unsigned long long>(pool.cache_hits),
      static_cast<unsigned long long>(pool.batches),
      static_cast<unsigned long long>(pool.model_samples),
      static_cast<unsigned long long>(pool.model_version));
  return buf;
}

std::string render_log_line(const Metrics& m, const PoolGauges& pool) {
  const double hit_rate = pool.cache_requests == 0
                              ? 0.0
                              : static_cast<double>(pool.cache_hits) /
                                    static_cast<double>(pool.cache_requests);
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "[net] v%llu conns=%llu done=%llu shed=%llu perr=%llu depth=%llu "
                "p50=%.2fms p99=%.2fms hit=%.0f%%",
                static_cast<unsigned long long>(pool.model_version),
                static_cast<unsigned long long>(m.connections_opened.load() -
                                                m.connections_closed.load()),
                static_cast<unsigned long long>(m.requests_completed.load()),
                static_cast<unsigned long long>(m.shed_total()),
                static_cast<unsigned long long>(m.protocol_errors.load()),
                static_cast<unsigned long long>(pool.queue_depth),
                m.latency.quantile(0.50) * 1e3, m.latency.quantile(0.99) * 1e3,
                100.0 * hit_rate);
  return buf;
}

}  // namespace paintplace::net
