// NetServer — the TCP front door of the forecast service.
//
// One acceptor thread plus two threads per connection (reader and writer)
// in front of a ReplicaPool. The reader decodes PPN1 frames (see wire.h)
// and dispatches: forecast requests go through admission control into the
// sharded replica pool; shed decisions, metrics scrapes and protocol errors
// are answered immediately. The writer delivers responses in request order
// per connection, recording accept-to-written latency into net::Metrics.
//
// Lifecycle: shutdown() stops the acceptor, half-closes every connection
// (readers see EOF, writers drain their pending responses), then drains the
// replica pool — every accepted request is answered before the server
// returns. Hot-swap (swap_checkpoint / an in-band kSwapRequest when
// `allow_swap`) publishes on all replicas without pausing intake.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/metrics.h"
#include "net/replica_pool.h"
#include "net/wire.h"
#include "obs/slo.h"
#include "obs/watchdog.h"

namespace paintplace::net {

struct NetServerConfig {
  /// Address to bind; loopback by default (this is a trusted-network
  /// service — there is no auth on the wire protocol).
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port (see NetServer::port)
  int backlog = 64;
  std::size_t max_payload = kDefaultMaxPayload;
  /// Accept in-band kSwapRequest frames (checkpoint path -> hot swap). Off
  /// by default: a client naming an arbitrary filesystem path is a trusted
  /// operation.
  bool allow_swap = false;
  /// Print a one-line metrics summary this often (0 = never).
  std::chrono::milliseconds metrics_log_period{0};
  /// Close a connection whose socket has been silent this long (0 = never).
  /// Each close increments net_idle_closed and drains through the normal
  /// half-close path, so admitted requests are still answered first.
  std::chrono::milliseconds idle_timeout{0};
  ReplicaPoolConfig pool;
  /// Rolling-window SLO objectives; the monitor runs for the server's
  /// lifetime and feeds the kHealthResponse frame and slo_* gauges.
  obs::SloConfig slo;
  /// Stall watchdog (stall_ms = 0 disables). When active, every admitted
  /// request is aged admission-to-completion; requests past the threshold
  /// file a structured stall report and force-retain their trace.
  obs::WatchdogConfig watchdog;
  /// Emit the pre-PR-9 one-line text format from the periodic metrics
  /// logger instead of the structured obs::Log line (one-release fallback;
  /// forecast_serve --log-format legacy).
  bool legacy_log = false;
};

class NetServer {
 public:
  /// Binds, listens, and starts accepting. `make_model` builds one model
  /// instance per replica (and per replica again on each hot swap).
  NetServer(const NetServerConfig& config, const ModelFactory& make_model);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Actual bound port (the ephemeral one when config.port was 0).
  std::uint16_t port() const { return port_; }

  /// Hot-swaps a checkpoint across all replicas (the programmatic twin of
  /// the in-band kSwapRequest). Validates that the checkpoint's architecture
  /// matches the serving one. Returns the new model version.
  std::uint64_t swap_checkpoint(const std::string& path);

  /// Stops intake, drains connections and replicas, joins all threads.
  /// Idempotent; also runs on destruction.
  void shutdown();

  Metrics& metrics() { return metrics_; }
  ReplicaPool& pool() { return *pool_; }
  obs::SloMonitor& slo_monitor() { return *slo_monitor_; }
  obs::Watchdog& watchdog() { return *watchdog_; }
  PoolGauges pool_gauges() const;

 private:
  struct Connection;

  void accept_loop();
  void log_loop();
  void reap_finished_connections();
  std::string metrics_text();

  NetServerConfig config_;
  std::unique_ptr<ReplicaPool> pool_;
  Metrics metrics_;
  std::unique_ptr<obs::SloMonitor> slo_monitor_;
  std::unique_ptr<obs::Watchdog> watchdog_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> shut_down_{false};
  std::thread acceptor_;
  std::thread logger_;
  std::mutex log_mu_;
  std::condition_variable log_cv_;

  std::mutex connections_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_client_id_ = 1;

  std::mutex swap_mu_;  // serializes hot swaps (in-band and programmatic)
};

}  // namespace paintplace::net
