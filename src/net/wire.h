// Wire protocol for the networked forecast front-end.
//
// Length-prefixed binary frames, little-endian host byte order (the same
// assumption nn/serialize.h makes). Every frame is
//
//   u32 magic 'P''P''N''1' | u8 type | u8 flags | u16 detail |
//   u64 request_id | u32 payload_len | payload bytes
//
// so a reader always knows how many bytes the current frame still needs —
// partial reads reassemble trivially and a corrupt stream is detected at
// the next header. Payload layouts per type are documented on the encode
// functions below; docs/serving.md has the client-facing reference.
//
// The codec is pure in-memory (byte vectors in, byte vectors out): the
// socket layer, the tests, and any future transport share exactly the same
// framing code.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace paintplace::net {

using paintplace::Index;

/// Malformed frame or payload. Distinct from CheckError: a WireError is the
/// remote peer's fault (or line noise), never a local invariant violation,
/// so servers respond/close instead of failing an assertion.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

constexpr std::uint32_t kWireMagic = 0x314E5050u;  // "PPN1" little-endian
constexpr std::size_t kFrameHeaderBytes = 20;
/// Hard ceiling a reader enforces on payload_len before buffering a frame —
/// large enough for a 512x512x8-channel fp32 placement tensor, small enough
/// that a garbage length cannot balloon memory.
constexpr std::size_t kDefaultMaxPayload = std::size_t{16} << 20;

enum class FrameType : std::uint8_t {
  kForecastRequest = 1,   ///< placement tensor -> forecast
  kForecastResponse = 2,  ///< status + score (+ heat map when requested)
  kMetricsRequest = 3,    ///< empty payload
  kMetricsResponse = 4,   ///< text exposition of net::Metrics
  kSwapRequest = 5,       ///< checkpoint path to hot-swap (if server allows)
  kSwapResponse = 6,      ///< status + new model version
  kError = 7,             ///< human-readable protocol error, connection closes
  kHealthRequest = 8,     ///< empty payload
  kHealthResponse = 9,    ///< build info, uptime, replica depths, SLO state
};

/// Highest FrameType value — the frame reader's type-range bound.
constexpr std::uint8_t kMaxFrameType = static_cast<std::uint8_t>(FrameType::kHealthResponse);

/// ForecastRequest flag bits.
constexpr std::uint8_t kFlagWantHeatmap = 0x1;  ///< else the response is score-only

/// ForecastResponse / SwapResponse status byte.
enum class Status : std::uint8_t {
  kOk = 0,
  kShed = 1,    ///< admission control refused the request (detail = ShedReason)
  kFailed = 2,  ///< accepted but the forecast failed; payload carries the message
};

/// ForecastResponse `detail` values when status == kShed.
enum class ShedReason : std::uint16_t {
  kNone = 0,
  kReplicaQueueFull = 1,  ///< the target replica's in-flight bound was hit
  kClientCapExceeded = 2, ///< this client exceeded its in-flight fairness cap
};

const char* to_string(ShedReason reason);

/// One decoded frame: header fields plus the raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::uint8_t flags = 0;
  std::uint16_t detail = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

// ---- Typed payloads ---------------------------------------------------------

/// kForecastRequest payload: u32 channels | u32 height | u32 width |
/// f32 data[channels*height*width]. The tensor is the (1,C,H,W) input in
/// [0,1] the in-process ForecastServer::submit takes.
struct ForecastRequest {
  std::uint64_t request_id = 0;
  bool want_heatmap = false;
  nn::Tensor input;  ///< (1,C,H,W)
};

/// kForecastResponse payload: f64 congestion_score | u64 model_version |
/// u8 from_cache | u8 reserved x3 | u32 channels | u32 height | u32 width |
/// f32 data (dims all zero when the heat map was not requested or on
/// non-kOk status; on kFailed the dims are zero and the trailing bytes are
/// the error message instead).
struct ForecastResponse {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  ShedReason shed_reason = ShedReason::kNone;
  double congestion_score = 0.0;
  std::uint64_t model_version = 0;
  bool from_cache = false;
  nn::Tensor heatmap;  ///< empty unless requested and status == kOk
  std::string error;   ///< set when status == kFailed
};

/// kSwapResponse payload: u64 new_version | error text (empty on success).
struct SwapResponse {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::uint64_t new_version = 0;
  std::string error;
};

/// kHealthResponse payload:
///   f64 uptime_seconds | u64 model_version | u8 slo_state | u8 native_kernel |
///   u16 reserved | f64 window_p99_s | f64 window_error_rate |
///   f64 latency_burn_rate | f64 error_burn_rate | u64 window_requests |
///   u64 watchdog_stalls | f64 oldest_request_ms |
///   u32 n_replicas | u32 replica_depth[n] |
///   str git_sha | str compiler | str backend   (str = u16 length + bytes)
/// A health probe answers "what is running and is it meeting its SLOs"
/// without parsing the full metrics exposition — see obs/slo.h for the
/// burn-rate semantics and obs/build_info.h for the identity fields.
struct HealthInfo {
  std::uint64_t request_id = 0;
  double uptime_seconds = 0.0;
  std::uint64_t model_version = 0;
  std::uint8_t slo_state = 0;  ///< obs::SloState: 0 healthy / 1 warning / 2 breached
  bool native_kernel = false;
  double window_p99_s = 0.0;
  double window_error_rate = 0.0;
  double latency_burn_rate = 0.0;
  double error_burn_rate = 0.0;
  std::uint64_t window_requests = 0;
  std::uint64_t watchdog_stalls = 0;   ///< stall reports filed (obs::Watchdog)
  double oldest_request_ms = 0.0;      ///< oldest in-flight request at last tick
  std::vector<std::uint32_t> replica_depths;  ///< admitted-but-unanswered, per replica
  std::string git_sha;
  std::string compiler;
  std::string backend;
};

// ---- Encoding ---------------------------------------------------------------

std::vector<std::uint8_t> encode_forecast_request(const ForecastRequest& req);
std::vector<std::uint8_t> encode_forecast_response(const ForecastResponse& resp);
std::vector<std::uint8_t> encode_metrics_request(std::uint64_t request_id);
std::vector<std::uint8_t> encode_metrics_response(std::uint64_t request_id,
                                                  const std::string& text);
std::vector<std::uint8_t> encode_swap_request(std::uint64_t request_id,
                                              const std::string& checkpoint_path);
std::vector<std::uint8_t> encode_swap_response(const SwapResponse& resp);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id, const std::string& message);
std::vector<std::uint8_t> encode_health_request(std::uint64_t request_id);
std::vector<std::uint8_t> encode_health_response(const HealthInfo& info);

// ---- Decoding ---------------------------------------------------------------

/// Throw WireError unless the payload layout matches the frame type exactly
/// (undersized, oversized, or dimension-inconsistent payloads all reject).
ForecastRequest decode_forecast_request(const Frame& frame);
ForecastResponse decode_forecast_response(const Frame& frame);
SwapResponse decode_swap_response(const Frame& frame);
HealthInfo decode_health_response(const Frame& frame);
/// kSwapRequest / kMetricsResponse / kError payloads are plain text.
std::string decode_text(const Frame& frame);

/// Incremental frame reassembler for a byte stream. Feed whatever the
/// transport produced — single bytes, half frames, three frames at once —
/// and poll next() for completed frames. Header validation (magic, type,
/// payload bound) happens as soon as the header is complete, so garbage is
/// rejected after 20 bytes, not after a max-payload-sized buffer fills.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw transport bytes (never throws; validation happens in next).
  void feed(const std::uint8_t* data, std::size_t size);

  /// Returns the next completed frame, or nullopt until more bytes arrive.
  /// Throws WireError on a malformed header (bad magic, unknown type, or an
  /// over-limit payload length); after a throw the stream is unusable —
  /// framing is lost for good and the connection should close.
  std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
};

}  // namespace paintplace::net
