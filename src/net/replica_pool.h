// ReplicaPool — N sharded ForecastServer replicas behind admission control.
//
// Scale-out for the in-process serving engine: each replica owns an
// independent model instance (forward passes are stateful, so replicas never
// share one), its own micro-batch queue, and its own result cache. Requests
// shard by the placement tensor's content hash, so resubmissions of the same
// placement always land on the same replica and its cache locality survives
// scale-out — the property a round-robin front-end would destroy.
//
// Admission control happens here, before a request touches a replica:
//   * per-replica in-flight bound — a replica that cannot keep up sheds new
//     work instead of growing an unbounded queue (tail latency stays sane
//     under overload, and the shed response is immediate);
//   * per-client in-flight fairness cap — one client pipelining thousands of
//     requests cannot starve the others.
// Both report a typed ShedReason the wire layer forwards to the client.
//
// hot_swap() publishes a fresh model instance on every replica; in-flight
// batches finish on the model they started with (ForecastServer semantics),
// so accepted requests never fail across a swap.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "serve/forecast_server.h"

namespace paintplace::net {

/// Builds one independent forecaster instance per call — the pool needs
/// `replicas` of them at construction and per hot_swap (models are stateful;
/// replicas cannot share one).
using ModelFactory = std::function<std::shared_ptr<core::CongestionForecaster>()>;

struct ReplicaPoolConfig {
  int replicas = 2;
  serve::ServeConfig serve;  ///< applied to every replica
  /// Admitted-but-unanswered bound per replica; above it new requests shed
  /// with kReplicaQueueFull. 0 disables the bound.
  Index max_replica_depth = 64;
  /// Per-client in-flight cap (kClientCapExceeded above it). 0 disables.
  Index max_client_inflight = 16;
};

/// Aggregated view across replicas for metrics and benches.
struct PoolStats {
  serve::ServeStats serve;           ///< summed over replicas
  std::uint64_t cache_hits = 0;      ///< summed ResultCache hits
  std::uint64_t cache_requests = 0;  ///< summed submits
  std::uint64_t queue_depth = 0;     ///< current admitted-but-unreleased total
  std::uint64_t max_replica_depth = 0;  ///< deepest replica right now
  std::uint64_t model_version = 0;   ///< current version (identical across replicas)
};

/// Outcome of ReplicaPool::submit. When admitted, `future` resolves with the
/// forecast and `slot` holds the admission slots (replica depth + client
/// in-flight); drop it once the response has been delivered — that is the
/// release admission control meters on.
struct Admission {
  ShedReason shed = ShedReason::kNone;
  int replica = -1;
  std::future<serve::ForecastResult> future;
  std::shared_ptr<void> slot;

  bool admitted() const { return shed == ShedReason::kNone; }
};

class ReplicaPool {
 public:
  ReplicaPool(const ReplicaPoolConfig& config, const ModelFactory& make_model);
  ~ReplicaPool();

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Shard of a given placement key (stable for the pool's lifetime).
  int replica_of(const serve::TensorKey& key) const;

  /// Admission check + shard + submit. `client_id` scopes the fairness cap
  /// (the net layer passes one id per connection). Throws CheckError on a
  /// bad input shape — that is the caller's bug, not load.
  Admission submit(std::uint64_t client_id, const nn::Tensor& input01);

  /// Publishes a fresh model on every replica. Returns the new (common)
  /// version. Caches clear per ForecastServer::publish_model semantics.
  std::uint64_t hot_swap(const ModelFactory& make_model, const std::string& label);

  /// Stops intake and drains every replica: all admitted futures resolve.
  void shutdown();

  PoolStats stats() const;
  /// Current admitted-but-unreleased depth per replica (health reporting).
  std::vector<Index> replica_depths() const;
  int replicas() const { return static_cast<int>(replicas_.size()); }
  serve::ForecastServer& replica(int i) { return *replicas_.at(static_cast<std::size_t>(i)); }

 private:
  ReplicaPoolConfig config_;
  std::vector<std::unique_ptr<serve::ForecastServer>> replicas_;

  // Admission bookkeeping. One mutex across all replicas is fine: the
  // critical section is a few integer ops against ~ms-scale forwards.
  mutable std::mutex admission_mu_;
  std::vector<Index> replica_depth_;
  std::unordered_map<std::uint64_t, Index> client_inflight_;
  bool shut_down_ = false;

  void release(int replica, std::uint64_t client_id);
};

}  // namespace paintplace::net
