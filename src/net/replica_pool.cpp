#include "net/replica_pool.h"

#include <algorithm>

#include "obs/trace.h"

namespace paintplace::net {

ReplicaPool::ReplicaPool(const ReplicaPoolConfig& config, const ModelFactory& make_model)
    : config_(config) {
  PP_CHECK_MSG(config.replicas >= 1, "ReplicaPool needs at least one replica");
  PP_CHECK_MSG(config.max_replica_depth >= 0 && config.max_client_inflight >= 0,
               "ReplicaPool admission bounds must be >= 0");
  replicas_.reserve(static_cast<std::size_t>(config.replicas));
  replica_depth_.assign(static_cast<std::size_t>(config.replicas), 0);
  for (int r = 0; r < config.replicas; ++r) {
    auto model = make_model();
    PP_CHECK_MSG(model != nullptr, "ReplicaPool model factory returned null");
    replicas_.push_back(std::make_unique<serve::ForecastServer>(
        config.serve, std::move(model), "replica-" + std::to_string(r) + "-initial"));
  }
}

ReplicaPool::~ReplicaPool() { shutdown(); }

int ReplicaPool::replica_of(const serve::TensorKey& key) const {
  return static_cast<int>(serve::TensorKeyHash{}(key) % replicas_.size());
}

Admission ReplicaPool::submit(std::uint64_t client_id, const nn::Tensor& input01) {
  obs::Span span("pool.dispatch", "pool");
  Admission adm;
  adm.replica = replica_of(serve::TensorKey::of(input01));
  if (span.active()) span.arg("replica", static_cast<std::int64_t>(adm.replica));

  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    PP_CHECK_MSG(!shut_down_, "ReplicaPool::submit after shutdown");
    if (config_.max_replica_depth > 0 &&
        replica_depth_[static_cast<std::size_t>(adm.replica)] >= config_.max_replica_depth) {
      adm.shed = ShedReason::kReplicaQueueFull;
      if (span.active()) span.arg("shed", to_string(adm.shed));
      return adm;
    }
    Index& inflight = client_inflight_[client_id];
    if (config_.max_client_inflight > 0 && inflight >= config_.max_client_inflight) {
      adm.shed = ShedReason::kClientCapExceeded;
      if (span.active()) span.arg("shed", to_string(adm.shed));
      return adm;
    }
    replica_depth_[static_cast<std::size_t>(adm.replica)] += 1;
    inflight += 1;
  }

  // The slot guard releases admission state exactly once, whatever path the
  // response takes (written, dropped on disconnect, or an exception between).
  const int replica = adm.replica;
  adm.slot = std::shared_ptr<void>(nullptr, [this, replica, client_id](void*) {
    release(replica, client_id);
  });

  try {
    adm.future = replicas_[static_cast<std::size_t>(adm.replica)]->submit(input01);
  } catch (...) {
    adm.slot.reset();  // submit never happened — free the slots immediately
    throw;
  }
  return adm;
}

void ReplicaPool::release(int replica, std::uint64_t client_id) {
  std::lock_guard<std::mutex> lock(admission_mu_);
  replica_depth_[static_cast<std::size_t>(replica)] -= 1;
  const auto it = client_inflight_.find(client_id);
  if (it != client_inflight_.end() && --it->second <= 0) client_inflight_.erase(it);
}

std::uint64_t ReplicaPool::hot_swap(const ModelFactory& make_model, const std::string& label) {
  std::uint64_t version = 0;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    auto model = make_model();
    PP_CHECK_MSG(model != nullptr, "ReplicaPool model factory returned null");
    const std::uint64_t v = replicas_[r]->publish_model(std::move(model), label);
    // Versions advance in lockstep because every publish goes through the
    // pool; a divergence means someone published on a replica directly.
    PP_CHECK_MSG(r == 0 || v == version, "replica model versions diverged: " << v
                                             << " vs " << version);
    version = v;
  }
  return version;
}

void ReplicaPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // ForecastServer::shutdown serves every queued request before joining, so
  // all admitted futures resolve — drain, not drop.
  for (auto& replica : replicas_) replica->shutdown();
}

PoolStats ReplicaPool::stats() const {
  PoolStats out;
  for (const auto& replica : replicas_) {
    const serve::ServeStats s = replica->stats();
    out.serve.requests += s.requests;
    out.serve.cache_hits += s.cache_hits;
    out.serve.coalesced += s.coalesced;
    out.serve.batches += s.batches;
    out.serve.model_samples += s.model_samples;
    out.serve.max_batch = std::max(out.serve.max_batch, s.max_batch);
  }
  out.cache_hits = out.serve.cache_hits;
  out.cache_requests = out.serve.requests;
  out.model_version = replicas_.empty() ? 0 : replicas_.front()->registry().current().version;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    for (Index d : replica_depth_) {
      out.queue_depth += static_cast<std::uint64_t>(d);
      out.max_replica_depth =
          std::max(out.max_replica_depth, static_cast<std::uint64_t>(d));
    }
  }
  return out;
}

std::vector<Index> ReplicaPool::replica_depths() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return replica_depth_;
}

}  // namespace paintplace::net
