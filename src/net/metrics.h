// Counters and latency histograms for the networked serving front-end.
//
// Since the obs subsystem landed, this is a typed *view* over the
// process-wide obs::MetricsRegistry rather than a private silo: every
// counter below is registered under its exposition name (net_*), so the
// same instruments appear in the registry's Prometheus exposition alongside
// the serving/GEMM/training metrics. Construction binds (and resets) the
// named instruments — counters read "since this server instance started",
// matching the old semantics; run one NetServer per process if you scrape
// exact counts.
//
// Everything is cheap enough to sit on the request path: counters are
// relaxed atomics, and the histogram records into log-spaced atomic buckets
// (record() is one increment, quantiles are computed at read time). The
// flat `name value` listing in render_text() is the stable scrape surface;
// NetServer::metrics_text() appends the full Prometheus exposition of the
// registry after it.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics_registry.h"

namespace paintplace::net {

/// Log-spaced latency histogram, 1µs..~34s (x2 per bucket). The math moved
/// to obs::Histogram verbatim; the alias keeps the net-layer name.
using LatencyHistogram = obs::Histogram;

/// Monotonic counters for the front-end, bound to (and resetting) the named
/// net_* instruments of a MetricsRegistry. The replica pool and server bump
/// these; individual counters are exact, cross-counter skew is bounded by
/// in-flight requests.
class Metrics {
 public:
  explicit Metrics(obs::MetricsRegistry& registry = obs::MetricsRegistry::global());

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  obs::Counter& connections_opened;
  obs::Counter& connections_closed;
  obs::Counter& idle_closed;         ///< closed by the server's idle deadline
  obs::Counter& requests_accepted;   ///< admitted to a replica
  obs::Counter& requests_completed;  ///< response written, any status
  obs::Counter& requests_failed;     ///< completed with kFailed
  obs::Counter& shed_queue_full;
  obs::Counter& shed_client_cap;
  obs::Counter& protocol_errors;
  obs::Counter& metrics_requests;
  obs::Counter& hot_swaps;

  LatencyHistogram& latency;  ///< admission -> response-written, seconds

  std::uint64_t shed_total() const {
    return shed_queue_full.load() + shed_client_cap.load();
  }

  /// Zeroes every instrument (runs at construction: a new server instance
  /// starts its counts fresh even though the registry persists).
  void reset();
};

/// Point-in-time pool state merged into the exposition by the server.
struct PoolGauges {
  int replicas = 0;
  std::uint64_t queue_depth = 0;     ///< admitted-but-unanswered, all replicas
  std::uint64_t max_queue_depth = 0; ///< deepest single replica right now
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_requests = 0;  ///< total submits seen by the replicas
  std::uint64_t batches = 0;
  std::uint64_t model_samples = 0;
  std::uint64_t model_version = 0;
};

/// `name value` lines, one metric per line (latencies in milliseconds).
std::string render_text(const Metrics& metrics, const PoolGauges& pool);

/// Single-line summary for the periodic server log.
std::string render_log_line(const Metrics& metrics, const PoolGauges& pool);

}  // namespace paintplace::net
