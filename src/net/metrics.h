// Counters and latency histograms for the networked serving front-end.
//
// Everything is cheap enough to sit on the request path: counters are
// relaxed atomics, and the histogram records into log-spaced atomic buckets
// (record() is one increment, quantiles are computed at read time). The
// text exposition is a flat `name value` listing — trivially scrapeable and
// greppable, no format dependencies.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace paintplace::net {

/// Log-spaced latency histogram, 1µs..~34s in quarter-decade-ish steps
/// (x2 per bucket). Thread-safe; record() never blocks.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 26;  // 2^25 µs ≈ 33.5 s, then overflow

  void record(double seconds);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const;

  /// Latency below which fraction `q` (0..1] of recorded samples fall,
  /// linearly interpolated inside the winning bucket. 0 with no samples.
  double quantile(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_micros_{0};
};

/// Monotonic counters for the front-end. The replica pool and server bump
/// these; snapshot() gives a consistent-enough view for logs and the
/// metrics endpoint (individual counters are exact, cross-counter skew is
/// bounded by in-flight requests).
class Metrics {
 public:
  std::atomic<std::uint64_t> connections_opened{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> requests_accepted{0};   ///< admitted to a replica
  std::atomic<std::uint64_t> requests_completed{0};  ///< response written, any status
  std::atomic<std::uint64_t> requests_failed{0};     ///< completed with kFailed
  std::atomic<std::uint64_t> shed_queue_full{0};
  std::atomic<std::uint64_t> shed_client_cap{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> metrics_requests{0};
  std::atomic<std::uint64_t> hot_swaps{0};

  LatencyHistogram latency;  ///< admission -> response-written, seconds

  std::uint64_t shed_total() const {
    return shed_queue_full.load(std::memory_order_relaxed) +
           shed_client_cap.load(std::memory_order_relaxed);
  }
};

/// Point-in-time pool state merged into the exposition by the server.
struct PoolGauges {
  int replicas = 0;
  std::uint64_t queue_depth = 0;     ///< admitted-but-unanswered, all replicas
  std::uint64_t max_queue_depth = 0; ///< deepest single replica right now
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_requests = 0;  ///< total submits seen by the replicas
  std::uint64_t batches = 0;
  std::uint64_t model_samples = 0;
  std::uint64_t model_version = 0;
};

/// `name value` lines, one metric per line (latencies in milliseconds).
std::string render_text(const Metrics& metrics, const PoolGauges& pool);

/// Single-line summary for the periodic server log.
std::string render_log_line(const Metrics& metrics, const PoolGauges& pool);

}  // namespace paintplace::net
