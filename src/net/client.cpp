#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace paintplace::net {

Client::Client(const std::string& host, std::uint16_t port, std::size_t max_payload)
    : reader_(max_payload) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PP_CHECK_MSG(fd_ >= 0, "socket() failed: " << std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    close();
    PP_CHECK_MSG(false, "bad host address " << host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close();
    PP_CHECK_MSG(false, "connect(" << host << ":" << port << ") failed: " << err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_bytes(const std::vector<std::uint8_t>& bytes) {
  PP_CHECK_MSG(fd_ >= 0, "send on a closed client");
  const std::uint8_t* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    PP_CHECK_MSG(n > 0, "send failed: " << (n < 0 ? std::strerror(errno) : "connection closed"));
    data += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

void Client::send_forecast(std::uint64_t request_id, const nn::Tensor& input01,
                           bool want_heatmap) {
  ForecastRequest req;
  req.request_id = request_id;
  req.want_heatmap = want_heatmap;
  req.input = input01;
  send_bytes(encode_forecast_request(req));
}

void Client::send_metrics_request(std::uint64_t request_id) {
  send_bytes(encode_metrics_request(request_id));
}

void Client::send_swap_request(std::uint64_t request_id, const std::string& checkpoint_path) {
  send_bytes(encode_swap_request(request_id, checkpoint_path));
}

Frame Client::read_frame() {
  for (;;) {
    if (std::optional<Frame> frame = reader_.next()) return std::move(*frame);
    std::uint8_t buf[std::size_t{64} << 10];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    PP_CHECK_MSG(n > 0, "connection closed while waiting for a frame ("
                            << reader_.buffered() << " bytes buffered)");
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

ForecastResponse Client::read_forecast_response() {
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    throw WireError("server error: " + decode_text(frame));
  }
  return decode_forecast_response(frame);
}

ForecastResponse Client::forecast(const nn::Tensor& input01, bool want_heatmap) {
  send_forecast(next_id_++, input01, want_heatmap);
  return read_forecast_response();
}

std::string Client::metrics_text() {
  send_metrics_request(next_id_++);
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    throw WireError("server error: " + decode_text(frame));
  }
  if (frame.type != FrameType::kMetricsResponse) {
    throw WireError("expected a metrics response, got frame type " +
                    std::to_string(static_cast<int>(frame.type)));
  }
  return decode_text(frame);
}

SwapResponse Client::swap(const std::string& checkpoint_path) {
  send_swap_request(next_id_++, checkpoint_path);
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    throw WireError("server error: " + decode_text(frame));
  }
  return decode_swap_response(frame);
}

}  // namespace paintplace::net
