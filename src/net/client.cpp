#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>
#include <thread>

#include "common/check.h"

namespace paintplace::net {

namespace {

/// One connect attempt. Returns the connected fd, or -1 with `error` set.
int try_connect(const std::string& host, std::uint16_t port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket() failed: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    error = "bad host address " + host;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error = "connect(" + host + ":" + std::to_string(port) + ") failed: " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::chrono::milliseconds jittered(std::chrono::milliseconds delay, double jitter) {
  if (jitter <= 0.0 || delay.count() <= 0) return delay;
  thread_local std::minstd_rand rng(std::random_device{}());
  std::uniform_real_distribution<double> uni(-jitter, jitter);
  const double scaled = static_cast<double>(delay.count()) * (1.0 + uni(rng));
  return std::chrono::milliseconds(
      scaled < 1.0 ? 1 : static_cast<std::chrono::milliseconds::rep>(scaled));
}

}  // namespace

void Client::connect_with_retry() {
  std::string error;
  std::chrono::milliseconds delay = retry_.initial_backoff;
  const int attempts = retry_.max_retries + 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(jittered(delay, retry_.jitter));
      const double next = static_cast<double>(delay.count()) * retry_.multiplier;
      delay = std::min(
          retry_.max_backoff,
          std::chrono::milliseconds(static_cast<std::chrono::milliseconds::rep>(next)));
    }
    fd_ = try_connect(host_, port_, error);
    if (fd_ >= 0) return;
  }
  throw ConnectError(error + " (after " + std::to_string(attempts) + " attempts)", attempts);
}

Client::Client(const std::string& host, std::uint16_t port, std::size_t max_payload,
               RetryPolicy retry)
    : host_(host), port_(port), max_payload_(max_payload), retry_(retry),
      reader_(max_payload) {
  PP_CHECK_MSG(retry_.max_retries >= 0 && retry_.multiplier >= 1.0 && retry_.jitter >= 0.0 &&
                   retry_.jitter <= 1.0,
               "bad RetryPolicy: max_retries >= 0, multiplier >= 1, jitter in [0,1]");
  connect_with_retry();
}

void Client::reconnect() {
  close();
  next_id_ = 1;
  reader_ = FrameReader(max_payload_);  // a new stream starts at a frame boundary
  connect_with_retry();
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_bytes(const std::vector<std::uint8_t>& bytes) {
  PP_CHECK_MSG(fd_ >= 0, "send on a closed client");
  const std::uint8_t* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    PP_CHECK_MSG(n > 0, "send failed: " << (n < 0 ? std::strerror(errno) : "connection closed"));
    data += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

void Client::send_forecast(std::uint64_t request_id, const nn::Tensor& input01,
                           bool want_heatmap) {
  ForecastRequest req;
  req.request_id = request_id;
  req.want_heatmap = want_heatmap;
  req.input = input01;
  send_bytes(encode_forecast_request(req));
}

void Client::send_metrics_request(std::uint64_t request_id) {
  send_bytes(encode_metrics_request(request_id));
}

void Client::send_swap_request(std::uint64_t request_id, const std::string& checkpoint_path) {
  send_bytes(encode_swap_request(request_id, checkpoint_path));
}

void Client::send_health_request(std::uint64_t request_id) {
  send_bytes(encode_health_request(request_id));
}

Frame Client::read_frame() {
  for (;;) {
    if (std::optional<Frame> frame = reader_.next()) return std::move(*frame);
    std::uint8_t buf[std::size_t{64} << 10];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    PP_CHECK_MSG(n > 0, "connection closed while waiting for a frame ("
                            << reader_.buffered() << " bytes buffered)");
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

ForecastResponse Client::read_forecast_response() {
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    throw WireError("server error: " + decode_text(frame));
  }
  return decode_forecast_response(frame);
}

ForecastResponse Client::forecast(const nn::Tensor& input01, bool want_heatmap) {
  send_forecast(next_id_++, input01, want_heatmap);
  return read_forecast_response();
}

std::string Client::metrics_text() {
  send_metrics_request(next_id_++);
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    throw WireError("server error: " + decode_text(frame));
  }
  if (frame.type != FrameType::kMetricsResponse) {
    throw WireError("expected a metrics response, got frame type " +
                    std::to_string(static_cast<int>(frame.type)));
  }
  return decode_text(frame);
}

SwapResponse Client::swap(const std::string& checkpoint_path) {
  send_swap_request(next_id_++, checkpoint_path);
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    throw WireError("server error: " + decode_text(frame));
  }
  return decode_swap_response(frame);
}

HealthInfo Client::health() {
  send_health_request(next_id_++);
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    throw WireError("server error: " + decode_text(frame));
  }
  return decode_health_response(frame);
}

}  // namespace paintplace::net
