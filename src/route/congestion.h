// Congestion map: per-channel-segment routing utilization — the quantity
// the paper's heat map (img_route) visualises and the cGAN learns to
// forecast.
#pragma once

#include <vector>

#include "route/channel_graph.h"

namespace paintplace::route {

struct CongestionStats {
  double mean_utilization = 0.0;  ///< over channel segments
  double max_utilization = 0.0;
  double total_occupancy = 0.0;   ///< sum of per-segment occupancy
  Index overused_segments = 0;    ///< occupancy > capacity
  Index segments = 0;
};

class CongestionMap {
 public:
  explicit CongestionMap(const ChannelGraph& graph);

  const ChannelGraph& graph() const { return *graph_; }

  /// occupancy / capacity of a channel node (0 for non-channels). Can
  /// exceed 1 when the router failed to resolve all overuse.
  double utilization(NodeId n) const {
    PP_CHECK(n >= 0 && n < graph_->num_nodes());
    return util_[static_cast<std::size_t>(n)];
  }
  void set_occupancy(NodeId n, Index occupancy);
  Index occupancy(NodeId n) const {
    PP_CHECK(n >= 0 && n < graph_->num_nodes());
    return occ_[static_cast<std::size_t>(n)];
  }

  /// Sum of utilization over all channel segments — the scalar used to rank
  /// placements by congestion (Top10 metric, explorer applications).
  double total_utilization() const;

  CongestionStats stats() const;

 private:
  const ChannelGraph* graph_;
  std::vector<Index> occ_;
  std::vector<double> util_;
};

}  // namespace paintplace::route
