#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/timer.h"

namespace paintplace::route {

PathFinderRouter::PathFinderRouter(const ChannelGraph& graph, RouterOptions options)
    : graph_(&graph), options_(options) {
  PP_CHECK(options_.max_iterations >= 1);
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  occupancy_.assign(n, 0);
  history_.assign(n, 0.0);
  dist_.assign(n, 0.0);
  prev_.assign(n, -1);
  visit_epoch_.assign(n, 0);
}

void PathFinderRouter::rip_up(NetId net) {
  for (NodeId n : trees_[static_cast<std::size_t>(net)]) {
    occupancy_[static_cast<std::size_t>(n)] -= 1;
    PP_CHECK(occupancy_[static_cast<std::size_t>(n)] >= 0);
  }
  trees_[static_cast<std::size_t>(net)].clear();
}

void PathFinderRouter::route_net(const NetTask& task, double pres_fac) {
  // Incremental multi-sink maze routing: grow the route tree by one
  // cheapest path per sink (Prim-like), negotiating over congested nodes.
  auto node_cost = [&](NodeId n) -> double {
    const Index cap = graph_->capacity(n);
    const Index occ = occupancy_[static_cast<std::size_t>(n)];
    const double over = static_cast<double>(std::max<Index>(0, occ + 1 - cap));
    const double present = 1.0 + pres_fac * over;
    return (1.0 + options_.history_factor * history_[static_cast<std::size_t>(n)]) * present;
  };

  std::vector<NodeId>& tree = trees_[static_cast<std::size_t>(task.id)];
  PP_CHECK(tree.empty());

  // Sinks reached when we touch any pin channel of their tile; precompute.
  std::vector<std::vector<NodeId>> sink_pins;
  sink_pins.reserve(task.sink_tiles.size());
  for (NodeId sink_tile : task.sink_tiles) {
    const Index tx = (graph_->lx_of(sink_tile) - 1) / 2;
    const Index ty = (graph_->ly_of(sink_tile) - 1) / 2;
    sink_pins.push_back(graph_->tile_pins(fpga::GridLoc{tx, ty, 0}));
  }

  const Index src_tx = (graph_->lx_of(task.source_tile) - 1) / 2;
  const Index src_ty = (graph_->ly_of(task.source_tile) - 1) / 2;
  const std::vector<NodeId> source_pins = graph_->tile_pins(fpga::GridLoc{src_tx, src_ty, 0});

  std::vector<bool> sink_done(task.sink_tiles.size(), false);
  using QEntry = std::pair<double, NodeId>;

  for (std::size_t remaining = task.sink_tiles.size(); remaining > 0; --remaining) {
    epoch_ += 1;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;
    auto relax = [&](NodeId n, double d, NodeId from) {
      if (visit_epoch_[static_cast<std::size_t>(n)] == epoch_ &&
          dist_[static_cast<std::size_t>(n)] <= d) {
        return;
      }
      visit_epoch_[static_cast<std::size_t>(n)] = epoch_;
      dist_[static_cast<std::size_t>(n)] = d;
      prev_[static_cast<std::size_t>(n)] = from;
      queue.push({d, n});
    };
    // Reaching the next sink is free from anywhere on the already-committed
    // tree (re-use within a net costs nothing); the very first path instead
    // starts at the source tile's pin channels, paying their entry cost.
    if (tree.empty()) {
      for (NodeId pin : source_pins) relax(pin, node_cost(pin), -1);
    } else {
      for (NodeId n : tree) relax(n, 0.0, -1);
    }

    NodeId reached = -1;
    std::size_t reached_sink = 0;
    while (!queue.empty()) {
      const auto [d, n] = queue.top();
      queue.pop();
      if (visit_epoch_[static_cast<std::size_t>(n)] != epoch_ ||
          d > dist_[static_cast<std::size_t>(n)]) {
        continue;
      }
      bool done = false;
      for (std::size_t s = 0; s < sink_pins.size(); ++s) {
        if (sink_done[s]) continue;
        if (std::find(sink_pins[s].begin(), sink_pins[s].end(), n) != sink_pins[s].end()) {
          reached = n;
          reached_sink = s;
          done = true;
          break;
        }
      }
      if (done) break;
      NodeId nbr[4];
      const int deg = graph_->neighbors(n, nbr);
      for (int i = 0; i < deg; ++i) {
        relax(nbr[i], d + node_cost(nbr[i]), n);
      }
    }
    PP_CHECK_MSG(reached >= 0, "maze route failed: disconnected fabric?");
    sink_done[reached_sink] = true;

    // Commit the path: walk predecessors until a seed (prev < 0). Nodes
    // already on the tree (seeds of later sinks) are not double-counted.
    for (NodeId n = reached;; n = prev_[static_cast<std::size_t>(n)]) {
      if (std::find(tree.begin(), tree.end(), n) == tree.end()) {
        tree.push_back(n);
        occupancy_[static_cast<std::size_t>(n)] += 1;
      }
      if (prev_[static_cast<std::size_t>(n)] < 0) break;
    }
  }
}

RouteResult PathFinderRouter::route(const Placement& placement, CongestionMap& congestion) {
  Timer timer;
  const fpga::Netlist& nl = placement.netlist();
  trees_.assign(static_cast<std::size_t>(nl.num_nets()), {});
  std::fill(occupancy_.begin(), occupancy_.end(), 0);
  std::fill(history_.begin(), history_.end(), 0.0);

  // Build net tasks; nets whose pins all share one tile need no routing.
  std::vector<NetTask> tasks;
  for (const fpga::Net& net : nl.nets()) {
    NetTask task;
    task.id = net.id;
    const fpga::GridLoc src = placement.loc(net.driver);
    task.source_tile = graph_->tile_node(src);
    for (fpga::BlockId s : net.sinks) {
      const NodeId t = graph_->tile_node(placement.loc(s));
      if (t != task.source_tile) task.sink_tiles.push_back(t);
    }
    std::sort(task.sink_tiles.begin(), task.sink_tiles.end());
    task.sink_tiles.erase(std::unique(task.sink_tiles.begin(), task.sink_tiles.end()),
                          task.sink_tiles.end());
    if (!task.sink_tiles.empty()) tasks.push_back(std::move(task));
  }
  // Route long nets first: they have the least flexibility.
  std::sort(tasks.begin(), tasks.end(), [](const NetTask& a, const NetTask& b) {
    return a.sink_tiles.size() > b.sink_tiles.size();
  });

  RouteResult result;
  double pres_fac = options_.present_factor;
  for (Index iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    for (const NetTask& task : tasks) {
      if (!trees_[static_cast<std::size_t>(task.id)].empty()) rip_up(task.id);
      route_net(task, pres_fac);
    }
    // Update history and check feasibility.
    bool overused = false;
    for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
      const Index over = occupancy_[static_cast<std::size_t>(n)] - graph_->capacity(n);
      if (over > 0) {
        overused = true;
        history_[static_cast<std::size_t>(n)] += static_cast<double>(over);
      }
    }
    if (!overused) {
      result.success = true;
      break;
    }
    pres_fac *= options_.present_growth;
  }

  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    congestion.set_occupancy(n, occupancy_[static_cast<std::size_t>(n)]);
  }
  for (const auto& tree : trees_) {
    result.total_wirelength += static_cast<double>(tree.size());
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace paintplace::route
