#include "route/congestion.h"

#include <algorithm>

namespace paintplace::route {

CongestionMap::CongestionMap(const ChannelGraph& graph)
    : graph_(&graph),
      occ_(static_cast<std::size_t>(graph.num_nodes()), 0),
      util_(static_cast<std::size_t>(graph.num_nodes()), 0.0) {}

void CongestionMap::set_occupancy(NodeId n, Index occupancy) {
  PP_CHECK(n >= 0 && n < graph_->num_nodes() && occupancy >= 0);
  occ_[static_cast<std::size_t>(n)] = occupancy;
  const Index cap = graph_->capacity(n);
  util_[static_cast<std::size_t>(n)] =
      graph_->is_channel(n) && cap > 0
          ? static_cast<double>(occupancy) / static_cast<double>(cap)
          : 0.0;
}

double CongestionMap::total_utilization() const {
  double total = 0.0;
  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    if (graph_->is_channel(n)) total += util_[static_cast<std::size_t>(n)];
  }
  return total;
}

CongestionStats CongestionMap::stats() const {
  CongestionStats s;
  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    if (!graph_->is_channel(n)) continue;
    s.segments += 1;
    const double u = util_[static_cast<std::size_t>(n)];
    s.mean_utilization += u;
    s.max_utilization = std::max(s.max_utilization, u);
    s.total_occupancy += static_cast<double>(occ_[static_cast<std::size_t>(n)]);
    if (occ_[static_cast<std::size_t>(n)] > graph_->capacity(n)) s.overused_segments += 1;
  }
  if (s.segments > 0) s.mean_utilization /= static_cast<double>(s.segments);
  return s;
}

}  // namespace paintplace::route
