// Routing resource lattice for the island-style fabric.
//
// The tile grid is embedded in a (2W+1) x (2H+1) lattice:
//   odd  x, odd  y -> logic tile (not a routing resource)
//   odd  x, even y -> horizontal channel segment (capacity = channel width)
//   even x, odd  y -> vertical channel segment   (capacity = channel width)
//   even x, even y -> switchbox junction (uncapacitated crossing point)
// Block pins enter the fabric through the four channel segments around
// their tile. This is the graph PathFinder negotiates over, and the per-
// segment utilization it produces is the paper's ground-truth heat map.
#pragma once

#include <vector>

#include "fpga/arch.h"

namespace paintplace::route {

using fpga::Arch;
using fpga::GridLoc;
using paintplace::Index;

enum class NodeKind : std::uint8_t { kTile, kHChan, kVChan, kSwitch };

/// Flat id of a lattice node.
using NodeId = Index;

class ChannelGraph {
 public:
  explicit ChannelGraph(const Arch& arch);

  const Arch& arch() const { return *arch_; }
  Index lattice_width() const { return lw_; }
  Index lattice_height() const { return lh_; }
  Index num_nodes() const { return lw_ * lh_; }

  NodeId node_at(Index lx, Index ly) const {
    PP_CHECK(lx >= 0 && lx < lw_ && ly >= 0 && ly < lh_);
    return ly * lw_ + lx;
  }
  Index lx_of(NodeId n) const { return n % lw_; }
  Index ly_of(NodeId n) const { return n / lw_; }

  NodeKind kind(NodeId n) const {
    const bool ox = lx_of(n) % 2 == 1, oy = ly_of(n) % 2 == 1;
    if (ox && oy) return NodeKind::kTile;
    if (ox) return NodeKind::kHChan;
    if (oy) return NodeKind::kVChan;
    return NodeKind::kSwitch;
  }

  /// The outermost lattice ring lies outside the floor plan (the paper's
  /// img_route renders it white): no routing resources there.
  bool on_border(NodeId n) const {
    const Index lx = lx_of(n), ly = ly_of(n);
    return lx == 0 || ly == 0 || lx == lw_ - 1 || ly == lh_ - 1;
  }
  bool is_routable(NodeId n) const { return kind(n) != NodeKind::kTile && !on_border(n); }
  /// Channel segment inside the floor plan (the heat-map pixels).
  bool is_channel(NodeId n) const {
    const NodeKind k = kind(n);
    return (k == NodeKind::kHChan || k == NodeKind::kVChan) && !on_border(n);
  }

  /// Track capacity of a node (channel width for channels, effectively
  /// unbounded for switchboxes, 0 for tiles).
  Index capacity(NodeId n) const;

  /// Routing-fabric neighbours of a channel/switch node (tiles excluded).
  /// Returns the count written into `out[0..3]`.
  int neighbors(NodeId n, NodeId out[4]) const;

  /// The up-to-4 channel segments surrounding a tile (fewer on the fabric
  /// edge — the outside of the IO ring has no channels).
  std::vector<NodeId> tile_pins(const GridLoc& tile) const;

  NodeId tile_node(const GridLoc& tile) const {
    PP_CHECK(arch_->in_grid(tile.x, tile.y));
    return node_at(2 * tile.x + 1, 2 * tile.y + 1);
  }

 private:
  const Arch* arch_;
  Index lw_, lh_;
};

}  // namespace paintplace::route
