#include "route/channel_graph.h"

namespace paintplace::route {

ChannelGraph::ChannelGraph(const Arch& arch)
    : arch_(&arch), lw_(2 * arch.width() + 1), lh_(2 * arch.height() + 1) {}

Index ChannelGraph::capacity(NodeId n) const {
  if (!is_routable(n)) return 0;
  switch (kind(n)) {
    case NodeKind::kHChan:
    case NodeKind::kVChan: return arch_->params().channel_width;
    case NodeKind::kSwitch: return 4 * arch_->params().channel_width;
    case NodeKind::kTile: break;
  }
  return 0;
}

int ChannelGraph::neighbors(NodeId n, NodeId out[4]) const {
  const Index lx = lx_of(n), ly = ly_of(n);
  int count = 0;
  const NodeKind k = kind(n);
  PP_CHECK_MSG(k != NodeKind::kTile, "tiles are not routing nodes");
  // Channels connect to the switchboxes at their two ends; switchboxes
  // connect to the up-to-4 incident channels.
  auto push = [&](Index x, Index y) {
    if (x < 0 || x >= lw_ || y < 0 || y >= lh_) return;
    const NodeId cand = node_at(x, y);
    if (!is_routable(cand)) return;
    out[count++] = cand;
  };
  if (k == NodeKind::kHChan) {
    push(lx - 1, ly);
    push(lx + 1, ly);
  } else if (k == NodeKind::kVChan) {
    push(lx, ly - 1);
    push(lx, ly + 1);
  } else {  // switchbox
    push(lx - 1, ly);
    push(lx + 1, ly);
    push(lx, ly - 1);
    push(lx, ly + 1);
  }
  return count;
}

std::vector<NodeId> ChannelGraph::tile_pins(const GridLoc& tile) const {
  PP_CHECK(arch_->in_grid(tile.x, tile.y));
  const Index lx = 2 * tile.x + 1, ly = 2 * tile.y + 1;
  std::vector<NodeId> pins;
  auto push = [&](Index x, Index y) {
    if (x < 0 || x >= lw_ || y < 0 || y >= lh_) return;
    const NodeId cand = node_at(x, y);
    if (!is_routable(cand)) return;
    pins.push_back(cand);
  };
  push(lx, ly - 1);  // north H channel
  push(lx, ly + 1);  // south H channel
  push(lx - 1, ly);  // west V channel
  push(lx + 1, ly);  // east V channel
  PP_CHECK_MSG(!pins.empty(), "tile has no adjacent channels");
  return pins;
}

}  // namespace paintplace::route
