// PathFinder negotiated-congestion router (McMurchie & Ebeling), the
// detailed-routing stage of Fig. 1. Produces the ground-truth congestion
// map: per-channel utilization after all nets are routed.
#pragma once

#include "place/placement.h"
#include "route/congestion.h"

namespace paintplace::route {

using fpga::NetId;
using place::Placement;

struct RouterOptions {
  Index max_iterations = 30;       ///< negotiation rounds before giving up
  double present_factor = 0.5;     ///< initial present-congestion multiplier
  double present_growth = 1.6;     ///< growth per round
  double history_factor = 0.35;    ///< accumulated-congestion multiplier
};

struct RouteResult {
  bool success = false;     ///< no overused channel after the final round
  Index iterations = 0;     ///< negotiation rounds actually run
  double wall_seconds = 0;  ///< routing wall-clock (Sec. 5.1 speedup metric)
  double total_wirelength = 0.0;  ///< channel segments used, summed over nets
};

class PathFinderRouter {
 public:
  PathFinderRouter(const ChannelGraph& graph, RouterOptions options = {});

  /// Routes every net of the placement; fills `congestion` with the final
  /// per-segment occupancy (even on failure, so hard instances still yield
  /// a heat map — matching VPR, which reports the congested result).
  RouteResult route(const Placement& placement, CongestionMap& congestion);

  /// Lattice nodes of the routed tree for a net (valid after route()).
  const std::vector<NodeId>& net_tree(NetId n) const {
    PP_CHECK(n >= 0 && n < static_cast<Index>(trees_.size()));
    return trees_[static_cast<std::size_t>(n)];
  }

 private:
  struct NetTask {
    NetId id = -1;
    NodeId source_tile = -1;
    std::vector<NodeId> sink_tiles;  // deduplicated, source removed
  };

  void route_net(const NetTask& task, double pres_fac);
  void rip_up(NetId net);

  const ChannelGraph* graph_;
  RouterOptions options_;
  std::vector<std::vector<NodeId>> trees_;
  std::vector<Index> occupancy_;
  std::vector<double> history_;

  // Dijkstra scratch (epoch-stamped to avoid clearing per net).
  std::vector<double> dist_;
  std::vector<NodeId> prev_;
  std::vector<std::uint32_t> visit_epoch_;
  std::uint32_t epoch_ = 0;
};

}  // namespace paintplace::route
