// Finite-difference gradient checking, used by the nn test suite to verify
// every layer's backward pass against a numeric derivative.
#pragma once

#include <functional>

#include "nn/module.h"

namespace paintplace::nn {

struct GradCheckResult {
  /// Per-tensor normalized max-element error. Tight bound for smooth
  /// layers; inflated by activation-kink crossings in deep composites.
  float max_input_grad_error = 0.0f;
  float max_param_grad_error = 0.0f;
  /// Per-tensor relative L2 error (||analytic - numeric|| / ||numeric||).
  /// Robust for composites: a wiring bug corrupts the whole gradient field
  /// (error ~ 1), while isolated LeakyReLU kink crossings stay small.
  float input_l2_error = 0.0f;
  float max_param_l2_error = 0.0f;

  bool ok(float tolerance) const {
    return max_input_grad_error <= tolerance && max_param_grad_error <= tolerance;
  }
};

/// Checks d(sum of weighted outputs)/d(input and params) of `module` against
/// central finite differences. `module` must be deterministic (re-seed any
/// dropout). The loss used is sum(output * weights) with fixed random
/// weights, which exercises every output element.
GradCheckResult grad_check(Module& module, const Tensor& input, std::uint64_t seed = 7,
                           float epsilon = 1e-2f);

}  // namespace paintplace::nn
