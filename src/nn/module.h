// Module: base class of every layer and network in the framework.
//
// Layer-graph autograd in the Caffe style: each module caches what it needs
// during forward() and returns the input gradient from backward(). Composite
// networks (UNetGenerator, PatchDiscriminator) orchestrate their children
// explicitly, which keeps skip connections and channel concatenation plain
// and debuggable instead of hiding them in a tape.
//
// Contract:
//   * forward() must be called before backward(); backward() consumes the
//     cached activations of exactly the most recent forward().
//   * backward() accumulates into Parameter::grad (callers zero grads via
//     zero_grad() / the optimizer between steps).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace paintplace::nn {

/// Process-unique, monotonically increasing weight-version numbers. Every
/// Parameter gets a fresh one at construction and on every bump_version(),
/// so two different weight tensors can never share a (pointer, version)
/// pair even if the allocator reuses an address — the identity the
/// backend::PackedWeightCache keys on.
inline std::uint64_t next_weight_version() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Learnable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Identity of the current value contents for the packed-weight cache.
  /// Anything that mutates `value` in place (optimizer step, checkpoint
  /// restore, test poking at the floats) must call bump_version() — a
  /// forward pass after an un-bumped mutation trips the cache's stale
  /// fingerprint check and throws.
  std::uint64_t version = next_weight_version();

  explicit Parameter(std::string param_name, Shape shape)
      : name(std::move(param_name)), value(shape), grad(shape) {}

  void bump_version() { version = next_weight_version(); }
};

/// Non-learnable persistent state (e.g. batch-norm running statistics) that
/// must survive checkpointing but is never touched by the optimizer.
struct NamedBuffer {
  std::string name;
  Tensor* tensor;
};

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Appends pointers to all learnable parameters (depth-first, stable
  /// order — the serializer and optimizer rely on this order).
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  /// Appends non-learnable persistent buffers (checkpointed, not optimized).
  virtual void collect_buffers(std::vector<NamedBuffer>& out) { (void)out; }

  /// Switches train/eval behaviour (batch-norm statistics; dropout is
  /// intentionally exempt — see Dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  void zero_grad() {
    std::vector<Parameter*> params;
    collect_parameters(params);
    for (Parameter* p : params) p->grad.fill(0.0f);
  }

  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> params;
    collect_parameters(params);
    return params;
  }

  Index parameter_count() {
    Index n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }

 protected:
  bool training_ = true;
};

/// Linear chain of modules. forward/backward thread through in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Module> module) { modules_.push_back(std::move(module)); }
  Index size() const { return static_cast<Index>(modules_.size()); }
  Module& at(Index i) {
    PP_CHECK(i >= 0 && i < size());
    return *modules_[static_cast<std::size_t>(i)];
  }

  Tensor forward(const Tensor& input) override {
    Tensor x = input;
    for (auto& m : modules_) x = m->forward(x);
    return x;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  void collect_parameters(std::vector<Parameter*>& out) override {
    for (auto& m : modules_) m->collect_parameters(out);
  }

  void collect_buffers(std::vector<NamedBuffer>& out) override {
    for (auto& m : modules_) m->collect_buffers(out);
  }

  void set_training(bool training) override {
    Module::set_training(training);
    for (auto& m : modules_) m->set_training(training);
  }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace paintplace::nn
