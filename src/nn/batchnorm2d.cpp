#include "nn/batchnorm2d.h"

#include <cmath>

namespace paintplace::nn {

BatchNorm2d::BatchNorm2d(std::string name, Index channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(name + ".gamma", Shape{channels}),
      beta_(name + ".beta", Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}) {
  PP_CHECK(channels > 0 && eps > 0.0f);
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  PP_CHECK_MSG(input.rank() == 4 && input.dim(1) == channels_,
               "BatchNorm2d " << gamma_.name << ": bad input " << input.shape().str());
  const Index N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const Index plane = H * W;
  const Index count = N * plane;
  Tensor output(input.shape());

  if (training_) {
    cached_normalized_ = Tensor(input.shape());
    cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
    cached_count_ = count;
    for (Index c = 0; c < channels_; ++c) {
      double sum = 0.0, sq_sum = 0.0;
      for (Index n = 0; n < N; ++n) {
        const float* x = input.data() + (n * channels_ + c) * plane;
        for (Index i = 0; i < plane; ++i) {
          sum += static_cast<double>(x[i]);
          sq_sum += static_cast<double>(x[i]) * static_cast<double>(x[i]);
        }
      }
      const double mean = sum / static_cast<double>(count);
      const double var = std::max(0.0, sq_sum / static_cast<double>(count) - mean * mean);
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);
      const float g = gamma_.value[c], b = beta_.value[c], m = static_cast<float>(mean);
      for (Index n = 0; n < N; ++n) {
        const float* x = input.data() + (n * channels_ + c) * plane;
        float* xh = cached_normalized_.data() + (n * channels_ + c) * plane;
        float* y = output.data() + (n * channels_ + c) * plane;
        for (Index i = 0; i < plane; ++i) {
          xh[i] = (x[i] - m) * inv_std;
          y[i] = g * xh[i] + b;
        }
      }
    }
  } else {
    for (Index c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float g = gamma_.value[c], b = beta_.value[c], m = running_mean_[c];
      for (Index n = 0; n < N; ++n) {
        const float* x = input.data() + (n * channels_ + c) * plane;
        float* y = output.data() + (n * channels_ + c) * plane;
        for (Index i = 0; i < plane; ++i) y[i] = g * (x[i] - m) * inv_std + b;
      }
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(training_, "BatchNorm2d backward only defined in training mode");
  PP_CHECK_MSG(!cached_normalized_.empty(), "BatchNorm2d backward before forward");
  PP_CHECK(grad_output.shape() == cached_normalized_.shape());
  const Index N = grad_output.dim(0), H = grad_output.dim(2), W = grad_output.dim(3);
  const Index plane = H * W;
  const double count = static_cast<double>(cached_count_);

  Tensor grad_input(grad_output.shape());
  for (Index c = 0; c < channels_; ++c) {
    // Standard batch-norm backward:
    // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy*x_hat))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (Index n = 0; n < N; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * plane;
      const float* xh = cached_normalized_.data() + (n * channels_ + c) * plane;
      for (Index i = 0; i < plane; ++i) {
        sum_dy += static_cast<double>(dy[i]);
        sum_dy_xhat += static_cast<double>(dy[i]) * static_cast<double>(xh[i]);
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);
    const double g_inv_std_m =
        static_cast<double>(gamma_.value[c]) *
        static_cast<double>(cached_inv_std_[static_cast<std::size_t>(c)]) / count;
    for (Index n = 0; n < N; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * plane;
      const float* xh = cached_normalized_.data() + (n * channels_ + c) * plane;
      float* dx = grad_input.data() + (n * channels_ + c) * plane;
      for (Index i = 0; i < plane; ++i) {
        dx[i] = static_cast<float>(g_inv_std_m * (count * static_cast<double>(dy[i]) - sum_dy -
                                                  static_cast<double>(xh[i]) * sum_dy_xhat));
      }
    }
  }
  return grad_input;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_buffers(std::vector<NamedBuffer>& out) {
  // Derive stable names from the gamma parameter ("<layer>.gamma").
  const std::string base = gamma_.name.substr(0, gamma_.name.size() - std::string("gamma").size());
  out.push_back(NamedBuffer{base + "running_mean", &running_mean_});
  out.push_back(NamedBuffer{base + "running_var", &running_var_});
}

}  // namespace paintplace::nn
