#include "nn/dropout.h"

namespace paintplace::nn {

Tensor Dropout::forward(const Tensor& input) {
  if (probability_ == 0.0f || !active()) {
    mask_ = training_ ? Tensor::full(input.shape(), 1.0f) : Tensor();
    return input;
  }
  // Inverted dropout: surviving units scaled by 1/keep so eval needs no rescale.
  const float keep = 1.0f - probability_;
  const float scale = 1.0f / keep;
  const bool keep_mask = training_;  // backward never follows an eval forward
  mask_ = keep_mask ? Tensor(input.shape()) : Tensor();
  Tensor out(input.shape());
  const Index n = input.numel();
  for (Index i = 0; i < n; ++i) {
    const float m = rng_.chance(static_cast<double>(keep)) ? scale : 0.0f;
    if (keep_mask) mask_[i] = m;
    out[i] = input[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!mask_.empty(), "Dropout backward before forward");
  PP_CHECK(grad_output.shape() == mask_.shape());
  Tensor gin(grad_output.shape());
  const Index n = grad_output.numel();
  for (Index i = 0; i < n; ++i) gin[i] = grad_output[i] * mask_[i];
  return gin;
}

}  // namespace paintplace::nn
