#include "nn/conv2d.h"

#include <cstring>

#include "backend/workspace.h"
#include "common/parallel.h"
#include "nn/gemm.h"
#include "nn/init.h"
#include "obs/trace.h"

namespace paintplace::nn {

Conv2d::Conv2d(std::string name, Index in_channels, Index out_channels, Index kernel, Index stride,
               Index pad, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_(name + ".weight", Shape{out_channels, in_channels, kernel, kernel}),
      bias_(name + ".bias", Shape{bias ? out_channels : 0}) {
  PP_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 && pad >= 0);
  init_normal(weight_.value, rng);
}

ConvGeom Conv2d::geom_for(Index h, Index w) const {
  return ConvGeom{in_channels_, h, w, kernel_, stride_, pad_};
}

Tensor Conv2d::forward(const Tensor& input) {
  PP_CHECK_MSG(input.rank() == 4 && input.dim(1) == in_channels_,
               "Conv2d " << weight_.name << ": bad input " << input.shape().str()
                         << ", expected (N," << in_channels_ << ",H,W)");
  if (training_) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();  // inference: no backward, skip the activation copy
  }
  const Index N = input.dim(0), H = input.dim(2), W = input.dim(3);
  // Per-layer span named after the parameter ("g.enc3.weight" -> that level
  // of the U-Net). The GEMMs it issues nest inside as child spans.
  obs::Span span(weight_.name, "layer");
  if (span.active()) {
    span.arg("N", N);
    span.arg("HxW", H * W);
    span.arg("Cin", in_channels_);
    span.arg("Cout", out_channels_);
  }
  const ConvGeom g = geom_for(H, W);
  const Index Ho = g.out_height(), Wo = g.out_width();
  Tensor output(Shape{N, out_channels_, Ho, Wo});
  const Index plane_cols = g.col_cols();
  // Bias (always) and the declared activation (eval only — backward needs
  // the pre-activation tensor) ride the GEMM's fused epilogue: the bias is
  // per output channel, i.e. per row of the (Cout, cols) GEMM result, for
  // the single-sample and the batched lowering alike. Weight panels are
  // cached across eval forwards; in training the optimizer rewrites the
  // weights every step, so packing once per call is all a cache could do.
  backend::GemmArgs gemm_args;
  gemm_args.epilogue.bias = has_bias_ ? bias_.value.data() : nullptr;
  if (!training_ && fused_act_ != backend::Epilogue::Act::kNone) {
    gemm_args.epilogue.act = fused_act_;
    gemm_args.epilogue.slope = fused_slope_;
  }
  gemm_args.cache_weights = !training_;
  gemm_args.weight_version = weight_.version;
  // im2col matrices and batched staging live in the thread's workspace arena:
  // steady-state forwards (the serving loop) reuse the same blocks instead of
  // paying a malloc + page-fault storm per pass.
  backend::WorkspaceScope ws;
  if (N == 1) {
    float* col = ws.alloc(static_cast<std::size_t>(g.col_rows() * plane_cols));
    im2col(g, input.data(), col);
    // out(Cout, Ho*Wo) = weight(Cout, Cin*k*k) * col
    sgemm_ex(out_channels_, plane_cols, g.col_rows(), 1.0f, weight_.value.data(), col, 0.0f,
             output.data(), gemm_args);
  } else {
    // Batched lowering: unfold every sample into one wide col matrix and run
    // a single GEMM. On the channel-fat, spatially-tiny inner U-Net levels a
    // per-sample GEMM degenerates to a handful of columns (no SIMD width, a
    // store-to-load accumulation chain per element); widening the column
    // dimension by N restores throughput. Column order is per-element
    // identical to the per-sample GEMM, so results stay bit-exact.
    const Index total_cols = N * plane_cols;
    float* col = ws.alloc(static_cast<std::size_t>(g.col_rows() * total_cols));
    // Serial over samples: im2col itself fans out over C*k*k rows, which is
    // far finer-grained than N and keeps every worker busy at small batches.
    for (Index n = 0; n < N; ++n) {
      im2col(g, input.data() + n * in_channels_ * H * W, col + n * plane_cols, total_cols);
    }
    float* out_cn = ws.alloc(static_cast<std::size_t>(out_channels_ * total_cols));
    sgemm_ex(out_channels_, total_cols, g.col_rows(), 1.0f, weight_.value.data(), col, 0.0f,
             out_cn, gemm_args);
    // Scatter (Cout, N*Ho*Wo) back to NCHW.
    parallel_for_each(N * out_channels_, [&](Index row) {
      const Index n = row / out_channels_, c = row % out_channels_;
      std::memcpy(output.data() + (n * out_channels_ + c) * plane_cols,
                  out_cn + c * total_cols + n * plane_cols,
                  sizeof(float) * static_cast<std::size_t>(plane_cols));
    });
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!cached_input_.empty(), "Conv2d backward before forward");
  const Tensor& input = cached_input_;
  const Index N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const ConvGeom g = geom_for(H, W);
  const Index Ho = g.out_height(), Wo = g.out_width();
  PP_CHECK_MSG(grad_output.rank() == 4 && grad_output.dim(0) == N &&
                   grad_output.dim(1) == out_channels_ && grad_output.dim(2) == Ho &&
                   grad_output.dim(3) == Wo,
               "Conv2d backward: bad grad shape " << grad_output.shape().str());

  Tensor grad_input(input.shape());
  backend::WorkspaceScope ws;
  const Index rows = g.col_rows(), cols = g.col_cols();
  const std::size_t col_floats = static_cast<std::size_t>(rows * cols);
  if (N == 1) {
    const float* go = grad_output.data();
    float* col = ws.alloc(col_floats);
    float* dcol = ws.alloc(col_floats);
    // dW += go(Cout, Ho*Wo) * col^T
    im2col(g, input.data(), col);
    sgemm_bt(out_channels_, rows, cols, 1.0f, go, col, 1.0f, weight_.grad.data());
    // dcol = W^T(Cin*k*k, Cout) * go
    sgemm_at(rows, cols, out_channels_, 1.0f, weight_.value.data(), go, 0.0f, dcol);
    col2im(g, dcol, grad_input.data());
  } else {
    // Batched lowering of the data gradient (the adjoint of the forward's
    // batched lowering): pack the batch's grad_output into one wide
    // (Cout, N*Ho*Wo) matrix and run a single GEMM. Widening the column
    // dimension leaves every output element's reduction untouched, so each
    // sample's gradient is bit-identical to the per-sample GEMM it replaces.
    const Index total_cols = N * cols;
    float* go_wide = ws.alloc(static_cast<std::size_t>(out_channels_ * total_cols));
    parallel_for_each(N * out_channels_, [&](Index row) {
      const Index n = row / out_channels_, c = row % out_channels_;
      std::memcpy(go_wide + c * total_cols + n * cols,
                  grad_output.data() + (n * out_channels_ + c) * cols,
                  sizeof(float) * static_cast<std::size_t>(cols));
    });
    // dcol_wide = W^T(Cin*k*k, Cout) * go_wide
    float* dcol_wide = ws.alloc(static_cast<std::size_t>(rows * total_cols));
    sgemm_at(rows, total_cols, out_channels_, 1.0f, weight_.value.data(), go_wide, 0.0f,
             dcol_wide);
    for (Index n = 0; n < N; ++n) {
      col2im(g, dcol_wide + n * cols, grad_input.data() + n * in_channels_ * H * W, total_cols);
    }
    // dW is a reduction over the batch: widening K would regroup the
    // floating-point accumulation, so keep the per-sample GEMMs in batch
    // order — bit-identical to accumulating B single-sample backwards.
    float* col = ws.alloc(col_floats);
    for (Index n = 0; n < N; ++n) {
      im2col(g, input.data() + n * in_channels_ * H * W, col);
      sgemm_bt(out_channels_, rows, cols, 1.0f, grad_output.data() + n * out_channels_ * cols, col,
               1.0f, weight_.grad.data());
    }
  }
  if (has_bias_) {
    const Index plane = Ho * Wo;
    for (Index n = 0; n < N; ++n) {
      for (Index c = 0; c < out_channels_; ++c) {
        const float* go = grad_output.data() + (n * out_channels_ + c) * plane;
        double s = 0.0;
        for (Index i = 0; i < plane; ++i) s += static_cast<double>(go[i]);
        bias_.grad[c] += static_cast<float>(s);
      }
    }
  }
  return grad_input;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace paintplace::nn
