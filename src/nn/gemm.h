// Single-precision GEMM for the convolution kernels.
//
// C (MxN) = alpha * op(A) * op(B) + beta * C, row-major, with optional
// transposition of either operand. Parallelised over row blocks of C via the
// process thread pool; inner kernel is a cache-blocked triple loop in
// (i, k, j) order so the innermost loop is a contiguous AXPY that the
// compiler auto-vectorises.
#pragma once

#include "common/check.h"

namespace paintplace::nn {

/// C = alpha * A(MxK) * B(KxN) + beta * C(MxN); all row-major, no aliasing.
void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
           float* C);

/// C = alpha * A^T * B + beta * C, where A is (KxM) row-major.
void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C);

/// C = alpha * A * B^T + beta * C, where B is (NxK) row-major.
void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C);

}  // namespace paintplace::nn
