// Single-precision GEMM for the convolution kernels.
//
// C (MxN) = alpha * op(A) * op(B) + beta * C, row-major, with optional
// transposition of either operand. These free functions validate arguments
// and dispatch to the process-wide active ComputeBackend (see
// backend/backend.h): "reference" is the original cache-blocked triple loop,
// "cpu_opt" a packed register-blocked micro-kernel; both parallelise over
// C tiles via the process thread pool. Select with PAINTPLACE_BACKEND or
// backend::set_active_backend().
#pragma once

#include "backend/backend.h"
#include "common/check.h"

namespace paintplace::nn {

/// C = alpha * A(MxK) * B(KxN) + beta * C(MxN); all row-major, no aliasing.
void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
           float* C);

/// C = alpha * A^T * B + beta * C, where A is (KxM) row-major.
void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C);

/// C = alpha * A * B^T + beta * C, where B is (NxK) row-major.
void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C);

// Extended variants: same math plus a backend::GemmArgs carrying a fused
// bias/activation epilogue and the packed-weight-cache hints for the A
// operand. Conv/deconv forwards call these so weight packing happens once
// per (weights, shape) and activations never cost a second pass over C.
// Same spans and counters as the plain wrappers.
void sgemm_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C, const backend::GemmArgs& args);
void sgemm_at_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                 float beta, float* C, const backend::GemmArgs& args);
void sgemm_bt_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                 float beta, float* C, const backend::GemmArgs& args);

}  // namespace paintplace::nn
