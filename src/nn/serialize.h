// Binary checkpoint format for named tensors.
//
// Layout: magic "PPCK" | u32 version | u64 count | per tensor:
//   u64 name_len | name bytes | u64 rank | u64 dims[rank] | f32 data[numel].
// Little-endian host assumed (x86/ARM little-endian targets).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "nn/module.h"

namespace paintplace::nn {

/// Named tensor bundle used for model checkpoints.
using TensorMap = std::map<std::string, Tensor>;

void save_tensors(const TensorMap& tensors, std::ostream& out);
TensorMap load_tensors(std::istream& in);

void save_tensors_file(const TensorMap& tensors, const std::string& path);
TensorMap load_tensors_file(const std::string& path);

/// Snapshot all parameters of a module into a map (by parameter name).
TensorMap snapshot_parameters(Module& module);

/// Restore parameters by name. Every parameter of `module` must be present
/// in `tensors` with a matching shape; extra entries are ignored (they may
/// belong to sibling modules stored in the same checkpoint).
void restore_parameters(Module& module, const TensorMap& tensors);

}  // namespace paintplace::nn
