#include "nn/adam.h"

#include <cmath>

#include "backend/pack_cache.h"

namespace paintplace::nn {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  PP_CHECK(config_.lr > 0.0f && config_.eps > 0.0f);
  PP_CHECK(config_.beta1 >= 0.0f && config_.beta1 < 1.0f);
  PP_CHECK(config_.beta2 >= 0.0f && config_.beta2 < 1.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    PP_CHECK(p != nullptr);
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  t_ += 1;
  const float b1 = config_.beta1, b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float alpha = config_.lr * std::sqrt(bias2) / bias1;
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter& p = *params_[pi];
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    const Index n = p.value.numel();
    for (Index i = 0; i < n; ++i) {
      const float g = p.grad[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      p.value[i] -= alpha * m[i] / (std::sqrt(v[i]) + config_.eps);
    }
    // The weights just changed in place: retire any packed panels built from
    // the old values and give the parameter a fresh cache identity. This is
    // how Trainer fine-tune steps invalidate the serving cache — every
    // weight update flows through here.
    p.bump_version();
    backend::PackedWeightCache::instance().invalidate(p.value.data());
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.fill(0.0f);
}

namespace {

// The step count is an integer stored in float tensors; 20-bit limbs keep
// it exact far past any realistic training length (same idiom as the
// trainer's loop-state checkpoint).
constexpr Index kStepLimb = Index{1} << 20;

std::string step_key(const std::string& prefix) { return prefix + "__step__"; }

}  // namespace

void Adam::export_state(TensorMap& out, const std::string& prefix) const {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    out.emplace(prefix + params_[pi]->name + ".m", m_[pi]);
    out.emplace(prefix + params_[pi]->name + ".v", v_[pi]);
  }
  out.emplace(step_key(prefix),
              Tensor(Shape{2}, {static_cast<float>(t_ / kStepLimb),
                                static_cast<float>(t_ % kStepLimb)}));
}

void Adam::import_state(const TensorMap& map, const std::string& prefix) {
  const auto step_it = map.find(step_key(prefix));
  PP_CHECK_MSG(step_it != map.end() && step_it->second.shape() == Shape{2},
               "no Adam state under prefix '" << prefix << "'");
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    for (const char* moment : {".m", ".v"}) {
      const std::string key = prefix + params_[pi]->name + moment;
      const auto it = map.find(key);
      PP_CHECK_MSG(it != map.end(), "Adam state is missing '" << key << "'");
      PP_CHECK_MSG(it->second.shape() == params_[pi]->value.shape(),
                   "Adam state '" << key << "' has shape " << it->second.shape().str()
                                  << ", parameter has " << params_[pi]->value.shape().str());
      (moment[1] == 'm' ? m_ : v_)[pi] = it->second;
    }
  }
  t_ = static_cast<Index>(step_it->second[0]) * kStepLimb +
       static_cast<Index>(step_it->second[1]);
}

bool Adam::has_state(const TensorMap& map, const std::string& prefix) {
  return map.find(step_key(prefix)) != map.end();
}

}  // namespace paintplace::nn
