#include "nn/adam.h"

#include <cmath>

namespace paintplace::nn {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  PP_CHECK(config_.lr > 0.0f && config_.eps > 0.0f);
  PP_CHECK(config_.beta1 >= 0.0f && config_.beta1 < 1.0f);
  PP_CHECK(config_.beta2 >= 0.0f && config_.beta2 < 1.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    PP_CHECK(p != nullptr);
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  t_ += 1;
  const float b1 = config_.beta1, b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float alpha = config_.lr * std::sqrt(bias2) / bias1;
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter& p = *params_[pi];
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    const Index n = p.value.numel();
    for (Index i = 0; i < n; ++i) {
      const float g = p.grad[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      p.value[i] -= alpha * m[i] / (std::sqrt(v[i]) + config_.eps);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.fill(0.0f);
}

}  // namespace paintplace::nn
