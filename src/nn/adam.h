// Adam optimizer with the paper's hyper-parameters as defaults:
// lr = 2e-4, beta1 = 0.5, beta2 = 0.999, eps = 1e-8 (Section 5).
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/serialize.h"

namespace paintplace::nn {

struct AdamConfig {
  float lr = 2e-4f;
  float beta1 = 0.5f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config = {});

  /// Applies one update from the gradients currently accumulated in the
  /// parameters, then leaves the gradients untouched (call zero_grad on the
  /// module before the next backward).
  void step();

  /// Zeroes all parameter gradients.
  void zero_grad();

  Index step_count() const { return t_; }
  const AdamConfig& config() const { return config_; }
  void set_lr(float lr) { config_.lr = lr; }

  /// Snapshots the optimizer state — per-parameter first/second moments and
  /// the step count — into `out` under `prefix` (e.g. "opt_g/"). Together
  /// with the parameter values this makes a resumed run bitwise-identical
  /// to an uninterrupted one.
  void export_state(TensorMap& out, const std::string& prefix) const;

  /// Restores state written by export_state with the same prefix. Every
  /// parameter must be present with a matching shape (the optimizer must be
  /// constructed over the same module). Throws CheckError otherwise.
  void import_state(const TensorMap& map, const std::string& prefix);

  /// True when `map` holds a state exported under `prefix`.
  static bool has_state(const TensorMap& map, const std::string& prefix);

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_, v_;
  Index t_ = 0;
};

}  // namespace paintplace::nn
