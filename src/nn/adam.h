// Adam optimizer with the paper's hyper-parameters as defaults:
// lr = 2e-4, beta1 = 0.5, beta2 = 0.999, eps = 1e-8 (Section 5).
#pragma once

#include <vector>

#include "nn/module.h"

namespace paintplace::nn {

struct AdamConfig {
  float lr = 2e-4f;
  float beta1 = 0.5f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config = {});

  /// Applies one update from the gradients currently accumulated in the
  /// parameters, then leaves the gradients untouched (call zero_grad on the
  /// module before the next backward).
  void step();

  /// Zeroes all parameter gradients.
  void zero_grad();

  Index step_count() const { return t_; }
  const AdamConfig& config() const { return config_; }
  void set_lr(float lr) { config_.lr = lr; }

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_, v_;
  Index t_ = 0;
};

}  // namespace paintplace::nn
