#include "nn/losses.h"

#include <cmath>

namespace paintplace::nn {

float BceWithLogitsLoss::forward(const Tensor& logits, const Tensor& target) {
  PP_CHECK_MSG(logits.shape() == target.shape(), "BCE shape mismatch");
  PP_CHECK(logits.numel() > 0);
  logits_ = logits;
  target_ = target;
  double loss = 0.0;
  const Index n = logits.numel();
  for (Index i = 0; i < n; ++i) {
    const double l = static_cast<double>(logits[i]);
    const double t = static_cast<double>(target[i]);
    loss += std::max(l, 0.0) - l * t + std::log1p(std::exp(-std::fabs(l)));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float BceWithLogitsLoss::forward(const Tensor& logits, float target_value) {
  return forward(logits, Tensor::full(logits.shape(), target_value));
}

Tensor BceWithLogitsLoss::backward() const {
  PP_CHECK_MSG(!logits_.empty(), "BCE backward before forward");
  Tensor grad(logits_.shape());
  const Index n = logits_.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (Index i = 0; i < n; ++i) {
    const float sig = 1.0f / (1.0f + std::exp(-logits_[i]));
    grad[i] = (sig - target_[i]) * inv_n;
  }
  return grad;
}

float L1Loss::forward(const Tensor& prediction, const Tensor& target) {
  PP_CHECK_MSG(prediction.shape() == target.shape(), "L1 shape mismatch");
  PP_CHECK(prediction.numel() > 0);
  prediction_ = prediction;
  target_ = target;
  double loss = 0.0;
  const Index n = prediction.numel();
  for (Index i = 0; i < n; ++i) {
    loss += std::fabs(static_cast<double>(prediction[i]) - static_cast<double>(target[i]));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor L1Loss::backward() const {
  PP_CHECK_MSG(!prediction_.empty(), "L1 backward before forward");
  Tensor grad(prediction_.shape());
  const Index n = prediction_.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (Index i = 0; i < n; ++i) {
    const float d = prediction_[i] - target_[i];
    grad[i] = d > 0.0f ? inv_n : (d < 0.0f ? -inv_n : 0.0f);
  }
  return grad;
}

}  // namespace paintplace::nn
