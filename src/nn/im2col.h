// im2col / col2im for NCHW convolution lowering.
//
// im2col unfolds every kernel window of a (C,H,W) image into a column of a
// (C*kh*kw) x (Hout*Wout) matrix so convolution becomes one GEMM; col2im is
// its adjoint (scatter-add), used for input gradients and for transposed
// convolution.
#pragma once

#include "common/check.h"

namespace paintplace::nn {

struct ConvGeom {
  Index channels = 0;  ///< input channels C
  Index height = 0;    ///< input H
  Index width = 0;     ///< input W
  Index kernel = 0;    ///< square kernel extent
  Index stride = 1;
  Index pad = 0;

  Index out_height() const { return (height + 2 * pad - kernel) / stride + 1; }
  Index out_width() const { return (width + 2 * pad - kernel) / stride + 1; }
  Index col_rows() const { return channels * kernel * kernel; }
  Index col_cols() const { return out_height() * out_width(); }

  void validate() const {
    PP_CHECK(channels > 0 && height > 0 && width > 0);
    PP_CHECK(kernel > 0 && stride > 0 && pad >= 0);
    PP_CHECK_MSG(out_height() > 0 && out_width() > 0, "conv output would be empty");
  }
};

/// image (C,H,W) -> col (C*k*k, Hout*Wout). `col` must hold col_rows*col_cols floats.
void im2col(const ConvGeom& g, const float* image, float* col);

/// Strided variant for batched lowering: writes the same unfold into a wider
/// matrix whose rows are `col_stride` floats apart (col points at this
/// sample's first column). Requires col_stride >= col_cols().
void im2col(const ConvGeom& g, const float* image, float* col, Index col_stride);

/// Adjoint: scatter-add col back into image (C,H,W). `image` must be zeroed
/// by the caller if accumulation from a clean slate is wanted.
void col2im(const ConvGeom& g, const float* col, float* image);

/// Strided variant: reads this sample's columns out of a wider matrix whose
/// rows are `col_stride` floats apart. Requires col_stride >= col_cols().
void col2im(const ConvGeom& g, const float* col, float* image, Index col_stride);

}  // namespace paintplace::nn
