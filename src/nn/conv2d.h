// 2-D convolution (NCHW), the encoder/discriminator workhorse.
// pix2pix uses kernel 4, stride 2, pad 1 throughout; the layer is general.
#pragma once

#include "backend/backend.h"
#include "common/rng.h"
#include "nn/im2col.h"
#include "nn/module.h"

namespace paintplace::nn {

class Conv2d : public Module {
 public:
  /// Weight shape: (out_channels, in_channels, kernel, kernel).
  Conv2d(std::string name, Index in_channels, Index out_channels, Index kernel, Index stride,
         Index pad, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  /// Declares that this conv's output feeds directly into `act` (and nothing
  /// else), letting eval-mode forwards fuse the activation into the GEMM
  /// epilogue. The owning network must then skip its separate activation
  /// module in eval mode — see UNetGenerator. Training forwards ignore the
  /// fusion (backward needs the pre-activation tensor).
  void set_fused_activation(backend::Epilogue::Act act, float slope = 0.0f) {
    fused_act_ = act;
    fused_slope_ = slope;
  }

  Index in_channels() const { return in_channels_; }
  Index out_channels() const { return out_channels_; }
  Parameter& weight() { return weight_; }

 private:
  ConvGeom geom_for(Index h, Index w) const;

  Index in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  backend::Epilogue::Act fused_act_ = backend::Epilogue::Act::kNone;
  float fused_slope_ = 0.0f;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace paintplace::nn
