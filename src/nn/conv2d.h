// 2-D convolution (NCHW), the encoder/discriminator workhorse.
// pix2pix uses kernel 4, stride 2, pad 1 throughout; the layer is general.
#pragma once

#include "common/rng.h"
#include "nn/im2col.h"
#include "nn/module.h"

namespace paintplace::nn {

class Conv2d : public Module {
 public:
  /// Weight shape: (out_channels, in_channels, kernel, kernel).
  Conv2d(std::string name, Index in_channels, Index out_channels, Index kernel, Index stride,
         Index pad, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  Index in_channels() const { return in_channels_; }
  Index out_channels() const { return out_channels_; }
  Parameter& weight() { return weight_; }

 private:
  ConvGeom geom_for(Index h, Index w) const;

  Index in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace paintplace::nn
