// Weight initialisation. pix2pix initialises all conv weights from
// N(0, 0.02) and batch-norm scale from N(1, 0.02); we follow that.
#pragma once

#include "common/rng.h"
#include "nn/tensor.h"

namespace paintplace::nn {

inline void init_normal(Tensor& t, Rng& rng, float mean = 0.0f, float stddev = 0.02f) {
  for (Index i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(static_cast<double>(mean), static_cast<double>(stddev)));
  }
}

}  // namespace paintplace::nn
