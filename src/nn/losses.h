// Loss functions of the cGAN objective (Eq. 2 of the paper + L1 term).
//
// Each loss exposes forward(prediction, target) -> scalar and
// backward() -> gradient w.r.t. the prediction of the last forward.
#pragma once

#include "nn/tensor.h"

namespace paintplace::nn {

/// Numerically-stable binary cross entropy on raw logits:
/// mean over elements of  max(l,0) - l*t + log(1 + exp(-|l|)).
/// The discriminator's sigmoid (Fig. 5) is folded in here.
class BceWithLogitsLoss {
 public:
  /// `target` is either a full tensor or broadcast from a scalar via the
  /// convenience overload below.
  float forward(const Tensor& logits, const Tensor& target);
  float forward(const Tensor& logits, float target_value);
  Tensor backward() const;

 private:
  Tensor logits_, target_;
};

/// Mean absolute error; the paper weights it by 50 in the generator loss.
class L1Loss {
 public:
  float forward(const Tensor& prediction, const Tensor& target);
  Tensor backward() const;

 private:
  Tensor prediction_, target_;
};

}  // namespace paintplace::nn
