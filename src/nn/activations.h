// Elementwise activation modules: LeakyReLU(0.2) for encoders/discriminator,
// ReLU for decoders, Tanh for the generator head, Sigmoid exposed for
// completeness (training uses BCE-with-logits instead).
#pragma once

#include "nn/module.h"

namespace paintplace::nn {

class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.2f) : slope_(negative_slope) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  float slope_;
  Tensor cached_input_;
};

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

class Sigmoid : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

}  // namespace paintplace::nn
