#include "nn/instancenorm2d.h"

#include <cmath>

namespace paintplace::nn {

InstanceNorm2d::InstanceNorm2d(std::string name, Index channels, float eps)
    : channels_(channels),
      eps_(eps),
      gamma_(name + ".gamma", Shape{channels}),
      beta_(name + ".beta", Shape{channels}) {
  PP_CHECK(channels > 0 && eps > 0.0f);
  gamma_.value.fill(1.0f);
}

Tensor InstanceNorm2d::forward(const Tensor& input) {
  PP_CHECK_MSG(input.rank() == 4 && input.dim(1) == channels_,
               "InstanceNorm2d " << gamma_.name << ": bad input " << input.shape().str());
  const Index N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const Index plane = H * W;
  Tensor output(input.shape());
  const bool cache = training_;  // backward never follows an eval forward
  cached_normalized_ = cache ? Tensor(input.shape()) : Tensor();
  cached_inv_std_.assign(cache ? static_cast<std::size_t>(N * channels_) : 0, 0.0f);
  for (Index n = 0; n < N; ++n) {
    for (Index c = 0; c < channels_; ++c) {
      const float* x = input.data() + (n * channels_ + c) * plane;
      double sum = 0.0, sq = 0.0;
      for (Index i = 0; i < plane; ++i) {
        sum += static_cast<double>(x[i]);
        sq += static_cast<double>(x[i]) * static_cast<double>(x[i]);
      }
      const double mean = sum / static_cast<double>(plane);
      const double var = std::max(0.0, sq / static_cast<double>(plane) - mean * mean);
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      const float g = gamma_.value[c], b = beta_.value[c], m = static_cast<float>(mean);
      float* y = output.data() + (n * channels_ + c) * plane;
      if (cache) {
        cached_inv_std_[static_cast<std::size_t>(n * channels_ + c)] = inv_std;
        float* xh = cached_normalized_.data() + (n * channels_ + c) * plane;
        for (Index i = 0; i < plane; ++i) {
          xh[i] = (x[i] - m) * inv_std;
          y[i] = g * xh[i] + b;
        }
      } else {
        for (Index i = 0; i < plane; ++i) y[i] = g * ((x[i] - m) * inv_std) + b;
      }
    }
  }
  return output;
}

Tensor InstanceNorm2d::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!cached_normalized_.empty(), "InstanceNorm2d backward before forward");
  PP_CHECK(grad_output.shape() == cached_normalized_.shape());
  const Index N = grad_output.dim(0), H = grad_output.dim(2), W = grad_output.dim(3);
  const Index plane = H * W;
  const double count = static_cast<double>(plane);
  Tensor grad_input(grad_output.shape());
  for (Index n = 0; n < N; ++n) {
    for (Index c = 0; c < channels_; ++c) {
      const float* dy = grad_output.data() + (n * channels_ + c) * plane;
      const float* xh = cached_normalized_.data() + (n * channels_ + c) * plane;
      double sum_dy = 0.0, sum_dy_xhat = 0.0;
      for (Index i = 0; i < plane; ++i) {
        sum_dy += static_cast<double>(dy[i]);
        sum_dy_xhat += static_cast<double>(dy[i]) * static_cast<double>(xh[i]);
      }
      gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
      beta_.grad[c] += static_cast<float>(sum_dy);
      const double g_inv_std_m =
          static_cast<double>(gamma_.value[c]) *
          static_cast<double>(cached_inv_std_[static_cast<std::size_t>(n * channels_ + c)]) /
          count;
      float* dx = grad_input.data() + (n * channels_ + c) * plane;
      for (Index i = 0; i < plane; ++i) {
        dx[i] = static_cast<float>(g_inv_std_m * (count * static_cast<double>(dy[i]) - sum_dy -
                                                  static_cast<double>(xh[i]) * sum_dy_xhat));
      }
    }
  }
  return grad_input;
}

void InstanceNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace paintplace::nn
