#include "nn/tensor_ops.h"

#include <cstring>

#include "common/parallel.h"

namespace paintplace::nn {
namespace {

// Channel-row copies fan out over the pool once the tensor is big enough
// that memory bandwidth, not dispatch, dominates. Skip connections at the
// outer U-Net levels move multi-megabyte activations through these ops every
// forward pass; tiny test tensors stay serial.
constexpr Index kParallelGrain = Index{1} << 15;

void copy_rows(Index rows, Index total, const std::function<void(Index)>& row_fn) {
  if (total < kParallelGrain) {
    for (Index r = 0; r < rows; ++r) row_fn(r);
  } else {
    parallel_for_each(rows, row_fn);
  }
}

}  // namespace

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  PP_CHECK_MSG(a.rank() == 4 && b.rank() == 4, "concat_channels needs NCHW tensors");
  PP_CHECK_MSG(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2) && a.dim(3) == b.dim(3),
               "concat_channels mismatch " << a.shape().str() << " vs " << b.shape().str());
  const Index N = a.dim(0), Ca = a.dim(1), Cb = b.dim(1), H = a.dim(2), W = a.dim(3);
  const Index plane = H * W;
  Tensor out(Shape{N, Ca + Cb, H, W});
  copy_rows(N, out.numel(), [&](Index n) {
    std::memcpy(out.data() + (n * (Ca + Cb)) * plane, a.data() + n * Ca * plane,
                sizeof(float) * static_cast<std::size_t>(Ca * plane));
    std::memcpy(out.data() + (n * (Ca + Cb) + Ca) * plane, b.data() + n * Cb * plane,
                sizeof(float) * static_cast<std::size_t>(Cb * plane));
  });
  return out;
}

std::pair<Tensor, Tensor> split_channels(const Tensor& grad, Index channels_a) {
  PP_CHECK_MSG(grad.rank() == 4, "split_channels needs NCHW tensor");
  const Index N = grad.dim(0), C = grad.dim(1), H = grad.dim(2), W = grad.dim(3);
  PP_CHECK_MSG(channels_a > 0 && channels_a < C, "split point out of range");
  const Index Cb = C - channels_a;
  const Index plane = H * W;
  Tensor a(Shape{N, channels_a, H, W});
  Tensor b(Shape{N, Cb, H, W});
  copy_rows(N, grad.numel(), [&](Index n) {
    std::memcpy(a.data() + n * channels_a * plane, grad.data() + (n * C) * plane,
                sizeof(float) * static_cast<std::size_t>(channels_a * plane));
    std::memcpy(b.data() + n * Cb * plane, grad.data() + (n * C + channels_a) * plane,
                sizeof(float) * static_cast<std::size_t>(Cb * plane));
  });
  return {std::move(a), std::move(b)};
}

Tensor stack_batch(const std::vector<const Tensor*>& samples) {
  PP_CHECK_MSG(!samples.empty(), "stack_batch on empty sample list");
  const Tensor& first = *samples.front();
  PP_CHECK_MSG(first.rank() == 4 && first.dim(0) == 1,
               "stack_batch expects (1,C,H,W) samples, got " << first.shape().str());
  const Index C = first.dim(1), H = first.dim(2), W = first.dim(3);
  const Index sample_numel = C * H * W;
  const Index N = static_cast<Index>(samples.size());
  for (Index n = 0; n < N; ++n) {
    const Tensor& s = *samples[static_cast<std::size_t>(n)];
    PP_CHECK_MSG(s.shape() == first.shape(), "stack_batch sample " << n << " shape "
                                                                   << s.shape().str()
                                                                   << " != " << first.shape().str());
  }
  Tensor out(Shape{N, C, H, W});
  copy_rows(N, out.numel(), [&](Index n) {
    std::memcpy(out.data() + n * sample_numel, samples[static_cast<std::size_t>(n)]->data(),
                sizeof(float) * static_cast<std::size_t>(sample_numel));
  });
  return out;
}

Tensor slice_batch(const Tensor& batch, Index n) {
  PP_CHECK_MSG(batch.rank() == 4, "slice_batch needs an NCHW tensor");
  const Index N = batch.dim(0), C = batch.dim(1), H = batch.dim(2), W = batch.dim(3);
  PP_CHECK_MSG(n >= 0 && n < N, "slice_batch index " << n << " out of batch " << N);
  const Index sample_numel = C * H * W;
  Tensor out(Shape{1, C, H, W});
  std::memcpy(out.data(), batch.data() + n * sample_numel,
              sizeof(float) * static_cast<std::size_t>(sample_numel));
  return out;
}

}  // namespace paintplace::nn
