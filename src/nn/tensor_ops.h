// Structural tensor ops used by composite networks: channel concatenation
// (U-Net skip connections) and its adjoint split, plus batch stacking and
// slicing used by the micro-batched serving layer.
#pragma once

#include <vector>

#include "nn/tensor.h"

namespace paintplace::nn {

/// Concatenates two NCHW tensors along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b);

/// Adjoint of concat_channels: splits grad of the concatenated tensor back
/// into the two channel groups (first `channels_a` channels vs the rest).
std::pair<Tensor, Tensor> split_channels(const Tensor& grad, Index channels_a);

/// Stacks single-sample NCHW tensors (each with dim(0) == 1 and identical
/// C,H,W) into one (N,C,H,W) batch.
Tensor stack_batch(const std::vector<const Tensor*>& samples);

/// Extracts sample `n` of an (N,C,H,W) batch as a (1,C,H,W) tensor.
Tensor slice_batch(const Tensor& batch, Index n);

}  // namespace paintplace::nn
