// Structural tensor ops used by composite networks: channel concatenation
// (U-Net skip connections) and its adjoint split.
#pragma once

#include "nn/tensor.h"

namespace paintplace::nn {

/// Concatenates two NCHW tensors along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b);

/// Adjoint of concat_channels: splits grad of the concatenated tensor back
/// into the two channel groups (first `channels_a` channels vs the rest).
std::pair<Tensor, Tensor> split_channels(const Tensor& grad, Index channels_a);

}  // namespace paintplace::nn
