// Transposed 2-D convolution (a.k.a. deconvolution) for the U-Net decoder.
// With kernel 4, stride 2, pad 1 it exactly doubles the spatial extent.
#pragma once

#include "backend/backend.h"
#include "common/rng.h"
#include "nn/im2col.h"
#include "nn/module.h"

namespace paintplace::nn {

class ConvTranspose2d : public Module {
 public:
  /// Weight shape: (in_channels, out_channels, kernel, kernel) — PyTorch layout.
  ConvTranspose2d(std::string name, Index in_channels, Index out_channels, Index kernel,
                  Index stride, Index pad, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  /// Declares the activation that directly consumes this layer's output, so
  /// eval-mode forwards apply bias + activation in one fused pass after the
  /// col2im scatter (the GEMM result here is the col matrix, not the output,
  /// so unlike Conv2d the activation cannot ride the GEMM epilogue — but it
  /// shares the bias traversal instead of costing its own). The owning
  /// network must skip its separate activation module in eval mode.
  void set_fused_activation(backend::Epilogue::Act act, float slope = 0.0f) {
    fused_act_ = act;
    fused_slope_ = slope;
  }

  Index out_height(Index in_h) const { return (in_h - 1) * stride_ - 2 * pad_ + kernel_; }
  Index out_width(Index in_w) const { return (in_w - 1) * stride_ - 2 * pad_ + kernel_; }

 private:
  /// Geometry of the *equivalent forward conv* that maps output -> input.
  ConvGeom geom_for_output(Index out_h, Index out_w) const;

  Index in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  backend::Epilogue::Act fused_act_ = backend::Epilogue::Act::kNone;
  float fused_slope_ = 0.0f;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace paintplace::nn
