// Transposed 2-D convolution (a.k.a. deconvolution) for the U-Net decoder.
// With kernel 4, stride 2, pad 1 it exactly doubles the spatial extent.
#pragma once

#include "common/rng.h"
#include "nn/im2col.h"
#include "nn/module.h"

namespace paintplace::nn {

class ConvTranspose2d : public Module {
 public:
  /// Weight shape: (in_channels, out_channels, kernel, kernel) — PyTorch layout.
  ConvTranspose2d(std::string name, Index in_channels, Index out_channels, Index kernel,
                  Index stride, Index pad, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  Index out_height(Index in_h) const { return (in_h - 1) * stride_ - 2 * pad_ + kernel_; }
  Index out_width(Index in_w) const { return (in_w - 1) * stride_ - 2 * pad_ + kernel_; }

 private:
  /// Geometry of the *equivalent forward conv* that maps output -> input.
  ConvGeom geom_for_output(Index out_h, Index out_w) const;

  Index in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace paintplace::nn
