#include "nn/gemm.h"

#include "backend/backend.h"

namespace paintplace::nn {

// The wrappers own the argument validation so every backend can assume a
// well-formed call; the math itself lives in src/backend/.

void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
           float* C) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  backend::active_backend().sgemm(M, N, K, alpha, A, B, beta, C);
}

void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  backend::active_backend().sgemm_at(M, N, K, alpha, A, B, beta, C);
}

void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  backend::active_backend().sgemm_bt(M, N, K, alpha, A, B, beta, C);
}

}  // namespace paintplace::nn
