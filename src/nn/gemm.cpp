#include "nn/gemm.h"

#include "backend/backend.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace paintplace::nn {

// The wrappers own the argument validation so every backend can assume a
// well-formed call; the math itself lives in src/backend/. They are also
// the single choke point every conv/deconv GEMM passes through — for either
// backend — so the kernel-level observability lives here: a span per call
// annotated with M/N/K and the achieved GFLOP/s (the profile doubles as a
// roofline), plus process-wide call/FLOP counters.

namespace {

struct GemmMetrics {
  obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "gemm_calls_total", "GEMM kernel invocations (all variants)");
  obs::Counter& flops = obs::MetricsRegistry::global().counter(
      "gemm_flops_total", "floating-point operations issued to GEMM kernels");
};

GemmMetrics& gemm_metrics() {
  static GemmMetrics m;
  return m;
}

double gemm_flops(Index M, Index N, Index K) {
  return 2.0 * static_cast<double>(M) * static_cast<double>(N) * static_cast<double>(K);
}

void annotate(obs::Span& span, Index M, Index N, Index K) {
  if (!span.active()) return;
  span.arg("M", static_cast<std::int64_t>(M));
  span.arg("N", static_cast<std::int64_t>(N));
  span.arg("K", static_cast<std::int64_t>(K));
  span.arg("backend", backend::active_backend().name());
  span.flops(gemm_flops(M, N, K));
}

void count(Index M, Index N, Index K) {
  GemmMetrics& m = gemm_metrics();
  m.calls.fetch_add(1);
  m.flops.fetch_add(static_cast<std::uint64_t>(gemm_flops(M, N, K)));
}

}  // namespace

void sgemm(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
           float* C) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  obs::Span span("gemm.sgemm", "gemm");
  annotate(span, M, N, K);
  count(M, N, K);
  backend::active_backend().sgemm(M, N, K, alpha, A, B, beta, C);
}

void sgemm_at(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  obs::Span span("gemm.sgemm_at", "gemm");
  annotate(span, M, N, K);
  count(M, N, K);
  backend::active_backend().sgemm_at(M, N, K, alpha, A, B, beta, C);
}

void sgemm_bt(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  obs::Span span("gemm.sgemm_bt", "gemm");
  annotate(span, M, N, K);
  count(M, N, K);
  backend::active_backend().sgemm_bt(M, N, K, alpha, A, B, beta, C);
}

// The _ex wrappers keep the plain span names: a fused call is the same
// logical GEMM to the trace consumers (CI asserts on gemm.* spans with
// M/N/K/backend args), it just does more per byte of C traffic.

void sgemm_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B, float beta,
              float* C, const backend::GemmArgs& args) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  obs::Span span("gemm.sgemm", "gemm");
  annotate(span, M, N, K);
  count(M, N, K);
  backend::active_backend().sgemm_ex(M, N, K, alpha, A, B, beta, C, args);
}

void sgemm_at_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                 float beta, float* C, const backend::GemmArgs& args) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  obs::Span span("gemm.sgemm_at", "gemm");
  annotate(span, M, N, K);
  count(M, N, K);
  backend::active_backend().sgemm_at_ex(M, N, K, alpha, A, B, beta, C, args);
}

void sgemm_bt_ex(Index M, Index N, Index K, float alpha, const float* A, const float* B,
                 float beta, float* C, const backend::GemmArgs& args) {
  PP_CHECK(M >= 0 && N >= 0 && K >= 0);
  obs::Span span("gemm.sgemm_bt", "gemm");
  annotate(span, M, N, K);
  count(M, N, K);
  backend::active_backend().sgemm_bt_ex(M, N, K, alpha, A, B, beta, C, args);
}

}  // namespace paintplace::nn
