// Instance normalisation: per-sample, per-channel statistics over (H,W).
//
// pix2pix-family models are trained with batch size 1 (as is this paper's
// model, Sec. 5), where batch norm degenerates to instance norm during
// training but then diverges at eval time via running statistics. Instance
// norm removes that train/eval mismatch; the repo exposes both so the choice
// is an ablation rather than an accident.
#pragma once

#include "nn/module.h"

namespace paintplace::nn {

class InstanceNorm2d : public Module {
 public:
  InstanceNorm2d(std::string name, Index channels, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  Index channels_;
  float eps_;
  Parameter gamma_, beta_;

  Tensor cached_normalized_;
  std::vector<float> cached_inv_std_;  // one per (n, c) plane
};

}  // namespace paintplace::nn
