// Dense float32 tensor in NCHW layout — the value type of the nn framework.
//
// Kept deliberately simple: contiguous storage, up-to-4-D shapes, bounds
// checks on the scalar accessors, raw-pointer access for the hot kernels
// (gemm / im2col), and a handful of whole-tensor reductions used by losses
// and tests. No views, no broadcasting: the network code in this repo never
// needs them, and their absence keeps aliasing reasoning trivial.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"

namespace paintplace::nn {

using paintplace::Index;

/// Tensor shape: an ordered list of extents. Empty shape = scalar tensor
/// with one element (used for loss values).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<Index> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<Index> dims) : dims_(std::move(dims)) { validate(); }

  Index rank() const { return static_cast<Index>(dims_.size()); }
  Index operator[](Index i) const {
    PP_CHECK_MSG(i >= 0 && i < rank(), "shape dim " << i << " out of range");
    return dims_[static_cast<std::size_t>(i)];
  }
  Index numel() const {
    Index n = 1;
    for (Index d : dims_) n *= d;
    return n;
  }
  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  const std::vector<Index>& dims() const { return dims_; }
  std::string str() const;

 private:
  void validate() const {
    for (Index d : dims_) PP_CHECK_MSG(d >= 0, "negative shape extent");
  }
  std::vector<Index> dims_;
};

/// Dense float tensor. Value semantics (copy copies the buffer).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(std::move(shape)) {
    data_.assign(static_cast<std::size_t>(shape_.numel()), 0.0f);
  }
  Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)), data_(std::move(data)) {
    PP_CHECK_MSG(static_cast<Index>(data_.size()) == shape_.numel(),
                 "data size does not match shape " << shape_.str());
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor scalar(float value) { return Tensor(Shape{}, {value}); }

  const Shape& shape() const { return shape_; }
  Index rank() const { return shape_.rank(); }
  Index dim(Index i) const { return shape_[i]; }
  Index numel() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](Index i) {
    PP_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i << " out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](Index i) const {
    PP_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i << " out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  /// 4-D accessor (NCHW). Checked.
  float& at(Index n, Index c, Index h, Index w) { return data_[offset4(n, c, h, w)]; }
  float at(Index n, Index c, Index h, Index w) const { return data_[offset4(n, c, h, w)]; }

  /// Scalar value of a one-element tensor.
  float item() const {
    PP_CHECK_MSG(numel() == 1, "item() on tensor with " << numel() << " elements");
    return data_[0];
  }

  void fill(float value) { data_.assign(data_.size(), value); }

  /// Reinterpret the buffer with a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const {
    PP_CHECK_MSG(new_shape.numel() == numel(), "reshape numel mismatch");
    return Tensor(std::move(new_shape), data_);
  }

  // ---- In-place arithmetic used by optimizers and losses ----
  Tensor& add_(const Tensor& other, float alpha = 1.0f);
  Tensor& sub_(const Tensor& other) { return add_(other, -1.0f); }
  Tensor& mul_(float s);

  // ---- Reductions ----
  double sum() const;
  double mean() const { return numel() == 0 ? 0.0 : sum() / static_cast<double>(numel()); }
  float min() const;
  float max() const;
  /// Largest absolute element-wise difference to `other` (shapes must match).
  float max_abs_diff(const Tensor& other) const;
  /// Mean |a - b| over all elements (the validation L1 metric).
  double mean_abs_diff(const Tensor& other) const;

 private:
  std::size_t offset4(Index n, Index c, Index h, Index w) const {
    PP_CHECK_MSG(rank() == 4, "at(n,c,h,w) on rank-" << rank() << " tensor");
    const Index N = shape_[0], C = shape_[1], H = shape_[2], W = shape_[3];
    PP_CHECK_MSG(n >= 0 && n < N && c >= 0 && c < C && h >= 0 && h < H && w >= 0 && w < W,
                 "index (" << n << "," << c << "," << h << "," << w << ") out of " << shape_.str());
    return static_cast<std::size_t>(((n * C + c) * H + h) * W + w);
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace paintplace::nn
