// Dropout — pix2pix's replacement for the GAN noise vector z.
//
// Unlike classifier dropout, the paper's model (following Isola et al.)
// keeps dropout ACTIVE at inference: it is the stochastic input z of
// G(x, z). `set_training(false)` therefore does not disable it; construct
// with `active_in_eval = false` for conventional behaviour.
#pragma once

#include "common/rng.h"
#include "nn/module.h"

namespace paintplace::nn {

class Dropout : public Module {
 public:
  Dropout(float probability, std::uint64_t seed, bool active_in_eval = true)
      : probability_(probability), rng_(seed), active_in_eval_(active_in_eval) {
    PP_CHECK(probability >= 0.0f && probability < 1.0f);
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Re-seed the noise stream (used to make inference deterministic in tests).
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Freeze or re-enable the inference noise z: with eval activity off, an
  /// eval-mode forward is the identity, making inference a pure function of
  /// the input (required by the serving layer's result cache).
  void set_active_in_eval(bool active) { active_in_eval_ = active; }
  bool active_in_eval() const { return active_in_eval_; }

 private:
  bool active() const { return training_ || active_in_eval_; }

  float probability_;
  Rng rng_;
  bool active_in_eval_;
  Tensor mask_;  // scaled keep-mask of the last forward
};

}  // namespace paintplace::nn
