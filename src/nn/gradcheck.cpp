#include "nn/gradcheck.h"

#include <cmath>

#include "common/rng.h"

namespace paintplace::nn {
namespace {

double weighted_sum(const Tensor& t, const Tensor& w) {
  double s = 0.0;
  for (Index i = 0; i < t.numel(); ++i) {
    s += static_cast<double>(t[i]) * static_cast<double>(w[i]);
  }
  return s;
}

/// Per-tensor normalized error: the largest |analytic - numeric| over the
/// tensor, scaled by the largest gradient magnitude seen in it. Comparing
/// per element with a tiny absolute floor makes near-zero gradients fail on
/// pure float roundoff; per-tensor scaling measures what matters — whether
/// the backward pass computes the right derivative field.
float tensor_error(const std::vector<double>& analytic, const std::vector<double>& numeric) {
  double max_diff = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(analytic[i] - numeric[i]));
    scale = std::max({scale, std::fabs(analytic[i]), std::fabs(numeric[i])});
  }
  return static_cast<float>(max_diff / std::max(scale, 1e-3));
}

float tensor_l2_error(const std::vector<double>& analytic, const std::vector<double>& numeric) {
  double diff_sq = 0.0, ref_sq = 0.0;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    diff_sq += (analytic[i] - numeric[i]) * (analytic[i] - numeric[i]);
    ref_sq += numeric[i] * numeric[i];
  }
  return static_cast<float>(std::sqrt(diff_sq) / std::max(std::sqrt(ref_sq), 1e-3));
}

}  // namespace

GradCheckResult grad_check(Module& module, const Tensor& input, std::uint64_t seed,
                           float epsilon) {
  Rng rng(seed);
  Tensor probe_input = input;
  Tensor out = module.forward(probe_input);
  Tensor weights(out.shape());
  for (Index i = 0; i < weights.numel(); ++i) {
    weights[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  module.zero_grad();
  // d(sum(out * w))/d(out) = w
  Tensor grad_in = module.backward(weights);

  GradCheckResult result;

  // Input gradients.
  {
    std::vector<double> analytic, numeric;
    for (Index i = 0; i < probe_input.numel(); ++i) {
      const float saved = probe_input[i];
      probe_input[i] = saved + epsilon;
      const double f_plus = weighted_sum(module.forward(probe_input), weights);
      probe_input[i] = saved - epsilon;
      const double f_minus = weighted_sum(module.forward(probe_input), weights);
      probe_input[i] = saved;
      numeric.push_back((f_plus - f_minus) / (2.0 * static_cast<double>(epsilon)));
      analytic.push_back(static_cast<double>(grad_in[i]));
    }
    result.max_input_grad_error = tensor_error(analytic, numeric);
    result.input_l2_error = tensor_l2_error(analytic, numeric);
  }

  // Parameter gradients, one normalized comparison per parameter tensor.
  for (Parameter* p : module.parameters()) {
    std::vector<double> analytic, numeric;
    for (Index i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + epsilon;
      const double f_plus = weighted_sum(module.forward(probe_input), weights);
      p->value[i] = saved - epsilon;
      const double f_minus = weighted_sum(module.forward(probe_input), weights);
      p->value[i] = saved;
      numeric.push_back((f_plus - f_minus) / (2.0 * static_cast<double>(epsilon)));
      analytic.push_back(static_cast<double>(p->grad[i]));
    }
    result.max_param_grad_error =
        std::max(result.max_param_grad_error, tensor_error(analytic, numeric));
    result.max_param_l2_error =
        std::max(result.max_param_l2_error, tensor_l2_error(analytic, numeric));
  }
  return result;
}

}  // namespace paintplace::nn
