#include "nn/im2col.h"

#include "common/parallel.h"

namespace paintplace::nn {

void im2col(const ConvGeom& g, const float* image, float* col, Index col_stride) {
  g.validate();
  const Index Ho = g.out_height(), Wo = g.out_width();
  PP_CHECK_MSG(col_stride >= Ho * Wo, "im2col col_stride narrower than the unfold");
  const Index kk = g.kernel * g.kernel;
  // Every (channel, kh, kw) row of the col matrix is independent.
  parallel_for_each(g.channels * kk, [&](Index row) {
    const Index c = row / kk;
    const Index kh = (row % kk) / g.kernel;
    const Index kw = row % g.kernel;
    const float* img_c = image + c * g.height * g.width;
    float* dst = col + row * col_stride;
    for (Index oh = 0; oh < Ho; ++oh) {
      const Index ih = oh * g.stride + kh - g.pad;
      if (ih < 0 || ih >= g.height) {
        for (Index ow = 0; ow < Wo; ++ow) dst[oh * Wo + ow] = 0.0f;
        continue;
      }
      const float* src_row = img_c + ih * g.width;
      for (Index ow = 0; ow < Wo; ++ow) {
        const Index iw = ow * g.stride + kw - g.pad;
        dst[oh * Wo + ow] = (iw >= 0 && iw < g.width) ? src_row[iw] : 0.0f;
      }
    }
  });
}

void im2col(const ConvGeom& g, const float* image, float* col) {
  im2col(g, image, col, g.col_cols());
}

void col2im(const ConvGeom& g, const float* col, float* image, Index col_stride) {
  g.validate();
  const Index Ho = g.out_height(), Wo = g.out_width();
  PP_CHECK_MSG(col_stride >= Ho * Wo, "col2im col_stride narrower than the unfold");
  // Rows of one channel scatter into the same image plane, so the parallel
  // unit is the channel, not the row.
  parallel_for_each(g.channels, [&](Index c) {
    float* img_c = image + c * g.height * g.width;
    Index row = c * g.kernel * g.kernel;
    for (Index kh = 0; kh < g.kernel; ++kh) {
      for (Index kw = 0; kw < g.kernel; ++kw, ++row) {
        const float* src = col + row * col_stride;
        for (Index oh = 0; oh < Ho; ++oh) {
          const Index ih = oh * g.stride + kh - g.pad;
          if (ih < 0 || ih >= g.height) continue;
          float* dst_row = img_c + ih * g.width;
          for (Index ow = 0; ow < Wo; ++ow) {
            const Index iw = ow * g.stride + kw - g.pad;
            if (iw >= 0 && iw < g.width) dst_row[iw] += src[oh * Wo + ow];
          }
        }
      }
    }
  });
}

void col2im(const ConvGeom& g, const float* col, float* image) {
  col2im(g, col, image, g.col_cols());
}

}  // namespace paintplace::nn
