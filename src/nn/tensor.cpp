#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/parallel.h"

namespace paintplace::nn {
namespace {

// Elementwise loops fan out over the pool only past this size — below it the
// dispatch overhead beats the work. Chosen so optimizer updates on real layer
// weights parallelise while per-pixel scalars and test tensors stay serial.
constexpr Index kParallelGrain = Index{1} << 15;

}  // namespace

std::string Shape::str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor& Tensor::add_(const Tensor& other, float alpha) {
  PP_CHECK_MSG(shape_ == other.shape_, "add_ shape mismatch " << shape_.str() << " vs "
                                                              << other.shape_.str());
  const float* src = other.data();
  float* dst = data();
  const Index n = numel();
  if (n < kParallelGrain) {
    for (Index i = 0; i < n; ++i) dst[i] += alpha * src[i];
  } else {
    parallel_for(n, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) dst[i] += alpha * src[i];
    });
  }
  return *this;
}

Tensor& Tensor::mul_(float s) {
  float* dst = data();
  const Index n = numel();
  if (n < kParallelGrain) {
    for (Index i = 0; i < n; ++i) dst[i] *= s;
  } else {
    parallel_for(n, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) dst[i] *= s;
    });
  }
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v);
  return s;
}

float Tensor::min() const {
  PP_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  PP_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::max_abs_diff(const Tensor& other) const {
  PP_CHECK_MSG(shape_ == other.shape_, "max_abs_diff shape mismatch");
  float m = 0.0f;
  for (Index i = 0; i < numel(); ++i) {
    m = std::max(m, std::fabs(data_[static_cast<std::size_t>(i)] -
                              other.data_[static_cast<std::size_t>(i)]));
  }
  return m;
}

double Tensor::mean_abs_diff(const Tensor& other) const {
  PP_CHECK_MSG(shape_ == other.shape_, "mean_abs_diff shape mismatch");
  if (numel() == 0) return 0.0;
  double s = 0.0;
  for (Index i = 0; i < numel(); ++i) {
    s += std::fabs(static_cast<double>(data_[static_cast<std::size_t>(i)]) -
                   static_cast<double>(other.data_[static_cast<std::size_t>(i)]));
  }
  return s / static_cast<double>(numel());
}

}  // namespace paintplace::nn
