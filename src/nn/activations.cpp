#include "nn/activations.h"

#include <cmath>

namespace paintplace::nn {

Tensor LeakyReLU::forward(const Tensor& input) {
  // Backward caches are only needed when training; inference skips the copy.
  cached_input_ = training_ ? input : Tensor();
  Tensor out(input.shape());
  const Index n = input.numel();
  for (Index i = 0; i < n; ++i) out[i] = input[i] > 0.0f ? input[i] : slope_ * input[i];
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!cached_input_.empty(), "LeakyReLU backward before forward");
  PP_CHECK(grad_output.shape() == cached_input_.shape());
  Tensor gin(grad_output.shape());
  const Index n = grad_output.numel();
  for (Index i = 0; i < n; ++i) {
    gin[i] = cached_input_[i] > 0.0f ? grad_output[i] : slope_ * grad_output[i];
  }
  return gin;
}

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = training_ ? input : Tensor();
  Tensor out(input.shape());
  const Index n = input.numel();
  for (Index i = 0; i < n; ++i) out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!cached_input_.empty(), "ReLU backward before forward");
  PP_CHECK(grad_output.shape() == cached_input_.shape());
  Tensor gin(grad_output.shape());
  const Index n = grad_output.numel();
  for (Index i = 0; i < n; ++i) gin[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  return gin;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out(input.shape());
  const Index n = input.numel();
  for (Index i = 0; i < n; ++i) out[i] = std::tanh(input[i]);
  cached_output_ = training_ ? out : Tensor();
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!cached_output_.empty(), "Tanh backward before forward");
  PP_CHECK(grad_output.shape() == cached_output_.shape());
  Tensor gin(grad_output.shape());
  const Index n = grad_output.numel();
  for (Index i = 0; i < n; ++i) {
    gin[i] = grad_output[i] * (1.0f - cached_output_[i] * cached_output_[i]);
  }
  return gin;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out(input.shape());
  const Index n = input.numel();
  for (Index i = 0; i < n; ++i) out[i] = 1.0f / (1.0f + std::exp(-input[i]));
  cached_output_ = training_ ? out : Tensor();
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!cached_output_.empty(), "Sigmoid backward before forward");
  PP_CHECK(grad_output.shape() == cached_output_.shape());
  Tensor gin(grad_output.shape());
  const Index n = grad_output.numel();
  for (Index i = 0; i < n; ++i) {
    gin[i] = grad_output[i] * cached_output_[i] * (1.0f - cached_output_[i]);
  }
  return gin;
}

}  // namespace paintplace::nn
