#include "nn/conv_transpose2d.h"

#include <cstring>

#include "backend/workspace.h"
#include "common/parallel.h"
#include "nn/gemm.h"
#include "nn/init.h"
#include "obs/trace.h"

namespace paintplace::nn {

// Transposed convolution is the adjoint of a strided convolution: if conv
// with geometry g maps an image of size (out_h, out_w) down to (in_h, in_w),
// then this layer maps (in_h, in_w) up to (out_h, out_w) by running the
// conv's backward-data pass as its forward (col2im scatter) and the conv's
// forward as its backward.

ConvTranspose2d::ConvTranspose2d(std::string name, Index in_channels, Index out_channels,
                                 Index kernel, Index stride, Index pad, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_(name + ".weight", Shape{in_channels, out_channels, kernel, kernel}),
      bias_(name + ".bias", Shape{bias ? out_channels : 0}) {
  PP_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 && pad >= 0);
  init_normal(weight_.value, rng);
}

ConvGeom ConvTranspose2d::geom_for_output(Index out_h, Index out_w) const {
  return ConvGeom{out_channels_, out_h, out_w, kernel_, stride_, pad_};
}

Tensor ConvTranspose2d::forward(const Tensor& input) {
  PP_CHECK_MSG(input.rank() == 4 && input.dim(1) == in_channels_,
               "ConvTranspose2d " << weight_.name << ": bad input " << input.shape().str()
                                  << ", expected (N," << in_channels_ << ",H,W)");
  if (training_) {
    cached_input_ = input;
  } else {
    cached_input_ = Tensor();  // inference: no backward, skip the activation copy
  }
  const Index N = input.dim(0), H = input.dim(2), W = input.dim(3);
  // Per-layer span, as in Conv2d::forward; GEMM child spans nest inside.
  obs::Span span(weight_.name, "layer");
  if (span.active()) {
    span.arg("N", N);
    span.arg("HxW", H * W);
    span.arg("Cin", in_channels_);
    span.arg("Cout", out_channels_);
  }
  const Index Ho = out_height(H), Wo = out_width(W);
  PP_CHECK_MSG(Ho > 0 && Wo > 0, "ConvTranspose2d output would be empty");
  const ConvGeom g = geom_for_output(Ho, Wo);
  PP_CHECK(g.out_height() == H && g.out_width() == W);

  Tensor output(Shape{N, out_channels_, Ho, Wo});
  const Index plane = H * W;
  // The GEMM's weight panels are cached across eval forwards (the GEMM
  // result is the col matrix that col2im scatter-adds, so bias/activation
  // cannot ride the GEMM epilogue here — they fuse after col2im below).
  backend::GemmArgs gemm_args;
  gemm_args.cache_weights = !training_;
  gemm_args.weight_version = weight_.version;
  // Scratch comes from the thread's workspace arena (see Conv2d::forward).
  backend::WorkspaceScope ws;
  if (N == 1) {
    float* col = ws.alloc(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    // col(Cout*k*k, H*W) = weight^T(Cout*k*k, Cin) * x(Cin, H*W)
    sgemm_at_ex(g.col_rows(), plane, in_channels_, 1.0f, weight_.value.data(), input.data(), 0.0f,
                col, gemm_args);
    col2im(g, col, output.data());
  } else {
    // Batched lowering (see Conv2d::forward): pack the batch into one
    // (Cin, N*H*W) matrix, run a single wide GEMM, and scatter each
    // sample's columns through col2im. Bit-exact vs the per-sample path.
    const Index total_cols = N * plane;
    float* packed = ws.alloc(static_cast<std::size_t>(in_channels_ * total_cols));
    parallel_for_each(N * in_channels_, [&](Index row) {
      const Index n = row / in_channels_, c = row % in_channels_;
      std::memcpy(packed + c * total_cols + n * plane,
                  input.data() + (n * in_channels_ + c) * plane,
                  sizeof(float) * static_cast<std::size_t>(plane));
    });
    float* col = ws.alloc(static_cast<std::size_t>(g.col_rows() * total_cols));
    sgemm_at_ex(g.col_rows(), total_cols, in_channels_, 1.0f, weight_.value.data(), packed, 0.0f,
                col, gemm_args);
    for (Index n = 0; n < N; ++n) {
      col2im(g, col + n * plane, output.data() + n * out_channels_ * Ho * Wo, total_cols);
    }
  }
  // Bias (always) and the declared activation (eval only) in one pass over
  // the scattered output — per sample, per-channel bias on the
  // (Cout, Ho*Wo) plane matrix. Replaces the old bias loop plus a separate
  // full-tensor activation module traversal.
  backend::Epilogue ep;
  ep.bias = has_bias_ ? bias_.value.data() : nullptr;
  if (!training_ && fused_act_ != backend::Epilogue::Act::kNone) {
    ep.act = fused_act_;
    ep.slope = fused_slope_;
  }
  if (ep.enabled()) {
    const Index out_plane = Ho * Wo;
    for (Index n = 0; n < N; ++n) {
      backend::apply_epilogue(out_channels_, out_plane,
                              output.data() + n * out_channels_ * out_plane, ep);
    }
  }
  return output;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  PP_CHECK_MSG(!cached_input_.empty(), "ConvTranspose2d backward before forward");
  const Tensor& input = cached_input_;
  const Index N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const Index Ho = out_height(H), Wo = out_width(W);
  PP_CHECK_MSG(grad_output.rank() == 4 && grad_output.dim(0) == N &&
                   grad_output.dim(1) == out_channels_ && grad_output.dim(2) == Ho &&
                   grad_output.dim(3) == Wo,
               "ConvTranspose2d backward: bad grad shape " << grad_output.shape().str());
  const ConvGeom g = geom_for_output(Ho, Wo);

  Tensor grad_input(input.shape());
  backend::WorkspaceScope ws;
  const Index rows = g.col_rows();
  const Index plane = H * W;  // == g.col_cols()
  if (N == 1) {
    const float* go = grad_output.data();
    float* dcol = ws.alloc(static_cast<std::size_t>(rows * plane));
    im2col(g, go, dcol);
    // dx(Cin, H*W) = weight(Cin, Cout*k*k) * dcol
    sgemm(in_channels_, plane, rows, 1.0f, weight_.value.data(), dcol, 0.0f, grad_input.data());
    // dW(Cin, Cout*k*k) += x(Cin, H*W) * dcol^T
    sgemm_bt(in_channels_, rows, plane, 1.0f, input.data(), dcol, 1.0f, weight_.grad.data());
  } else {
    // Batched data gradient (see Conv2d::backward): unfold every sample's
    // grad_output into one wide (Cout*k*k, N*H*W) matrix and run a single
    // GEMM. Column-widening keeps per-sample results bit-exact.
    const Index total_cols = N * plane;
    float* dcol_wide = ws.alloc(static_cast<std::size_t>(rows * total_cols));
    for (Index n = 0; n < N; ++n) {
      im2col(g, grad_output.data() + n * out_channels_ * Ho * Wo, dcol_wide + n * plane,
             total_cols);
    }
    float* dx_wide = ws.alloc(static_cast<std::size_t>(in_channels_ * total_cols));
    sgemm(in_channels_, total_cols, rows, 1.0f, weight_.value.data(), dcol_wide, 0.0f, dx_wide);
    // Scatter (Cin, N*H*W) back to NCHW.
    parallel_for_each(N * in_channels_, [&](Index row) {
      const Index n = row / in_channels_, c = row % in_channels_;
      std::memcpy(grad_input.data() + (n * in_channels_ + c) * plane,
                  dx_wide + c * total_cols + n * plane,
                  sizeof(float) * static_cast<std::size_t>(plane));
    });
    // dW reduces over the batch: keep per-sample GEMMs in batch order so the
    // accumulation is bit-identical to B sequential single-sample backwards
    // (the second unfold pays one extra im2col; the GEMMs dominate).
    float* dcol = ws.alloc(static_cast<std::size_t>(rows * plane));
    for (Index n = 0; n < N; ++n) {
      im2col(g, grad_output.data() + n * out_channels_ * Ho * Wo, dcol);
      sgemm_bt(in_channels_, rows, plane, 1.0f, input.data() + n * in_channels_ * plane, dcol,
               1.0f, weight_.grad.data());
    }
  }
  if (has_bias_) {
    const Index plane = Ho * Wo;
    for (Index n = 0; n < N; ++n) {
      for (Index c = 0; c < out_channels_; ++c) {
        const float* go = grad_output.data() + (n * out_channels_ + c) * plane;
        double s = 0.0;
        for (Index i = 0; i < plane; ++i) s += static_cast<double>(go[i]);
        bias_.grad[c] += static_cast<float>(s);
      }
    }
  }
  return grad_input;
}

void ConvTranspose2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace paintplace::nn
