// Batch normalisation over (N,H,W) per channel, with running statistics for
// eval mode. pix2pix applies it after every conv except the outermost ones.
#pragma once

#include "common/rng.h"
#include "nn/module.h"

namespace paintplace::nn {

class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::string name, Index channels, float eps = 1e-5f, float momentum = 0.1f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedBuffer>& out) override;

  /// Running statistics (not learnable, but serialized with the model).
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  Index channels_;
  float eps_, momentum_;
  Parameter gamma_, beta_;
  Tensor running_mean_, running_var_;

  // Caches from forward (training mode).
  Tensor cached_normalized_;  // x_hat
  std::vector<float> cached_inv_std_;
  Index cached_count_ = 0;  // N*H*W
};

}  // namespace paintplace::nn
