#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "backend/pack_cache.h"

namespace paintplace::nn {
namespace {

constexpr char kMagic[4] = {'P', 'P', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  PP_CHECK_MSG(in.good(), "checkpoint truncated");
  return v;
}

}  // namespace

void save_tensors(const TensorMap& tensors, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  write_u64(out, tensors.size());
  for (const auto& [name, tensor] : tensors) {
    write_u64(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(out, static_cast<std::uint64_t>(tensor.rank()));
    for (Index d = 0; d < tensor.rank(); ++d) {
      write_u64(out, static_cast<std::uint64_t>(tensor.dim(d)));
    }
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(sizeof(float)) *
                  static_cast<std::streamsize>(tensor.numel()));
  }
  PP_CHECK_MSG(out.good(), "checkpoint write failed");
}

TensorMap load_tensors(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  PP_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a paintplace checkpoint (bad magic)");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  PP_CHECK_MSG(in.good() && version == kVersion, "unsupported checkpoint version " << version);
  const std::uint64_t count = read_u64(in);
  TensorMap tensors;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(in);
    PP_CHECK_MSG(name_len < (1u << 20), "implausible name length in checkpoint");
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint64_t rank = read_u64(in);
    PP_CHECK_MSG(rank <= 8, "implausible tensor rank in checkpoint");
    std::vector<Index> dims;
    dims.reserve(rank);
    for (std::uint64_t d = 0; d < rank; ++d) {
      dims.push_back(static_cast<Index>(read_u64(in)));
    }
    Tensor t((Shape(dims)));
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float)) *
                static_cast<std::streamsize>(t.numel()));
    PP_CHECK_MSG(in.good(), "checkpoint truncated reading tensor " << name);
    tensors.emplace(std::move(name), std::move(t));
  }
  return tensors;
}

void save_tensors_file(const TensorMap& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  PP_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  save_tensors(tensors, out);
}

TensorMap load_tensors_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PP_CHECK_MSG(in.is_open(), "cannot open " << path << " for reading");
  return load_tensors(in);
}

TensorMap snapshot_parameters(Module& module) {
  TensorMap map;
  for (Parameter* p : module.parameters()) {
    const auto [it, inserted] = map.emplace(p->name, p->value);
    PP_CHECK_MSG(inserted, "duplicate parameter name " << p->name);
    (void)it;
  }
  std::vector<NamedBuffer> buffers;
  module.collect_buffers(buffers);
  for (const NamedBuffer& b : buffers) {
    const auto [it, inserted] = map.emplace(b.name, *b.tensor);
    PP_CHECK_MSG(inserted, "duplicate buffer name " << b.name);
    (void)it;
  }
  return map;
}

void restore_parameters(Module& module, const TensorMap& tensors) {
  auto restore_one = [&tensors](const std::string& name, Tensor& dst) {
    const auto it = tensors.find(name);
    PP_CHECK_MSG(it != tensors.end(), "checkpoint missing entry " << name);
    PP_CHECK_MSG(it->second.shape() == dst.shape(),
                 "checkpoint shape mismatch for " << name << ": " << it->second.shape().str()
                                                  << " vs " << dst.shape().str());
    dst = it->second;
  };
  for (Parameter* p : module.parameters()) {
    restore_one(p->name, p->value);
    // Tensor assignment is a std::vector copy-assign: when the capacity
    // fits, the destination keeps its old data pointer while the values
    // change under it — exactly the in-place mutation the packed-weight
    // cache keys against, so retire its entries and re-version.
    p->bump_version();
    backend::PackedWeightCache::instance().invalidate(p->value.data());
  }
  std::vector<NamedBuffer> buffers;
  module.collect_buffers(buffers);
  for (const NamedBuffer& b : buffers) restore_one(b.name, *b.tensor);
}

}  // namespace paintplace::nn
