#include "img/geometry.h"

#include <algorithm>

namespace paintplace::img {

PixelGeometry::PixelGeometry(const Arch& arch, Index target_width) : arch_(&arch) {
  PP_CHECK(target_width >= 8);
  const Index tiles = std::max(arch.width(), arch.height());
  // Largest tile_px with chan_px = ceil(tile_px / 2) fitting target_width.
  for (Index t = target_width; t >= 2; --t) {
    const Index c = (t + 1) / 2;
    const Index needed = tiles * t + (tiles + 1) * c;
    if (needed <= target_width) {
      tile_px_ = t;
      chan_px_ = c;
      break;
    }
  }
  PP_CHECK_MSG(tile_px_ >= 2, "target_width " << target_width << " too small for a "
                                              << arch.width() << "x" << arch.height()
                                              << " fabric (needs elements >= 2x2 px)");
  canvas_w_ = arch.width() * tile_px_ + (arch.width() + 1) * chan_px_;
  canvas_h_ = arch.height() * tile_px_ + (arch.height() + 1) * chan_px_;
}

Index PixelGeometry::span_offset(Index lattice_coord) const {
  // Lattice runs channel, tile, channel, tile, ..., channel.
  const Index pairs = lattice_coord / 2;      // full (channel+tile) pairs before
  const Index extra = lattice_coord % 2;      // leading channel of this pair
  return pairs * (chan_px_ + tile_px_) + extra * chan_px_;
}

PixelRect PixelGeometry::lattice_rect(Index lx, Index ly) const {
  const Index lw = 2 * arch_->width() + 1, lh = 2 * arch_->height() + 1;
  PP_CHECK_MSG(lx >= 0 && lx < lw && ly >= 0 && ly < lh, "lattice (" << lx << "," << ly
                                                                     << ") out of range");
  PixelRect r;
  r.x0 = span_offset(lx);
  r.x1 = span_offset(lx + 1);
  r.y0 = span_offset(ly);
  r.y1 = span_offset(ly + 1);
  return r;
}

PixelRect PixelGeometry::io_port_rect(const GridLoc& pad, Index total) const {
  PP_CHECK(total >= 1 && pad.sub >= 0 && pad.sub < total);
  const PixelRect tile = tile_rect(pad.x, pad.y);
  // Ports stack vertically for side pads, horizontally for top/bottom pads.
  const bool vertical = pad.x == 0 || pad.x == arch_->width() - 1;
  PixelRect r = tile;
  if (vertical) {
    const Index span = tile.height();
    r.y0 = tile.y0 + pad.sub * span / total;
    r.y1 = tile.y0 + (pad.sub + 1) * span / total;
  } else {
    const Index span = tile.width();
    r.x0 = tile.x0 + pad.sub * span / total;
    r.x1 = tile.x0 + (pad.sub + 1) * span / total;
  }
  return r;
}

void PixelGeometry::tile_center(Index x, Index y, Index& px, Index& py) const {
  const PixelRect r = tile_rect(x, y);
  px = (r.x0 + r.x1) / 2;
  py = (r.y0 + r.y1) / 2;
}

}  // namespace paintplace::img
