#include "img/color.h"

#include <algorithm>
#include <cmath>

namespace paintplace::img {

Color UtilizationColormap::map(double utilization) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  // Piecewise-linear over the stop list.
  const double pos = u * static_cast<double>(kStops.size() - 1);
  const std::size_t seg = std::min<std::size_t>(static_cast<std::size_t>(pos), kStops.size() - 2);
  const float t = static_cast<float>(pos - static_cast<double>(seg));
  const Color& a = kStops[seg];
  const Color& b = kStops[seg + 1];
  return Color{a.r + (b.r - a.r) * t, a.g + (b.g - a.g) * t, a.b + (b.b - a.b) * t};
}

namespace {

struct Projection {
  double utilization;
  double distance;
};

Projection project_onto_gradient(const Color& c, const std::array<Color, 3>& stops) {
  double best_u = 0.0;
  float best_d = std::numeric_limits<float>::max();
  for (std::size_t seg = 0; seg + 1 < stops.size(); ++seg) {
    const Color& a = stops[seg];
    const Color& b = stops[seg + 1];
    const float abr = b.r - a.r, abg = b.g - a.g, abb = b.b - a.b;
    const float len_sq = abr * abr + abg * abg + abb * abb;
    float t = 0.0f;
    if (len_sq > 0.0f) {
      t = ((c.r - a.r) * abr + (c.g - a.g) * abg + (c.b - a.b) * abb) / len_sq;
      t = std::clamp(t, 0.0f, 1.0f);
    }
    const Color p{a.r + abr * t, a.g + abg * t, a.b + abb * t};
    const float d = c.distance_sq(p);
    if (d < best_d) {
      best_d = d;
      best_u = (static_cast<double>(seg) + static_cast<double>(t)) /
               static_cast<double>(stops.size() - 1);
    }
  }
  return Projection{best_u, std::sqrt(static_cast<double>(best_d))};
}

}  // namespace

double UtilizationColormap::unmap(const Color& c) {
  return project_onto_gradient(c, kStops).utilization;
}

double UtilizationColormap::unmap_distance(const Color& c) {
  return project_onto_gradient(c, kStops).distance;
}

}  // namespace paintplace::img
