#include "img/image.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace paintplace::img {

nn::Tensor Image::to_tensor() const {
  PP_CHECK(!empty());
  nn::Tensor t(nn::Shape{1, channels_, height_, width_});
  for (Index c = 0; c < channels_; ++c) {
    for (Index y = 0; y < height_; ++y) {
      for (Index x = 0; x < width_; ++x) t.at(0, c, y, x) = at(x, y, c);
    }
  }
  return t;
}

Image Image::from_tensor(const nn::Tensor& t) {
  PP_CHECK_MSG(t.rank() == 4 && t.dim(0) == 1, "from_tensor expects (1,C,H,W)");
  Image img(t.dim(3), t.dim(2), t.dim(1));
  for (Index c = 0; c < img.channels_; ++c) {
    for (Index y = 0; y < img.height_; ++y) {
      for (Index x = 0; x < img.width_; ++x) img.at(x, y, c) = t.at(0, c, y, x);
    }
  }
  return img;
}

void Image::clamp01() {
  for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

void write_image(const Image& image, const std::string& path) {
  PP_CHECK(!image.empty());
  std::ofstream out(path, std::ios::binary);
  PP_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  const bool color = image.channels() == 3;
  out << (color ? "P6" : "P5") << "\n"
      << image.width() << " " << image.height() << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(image.width() * image.channels()));
  for (Index y = 0; y < image.height(); ++y) {
    for (Index x = 0; x < image.width(); ++x) {
      for (Index c = 0; c < image.channels(); ++c) {
        const float v = std::clamp(image.at(x, y, c), 0.0f, 1.0f);
        row[static_cast<std::size_t>(x * image.channels() + c)] =
            static_cast<unsigned char>(std::lround(v * 255.0f));
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  PP_CHECK_MSG(out.good(), "write failed for " << path);
}

Image read_image(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PP_CHECK_MSG(in.is_open(), "cannot open " << path);
  std::string magic;
  in >> magic;
  PP_CHECK_MSG(magic == "P6" || magic == "P5", "unsupported image format " << magic);
  const Index channels = magic == "P6" ? 3 : 1;
  Index w = 0, h = 0, maxval = 0;
  in >> w >> h >> maxval;
  PP_CHECK_MSG(w > 0 && h > 0 && maxval == 255, "unsupported PNM header in " << path);
  in.get();  // single whitespace after header
  Image img(w, h, channels);
  std::vector<unsigned char> row(static_cast<std::size_t>(w * channels));
  for (Index y = 0; y < h; ++y) {
    in.read(reinterpret_cast<char*>(row.data()), static_cast<std::streamsize>(row.size()));
    PP_CHECK_MSG(in.good(), "truncated image " << path);
    for (Index x = 0; x < w; ++x) {
      for (Index c = 0; c < channels; ++c) {
        img.at(x, y, c) =
            static_cast<float>(row[static_cast<std::size_t>(x * channels + c)]) / 255.0f;
      }
    }
  }
  return img;
}

namespace {

/// Area-averaging (box) resample — required when minifying: plain bilinear
/// point-sampling skips source pixels entirely and erases sub-pixel
/// features such as 1-px connectivity lines.
Image resize_area(const Image& image, Index new_width, Index new_height) {
  Image out(new_width, new_height, image.channels());
  const double sx = static_cast<double>(image.width()) / static_cast<double>(new_width);
  const double sy = static_cast<double>(image.height()) / static_cast<double>(new_height);
  for (Index y = 0; y < new_height; ++y) {
    const double fy0 = static_cast<double>(y) * sy;
    const double fy1 = fy0 + sy;
    const Index y0 = static_cast<Index>(fy0);
    const Index y1 = std::min<Index>(image.height(), static_cast<Index>(std::ceil(fy1)));
    for (Index x = 0; x < new_width; ++x) {
      const double fx0 = static_cast<double>(x) * sx;
      const double fx1 = fx0 + sx;
      const Index x0 = static_cast<Index>(fx0);
      const Index x1 = std::min<Index>(image.width(), static_cast<Index>(std::ceil(fx1)));
      for (Index c = 0; c < image.channels(); ++c) {
        double acc = 0.0, weight = 0.0;
        for (Index yy = y0; yy < y1; ++yy) {
          const double wy = std::min<double>(fy1, static_cast<double>(yy) + 1.0) -
                            std::max<double>(fy0, static_cast<double>(yy));
          for (Index xx = x0; xx < x1; ++xx) {
            const double wx = std::min<double>(fx1, static_cast<double>(xx) + 1.0) -
                              std::max<double>(fx0, static_cast<double>(xx));
            acc += static_cast<double>(image.at(xx, yy, c)) * wx * wy;
            weight += wx * wy;
          }
        }
        out.at(x, y, c) = weight > 0.0 ? static_cast<float>(acc / weight) : 0.0f;
      }
    }
  }
  return out;
}

}  // namespace

Image resize_bilinear(const Image& image, Index new_width, Index new_height) {
  PP_CHECK(!image.empty() && new_width > 0 && new_height > 0);
  if (new_width < image.width() || new_height < image.height()) {
    return resize_area(image, new_width, new_height);
  }
  Image out(new_width, new_height, image.channels());
  const float sx = static_cast<float>(image.width()) / static_cast<float>(new_width);
  const float sy = static_cast<float>(image.height()) / static_cast<float>(new_height);
  for (Index y = 0; y < new_height; ++y) {
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const Index y0 = std::clamp<Index>(static_cast<Index>(std::floor(fy)), 0, image.height() - 1);
    const Index y1 = std::min<Index>(y0 + 1, image.height() - 1);
    const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
    for (Index x = 0; x < new_width; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const Index x0 = std::clamp<Index>(static_cast<Index>(std::floor(fx)), 0, image.width() - 1);
      const Index x1 = std::min<Index>(x0 + 1, image.width() - 1);
      const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
      for (Index c = 0; c < image.channels(); ++c) {
        const float top = image.at(x0, y0, c) * (1.0f - wx) + image.at(x1, y0, c) * wx;
        const float bot = image.at(x0, y1, c) * (1.0f - wx) + image.at(x1, y1, c) * wx;
        out.at(x, y, c) = top * (1.0f - wy) + bot * wy;
      }
    }
  }
  return out;
}

Image to_grayscale(const Image& rgb) {
  PP_CHECK_MSG(rgb.channels() == 3, "to_grayscale expects RGB");
  Image gray(rgb.width(), rgb.height(), 1);
  for (Index y = 0; y < rgb.height(); ++y) {
    for (Index x = 0; x < rgb.width(); ++x) {
      gray.at(x, y, 0) = 0.2989f * rgb.at(x, y, 0) + 0.5870f * rgb.at(x, y, 1) +
                         0.1140f * rgb.at(x, y, 2);
    }
  }
  return gray;
}

Image abs_diff(const Image& a, const Image& b) {
  PP_CHECK_MSG(a.width() == b.width() && a.height() == b.height() && a.channels() == b.channels(),
               "abs_diff shape mismatch");
  Image out(a.width(), a.height(), a.channels());
  for (Index y = 0; y < a.height(); ++y) {
    for (Index x = 0; x < a.width(); ++x) {
      for (Index c = 0; c < a.channels(); ++c) {
        out.at(x, y, c) = std::fabs(a.at(x, y, c) - b.at(x, y, c));
      }
    }
  }
  return out;
}

}  // namespace paintplace::img
