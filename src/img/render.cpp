#include "img/render.h"

#include <algorithm>
#include <cmath>

#include "route/channel_graph.h"

namespace paintplace::img {
namespace {

using fpga::TileType;
using route::ChannelGraph;
using route::NodeKind;

void fill_rect(Image& image, const PixelRect& r, const Color& c) {
  for (Index y = r.y0; y < r.y1; ++y) {
    for (Index x = r.x0; x < r.x1; ++x) {
      image.at(x, y, 0) = c.r;
      image.at(x, y, 1) = c.g;
      image.at(x, y, 2) = c.b;
    }
  }
}

Color tile_color(TileType t) {
  switch (t) {
    case TileType::kClb: return scheme::kLightBlue;
    case TileType::kMem: return scheme::kLightYellow;
    case TileType::kMult: return scheme::kPink;
    case TileType::kIo: return scheme::kIoPad;
  }
  return scheme::kWhite;
}

/// Additive Bresenham line on a 1-channel image.
void accumulate_line(Image& image, Index x0, Index y0, Index x1, Index y1) {
  Index dx = std::abs(x1 - x0), dy = -std::abs(y1 - y0);
  const Index sx = x0 < x1 ? 1 : -1, sy = y0 < y1 ? 1 : -1;
  Index err = dx + dy;
  for (;;) {
    image.at(x0, y0, 0) += 1.0f;
    if (x0 == x1 && y0 == y1) break;
    const Index e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

}  // namespace

Image render_floorplan(const PixelGeometry& geom) {
  const fpga::Arch& arch = geom.arch();
  Image image(geom.canvas_width(), geom.canvas_height(), 3);
  fill_rect(image, PixelRect{0, 0, image.width(), image.height()}, scheme::kWhite);
  for (Index y = 0; y < arch.height(); ++y) {
    for (Index x = 0; x < arch.width(); ++x) {
      if (arch.is_corner(x, y)) continue;  // corners stay out-of-plan white
      fill_rect(image, geom.tile_rect(x, y), tile_color(arch.tile_type(x, y)));
    }
  }
  return image;
}

Image render_placement(const Placement& placement, const PixelGeometry& geom) {
  Image image = render_floorplan(geom);
  const fpga::Netlist& nl = placement.netlist();
  const Index ports = geom.arch().params().io_ports_per_pad;
  for (const fpga::Block& b : nl.blocks()) {
    const fpga::GridLoc loc = placement.loc(b.id);
    switch (fpga::tile_type_for(b.kind)) {
      case TileType::kClb:
        fill_rect(image, geom.tile_rect(loc.x, loc.y), scheme::kBlack);
        break;
      case TileType::kIo:
        fill_rect(image, geom.io_port_rect(loc, ports), scheme::kBlack);
        break;
      case TileType::kMem:
      case TileType::kMult:
        // Hard blocks keep their column colors in Table 1; a thin black
        // border marks occupation so different placements stay visible.
        {
          const PixelRect r = geom.tile_rect(loc.x, loc.y);
          for (Index x = r.x0; x < r.x1; ++x) {
            image.at(x, r.y0, 0) = image.at(x, r.y0, 1) = image.at(x, r.y0, 2) = 0.0f;
            image.at(x, r.y1 - 1, 0) = image.at(x, r.y1 - 1, 1) = image.at(x, r.y1 - 1, 2) = 0.0f;
          }
          for (Index y = r.y0; y < r.y1; ++y) {
            image.at(r.x0, y, 0) = image.at(r.x0, y, 1) = image.at(r.x0, y, 2) = 0.0f;
            image.at(r.x1 - 1, y, 0) = image.at(r.x1 - 1, y, 1) = image.at(r.x1 - 1, y, 2) = 0.0f;
          }
        }
        break;
    }
  }
  return image;
}

Image render_connectivity(const Placement& placement, const PixelGeometry& geom) {
  Image image(geom.canvas_width(), geom.canvas_height(), 1);
  const fpga::Netlist& nl = placement.netlist();
  for (const fpga::Net& net : nl.nets()) {
    Index dx = 0, dy = 0;
    const fpga::GridLoc d = placement.loc(net.driver);
    geom.tile_center(d.x, d.y, dx, dy);
    for (fpga::BlockId s : net.sinks) {
      const fpga::GridLoc sl = placement.loc(s);
      Index sx = 0, sy = 0;
      geom.tile_center(sl.x, sl.y, sx, sy);
      accumulate_line(image, dx, dy, sx, sy);
    }
  }
  float maxv = 0.0f;
  for (Index i = 0; i < image.num_pixels(); ++i) maxv = std::max(maxv, image.data()[i]);
  if (maxv > 0.0f) {
    for (Index i = 0; i < image.num_pixels(); ++i) image.data()[i] /= maxv;
  }
  return image;
}

Image render_route_heatmap(const Placement& placement, const CongestionMap& congestion,
                           const PixelGeometry& geom) {
  Image image = render_placement(placement, geom);
  const ChannelGraph& graph = congestion.graph();
  for (route::NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.is_channel(n)) {
      const Color c = UtilizationColormap::map(congestion.utilization(n));
      fill_rect(image, geom.lattice_rect(graph.lx_of(n), graph.ly_of(n)), c);
    } else if (graph.kind(n) == NodeKind::kSwitch && graph.is_routable(n)) {
      // Mean of incident channels for a contiguous painted area.
      route::NodeId nbr[4];
      const int deg = graph.neighbors(n, nbr);
      double sum = 0.0;
      int channels = 0;
      for (int i = 0; i < deg; ++i) {
        if (graph.is_channel(nbr[i])) {
          sum += congestion.utilization(nbr[i]);
          channels += 1;
        }
      }
      const Color c =
          UtilizationColormap::map(channels > 0 ? sum / static_cast<double>(channels) : 0.0);
      fill_rect(image, geom.lattice_rect(graph.lx_of(n), graph.ly_of(n)), c);
    }
  }
  return image;
}

Image render_routing_result(const Placement& placement, const CongestionMap& congestion,
                            const PixelGeometry& geom) {
  Image image = render_placement(placement, geom);
  const ChannelGraph& graph = congestion.graph();
  Index max_occ = 1;
  for (route::NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.is_channel(n)) max_occ = std::max(max_occ, congestion.occupancy(n));
  }
  for (route::NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (!graph.is_channel(n) || congestion.occupancy(n) == 0) continue;
    const float shade =
        0.85f * static_cast<float>(congestion.occupancy(n)) / static_cast<float>(max_occ);
    const Color c{1.0f - shade, 1.0f - shade, 1.0f - shade};
    fill_rect(image, geom.lattice_rect(graph.lx_of(n), graph.ly_of(n)), c);
  }
  return image;
}

Image channel_mask(const PixelGeometry& geom) {
  const ChannelGraph graph(geom.arch());
  Image mask(geom.canvas_width(), geom.canvas_height(), 1);
  for (route::NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (!graph.is_channel(n)) continue;
    const PixelRect r = geom.lattice_rect(graph.lx_of(n), graph.ly_of(n));
    for (Index y = r.y0; y < r.y1; ++y) {
      for (Index x = r.x0; x < r.x1; ++x) mask.at(x, y, 0) = 1.0f;
    }
  }
  return mask;
}

double decode_total_utilization(const Image& heatmap, const Image& mask) {
  PP_CHECK_MSG(heatmap.channels() == 3 && mask.channels() == 1, "decode expects RGB + mask");
  PP_CHECK(heatmap.width() == mask.width() && heatmap.height() == mask.height());
  double sum = 0.0;
  Index masked = 0;
  for (Index y = 0; y < heatmap.height(); ++y) {
    for (Index x = 0; x < heatmap.width(); ++x) {
      if (mask.at(x, y, 0) < 0.5f) continue;
      sum += UtilizationColormap::unmap(
          Color{heatmap.at(x, y, 0), heatmap.at(x, y, 1), heatmap.at(x, y, 2)});
      masked += 1;
    }
  }
  if (masked == 0) return 0.0;
  return sum / static_cast<double>(masked);
}

Image decode_utilization_image(const Image& heatmap, const Image& mask) {
  PP_CHECK_MSG(heatmap.channels() == 3 && mask.channels() == 1, "decode expects RGB + mask");
  PP_CHECK(heatmap.width() == mask.width() && heatmap.height() == mask.height());
  Image out(heatmap.width(), heatmap.height(), 1);
  for (Index y = 0; y < heatmap.height(); ++y) {
    for (Index x = 0; x < heatmap.width(); ++x) {
      if (mask.at(x, y, 0) < 0.5f) continue;
      out.at(x, y, 0) = static_cast<float>(UtilizationColormap::unmap(
          Color{heatmap.at(x, y, 0), heatmap.at(x, y, 1), heatmap.at(x, y, 2)}));
    }
  }
  return out;
}

}  // namespace paintplace::img
