// Float image container (HWC interleaved, values nominally in [0,1]) with
// PPM/PGM round-trip IO and conversion to/from the nn tensor layout (CHW).
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "nn/tensor.h"

namespace paintplace::img {

using paintplace::Index;

class Image {
 public:
  Image() = default;
  Image(Index width, Index height, Index channels)
      : width_(width), height_(height), channels_(channels) {
    PP_CHECK(width > 0 && height > 0 && (channels == 1 || channels == 3));
    data_.assign(static_cast<std::size_t>(width * height * channels), 0.0f);
  }

  Index width() const { return width_; }
  Index height() const { return height_; }
  Index channels() const { return channels_; }
  bool empty() const { return data_.empty(); }
  Index num_pixels() const { return width_ * height_; }

  float& at(Index x, Index y, Index c) { return data_[offset(x, y, c)]; }
  float at(Index x, Index y, Index c) const { return data_[offset(x, y, c)]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float value) { data_.assign(data_.size(), value); }

  /// CHW tensor of shape (1, C, H, W), values copied verbatim.
  nn::Tensor to_tensor() const;
  static Image from_tensor(const nn::Tensor& t);

  /// Clamps all values into [0,1].
  void clamp01();

 private:
  std::size_t offset(Index x, Index y, Index c) const {
    PP_CHECK_MSG(x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 && c < channels_,
                 "pixel (" << x << "," << y << "," << c << ") out of " << width_ << "x" << height_
                           << "x" << channels_);
    return static_cast<std::size_t>((y * width_ + x) * channels_ + c);
  }

  Index width_ = 0, height_ = 0, channels_ = 0;
  std::vector<float> data_;
};

/// 8-bit binary PPM (3-channel) / PGM (1-channel) writers and readers.
void write_image(const Image& image, const std::string& path);
Image read_image(const std::string& path);

/// Resample to (new_width, new_height): bilinear when magnifying,
/// area-averaging when minifying (so sub-pixel features like 1-px
/// connectivity lines contribute to the result instead of being skipped).
Image resize_bilinear(const Image& image, Index new_width, Index new_height);

/// Luminance grayscale (matches tf.image.rgb_to_grayscale weights).
Image to_grayscale(const Image& rgb);

/// Per-pixel absolute difference (same shape); used for Fig. 2e.
Image abs_diff(const Image& a, const Image& b);

}  // namespace paintplace::img
