// Pixel geometry: the mapping between fabric coordinates (tiles, channel
// lattice) and image pixels.
//
// Tiles render as tile_px-square blocks, channels as chan_px-wide stripes
// between them, mirroring VPR's interactive display. Per the paper
// (Sec. 4.2 "Resolution") the geometry guarantees every placement element
// covers at least 2x2 pixels; target_width is an upper bound on the canvas
// (the largest feasible cell sizes are chosen, then the canvas is exactly
// as big as the fabric needs).
#pragma once

#include "fpga/arch.h"

namespace paintplace::img {

using fpga::Arch;
using fpga::GridLoc;
using paintplace::Index;

/// Half-open pixel rectangle.
struct PixelRect {
  Index x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  Index width() const { return x1 - x0; }
  Index height() const { return y1 - y0; }
  bool contains(Index x, Index y) const { return x >= x0 && x < x1 && y >= y0 && y < y1; }
};

class PixelGeometry {
 public:
  PixelGeometry(const Arch& arch, Index target_width);

  const Arch& arch() const { return *arch_; }
  Index canvas_width() const { return canvas_w_; }
  Index canvas_height() const { return canvas_h_; }
  Index tile_px() const { return tile_px_; }
  Index chan_px() const { return chan_px_; }

  /// Pixel rect of a lattice cell (see route::ChannelGraph for the lattice).
  PixelRect lattice_rect(Index lx, Index ly) const;

  /// Pixel rect of the tile at grid position (x, y).
  PixelRect tile_rect(Index x, Index y) const { return lattice_rect(2 * x + 1, 2 * y + 1); }

  /// Sub-rectangle of an IO pad for one of its ports (ports stack along the
  /// pad's long axis; `total` = ports per pad).
  PixelRect io_port_rect(const GridLoc& pad, Index total) const;

  /// Center pixel of a tile (for connectivity line endpoints).
  void tile_center(Index x, Index y, Index& px, Index& py) const;

 private:
  Index span_offset(Index lattice_coord) const;

  const Arch* arch_;
  Index tile_px_ = 0, chan_px_ = 0;
  Index canvas_w_ = 0, canvas_h_ = 0;
};

}  // namespace paintplace::img
