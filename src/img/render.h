// Renderers for the four image kinds of the paper's pipeline (Sec. 4.2):
//   img_floor    — the empty floor plan (Fig. 2a)
//   img_place    — floor plan + placed blocks painted black (Fig. 2b)
//   img_connect  — 1-channel net connectivity rendering (Fig. 4)
//   img_route    — heat map: channels colored by routing utilization (Fig. 2d)
// plus the wire-trace rendering of Fig. 2c and the channel-pixel mask used
// by the metrics to decode heat maps back into utilization numbers.
#pragma once

#include "img/color.h"
#include "img/geometry.h"
#include "img/image.h"
#include "place/placement.h"
#include "route/congestion.h"

namespace paintplace::img {

using place::Placement;
using route::CongestionMap;

/// Fig. 2a: floor plan only.
Image render_floorplan(const PixelGeometry& geom);

/// Fig. 2b: floor plan with used CLB/MEM/MULT tiles and used IO ports
/// painted black (Table 1: "Used CLB and IO spots").
Image render_placement(const Placement& placement, const PixelGeometry& geom);

/// Fig. 4: one-channel connectivity image — each net contributes lines from
/// its driver tile center to every sink tile center; intensities accumulate
/// and are normalized to [0,1] by the maximum.
Image render_connectivity(const Placement& placement, const PixelGeometry& geom);

/// Fig. 2d: img_place with every channel pixel colored by the utilization
/// gradient. Switchbox crossings take the mean of their incident channels
/// so the painted routing area is contiguous, as in VPR's display.
Image render_route_heatmap(const Placement& placement, const CongestionMap& congestion,
                           const PixelGeometry& geom);

/// Fig. 2c: wire-trace view — channel cells darken with occupancy.
Image render_routing_result(const Placement& placement, const CongestionMap& congestion,
                            const PixelGeometry& geom);

/// 1-channel mask: 1 on pixels belonging to in-plan channel segments (the
/// pixels whose colors encode utilization), 0 elsewhere.
Image channel_mask(const PixelGeometry& geom);

/// Decodes a heat-map image back to total utilization over the channel
/// mask: sum over masked pixels of colormap^-1(pixel) normalized by the
/// pixel count of one channel cell, i.e. approximately the sum of
/// per-segment utilizations. Robust to off-gradient colors via
/// nearest-point projection.
double decode_total_utilization(const Image& heatmap, const Image& mask);

/// Per-pixel decode (0 outside the mask).
Image decode_utilization_image(const Image& heatmap, const Image& mask);

}  // namespace paintplace::img
