// Table 1 color scheme and the yellow-to-purple utilization colormap
// (with an exact inverse used to decode predicted heat maps back into
// utilization numbers).
#pragma once

#include <array>

#include "common/check.h"

namespace paintplace::img {

using paintplace::Index;

struct Color {
  float r = 0.0f, g = 0.0f, b = 0.0f;

  bool operator==(const Color&) const = default;
  float distance_sq(const Color& o) const {
    const float dr = r - o.r, dg = g - o.g, db = b - o.b;
    return dr * dr + dg * dg + db * db;
  }
};

/// Table 1 of the paper (VPR interactive-mode defaults). Every pair is
/// separated in RGB euclidean distance, which Sec. 4.2 calls out as the
/// requirement on any alternative scheme.
namespace scheme {
inline constexpr Color kWhite{1.0f, 1.0f, 1.0f};            // routing channels / out of plan
inline constexpr Color kLightBlue{0.678f, 0.847f, 0.902f};  // CLB spots
inline constexpr Color kPink{1.0f, 0.753f, 0.796f};         // multiplier columns
inline constexpr Color kLightYellow{1.0f, 1.0f, 0.878f};    // memory columns
inline constexpr Color kBlack{0.0f, 0.0f, 0.0f};            // used CLB and IO spots
inline constexpr Color kIoPad{0.85f, 0.85f, 0.85f};         // unused IO pad ports
}  // namespace scheme

/// Yellow(0) -> red-violet(0.5) -> purple(1) gradient for channel
/// utilization (the paper's "Yellow2purple gradient" row of Table 1).
class UtilizationColormap {
 public:
  /// Maps utilization (clamped to [0,1]) to a color.
  static Color map(double utilization);

  /// Inverse: nearest point on the gradient polyline, as a utilization in
  /// [0,1]. Exact for colors produced by map(); nearest-match for network
  /// outputs that drift off the polyline.
  static double unmap(const Color& c);

  /// Euclidean RGB distance from `c` to the gradient polyline. Small for
  /// genuine heat-map pixels; large for block/background colors — used to
  /// restrict congestion scoring to pixels that actually encode utilization.
  static double unmap_distance(const Color& c);

  /// Distance below which a pixel is treated as utilization-bearing. The
  /// nearest non-gradient scheme color (pink) sits at distance ~0.45.
  static constexpr double kOnGradientDistance = 0.2;

 private:
  static constexpr std::array<Color, 3> kStops = {
      Color{1.0f, 0.92f, 0.20f},   // u = 0.0, yellow
      Color{0.86f, 0.38f, 0.42f},  // u = 0.5
      Color{0.42f, 0.05f, 0.58f},  // u = 1.0, purple
  };
};

}  // namespace paintplace::img
