// Process-wide worker pool with a static-partition parallel_for.
//
// The nn layer uses this for GEMM/im2col/elementwise loops; the data layer
// uses it to route independent placements concurrently. Work is split into
// contiguous ranges (one per worker) — cheap, deterministic partitioning that
// fits the regular loops in this codebase.
#pragma once

#include <functional>

#include "common/check.h"

namespace paintplace {

/// Number of workers the pool was created with (>= 1).
int parallel_workers();

/// Override the worker count (call before first use; mainly for tests and
/// for benchmarks that need single-thread numbers). Pass 0 to restore the
/// hardware default.
void set_parallel_workers(int workers);

/// Runs fn(begin, end) over a static partition of [0, n). Blocks until all
/// ranges complete. Exceptions from workers are rethrown on the caller.
/// fn must be safe to invoke concurrently on disjoint ranges.
void parallel_for(Index n, const std::function<void(Index, Index)>& fn);

/// Convenience: per-index body.
void parallel_for_each(Index n, const std::function<void(Index)>& fn);

}  // namespace paintplace
