// Error-handling primitives shared across the library.
//
// Invariant violations throw `paintplace::CheckError` (derived from
// std::logic_error) so tests can assert on failure paths instead of aborting
// the process. Release builds keep the checks: all of them guard cheap
// conditions on module boundaries, never inner loops.
#pragma once

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace paintplace {

/// Thrown when a PP_CHECK precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

// PP_CHECK(cond) / PP_CHECK_MSG(cond, streamable...) — precondition guards.
#define PP_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) ::paintplace::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define PP_CHECK_MSG(cond, ...)                                               \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream pp_os_;                                              \
      pp_os_ << __VA_ARGS__;                                                  \
      ::paintplace::detail::check_failed(#cond, __FILE__, __LINE__, pp_os_.str()); \
    }                                                                         \
  } while (false)

/// Checked narrowing conversion (Core Guidelines ES.46/gsl::narrow):
/// throws CheckError if the value does not survive the round trip.
template <typename To, typename From>
To narrow(From value) {
  static_assert(std::is_arithmetic_v<From> && std::is_arithmetic_v<To>);
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      (std::is_signed_v<From> != std::is_signed_v<To> && ((value < From{}) != (result < To{})))) {
    throw CheckError("narrowing conversion lost information");
  }
  return result;
}

/// Index type used for all container/tensor addressing.
using Index = std::int64_t;

}  // namespace paintplace
