// Deterministic random number generation.
//
// Every stochastic component (netlist generator, placer, dropout, weight
// init) takes an explicit seed and owns its own engine, so experiments are
// reproducible and components never share hidden global state.
#pragma once

#include <cstdint>
#include <random>

#include "common/check.h"

namespace paintplace {

/// Thin wrapper around mt19937_64 with the sampling helpers this codebase
/// actually uses. Copyable (copies clone the stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  Index uniform_int(Index lo, Index hi) {
    PP_CHECK(lo <= hi);
    return std::uniform_int_distribution<Index>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    PP_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev` around `mean`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish fanout sample in [lo, hi]: P(k) ∝ decay^k. Used for net
  /// fanout distributions (many 2-pin nets, few high-fanout nets).
  Index geometric_int(Index lo, Index hi, double decay) {
    PP_CHECK(lo <= hi);
    PP_CHECK(decay > 0.0 && decay < 1.0);
    Index k = lo;
    while (k < hi && chance(decay)) ++k;
    return k;
  }

  /// Derive an independent child stream (for per-thread / per-item use).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace paintplace
