#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace paintplace {
namespace {

/// Long-lived worker pool. Workers park on a condition variable between
/// parallel_for calls; the pool is created lazily on first use and torn down
/// at process exit.
class Pool {
 public:
  explicit Pool(int workers) : job_fn_(nullptr) {
    PP_CHECK(workers >= 1);
    workers_.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
    total_workers_ = workers;
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : workers_) t.join();
  }

  int workers() const { return total_workers_; }

  void run(Index n, const std::function<void(Index, Index)>& fn) {
    if (n <= 0) return;
    // Nested parallel_for (a worker body itself calling parallel_for) runs
    // serially: the single-slot job state cannot host two jobs at once, and
    // the outer call already saturates the pool.
    if (in_parallel_region) {
      fn(0, n);
      return;
    }
    const int nw = total_workers_;
    if (nw == 1 || n == 1) {
      fn(0, n);
      return;
    }
    // Concurrent top-level calls from different user threads queue here —
    // the job slot below holds exactly one job at a time.
    std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_fn_ = &fn;
      job_n_ = n;
      job_epoch_ += 1;
      pending_ = nw - 1;
      first_error_ = nullptr;
    }
    cv_start_.notify_all();
    // The calling thread executes partition 0.
    std::exception_ptr local_error = nullptr;
    try {
      in_parallel_region = true;
      auto [b, e] = partition(n, 0, nw);
      if (b < e) fn(b, e);
      in_parallel_region = false;
    } catch (...) {
      in_parallel_region = false;
      local_error = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    job_fn_ = nullptr;
    if (local_error) std::rethrow_exception(local_error);
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  static thread_local bool in_parallel_region;

 private:
  static std::pair<Index, Index> partition(Index n, int part, int parts) {
    const Index chunk = (n + parts - 1) / parts;
    const Index b = std::min<Index>(n, chunk * part);
    const Index e = std::min<Index>(n, b + chunk);
    return {b, e};
  }

  void worker_loop(int my_id) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(Index, Index)>* fn = nullptr;
      Index n = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] { return shutdown_ || job_epoch_ > seen_epoch; });
        if (shutdown_) return;
        seen_epoch = job_epoch_;
        fn = job_fn_;
        n = job_n_;
      }
      std::exception_ptr err = nullptr;
      try {
        in_parallel_region = true;
        auto [b, e] = partition(n, my_id, total_workers_);
        if (b < e) (*fn)(b, e);
        in_parallel_region = false;
      } catch (...) {
        in_parallel_region = false;
        err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (err && !first_error_) first_error_ = err;
        pending_ -= 1;
        if (pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  int total_workers_ = 1;
  const std::function<void(Index, Index)>* job_fn_;
  Index job_n_ = 0;
  std::uint64_t job_epoch_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_ = nullptr;
};

thread_local bool Pool::in_parallel_region = false;

int g_requested_workers = 0;  // 0 = hardware default
std::unique_ptr<Pool>& pool_slot() {
  static std::unique_ptr<Pool> pool;
  return pool;
}
std::mutex g_pool_mu;

Pool& pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  auto& slot = pool_slot();
  if (!slot) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 4;
    const int workers = g_requested_workers > 0 ? g_requested_workers : hw;
    slot = std::make_unique<Pool>(workers);
  }
  return *slot;
}

}  // namespace

int parallel_workers() { return pool().workers(); }

void set_parallel_workers(int workers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_workers = workers;
  pool_slot().reset();  // rebuilt lazily with the new count
}

void parallel_for(Index n, const std::function<void(Index, Index)>& fn) {
  pool().run(n, fn);
}

void parallel_for_each(Index n, const std::function<void(Index)>& fn) {
  parallel_for(n, [&fn](Index b, Index e) {
    for (Index i = b; i < e; ++i) fn(i);
  });
}

}  // namespace paintplace
