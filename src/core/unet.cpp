#include "core/unet.h"

#include <cmath>

#include "nn/tensor_ops.h"

namespace paintplace::core {

const char* skip_mode_name(SkipMode m) {
  switch (m) {
    case SkipMode::kAll: return "all-skips";
    case SkipMode::kSingle: return "single-skip";
    case SkipMode::kNone: return "no-skips";
  }
  return "?";
}

const char* norm_kind_name(NormKind k) {
  switch (k) {
    case NormKind::kBatch: return "batch-norm";
    case NormKind::kInstance: return "instance-norm";
  }
  return "?";
}

std::unique_ptr<nn::Module> make_norm(NormKind kind, const std::string& name, Index channels) {
  switch (kind) {
    case NormKind::kBatch: return std::make_unique<nn::BatchNorm2d>(name, channels);
    case NormKind::kInstance: return std::make_unique<nn::InstanceNorm2d>(name, channels);
  }
  PP_CHECK_MSG(false, "unknown norm kind");
  return nullptr;
}

Index GeneratorConfig::depth() const {
  Index d = 0, s = image_size;
  while (s > 1) {
    PP_CHECK_MSG(s % 2 == 0, "image_size must be a power of two");
    s /= 2;
    d += 1;
  }
  return d;
}

Index GeneratorConfig::channels_at(Index level) const {
  Index ch = base_channels;
  for (Index i = 0; i < level; ++i) ch = std::min(ch * 2, max_channels);
  return ch;
}

void GeneratorConfig::validate() const {
  PP_CHECK(in_channels >= 1 && out_channels >= 1);
  PP_CHECK_MSG(image_size >= 8, "image_size must be at least 8");
  PP_CHECK(base_channels >= 1 && max_channels >= base_channels);
  PP_CHECK(dropout_p >= 0.0f && dropout_p < 1.0f);
  (void)depth();  // validates power-of-two
}

bool UNetGenerator::skip_at(Index level) const {
  const Index d = config_.depth();
  PP_CHECK(level >= 0 && level < d);
  if (level == d - 1) return false;  // bottleneck has no skip partner
  switch (config_.skips) {
    case SkipMode::kAll: return true;
    case SkipMode::kSingle: return level == 0;
    case SkipMode::kNone: return false;
  }
  return false;
}

UNetGenerator::UNetGenerator(const GeneratorConfig& config) : config_(config) {
  config_.validate();
  Rng rng(config_.seed);
  const Index d = config_.depth();
  enc_.resize(static_cast<std::size_t>(d));
  dec_.resize(static_cast<std::size_t>(d));

  for (Index i = 0; i < d; ++i) {
    EncLevel& lvl = enc_[static_cast<std::size_t>(i)];
    const Index in_ch = i == 0 ? config_.in_channels : config_.channels_at(i - 1);
    const Index out_ch = config_.channels_at(i);
    if (i > 0) lvl.act = std::make_unique<nn::LeakyReLU>(0.2f);
    lvl.conv = std::make_unique<nn::Conv2d>("gen.enc" + std::to_string(i), in_ch, out_ch, 4, 2, 1,
                                            rng, /*bias=*/true);
    if (i > 0 && i < d - 1) {
      lvl.bn = make_norm(config_.norm, "gen.enc" + std::to_string(i) + ".bn", out_ch);
    }
  }
  for (Index i = d - 1; i >= 0; --i) {
    DecLevel& lvl = dec_[static_cast<std::size_t>(i)];
    lvl.act = std::make_unique<nn::ReLU>();
    Index in_ch;
    if (i == d - 1) {
      in_ch = config_.channels_at(d - 1);  // bottleneck features
    } else {
      in_ch = config_.channels_at(i) * (skip_at(i) ? 2 : 1);
    }
    const Index out_ch = i == 0 ? config_.out_channels : config_.channels_at(i - 1);
    lvl.deconv = std::make_unique<nn::ConvTranspose2d>("gen.dec" + std::to_string(i), in_ch,
                                                       out_ch, 4, 2, 1, rng, /*bias=*/true);
    if (i > 0) {
      lvl.bn = make_norm(config_.norm, "gen.dec" + std::to_string(i) + ".bn", out_ch);
      if (config_.dropout && i >= d - 3) {
        lvl.dropout = std::make_unique<nn::Dropout>(config_.dropout_p, rng.engine()(),
                                                    /*active_in_eval=*/true);
      }
    } else {
      lvl.tanh = std::make_unique<nn::Tanh>();
    }
  }

  // Eval-mode epilogue fusion. Only two activations in the pre-activation
  // U-Net consume a conv/deconv output directly (everywhere else a norm
  // layer or a skip concat sits in between, and enc0's output feeds the
  // skip pre-activation):
  //   * the bottleneck: enc[d-1].conv (no norm) -> dec[d-1]'s input ReLU;
  //   * the output head: dec[0].deconv -> Tanh.
  // The layers fold those into their fused bias pass in eval; dec_forward
  // skips the corresponding modules. Training keeps the modules (backward
  // needs the cached pre-activation tensors) and results are bit-identical
  // either way.
  enc_[static_cast<std::size_t>(d - 1)].conv->set_fused_activation(
      backend::Epilogue::Act::kReLU);
  dec_[static_cast<std::size_t>(d - 1)].act_fused_upstream = true;
  dec_[0].deconv->set_fused_activation(backend::Epilogue::Act::kTanh);
}

nn::Tensor UNetGenerator::dec_forward(DecLevel& level, const nn::Tensor& x) {
  // In eval, fused activations already happened inside the upstream layer's
  // epilogue (see the constructor): the input ReLU when the bottleneck conv
  // fused it, the Tanh when this level's deconv fused it.
  const bool fused = !training_;
  nn::Tensor h = (fused && level.act_fused_upstream) ? x : level.act->forward(x);
  h = level.deconv->forward(h);
  if (level.bn) h = level.bn->forward(h);
  if (level.dropout) h = level.dropout->forward(h);
  if (level.tanh && !fused) h = level.tanh->forward(h);
  return h;
}

nn::Tensor UNetGenerator::dec_backward(DecLevel& level, const nn::Tensor& g) {
  nn::Tensor h = g;
  if (level.tanh) h = level.tanh->backward(h);
  if (level.dropout) h = level.dropout->backward(h);
  if (level.bn) h = level.bn->backward(h);
  h = level.deconv->backward(h);
  return level.act->backward(h);
}

nn::Tensor UNetGenerator::forward(const nn::Tensor& input) {
  PP_CHECK_MSG(input.rank() == 4 && input.dim(1) == config_.in_channels &&
                   input.dim(2) == config_.image_size && input.dim(3) == config_.image_size,
               "UNet input shape " << input.shape().str() << " does not match config: expected (N,"
                                   << config_.in_channels << "," << config_.image_size << ","
                                   << config_.image_size << ")");
  const Index d = config_.depth();
  nn::Tensor h = input;
  for (Index i = 0; i < d; ++i) {
    EncLevel& lvl = enc_[static_cast<std::size_t>(i)];
    if (lvl.act) h = lvl.act->forward(h);
    h = lvl.conv->forward(h);
    if (lvl.bn) h = lvl.bn->forward(h);
    lvl.output = h;
  }
  for (Index i = d - 1; i >= 1; --i) {
    h = dec_forward(dec_[static_cast<std::size_t>(i)], h);
    if (skip_at(i - 1)) {
      h = nn::concat_channels(h, enc_[static_cast<std::size_t>(i - 1)].output);
    }
  }
  return dec_forward(dec_[static_cast<std::size_t>(0)], h);
}

nn::Tensor UNetGenerator::backward(const nn::Tensor& grad_output) {
  const Index d = config_.depth();
  // Decoder chain (outermost first), collecting skip gradients.
  std::vector<nn::Tensor> enc_grad(static_cast<std::size_t>(d));
  nn::Tensor g = dec_backward(dec_[static_cast<std::size_t>(0)], grad_output);
  for (Index i = 1; i <= d - 1; ++i) {
    if (skip_at(i - 1)) {
      auto [g_dec, g_skip] = nn::split_channels(g, config_.channels_at(i - 1));
      enc_grad[static_cast<std::size_t>(i - 1)] = std::move(g_skip);
      g = std::move(g_dec);
    }
    g = dec_backward(dec_[static_cast<std::size_t>(i)], g);
  }
  // Encoder chain (innermost first). `g` is the bottleneck gradient.
  for (Index i = d - 1; i >= 0; --i) {
    EncLevel& lvl = enc_[static_cast<std::size_t>(i)];
    nn::Tensor& skip_g = enc_grad[static_cast<std::size_t>(i)];
    if (!skip_g.empty()) g.add_(skip_g);
    if (lvl.bn) g = lvl.bn->backward(g);
    g = lvl.conv->backward(g);
    if (lvl.act) g = lvl.act->backward(g);
  }
  return g;
}

void UNetGenerator::collect_parameters(std::vector<nn::Parameter*>& out) {
  for (EncLevel& lvl : enc_) {
    lvl.conv->collect_parameters(out);
    if (lvl.bn) lvl.bn->collect_parameters(out);
  }
  for (DecLevel& lvl : dec_) {
    lvl.deconv->collect_parameters(out);
    if (lvl.bn) lvl.bn->collect_parameters(out);
  }
}

void UNetGenerator::collect_buffers(std::vector<nn::NamedBuffer>& out) {
  for (EncLevel& lvl : enc_) {
    if (lvl.bn) lvl.bn->collect_buffers(out);
  }
  for (DecLevel& lvl : dec_) {
    if (lvl.bn) lvl.bn->collect_buffers(out);
  }
}

void UNetGenerator::set_training(bool training) {
  nn::Module::set_training(training);
  for (EncLevel& lvl : enc_) {
    if (lvl.act) lvl.act->set_training(training);
    lvl.conv->set_training(training);
    if (lvl.bn) lvl.bn->set_training(training);
  }
  for (DecLevel& lvl : dec_) {
    lvl.act->set_training(training);
    lvl.deconv->set_training(training);
    if (lvl.bn) lvl.bn->set_training(training);
    if (lvl.dropout) lvl.dropout->set_training(training);
    if (lvl.tanh) lvl.tanh->set_training(training);
  }
}

void UNetGenerator::reseed_noise(std::uint64_t seed) {
  Rng rng(seed);
  for (DecLevel& lvl : dec_) {
    if (lvl.dropout) lvl.dropout->reseed(rng.engine()());
  }
}

void UNetGenerator::set_inference_noise(bool enabled) {
  inference_noise_ = enabled;
  for (DecLevel& lvl : dec_) {
    if (lvl.dropout) lvl.dropout->set_active_in_eval(enabled);
  }
}

}  // namespace paintplace::core
