// Real-time congestion forecasting during placement (Sec. 5.4,
// "Visualizing the simulated annealing placement algorithm"): a snapshot
// hook for place::SaPlacer that renders the in-flight placement, runs the
// generator, and records (optionally dumps) the predicted heat maps.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/forecaster.h"
#include "data/dataset.h"

namespace paintplace::core {

struct LiveFrame {
  Index accepted_moves = 0;
  double temperature = 0.0;
  double predicted_congestion = 0.0;  ///< mean decoded utilization
  double placement_cost = 0.0;        ///< HPWL at the snapshot
};

class LiveForecast {
 public:
  /// `geom` must describe the same arch the placer runs on; predictions use
  /// `width` x `width` inputs matching the forecaster's configuration.
  LiveForecast(CongestionForecaster& forecaster, const img::PixelGeometry& geom, Index width,
               double lambda_connect);

  /// Directory for dumped PPM frames; unset = keep frames in memory only.
  void set_dump_dir(std::string dir) { dump_dir_ = std::move(dir); }

  /// place::SaPlacer::SnapshotFn-compatible callback.
  void on_snapshot(const place::Placement& placement, Index accepted_moves, double temperature);

  const std::vector<LiveFrame>& frames() const { return frames_; }

 private:
  CongestionForecaster* forecaster_;
  const img::PixelGeometry* geom_;
  Index width_;
  double lambda_connect_;
  std::optional<std::string> dump_dir_;
  std::vector<LiveFrame> frames_;
};

}  // namespace paintplace::core
