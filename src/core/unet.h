// U-Net generator G(x, z) — Figure 5 of the paper.
//
// Encoder 64-128-256-512-512-512-512-512 (kernel 4, stride 2, pad 1), a
// mirrored deconvolution decoder, and skip connections concatenating each
// encoder level into the matching decoder level. Noise z enters as dropout
// in the three innermost decoder levels (pix2pix convention; the paper's z
// follows Isola et al.). Skip topology is configurable for the Sec. 5.3
// ablation: all skips (paper), a single skip (RouteNet-style), or none.
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/batchnorm2d.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dropout.h"
#include "nn/instancenorm2d.h"
#include "nn/module.h"

namespace paintplace::core {

using paintplace::Index;

enum class SkipMode : std::uint8_t {
  kAll,     ///< every encoder level skips to its decoder level (the paper's model)
  kSingle,  ///< only the outermost (highest-resolution) skip
  kNone,    ///< plain encoder-decoder
};

const char* skip_mode_name(SkipMode m);

/// Normalisation layer family. The paper's TensorFlow model uses batch norm
/// (with batch size 1); instance norm is the batch-1-native alternative the
/// pix2pix lineage later settled on — exposed here as an ablation.
enum class NormKind : std::uint8_t { kBatch, kInstance };

const char* norm_kind_name(NormKind k);

/// Factory shared by the generator and discriminator.
std::unique_ptr<nn::Module> make_norm(NormKind kind, const std::string& name, Index channels);

struct GeneratorConfig {
  Index in_channels = 4;    ///< img_place RGB + λ·img_connect
  Index out_channels = 3;   ///< img_route RGB
  Index image_size = 256;   ///< power of two, >= 8
  Index base_channels = 64; ///< first encoder width (Fig. 5: 64)
  Index max_channels = 512;
  SkipMode skips = SkipMode::kAll;
  NormKind norm = NormKind::kBatch;  ///< paper setting; kInstance for the ablation
  bool dropout = true;      ///< noise z (active at inference too)
  float dropout_p = 0.5f;
  std::uint64_t seed = 1;

  /// Number of encoder/decoder levels: downsample to 1x1 like Fig. 5.
  Index depth() const;
  /// Encoder output channels at level i (0-based).
  Index channels_at(Index level) const;
  void validate() const;
};

class UNetGenerator : public nn::Module {
 public:
  explicit UNetGenerator(const GeneratorConfig& config);

  const GeneratorConfig& config() const { return config_; }

  nn::Tensor forward(const nn::Tensor& input) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  void collect_buffers(std::vector<nn::NamedBuffer>& out) override;
  void set_training(bool training) override;

  /// Whether encoder level `level` feeds a skip connection.
  bool skip_at(Index level) const;

  /// Re-seed all dropout noise streams (deterministic inference in tests).
  void reseed_noise(std::uint64_t seed);

  /// Enables/disables the stochastic noise z at inference. The paper keeps
  /// dropout live in eval (z of G(x, z)); the serving layer freezes it so a
  /// forward pass is a pure function of the input (cacheable, and a batched
  /// pass matches per-sample passes exactly).
  void set_inference_noise(bool enabled);
  bool inference_noise() const { return inference_noise_; }

 private:
  struct EncLevel {
    std::unique_ptr<nn::LeakyReLU> act;  // null at level 0
    std::unique_ptr<nn::Conv2d> conv;
    std::unique_ptr<nn::Module> bn;  // batch/instance norm; null at level 0 and innermost
    nn::Tensor output;               // cached for skips
  };
  struct DecLevel {
    std::unique_ptr<nn::ReLU> act;
    std::unique_ptr<nn::ConvTranspose2d> deconv;
    std::unique_ptr<nn::Module> bn;         // null at outermost
    std::unique_ptr<nn::Dropout> dropout;   // three innermost levels only
    std::unique_ptr<nn::Tanh> tanh;         // outermost only
    /// Eval-mode: the upstream layer already applied this level's input
    /// activation in its GEMM epilogue (bottleneck conv + ReLU), so
    /// dec_forward skips `act`. Training forwards always run the module.
    bool act_fused_upstream = false;
  };

  nn::Tensor dec_forward(DecLevel& level, const nn::Tensor& x);
  nn::Tensor dec_backward(DecLevel& level, const nn::Tensor& g);

  GeneratorConfig config_;
  bool inference_noise_ = true;
  std::vector<EncLevel> enc_;
  std::vector<DecLevel> dec_;
};

}  // namespace paintplace::core
