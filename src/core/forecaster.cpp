#include "core/forecaster.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/rng.h"
#include "img/color.h"
#include "img/image.h"
#include "obs/trace.h"

namespace paintplace::core {

CongestionForecaster::CongestionForecaster(const Pix2PixConfig& config) : model_(config) {}

TrainHistory CongestionForecaster::run_epochs(const std::vector<const data::Sample*>& samples,
                                              const TrainConfig& config) {
  PP_CHECK_MSG(!samples.empty(), "empty training set");
  PP_CHECK(config.epochs >= 1);
  Rng rng(config.seed);
  std::vector<const data::Sample*> order = samples;
  TrainHistory history;
  history.reserve(static_cast<std::size_t>(config.epochs));
  for (Index epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) std::shuffle(order.begin(), order.end(), rng.engine());
    GanLosses epoch_losses;
    for (const data::Sample* s : order) {
      epoch_losses += model_.train_step(s->input, s->target);
    }
    epoch_losses /= static_cast<double>(order.size());
    history.push_back(epoch_losses);
    if (config.on_epoch) config.on_epoch(epoch, epoch_losses);
  }
  return history;
}

TrainHistory CongestionForecaster::train(const std::vector<const data::Sample*>& samples,
                                         const TrainConfig& config) {
  return run_epochs(samples, config);
}

TrainHistory CongestionForecaster::fine_tune(const std::vector<const data::Sample*>& samples,
                                             const TrainConfig& config, float lr_scale) {
  PP_CHECK(lr_scale > 0.0f && lr_scale <= 1.0f);
  model_.reset_optimizers(model_.config().adam.lr * lr_scale);
  return run_epochs(samples, config);
}

void CongestionForecaster::validate_input(const nn::Tensor& input01, bool batched) const {
  const GeneratorConfig& gen = config().generator;
  const char* fn = batched ? "predict_batch" : "predict";
  PP_CHECK_MSG(input01.rank() == 4,
               "CongestionForecaster::" << fn << " expects an NCHW tensor (" << (batched ? "N" : "1")
                                        << "," << gen.in_channels << "," << gen.image_size << ","
                                        << gen.image_size << "), got rank " << input01.rank());
  PP_CHECK_MSG(batched ? input01.dim(0) >= 1 : input01.dim(0) == 1,
               "CongestionForecaster::" << fn << ": batch dimension " << input01.dim(0)
                                        << (batched ? " must be >= 1" : " must be 1 (use predict_batch)"));
  PP_CHECK_MSG(input01.dim(1) == gen.in_channels && input01.dim(2) == gen.image_size &&
                   input01.dim(3) == gen.image_size,
               "CongestionForecaster::" << fn << " input " << input01.shape().str()
                                        << " does not match the model configuration (N,"
                                        << gen.in_channels << "," << gen.image_size << ","
                                        << gen.image_size << ")");
}

nn::Tensor CongestionForecaster::predict(const nn::Tensor& input01) {
  validate_input(input01, /*batched=*/false);
  obs::Span span("core.predict", "core");
  return model_.predict(input01);
}

nn::Tensor CongestionForecaster::predict_batch(const nn::Tensor& batch01) {
  validate_input(batch01, /*batched=*/true);
  obs::Span span("core.predict_batch", "core");
  if (span.active()) span.arg("batch", batch01.dim(0));
  return model_.predict(batch01);
}

void CongestionForecaster::set_deterministic_inference(bool deterministic) {
  deterministic_ = deterministic;
  model_.generator().set_inference_noise(!deterministic);
}

double CongestionForecaster::score_sample(const nn::Tensor& heatmaps01, Index n) const {
  const Index H = heatmaps01.dim(2), W = heatmaps01.dim(3);
  // Average decoded utilization over the pixels that lie near the
  // utilization gradient. Block/background pixels (black CLBs, light-blue
  // spots, ...) sit far from the gradient polyline; including them would
  // fold the placement layout itself into the score and drown the
  // congestion signal when ranking placements.
  double sum = 0.0;
  Index counted = 0;
  for (Index y = 0; y < H; ++y) {
    for (Index x = 0; x < W; ++x) {
      const img::Color c{heatmaps01.at(n, 0, y, x), heatmaps01.at(n, 1, y, x),
                         heatmaps01.at(n, 2, y, x)};
      if (img::UtilizationColormap::unmap_distance(c) >
          img::UtilizationColormap::kOnGradientDistance) {
        continue;
      }
      sum += img::UtilizationColormap::unmap(c);
      counted += 1;
    }
  }
  if (counted == 0) return 0.0;
  return sum / static_cast<double>(counted);
}

double CongestionForecaster::congestion_score(const nn::Tensor& heatmap01) const {
  PP_CHECK_MSG(heatmap01.rank() == 4 && heatmap01.dim(0) == 1 && heatmap01.dim(1) == 3,
               "congestion_score expects (1,3,H,W), got "
                   << heatmap01.shape().str() << " (use congestion_scores for batches)");
  return score_sample(heatmap01, 0);
}

std::vector<double> CongestionForecaster::congestion_scores(const nn::Tensor& heatmaps01) const {
  PP_CHECK_MSG(heatmaps01.rank() == 4 && heatmaps01.dim(1) == 3,
               "congestion_scores expects (N,3,H,W), got " << heatmaps01.shape().str());
  // Scoring decodes every pixel through the colormap inverse — after the
  // batched GEMM forward this is the next-densest loop on the serving path,
  // and the samples are independent.
  std::vector<double> scores(static_cast<std::size_t>(heatmaps01.dim(0)));
  parallel_for_each(heatmaps01.dim(0), [&](Index n) {
    scores[static_cast<std::size_t>(n)] = score_sample(heatmaps01, n);
  });
  return scores;
}

EvalResult CongestionForecaster::evaluate(const std::vector<const data::Sample*>& test_samples,
                                          Index top_k) {
  PP_CHECK(!test_samples.empty());
  EvalResult result;
  for (const data::Sample* s : test_samples) {
    const nn::Tensor pred = predict(s->input);
    const double acc = data::per_pixel_accuracy(pred, s->target);
    result.per_sample_accuracy.push_back(acc);
    result.mean_pixel_accuracy += acc;
    result.predicted_scores.push_back(congestion_score(pred));
    result.true_scores.push_back(s->meta.true_total_utilization);
  }
  result.mean_pixel_accuracy /= static_cast<double>(test_samples.size());
  const Index k = std::min<Index>(top_k, static_cast<Index>(test_samples.size()));
  if (k >= 1) {
    result.top10 = data::topk_min_overlap(result.predicted_scores, result.true_scores, k);
  }
  if (test_samples.size() >= 2) {
    result.rank_correlation =
        data::spearman_rank_correlation(result.predicted_scores, result.true_scores);
  }
  return result;
}

}  // namespace paintplace::core
