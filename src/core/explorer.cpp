#include "core/explorer.h"

#include <algorithm>

#include "img/color.h"

namespace paintplace::core {

bool Region::contains(Index x, Index y, Index width, Index height) const {
  const double fx = (static_cast<double>(x) + 0.5) / static_cast<double>(width);
  const double fy = (static_cast<double>(y) + 0.5) / static_cast<double>(height);
  return fx >= x0 && fx < x1 && fy >= y0 && fy < y1;
}

double region_congestion(const nn::Tensor& heatmap01, const Region& region) {
  PP_CHECK_MSG(heatmap01.rank() == 4 && heatmap01.dim(1) == 3,
               "region_congestion expects (1,3,H,W)");
  const Index H = heatmap01.dim(2), W = heatmap01.dim(3);
  // Same gradient-distance filter as CongestionForecaster::congestion_score:
  // only utilization-bearing pixels enter the regional average.
  double sum = 0.0;
  Index region_pixels = 0, counted = 0;
  for (Index y = 0; y < H; ++y) {
    for (Index x = 0; x < W; ++x) {
      if (!region.contains(x, y, W, H)) continue;
      region_pixels += 1;
      const img::Color c{heatmap01.at(0, 0, y, x), heatmap01.at(0, 1, y, x),
                         heatmap01.at(0, 2, y, x)};
      if (img::UtilizationColormap::unmap_distance(c) >
          img::UtilizationColormap::kOnGradientDistance) {
        continue;
      }
      sum += img::UtilizationColormap::unmap(c);
      counted += 1;
    }
  }
  PP_CHECK_MSG(region_pixels > 0, "region " << region.name << " covers no pixels");
  if (counted == 0) return 0.0;
  return sum / static_cast<double>(counted);
}

void PlacementExplorer::load_candidates(const std::vector<const data::Sample*>& candidates) {
  PP_CHECK(!candidates.empty());
  candidates_ = candidates;
  predictions_.clear();
  predictions_.reserve(candidates.size());
  for (const data::Sample* s : candidates) {
    predictions_.push_back(forecaster_->predict(s->input));
  }
}

const nn::Tensor& PlacementExplorer::prediction(Index i) const {
  PP_CHECK(i >= 0 && i < num_candidates());
  return predictions_[static_cast<std::size_t>(i)];
}

std::vector<ExplorationPick> PlacementExplorer::ranking(const Region& region) const {
  PP_CHECK_MSG(!predictions_.empty(), "load_candidates first");
  std::vector<ExplorationPick> picks;
  picks.reserve(predictions_.size());
  for (std::size_t i = 0; i < predictions_.size(); ++i) {
    ExplorationPick p;
    p.sample_index = static_cast<Index>(i);
    p.predicted_score = region_congestion(predictions_[i], region);
    p.true_score = region_congestion(candidates_[i]->target, region);
    picks.push_back(p);
  }
  std::sort(picks.begin(), picks.end(), [](const ExplorationPick& a, const ExplorationPick& b) {
    return a.predicted_score != b.predicted_score ? a.predicted_score < b.predicted_score
                                                  : a.sample_index < b.sample_index;
  });
  return picks;
}

ExplorationPick PlacementExplorer::pick(const Region& region, Objective objective) const {
  const std::vector<ExplorationPick> ranked = ranking(region);
  return objective == Objective::kMinimize ? ranked.front() : ranked.back();
}

}  // namespace paintplace::core
