#include "core/discriminator.h"

namespace paintplace::core {

Index DiscriminatorConfig::num_stride2_layers() const {
  // After n stride-2 stages the map is image_size / 2^n; the two stride-1
  // kernel-4 convs each shrink it by one, so require >= 4 before them.
  Index n = 0, s = image_size;
  while (n < 3 && s >= 8) {
    s /= 2;
    n += 1;
  }
  PP_CHECK_MSG(n >= 1, "discriminator needs image_size >= 8");
  return n;
}

PatchDiscriminator::PatchDiscriminator(const DiscriminatorConfig& config) : config_(config) {
  PP_CHECK(config.in_channels >= 1 && config.base_channels >= 1);
  Rng rng(config.seed);
  const Index b = config.base_channels;
  const Index stride2 = config.num_stride2_layers();
  // C64 (no BN) -> C128 -> C256, stride 2 (count adapted to resolution);
  // C512 stride 1; C1 stride 1 — the Fig. 5 topology at 256x256.
  Index in_ch = config.in_channels;
  Index out_ch = b;
  for (Index i = 0; i < stride2; ++i) {
    layers_.add(std::make_unique<nn::Conv2d>("disc.c" + std::to_string(i), in_ch, out_ch, 4, 2, 1,
                                             rng));
    if (i > 0) {
      layers_.add(make_norm(config.norm, "disc.c" + std::to_string(i) + ".bn", out_ch));
    }
    layers_.add(std::make_unique<nn::LeakyReLU>(0.2f));
    in_ch = out_ch;
    out_ch = std::min(out_ch * 2, 8 * b);
  }
  const Index penultimate = std::min(in_ch * 2, 8 * b);
  layers_.add(std::make_unique<nn::Conv2d>("disc.pen", in_ch, penultimate, 4, 1, 1, rng));
  layers_.add(make_norm(config.norm, "disc.pen.bn", penultimate));
  layers_.add(std::make_unique<nn::LeakyReLU>(0.2f));
  layers_.add(std::make_unique<nn::Conv2d>("disc.out", penultimate, 1, 4, 1, 1, rng));
}

nn::Tensor PatchDiscriminator::forward(const nn::Tensor& input) {
  // The patch discriminator is fully convolutional: any resolution works as
  // long as the stride-2 pyramid plus the two stride-1 k4 convs fit.
  const Index min_size = (Index{1} << config_.num_stride2_layers()) * 4;
  PP_CHECK_MSG(input.rank() == 4 && input.dim(1) == config_.in_channels,
               "discriminator input " << input.shape().str() << " does not match config: expected "
                                      << "(N," << config_.in_channels << ",H,W)");
  PP_CHECK_MSG(input.dim(2) >= min_size && input.dim(3) >= min_size,
               "discriminator input " << input.shape().str() << " too small: needs H,W >= "
                                      << min_size << " for " << config_.num_stride2_layers()
                                      << " stride-2 stages plus two stride-1 k4 convs");
  return layers_.forward(input);
}

nn::Tensor PatchDiscriminator::backward(const nn::Tensor& grad_output) {
  return layers_.backward(grad_output);
}

void PatchDiscriminator::collect_parameters(std::vector<nn::Parameter*>& out) {
  layers_.collect_parameters(out);
}

void PatchDiscriminator::collect_buffers(std::vector<nn::NamedBuffer>& out) {
  layers_.collect_buffers(out);
}

void PatchDiscriminator::set_training(bool training) {
  nn::Module::set_training(training);
  layers_.set_training(training);
}

}  // namespace paintplace::core
